#!/usr/bin/env python3
"""Compare bench run manifests against the checked-in baseline.

Usage:
  check_perf_baseline.py --baseline bench/BENCH_kernels.json \
                         --current /tmp/bench.json \
                         [--current /tmp/serve.json ...] \
                         [--max-regression 1.5]

--current may repeat: each manifest contributes its "benchmarks" table and
the union is compared (micro_schedulability and serve_load record into one
baseline). Benchmark names must not collide across manifests.

Two gates:

1. Regression gate. For every benchmark present in the baseline, the ratio
   current/baseline cpu_time is computed, then normalized by the median
   ratio across all benchmarks. The median absorbs uniform machine-speed
   differences (CI runners are not the machine the baseline was recorded
   on); what remains is per-benchmark drift. Any normalized ratio above
   --max-regression (default 1.5) fails.

2. Pair gate. The bench suite contains reference/fast pairs measured in the
   same run (same machine, same load), so their ratio is machine
   independent. Each fast variant must beat its reference by the factor
   listed in PAIRS; this pins the point of the PR — the kernel path being
   faster than the predicate path — not just the absence of regressions.

Exit code 0 when both gates pass, 1 otherwise. Stdlib only.
"""

import argparse
import json
import statistics
import sys

# (fast benchmark prefix, reference prefix, required speedup). Matched per
# /arg suffix: BM_SaturationSearchPdpKernel/10 pairs with
# BM_SaturationSearchPdp/10. Required speedups are set well below the
# locally measured factors (2.1-4.0x for the saturation searches, >100x for
# the screened verdicts) so the gate trips on real behaviour changes, not
# timer noise.
#
# The SoA batch pairs (B = 8/64/256 lanes in lockstep vs the same searches
# one scalar kernel at a time) are gated on locally measured factors too:
# the TTP probe loop is divide-throughput-bound (two divpd per element, and
# per-element divide throughput is the same at every SIMD width), so ~2x is
# the hardware ceiling for the bit-identical evaluate — measured 1.95x raw
# (BM_TtpEvaluate*) and ~1.8x across a whole search, where the scalar
# reference keeps its early exits. The PDP searches are dominated by the
# exact response-time analysis both paths share, so the batch pair there is
# an anti-regression gate (lockstep bookkeeping must not cost), not a
# speedup claim.
PAIRS = [
    ("BM_SaturationSearchPdpKernel", "BM_SaturationSearchPdp", 1.5),
    ("BM_SaturationSearchTtpKernel", "BM_SaturationSearchTtp", 1.5),
    ("BM_RtaScreened", "BM_RtaExact", 2.0),
    ("BM_LsdIncremental", "BM_LsdExact", 2.0),
    ("BM_ScaledInto", "BM_ScaledCopy", 1.0),
    ("BM_SaturationBatchPdp", "BM_SaturationScalarPdp", 0.85),
    ("BM_SaturationBatchTtp", "BM_SaturationScalarTtp", 1.4),
    ("BM_TtpEvaluateBatch", "BM_TtpEvaluateScalar", 1.5),
    # Frontier vs eager event engine on the same sparse large-ring scenario
    # (bench/sim_scaling.cpp); metrics are pinned bit-identical by
    # tests/sim_engine_test.cpp. Locally measured 25-50x; 10x is the PR's
    # headline claim for 1k stations.
    ("BM_SimScalingFrontier", "BM_SimScalingEager", 10.0),
    # Epoll-reactor vs thread-per-connection front end, parking
    # --connections mostly-idle peers (bench/serve_load.cpp). The timed
    # loop is client + server serialized on one core, so the client's
    # connect/ping syscalls (identical for both front ends) dilute the
    # server-side gap: measured 2.0-3.6x end to end across runs on the
    # 1-core CI container, occasionally higher when the scheduler is
    # kind. The memory gap — thread stacks vs a table entry — is ~400x
    # and reported in the serve_load manifest notes. 1.7x sits below the
    # observed noise floor, so the gate trips only if the reactor
    # actually loses its per-connection advantage (e.g. parking starts
    # spawning something per connection).
    ("BM_ServeManyConnsReactor", "BM_ServeManyConnsThreaded", 1.7),
]

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Per-benchmark-prefix override of --max-regression. The serve_load rows
# are loopback TCP measurements: closed-loop queueing latency percentiles
# swing with scheduler jitter far more than the in-process kernel timings,
# so they get a wider (but still bounded) regression budget.
RELAXED_MAX_REGRESSION = {
    "BM_Serve": 4.0,
}


def max_regression_for(name, default):
    for prefix, budget in RELAXED_MAX_REGRESSION.items():
        if name.startswith(prefix):
            return budget
    return default


def load_timings(path):
    """Manifest -> {benchmark name: cpu_time in ns}."""
    with open(path) as f:
        manifest = json.load(f)
    tables = [t for t in manifest.get("results", []) if t.get("name") == "benchmarks"]
    if not tables:
        sys.exit(f"error: {path}: no 'benchmarks' table in manifest")
    timings = {}
    for row in tables[0]["rows"]:
        # Complexity aggregates (_BigO/_RMS) report iterations == 0 and are
        # fit artefacts, not timings; skip them.
        if int(row["iterations"]) == 0:
            continue
        timings[row["name"]] = float(row["cpu_time"]) * TIME_UNIT_NS[row["time_unit"]]
    if not timings:
        sys.exit(f"error: {path}: 'benchmarks' table is empty")
    return timings


def load_all_timings(paths):
    """Union of every manifest's benchmarks; duplicate names are an error."""
    merged = {}
    for path in paths:
        timings = load_timings(path)
        overlap = sorted(set(merged) & set(timings))
        if overlap:
            sys.exit(f"error: {path}: benchmark names already seen in another "
                     f"--current manifest: {overlap}")
        merged.update(timings)
    return merged


def split_arg(name):
    """'BM_Foo/100' -> ('BM_Foo', '/100'); no-arg names get an empty suffix."""
    head, sep, tail = name.partition("/")
    return head, sep + tail


def check_regressions(baseline, current, max_regression):
    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"FAIL: benchmarks in baseline but not in current run: {missing}")
        return False
    ratios = {name: current[name] / baseline[name] for name in baseline}
    # The machine-speed normalizer comes from the tight-budget benchmarks
    # only: the relaxed (wall-clock) rows would drag the median around on
    # loaded runners and loosen every other gate.
    tight = [r for name, r in ratios.items()
             if max_regression_for(name, max_regression) == max_regression]
    median = statistics.median(tight if tight else list(ratios.values()))
    print(f"median current/baseline ratio: {median:.3f} "
          f"(machine-speed normalizer)")
    ok = True
    for name in sorted(ratios):
        normalized = ratios[name] / median
        budget = max_regression_for(name, max_regression)
        flag = ""
        if normalized > budget:
            flag = f"  <-- FAIL (> {budget:.2f}x median)"
            ok = False
        print(f"  {name:45s} {baseline[name]:>12.1f} -> {current[name]:>12.1f} ns"
              f"  x{normalized:.2f}{flag}")
    return ok


def check_pairs(current):
    by_prefix = {}
    for name in current:
        head, suffix = split_arg(name)
        by_prefix.setdefault(head, {})[suffix] = current[name]
    ok = True
    for fast, ref, required in PAIRS:
        fast_runs = by_prefix.get(fast, {})
        ref_runs = by_prefix.get(ref, {})
        suffixes = sorted(set(fast_runs) & set(ref_runs))
        if not suffixes:
            print(f"FAIL: pair {fast} vs {ref}: no common runs in current manifest")
            ok = False
            continue
        for suffix in suffixes:
            speedup = ref_runs[suffix] / fast_runs[suffix]
            flag = ""
            if speedup < required:
                flag = f"  <-- FAIL (< {required:.1f}x)"
                ok = False
            print(f"  {fast + suffix:45s} {speedup:6.2f}x faster than "
                  f"{ref + suffix}{flag}")
    return ok


def update_baseline(baseline_path, current_paths):
    """Replace the checked-in baseline with the current manifests.

    The pair gate still runs first: a refreshed baseline must not smuggle in
    a run where the fast variants stopped beating their references. With
    several --current manifests the first one is the carrier: the others'
    benchmark rows are appended to its "benchmarks" table so the baseline
    stays one file.
    """
    current = load_all_timings(current_paths)  # validates the manifest shapes
    print("== reference-vs-fast pair gate (pre-update) ==")
    if not check_pairs(current):
        print("baseline NOT updated: pair gate failed on the new manifest")
        return 1
    with open(current_paths[0]) as f:
        manifest = json.load(f)
    carrier = next(t for t in manifest["results"] if t["name"] == "benchmarks")
    for path in current_paths[1:]:
        with open(path) as f:
            extra = json.load(f)
        for table in extra.get("results", []):
            if table.get("name") == "benchmarks":
                carrier["rows"].extend(table["rows"])
    with open(baseline_path, "w") as f:
        json.dump(manifest, f, indent=1)
        f.write("\n")
    print(f"baseline updated: {', '.join(current_paths)} -> {baseline_path} "
          f"({len(current)} benchmarks)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True, action="append",
                        help="bench run manifest; may repeat, the union of "
                             "all 'benchmarks' tables is compared")
    parser.add_argument("--max-regression", type=float, default=1.5)
    parser.add_argument("--update", action="store_true",
                        help="regenerate the baseline from --current instead "
                             "of comparing against it (pair gate still runs)")
    args = parser.parse_args()

    if args.update:
        return update_baseline(args.baseline, args.current)

    baseline = load_timings(args.baseline)
    current = load_all_timings(args.current)

    print("== regression gate ==")
    regressions_ok = check_regressions(baseline, current, args.max_regression)
    print("== reference-vs-fast pair gate ==")
    pairs_ok = check_pairs(current)

    if regressions_ok and pairs_ok:
        print("perf baseline check: PASS")
        return 0
    print("perf baseline check: FAIL")
    return 1


if __name__ == "__main__":
    sys.exit(main())
