#!/usr/bin/env python3
"""End-to-end smoke test for `tokenring_tool serve`.

Boots the daemon on an ephemeral port, drives a scripted mix of good,
malformed, oversized, cached, and rate-limited requests over real TCP,
validates every response line as JSON against the tokenring.serve/1
envelope, and asserts a clean SIGTERM drain (exit code 0).

Usage:
  serve_smoke.py [path/to/tokenring_tool] [--connections N]

--connections N adds an fd-pressure phase: N concurrent idle connections
parked on the reactor (opened in waves, each proven served), the full
request mix driven underneath them, and a SIGTERM drain with everything
still parked. The soft fd limit is raised toward the hard limit first.

Exit code 0 when every check passes, 1 otherwise. Stdlib only.
"""

import argparse
import json
import resource
import signal
import socket
import subprocess
import sys

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from serve_client import ServeClient  # noqa: E402

CHECK_QUERY = {
    "type": "check",
    "id": 1,
    "protocol": "fddi",
    "bandwidth_mbps": 100,
    "streams": [
        {"station": 1, "period_ms": 10, "payload_bits": 64000},
        {"station": 2, "period_ms": 20, "payload_bits": 128000},
    ],
}

failures = []


def expect(cond, what):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {what}")
    if not cond:
        failures.append(what)


class ServeProcess:
    """tokenring_tool serve wrapper: boots, scrapes the port, tears down."""

    def __init__(self, tool, extra_flags=()):
        self.proc = subprocess.Popen(
            [tool, "serve", "--port=0", *extra_flags],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        # The daemon announces "tokenring.serve/1 listening on HOST:PORT" on
        # stderr once the socket is bound; scraping it avoids a sleep-and-hope
        # startup race.
        line = self.proc.stderr.readline().strip()
        if "listening on" not in line:
            self.proc.kill()
            sys.exit(f"error: unexpected serve banner: {line!r}")
        self.port = int(line.rsplit(":", 1)[1])

    def connect(self):
        sock = socket.create_connection(("127.0.0.1", self.port), timeout=10)
        return sock, sock.makefile("rb")

    def terminate(self):
        """SIGTERM and return the exit code (the drain contract is exit 0)."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return None
        finally:
            self.proc.stderr.close()
        return code


def ask(sock, reader, request):
    """Send one request line (dict or raw string), return the parsed reply."""
    line = request if isinstance(request, str) else json.dumps(request)
    sock.sendall(line.encode() + b"\n")
    reply = reader.readline()
    if not reply:
        sys.exit("error: server closed the connection mid-conversation")
    doc = json.loads(reply)  # every response line must be valid JSON
    if doc.get("schema") != "tokenring.serve/1":
        sys.exit(f"error: bad response schema: {doc.get('schema')!r}")
    return doc


def raise_fd_limit(needed):
    """Lift the soft RLIMIT_NOFILE toward the hard limit if necessary."""
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < needed:
        resource.setrlimit(resource.RLIMIT_NOFILE, (min(needed, hard), hard))


def fd_pressure_phase(tool, connections):
    """Park `connections` idle peers, then prove the server still serves
    the full mix underneath them and drains cleanly on SIGTERM."""
    print(f"== fd pressure ({connections} parked connections) ==")
    raise_fd_limit(connections + 64)
    server = ServeProcess(tool)

    # Waves below the listen backlog, each connection proven accepted and
    # served (one answered ping) before the next wave -- so the parked
    # count is real, not a pile of un-accepted SYNs.
    parked = []
    ping = json.dumps({"type": "ping", "id": "park"}).encode() + b"\n"
    while len(parked) < connections:
        wave = []
        for _ in range(min(256, connections - len(parked))):
            wave.append(socket.create_connection(("127.0.0.1", server.port),
                                                 timeout=10))
        for s in wave:
            s.sendall(ping)
        for s in wave:
            reader = s.makefile("rb")
            doc = json.loads(reader.readline())
            if doc.get("status") != 200:
                sys.exit("error: parked connection was not served")
        parked.extend(wave)
    expect(len(parked) == connections,
           f"{connections} connections parked and served")

    # The full request mix still flows with everything parked.
    sock, reader = server.connect()
    doc = ask(sock, reader, {"type": "ping", "id": "under-pressure"})
    expect(doc["status"] == 200, "ping served under fd pressure")
    doc = ask(sock, reader, CHECK_QUERY)
    expect(doc["status"] == 200, "check served under fd pressure")
    doc = ask(sock, reader, {"type": "stats"})
    counters = doc["result"]["counters"]
    expect(counters.get("serve.conn.opened", 0) >= connections,
           "stats counts the parked connections")
    gauges = doc["result"].get("gauges", {})
    expect(gauges.get("serve.reactor.peak_conns", 0) >= connections / 2,
           "stats reports the reactor peak-connection gauge")
    sock.close()

    # SIGTERM with everything parked: exit 0 and every peer sees EOF.
    code = server.terminate()
    expect(code == 0, "SIGTERM drain with parked connections exits 0")
    closed = 0
    for s in parked:
        s.settimeout(10)
        try:
            if s.recv(64) == b"":
                closed += 1
        except socket.timeout:
            pass
        s.close()
    expect(closed == connections,
           f"all {connections} parked connections closed on drain "
           f"({closed} saw EOF)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument("tool", nargs="?",
                        default="./build/tools/tokenring_tool")
    parser.add_argument("--connections", type=int, default=0,
                        help="also run the fd-pressure phase with this many "
                             "parked connections")
    args = parser.parse_args()
    tool = args.tool

    print("== request mix (no rate limit, 4 KiB request cap) ==")
    server = ServeProcess(tool, ["--max-request-bytes=4096"])
    sock, reader = server.connect()

    doc = ask(sock, reader, {"type": "ping", "id": 0})
    expect(doc["status"] == 200 and doc["result"]["message"] == "pong", "ping -> pong")

    doc = ask(sock, reader, CHECK_QUERY)
    expect(doc["status"] == 200 and doc["cached"] is False, "check -> 200, computed")
    expect("schedulable" in doc["result"], "check result carries a verdict")
    miss_bytes = json.dumps(doc, sort_keys=True)

    # Same query with every number respelled: canonicalization must make it
    # a cache hit, and the response must differ only in the "cached" flag.
    respelled = json.loads(json.dumps(CHECK_QUERY).replace("100", "1e2"))
    doc = ask(sock, reader, respelled)
    expect(doc["status"] == 200 and doc["cached"] is True, "respelled check -> cache hit")
    doc["cached"] = False
    expect(json.dumps(doc, sort_keys=True) == miss_bytes,
           "hit response byte-identical to miss modulo cached flag")

    doc = ask(sock, reader, {**CHECK_QUERY, "type": "faultcheck", "noise_ms": 1})
    expect(doc["status"] == 200 and len(doc["result"]["margins"]) > 0,
           "faultcheck -> 200 with per-fault margins")

    doc = ask(sock, reader, {"type": "advise", "id": "q-7", "stations": 8,
                             "sets": 2, "bandwidths_mbps": [16, 100]})
    expect(doc["status"] == 200 and len(doc["result"]["recommendations"]) == 2,
           "advise -> 200 with one recommendation per bandwidth")
    expect(doc["id"] == "q-7", "string request id echoed verbatim")

    doc = ask(sock, reader, '{"type": }')
    expect(doc["status"] == 400 and doc["offset"] == 9,
           "malformed JSON -> 400 pointing at byte offset 9")

    doc = ask(sock, reader, {**CHECK_QUERY, "bandwidth": 100})
    expect(doc["status"] == 400 and "bandwidth" in doc["error"],
           "unknown field -> 400 naming the field")

    doc = ask(sock, reader, {"type": "stats"})
    expect(doc["status"] == 200 and doc["result"]["counters"]["serve.cache.hits"] >= 1,
           "stats -> 200 reporting the cache hit")
    sock.close()

    # Oversized request on its own connection. The framing layer answers
    # 413 exactly once and then hangs up deterministically -- a client
    # that pipelined more requests behind the oversized one cannot desync.
    sock, reader = server.connect()
    huge = json.dumps({**CHECK_QUERY, "id": "x" * 8192})
    sock.sendall(huge.encode() + b"\n" +
                 json.dumps({"type": "ping"}).encode() + b"\n")
    doc = json.loads(reader.readline())
    expect(doc["status"] == 413, "oversized request -> 413")
    expect(reader.readline() == b"",
           "connection closed after the 413 (no desynced pipeline)")
    sock.close()

    # Drain: pipeline a burst of requests, then SIGTERM. Every request
    # already on the wire must still be answered before exit 0.
    sock, reader = server.connect()
    burst = 5
    payload = b"".join(json.dumps({"type": "ping", "id": i}).encode() + b"\n"
                       for i in range(burst))
    sock.sendall(payload)
    answered = sum(1 for _ in range(burst)
                   if json.loads(reader.readline())["status"] == 200)
    expect(answered == burst, f"all {burst} pipelined requests answered")
    code = server.terminate()
    expect(code == 0, "SIGTERM drain exits 0")
    expect(reader.readline() == b"", "connection closed after drain")
    sock.close()

    print("== rate limiting (1 req/s, burst 1) ==")
    server = ServeProcess(tool, ["--rate=1", "--burst=1"])
    sock, reader = server.connect()
    first = ask(sock, reader, {**CHECK_QUERY, "client": "smoke"})
    second = ask(sock, reader, {**CHECK_QUERY, "client": "smoke", "id": 2})
    expect(first["status"] == 200, "first request within burst -> 200")
    expect(second["status"] == 429 and second["retry_after_ms"] > 0,
           "second immediate request -> 429 with retry hint")
    doc = ask(sock, reader, {"type": "ping"})
    expect(doc["status"] == 200, "ping bypasses the limiter")
    sock.close()
    # The retrying client sleeps per the 429's retry_after_ms hint (plus
    # jitter) until the bucket refills -- no hand-tuned sleep needed.
    client = ServeClient(server.port)
    doc = client.request({**CHECK_QUERY, "client": "smoke", "id": 3})
    expect(doc["status"] == 200,
           "retrying client rides out the 429 and lands a 200")
    client.close()
    code = server.terminate()
    expect(code == 0, "rate-limited server drains cleanly too")

    if args.connections > 0:
        fd_pressure_phase(tool, args.connections)

    if failures:
        print(f"serve smoke: FAIL ({len(failures)} checks)")
        return 1
    print("serve smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
