#!/usr/bin/env python3
"""Verify the batch-kernel hot loops still autovectorize.

Usage:
  check_vectorization.py [--source src/tokenring/analysis/batch_kernels.cpp]
                         [--cxx g++] [--include src]

Recompiles the batch-kernel translation unit with the same scoped options
the build uses (-O3 -march=x86-64-v2 -fno-trapping-math) plus the
compiler's vectorization report, and requires at least one "loop
vectorized" remark inside every VEC-HOT-BEGIN(name)/VEC-HOT-END(name)
marker range in the source. The SoA layout only pays while the compiler
keeps vectorizing across lanes, so a refactor that silently breaks the
report (a new branch, an aliasing hazard, a libm call GCC will not
vectorize without -fno-trapping-math) fails CI here instead of landing as
a quiet 2x slowdown.

Supports GCC (-fopt-info-vec-optimized: "<file>:<line>:<col>: optimized:
loop vectorized ...") and Clang (-Rpass=loop-vectorize: "<file>:<line>:
<col>: remark: vectorized loop ..."). Exit 0 when every marked range has a
vectorized loop, 1 otherwise. Stdlib only.
"""

import argparse
import os
import re
import subprocess
import sys

MARKER_BEGIN = re.compile(r"VEC-HOT-BEGIN\((?P<name>[\w-]+)\)")
MARKER_END = re.compile(r"VEC-HOT-END\((?P<name>[\w-]+)\)")

# GCC: "optimized: loop vectorized using 16 byte vectors"
# Clang: "remark: vectorized loop (vectorization width: 2, ...)"
REMARK = re.compile(
    r"^(?P<file>[^:]+):(?P<line>\d+):\d+:\s*"
    r"(?:optimized:\s*loop vectorized|remark:\s*vectorized loop)")


def parse_marker_ranges(source):
    """Source path -> {name: (begin_line, end_line)}, 1-indexed exclusive."""
    ranges = {}
    open_markers = {}
    with open(source) as f:
        for lineno, line in enumerate(f, start=1):
            begin = MARKER_BEGIN.search(line)
            if begin:
                name = begin.group("name")
                if name in ranges or name in open_markers:
                    sys.exit(f"error: duplicate VEC-HOT marker '{name}'")
                open_markers[name] = lineno
                continue
            end = MARKER_END.search(line)
            if end:
                name = end.group("name")
                if name not in open_markers:
                    sys.exit(f"error: VEC-HOT-END({name}) without BEGIN")
                ranges[name] = (open_markers.pop(name), lineno)
    if open_markers:
        sys.exit(f"error: unclosed VEC-HOT markers: {sorted(open_markers)}")
    if not ranges:
        sys.exit(f"error: no VEC-HOT marker ranges found in {source}")
    return ranges


def compiler_command(cxx, source, include):
    is_clang = "clang" in os.path.basename(cxx)
    report = (["-Rpass=loop-vectorize"] if is_clang
              else ["-fopt-info-vec-optimized"])
    return [cxx, "-O3", "-march=x86-64-v2", "-fno-trapping-math",
            "-std=c++20", "-I", include, "-c", source, "-o", os.devnull,
            *report]


def vectorized_lines(output, source):
    """Report text -> set of source line numbers with a vectorized loop."""
    base = os.path.basename(source)
    lines = set()
    for raw in output.splitlines():
        m = REMARK.match(raw.strip())
        if m and os.path.basename(m.group("file")) == base:
            lines.add(int(m.group("line")))
    return lines


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--source",
                        default="src/tokenring/analysis/batch_kernels.cpp")
    parser.add_argument("--cxx", default=os.environ.get("CXX", "g++"))
    parser.add_argument("--include", default="src")
    args = parser.parse_args()

    ranges = parse_marker_ranges(args.source)
    cmd = compiler_command(args.cxx, args.source, args.include)
    print("compile:", " ".join(cmd))
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stderr, file=sys.stderr)
        sys.exit(f"error: compilation failed ({proc.returncode})")

    report = proc.stderr + proc.stdout
    hits = vectorized_lines(report, args.source)

    ok = True
    for name, (begin, end) in sorted(ranges.items()):
        inside = sorted(line for line in hits if begin < line < end)
        if inside:
            print(f"  {name:20s} lines {begin}-{end}: vectorized at "
                  f"{', '.join(map(str, inside))}")
        else:
            print(f"  {name:20s} lines {begin}-{end}: NO vectorized loop "
                  f"<-- FAIL")
            ok = False
    if ok:
        print("vectorization check: PASS")
        return 0
    print("vectorization check: FAIL (see compiler report below)")
    print(report, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
