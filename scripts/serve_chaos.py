#!/usr/bin/env python3
"""Chaos harness for `tokenring_tool serve`: hostile clients, one server.

Boots the daemon and subjects it to the abuse the transport layer is
hardened against -- slow-loris dribble, torn frames aborted mid-line,
oversized bodies, garbage floods on many connections, and a SIGTERM with
requests still in flight. The contract under all of it:

  * the server never crashes or wedges (every scenario re-proves
    liveness with a fresh well-formed request),
  * oversized lines get exactly one 413 and a deterministic hang-up,
  * well-formed requests that survive the chaos within their deadline
    come back with verdicts bit-identical to the pre-chaos baseline,
  * SIGTERM still drains: pipelined requests answered, exit code 0.

Usage:
  serve_chaos.py [path/to/tokenring_tool]   # default ./build/tools/tokenring_tool

Exit code 0 when every check passes, 1 otherwise. Stdlib only.
"""

import json
import signal
import socket
import struct
import subprocess
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from serve_client import ServeClient  # noqa: E402

CHECK_QUERY = {
    "type": "check",
    "id": "chaos-probe",
    "protocol": "fddi",
    "bandwidth_mbps": 100,
    "streams": [
        {"station": 1, "period_ms": 10, "payload_bits": 64000},
        {"station": 2, "period_ms": 20, "payload_bits": 128000},
    ],
}

failures = []


def expect(cond, what):
    status = "ok" if cond else "FAIL"
    print(f"  [{status}] {what}")
    if not cond:
        failures.append(what)


class ServeProcess:
    """tokenring_tool serve wrapper: boots, scrapes the port, tears down."""

    def __init__(self, tool, extra_flags=()):
        self.proc = subprocess.Popen(
            [tool, "serve", "--port=0", *extra_flags],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        line = self.proc.stderr.readline().strip()
        if "listening on" not in line:
            self.proc.kill()
            sys.exit(f"error: unexpected serve banner: {line!r}")
        self.port = int(line.rsplit(":", 1)[1])

    def alive(self):
        return self.proc.poll() is None

    def terminate(self):
        self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return None
        finally:
            self.proc.stderr.close()
        return code


def raw_connection(port):
    return socket.create_connection(("127.0.0.1", port), timeout=10)


def probe_result(port):
    """The verdict payload for the canonical check query, normalized."""
    client = ServeClient(port)
    doc = client.request(CHECK_QUERY, deadline_ms=10000)
    client.close()
    if doc.get("status") != 200:
        return None
    return json.dumps(doc["result"], sort_keys=True)


def scenario_slow_loris(server):
    """Dribbling connections that go silent must be reaped, not leaked."""
    victims = []
    for _ in range(8):
        sock = raw_connection(server.port)
        sock.sendall(b'{"type":"pi')  # partial frame, then silence
        victims.append(sock)
    # --idle-timeout-ms=300: within a couple of seconds every victim must
    # see the server hang up (recv returns b"").
    reaped = 0
    deadline = time.monotonic() + 5.0
    for sock in victims:
        sock.settimeout(max(0.1, deadline - time.monotonic()))
        try:
            if sock.recv(64) == b"":
                reaped += 1
        except socket.timeout:
            pass
        sock.close()
    expect(reaped == len(victims),
           f"slow-loris: all {len(victims)} idle dribblers reaped "
           f"({reaped} closed)")


def scenario_torn_frames(server):
    """Mid-line RSTs (SO_LINGER 0) must not take the server down."""
    for i in range(16):
        sock = raw_connection(server.port)
        payload = json.dumps({**CHECK_QUERY, "id": i}).encode()
        sock.sendall(payload[: 1 + i * 3])  # cut inside the frame
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
        sock.close()  # RST, not FIN
    expect(server.alive(), "torn frames: server survives 16 mid-line resets")


def scenario_oversized(server):
    """Over-cap lines: one 413, then a deterministic hang-up. Twice --
    once as a complete line, once as an unbounded dribble with no
    newline (the case a byte-counting server must cut off itself)."""
    for label, payload in [
        ("complete line", json.dumps({**CHECK_QUERY, "id": "y" * 2048})
         .encode() + b"\n"),
        ("unterminated dribble", b"x" * 4096),
    ]:
        sock = raw_connection(server.port)
        reader = sock.makefile("rb")
        sock.sendall(payload)
        doc = json.loads(reader.readline())
        expect(doc["status"] == 413, f"oversized {label} -> 413")
        expect(reader.readline() == b"",
               f"oversized {label}: connection closed after the 413")
        reader.close()
        sock.close()


def scenario_flood(server):
    """Garbage and well-formed lines interleaved over many connections:
    every line gets an answer, every answer is valid JSON."""
    lines = []
    for i in range(32):
        if i % 3 == 0:
            lines.append(b'{"type": ' + str(i).encode())  # malformed
        elif i % 3 == 1:
            lines.append(b'\x00\xff garbage \xfe')  # not JSON at all
        else:
            lines.append(json.dumps({"type": "ping", "id": i}).encode())
    socks = []
    for _ in range(8):
        sock = raw_connection(server.port)
        sock.sendall(b"\n".join(lines) + b"\n")
        socks.append(sock)
    answered = 0
    pongs = 0
    for sock in socks:
        reader = sock.makefile("rb")
        for _ in lines:
            doc = json.loads(reader.readline())
            answered += 1
            if doc["status"] == 200:
                pongs += 1
        reader.close()
        sock.close()
    valid = sum(1 for i in range(len(lines)) if i % 3 == 2)
    expect(answered == len(socks) * len(lines),
           f"flood: all {len(socks) * len(lines)} lines answered")
    expect(pongs == len(socks) * valid,
           "flood: every well-formed ping in the mix got its 200")


def scenario_deadlines(server):
    """An already-expired deadline is refused as a 504 with elapsed_ms;
    a generous one still computes."""
    client = ServeClient(server.port)
    doc = client.request(CHECK_QUERY, deadline_ms=0.0001)
    expect(doc["status"] == 504 and doc.get("elapsed_ms", 0) > 0,
           "expired deadline -> 504 with elapsed_ms")
    doc = client.request(CHECK_QUERY, deadline_ms=10000)
    expect(doc["status"] == 200, "generous deadline -> 200")
    client.close()


def scenario_sigterm_drain(server):
    """SIGTERM with a pipelined burst in flight AND 100+ idle connections
    parked on the reactor: every request already on the wire is answered,
    every parked peer sees EOF, then exit 0."""
    parked = []
    ping = json.dumps({"type": "ping", "id": "park"}).encode() + b"\n"
    for _ in range(120):
        sock = raw_connection(server.port)
        sock.sendall(ping)  # proven accepted and served before the SIGTERM
        if json.loads(sock.makefile("rb").readline()).get("status") != 200:
            sys.exit("error: parked chaos connection was not served")
        parked.append(sock)

    sock = raw_connection(server.port)
    reader = sock.makefile("rb")
    burst = 8
    sock.sendall(b"".join(
        json.dumps({"type": "ping", "id": i}).encode() + b"\n"
        for i in range(burst)))
    code = server.terminate()
    answered = sum(1 for _ in range(burst)
                   if json.loads(reader.readline())["status"] == 200)
    expect(answered == burst,
           f"SIGTERM drain: all {burst} in-flight requests answered")
    expect(code == 0, "SIGTERM drain: exit code 0")
    expect(reader.readline() == b"", "SIGTERM drain: connection then closed")
    reader.close()
    sock.close()

    closed = 0
    for s in parked:
        s.settimeout(10)
        try:
            if s.recv(64) == b"":
                closed += 1
        except socket.timeout:
            pass
        s.close()
    expect(closed == len(parked),
           f"SIGTERM drain: all {len(parked)} parked connections closed "
           f"({closed} saw EOF)")


def main():
    tool = sys.argv[1] if len(sys.argv) > 1 else "./build/tools/tokenring_tool"
    print("== chaos: hostile clients vs one hardened server ==")
    server = ServeProcess(tool, ["--max-request-bytes=1024",
                                 "--idle-timeout-ms=300"])

    baseline = probe_result(server.port)
    expect(baseline is not None, "baseline verdict captured before chaos")

    scenario_slow_loris(server)
    scenario_torn_frames(server)
    scenario_oversized(server)
    scenario_flood(server)
    scenario_deadlines(server)

    # The payoff check: after all of the above, a well-formed in-deadline
    # request gets a verdict bit-identical to the pre-chaos baseline.
    expect(probe_result(server.port) == baseline,
           "post-chaos verdict bit-identical to the baseline")
    expect(server.alive(), "server alive after every scenario")

    scenario_sigterm_drain(server)

    if failures:
        print(f"serve chaos: FAIL ({len(failures)} checks)")
        return 1
    print("serve chaos: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
