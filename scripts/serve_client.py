#!/usr/bin/env python3
"""Retrying line-protocol client for the tokenring.serve/1 daemon.

The Python twin of src/tokenring/serve/backoff.hpp: when the server
answers with a structured refusal (429 rate-limited or 503 shed), a
well-behaved client waits at least the response's retry_after_ms hint,
plus a full-jitter exponential component -- uniform(0, min(cap,
base * multiplier^attempt)) -- so a fleet of clients refused together
does not return in lockstep and re-create the overload that shed them.

Importable by the smoke and chaos harnesses (scripts/serve_smoke.py,
scripts/serve_chaos.py) and runnable as a one-shot CLI for manual use:

  serve_client.py PORT '{"type":"ping"}'

Stdlib only.
"""

import json
import random
import socket
import sys


class Backoff:
    """Full-jitter exponential backoff; parameters match backoff.hpp."""

    def __init__(self, base_s=0.025, cap_s=2.0, multiplier=2.0, rng=None):
        self.base_s = base_s
        self.cap_s = cap_s
        self.multiplier = multiplier
        self.rng = rng or random.Random()

    def delay_s(self, attempt, retry_after_s=0.0):
        """Wait before retry number `attempt` (0-based), in seconds."""
        ceiling = min(self.cap_s, self.base_s * self.multiplier ** attempt)
        return retry_after_s + self.rng.uniform(0.0, ceiling)


class RetriesExhausted(Exception):
    """The server kept refusing (429/503) past the retry budget."""

    def __init__(self, last_response):
        super().__init__(f"retries exhausted, last status "
                         f"{last_response.get('status')}")
        self.last_response = last_response


class ServeClient:
    """One connection to a serve daemon, with refusal-aware retries.

    request() returns the parsed response envelope for terminal statuses
    (200, 400, 404, 500, 504...) and transparently retries 429/503,
    sleeping per the shared backoff policy. A connection the server hung
    up (e.g. after a 413) is re-established on the next request.
    """

    def __init__(self, port, host="127.0.0.1", timeout_s=10.0,
                 max_retries=8, backoff=None, sleep=None):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff = backoff or Backoff()
        # Injection point so tests can count sleeps instead of waiting.
        self._sleep = sleep if sleep is not None else _real_sleep
        self._sock = None
        self._reader = None

    def connect(self):
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s)
            self._reader = self._sock.makefile("rb")
        return self._sock

    def close(self):
        if self._sock is not None:
            try:
                self._reader.close()
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._reader = None

    def ask_once(self, request):
        """Send one request (dict or raw string), return the parsed reply.

        Returns None if the server closed the connection instead of
        answering (the caller decides whether that is an error).
        """
        line = request if isinstance(request, str) else json.dumps(request)
        self.connect()
        self._sock.sendall(line.encode() + b"\n")
        reply = self._reader.readline()
        if not reply:
            self.close()
            return None
        return json.loads(reply)

    def request(self, request, deadline_ms=None):
        """ask_once plus the retry discipline for 429/503 refusals."""
        if deadline_ms is not None and not isinstance(request, str):
            request = {**request, "deadline_ms": deadline_ms}
        doc = None
        for attempt in range(self.max_retries + 1):
            doc = self.ask_once(request)
            if doc is None:
                raise ConnectionError("server closed the connection")
            if doc.get("status") not in (429, 503):
                return doc
            if attempt == self.max_retries:
                break
            hint_s = float(doc.get("retry_after_ms", 0)) / 1e3
            self._sleep(self.backoff.delay_s(attempt, hint_s))
        raise RetriesExhausted(doc)


def _real_sleep(seconds):
    import time
    time.sleep(seconds)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    client = ServeClient(int(argv[1]))
    try:
        doc = client.request(argv[2])
    except (RetriesExhausted, ConnectionError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    print(json.dumps(doc, sort_keys=True))
    return 0 if doc.get("status") == 200 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
