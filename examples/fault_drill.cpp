// Fault drill: inject token losses into both protocols on the same traffic
// and compare how their recovery mechanisms absorb the outages.
//
//   ./fault_drill --bandwidth-mbps=100 --losses=5

#include <cstdio>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/pdp_sim.hpp"
#include "tokenring/sim/ttp_sim.hpp"
#include "tokenring/sim/workload.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  flags.declare("losses", "5", "token losses to inject");
  flags.declare("horizon-ms", "500", "simulated time [ms]");
  flags.declare("seed", "7", "loss-timing seed");
  if (!flags.parse(argc, argv)) return 1;

  const BitsPerSecond bw = mbps(flags.get_double("bandwidth-mbps"));
  const Seconds horizon = milliseconds(flags.get_double("horizon-ms"));
  const auto losses = static_cast<int>(flags.get_int("losses"));

  msg::MessageSet set;
  set.add({.period = milliseconds(20), .payload_bits = bytes(2'000), .station = 0});
  set.add({.period = milliseconds(40), .payload_bits = bytes(5'000), .station = 2});
  set.add({.period = milliseconds(80), .payload_bits = bytes(10'000), .station = 5});

  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  std::vector<Seconds> loss_times;
  for (int i = 0; i < losses; ++i) {
    loss_times.push_back(rng.uniform(0.0, 0.9 * horizon));
  }

  std::printf("Injecting %d token losses over %.0f ms at %.0f Mbps\n\n",
              losses, to_milliseconds(horizon), to_mbps(bw));

  {
    analysis::PdpParams p;
    p.ring = net::ieee8025_ring(8);
    p.frame = net::paper_frame_format();
    p.variant = analysis::PdpVariant::kModified8025;
    auto cfg = sim::make_pdp_sim_config(set, p, bw);
    cfg.horizon = horizon;
    cfg.token_loss_times = loss_times;
    const auto m = sim::run_pdp_simulation(set, cfg);
    const Seconds outage =
        std::max(p.frame.frame_time(bw), p.ring.theta(bw)) + p.ring.theta(bw);
    std::printf("Modified IEEE 802.5 (monitor recovery ~%.1f us/loss):\n%s\n",
                to_microseconds(outage), m.summary().c_str());
  }
  {
    analysis::TtpParams p;
    p.ring = net::fddi_ring(8);
    p.frame = p.async_frame = net::paper_frame_format();
    auto cfg = sim::make_ttp_sim_config(set, p, bw);
    cfg.horizon = horizon;
    cfg.token_loss_times = loss_times;
    const Seconds outage = 2.0 * cfg.ttrt + 2.0 * p.ring.walk_time(bw) +
                           p.ring.token_time(bw);
    const auto m = sim::run_ttp_simulation(set, cfg);
    std::printf("FDDI timed token (claim recovery ~%.1f us/loss):\n%s",
                to_microseconds(outage), m.summary().c_str());
  }
  std::printf(
      "\n(The same loss schedule hits both rings; the 802.5 active monitor\n"
      " restores service orders of magnitude faster than FDDI's TRT-expiry\n"
      " detection plus claim process.)\n");
  return 0;
}
