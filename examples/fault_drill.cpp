// Fault drill: inject the same fault schedule into both protocols on the
// same traffic and compare how their recovery mechanisms absorb the
// outages.
//
//   ./fault_drill --bandwidth-mbps=100 --kind=token_loss --faults=5

#include <cstdio>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/fault/plan.hpp"
#include "tokenring/fault/recovery.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/workload.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  flags.declare("kind", "token_loss",
                "fault kind (token_loss, frame_corruption, noise_burst, "
                "station_crash, duplicate_token)");
  flags.declare("faults", "5", "faults to inject");
  flags.declare("noise-ms", "1", "noise burst duration [ms]");
  flags.declare("horizon-ms", "500", "simulated time [ms]");
  flags.declare("seed", "7", "fault-timing seed");
  if (!flags.parse(argc, argv)) return 1;

  const BitsPerSecond bw = mbps(flags.get_double("bandwidth-mbps"));
  const Seconds horizon = milliseconds(flags.get_double("horizon-ms"));
  const auto faults = static_cast<int>(flags.get_int("faults"));
  const auto kind = fault::parse_fault_kind(flags.get_string("kind"));
  if (!kind) {
    std::fprintf(stderr, "unknown fault kind '%s'\n",
                 flags.get_string("kind").c_str());
    return 1;
  }

  msg::MessageSet set;
  set.add({.period = milliseconds(20), .payload_bits = bytes(2'000), .station = 0});
  set.add({.period = milliseconds(40), .payload_bits = bytes(5'000), .station = 2});
  set.add({.period = milliseconds(80), .payload_bits = bytes(10'000), .station = 5});

  // One shared schedule hits both rings.
  fault::FaultPlan plan;
  {
    Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
    const Seconds noise = milliseconds(flags.get_double("noise-ms"));
    for (int i = 0; i < faults; ++i) {
      const Seconds at = rng.uniform(0.0, 0.9 * horizon);
      switch (*kind) {
        case fault::FaultKind::kTokenLoss:
          plan.add_token_loss(at);
          break;
        case fault::FaultKind::kFrameCorruption:
          plan.add_frame_corruption(at);
          break;
        case fault::FaultKind::kNoiseBurst:
          plan.add_noise_burst(at, noise);
          break;
        case fault::FaultKind::kStationCrash:
        case fault::FaultKind::kStationRejoin:
          plan.add_station_crash(at, static_cast<int>(rng.uniform_int(0, 7)),
                                 0.1 * horizon);
          break;
        case fault::FaultKind::kDuplicateToken:
          plan.add_duplicate_token(at);
          break;
      }
    }
  }

  std::printf("Injecting %d %s faults over %.0f ms at %.0f Mbps\n\n", faults,
              fault::to_string(*kind), to_milliseconds(horizon), to_mbps(bw));

  {
    analysis::PdpParams p;
    p.ring = net::ieee8025_ring(8);
    p.frame = net::paper_frame_format();
    p.variant = analysis::PdpVariant::kModified8025;
    auto cfg = sim::make_sim_config(set, p, bw);
    cfg.horizon = horizon;
    cfg.faults = plan;
    const auto m = sim::run_simulation(set, cfg);
    std::printf("Modified IEEE 802.5 (recovery model ~%.1f us/fault):\n%s\n",
                to_microseconds(fault::pdp_fault_outage(
                    *kind, p, bw, milliseconds(flags.get_double("noise-ms")))),
                m.summary().c_str());
  }
  {
    analysis::TtpParams p;
    p.ring = net::fddi_ring(8);
    p.frame = p.async_frame = net::paper_frame_format();
    auto cfg = sim::make_sim_config(set, p, bw);
    cfg.horizon = horizon;
    cfg.faults = plan;
    const auto m = sim::run_simulation(set, cfg);
    std::printf("FDDI timed token (recovery model ~%.1f us/fault):\n%s",
                to_microseconds(fault::ttp_fault_outage(
                    *kind, p, bw, cfg.ttrt,
                    milliseconds(flags.get_double("noise-ms")))),
                m.summary().c_str());
  }
  std::printf(
      "\n(The same fault schedule hits both rings; the 802.5 active monitor\n"
      " and beacon restore service orders of magnitude faster than FDDI's\n"
      " TRT-expiry detection plus claim process.)\n");
  return 0;
}
