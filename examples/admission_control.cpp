// Online admission control — the runtime face of the schedulability
// criteria: streams request guarantees one at a time; the controller admits
// only what remains provably schedulable, and can quote the payload
// headroom left for a prospective period.
//
//   ./admission_control --protocol=fddi --bandwidth-mbps=100

#include <cstdio>
#include <string>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/planner/planner.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("protocol", "fddi", "ieee8025 | modified8025 | fddi");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  flags.declare("stations", "32", "stations on the ring");
  flags.declare("requests", "40", "number of admission requests to replay");
  flags.declare("seed", "3", "RNG seed for the request workload");
  if (!flags.parse(argc, argv)) return 1;

  planner::Protocol protocol;
  const std::string name = flags.get_string("protocol");
  if (name == "ieee8025") {
    protocol = planner::Protocol::kIeee8025;
  } else if (name == "modified8025") {
    protocol = planner::Protocol::kModified8025;
  } else if (name == "fddi") {
    protocol = planner::Protocol::kFddi;
  } else {
    std::fprintf(stderr, "unknown protocol: %s\n", name.c_str());
    return 1;
  }

  const int stations = static_cast<int>(flags.get_int("stations"));
  const auto config = planner::default_config(
      protocol, mbps(flags.get_double("bandwidth-mbps")), stations);
  planner::AdmissionController controller(config);

  std::printf("Admission control on %s at %.0f Mbps (%d stations)\n\n",
              planner::to_string(protocol), to_mbps(config.bandwidth),
              stations);

  // Replay a random arrival sequence of guarantee requests.
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const auto requests = static_cast<int>(flags.get_int("requests"));
  int admitted = 0;
  for (int i = 0; i < requests; ++i) {
    msg::SyncStream s;
    s.station = static_cast<int>(rng.uniform_int(0, stations - 1));
    s.period = milliseconds(rng.uniform(10.0, 200.0));
    s.payload_bits = rng.uniform(10'000.0, 400'000.0);
    const auto decision = controller.try_admit(s);
    std::printf("request %2d: station %2d P=%5.1fms C=%6.0fb -> %-8s (U=%.3f) %s\n",
                i, s.station, to_milliseconds(s.period), s.payload_bits,
                decision.admitted ? "ADMIT" : "REJECT", decision.utilization,
                decision.admitted ? "" : decision.reason.c_str());
    if (decision.admitted) ++admitted;
  }

  std::printf("\nadmitted %d / %d requests; final utilization %.3f\n", admitted,
              requests, controller.utilization());

  // Quote remaining headroom for a hypothetical new 50 ms stream.
  for (int station = 0; station < stations; ++station) {
    const auto headroom = controller.headroom_bits(milliseconds(50), station);
    if (headroom) {
      std::printf(
          "first free station: %d — a 50 ms stream there could still carry "
          "%.0f bits (%.1f KB) per period\n",
          station, *headroom, *headroom / 8.0 / 1024.0);
      break;
    }
  }

  // Withdraw everything and show the controller drains cleanly.
  int removed = 0;
  for (int station = 0; station < stations; ++station) {
    while (controller.remove(station)) ++removed;
  }
  std::printf("released %d admitted streams; utilization now %.3f\n", removed,
              controller.utilization());
  return 0;
}
