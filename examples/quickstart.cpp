// Quickstart: can this message set be guaranteed on a token ring?
//
// Builds a small synchronous message set (or loads one from a scenario CSV
// file), checks its schedulability under all three protocol implementations
// the paper compares (IEEE 802.5, modified 802.5, FDDI timed token), and
// prints per-stream detail plus worst-case latency quotes and the
// asynchronous capacity the guaranteed load leaves over.
//
//   ./quickstart [--bandwidth-mbps=16] [--file=scenario.csv]

#include <algorithm>
#include <cstdio>

#include "tokenring/analysis/async_capacity.hpp"
#include "tokenring/analysis/latency.hpp"
#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/cli.hpp"
#include "tokenring/msg/io.hpp"
#include "tokenring/net/standards.hpp"

using namespace tokenring;

namespace {

// An 8-station ring carrying sensor/control/video-like periodic traffic.
msg::MessageSet demo_set() {
  msg::MessageSet set;
  set.add({.period = milliseconds(20), .payload_bits = bytes(1'500), .station = 0});
  set.add({.period = milliseconds(25), .payload_bits = bytes(2'000), .station = 1});
  set.add({.period = milliseconds(40), .payload_bits = bytes(6'000), .station = 2});
  set.add({.period = milliseconds(50), .payload_bits = bytes(4'000), .station = 3});
  set.add({.period = milliseconds(80), .payload_bits = bytes(12'000), .station = 4});
  set.add({.period = milliseconds(100), .payload_bits = bytes(16'000), .station = 5});
  set.add({.period = milliseconds(160), .payload_bits = bytes(20'000), .station = 6});
  set.add({.period = milliseconds(200), .payload_bits = bytes(24'000), .station = 7});
  return set;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("bandwidth-mbps", "16", "link bandwidth in Mbit/s");
  flags.declare("file", "", "scenario CSV (station,period_ms,payload_bits)");
  if (!flags.parse(argc, argv)) return 1;
  const BitsPerSecond bw = mbps(flags.get_double("bandwidth-mbps"));

  msg::MessageSet set;
  const std::string path = flags.get_string("file");
  if (path.empty()) {
    set = demo_set();
  } else {
    try {
      set = msg::load_message_set(path);
    } catch (const msg::ParseError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  if (set.empty()) {
    std::fprintf(stderr, "scenario has no streams\n");
    return 1;
  }

  int ring_size = static_cast<int>(set.size());
  for (const auto& s : set.streams()) {
    ring_size = std::max(ring_size, s.station + 1);
  }

  std::printf("message set: %zu streams, utilization %.3f at %.0f Mbps\n\n",
              set.size(), set.utilization(bw), to_mbps(bw));

  // --- Priority-driven protocol (both 802.5 implementations) ------------
  for (auto variant :
       {analysis::PdpVariant::kStandard8025, analysis::PdpVariant::kModified8025}) {
    analysis::PdpParams pdp;
    pdp.ring = net::ieee8025_ring(ring_size);
    pdp.frame = net::paper_frame_format();
    pdp.variant = variant;

    const auto verdict = analysis::pdp_schedulable(set, pdp, bw);
    std::printf("%-22s: %s  (blocking B = %.1f us)\n", to_string(variant),
                verdict.schedulable ? "SCHEDULABLE" : "NOT schedulable",
                to_microseconds(verdict.blocking));
    for (const auto& r : verdict.reports) {
      std::printf("  station %d: P=%5.1fms C'=%7.3fms frames=%3lld  %s",
                  r.stream.station, to_milliseconds(r.stream.period),
                  to_milliseconds(r.augmented_length),
                  static_cast<long long>(r.frames),
                  r.schedulable ? "ok" : "MISSES");
      if (r.response_time) {
        std::printf("  (worst response %.2f ms)", to_milliseconds(*r.response_time));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // --- Timed-token protocol (FDDI) ---------------------------------------
  analysis::TtpParams ttp;
  ttp.ring = net::fddi_ring(ring_size);
  ttp.frame = net::paper_frame_format();
  ttp.async_frame = net::paper_frame_format();

  const auto verdict = analysis::ttp_schedulable(set, ttp, bw);
  std::printf("%-22s: %s\n", "FDDI timed token",
              verdict.schedulable ? "SCHEDULABLE" : "NOT schedulable");
  std::printf("  TTRT=%.3fms  Lambda=%.3fms  allocated=%.3fms  available=%.3fms\n",
              to_milliseconds(verdict.ttrt), to_milliseconds(verdict.lambda),
              to_milliseconds(verdict.allocated),
              to_milliseconds(verdict.available));
  for (const auto& r : verdict.reports) {
    std::printf("  station %d: P=%5.1fms q=%2lld h=%.4fms %s\n", r.stream.station,
                to_milliseconds(r.stream.period), static_cast<long long>(r.q),
                to_milliseconds(r.h), r.deadline_feasible ? "" : "(q<2!)");
  }

  // --- Worst-case latency quotes and leftover async capacity -------------
  std::printf("\nFDDI worst-case latency quotes (Johnson bound):\n");
  for (const auto& b : analysis::ttp_latency_report(set, ttp, bw)) {
    std::printf("  station %d: %3lld visits, response <= %7.2f ms (slack %+.2f ms)\n",
                b.stream.station, static_cast<long long>(b.visits),
                to_milliseconds(b.response_bound), to_milliseconds(b.slack));
  }

  analysis::PdpParams pdp_mod;
  pdp_mod.ring = net::ieee8025_ring(ring_size);
  pdp_mod.frame = net::paper_frame_format();
  pdp_mod.variant = analysis::PdpVariant::kModified8025;
  std::printf(
      "\nleftover asynchronous capacity: modified 802.5 %.1f%%, FDDI %.1f%%\n",
      100.0 * analysis::pdp_async_capacity(set, pdp_mod, bw),
      100.0 * analysis::ttp_async_capacity(set, ttp, bw));
  return 0;
}
