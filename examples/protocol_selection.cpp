// Protocol selection at design time — the paper's motivating use case
// (Section 2): given a traffic profile and candidate link speeds, which MAC
// protocol should the network use?
//
//   ./protocol_selection --stations=100 --mean-period-ms=100
//                                  --bandwidths-mbps=4,16,100,622

#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/planner/advisor.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("stations", "100", "stations on the ring");
  flags.declare("mean-period-ms", "100", "average message period [ms]");
  flags.declare("period-ratio", "10", "max/min period ratio");
  flags.declare("bandwidths-mbps", "4,16,100,622",
                "candidate link speeds [Mbit/s]");
  flags.declare("sets", "50", "Monte Carlo sets per estimate");
  flags.declare("seed", "1", "RNG seed");
  if (!flags.parse(argc, argv)) return 1;

  planner::TrafficProfile profile;
  profile.num_stations = static_cast<int>(flags.get_int("stations"));
  profile.mean_period = milliseconds(flags.get_double("mean-period-ms"));
  profile.period_ratio = flags.get_double("period-ratio");

  std::printf(
      "Design-stage protocol selection\n"
      "traffic: %d stations, mean period %.0f ms, ratio %.0f\n\n",
      profile.num_stations, to_milliseconds(profile.mean_period),
      profile.period_ratio);

  Table table({"BW_Mbps", "ieee8025", "modified8025", "fddi", "recommend",
               "margin"});
  for (double bw_mbps : parse_double_list(flags.get_string("bandwidths-mbps"))) {
    const auto rec = planner::recommend_protocol(
        profile, mbps(bw_mbps),
        static_cast<std::size_t>(flags.get_int("sets")),
        static_cast<std::uint64_t>(flags.get_int("seed")));
    table.add_row({fmt(bw_mbps, 0), fmt(rec.ieee8025, 3),
                   fmt(rec.modified8025, 3), fmt(rec.fddi, 3),
                   planner::to_string(rec.best), fmt(rec.margin, 2)});
  }
  table.print(std::cout);

  std::printf(
      "\n(cells: estimated average breakdown utilization — the synchronous\n"
      " load the ring can typically guarantee; margin = best / runner-up.\n"
      " Expect PDP to win at low speeds and FDDI at 100+ Mbps, per the\n"
      " paper's conclusion.)\n");
  return 0;
}
