// Side-by-side discrete-event simulation of one message set under both
// protocols, with an optional event-by-event timeline (--trace-ms).
//
//   ./ring_simulation --bandwidth-mbps=16 --trace-ms=2

#include <cstdio>
#include <iostream>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/config.hpp"

using namespace tokenring;

namespace {

msg::MessageSet demo_set() {
  msg::MessageSet set;
  set.add({.period = milliseconds(20), .payload_bits = bytes(2'000), .station = 0});
  set.add({.period = milliseconds(30), .payload_bits = bytes(3'000), .station = 2});
  set.add({.period = milliseconds(50), .payload_bits = bytes(8'000), .station = 4});
  set.add({.period = milliseconds(80), .payload_bits = bytes(10'000), .station = 5});
  set.add({.period = milliseconds(120), .payload_bits = bytes(20'000), .station = 7});
  return set;
}

void print_per_station(const sim::SimMetrics& m) {
  Table table({"station", "released", "completed", "misses", "mean_resp_ms",
               "max_resp_ms"});
  for (const auto& [station, st] : m.per_station) {
    table.add_row({fmt(static_cast<long long>(station)),
                   fmt(static_cast<long long>(st.released)),
                   fmt(static_cast<long long>(st.completed)),
                   fmt(static_cast<long long>(st.misses)),
                   fmt(to_milliseconds(st.response_time.mean()), 3),
                   fmt(to_milliseconds(st.response_time.max()), 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("bandwidth-mbps", "16", "link bandwidth [Mbit/s]");
  flags.declare("horizon-ms", "500", "simulated time [ms]");
  flags.declare("trace-ms", "0",
                "print the event timeline for the first N ms (0 = off)");
  flags.declare("async", "saturating", "async model: none|saturating|poisson");
  flags.declare("async-fps", "2000", "Poisson async frames/s per station");
  if (!flags.parse(argc, argv)) return 1;

  const BitsPerSecond bw = mbps(flags.get_double("bandwidth-mbps"));
  const Seconds horizon = milliseconds(flags.get_double("horizon-ms"));
  const Seconds trace_until = milliseconds(flags.get_double("trace-ms"));

  sim::AsyncModel async_model;
  const std::string async_name = flags.get_string("async");
  if (async_name == "none") {
    async_model = sim::AsyncModel::kNone;
  } else if (async_name == "saturating") {
    async_model = sim::AsyncModel::kSaturating;
  } else if (async_name == "poisson") {
    async_model = sim::AsyncModel::kPoisson;
  } else {
    std::fprintf(stderr, "unknown async model: %s\n", async_name.c_str());
    return 1;
  }

  const auto set = demo_set();
  sim::CallbackSink trace_sink([trace_until](const sim::TraceRecord& r) {
    if (r.at <= trace_until) {
      std::puts(sim::format_trace_record(r).c_str());
    }
  });

  // ---- Priority-driven protocol (modified 802.5) -------------------------
  {
    sim::SimConfig cfg;
    cfg.protocol = sim::Protocol::kPdp;
    cfg.pdp.ring = net::ieee8025_ring(8);
    cfg.pdp.frame = net::paper_frame_format();
    cfg.pdp.variant = analysis::PdpVariant::kModified8025;
    cfg.bandwidth = bw;
    cfg.horizon = horizon;
    cfg.async_model = async_model;
    cfg.async_frames_per_second = flags.get_double("async-fps");
    if (trace_until > 0.0) cfg.trace = &trace_sink;

    std::printf("=== Modified IEEE 802.5 at %.0f Mbps (async: %s) ===\n",
                to_mbps(bw), to_string(async_model));
    const auto m = sim::run_simulation(set, cfg);
    std::printf("%s", m.summary().c_str());
    print_per_station(m);
    std::printf("\n");
  }

  // ---- Timed token protocol (FDDI) ----------------------------------------
  {
    sim::SimConfig cfg;
    cfg.protocol = sim::Protocol::kTtp;
    cfg.ttp.ring = net::fddi_ring(8);
    cfg.ttp.frame = net::paper_frame_format();
    cfg.ttp.async_frame = net::paper_frame_format();
    cfg.bandwidth = bw;
    cfg.horizon = horizon;
    cfg.async_model = async_model;
    cfg.async_frames_per_second = flags.get_double("async-fps");
    if (trace_until > 0.0) cfg.trace = &trace_sink;

    const Seconds ttrt = analysis::select_ttrt(set, cfg.ttp.ring, bw);
    std::printf("=== FDDI timed token at %.0f Mbps (TTRT %.3f ms) ===\n",
                to_mbps(bw), to_milliseconds(ttrt));
    const auto m = sim::run_simulation(set, cfg);
    std::printf("%s", m.summary().c_str());
    print_per_station(m);
  }
  return 0;
}
