// tokenring_tool — command-line front end for the library.
//
//   tokenring_tool check    --file=set.csv --protocol=fddi --bandwidth-mbps=100
//   tokenring_tool plan     --file=set.csv --bandwidth-mbps=100
//   tokenring_tool simulate --file=set.csv --protocol=modified8025
//                                       --bandwidth-mbps=16 --horizon-ms=500
//   tokenring_tool advise   --stations=100 --mean-period-ms=100
//                                       --bandwidths-mbps=4,16,100
//   tokenring_tool generate --stations=32 --utilization=0.4
//                                       --bandwidth-mbps=100 --file=set.csv
//   tokenring_tool faultcheck --file=set.csv --protocol=fddi
//                                       --bandwidth-mbps=100
//   tokenring_tool help [command]
//
// Every command also takes the shared observability flags: --format
// (table|csv|json), --out <manifest.json>, --profile. `generate` writes its
// scenario with --file; --out is always the run-manifest path.
//
// Exit codes: 0 = success / schedulable, 2 = not schedulable (check,
// faultcheck, plan, simulate), 1 = usage or input error.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "tokenring/analysis/async_capacity.hpp"
#include "tokenring/analysis/latency.hpp"
#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/fault/margins.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/msg/io.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/obs/registry.hpp"
#include "tokenring/obs/report.hpp"
#include "tokenring/obs/trace_sinks.hpp"
#include "tokenring/planner/advisor.hpp"
#include "tokenring/serve/server.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/workload.hpp"

using namespace tokenring;

namespace {

struct ParsedProtocol {
  bool is_ttp = false;
  analysis::PdpVariant variant = analysis::PdpVariant::kStandard8025;
};

bool parse_protocol(const std::string& name, ParsedProtocol& out) {
  if (name == "fddi") {
    out.is_ttp = true;
    return true;
  }
  if (name == "ieee8025") {
    out.variant = analysis::PdpVariant::kStandard8025;
    return true;
  }
  if (name == "modified8025") {
    out.variant = analysis::PdpVariant::kModified8025;
    return true;
  }
  std::fprintf(stderr,
               "unknown protocol '%s' (ieee8025|modified8025|fddi)\n",
               name.c_str());
  return false;
}

int ring_size_for(const msg::MessageSet& set) {
  int n = std::max<int>(2, static_cast<int>(set.size()));
  for (const auto& s : set.streams()) n = std::max(n, s.station + 1);
  return n;
}

msg::MessageSet load_or_die(const std::string& path) {
  if (path.empty()) {
    throw msg::ParseError("--file is required for this command");
  }
  return msg::load_message_set(path);
}

/// Record a table in the manifest and print it the way this tool always
/// has in table mode (aligned, no trailing CSV block); print only the CSV
/// form in csv mode.
void emit_table(obs::RunReport& report, const std::string& name,
                const Table& table) {
  report.record_table(name, table);
  if (report.verbose()) {
    table.print(std::cout);
  } else if (report.format() == obs::OutputFormat::kCsv) {
    table.print_csv(std::cout);
  }
}

// ---- check -------------------------------------------------------------------

void flags_check(CliFlags& flags) {
  flags.declare("file", "", "scenario CSV (station,period_ms,payload_bits)");
  flags.declare("protocol", "fddi", "ieee8025 | modified8025 | fddi");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
}

int cmd_check(const CliFlags& flags, obs::RunReport& report) {
  ParsedProtocol proto;
  if (!parse_protocol(flags.get_string("protocol"), proto)) return 1;
  const auto set = load_or_die(flags.get_string("file"));
  const BitsPerSecond bw = mbps(flags.get_double("bandwidth-mbps"));
  const int n = ring_size_for(set);

  bool ok;
  Table verdict({"protocol", "schedulable"});
  if (proto.is_ttp) {
    analysis::TtpParams p;
    p.ring = net::fddi_ring(n);
    p.frame = p.async_frame = net::paper_frame_format();
    const auto v = analysis::ttp_schedulable(set, p, bw);
    ok = v.schedulable;
    report.note("%s: %s (TTRT %.3f ms, allocated %.3f / available %.3f ms)\n",
                flags.get_string("protocol").c_str(),
                ok ? "SCHEDULABLE" : "NOT SCHEDULABLE",
                to_milliseconds(v.ttrt), to_milliseconds(v.allocated),
                to_milliseconds(v.available));
  } else {
    analysis::PdpParams p;
    p.ring = net::ieee8025_ring(n);
    p.frame = net::paper_frame_format();
    p.variant = proto.variant;
    const auto v = analysis::pdp_schedulable(set, p, bw);
    ok = v.schedulable;
    report.note("%s: %s (blocking %.1f us)\n",
                flags.get_string("protocol").c_str(),
                ok ? "SCHEDULABLE" : "NOT SCHEDULABLE",
                to_microseconds(v.blocking));
    for (const auto& r : v.reports) {
      if (!r.schedulable) {
        report.note("  station %d misses: C'=%.3f ms in P=%.1f ms\n",
                    r.stream.station, to_milliseconds(r.augmented_length),
                    to_milliseconds(r.stream.period));
      }
    }
  }
  verdict.add_row({flags.get_string("protocol"), ok ? "yes" : "no"});
  report.record_table("verdict", verdict);
  if (report.format() == obs::OutputFormat::kCsv) {
    verdict.print_csv(std::cout);
  }
  return ok ? 0 : 2;
}

// ---- faultcheck --------------------------------------------------------------

void flags_faultcheck(CliFlags& flags) {
  flags.declare("file", "", "scenario CSV (station,period_ms,payload_bits)");
  flags.declare("protocol", "fddi", "ieee8025 | modified8025 | fddi");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  flags.declare("noise-ms", "1", "noise burst duration [ms]");
}

int cmd_faultcheck(const CliFlags& flags, obs::RunReport& report) {
  ParsedProtocol proto;
  if (!parse_protocol(flags.get_string("protocol"), proto)) return 1;
  const auto set = load_or_die(flags.get_string("file"));
  const BitsPerSecond bw = mbps(flags.get_double("bandwidth-mbps"));
  const int n = ring_size_for(set);
  const Seconds noise = milliseconds(flags.get_double("noise-ms"));

  // One row per fault kind: how many such faults per period the fault-aware
  // criterion absorbs before the guarantee breaks.
  bool fault_free = false;
  Table table({"fault_kind", "recovery_us", "margin"});
  const auto add_row = [&](fault::FaultKind kind,
                           const fault::FaultMarginReport& fmr) {
    fault_free = fmr.fault_free_schedulable;
    table.add_row({fault::to_string(kind),
                   fmt(to_microseconds(fmr.recovery_per_fault), 1),
                   fmr.margin < 0 ? std::string("-")
                                  : fmt(static_cast<long long>(fmr.margin))});
  };

  if (proto.is_ttp) {
    analysis::TtpParams p;
    p.ring = net::fddi_ring(n);
    p.frame = p.async_frame = net::paper_frame_format();
    for (fault::FaultKind kind : fault::kAllFaultKinds) {
      if (kind == fault::FaultKind::kStationRejoin) continue;  // = crash cost
      fault::FaultBudget budget{kind, noise};
      add_row(kind, fault::ttp_fault_margin(set, p, bw, 0.0, budget));
    }
  } else {
    analysis::PdpParams p;
    p.ring = net::ieee8025_ring(n);
    p.frame = net::paper_frame_format();
    p.variant = proto.variant;
    for (fault::FaultKind kind : fault::kAllFaultKinds) {
      if (kind == fault::FaultKind::kStationRejoin) continue;  // = crash cost
      fault::FaultBudget budget{kind, noise};
      add_row(kind, fault::pdp_fault_margin(set, p, bw, budget));
    }
  }

  report.note("%s at %.0f Mbps: %s fault-free\n",
              flags.get_string("protocol").c_str(), to_mbps(bw),
              fault_free ? "SCHEDULABLE" : "NOT SCHEDULABLE");
  emit_table(report, "fault_margins", table);
  report.note(
      "(margin = max faults of that kind per period the fault-aware\n"
      " criterion still guarantees; '-' = infeasible even fault-free)\n");
  return fault_free ? 0 : 2;
}

// ---- plan --------------------------------------------------------------------

void flags_plan(CliFlags& flags) {
  flags.declare("file", "", "scenario CSV");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
}

int cmd_plan(const CliFlags& flags, obs::RunReport& report) {
  const auto set = load_or_die(flags.get_string("file"));
  const BitsPerSecond bw = mbps(flags.get_double("bandwidth-mbps"));
  const int n = ring_size_for(set);

  analysis::TtpParams ttp;
  ttp.ring = net::fddi_ring(n);
  ttp.frame = ttp.async_frame = net::paper_frame_format();
  const auto v = analysis::ttp_schedulable(set, ttp, bw);
  report.note("FDDI plan at %.0f Mbps: TTRT %.3f ms (%s)\n", to_mbps(bw),
              to_milliseconds(v.ttrt),
              v.schedulable ? "schedulable" : "NOT schedulable");

  Table table({"station", "P_ms", "q", "h_us", "visits", "resp_bound_ms",
               "slack_ms"});
  const auto latency = analysis::ttp_latency_report(set, ttp, bw);
  for (std::size_t i = 0; i < v.reports.size(); ++i) {
    const auto& r = v.reports[i];
    const auto& b = latency[i];
    table.add_row({fmt(static_cast<long long>(r.stream.station)),
                   fmt(to_milliseconds(r.stream.period), 1),
                   fmt(static_cast<long long>(r.q)),
                   fmt(to_microseconds(r.h), 2),
                   fmt(static_cast<long long>(b.visits)),
                   fmt(to_milliseconds(b.response_bound), 2),
                   fmt(to_milliseconds(b.slack), 2)});
  }
  emit_table(report, "latency_plan", table);
  report.note("async capacity left: %.1f%%\n",
              100.0 * analysis::ttp_async_capacity(set, ttp, bw));
  return v.schedulable ? 0 : 2;
}

// ---- simulate ------------------------------------------------------------------

void flags_simulate(CliFlags& flags) {
  flags.declare("file", "", "scenario CSV");
  flags.declare("protocol", "fddi", "ieee8025 | modified8025 | fddi");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  flags.declare("horizon-ms", "500", "simulated time [ms]");
  flags.declare("async", "saturating", "none|saturating|poisson");
  flags.declare("async-fps", "1000", "Poisson async frames/s per station");
  flags.declare("seed", "1", "simulation seed");
  flags.declare("trace-jsonl", "",
                "write every trace event to this file as JSON Lines");
}

int cmd_simulate(const CliFlags& flags, obs::RunReport& report) {
  ParsedProtocol proto;
  if (!parse_protocol(flags.get_string("protocol"), proto)) return 1;
  const auto set = load_or_die(flags.get_string("file"));
  const BitsPerSecond bw = mbps(flags.get_double("bandwidth-mbps"));
  const int n = ring_size_for(set);

  sim::AsyncModel async_model;
  const std::string async_name = flags.get_string("async");
  if (async_name == "none") {
    async_model = sim::AsyncModel::kNone;
  } else if (async_name == "saturating") {
    async_model = sim::AsyncModel::kSaturating;
  } else if (async_name == "poisson") {
    async_model = sim::AsyncModel::kPoisson;
  } else {
    std::fprintf(stderr, "unknown async model: %s\n", async_name.c_str());
    return 1;
  }

  const std::string trace_path = flags.get_string("trace-jsonl");
  std::unique_ptr<obs::JsonlTraceSink> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<obs::JsonlTraceSink>(trace_path);
    if (!trace->ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n", trace_path.c_str());
      return 1;
    }
  }

  sim::SimMetrics m;
  if (proto.is_ttp) {
    analysis::TtpParams p;
    p.ring = net::fddi_ring(n);
    p.frame = p.async_frame = net::paper_frame_format();
    auto cfg = sim::make_sim_config(set, p, bw);
    cfg.horizon = milliseconds(flags.get_double("horizon-ms"));
    cfg.async_model = async_model;
    cfg.async_frames_per_second = flags.get_double("async-fps");
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    cfg.trace = trace.get();
    m = sim::run_simulation(set, cfg);
  } else {
    analysis::PdpParams p;
    p.ring = net::ieee8025_ring(n);
    p.frame = net::paper_frame_format();
    p.variant = proto.variant;
    auto cfg = sim::make_sim_config(set, p, bw);
    cfg.horizon = milliseconds(flags.get_double("horizon-ms"));
    cfg.async_model = async_model;
    cfg.async_frames_per_second = flags.get_double("async-fps");
    cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    cfg.trace = trace.get();
    m = sim::run_simulation(set, cfg);
  }
  report.note("%s", m.summary().c_str());

  Table table({"released", "completed", "misses", "miss_ratio",
               "mean_response_ms", "token_rotation_ms", "async_frames",
               "max_queue_depth"});
  table.add_row({fmt(static_cast<long long>(m.messages_released)),
                 fmt(static_cast<long long>(m.messages_completed)),
                 fmt(static_cast<long long>(m.deadline_misses)),
                 fmt(m.miss_ratio(), 4),
                 fmt(m.response_time.count() > 0
                         ? to_milliseconds(m.response_time.mean())
                         : 0.0,
                     4),
                 fmt(m.token_rotation.count() > 0
                         ? to_milliseconds(m.token_rotation.mean())
                         : 0.0,
                     4),
                 fmt(static_cast<long long>(m.async_frames_sent)),
                 fmt(static_cast<long long>(m.max_queue_depth))});
  report.record_table("metrics", table);
  if (report.format() == obs::OutputFormat::kCsv) table.print_csv(std::cout);
  return m.deadline_misses == 0 ? 0 : 2;
}

// ---- advise --------------------------------------------------------------------

void flags_advise(CliFlags& flags) {
  flags.declare("stations", "100", "stations on the ring");
  flags.declare("mean-period-ms", "100", "average period [ms]");
  flags.declare("period-ratio", "10", "max/min period ratio");
  flags.declare("bandwidths-mbps", "4,16,100,622", "candidate speeds");
  flags.declare("sets", "50", "Monte Carlo sets per estimate");
  flags.declare("seed", "1", "RNG seed");
  declare_jobs_flag(flags);
  declare_batch_flag(flags);
}

int cmd_advise(const CliFlags& flags, obs::RunReport& report) {
  planner::TrafficProfile profile;
  profile.num_stations = static_cast<int>(flags.get_int("stations"));
  profile.mean_period = milliseconds(flags.get_double("mean-period-ms"));
  profile.period_ratio = flags.get_double("period-ratio");

  const exec::Executor executor(get_jobs(flags));
  const auto sets = static_cast<std::size_t>(flags.get_int("sets"));
  const auto batch = get_batch(flags, sets);
  Table table({"BW_Mbps", "ieee8025", "modified8025", "fddi",
               "resil_8025", "resil_fddi", "recommend"});
  for (double bw : parse_double_list(flags.get_string("bandwidths-mbps"))) {
    const auto rec = planner::recommend_protocol(
        profile, mbps(bw), sets,
        static_cast<std::uint64_t>(flags.get_int("seed")), executor, batch);
    table.add_row({fmt(bw, 0), fmt(rec.ieee8025, 3), fmt(rec.modified8025, 3),
                   fmt(rec.fddi, 3), fmt(rec.modified8025_resilience, 1),
                   fmt(rec.fddi_resilience, 1), planner::to_string(rec.best)});
  }
  emit_table(report, "recommendations", table);
  report.note(
      "(resil_* = mean token losses per period absorbed at 70%% of each\n"
      " sampled set's schedulability boundary)\n");
  // The RTA treats an iteration-cap bailout as "unschedulable" to stay
  // conservative; if any probe hit the cap, the estimates above lean
  // pessimistic and the numerics deserve a look.
  const auto metrics = obs::Registry::global().snapshot();
  const auto cap_hits = metrics.counters.find("analysis.rta_cap_hits");
  if (cap_hits != metrics.counters.end() && cap_hits->second > 0) {
    report.note(
        "warning: %llu response-time iterations hit the %d-step cap without\n"
        " converging; the affected sets were conservatively treated as\n"
        " unschedulable (see analysis.rta_cap_hits in the manifest)\n",
        static_cast<unsigned long long>(cap_hits->second),
        analysis::kMaxRtaIterations);
  }
  return 0;
}

// ---- generate ------------------------------------------------------------------

void flags_generate(CliFlags& flags) {
  flags.declare("stations", "32", "stations / streams");
  flags.declare("mean-period-ms", "100", "average period [ms]");
  flags.declare("period-ratio", "10", "max/min period ratio");
  flags.declare("utilization", "0.3", "target utilization at --bandwidth-mbps");
  flags.declare("bandwidth-mbps", "100", "bandwidth the utilization refers to");
  flags.declare("deadline-fraction", "1.0",
                "relative deadline as a fraction of the period (1 = paper model)");
  flags.declare("seed", "1", "RNG seed");
  flags.declare("file", "",
                "output scenario file (empty = stdout; required with "
                "--format=json, whose stdout is the manifest)");
}

int cmd_generate(const CliFlags& flags, obs::RunReport& report) {
  msg::GeneratorConfig g;
  g.num_streams = static_cast<int>(flags.get_int("stations"));
  g.mean_period = milliseconds(flags.get_double("mean-period-ms"));
  g.period_ratio = flags.get_double("period-ratio");
  g.deadline_fraction = flags.get_double("deadline-fraction");
  msg::MessageSetGenerator gen(g);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  auto set = gen.generate(rng);

  const BitsPerSecond bw = mbps(flags.get_double("bandwidth-mbps"));
  const double target = flags.get_double("utilization");
  set = set.scaled(target / set.utilization(bw));

  const std::string out = flags.get_string("file");
  if (out.empty()) {
    if (report.format() == obs::OutputFormat::kJson) {
      std::fprintf(stderr,
                   "generate --format=json needs --file: stdout carries the "
                   "run manifest\n");
      return 1;
    }
    // The scenario itself is the payload, so it prints in csv mode too.
    std::fputs(msg::to_csv(set).c_str(), stdout);
  } else {
    msg::save_message_set(out, set);
    report.note("wrote %zu streams (U=%.3f at %.0f Mbps) to %s\n", set.size(),
                set.utilization(bw), to_mbps(bw), out.c_str());
  }
  return 0;
}

// ---- serve ---------------------------------------------------------------------

void flags_serve(CliFlags& flags) {
  flags.declare("host", "127.0.0.1", "listen address");
  flags.declare("port", "0", "listen port (0 = ephemeral, announced on stderr)");
  flags.declare("rate", "0", "per-client requests/s (0 = unlimited)");
  flags.declare("burst", "0", "rate-limit burst (0 = one second at --rate)");
  flags.declare("cache-shards", "16", "result cache shards");
  flags.declare("cache-capacity", "1024", "cached results per shard");
  flags.declare("max-request-bytes", "1048576",
                "reject longer request lines with a 413");
  flags.declare("batch-group", "0",
                "max compute jobs per batch group (0 = pool width)");
  flags.declare("high-water", "512",
                "shed uncached compute with a 503 beyond this many queued "
                "jobs (0 = serve from cache only)");
  flags.declare("idle-timeout-ms", "30000",
                "drop connections silent for this long (0 = never)");
  flags.declare("write-timeout-ms", "10000",
                "drop connections that stop reading responses (0 = never)");
  flags.declare("front-end", "reactor",
                "connection front end: reactor (sharded epoll) or threaded "
                "(one thread per connection)");
  flags.declare("reactors", "0",
                "reactor shards (0 = one per available core)");
  flags.declare("backlog", "1024", "listen(2) backlog");
  declare_jobs_flag(flags);
}

serve::Server* g_serve_instance = nullptr;

void serve_stop_handler(int) {
  // request_stop is one write() on a pipe: async-signal-safe.
  if (g_serve_instance != nullptr) g_serve_instance->request_stop();
}

int cmd_serve(const CliFlags& flags, obs::RunReport& report) {
  serve::Server::Options opt;
  opt.host = flags.get_string("host");
  opt.port = static_cast<int>(flags.get_int("port"));
  opt.engine.jobs = get_jobs(flags);
  opt.engine.max_group =
      static_cast<std::size_t>(flags.get_int("batch-group"));
  opt.engine.max_request_bytes =
      static_cast<std::size_t>(flags.get_int("max-request-bytes"));
  opt.engine.cache.shards =
      static_cast<std::size_t>(flags.get_int("cache-shards"));
  opt.engine.cache.capacity_per_shard =
      static_cast<std::size_t>(flags.get_int("cache-capacity"));
  opt.engine.limit.rate_per_s = flags.get_double("rate");
  opt.engine.limit.burst = flags.get_double("burst");
  opt.engine.high_water = static_cast<std::size_t>(flags.get_int("high-water"));
  opt.idle_timeout_ms = static_cast<int>(flags.get_int("idle-timeout-ms"));
  opt.write_timeout_ms = static_cast<int>(flags.get_int("write-timeout-ms"));
  opt.backlog = static_cast<int>(flags.get_int("backlog"));
  opt.reactors = static_cast<std::size_t>(flags.get_int("reactors"));
  const std::string front_end = flags.get_string("front-end");
  if (front_end == "reactor") {
    opt.front_end = serve::Server::FrontEnd::kReactor;
  } else if (front_end == "threaded") {
    opt.front_end = serve::Server::FrontEnd::kThreaded;
  } else {
    std::fprintf(stderr, "unknown --front-end '%s' (reactor|threaded)\n",
                 front_end.c_str());
    return 1;
  }

  serve::Server server(opt);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  g_serve_instance = &server;
  struct sigaction sa = {};
  sa.sa_handler = serve_stop_handler;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  // Announced on stderr so --format=json keeps stdout for the manifest;
  // scripts scrape this line for the ephemeral port.
  std::fprintf(stderr, "%s listening on %s:%d\n", serve::kServeSchema,
               opt.host.c_str(), server.port());
  server.wait();
  g_serve_instance = nullptr;

  const auto metrics = obs::Registry::global().snapshot();
  const auto requests = metrics.counters.find("serve.requests");
  report.note("drained after %llu requests\n",
              requests == metrics.counters.end()
                  ? 0ULL
                  : static_cast<unsigned long long>(requests->second));
  return 0;
}

// ---- registry ------------------------------------------------------------------

struct Command {
  const char* name;
  const char* summary;
  void (*declare_flags)(CliFlags&);
  int (*run)(const CliFlags&, obs::RunReport&);
};

constexpr Command kCommands[] = {
    {"check", "schedulability verdict for one scenario", flags_check,
     cmd_check},
    {"faultcheck", "fault margins per fault kind for one scenario",
     flags_faultcheck, cmd_faultcheck},
    {"plan", "FDDI TTRT plan with per-station latency bounds", flags_plan,
     cmd_plan},
    {"simulate", "event-driven simulation of one scenario", flags_simulate,
     cmd_simulate},
    {"advise", "recommend a protocol per candidate bandwidth", flags_advise,
     cmd_advise},
    {"generate", "draw a random scenario at a target utilization",
     flags_generate, cmd_generate},
    {"serve", "TCP daemon answering check/faultcheck/advise queries",
     flags_serve, cmd_serve},
};

const Command* find_command(const std::string& name) {
  for (const Command& c : kCommands) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

int usage() {
  std::fprintf(stderr, "usage: tokenring_tool <command> [--flag=value ...]\n");
  for (const Command& c : kCommands) {
    std::fprintf(stderr, "  %-10s %s\n", c.name, c.summary);
  }
  std::fprintf(stderr,
               "  %-10s %s\n"
               "shared flags on every command: --format=table|csv|json, "
               "--out=<manifest.json>, --profile\n"
               "run `tokenring_tool help <command>` for its flags\n",
               "help", "list commands, or show one command's flags");
  return 1;
}

int cmd_help(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 0;  // explicit help request: not an error
  }
  const Command* c = find_command(argv[1]);
  if (!c) {
    std::fprintf(stderr, "unknown command: %s\n", argv[1]);
    return usage();
  }
  CliFlags flags;
  c->declare_flags(flags);
  obs::declare_report_flags(flags);
  flags.print_usage(std::string("tokenring_tool ") + c->name);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    return cmd_help(argc - 1, argv + 1);
  }
  const Command* c = find_command(cmd);
  if (!c) return usage();

  CliFlags flags;
  c->declare_flags(flags);
  obs::declare_report_flags(flags);
  // Shift argv so the command's CliFlags sees its own flags.
  argv[1] = argv[0];
  switch (flags.parse_detailed(argc - 1, argv + 1)) {
    case CliFlags::ParseOutcome::kHelp:
      return 0;  // explicit --help is not an error
    case CliFlags::ParseOutcome::kError:
      std::fprintf(stderr, "run `tokenring_tool help %s` for its flags\n",
                   c->name);
      return 1;
    case CliFlags::ParseOutcome::kOk:
      break;
  }

  obs::RunReport report(std::string("tokenring_tool ") + c->name);
  if (!report.init(flags)) return 1;

  try {
    const int rc = c->run(flags, report);
    const int finish_rc = report.finish();
    return rc != 0 ? rc : finish_rc;
  } catch (const msg::ParseError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  } catch (const PreconditionError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}
