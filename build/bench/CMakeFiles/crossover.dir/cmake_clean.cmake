file(REMOVE_RECURSE
  "CMakeFiles/crossover.dir/crossover.cpp.o"
  "CMakeFiles/crossover.dir/crossover.cpp.o.d"
  "crossover"
  "crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
