# Empty compiler generated dependencies file for station_count.
# This may be replaced when dependencies are built.
