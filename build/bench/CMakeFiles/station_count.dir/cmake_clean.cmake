file(REMOVE_RECURSE
  "CMakeFiles/station_count.dir/station_count.cpp.o"
  "CMakeFiles/station_count.dir/station_count.cpp.o.d"
  "station_count"
  "station_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/station_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
