file(REMOVE_RECURSE
  "CMakeFiles/async_capacity.dir/async_capacity.cpp.o"
  "CMakeFiles/async_capacity.dir/async_capacity.cpp.o.d"
  "async_capacity"
  "async_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
