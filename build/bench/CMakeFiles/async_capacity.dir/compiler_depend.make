# Empty compiler generated dependencies file for async_capacity.
# This may be replaced when dependencies are built.
