# Empty compiler generated dependencies file for period_distribution.
# This may be replaced when dependencies are built.
