file(REMOVE_RECURSE
  "CMakeFiles/period_distribution.dir/period_distribution.cpp.o"
  "CMakeFiles/period_distribution.dir/period_distribution.cpp.o.d"
  "period_distribution"
  "period_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/period_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
