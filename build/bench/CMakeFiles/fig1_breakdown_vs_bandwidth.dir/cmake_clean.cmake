file(REMOVE_RECURSE
  "CMakeFiles/fig1_breakdown_vs_bandwidth.dir/fig1_breakdown_vs_bandwidth.cpp.o"
  "CMakeFiles/fig1_breakdown_vs_bandwidth.dir/fig1_breakdown_vs_bandwidth.cpp.o.d"
  "fig1_breakdown_vs_bandwidth"
  "fig1_breakdown_vs_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_breakdown_vs_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
