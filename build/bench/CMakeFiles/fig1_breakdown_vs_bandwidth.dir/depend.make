# Empty dependencies file for fig1_breakdown_vs_bandwidth.
# This may be replaced when dependencies are built.
