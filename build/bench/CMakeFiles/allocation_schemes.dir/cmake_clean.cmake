file(REMOVE_RECURSE
  "CMakeFiles/allocation_schemes.dir/allocation_schemes.cpp.o"
  "CMakeFiles/allocation_schemes.dir/allocation_schemes.cpp.o.d"
  "allocation_schemes"
  "allocation_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocation_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
