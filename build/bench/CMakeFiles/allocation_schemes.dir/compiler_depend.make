# Empty compiler generated dependencies file for allocation_schemes.
# This may be replaced when dependencies are built.
