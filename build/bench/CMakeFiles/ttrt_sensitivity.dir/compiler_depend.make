# Empty compiler generated dependencies file for ttrt_sensitivity.
# This may be replaced when dependencies are built.
