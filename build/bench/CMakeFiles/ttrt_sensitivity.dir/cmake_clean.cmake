file(REMOVE_RECURSE
  "CMakeFiles/ttrt_sensitivity.dir/ttrt_sensitivity.cpp.o"
  "CMakeFiles/ttrt_sensitivity.dir/ttrt_sensitivity.cpp.o.d"
  "ttrt_sensitivity"
  "ttrt_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttrt_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
