# Empty compiler generated dependencies file for frame_size.
# This may be replaced when dependencies are built.
