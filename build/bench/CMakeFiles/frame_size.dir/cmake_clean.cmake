file(REMOVE_RECURSE
  "CMakeFiles/frame_size.dir/frame_size.cpp.o"
  "CMakeFiles/frame_size.dir/frame_size.cpp.o.d"
  "frame_size"
  "frame_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frame_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
