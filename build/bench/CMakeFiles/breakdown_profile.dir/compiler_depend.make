# Empty compiler generated dependencies file for breakdown_profile.
# This may be replaced when dependencies are built.
