file(REMOVE_RECURSE
  "CMakeFiles/breakdown_profile.dir/breakdown_profile.cpp.o"
  "CMakeFiles/breakdown_profile.dir/breakdown_profile.cpp.o.d"
  "breakdown_profile"
  "breakdown_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakdown_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
