file(REMOVE_RECURSE
  "CMakeFiles/micro_schedulability.dir/micro_schedulability.cpp.o"
  "CMakeFiles/micro_schedulability.dir/micro_schedulability.cpp.o.d"
  "micro_schedulability"
  "micro_schedulability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_schedulability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
