# Empty dependencies file for micro_schedulability.
# This may be replaced when dependencies are built.
