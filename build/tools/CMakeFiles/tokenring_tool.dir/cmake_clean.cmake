file(REMOVE_RECURSE
  "CMakeFiles/tokenring_tool.dir/tokenring_tool.cpp.o"
  "CMakeFiles/tokenring_tool.dir/tokenring_tool.cpp.o.d"
  "tokenring_tool"
  "tokenring_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tokenring_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
