# Empty dependencies file for tokenring_tool.
# This may be replaced when dependencies are built.
