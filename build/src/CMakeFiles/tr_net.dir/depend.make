# Empty dependencies file for tr_net.
# This may be replaced when dependencies are built.
