file(REMOVE_RECURSE
  "CMakeFiles/tr_net.dir/tokenring/net/frame.cpp.o"
  "CMakeFiles/tr_net.dir/tokenring/net/frame.cpp.o.d"
  "CMakeFiles/tr_net.dir/tokenring/net/ring.cpp.o"
  "CMakeFiles/tr_net.dir/tokenring/net/ring.cpp.o.d"
  "CMakeFiles/tr_net.dir/tokenring/net/standards.cpp.o"
  "CMakeFiles/tr_net.dir/tokenring/net/standards.cpp.o.d"
  "libtr_net.a"
  "libtr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
