
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenring/net/frame.cpp" "src/CMakeFiles/tr_net.dir/tokenring/net/frame.cpp.o" "gcc" "src/CMakeFiles/tr_net.dir/tokenring/net/frame.cpp.o.d"
  "/root/repo/src/tokenring/net/ring.cpp" "src/CMakeFiles/tr_net.dir/tokenring/net/ring.cpp.o" "gcc" "src/CMakeFiles/tr_net.dir/tokenring/net/ring.cpp.o.d"
  "/root/repo/src/tokenring/net/standards.cpp" "src/CMakeFiles/tr_net.dir/tokenring/net/standards.cpp.o" "gcc" "src/CMakeFiles/tr_net.dir/tokenring/net/standards.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
