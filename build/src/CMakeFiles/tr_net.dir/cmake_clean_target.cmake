file(REMOVE_RECURSE
  "libtr_net.a"
)
