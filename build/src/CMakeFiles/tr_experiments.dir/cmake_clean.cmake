file(REMOVE_RECURSE
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/allocation_study.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/allocation_study.cpp.o.d"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/crossover_study.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/crossover_study.cpp.o.d"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/deadline_study.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/deadline_study.cpp.o.d"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/distribution_study.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/distribution_study.cpp.o.d"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/fault_study.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/fault_study.cpp.o.d"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/fig1.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/fig1.cpp.o.d"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/frame_size_study.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/frame_size_study.cpp.o.d"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/setup.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/setup.cpp.o.d"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/sim_validation_study.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/sim_validation_study.cpp.o.d"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/station_count_study.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/station_count_study.cpp.o.d"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/ttrt_study.cpp.o"
  "CMakeFiles/tr_experiments.dir/tokenring/experiments/ttrt_study.cpp.o.d"
  "libtr_experiments.a"
  "libtr_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
