
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenring/experiments/allocation_study.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/allocation_study.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/allocation_study.cpp.o.d"
  "/root/repo/src/tokenring/experiments/crossover_study.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/crossover_study.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/crossover_study.cpp.o.d"
  "/root/repo/src/tokenring/experiments/deadline_study.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/deadline_study.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/deadline_study.cpp.o.d"
  "/root/repo/src/tokenring/experiments/distribution_study.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/distribution_study.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/distribution_study.cpp.o.d"
  "/root/repo/src/tokenring/experiments/fault_study.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/fault_study.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/fault_study.cpp.o.d"
  "/root/repo/src/tokenring/experiments/fig1.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/fig1.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/fig1.cpp.o.d"
  "/root/repo/src/tokenring/experiments/frame_size_study.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/frame_size_study.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/frame_size_study.cpp.o.d"
  "/root/repo/src/tokenring/experiments/setup.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/setup.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/setup.cpp.o.d"
  "/root/repo/src/tokenring/experiments/sim_validation_study.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/sim_validation_study.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/sim_validation_study.cpp.o.d"
  "/root/repo/src/tokenring/experiments/station_count_study.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/station_count_study.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/station_count_study.cpp.o.d"
  "/root/repo/src/tokenring/experiments/ttrt_study.cpp" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/ttrt_study.cpp.o" "gcc" "src/CMakeFiles/tr_experiments.dir/tokenring/experiments/ttrt_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tr_breakdown.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
