# Empty compiler generated dependencies file for tr_experiments.
# This may be replaced when dependencies are built.
