file(REMOVE_RECURSE
  "libtr_experiments.a"
)
