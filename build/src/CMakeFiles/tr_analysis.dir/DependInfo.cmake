
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenring/analysis/allocation.cpp" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/allocation.cpp.o" "gcc" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/allocation.cpp.o.d"
  "/root/repo/src/tokenring/analysis/async_capacity.cpp" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/async_capacity.cpp.o" "gcc" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/async_capacity.cpp.o.d"
  "/root/repo/src/tokenring/analysis/fixed_priority.cpp" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/fixed_priority.cpp.o" "gcc" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/fixed_priority.cpp.o.d"
  "/root/repo/src/tokenring/analysis/latency.cpp" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/latency.cpp.o" "gcc" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/latency.cpp.o.d"
  "/root/repo/src/tokenring/analysis/pdp.cpp" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/pdp.cpp.o" "gcc" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/pdp.cpp.o.d"
  "/root/repo/src/tokenring/analysis/ttp.cpp" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/ttp.cpp.o" "gcc" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/ttp.cpp.o.d"
  "/root/repo/src/tokenring/analysis/ttrt.cpp" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/ttrt.cpp.o" "gcc" "src/CMakeFiles/tr_analysis.dir/tokenring/analysis/ttrt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tr_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
