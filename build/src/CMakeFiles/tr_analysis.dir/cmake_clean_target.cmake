file(REMOVE_RECURSE
  "libtr_analysis.a"
)
