file(REMOVE_RECURSE
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/allocation.cpp.o"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/allocation.cpp.o.d"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/async_capacity.cpp.o"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/async_capacity.cpp.o.d"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/fixed_priority.cpp.o"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/fixed_priority.cpp.o.d"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/latency.cpp.o"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/latency.cpp.o.d"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/pdp.cpp.o"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/pdp.cpp.o.d"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/ttp.cpp.o"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/ttp.cpp.o.d"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/ttrt.cpp.o"
  "CMakeFiles/tr_analysis.dir/tokenring/analysis/ttrt.cpp.o.d"
  "libtr_analysis.a"
  "libtr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
