file(REMOVE_RECURSE
  "libtr_msg.a"
)
