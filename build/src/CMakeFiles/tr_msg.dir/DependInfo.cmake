
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenring/msg/generator.cpp" "src/CMakeFiles/tr_msg.dir/tokenring/msg/generator.cpp.o" "gcc" "src/CMakeFiles/tr_msg.dir/tokenring/msg/generator.cpp.o.d"
  "/root/repo/src/tokenring/msg/io.cpp" "src/CMakeFiles/tr_msg.dir/tokenring/msg/io.cpp.o" "gcc" "src/CMakeFiles/tr_msg.dir/tokenring/msg/io.cpp.o.d"
  "/root/repo/src/tokenring/msg/message_set.cpp" "src/CMakeFiles/tr_msg.dir/tokenring/msg/message_set.cpp.o" "gcc" "src/CMakeFiles/tr_msg.dir/tokenring/msg/message_set.cpp.o.d"
  "/root/repo/src/tokenring/msg/stream.cpp" "src/CMakeFiles/tr_msg.dir/tokenring/msg/stream.cpp.o" "gcc" "src/CMakeFiles/tr_msg.dir/tokenring/msg/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
