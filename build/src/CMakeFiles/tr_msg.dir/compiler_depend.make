# Empty compiler generated dependencies file for tr_msg.
# This may be replaced when dependencies are built.
