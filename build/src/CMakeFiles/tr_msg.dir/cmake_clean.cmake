file(REMOVE_RECURSE
  "CMakeFiles/tr_msg.dir/tokenring/msg/generator.cpp.o"
  "CMakeFiles/tr_msg.dir/tokenring/msg/generator.cpp.o.d"
  "CMakeFiles/tr_msg.dir/tokenring/msg/io.cpp.o"
  "CMakeFiles/tr_msg.dir/tokenring/msg/io.cpp.o.d"
  "CMakeFiles/tr_msg.dir/tokenring/msg/message_set.cpp.o"
  "CMakeFiles/tr_msg.dir/tokenring/msg/message_set.cpp.o.d"
  "CMakeFiles/tr_msg.dir/tokenring/msg/stream.cpp.o"
  "CMakeFiles/tr_msg.dir/tokenring/msg/stream.cpp.o.d"
  "libtr_msg.a"
  "libtr_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
