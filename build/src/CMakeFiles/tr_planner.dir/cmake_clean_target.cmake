file(REMOVE_RECURSE
  "libtr_planner.a"
)
