file(REMOVE_RECURSE
  "CMakeFiles/tr_planner.dir/tokenring/planner/advisor.cpp.o"
  "CMakeFiles/tr_planner.dir/tokenring/planner/advisor.cpp.o.d"
  "CMakeFiles/tr_planner.dir/tokenring/planner/planner.cpp.o"
  "CMakeFiles/tr_planner.dir/tokenring/planner/planner.cpp.o.d"
  "libtr_planner.a"
  "libtr_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
