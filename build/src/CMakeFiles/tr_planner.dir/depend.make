# Empty dependencies file for tr_planner.
# This may be replaced when dependencies are built.
