file(REMOVE_RECURSE
  "libtr_sim.a"
)
