file(REMOVE_RECURSE
  "CMakeFiles/tr_sim.dir/tokenring/sim/event_queue.cpp.o"
  "CMakeFiles/tr_sim.dir/tokenring/sim/event_queue.cpp.o.d"
  "CMakeFiles/tr_sim.dir/tokenring/sim/metrics.cpp.o"
  "CMakeFiles/tr_sim.dir/tokenring/sim/metrics.cpp.o.d"
  "CMakeFiles/tr_sim.dir/tokenring/sim/pdp_sim.cpp.o"
  "CMakeFiles/tr_sim.dir/tokenring/sim/pdp_sim.cpp.o.d"
  "CMakeFiles/tr_sim.dir/tokenring/sim/simulator.cpp.o"
  "CMakeFiles/tr_sim.dir/tokenring/sim/simulator.cpp.o.d"
  "CMakeFiles/tr_sim.dir/tokenring/sim/trace.cpp.o"
  "CMakeFiles/tr_sim.dir/tokenring/sim/trace.cpp.o.d"
  "CMakeFiles/tr_sim.dir/tokenring/sim/ttp_sim.cpp.o"
  "CMakeFiles/tr_sim.dir/tokenring/sim/ttp_sim.cpp.o.d"
  "CMakeFiles/tr_sim.dir/tokenring/sim/workload.cpp.o"
  "CMakeFiles/tr_sim.dir/tokenring/sim/workload.cpp.o.d"
  "libtr_sim.a"
  "libtr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
