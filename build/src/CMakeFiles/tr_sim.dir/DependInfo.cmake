
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenring/sim/event_queue.cpp" "src/CMakeFiles/tr_sim.dir/tokenring/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/tr_sim.dir/tokenring/sim/event_queue.cpp.o.d"
  "/root/repo/src/tokenring/sim/metrics.cpp" "src/CMakeFiles/tr_sim.dir/tokenring/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/tr_sim.dir/tokenring/sim/metrics.cpp.o.d"
  "/root/repo/src/tokenring/sim/pdp_sim.cpp" "src/CMakeFiles/tr_sim.dir/tokenring/sim/pdp_sim.cpp.o" "gcc" "src/CMakeFiles/tr_sim.dir/tokenring/sim/pdp_sim.cpp.o.d"
  "/root/repo/src/tokenring/sim/simulator.cpp" "src/CMakeFiles/tr_sim.dir/tokenring/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/tr_sim.dir/tokenring/sim/simulator.cpp.o.d"
  "/root/repo/src/tokenring/sim/trace.cpp" "src/CMakeFiles/tr_sim.dir/tokenring/sim/trace.cpp.o" "gcc" "src/CMakeFiles/tr_sim.dir/tokenring/sim/trace.cpp.o.d"
  "/root/repo/src/tokenring/sim/ttp_sim.cpp" "src/CMakeFiles/tr_sim.dir/tokenring/sim/ttp_sim.cpp.o" "gcc" "src/CMakeFiles/tr_sim.dir/tokenring/sim/ttp_sim.cpp.o.d"
  "/root/repo/src/tokenring/sim/workload.cpp" "src/CMakeFiles/tr_sim.dir/tokenring/sim/workload.cpp.o" "gcc" "src/CMakeFiles/tr_sim.dir/tokenring/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
