
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenring/breakdown/monte_carlo.cpp" "src/CMakeFiles/tr_breakdown.dir/tokenring/breakdown/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/tr_breakdown.dir/tokenring/breakdown/monte_carlo.cpp.o.d"
  "/root/repo/src/tokenring/breakdown/saturation.cpp" "src/CMakeFiles/tr_breakdown.dir/tokenring/breakdown/saturation.cpp.o" "gcc" "src/CMakeFiles/tr_breakdown.dir/tokenring/breakdown/saturation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
