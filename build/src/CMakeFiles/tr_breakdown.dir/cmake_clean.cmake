file(REMOVE_RECURSE
  "CMakeFiles/tr_breakdown.dir/tokenring/breakdown/monte_carlo.cpp.o"
  "CMakeFiles/tr_breakdown.dir/tokenring/breakdown/monte_carlo.cpp.o.d"
  "CMakeFiles/tr_breakdown.dir/tokenring/breakdown/saturation.cpp.o"
  "CMakeFiles/tr_breakdown.dir/tokenring/breakdown/saturation.cpp.o.d"
  "libtr_breakdown.a"
  "libtr_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
