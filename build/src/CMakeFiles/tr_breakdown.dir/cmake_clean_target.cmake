file(REMOVE_RECURSE
  "libtr_breakdown.a"
)
