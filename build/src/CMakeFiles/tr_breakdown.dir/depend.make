# Empty dependencies file for tr_breakdown.
# This may be replaced when dependencies are built.
