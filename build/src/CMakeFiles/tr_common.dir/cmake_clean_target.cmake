file(REMOVE_RECURSE
  "libtr_common.a"
)
