file(REMOVE_RECURSE
  "CMakeFiles/tr_common.dir/tokenring/common/ascii_plot.cpp.o"
  "CMakeFiles/tr_common.dir/tokenring/common/ascii_plot.cpp.o.d"
  "CMakeFiles/tr_common.dir/tokenring/common/cli.cpp.o"
  "CMakeFiles/tr_common.dir/tokenring/common/cli.cpp.o.d"
  "CMakeFiles/tr_common.dir/tokenring/common/rng.cpp.o"
  "CMakeFiles/tr_common.dir/tokenring/common/rng.cpp.o.d"
  "CMakeFiles/tr_common.dir/tokenring/common/stats.cpp.o"
  "CMakeFiles/tr_common.dir/tokenring/common/stats.cpp.o.d"
  "CMakeFiles/tr_common.dir/tokenring/common/table.cpp.o"
  "CMakeFiles/tr_common.dir/tokenring/common/table.cpp.o.d"
  "libtr_common.a"
  "libtr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
