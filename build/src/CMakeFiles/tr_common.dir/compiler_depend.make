# Empty compiler generated dependencies file for tr_common.
# This may be replaced when dependencies are built.
