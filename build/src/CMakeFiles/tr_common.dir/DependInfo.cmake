
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenring/common/ascii_plot.cpp" "src/CMakeFiles/tr_common.dir/tokenring/common/ascii_plot.cpp.o" "gcc" "src/CMakeFiles/tr_common.dir/tokenring/common/ascii_plot.cpp.o.d"
  "/root/repo/src/tokenring/common/cli.cpp" "src/CMakeFiles/tr_common.dir/tokenring/common/cli.cpp.o" "gcc" "src/CMakeFiles/tr_common.dir/tokenring/common/cli.cpp.o.d"
  "/root/repo/src/tokenring/common/rng.cpp" "src/CMakeFiles/tr_common.dir/tokenring/common/rng.cpp.o" "gcc" "src/CMakeFiles/tr_common.dir/tokenring/common/rng.cpp.o.d"
  "/root/repo/src/tokenring/common/stats.cpp" "src/CMakeFiles/tr_common.dir/tokenring/common/stats.cpp.o" "gcc" "src/CMakeFiles/tr_common.dir/tokenring/common/stats.cpp.o.d"
  "/root/repo/src/tokenring/common/table.cpp" "src/CMakeFiles/tr_common.dir/tokenring/common/table.cpp.o" "gcc" "src/CMakeFiles/tr_common.dir/tokenring/common/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
