# Empty compiler generated dependencies file for breakdown_monte_carlo_test.
# This may be replaced when dependencies are built.
