# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for breakdown_monte_carlo_test.
