file(REMOVE_RECURSE
  "CMakeFiles/breakdown_monte_carlo_test.dir/breakdown_monte_carlo_test.cpp.o"
  "CMakeFiles/breakdown_monte_carlo_test.dir/breakdown_monte_carlo_test.cpp.o.d"
  "breakdown_monte_carlo_test"
  "breakdown_monte_carlo_test.pdb"
  "breakdown_monte_carlo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakdown_monte_carlo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
