# Empty dependencies file for integration_analysis_vs_sim_test.
# This may be replaced when dependencies are built.
