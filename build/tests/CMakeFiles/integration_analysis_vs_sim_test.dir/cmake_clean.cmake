file(REMOVE_RECURSE
  "CMakeFiles/integration_analysis_vs_sim_test.dir/integration_analysis_vs_sim_test.cpp.o"
  "CMakeFiles/integration_analysis_vs_sim_test.dir/integration_analysis_vs_sim_test.cpp.o.d"
  "integration_analysis_vs_sim_test"
  "integration_analysis_vs_sim_test.pdb"
  "integration_analysis_vs_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_analysis_vs_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
