file(REMOVE_RECURSE
  "CMakeFiles/analysis_allocation_test.dir/analysis_allocation_test.cpp.o"
  "CMakeFiles/analysis_allocation_test.dir/analysis_allocation_test.cpp.o.d"
  "analysis_allocation_test"
  "analysis_allocation_test.pdb"
  "analysis_allocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
