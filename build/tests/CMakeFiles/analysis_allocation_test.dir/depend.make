# Empty dependencies file for analysis_allocation_test.
# This may be replaced when dependencies are built.
