file(REMOVE_RECURSE
  "CMakeFiles/msg_model_test.dir/msg_model_test.cpp.o"
  "CMakeFiles/msg_model_test.dir/msg_model_test.cpp.o.d"
  "msg_model_test"
  "msg_model_test.pdb"
  "msg_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
