file(REMOVE_RECURSE
  "CMakeFiles/analysis_ttp_test.dir/analysis_ttp_test.cpp.o"
  "CMakeFiles/analysis_ttp_test.dir/analysis_ttp_test.cpp.o.d"
  "analysis_ttp_test"
  "analysis_ttp_test.pdb"
  "analysis_ttp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_ttp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
