# Empty dependencies file for analysis_ttp_test.
# This may be replaced when dependencies are built.
