file(REMOVE_RECURSE
  "CMakeFiles/sim_pdp_test.dir/sim_pdp_test.cpp.o"
  "CMakeFiles/sim_pdp_test.dir/sim_pdp_test.cpp.o.d"
  "sim_pdp_test"
  "sim_pdp_test.pdb"
  "sim_pdp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_pdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
