# Empty compiler generated dependencies file for common_ascii_plot_test.
# This may be replaced when dependencies are built.
