file(REMOVE_RECURSE
  "CMakeFiles/common_ascii_plot_test.dir/common_ascii_plot_test.cpp.o"
  "CMakeFiles/common_ascii_plot_test.dir/common_ascii_plot_test.cpp.o.d"
  "common_ascii_plot_test"
  "common_ascii_plot_test.pdb"
  "common_ascii_plot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_ascii_plot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
