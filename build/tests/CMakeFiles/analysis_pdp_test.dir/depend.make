# Empty dependencies file for analysis_pdp_test.
# This may be replaced when dependencies are built.
