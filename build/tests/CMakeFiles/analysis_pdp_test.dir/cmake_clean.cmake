file(REMOVE_RECURSE
  "CMakeFiles/analysis_pdp_test.dir/analysis_pdp_test.cpp.o"
  "CMakeFiles/analysis_pdp_test.dir/analysis_pdp_test.cpp.o.d"
  "analysis_pdp_test"
  "analysis_pdp_test.pdb"
  "analysis_pdp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_pdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
