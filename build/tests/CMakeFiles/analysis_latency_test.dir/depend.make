# Empty dependencies file for analysis_latency_test.
# This may be replaced when dependencies are built.
