# Empty dependencies file for msg_generator_test.
# This may be replaced when dependencies are built.
