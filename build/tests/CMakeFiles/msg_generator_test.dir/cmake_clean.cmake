file(REMOVE_RECURSE
  "CMakeFiles/msg_generator_test.dir/msg_generator_test.cpp.o"
  "CMakeFiles/msg_generator_test.dir/msg_generator_test.cpp.o.d"
  "msg_generator_test"
  "msg_generator_test.pdb"
  "msg_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
