file(REMOVE_RECURSE
  "CMakeFiles/analysis_fixed_priority_test.dir/analysis_fixed_priority_test.cpp.o"
  "CMakeFiles/analysis_fixed_priority_test.dir/analysis_fixed_priority_test.cpp.o.d"
  "analysis_fixed_priority_test"
  "analysis_fixed_priority_test.pdb"
  "analysis_fixed_priority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_fixed_priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
