# Empty compiler generated dependencies file for analysis_fixed_priority_test.
# This may be replaced when dependencies are built.
