# Empty dependencies file for sim_trace_async_test.
# This may be replaced when dependencies are built.
