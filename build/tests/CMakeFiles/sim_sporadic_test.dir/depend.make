# Empty dependencies file for sim_sporadic_test.
# This may be replaced when dependencies are built.
