file(REMOVE_RECURSE
  "CMakeFiles/sim_sporadic_test.dir/sim_sporadic_test.cpp.o"
  "CMakeFiles/sim_sporadic_test.dir/sim_sporadic_test.cpp.o.d"
  "sim_sporadic_test"
  "sim_sporadic_test.pdb"
  "sim_sporadic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sporadic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
