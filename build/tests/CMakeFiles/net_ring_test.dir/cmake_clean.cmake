file(REMOVE_RECURSE
  "CMakeFiles/net_ring_test.dir/net_ring_test.cpp.o"
  "CMakeFiles/net_ring_test.dir/net_ring_test.cpp.o.d"
  "net_ring_test"
  "net_ring_test.pdb"
  "net_ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
