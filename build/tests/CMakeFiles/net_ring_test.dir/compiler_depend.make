# Empty compiler generated dependencies file for net_ring_test.
# This may be replaced when dependencies are built.
