file(REMOVE_RECURSE
  "CMakeFiles/msg_io_test.dir/msg_io_test.cpp.o"
  "CMakeFiles/msg_io_test.dir/msg_io_test.cpp.o.d"
  "msg_io_test"
  "msg_io_test.pdb"
  "msg_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
