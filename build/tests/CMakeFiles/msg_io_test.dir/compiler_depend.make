# Empty compiler generated dependencies file for msg_io_test.
# This may be replaced when dependencies are built.
