# Empty dependencies file for sim_ttp_test.
# This may be replaced when dependencies are built.
