file(REMOVE_RECURSE
  "CMakeFiles/sim_ttp_test.dir/sim_ttp_test.cpp.o"
  "CMakeFiles/sim_ttp_test.dir/sim_ttp_test.cpp.o.d"
  "sim_ttp_test"
  "sim_ttp_test.pdb"
  "sim_ttp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ttp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
