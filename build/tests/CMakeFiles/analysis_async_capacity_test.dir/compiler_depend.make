# Empty compiler generated dependencies file for analysis_async_capacity_test.
# This may be replaced when dependencies are built.
