file(REMOVE_RECURSE
  "CMakeFiles/analysis_async_capacity_test.dir/analysis_async_capacity_test.cpp.o"
  "CMakeFiles/analysis_async_capacity_test.dir/analysis_async_capacity_test.cpp.o.d"
  "analysis_async_capacity_test"
  "analysis_async_capacity_test.pdb"
  "analysis_async_capacity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_async_capacity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
