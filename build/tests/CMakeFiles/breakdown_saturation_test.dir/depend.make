# Empty dependencies file for breakdown_saturation_test.
# This may be replaced when dependencies are built.
