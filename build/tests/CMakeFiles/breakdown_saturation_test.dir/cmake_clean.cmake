file(REMOVE_RECURSE
  "CMakeFiles/breakdown_saturation_test.dir/breakdown_saturation_test.cpp.o"
  "CMakeFiles/breakdown_saturation_test.dir/breakdown_saturation_test.cpp.o.d"
  "breakdown_saturation_test"
  "breakdown_saturation_test.pdb"
  "breakdown_saturation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/breakdown_saturation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
