# Empty dependencies file for ring_simulation.
# This may be replaced when dependencies are built.
