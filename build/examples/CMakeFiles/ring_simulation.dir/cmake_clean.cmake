file(REMOVE_RECURSE
  "CMakeFiles/ring_simulation.dir/ring_simulation.cpp.o"
  "CMakeFiles/ring_simulation.dir/ring_simulation.cpp.o.d"
  "ring_simulation"
  "ring_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
