
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/protocol_selection.cpp" "examples/CMakeFiles/protocol_selection.dir/protocol_selection.cpp.o" "gcc" "examples/CMakeFiles/protocol_selection.dir/protocol_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tr_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_breakdown.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
