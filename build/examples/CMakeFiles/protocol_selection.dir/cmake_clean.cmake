file(REMOVE_RECURSE
  "CMakeFiles/protocol_selection.dir/protocol_selection.cpp.o"
  "CMakeFiles/protocol_selection.dir/protocol_selection.cpp.o.d"
  "protocol_selection"
  "protocol_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
