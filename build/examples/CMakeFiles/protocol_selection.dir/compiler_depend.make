# Empty compiler generated dependencies file for protocol_selection.
# This may be replaced when dependencies are built.
