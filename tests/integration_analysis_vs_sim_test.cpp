// Integration tests: the discrete-event simulators must validate the
// analytical schedulability criteria.
//
//  * TTP (Theorem 5.1) is a worst-case guarantee: any set passing it, with
//    the local allocation, must meet every deadline in simulation under
//    adversarial phasing and saturating asynchronous load — even right at
//    the saturation boundary.
//  * PDP (Theorem 4.1) charges the *average* token-circulation overhead
//    (Theta/2 per pass); a particular execution can see walks up to Theta,
//    so sets comfortably inside the boundary (0.6x) must be clean while
//    sets far outside it (3x) must miss.

#include <gtest/gtest.h>

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/config.hpp"

namespace tokenring {
namespace {

msg::MessageSetGenerator make_generator(int streams) {
  msg::GeneratorConfig g;
  g.num_streams = streams;
  g.mean_period = milliseconds(60);
  g.period_ratio = 6.0;
  return msg::MessageSetGenerator(g);
}

// ---- TTP: criterion is a hard guarantee -------------------------------------

class TtpAgreement
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(TtpAgreement, SchedulableSetsNeverMissDeadlines) {
  const auto [bw_mbps, seed] = GetParam();
  const BitsPerSecond bw = mbps(bw_mbps);
  const int n = 12;

  analysis::TtpParams params;
  params.ring = net::fddi_ring(n);
  params.frame = net::paper_frame_format();
  params.async_frame = net::paper_frame_format();

  Rng rng(seed);
  auto gen = make_generator(n);
  const auto base = gen.generate(rng);

  const auto predicate = [&](const msg::MessageSet& m) {
    return analysis::ttp_feasible(m, params, bw);
  };
  const auto sat = breakdown::find_saturation(base, predicate, bw);
  if (!sat.found) GTEST_SKIP() << "degenerate at this bandwidth";

  // Just inside the boundary: must be clean even under worst-case phasing
  // and saturating asynchronous traffic.
  const auto set = base.scaled(sat.critical_scale * 0.99);
  ASSERT_TRUE(analysis::ttp_feasible(set, params, bw));

  sim::SimConfig cfg;
  cfg.protocol = sim::Protocol::kTtp;
  cfg.ttp = params;
  cfg.bandwidth = bw;
  cfg.horizon = 4.0 * set.max_period();
  cfg.worst_case_phasing = true;
  cfg.async_model = sim::AsyncModel::kSaturating;
  const auto metrics = sim::run_simulation(set, cfg);

  EXPECT_GT(metrics.messages_completed, 0u);
  EXPECT_EQ(metrics.deadline_misses, 0u)
      << "analysis-schedulable set missed deadlines in simulation";
}

TEST_P(TtpAgreement, GrosslyOversaturatedSetsMiss) {
  const auto [bw_mbps, seed] = GetParam();
  const BitsPerSecond bw = mbps(bw_mbps);
  const int n = 12;

  analysis::TtpParams params;
  params.ring = net::fddi_ring(n);
  params.frame = net::paper_frame_format();
  params.async_frame = net::paper_frame_format();

  Rng rng(seed);
  auto gen = make_generator(n);
  const auto base = gen.generate(rng);
  const auto predicate = [&](const msg::MessageSet& m) {
    return analysis::ttp_feasible(m, params, bw);
  };
  const auto sat = breakdown::find_saturation(base, predicate, bw);
  if (!sat.found) GTEST_SKIP() << "degenerate at this bandwidth";

  // 3x the boundary cannot be served: payload demand alone exceeds the
  // synchronous capacity the ring can rotate.
  const auto set = base.scaled(sat.critical_scale * 3.0);
  ASSERT_FALSE(analysis::ttp_feasible(set, params, bw));

  sim::SimConfig cfg;
  cfg.protocol = sim::Protocol::kTtp;
  cfg.ttp = params;
  cfg.bandwidth = bw;
  cfg.horizon = 6.0 * set.max_period();
  cfg.worst_case_phasing = true;
  cfg.async_model = sim::AsyncModel::kSaturating;
  // Allocate with the (now infeasible) local rule anyway: rotations blow
  // past TTRT and deadlines fall.
  const auto metrics = sim::run_simulation(set, cfg);
  EXPECT_GT(metrics.deadline_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BandwidthSeeds, TtpAgreement,
    ::testing::Combine(::testing::Values(20.0, 100.0, 500.0),
                       ::testing::Values(1u, 2u, 3u)));

// ---- PDP: criterion with average-case token overhead --------------------------

class PdpAgreement
    : public ::testing::TestWithParam<
          std::tuple<double, std::uint64_t, analysis::PdpVariant>> {};

TEST_P(PdpAgreement, ComfortablyScheduledSetsAreClean) {
  const auto [bw_mbps, seed, variant] = GetParam();
  const BitsPerSecond bw = mbps(bw_mbps);
  const int n = 10;

  analysis::PdpParams params;
  params.ring = net::ieee8025_ring(n);
  params.frame = net::paper_frame_format();
  params.variant = variant;

  Rng rng(seed);
  auto gen = make_generator(n);
  const auto base = gen.generate(rng);
  const auto predicate = [&](const msg::MessageSet& m) {
    return analysis::pdp_feasible(m, params, bw);
  };
  const auto sat = breakdown::find_saturation(base, predicate, bw);
  if (!sat.found) GTEST_SKIP() << "degenerate at this bandwidth";

  const auto set = base.scaled(sat.critical_scale * 0.6);
  ASSERT_TRUE(analysis::pdp_feasible(set, params, bw));

  sim::SimConfig cfg;
  cfg.protocol = sim::Protocol::kPdp;
  cfg.pdp = params;
  cfg.bandwidth = bw;
  cfg.horizon = 4.0 * set.max_period();
  cfg.worst_case_phasing = true;
  cfg.async_model = sim::AsyncModel::kSaturating;
  const auto metrics = sim::run_simulation(set, cfg);

  EXPECT_GT(metrics.messages_completed, 0u);
  EXPECT_EQ(metrics.deadline_misses, 0u);
}

TEST_P(PdpAgreement, GrosslyOverloadedSetsMiss) {
  const auto [bw_mbps, seed, variant] = GetParam();
  const BitsPerSecond bw = mbps(bw_mbps);
  const int n = 10;

  analysis::PdpParams params;
  params.ring = net::ieee8025_ring(n);
  params.frame = net::paper_frame_format();
  params.variant = variant;

  Rng rng(seed);
  auto gen = make_generator(n);
  const auto base = gen.generate(rng);
  const auto predicate = [&](const msg::MessageSet& m) {
    return analysis::pdp_feasible(m, params, bw);
  };
  const auto sat = breakdown::find_saturation(base, predicate, bw);
  if (!sat.found) GTEST_SKIP() << "degenerate at this bandwidth";

  const auto set = base.scaled(sat.critical_scale * 3.0);
  ASSERT_FALSE(analysis::pdp_feasible(set, params, bw));

  sim::SimConfig cfg;
  cfg.protocol = sim::Protocol::kPdp;
  cfg.pdp = params;
  cfg.bandwidth = bw;
  cfg.horizon = 6.0 * set.max_period();
  cfg.worst_case_phasing = true;
  cfg.async_model = sim::AsyncModel::kSaturating;
  const auto metrics = sim::run_simulation(set, cfg);
  EXPECT_GT(metrics.deadline_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BandwidthSeedsVariants, PdpAgreement,
    ::testing::Combine(::testing::Values(4.0, 16.0, 100.0),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(analysis::PdpVariant::kStandard8025,
                                         analysis::PdpVariant::kModified8025)));

// ---- Breakdown pipeline end-to-end --------------------------------------------

TEST(BreakdownPipeline, TtpBoundarySetsSitOnTheCriterionEdge) {
  const BitsPerSecond bw = mbps(100);
  const int n = 16;
  analysis::TtpParams params;
  params.ring = net::fddi_ring(n);
  params.frame = net::paper_frame_format();
  params.async_frame = net::paper_frame_format();

  Rng rng(99);
  auto gen = make_generator(n);
  for (int trial = 0; trial < 5; ++trial) {
    const auto base = gen.generate(rng);
    const auto predicate = [&](const msg::MessageSet& m) {
      return analysis::ttp_feasible(m, params, bw);
    };
    const auto sat = breakdown::find_saturation(base, predicate, bw);
    ASSERT_TRUE(sat.found);
    EXPECT_TRUE(predicate(base.scaled(sat.critical_scale)));
    EXPECT_FALSE(predicate(base.scaled(sat.critical_scale * 1.0001)));
    EXPECT_GT(sat.breakdown_utilization, 0.0);
    EXPECT_LT(sat.breakdown_utilization, 1.0);
  }
}

TEST(BreakdownPipeline, PdpVariantOrderingAtSaturation) {
  // At the same bandwidth, the modified variant's breakdown utilization is
  // at least the standard's for any payload direction.
  const BitsPerSecond bw = mbps(10);
  const int n = 16;
  analysis::PdpParams std_params;
  std_params.ring = net::ieee8025_ring(n);
  std_params.frame = net::paper_frame_format();
  std_params.variant = analysis::PdpVariant::kStandard8025;
  auto mod_params = std_params;
  mod_params.variant = analysis::PdpVariant::kModified8025;

  Rng rng(7);
  auto gen = make_generator(n);
  for (int trial = 0; trial < 5; ++trial) {
    const auto base = gen.generate(rng);
    const auto sat_std = breakdown::find_saturation(
        base,
        [&](const msg::MessageSet& m) {
          return analysis::pdp_feasible(m, std_params, bw);
        },
        bw);
    const auto sat_mod = breakdown::find_saturation(
        base,
        [&](const msg::MessageSet& m) {
          return analysis::pdp_feasible(m, mod_params, bw);
        },
        bw);
    ASSERT_TRUE(sat_std.found);
    ASSERT_TRUE(sat_mod.found);
    EXPECT_GE(sat_mod.breakdown_utilization,
              sat_std.breakdown_utilization - 1e-9);
  }
}

}  // namespace
}  // namespace tokenring
