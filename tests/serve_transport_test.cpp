// Fault-injection tests for the serve/ transport layer: the EINTR-safe,
// deadline-aware Transport loops and the shared run_connection() framing
// loop, driven over the in-memory FaultyIo double so every fault a real
// socket can produce (short reads, EINTR storms, mid-frame disconnects,
// byte corruption, stalls) is replayed deterministically from a seed.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tokenring/obs/json.hpp"
#include "tokenring/serve/conn_fsm.hpp"
#include "tokenring/serve/connection.hpp"
#include "tokenring/serve/transport.hpp"
#include "tokenring/serve/wire.hpp"

namespace {

using namespace tokenring;
using serve::ConnectionEnd;
using serve::ConnectionLimits;
using serve::FaultyIo;
using serve::IoStatus;
using serve::Transport;
using serve::TransportFaultPlan;

/// Echo-style handler: a tiny JSON envelope around the request line, so
/// responses are checkable without any schedulability compute.
std::string echo_handler(std::string_view line, const std::string&) {
  std::string out = "{\"echo\":\"";
  out += obs::escape_json(std::string(line));
  out += "\"}";
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

TEST(ServeTransport, ReadRidesOutEintrStormsAndShortReads) {
  TransportFaultPlan plan;
  plan.max_read_chunk = 1;  // 1-byte dribble
  plan.eintr_per_op = 3;    // every recv and wait fails 3 times first
  FaultyIo io("hello world", plan);
  Transport transport(io);

  std::string got;
  char buffer[64];
  for (;;) {
    const auto r = transport.read_some(buffer, sizeof(buffer), -1);
    if (r.status != IoStatus::kOk) {
      EXPECT_EQ(r.status, IoStatus::kEof);
      break;
    }
    got.append(buffer, r.bytes);
  }
  EXPECT_EQ(got, "hello world");
  EXPECT_GT(io.eintr_injected(), 0u);  // the storms actually fired
}

TEST(ServeTransport, WriteAllSurvivesShortWritesAndEintr) {
  TransportFaultPlan plan;
  plan.max_write_chunk = 2;
  plan.eintr_per_op = 2;
  FaultyIo io("", plan);
  Transport transport(io);

  const std::string payload(257, 'z');
  EXPECT_EQ(transport.write_all(payload.data(), payload.size(), -1),
            IoStatus::kOk);
  EXPECT_EQ(io.output(), payload);
}

TEST(ServeTransport, MidStreamResetSurfacesAsError) {
  TransportFaultPlan plan;
  plan.reset_read_after = 4;
  FaultyIo io("0123456789", plan);
  Transport transport(io);

  char buffer[64];
  std::string got;
  auto r = transport.read_some(buffer, sizeof(buffer), -1);
  while (r.status == IoStatus::kOk) {
    got.append(buffer, r.bytes);
    r = transport.read_some(buffer, sizeof(buffer), -1);
  }
  EXPECT_EQ(got, "0123");  // delivered up to the reset point
  EXPECT_EQ(r.status, IoStatus::kError);

  TransportFaultPlan wplan;
  wplan.reset_write_after = 3;
  FaultyIo wio("", wplan);
  Transport wtransport(wio);
  EXPECT_EQ(wtransport.write_all("abcdef", 6, -1), IoStatus::kError);
  EXPECT_EQ(wio.output(), "abc");
}

TEST(ServeTransport, StalledPeerReportsTimeoutNotHang) {
  TransportFaultPlan plan;
  plan.stall_every = 1;  // every read-side wait times out
  FaultyIo io("never delivered", plan);
  Transport transport(io);
  char buffer[8];
  const auto r = transport.read_some(buffer, sizeof(buffer), 10);
  EXPECT_EQ(r.status, IoStatus::kTimeout);
}

TEST(ServeConnection, FramesPipelinedRequestsAcrossHostileChunking) {
  // Three pipelined lines, delivered one byte at a time under an EINTR
  // storm: framing must be unaffected and every response present, in
  // order.
  TransportFaultPlan plan;
  plan.max_read_chunk = 1;
  plan.eintr_per_op = 2;
  FaultyIo io("alpha\nbeta\r\n\ngamma\n", plan);
  Transport transport(io);

  const auto end =
      run_connection(transport, echo_handler, ConnectionLimits{}, "test");
  EXPECT_EQ(end, ConnectionEnd::kPeerClosed);
  const auto lines = split_lines(io.output());
  ASSERT_EQ(lines.size(), 3u);  // the empty line is skipped, CR stripped
  EXPECT_EQ(lines[0], "{\"echo\":\"alpha\"}");
  EXPECT_EQ(lines[1], "{\"echo\":\"beta\"}");
  EXPECT_EQ(lines[2], "{\"echo\":\"gamma\"}");
}

TEST(ServeConnection, OversizedLineAnswers413OnceAndCloses) {
  ConnectionLimits limits;
  limits.max_line = 8;
  // The oversized line arrives complete, with a valid line pipelined
  // after it that must NOT be answered.
  FaultyIo io("0123456789abcdef\nok\n", TransportFaultPlan{});
  Transport transport(io);
  const auto end = run_connection(transport, echo_handler, limits, "test");
  EXPECT_EQ(end, ConnectionEnd::kOversized);
  EXPECT_TRUE(io.shutdown_called());
  const auto lines = split_lines(io.output());
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = obs::parse_json(lines[0]);
  ASSERT_TRUE(doc.ok) << lines[0];
  EXPECT_EQ(doc.value.find("status")->as_int64(), 413);
}

TEST(ServeConnection, UnboundedPartialLineAlsoAnswers413AndCloses) {
  ConnectionLimits limits;
  limits.max_line = 8;
  // No newline ever arrives: the buffered fragment crosses max_line and
  // the connection is cut with one 413.
  FaultyIo io(std::string(64, 'x'), TransportFaultPlan{});
  Transport transport(io);
  const auto end = run_connection(transport, echo_handler, limits, "test");
  EXPECT_EQ(end, ConnectionEnd::kOversized);
  const auto lines = split_lines(io.output());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("413"), std::string::npos);
}

TEST(ServeConnection, IdleStallEndsWithTimeoutNotHang) {
  TransportFaultPlan plan;
  plan.stall_every = 1;
  FaultyIo io("unsent", plan);
  Transport transport(io);
  ConnectionLimits limits;
  limits.idle_timeout_ms = 10;
  const auto end = run_connection(transport, echo_handler, limits, "test");
  EXPECT_EQ(end, ConnectionEnd::kIdleTimeout);
  EXPECT_TRUE(io.shutdown_called());
}

TEST(ServeConnection, PeerResetWhileWritingEndsWithWriteError) {
  TransportFaultPlan plan;
  plan.reset_write_after = 4;  // the 17-byte echo response cannot land
  FaultyIo io("request\n", plan);
  Transport transport(io);
  const auto end =
      run_connection(transport, echo_handler, ConnectionLimits{}, "test");
  EXPECT_EQ(end, ConnectionEnd::kWriteError);
}

TEST(ServeConnection, SeededFaultPlansNeverCrashAndSurvivorsStayWellFormed) {
  // The chaos sweep in miniature: 200 seeded fault plans over a pipelined
  // request stream, each replayed deterministically. The loop must always
  // terminate with a coherent reason, never crash, and whatever complete
  // response lines made it out must be the handler's exact output for a
  // prefix of the request stream (faults can truncate the conversation,
  // never corrupt the answered part — corruption of request bytes changes
  // the echo, so plans that corrupt are only checked for line integrity).
  const std::vector<std::string> requests = {"one", "two", "three", "four"};
  std::string stream;
  for (const auto& r : requests) stream += r + "\n";

  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const TransportFaultPlan plan = TransportFaultPlan::random(seed);
    FaultyIo io(stream, plan);
    Transport transport(io);
    ConnectionLimits limits;
    limits.max_line = 1024;
    limits.idle_timeout_ms = 5;
    limits.write_timeout_ms = 5;
    const auto end = run_connection(transport, echo_handler, limits, "s");
    // Any reason is acceptable; reaching here without hanging is the
    // property. The enum check guards against garbage return values.
    EXPECT_TRUE(end == ConnectionEnd::kPeerClosed ||
                end == ConnectionEnd::kIdleTimeout ||
                end == ConnectionEnd::kOversized ||
                end == ConnectionEnd::kReadError ||
                end == ConnectionEnd::kWriteError ||
                end == ConnectionEnd::kWriteTimeout)
        << "seed " << seed;

    const bool corrupted = plan.corrupt_read_at < stream.size();
    const auto lines = split_lines(io.output());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const auto doc = obs::parse_json(lines[i]);
      ASSERT_TRUE(doc.ok) << "seed " << seed << " line " << i << ": "
                          << lines[i];
      if (!corrupted && i < requests.size()) {
        EXPECT_EQ(lines[i], echo_handler(requests[i], "s"))
            << "seed " << seed;
      }
    }
  }
}

TEST(ServeConnection, EngineResponsesSurviveTransportFaultsBitIdentically) {
  // End-to-end property the chaos harness relies on: a well-formed
  // request whose response lands despite transport faults carries the
  // same bytes as the fault-free answer. serve::error_response is a pure
  // function of the line, so parse errors are compared too.
  const std::string request_line =
      "{\"type\":\"check\",\"id\":1,\"protocol\":\"fddi\","
      "\"bandwidth_mbps\":100,\"streams\":["
      "{\"station\":0,\"period_ms\":50,\"payload_bits\":10000}]}";
  const auto handler = [](std::string_view line,
                          const std::string&) -> std::string {
    // Deterministic stand-in for Engine::handle_line: envelope only, no
    // Monte Carlo, so 200 seeds stay fast.
    return serve::error_response("", 400, std::string(line));
  };
  const std::string expected = handler(request_line, "");

  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    TransportFaultPlan plan = TransportFaultPlan::random(seed);
    plan.corrupt_read_at = TransportFaultPlan::kNever;  // keep bytes honest
    FaultyIo io(request_line + "\n", plan);
    Transport transport(io);
    ConnectionLimits limits;
    limits.idle_timeout_ms = 5;
    limits.write_timeout_ms = 5;
    run_connection(transport, handler, limits, "s");
    const auto lines = split_lines(io.output());
    if (!lines.empty()) {
      EXPECT_EQ(lines[0], expected) << "seed " << seed;
    }
  }
}

TEST(ServeTransport, RandomPlansCoverTheWholeFaultMenu) {
  // The seeded generator must actually exercise every fault class across
  // a modest seed range, or the sweep above tests less than it claims.
  bool short_reads = false, short_writes = false, eintr = false;
  bool read_reset = false, write_reset = false, corruption = false;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const TransportFaultPlan plan = TransportFaultPlan::random(seed);
    short_reads |= plan.max_read_chunk != 0;
    short_writes |= plan.max_write_chunk != 0;
    eintr |= plan.eintr_per_op != 0;
    read_reset |= plan.reset_read_after != TransportFaultPlan::kNever;
    write_reset |= plan.reset_write_after != TransportFaultPlan::kNever;
    corruption |= plan.corrupt_read_at != TransportFaultPlan::kNever;
    // Determinism: the same seed always yields the same plan.
    const TransportFaultPlan again = TransportFaultPlan::random(seed);
    EXPECT_EQ(plan.max_read_chunk, again.max_read_chunk);
    EXPECT_EQ(plan.reset_read_after, again.reset_read_after);
    EXPECT_EQ(plan.corrupt_read_at, again.corrupt_read_at);
  }
  EXPECT_TRUE(short_reads && short_writes && eintr && read_reset &&
              write_reset && corruption);
}

// ---- ConnFsm: the reactor's non-blocking framing machine ---------------
//
// The FSM never calls wait(), so a FaultyIo plan's injected EAGAINs act as
// readiness-edge boundaries: every EAGAIN ends one on_readable()/
// on_writable() pump exactly like the kernel exhausting an epoll edge.
// These tests pin the FSM's byte stream to what run_connection() (the
// thread-per-connection reference) produces for the same input.

using serve::ConnFsm;

/// What the blocking reference loop answers for `input` (fault-free).
std::string threaded_golden(const std::string& input,
                            const ConnectionLimits& limits) {
  TransportFaultPlan clean;
  FaultyIo io(input, clean);
  Transport transport(io);
  serve::run_connection(transport, echo_handler, limits, "golden");
  return io.output();
}

/// Drive the FSM to completion with inline completions (submit answers
/// immediately, the reactor cache-hit/refusal shape). Returns the number
/// of readiness-edge pumps it took.
int pump_to_completion(ConnFsm& fsm) {
  int edges = 0;
  const ConnFsm::Submit inline_echo = [&](std::string_view line,
                                          std::uint64_t slot) {
    fsm.complete(slot, echo_handler(line, fsm.peer()));
  };
  for (; !fsm.finished() && edges < 100000; ++edges) {
    fsm.on_readable(inline_echo);
    fsm.on_writable();
    if (!fsm.reading() && fsm.pending() == 0 && !fsm.wants_write()) break;
  }
  return edges;
}

TEST(ServeConnFsm, PipelinedFrameSplitAcrossManyReadinessEdges) {
  // Three pipelined requests, with every second recv/send ending the
  // readiness edge and 5-byte chunks: one kernel-shaped delivery pattern
  // the threaded loop never sees, same bytes out.
  const std::string input =
      "{\"id\":1}\n{\"id\":2}\r\n\n{\"id\":3}\n";
  ConnectionLimits limits;
  TransportFaultPlan plan;
  plan.max_read_chunk = 5;
  plan.eagain_every = 2;
  FaultyIo io(input, plan);
  ConnFsm fsm(io, limits, "fsm");

  const int edges = pump_to_completion(fsm);
  EXPECT_TRUE(fsm.finished());
  EXPECT_EQ(fsm.end(), ConnectionEnd::kPeerClosed);
  // The plan actually fragmented the stream into multiple edges.
  EXPECT_GT(edges, 3);
  EXPECT_EQ(io.output(), threaded_golden(input, limits));
}

TEST(ServeConnFsm, ByteByByteFrameUnderEintrStorm) {
  const std::string input = "{\"type\":\"ping\",\"id\":42}\n";
  ConnectionLimits limits;
  TransportFaultPlan plan;
  plan.max_read_chunk = 1;  // one byte per recv
  plan.eintr_per_op = 3;    // three EINTRs before every recv/send lands
  plan.eagain_every = 3;    // and frequent edge exhaustion on top
  FaultyIo io(input, plan);
  ConnFsm fsm(io, limits, "fsm");

  pump_to_completion(fsm);
  EXPECT_TRUE(fsm.finished());
  EXPECT_GT(io.eintr_injected(), 0u);
  EXPECT_EQ(io.output(), threaded_golden(input, limits));
}

TEST(ServeConnFsm, OversizedLineAnswers413AfterEarlierPipelinedResponses) {
  ConnectionLimits limits;
  limits.max_line = 32;
  const std::string small = "{\"id\":1}";
  const std::string huge(200, 'x');
  FaultyIo io(small + "\n" + huge + "\n", TransportFaultPlan{});
  ConnFsm fsm(io, limits, "fsm");

  // Defer the small request's completion: the 413 must queue behind it,
  // not jump the pipeline.
  std::vector<std::pair<std::string, std::uint64_t>> submitted;
  fsm.on_readable([&](std::string_view line, std::uint64_t slot) {
    submitted.emplace_back(std::string(line), slot);
  });
  ASSERT_EQ(submitted.size(), 1u);
  EXPECT_FALSE(fsm.reading());  // oversized stopped the read side
  fsm.on_writable();
  EXPECT_EQ(io.output(), "");  // nothing released while slot 0 is pending

  fsm.complete(submitted[0].second, echo_handler(submitted[0].first, "fsm"));
  fsm.on_writable();
  EXPECT_TRUE(fsm.finished());
  EXPECT_EQ(fsm.end(), ConnectionEnd::kOversized);
  const auto lines = split_lines(io.output());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("{\\\"id\\\":1}"), std::string::npos);
  EXPECT_NE(lines[1].find("413"), std::string::npos);
  // Bit-identical to the blocking loop's answer for the same stream.
  EXPECT_EQ(io.output(), threaded_golden(small + "\n" + huge + "\n", limits));
}

TEST(ServeConnFsm, OutOfOrderCompletionsReleaseInSlotOrder) {
  const std::string input =
      "{\"id\":0}\n{\"id\":1}\n{\"id\":2}\n{\"id\":3}\n";
  ConnectionLimits limits;
  FaultyIo io(input, TransportFaultPlan{});
  ConnFsm fsm(io, limits, "fsm");

  std::vector<std::pair<std::string, std::uint64_t>> submitted;
  fsm.on_readable([&](std::string_view line, std::uint64_t slot) {
    submitted.emplace_back(std::string(line), slot);
  });
  ASSERT_EQ(submitted.size(), 4u);
  EXPECT_EQ(fsm.pending(), 4u);

  // Complete 2, 0, 3, 1: bytes must still come out as 0, 1, 2, 3.
  for (const std::size_t k : {2u, 0u, 3u, 1u}) {
    fsm.complete(submitted[k].second,
                 echo_handler(submitted[k].first, "fsm"));
    fsm.on_writable();
  }
  EXPECT_TRUE(fsm.finished());
  EXPECT_EQ(io.output(), threaded_golden(input, limits));

  // And the partial release points were in order too: after completing
  // only slot 2 nothing could flush, which io.output() already proves by
  // being identical to the in-order golden.
}

TEST(ServeConnFsm, TrailingFragmentAtEofIsDroppedUnanswered) {
  const std::string input = "{\"id\":1}\n{\"never-finished\":";
  ConnectionLimits limits;
  FaultyIo io(input, TransportFaultPlan{});
  ConnFsm fsm(io, limits, "fsm");

  pump_to_completion(fsm);
  EXPECT_TRUE(fsm.finished());
  EXPECT_EQ(split_lines(io.output()).size(), 1u);
  EXPECT_EQ(io.output(), threaded_golden(input, limits));
}

TEST(ServeConnFsm, RandomFaultPlansMatchTheBlockingLoopByteForByte) {
  // The same 200-seed sweep the blocking loop gets: any responses the
  // FSM manages to produce must be the golden prefix. Corruption is
  // excluded (it garbles the echoed payload), resets and stalls are not —
  // stalls are meaningless to a machine that never waits.
  const std::string input =
      "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n";
  ConnectionLimits limits;
  const std::string golden = threaded_golden(input, limits);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    TransportFaultPlan plan = TransportFaultPlan::random(seed);
    plan.corrupt_read_at = TransportFaultPlan::kNever;
    // >= 2: every-single-call EAGAIN would never let a byte through.
    plan.eagain_every = 2 + static_cast<std::uint32_t>(seed % 3);
    FaultyIo io(input, plan);
    ConnFsm fsm(io, limits, "fsm");
    pump_to_completion(fsm);
    EXPECT_TRUE(fsm.finished()) << "seed " << seed;
    EXPECT_EQ(io.output(), golden.substr(0, io.output().size()))
        << "seed " << seed;
  }
}

}  // namespace
