#include "tokenring/msg/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tokenring/common/checks.hpp"

namespace tokenring::msg {
namespace {

GeneratorConfig paper_config() {
  GeneratorConfig g;
  g.num_streams = 100;
  g.mean_period = milliseconds(100);
  g.period_ratio = 10.0;
  return g;
}

TEST(GeneratorConfig, PeriodSupportFromMeanAndRatio) {
  const GeneratorConfig g = paper_config();
  // P_min = 2*mean/(1+ratio) = 200/11 ms; P_max = 10 * P_min.
  EXPECT_NEAR(to_milliseconds(g.min_period()), 200.0 / 11.0, 1e-9);
  EXPECT_NEAR(to_milliseconds(g.max_period()), 2'000.0 / 11.0, 1e-9);
  EXPECT_NEAR((g.min_period() + g.max_period()) / 2.0, g.mean_period, 1e-15);
}

TEST(GeneratorConfig, EqualPeriodsCollapseSupport) {
  GeneratorConfig g = paper_config();
  g.period_dist = PeriodDistribution::kEqual;
  EXPECT_DOUBLE_EQ(g.min_period(), g.mean_period);
  EXPECT_DOUBLE_EQ(g.max_period(), g.mean_period);
}

TEST(GeneratorConfig, ValidateRejectsBadValues) {
  GeneratorConfig g = paper_config();
  g.num_streams = 0;
  EXPECT_THROW(g.validate(), PreconditionError);
  g = paper_config();
  g.mean_period = 0.0;
  EXPECT_THROW(g.validate(), PreconditionError);
  g = paper_config();
  g.period_ratio = 0.5;
  EXPECT_THROW(g.validate(), PreconditionError);
}

TEST(Generator, ProducesRequestedStreamCountAndStations) {
  MessageSetGenerator gen(paper_config());
  Rng rng(1);
  const MessageSet set = gen.generate(rng);
  ASSERT_EQ(set.size(), 100u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set[i].station, static_cast<int>(i));  // one stream per station
  }
}

TEST(Generator, PeriodsWithinSupport) {
  MessageSetGenerator gen(paper_config());
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const MessageSet set = gen.generate(rng);
    for (const auto& s : set.streams()) {
      EXPECT_GE(s.period, gen.config().min_period());
      EXPECT_LE(s.period, gen.config().max_period());
    }
  }
}

TEST(Generator, UniformPeriodsMeanApproximatesConfig) {
  MessageSetGenerator gen(paper_config());
  Rng rng(3);
  double sum = 0.0;
  std::size_t count = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const MessageSet set = gen.generate(rng);
    for (const auto& s : set.streams()) {
      sum += s.period;
      ++count;
    }
  }
  EXPECT_NEAR(sum / static_cast<double>(count), milliseconds(100),
              milliseconds(2));
}

TEST(Generator, LogUniformStaysInSupportAndSkewsLow) {
  GeneratorConfig g = paper_config();
  g.period_dist = PeriodDistribution::kLogUniform;
  MessageSetGenerator gen(g);
  Rng rng(4);
  double sum = 0.0;
  std::size_t count = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const MessageSet set = gen.generate(rng);
    for (const auto& s : set.streams()) {
      EXPECT_GE(s.period, g.min_period());
      EXPECT_LE(s.period, g.max_period());
      sum += s.period;
      ++count;
    }
  }
  // Log-uniform mean = (max-min)/ln(max/min) < arithmetic midpoint.
  EXPECT_LT(sum / static_cast<double>(count), milliseconds(100));
}

TEST(Generator, EqualPeriods) {
  GeneratorConfig g = paper_config();
  g.period_dist = PeriodDistribution::kEqual;
  MessageSetGenerator gen(g);
  Rng rng(5);
  const MessageSet set = gen.generate(rng);
  for (const auto& s : set.streams()) {
    EXPECT_DOUBLE_EQ(s.period, milliseconds(100));
  }
}

TEST(Generator, UniformPayloadRange) {
  MessageSetGenerator gen(paper_config());
  Rng rng(6);
  const MessageSet set = gen.generate(rng);
  for (const auto& s : set.streams()) {
    EXPECT_GE(s.payload_bits, 1'000.0);
    EXPECT_LE(s.payload_bits, 10'000.0);
  }
}

TEST(Generator, ProportionalPayloadTracksPeriod) {
  GeneratorConfig g = paper_config();
  g.payload_dist = PayloadDistribution::kProportionalToPeriod;
  MessageSetGenerator gen(g);
  Rng rng(7);
  const MessageSet set = gen.generate(rng);
  for (const auto& s : set.streams()) {
    const double ratio = s.payload_bits / (s.period * 1e5);
    EXPECT_GE(ratio, 0.5);
    EXPECT_LE(ratio, 1.5);
  }
}

TEST(Generator, DeterministicForFixedSeed) {
  MessageSetGenerator gen(paper_config());
  Rng r1(99);
  Rng r2(99);
  const MessageSet a = gen.generate(r1);
  const MessageSet b = gen.generate(r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].period, b[i].period);
    EXPECT_DOUBLE_EQ(a[i].payload_bits, b[i].payload_bits);
  }
}

TEST(Generator, GeneratedSetsValidate) {
  MessageSetGenerator gen(paper_config());
  Rng rng(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NO_THROW(gen.generate(rng).validate());
  }
}

}  // namespace
}  // namespace tokenring::msg
