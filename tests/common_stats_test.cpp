#include "tokenring/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"

namespace tokenring {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesNaiveComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  RunningStats s;
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  const double var = m2 / static_cast<double>(xs.size() - 1);

  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 32.0);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStats, StdErrorShrinksWithSamples) {
  Rng rng(4);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10'000; ++i) large.add(rng.uniform01());
  EXPECT_GT(small.std_error(), large.std_error());
  EXPECT_NEAR(large.ci95_half_width(), 1.96 * large.std_error(), 1e-15);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(17);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-3.0, 9.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeOfManyShardsEqualsSingleStream) {
  // The parallel Monte Carlo path folds per-shard accumulators in shard
  // order; folding K shards must agree with one long stream.
  Rng rng(23);
  RunningStats whole;
  RunningStats shards[7];
  for (int i = 0; i < 700; ++i) {
    const double x = rng.uniform(-1.0, 1.0) * rng.uniform(0.0, 100.0);
    whole.add(x);
    shards[i % 7].add(x);
  }
  RunningStats folded;
  for (const auto& s : shards) folded.merge(s);
  EXPECT_EQ(folded.count(), whole.count());
  EXPECT_NEAR(folded.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(folded.variance(), whole.variance(), 1e-7);
  EXPECT_NEAR(folded.std_error(), whole.std_error(), 1e-9);
  EXPECT_DOUBLE_EQ(folded.min(), whole.min());
  EXPECT_DOUBLE_EQ(folded.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Histogram, RequiresValidDomain) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(Histogram, BucketsSamplesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bucket 0
  h.add(5.5);   // bucket 5
  h.add(9.99);  // bucket 9
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[5], 1u);
  EXPECT_EQ(h.counts()[9], 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(99.0);
  EXPECT_EQ(h.counts().front(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(2);
  for (int i = 0; i < 100'000; ++i) h.add(rng.uniform01());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
  EXPECT_NEAR(h.quantile(0.1), 0.1, 0.02);
}

TEST(Histogram, QuantilePreconditions) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.quantile(-0.1), PreconditionError);
  EXPECT_THROW(h.quantile(1.1), PreconditionError);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram -> lo
}

}  // namespace
}  // namespace tokenring
