#include "tokenring/analysis/pdp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::analysis {
namespace {

PdpParams params(PdpVariant variant, int stations = 100) {
  PdpParams p;
  p.ring = net::ieee8025_ring(stations);
  p.frame = net::paper_frame_format();
  p.variant = variant;
  return p;
}

msg::SyncStream stream(Seconds period, Bits payload, int station = 0) {
  return msg::SyncStream{period, payload, station};
}

// ---- augmented length: F > Theta regime (low bandwidth) ---------------------

TEST(PdpAugmented, LowBandwidthFullFramesExactMultiple) {
  // At 1 Mbps: F = 624 us > Theta ~= 468.4 us. Payload 1024 bits = exactly
  // 2 full frames: K = L = 2.
  const BitsPerSecond bw = mbps(1);
  const auto p_std = params(PdpVariant::kStandard8025);
  const Seconds theta = p_std.ring.theta(bw);
  const Seconds frame = p_std.frame.frame_time(bw);
  ASSERT_GT(frame, theta);

  const auto s = stream(milliseconds(100), 1'024.0);
  // Standard: 2F + 2 * Theta/2.
  EXPECT_NEAR(pdp_augmented_length(s, p_std, bw), 2.0 * frame + theta, 1e-12);
  // Modified: 2F + Theta/2 (token overhead once).
  const auto p_mod = params(PdpVariant::kModified8025);
  EXPECT_NEAR(pdp_augmented_length(s, p_mod, bw), 2.0 * frame + theta / 2.0,
              1e-12);
}

TEST(PdpAugmented, LowBandwidthShortLastFrameAboveTheta) {
  // Payload 1000 bits: L=1 full frame (512), last frame 488+112=600 bits.
  // At 1 Mbps last-frame time 600us > Theta, so it costs its own length.
  const BitsPerSecond bw = mbps(1);
  const auto p = params(PdpVariant::kStandard8025);
  const Seconds theta = p.ring.theta(bw);
  const Seconds frame = p.frame.frame_time(bw);
  const Seconds last = transmission_time(1'000.0 - 512.0 + 112.0, bw);
  ASSERT_GT(last, theta);

  const auto s = stream(milliseconds(100), 1'000.0);
  EXPECT_NEAR(pdp_augmented_length(s, p, bw), frame + last + 2.0 * theta / 2.0,
              1e-12);
}

TEST(PdpAugmented, LowBandwidthShortLastFrameBelowThetaPaysTheta) {
  // Payload 552 bits: L=1, last frame 40+112=152 bits = 152us < Theta
  // at 1 Mbps -> the last frame's slot is Theta (header return wait).
  const BitsPerSecond bw = mbps(1);
  const auto p = params(PdpVariant::kStandard8025);
  const Seconds theta = p.ring.theta(bw);
  const Seconds frame = p.frame.frame_time(bw);
  ASSERT_LT(transmission_time(552.0 - 512.0 + 112.0, bw), theta);

  const auto s = stream(milliseconds(100), 552.0);
  EXPECT_NEAR(pdp_augmented_length(s, p, bw), frame + theta + 2.0 * theta / 2.0,
              1e-12);
}

// ---- augmented length: F <= Theta regime (high bandwidth) --------------------

TEST(PdpAugmented, HighBandwidthEveryFrameCostsTheta) {
  // At 100 Mbps: F = 6.24 us << Theta ~= 48.7 us.
  const BitsPerSecond bw = mbps(100);
  const auto p_std = params(PdpVariant::kStandard8025);
  const Seconds theta = p_std.ring.theta(bw);
  ASSERT_LE(p_std.frame.frame_time(bw), theta);

  const auto s = stream(milliseconds(100), 5 * 512.0);  // K = 5 frames
  // Standard: K*Theta + K*Theta/2 = 1.5*K*Theta.
  EXPECT_NEAR(pdp_augmented_length(s, p_std, bw), 1.5 * 5.0 * theta, 1e-12);
  // Modified: K*Theta + Theta/2.
  const auto p_mod = params(PdpVariant::kModified8025);
  EXPECT_NEAR(pdp_augmented_length(s, p_mod, bw), 5.0 * theta + theta / 2.0,
              1e-12);
}

TEST(PdpAugmented, VariantsDifferByPerFrameTokenOverhead) {
  // C'_std - C'_mod = (K-1) * Theta / 2 in every regime.
  for (double bw_mbps : {1.0, 4.0, 16.0, 100.0, 622.0}) {
    const BitsPerSecond bw = mbps(bw_mbps);
    const auto p_std = params(PdpVariant::kStandard8025);
    const auto p_mod = params(PdpVariant::kModified8025);
    const Seconds theta = p_std.ring.theta(bw);
    for (double payload : {100.0, 512.0, 5'000.0, 51'200.0}) {
      const auto s = stream(milliseconds(100), payload);
      const auto k = p_std.frame.frames_for_payload(payload);
      const Seconds diff = pdp_augmented_length(s, p_std, bw) -
                           pdp_augmented_length(s, p_mod, bw);
      EXPECT_NEAR(diff, static_cast<double>(k - 1) * theta / 2.0, 1e-12)
          << "bw=" << bw_mbps << " payload=" << payload;
    }
  }
}

TEST(PdpAugmented, ZeroPayloadCostsNothing) {
  const auto p = params(PdpVariant::kStandard8025);
  EXPECT_DOUBLE_EQ(pdp_augmented_length(stream(0.1, 0.0), p, mbps(10)), 0.0);
}

TEST(PdpAugmented, MonotoneInPayload) {
  const auto p = params(PdpVariant::kStandard8025);
  for (double bw_mbps : {1.0, 10.0, 100.0}) {
    const BitsPerSecond bw = mbps(bw_mbps);
    Seconds prev = 0.0;
    for (double payload = 0.0; payload <= 4'096.0; payload += 64.0) {
      const Seconds c = pdp_augmented_length(stream(0.1, payload), p, bw);
      EXPECT_GE(c, prev - 1e-15) << "payload=" << payload << " bw=" << bw_mbps;
      prev = c;
    }
  }
}

TEST(PdpAugmented, AlwaysAtLeastRawTransmissionTime) {
  Rng rng(5);
  const auto p = params(PdpVariant::kModified8025);
  for (int i = 0; i < 200; ++i) {
    const double payload = rng.uniform(1.0, 100'000.0);
    const BitsPerSecond bw = mbps(rng.uniform(1.0, 1'000.0));
    const auto s = stream(milliseconds(100), payload);
    EXPECT_GE(pdp_augmented_length(s, p, bw),
              transmission_time(payload, bw) - 1e-15);
  }
}

// ---- blocking ---------------------------------------------------------------

TEST(PdpBlocking, TwiceMaxOfFrameAndTheta) {
  const auto p = params(PdpVariant::kStandard8025);
  // Low bandwidth: F > Theta -> B = 2F.
  EXPECT_NEAR(pdp_blocking(p, mbps(1)), 2.0 * p.frame.frame_time(mbps(1)),
              1e-15);
  // High bandwidth: Theta > F -> B = 2*Theta.
  EXPECT_NEAR(pdp_blocking(p, mbps(100)), 2.0 * p.ring.theta(mbps(100)),
              1e-15);
}

// ---- verdicts ----------------------------------------------------------------

TEST(PdpVerdictTest, EmptySetSchedulable) {
  const auto p = params(PdpVariant::kStandard8025);
  EXPECT_TRUE(pdp_schedulable(msg::MessageSet{}, p, mbps(10)).schedulable);
}

TEST(PdpVerdictTest, SmallSetSchedulableAt16Mbps) {
  msg::MessageSet set;
  set.add(stream(milliseconds(20), bytes(1'000), 0));
  set.add(stream(milliseconds(50), bytes(2'000), 1));
  const auto p = params(PdpVariant::kStandard8025, 8);
  const auto v = pdp_schedulable(set, p, mbps(16));
  EXPECT_TRUE(v.schedulable);
  ASSERT_EQ(v.reports.size(), 2u);
  EXPECT_TRUE(v.reports[0].schedulable);
  EXPECT_TRUE(v.reports[1].schedulable);
  EXPECT_LE(*v.reports[0].response_time, milliseconds(20));
}

TEST(PdpVerdictTest, ReportsSortedByPeriod) {
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 512.0, 0));
  set.add(stream(milliseconds(10), 512.0, 1));
  const auto p = params(PdpVariant::kStandard8025, 8);
  const auto v = pdp_schedulable(set, p, mbps(16));
  EXPECT_EQ(v.reports[0].stream.station, 1);
  EXPECT_EQ(v.reports[1].stream.station, 0);
}

TEST(PdpVerdictTest, GrossOverloadFails) {
  msg::MessageSet set;
  // One station wants 15 ms of payload every 10 ms.
  set.add(stream(milliseconds(10), 15'000.0, 0));
  const auto p = params(PdpVariant::kStandard8025, 8);
  const auto v = pdp_schedulable(set, p, mbps(1));
  EXPECT_FALSE(v.schedulable);
  EXPECT_FALSE(v.reports[0].schedulable);
}

TEST(PdpVerdictTest, ModifiedSchedulesWhereStandardFails) {
  // High bandwidth + many frames: the per-frame token overhead of the
  // standard implementation is the differentiator the paper highlights.
  msg::MessageSet set;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    set.add(stream(milliseconds(10), 40.0 * 512.0, i));  // 40 frames each
  }
  const auto bw = mbps(100);
  const auto p_std = params(PdpVariant::kStandard8025, n);
  const auto p_mod = params(PdpVariant::kModified8025, n);
  const bool std_ok = pdp_feasible(set, p_std, bw);
  const bool mod_ok = pdp_feasible(set, p_mod, bw);
  EXPECT_FALSE(std_ok);
  EXPECT_TRUE(mod_ok);
}

TEST(PdpVerdictTest, FeasibleMatchesFullVerdict) {
  Rng rng(11);
  msg::GeneratorConfig g;
  g.num_streams = 20;
  g.mean_period = milliseconds(50);
  msg::MessageSetGenerator gen(g);
  const auto p = params(PdpVariant::kStandard8025, 20);
  for (int trial = 0; trial < 30; ++trial) {
    const auto set = gen.generate(rng).scaled(rng.uniform(0.1, 60.0));
    const BitsPerSecond bw = mbps(rng.uniform(1.0, 200.0));
    EXPECT_EQ(pdp_feasible(set, p, bw), pdp_schedulable(set, p, bw).schedulable)
        << "trial " << trial;
  }
}

TEST(PdpVerdictTest, LsdAgreesWithRtaOnRandomSets) {
  Rng rng(13);
  msg::GeneratorConfig g;
  g.num_streams = 12;
  g.mean_period = milliseconds(80);
  msg::MessageSetGenerator gen(g);
  for (auto variant :
       {PdpVariant::kStandard8025, PdpVariant::kModified8025}) {
    const auto p = params(variant, 12);
    for (int trial = 0; trial < 25; ++trial) {
      const auto set = gen.generate(rng).scaled(rng.uniform(1.0, 80.0));
      const BitsPerSecond bw = mbps(rng.uniform(2.0, 100.0));
      const auto rta = pdp_schedulable(set, p, bw);
      const auto lsd = pdp_schedulable_lsd(set, p, bw);
      ASSERT_EQ(rta.schedulable, lsd.schedulable)
          << "variant=" << to_string(variant) << " trial=" << trial;
    }
  }
}

TEST(PdpVerdictTest, SchedulabilityMonotoneInScale) {
  Rng rng(17);
  msg::GeneratorConfig g;
  g.num_streams = 15;
  msg::MessageSetGenerator gen(g);
  const auto p = params(PdpVariant::kModified8025, 15);
  const BitsPerSecond bw = mbps(10);
  for (int trial = 0; trial < 20; ++trial) {
    const auto base = gen.generate(rng);
    bool prev = true;
    for (double scale : {1.0, 5.0, 20.0, 80.0, 320.0}) {
      const bool ok = pdp_feasible(base.scaled(scale), p, bw);
      if (!prev) {
        EXPECT_FALSE(ok) << "non-monotone at scale " << scale;
      }
      prev = ok;
    }
  }
}

TEST(PdpVerdictTest, InvalidInputsThrow) {
  const auto p = params(PdpVariant::kStandard8025);
  msg::MessageSet set;
  set.add(stream(milliseconds(10), 100.0));
  EXPECT_THROW(pdp_schedulable(set, p, 0.0), PreconditionError);
  auto bad = p;
  bad.ring.num_stations = 0;
  EXPECT_THROW(pdp_schedulable(set, bad, mbps(10)), PreconditionError);
}

TEST(PdpVariantName, Strings) {
  EXPECT_STREQ(to_string(PdpVariant::kStandard8025), "IEEE 802.5");
  EXPECT_STREQ(to_string(PdpVariant::kModified8025), "Modified IEEE 802.5");
}

}  // namespace
}  // namespace tokenring::analysis
