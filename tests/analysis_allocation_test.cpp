#include "tokenring/analysis/allocation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::analysis {
namespace {

TtpParams params(int stations) {
  TtpParams p;
  p.ring = net::fddi_ring(stations);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

msg::SyncStream stream(Seconds period, Bits payload, int station) {
  return msg::SyncStream{period, payload, station};
}

msg::MessageSet two_station_set() {
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 50'000.0, 0));
  set.add(stream(milliseconds(200), 100'000.0, 1));
  return set;
}

TEST(Allocation, SchemeNames) {
  EXPECT_STREQ(to_string(AllocationScheme::kLocal), "local");
  EXPECT_STREQ(to_string(AllocationScheme::kFullLength), "full-length");
  EXPECT_STREQ(to_string(AllocationScheme::kProportional), "proportional");
  EXPECT_STREQ(to_string(AllocationScheme::kNormalizedProportional),
               "norm-proportional");
  EXPECT_STREQ(to_string(AllocationScheme::kEqualPartition), "equal-partition");
  EXPECT_EQ(all_allocation_schemes().size(), 5u);
}

TEST(Allocation, LocalMatchesTtpModule) {
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const auto set = two_station_set();
  const Seconds ttrt = milliseconds(10);
  const auto res = allocate(set, p, bw, ttrt, AllocationScheme::kLocal);
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto h = ttp_local_bandwidth(set[i], p, bw, ttrt);
    ASSERT_TRUE(h.has_value());
    EXPECT_NEAR(res.h[i], *h, 1e-15);
  }
}

TEST(Allocation, FullLengthByHand) {
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const auto set = two_station_set();
  const auto res =
      allocate(set, p, bw, milliseconds(10), AllocationScheme::kFullLength);
  EXPECT_NEAR(res.h[0], set[0].payload_time(bw) + p.frame.overhead_time(bw),
              1e-15);
  EXPECT_NEAR(res.h[1], set[1].payload_time(bw) + p.frame.overhead_time(bw),
              1e-15);
}

TEST(Allocation, EqualPartitionSplitsAvailable) {
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const auto set = two_station_set();
  const Seconds ttrt = milliseconds(10);
  const auto res =
      allocate(set, p, bw, ttrt, AllocationScheme::kEqualPartition);
  const Seconds available = ttrt - res.lambda;
  EXPECT_NEAR(res.h[0], available / 2.0, 1e-15);
  EXPECT_NEAR(res.h[1], available / 2.0, 1e-15);
  EXPECT_TRUE(res.protocol_ok);  // equal partition saturates exactly
}

TEST(Allocation, ProportionalAndNormalized) {
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const auto set = two_station_set();
  const Seconds ttrt = milliseconds(10);
  const Seconds available = ttrt - ttp_lambda(p, bw);

  const auto prop =
      allocate(set, p, bw, ttrt, AllocationScheme::kProportional);
  EXPECT_NEAR(prop.h[0], set[0].utilization(bw) * available, 1e-15);

  const auto norm =
      allocate(set, p, bw, ttrt, AllocationScheme::kNormalizedProportional);
  const double total_u = set.utilization(bw);
  EXPECT_NEAR(norm.h[0], set[0].utilization(bw) / total_u * available, 1e-15);
  // Normalized scheme always saturates the protocol constraint exactly.
  EXPECT_NEAR(norm.h[0] + norm.h[1], available, 1e-12);
  EXPECT_TRUE(norm.protocol_ok);
}

TEST(Allocation, LocalSatisfiesDeadlineExactly) {
  // Local allocates exactly the minimum need: (q-1)(h - ovhd) == C.
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const auto set = two_station_set();
  const Seconds ttrt = milliseconds(10);
  const auto res = allocate(set, p, bw, ttrt, AllocationScheme::kLocal);
  EXPECT_TRUE(res.deadline_ok);
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto q = static_cast<double>(
        static_cast<std::int64_t>(std::floor(set[i].period / ttrt)));
    EXPECT_NEAR((q - 1.0) * (res.h[i] - p.frame.overhead_time(bw)),
                set[i].payload_time(bw), 1e-12);
  }
}

TEST(Allocation, LocalFeasibleWheneverAnySchemeIs) {
  // Property: the local scheme allocates each station's minimum need, so if
  // any scheme passes both constraints, local must too.
  Rng rng(23);
  msg::GeneratorConfig g;
  g.num_streams = 20;
  msg::MessageSetGenerator gen(g);
  const auto p = params(20);
  int feasible_cases = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto set = gen.generate(rng).scaled(rng.uniform(1.0, 400.0));
    const BitsPerSecond bw = mbps(rng.uniform(10.0, 500.0));
    const Seconds ttrt = select_ttrt(set, p.ring, bw);
    const auto local = allocate(set, p, bw, ttrt, AllocationScheme::kLocal);
    for (auto scheme : all_allocation_schemes()) {
      const auto res = allocate(set, p, bw, ttrt, scheme);
      if (res.feasible()) {
        ++feasible_cases;
        EXPECT_TRUE(local.feasible())
            << "scheme " << to_string(scheme) << " feasible but local not";
      }
    }
  }
  EXPECT_GT(feasible_cases, 0);  // the property must not hold vacuously
}

TEST(Allocation, FullLengthMoreRestrictiveThanLocal) {
  // A set where a long message fits spread over q-1 visits (local) but not
  // in a single visit (full-length protocol constraint).
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const Seconds ttrt = milliseconds(10);
  msg::MessageSet set;
  // 0.8 ms of payload per message; full-length needs h = 0.8 ms + ovhd each
  // (sum ~1.6 ms); local needs ~0.8/9 + ovhd each. Available = 10 - ~0.13 ms.
  set.add(stream(milliseconds(100), 0.0008 * bw, 0));
  set.add(stream(milliseconds(100), 0.0008 * bw, 1));
  const auto local = allocate(set, p, bw, ttrt, AllocationScheme::kLocal);
  const auto full = allocate(set, p, bw, ttrt, AllocationScheme::kFullLength);
  EXPECT_TRUE(local.feasible());
  EXPECT_TRUE(full.feasible());
  EXPECT_LT(local.h[0], full.h[0]);

  // Scale up: local keeps working far beyond full-length's breaking point.
  const auto big = set.scaled(8.0);
  EXPECT_TRUE(allocate(big, p, bw, ttrt, AllocationScheme::kLocal).feasible());
  EXPECT_FALSE(
      allocate(big, p, bw, ttrt, AllocationScheme::kFullLength).feasible());
}

TEST(Allocation, EqualPartitionFailsSkewedLoads) {
  // One heavy station, many light ones: the equal split starves the heavy
  // station's deadline constraint while local adapts.
  const auto p = params(10);
  const BitsPerSecond bw = mbps(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 0.008 * bw, 0));  // 8 ms payload
  for (int i = 1; i < 10; ++i) {
    set.add(stream(milliseconds(50), 0.00001 * bw, i));
  }
  const Seconds ttrt = milliseconds(2);
  const auto local = allocate(set, p, bw, ttrt, AllocationScheme::kLocal);
  const auto equal =
      allocate(set, p, bw, ttrt, AllocationScheme::kEqualPartition);
  EXPECT_TRUE(local.feasible());
  EXPECT_TRUE(equal.protocol_ok);
  EXPECT_FALSE(equal.deadline_ok);
}

TEST(Allocation, QBelowTwoFailsEveryScheme) {
  const auto p = params(2);
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 1'000.0, 0));
  set.add(stream(milliseconds(100), 1'000.0, 1));
  for (auto scheme : all_allocation_schemes()) {
    const auto res = allocate(set, p, mbps(100), milliseconds(60), scheme);
    EXPECT_FALSE(res.deadline_ok) << to_string(scheme);
  }
}

TEST(Allocation, ResultEchoesInputs) {
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const auto res = allocate(two_station_set(), p, bw, milliseconds(10),
                            AllocationScheme::kLocal);
  EXPECT_EQ(res.scheme, AllocationScheme::kLocal);
  EXPECT_DOUBLE_EQ(res.ttrt, milliseconds(10));
  EXPECT_NEAR(res.lambda, ttp_lambda(p, bw), 1e-18);
  EXPECT_EQ(res.h.size(), 2u);
}

}  // namespace
}  // namespace tokenring::analysis
