#include "tokenring/sim/workload.hpp"

#include <gtest/gtest.h>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::sim {
namespace {

msg::MessageSet demo_set() {
  msg::MessageSet set;
  set.add({.period = milliseconds(20), .payload_bits = 10'000.0, .station = 1});
  set.add({.period = milliseconds(50), .payload_bits = 40'000.0, .station = 3});
  return set;
}

analysis::TtpParams ttp_params() {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(6);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

TEST(Workload, TtpConfigUsesPaperTtrtRule) {
  const auto set = demo_set();
  const auto p = ttp_params();
  const BitsPerSecond bw = mbps(100);
  const auto cfg = make_sim_config(set, p, bw);
  EXPECT_DOUBLE_EQ(cfg.ttrt, analysis::select_ttrt(set, p.ring, bw));
  EXPECT_DOUBLE_EQ(cfg.bandwidth, bw);
}

TEST(Workload, TtpConfigAllocatesPerStreamWithLocalScheme) {
  const auto set = demo_set();
  const auto p = ttp_params();
  const BitsPerSecond bw = mbps(100);
  const auto cfg = make_sim_config(set, p, bw);
  ASSERT_EQ(cfg.sync_bandwidth_per_stream.size(), set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        cfg.sync_bandwidth_per_stream[i],
        analysis::ttp_local_bandwidth(set[i], p, bw, cfg.ttrt).value());
  }
}

TEST(Workload, TtpConfigZeroesUnguaranteeableStreams) {
  // A stream whose deadline window is too short for the selected TTRT
  // (q < 2) gets h = 0 rather than crashing the builder.
  msg::MessageSet set = demo_set();
  msg::SyncStream tight{milliseconds(20), 1'000.0, 0};
  tight.relative_deadline = milliseconds(1);  // far below 2 * TTRT
  set.add(tight);
  const auto p = ttp_params();
  const BitsPerSecond bw = mbps(10);
  const auto cfg = make_sim_config(set, p, bw);
  // TTRT is re-selected from the tight deadline, so check via q directly.
  const auto q = static_cast<int>(tight.deadline() / cfg.ttrt);
  if (q < 2) {
    EXPECT_DOUBLE_EQ(cfg.sync_bandwidth_per_stream[2], 0.0);
  }
}

TEST(Workload, HorizonScalesWithMaxPeriod) {
  const auto set = demo_set();
  const auto cfg = make_sim_config(set, ttp_params(), mbps(100), 6.0);
  EXPECT_DOUBLE_EQ(cfg.horizon, 6.0 * milliseconds(50));

  analysis::PdpParams pdp;
  pdp.ring = net::ieee8025_ring(6);
  pdp.frame = net::paper_frame_format();
  const auto pcfg = make_sim_config(set, pdp, mbps(16), 3.0);
  EXPECT_DOUBLE_EQ(pcfg.horizon, 3.0 * milliseconds(50));
  EXPECT_DOUBLE_EQ(pcfg.bandwidth, mbps(16));
}

TEST(Workload, BuiltConfigsRunImmediately) {
  const auto set = demo_set();
  const auto tcfg = make_sim_config(set, ttp_params(), mbps(100));
  EXPECT_EQ(run_simulation(set, tcfg).deadline_misses, 0u);

  analysis::PdpParams pdp;
  pdp.ring = net::ieee8025_ring(6);
  pdp.frame = net::paper_frame_format();
  pdp.variant = analysis::PdpVariant::kModified8025;
  const auto pcfg = make_sim_config(set, pdp, mbps(16));
  EXPECT_EQ(run_simulation(set, pcfg).deadline_misses, 0u);
}

TEST(Workload, OverloadsTagProtocol) {
  const auto set = demo_set();
  EXPECT_EQ(make_sim_config(set, ttp_params(), mbps(100)).protocol,
            Protocol::kTtp);
  analysis::PdpParams pdp;
  pdp.ring = net::ieee8025_ring(6);
  pdp.frame = net::paper_frame_format();
  EXPECT_EQ(make_sim_config(set, pdp, mbps(16)).protocol, Protocol::kPdp);
}

TEST(Workload, Preconditions) {
  msg::MessageSet empty;
  EXPECT_THROW(make_sim_config(empty, ttp_params(), mbps(100)),
               PreconditionError);
  EXPECT_THROW(make_sim_config(demo_set(), ttp_params(), mbps(100), 0.0),
               PreconditionError);
}

}  // namespace
}  // namespace tokenring::sim
