#include "tokenring/msg/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace tokenring::msg {
namespace {

MessageSet sample_set() {
  MessageSet set;
  set.add({.period = milliseconds(20), .payload_bits = 16'000.0, .station = 0});
  set.add({.period = milliseconds(50.5), .payload_bits = 32'768.0, .station = 3});
  return set;
}

TEST(MsgIo, CsvRoundTrip) {
  const auto original = sample_set();
  const auto parsed = message_set_from_csv(to_csv(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i].station, original[i].station);
    EXPECT_DOUBLE_EQ(parsed[i].period, original[i].period);
    EXPECT_DOUBLE_EQ(parsed[i].payload_bits, original[i].payload_bits);
  }
}

TEST(MsgIo, CsvHasHeaderAndRows) {
  const std::string csv = to_csv(sample_set());
  EXPECT_EQ(csv.rfind("station,period_ms,payload_bits\n", 0), 0u);
  EXPECT_NE(csv.find("0,20,16000"), std::string::npos);
}

TEST(MsgIo, ParsesCommentsAndBlankLines) {
  const std::string text =
      "# scenario: two sensors\n"
      "\n"
      "station,period_ms,payload_bits\n"
      "# fast one\n"
      "0, 10, 512\n"
      "1, 20, 1024\n";
  const auto set = message_set_from_csv(text);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set[0].period, milliseconds(10));
  EXPECT_DOUBLE_EQ(set[1].payload_bits, 1'024.0);
}

TEST(MsgIo, EmptySetRoundTrips) {
  const auto set = message_set_from_csv(to_csv(MessageSet{}));
  EXPECT_TRUE(set.empty());
}

TEST(MsgIo, MissingHeaderRejected) {
  EXPECT_THROW(message_set_from_csv("0,10,512\n"), ParseError);
  EXPECT_THROW(message_set_from_csv(""), ParseError);
}

TEST(MsgIo, WrongColumnCountRejected) {
  EXPECT_THROW(message_set_from_csv(
                   "station,period_ms,payload_bits\n0,10\n"),
               ParseError);
  EXPECT_THROW(message_set_from_csv(
                   "station,period_ms,payload_bits\n0,10,512,7\n"),
               ParseError);
}

TEST(MsgIo, NonNumericRejectedWithLineNumber) {
  try {
    message_set_from_csv("station,period_ms,payload_bits\n0,abc,512\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(MsgIo, InvalidStreamRejected) {
  // Zero period violates the stream invariant.
  EXPECT_THROW(message_set_from_csv(
                   "station,period_ms,payload_bits\n0,0,512\n"),
               ParseError);
  // Negative payload too.
  EXPECT_THROW(message_set_from_csv(
                   "station,period_ms,payload_bits\n0,10,-5\n"),
               ParseError);
}

TEST(MsgIo, NonFiniteValuesRejectedWithLineNumber) {
  // std::stod parses "inf"/"nan" happily; semantic validation must still
  // reject them, pointing at the offending row.
  const char* bad[] = {
      "station,period_ms,payload_bits\n0,inf,512\n",
      "station,period_ms,payload_bits\n0,nan,512\n",
      "station,period_ms,payload_bits\n0,-inf,512\n",
      "station,period_ms,payload_bits\n0,10,inf\n",
      "station,period_ms,payload_bits\n0,10,nan\n",
      "station,period_ms,payload_bits,deadline_ms\n0,10,512,inf\n",
  };
  for (const char* text : bad) {
    try {
      message_set_from_csv(text);
      FAIL() << "expected ParseError for: " << text;
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
    }
  }
}

TEST(MsgIo, DeadlineBeyondPeriodRejectedWithLineNumber) {
  try {
    message_set_from_csv(
        "station,period_ms,payload_bits,deadline_ms\n"
        "0,10,512,5\n"
        "1,10,512,12\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("D <= P"), std::string::npos) << what;
  }
}

TEST(MsgIo, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tokenring_io_test.csv")
          .string();
  save_message_set(path, sample_set());
  const auto loaded = load_message_set(path);
  EXPECT_EQ(loaded.size(), 2u);
  std::remove(path.c_str());
}

TEST(MsgIo, MissingFileRejected) {
  EXPECT_THROW(load_message_set("/nonexistent/dir/set.csv"), ParseError);
  EXPECT_THROW(save_message_set("/nonexistent/dir/set.csv", sample_set()),
               ParseError);
}

}  // namespace
}  // namespace tokenring::msg
