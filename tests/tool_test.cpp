// End-to-end tests of the tokenring_tool CLI binary: exercises argument
// parsing, exit codes, and the scenario-file round trip through the real
// executable (path injected by CMake as TOKENRING_TOOL_PATH).

#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

#ifndef TOKENRING_TOOL_PATH
#error "TOKENRING_TOOL_PATH must be defined by the build"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_tool(const std::string& args) {
  const std::string cmd =
      std::string(TOKENRING_TOOL_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buf{};
  RunResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) return result;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe)) {
    result.output += buf.data();
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string temp_path(const std::string& name) {
  // ctest runs each gtest case as its own process, possibly in parallel;
  // the pid keeps concurrent cases from clobbering each other's files.
  return (std::filesystem::temp_directory_path() /
          (std::to_string(getpid()) + "_" + name))
      .string();
}

void write_scenario(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  out << "station,period_ms,payload_bits\n" << body;
}

class ToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    light_ = temp_path("tool_test_light.csv");
    heavy_ = temp_path("tool_test_heavy.csv");
    write_scenario(light_, "0,50,10000\n1,100,20000\n");
    write_scenario(heavy_, "0,10,2000000\n1,10,2000000\n");  // 40x overload
  }
  void TearDown() override {
    std::remove(light_.c_str());
    std::remove(heavy_.c_str());
  }
  std::string light_;
  std::string heavy_;
};

TEST_F(ToolTest, NoArgsPrintsUsage) {
  const auto r = run_tool("");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(ToolTest, UnknownCommandPrintsUsage) {
  EXPECT_EQ(run_tool("frobnicate").exit_code, 1);
}

TEST_F(ToolTest, CheckSchedulableExitsZero) {
  const auto r =
      run_tool("check --file=" + light_ + " --protocol=fddi --bandwidth-mbps=100");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("SCHEDULABLE"), std::string::npos);
}

TEST_F(ToolTest, CheckOverloadedExitsTwo) {
  const auto r =
      run_tool("check --file=" + heavy_ + " --protocol=fddi --bandwidth-mbps=100");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("NOT SCHEDULABLE"), std::string::npos);
}

TEST_F(ToolTest, CheckAllProtocols) {
  for (const char* proto : {"ieee8025", "modified8025", "fddi"}) {
    const auto r = run_tool("check --file=" + light_ + " --protocol=" + proto +
                            " --bandwidth-mbps=100");
    EXPECT_EQ(r.exit_code, 0) << proto << ": " << r.output;
  }
}

TEST_F(ToolTest, CheckBadProtocolFails) {
  const auto r = run_tool("check --file=" + light_ + " --protocol=wifi");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown protocol"), std::string::npos);
}

TEST_F(ToolTest, CheckMissingFileFails) {
  const auto r = run_tool("check --file=/does/not/exist.csv");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot open"), std::string::npos);
}

TEST_F(ToolTest, CheckRequiresFileFlag) {
  EXPECT_EQ(run_tool("check").exit_code, 1);
}

TEST_F(ToolTest, PlanPrintsAllocationTable) {
  const auto r = run_tool("plan --file=" + light_ + " --bandwidth-mbps=100");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("TTRT"), std::string::npos);
  EXPECT_NE(r.output.find("resp_bound_ms"), std::string::npos);
  EXPECT_NE(r.output.find("async capacity left"), std::string::npos);
}

TEST_F(ToolTest, SimulateCleanRunExitsZero) {
  const auto r = run_tool("simulate --file=" + light_ +
                          " --protocol=modified8025 --bandwidth-mbps=16 "
                          "--horizon-ms=300");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("misses=0"), std::string::npos);
}

TEST_F(ToolTest, SimulateOverloadExitsTwo) {
  const auto r = run_tool("simulate --file=" + heavy_ +
                          " --protocol=fddi --bandwidth-mbps=100 "
                          "--horizon-ms=100");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST_F(ToolTest, AdviseShowsRecommendations) {
  const auto r = run_tool(
      "advise --stations=16 --bandwidths-mbps=4,200 --sets=10");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("recommend"), std::string::npos);
  // Low bandwidth -> PDP family; high -> FDDI (the paper's conclusion).
  EXPECT_NE(r.output.find("Modified IEEE 802.5"), std::string::npos);
  EXPECT_NE(r.output.find("FDDI timed token"), std::string::npos);
  // Fault-resilience columns ride along.
  EXPECT_NE(r.output.find("resil_8025"), std::string::npos);
  EXPECT_NE(r.output.find("resil_fddi"), std::string::npos);
}

TEST_F(ToolTest, FaultcheckListsKindsAndExitsZeroWhenSchedulable) {
  const auto r = run_tool("faultcheck --file=" + light_ +
                          " --protocol=fddi --bandwidth-mbps=100");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("SCHEDULABLE"), std::string::npos);
  for (const char* kind : {"token_loss", "frame_corruption", "noise_burst",
                           "station_crash", "duplicate_token"}) {
    EXPECT_NE(r.output.find(kind), std::string::npos) << kind;
  }
  EXPECT_NE(r.output.find("margin"), std::string::npos);
}

TEST_F(ToolTest, FaultcheckOverloadedExitsTwo) {
  const auto r = run_tool("faultcheck --file=" + heavy_ +
                          " --protocol=modified8025 --bandwidth-mbps=100");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_NE(r.output.find("NOT SCHEDULABLE"), std::string::npos);
}

TEST_F(ToolTest, FaultcheckRequiresFileFlag) {
  EXPECT_EQ(run_tool("faultcheck").exit_code, 1);
}

TEST_F(ToolTest, GenerateRoundTripsThroughCheck) {
  const std::string path = temp_path("tool_test_generated.csv");
  const auto gen = run_tool("generate --stations=8 --utilization=0.2 "
                            "--bandwidth-mbps=100 --file=" + path);
  EXPECT_EQ(gen.exit_code, 0) << gen.output;
  const auto check = run_tool("check --file=" + path +
                              " --protocol=fddi --bandwidth-mbps=100");
  EXPECT_EQ(check.exit_code, 0) << check.output;
  std::remove(path.c_str());
}

TEST_F(ToolTest, GenerateToStdoutIsValidCsv) {
  const auto r = run_tool("generate --stations=4 --utilization=0.1");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output.rfind("station,period_ms,payload_bits", 0), 0u);
}

TEST_F(ToolTest, HelpListsEveryCommand) {
  const auto r = run_tool("help");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* cmd :
       {"check", "faultcheck", "plan", "simulate", "advise", "generate"}) {
    EXPECT_NE(r.output.find(cmd), std::string::npos) << cmd;
  }
}

TEST_F(ToolTest, HelpForOneCommandShowsItsFlags) {
  const auto r = run_tool("help simulate");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("--trace-jsonl"), std::string::npos);
  EXPECT_NE(r.output.find("--format"), std::string::npos);
}

TEST_F(ToolTest, HelpListsServeCommand) {
  const auto r = run_tool("help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("serve"), std::string::npos);
  const auto detail = run_tool("help serve");
  EXPECT_EQ(detail.exit_code, 0);
  EXPECT_NE(detail.output.find("--port"), std::string::npos);
  EXPECT_NE(detail.output.find("--rate"), std::string::npos);
}

TEST_F(ToolTest, SubcommandHelpFlagExitsZero) {
  // --help is a successful outcome for every subcommand, distinct from a
  // flag error; scripts rely on the exit code to tell them apart.
  const auto r = run_tool("check --help");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("--protocol"), std::string::npos);
}

TEST_F(ToolTest, UnknownFlagExitsOneAndPointsAtHelp) {
  const auto r = run_tool("check --file=" + light_ + " --bogus=1");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("help check"), std::string::npos) << r.output;
}

TEST_F(ToolTest, MissingFlagValueExitsOneAndPointsAtHelp) {
  const auto r = run_tool("advise --stations");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("help advise"), std::string::npos) << r.output;
}

TEST_F(ToolTest, JsonFormatEmitsManifestOnStdout) {
  const auto r = run_tool("check --file=" + light_ +
                          " --protocol=fddi --format=json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.rfind("{", 0), 0u) << r.output;
  EXPECT_NE(r.output.find("\"schema\": \"tokenring.run_manifest/1\""),
            std::string::npos);
  EXPECT_NE(r.output.find("\"tool\": \"tokenring_tool check\""),
            std::string::npos);
  // Human banner is suppressed: nothing outside the JSON document.
  EXPECT_EQ(r.output.find("SCHEDULABLE ("), std::string::npos);
}

TEST_F(ToolTest, ManifestFileIsWrittenInTableMode) {
  const std::string path = temp_path("tool_test_manifest.json");
  const auto r = run_tool("check --file=" + light_ +
                          " --protocol=fddi --out=" + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("SCHEDULABLE"), std::string::npos);  // still human
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string manifest((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(manifest.find("tokenring.run_manifest/1"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ToolTest, SimulateWritesJsonlTrace) {
  const std::string path = temp_path("tool_test_trace.jsonl");
  const auto r = run_tool("simulate --file=" + light_ +
                          " --protocol=fddi --horizon-ms=50 "
                          "--trace-jsonl=" + path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"at_s\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"kind\":"), std::string::npos) << line;
  }
  EXPECT_GT(lines, 0u);
  std::remove(path.c_str());
}

TEST_F(ToolTest, BadFormatValueFails) {
  const auto r = run_tool("check --file=" + light_ + " --format=xml");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("unknown --format"), std::string::npos);
}

}  // namespace
