#include "tokenring/common/rng.hpp"

#include <gtest/gtest.h>

#include "tokenring/common/checks.hpp"

namespace tokenring {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, UniformMeanApproximatesMidpoint) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    saw_lo |= v == 0;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PreconditionsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
  EXPECT_THROW(rng.uniform_int(5, 4), PreconditionError);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
  EXPECT_THROW(rng.bernoulli(1.5), PreconditionError);
  EXPECT_THROW(rng.bernoulli(-0.1), PreconditionError);
}

}  // namespace
}  // namespace tokenring
