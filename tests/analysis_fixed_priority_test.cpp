#include "tokenring/analysis/fixed_priority.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::analysis {
namespace {

// ---- hand-checked classics -------------------------------------------------

TEST(FixedPriority, LiuLaylandClassicSchedulable) {
  // Liu & Layland 1973 example: U = 0.25 + 0.30 = 0.55 < bound.
  const std::vector<FpTask> tasks = {{4.0, 1.0}, {5.0, 1.5}};
  EXPECT_TRUE(response_time_analysis(tasks, 0.0).schedulable);
  EXPECT_TRUE(lsd_point_test_all(tasks, 0.0).schedulable);
}

TEST(FixedPriority, FullUtilizationHarmonicIsSchedulable) {
  // Harmonic periods schedule up to U = 1.
  const std::vector<FpTask> tasks = {{2.0, 1.0}, {4.0, 1.0}, {8.0, 2.0}};
  EXPECT_DOUBLE_EQ(tasks[0].cost / tasks[0].period + tasks[1].cost / tasks[1].period +
                       tasks[2].cost / tasks[2].period,
                   1.0);
  EXPECT_TRUE(response_time_analysis(tasks, 0.0).schedulable);
  EXPECT_TRUE(lsd_point_test_all(tasks, 0.0).schedulable);
}

TEST(FixedPriority, OverloadedSetFails) {
  const std::vector<FpTask> tasks = {{2.0, 1.5}, {3.0, 1.5}};  // U = 1.25
  const auto v = response_time_analysis(tasks, 0.0);
  EXPECT_FALSE(v.schedulable);
  ASSERT_TRUE(v.first_failure.has_value());
  EXPECT_EQ(*v.first_failure, 1u);
  EXPECT_FALSE(lsd_point_test_all(tasks, 0.0).schedulable);
}

TEST(FixedPriority, BoundaryCaseExactFit) {
  // t=4: 2*ceil(4/2) + 2 = 6 > 4; t=6: 2*3+2=8>6 ... classic infeasible;
  // but {3, 1.5},{4.5,1.5} fits exactly at t=4.5: 1.5*ceil(4.5/3)+1.5 = 4.5.
  const std::vector<FpTask> tasks = {{3.0, 1.5}, {4.5, 1.5}};
  EXPECT_TRUE(response_time_analysis(tasks, 0.0).schedulable);
  EXPECT_TRUE(lsd_point_test_all(tasks, 0.0).schedulable);
  // Any epsilon more on the low-priority task breaks it.
  const std::vector<FpTask> broken = {{3.0, 1.5}, {4.5, 1.5 + 1e-6}};
  EXPECT_FALSE(response_time_analysis(broken, 0.0).schedulable);
  EXPECT_FALSE(lsd_point_test_all(broken, 0.0).schedulable);
}

TEST(FixedPriority, ResponseTimesByHand) {
  // r1 = 1; r2 = 1.5 + ceil(r2/4)*1 -> r2 = 2.5.
  const std::vector<FpTask> tasks = {{4.0, 1.0}, {5.0, 1.5}};
  const auto v = response_time_analysis(tasks, 0.0);
  ASSERT_TRUE(v.tasks[0].response_time.has_value());
  ASSERT_TRUE(v.tasks[1].response_time.has_value());
  EXPECT_DOUBLE_EQ(*v.tasks[0].response_time, 1.0);
  EXPECT_DOUBLE_EQ(*v.tasks[1].response_time, 2.5);
}

TEST(FixedPriority, ResponseTimeWithInterferenceWindow) {
  // r = 2 + ceil(r/3)*1: r0=2 -> 2+ceil(2/3)=3 -> 2+ceil(3/3)=3. The second
  // release of task 1 lands exactly when task 2 finishes, so r = 3.
  const std::vector<FpTask> tasks = {{3.0, 1.0}, {10.0, 2.0}};
  const auto v = response_time_analysis(tasks, 0.0);
  ASSERT_TRUE(v.tasks[1].response_time.has_value());
  EXPECT_DOUBLE_EQ(*v.tasks[1].response_time, 3.0);

  // One epsilon more cost and the second release does interfere: r jumps
  // past 4 (2+eps + 2 interference).
  const std::vector<FpTask> heavier = {{3.0, 1.0}, {10.0, 2.0 + 1e-9}};
  const auto v2 = response_time_analysis(heavier, 0.0);
  ASSERT_TRUE(v2.tasks[1].response_time.has_value());
  EXPECT_GT(*v2.tasks[1].response_time, 4.0);
}

// ---- blocking term ----------------------------------------------------------

TEST(FixedPriority, BlockingShiftsVerdict) {
  const std::vector<FpTask> tasks = {{4.0, 1.0}, {5.0, 1.5}};
  // r2 = B + 1.5 + ceil(r2/4)*1. With B = 1.5 the fixpoint is exactly 4
  // (one interference hit); with B = 1.6 the window crosses t=4 and the
  // second release of task 1 pushes r past the deadline.
  EXPECT_TRUE(response_time_analysis(tasks, 1.5).schedulable);
  EXPECT_FALSE(response_time_analysis(tasks, 1.6).schedulable);
}

TEST(FixedPriority, BlockingAppliesToHighestPriorityTask) {
  const std::vector<FpTask> tasks = {{2.0, 1.0}};
  EXPECT_TRUE(response_time_analysis(tasks, 0.9).schedulable);
  EXPECT_FALSE(response_time_analysis(tasks, 1.1).schedulable);
}

TEST(FixedPriority, NegativeBlockingRejected) {
  const std::vector<FpTask> tasks = {{2.0, 1.0}};
  EXPECT_THROW(response_time_analysis(tasks, -0.1), PreconditionError);
  EXPECT_THROW(lsd_point_test_all(tasks, -0.1), PreconditionError);
}

// ---- input validation --------------------------------------------------------

TEST(FixedPriority, RejectsUnsortedTasks) {
  const std::vector<FpTask> tasks = {{5.0, 1.0}, {4.0, 1.0}};
  EXPECT_THROW(response_time_analysis(tasks, 0.0), PreconditionError);
  EXPECT_THROW(lsd_point_test_all(tasks, 0.0), PreconditionError);
}

TEST(FixedPriority, RejectsNonPositivePeriod) {
  const std::vector<FpTask> tasks = {{0.0, 1.0}};
  EXPECT_THROW(validate_sorted_tasks(tasks), PreconditionError);
}

TEST(FixedPriority, RejectsNegativeCost) {
  const std::vector<FpTask> tasks = {{1.0, -1.0}};
  EXPECT_THROW(validate_sorted_tasks(tasks), PreconditionError);
}

TEST(FixedPriority, EmptySetIsSchedulable) {
  const std::vector<FpTask> tasks;
  EXPECT_TRUE(response_time_analysis(tasks, 0.0).schedulable);
  EXPECT_TRUE(lsd_point_test_all(tasks, 0.0).schedulable);
}

TEST(FixedPriority, ZeroCostTasksAlwaysSchedulable) {
  const std::vector<FpTask> tasks = {{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0}};
  const auto v = response_time_analysis(tasks, 0.0);
  EXPECT_TRUE(v.schedulable);
  EXPECT_DOUBLE_EQ(*v.tasks[2].response_time, 0.0);
}

// ---- utilization bounds -------------------------------------------------------

TEST(FixedPriority, LiuLaylandBoundValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-4);
  EXPECT_NEAR(liu_layland_bound(100), std::log(2.0), 0.003);
  EXPECT_THROW(liu_layland_bound(0), PreconditionError);
}

TEST(FixedPriority, LiuLaylandBoundIsSufficient) {
  // Any set under the LL bound must pass the exact test.
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<FpTask> tasks;
    const int n = 5;
    const double bound = liu_layland_bound(n);
    for (int i = 0; i < n; ++i) {
      tasks.push_back({rng.uniform(1.0, 100.0), 0.0});
    }
    std::sort(tasks.begin(), tasks.end(),
              [](const FpTask& a, const FpTask& b) { return a.period < b.period; });
    // Distribute utilization strictly below the bound.
    double remaining = bound * 0.99;
    for (auto& t : tasks) {
      const double u = remaining / n;
      t.cost = u * t.period;
    }
    EXPECT_TRUE(response_time_analysis(tasks, 0.0).schedulable);
  }
}

TEST(FixedPriority, HyperbolicProduct) {
  const std::vector<FpTask> tasks = {{2.0, 1.0}, {4.0, 1.0}};  // (1.5)(1.25)
  EXPECT_DOUBLE_EQ(hyperbolic_product(tasks), 1.875);
  // Hyperbolic bound satisfied (< 2) -> schedulable.
  EXPECT_TRUE(response_time_analysis(tasks, 0.0).schedulable);
}

// ---- RTA <-> LSD equivalence (randomized property) ---------------------------

class RtaLsdEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtaLsdEquivalence, AgreeOnRandomSets) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    std::vector<FpTask> tasks;
    for (int i = 0; i < n; ++i) {
      tasks.push_back({rng.uniform(1.0, 50.0), 0.0});
    }
    std::sort(tasks.begin(), tasks.end(),
              [](const FpTask& a, const FpTask& b) { return a.period < b.period; });
    // Random utilization around the schedulability boundary.
    const double target_u = rng.uniform(0.4, 1.1);
    for (auto& t : tasks) {
      t.cost = rng.uniform(0.0, 2.0 * target_u / n) * t.period;
    }
    const Seconds blocking = rng.uniform(0.0, 0.2);

    const auto rta = response_time_analysis(tasks, blocking);
    const auto lsd = lsd_point_test_all(tasks, blocking);
    ASSERT_EQ(rta.schedulable, lsd.schedulable)
        << "disagreement at trial " << trial << " seed " << GetParam();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      EXPECT_EQ(rta.tasks[i].schedulable, lsd.tasks[i].schedulable)
          << "task " << i << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtaLsdEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---- monotonicity property -----------------------------------------------------

class RtaMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtaMonotonicity, ShrinkingCostsPreservesSchedulability) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 10));
    std::vector<FpTask> tasks;
    for (int i = 0; i < n; ++i) tasks.push_back({rng.uniform(1.0, 40.0), 0.0});
    std::sort(tasks.begin(), tasks.end(),
              [](const FpTask& a, const FpTask& b) { return a.period < b.period; });
    for (auto& t : tasks) t.cost = rng.uniform(0.0, 0.3) * t.period;

    if (response_time_analysis(tasks, 0.05).schedulable) {
      auto shrunk = tasks;
      for (auto& t : shrunk) t.cost *= rng.uniform(0.0, 1.0);
      EXPECT_TRUE(response_time_analysis(shrunk, 0.05).schedulable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtaMonotonicity,
                         ::testing::Values(7, 11, 19, 29, 41));

// ---- scheduling-point deduplication ---------------------------------------------

TEST(LsdPointDedup, HarmonicPeriodsEvaluateEachDistinctPointOnce) {
  // Periods {2, 4, 8}: for task 2 (D = 8) the raw point multiset is
  // {2,4,6,8} from P=2, {4,8} from P=4, {8} from P=8, plus D=8 — nine
  // generated entries but only four distinct instants. An unschedulable
  // set (no early exit) must therefore evaluate the workload exactly four
  // times; pre-dedup the same walk cost nine evaluations.
  const std::vector<FpTask> tasks = {{2.0, 1.5}, {4.0, 1.5}, {8.0, 2.0}};
  std::size_t evals = 0;
  EXPECT_FALSE(lsd_point_test(tasks, 2, 0.0, &evals));
  EXPECT_EQ(evals, 4u);
}

TEST(LsdPointDedup, EarlyExitStopsAtFirstPassingPoint) {
  // Lightly loaded harmonic set: task 2's workload already fits at the
  // first point t = 2, so exactly one evaluation happens despite four
  // distinct points being available.
  const std::vector<FpTask> tasks = {{2.0, 0.5}, {4.0, 0.5}, {8.0, 0.5}};
  std::size_t evals = 0;
  EXPECT_TRUE(lsd_point_test(tasks, 2, 0.0, &evals));
  EXPECT_EQ(evals, 1u);
}

// ---- RTA convergence diagnostics ------------------------------------------------

TEST(RtaDiagnostics, StatusDistinguishesConvergenceFromDeadlineMiss) {
  const std::vector<FpTask> ok = {{4.0, 1.0}, {5.0, 1.5}};
  RtaStatus status = RtaStatus::kIterationCapReached;
  ASSERT_TRUE(response_time(ok, 1, 0.0, &status).has_value());
  EXPECT_EQ(status, RtaStatus::kConverged);

  const std::vector<FpTask> overloaded = {{2.0, 1.5}, {3.0, 1.5}};
  EXPECT_FALSE(response_time(overloaded, 1, 0.0, &status).has_value());
  EXPECT_EQ(status, RtaStatus::kDeadlineExceeded);
}

TEST(RtaDiagnostics, IterationCapIsReportedNotSilent) {
  // U just under 1 with a huge deadline makes the fixpoint creep ~1 time
  // unit per iteration toward r* ~ 50'000, so kMaxRtaIterations (10'000)
  // trips long before convergence or the deadline. The bailout must be
  // visible three ways: RtaStatus, the set verdict's counter, and the
  // obs registry counter the CLI warning reads.
  obs::Registry::global().reset_values();
  const std::vector<FpTask> tasks = {{1.0, 0.99999}, {100'000.0, 0.5}};
  RtaStatus status = RtaStatus::kConverged;
  EXPECT_FALSE(response_time(tasks, 1, 0.0, &status).has_value());
  EXPECT_EQ(status, RtaStatus::kIterationCapReached);

  const auto verdict = response_time_analysis(tasks, 0.0);
  EXPECT_FALSE(verdict.schedulable);
  EXPECT_EQ(verdict.iteration_cap_hits, 1u);

  const auto snap = obs::Registry::global().snapshot();
  EXPECT_GE(snap.counters.at("analysis.rta_cap_hits"), 2u);
}

}  // namespace
}  // namespace tokenring::analysis
