// libFuzzer target over the serve request pipeline's parse-and-respond
// path: parse_json -> parse_request -> cache_key + response builders.
//
// Invariants checked beyond "no crash":
//  * every response the daemon could build from attacker-controlled
//    input (success envelope, 400, 413, 429, 503, 504) is itself valid
//    JSON — a malformed id token or error string must never produce a
//    response line the client cannot parse;
//  * cache_key is deterministic for the parsed request (computed twice,
//    compared), since a flaky key would split or poison the result cache.
//
// No schedulability compute runs here: the target covers exactly the
// bytes-to-structured-refusal surface, which is what hostile input can
// reach without first being a well-formed admission query.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "tokenring/obs/json.hpp"
#include "tokenring/serve/wire.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  namespace serve = tokenring::serve;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  const auto parsed = tokenring::obs::parse_json(text);
  if (!parsed.ok) {
    if (!tokenring::obs::is_valid_json(
            serve::parse_error_response(parsed.error_offset, parsed.error))) {
      __builtin_trap();
    }
    return 0;
  }

  serve::Request request;
  std::string error;
  const bool ok = serve::parse_request(parsed.value, request, error);

  const std::string responses[] = {
      serve::error_response(request.id_token, ok ? 500 : 400,
                            ok ? "computed nothing" : error),
      serve::rate_limited_response(request.id_token, 123'456'789),
      serve::shed_response(request.id_token, 25'000'000),
      serve::timeout_response(request.id_token, 12.5),
      serve::success_response(request.id_token, request.type, false,
                              "{\"message\":\"pong\"}"),
  };
  for (const std::string& response : responses) {
    if (!tokenring::obs::is_valid_json(response)) __builtin_trap();
  }

  if (ok && serve::cache_key(request) != serve::cache_key(request)) {
    __builtin_trap();
  }
  return 0;
}
