// libFuzzer target over the strict JSON parser (obs::parse_json).
//
// The parser is the outermost attacker-controlled surface of the serve
// daemon: every byte a client sends reaches it before any schema check.
// The target asserts, beyond "no crash":
//  * a successful parse yields a document whose full traversal stays in
//    bounds (no dangling child pointers, depth respected);
//  * a failed parse reports an error offset inside (or just past) the
//    input, so 400 responses never point outside the request line.
//
// Built two ways (see CMakeLists.txt): with -fsanitize=fuzzer under
// clang in CI, and with the standalone corpus-replay driver everywhere
// else, where the same function doubles as a regression test over
// tests/fuzz/corpus/.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "tokenring/obs/json.hpp"

namespace {

/// Walk every node; returns the node count so the walk cannot be
/// optimized away.
std::size_t walk(const tokenring::obs::JsonValue& v) {
  std::size_t nodes = 1;
  switch (v.kind()) {
    case tokenring::obs::JsonValue::Kind::kArray:
      for (const auto& item : v.items()) nodes += walk(item);
      break;
    case tokenring::obs::JsonValue::Kind::kObject:
      for (const auto& [key, value] : v.members()) {
        nodes += key.size() ? 1 : 0;
        nodes += walk(value);
      }
      break;
    case tokenring::obs::JsonValue::Kind::kString:
      nodes += v.as_string().size() ? 1 : 0;
      break;
    case tokenring::obs::JsonValue::Kind::kNumber:
      nodes += v.number_token().size() ? 1 : 0;
      break;
    default:
      break;
  }
  return nodes;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const auto result = tokenring::obs::parse_json(text);
  if (result.ok) {
    volatile std::size_t sink = walk(result.value);
    (void)sink;
  } else if (result.error_offset > size) {
    __builtin_trap();  // error offset escaped the input
  }
  return 0;
}
