// Standalone replay driver for the fuzz targets, used when the toolchain
// has no libFuzzer (the local gcc build). Feeds every file under the
// given paths (files or directories, non-recursive) to
// LLVMFuzzerTestOneInput, so the seed corpus doubles as a deterministic
// regression suite wired into ctest. Under clang + -fsanitize=fuzzer the
// real libFuzzer main links instead and this file is not compiled.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus file or dir>...\n", argv[0]);
    return 2;
  }
  std::size_t cases = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Deterministic order regardless of directory enumeration.
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (run_file(file) != 0) return 1;
        ++cases;
      }
    } else {
      if (run_file(path) != 0) return 1;
      ++cases;
    }
  }
  std::printf("replayed %zu corpus case(s), no crashes\n", cases);
  return 0;
}
