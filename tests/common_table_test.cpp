#include "tokenring/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tokenring/common/checks.hpp"

namespace tokenring {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, RowWidthMustMatchHeaders) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), PreconditionError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), PreconditionError);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"x", "longheader"});
  t.add_row({"123456", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, one data row.
  EXPECT_NE(out.find("| 123456 |"), std::string::npos);
  EXPECT_NE(out.find("longheader"), std::string::npos);
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, PrintCsv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TableFmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(0.75, 0), "1");  // rounds
  EXPECT_EQ(fmt(0.5, 0), "0");   // exact tie rounds to even
}

TEST(TableFmt, Integers) {
  EXPECT_EQ(fmt(42LL), "42");
  EXPECT_EQ(fmt(-7LL), "-7");
}

TEST(TableFmt, Scientific) {
  EXPECT_EQ(fmt_sci(1.0e6, 2), "1.00e+06");
}

}  // namespace
}  // namespace tokenring
