#include "tokenring/breakdown/saturation.hpp"

#include <gtest/gtest.h>

#include "tokenring/analysis/kernels.hpp"
#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::breakdown {
namespace {

msg::MessageSet simple_set() {
  msg::MessageSet set;
  set.add({.period = milliseconds(10), .payload_bits = 1'000.0, .station = 0});
  set.add({.period = milliseconds(20), .payload_bits = 4'000.0, .station = 1});
  return set;
}

TEST(Saturation, AnalyticUtilizationThreshold) {
  // Predicate: utilization at 1 Mbps <= 0.8. The base set has utilization
  // 0.1 + 0.2 = 0.3, so the critical scale is 0.8 / 0.3.
  const BitsPerSecond bw = mbps(1);
  const auto predicate = [bw](const msg::MessageSet& m) {
    return m.utilization(bw) <= 0.8;
  };
  const auto res = find_saturation(simple_set(), predicate, bw);
  ASSERT_TRUE(res.found);
  EXPECT_FALSE(res.degenerate_zero);
  EXPECT_NEAR(res.critical_scale, 0.8 / 0.3, 1e-4);
  EXPECT_NEAR(res.breakdown_utilization, 0.8, 1e-4);
}

TEST(Saturation, TightToleranceTightensResult) {
  const BitsPerSecond bw = mbps(1);
  const auto predicate = [bw](const msg::MessageSet& m) {
    return m.utilization(bw) <= 0.5;
  };
  SaturationOptions opts;
  opts.relative_tolerance = 1e-10;
  const auto res = find_saturation(simple_set(), predicate, bw, opts);
  ASSERT_TRUE(res.found);
  EXPECT_NEAR(res.breakdown_utilization, 0.5, 1e-8);
}

TEST(Saturation, BracketsUpwardFromSmallInitialScale) {
  const BitsPerSecond bw = mbps(1);
  const auto predicate = [bw](const msg::MessageSet& m) {
    return m.utilization(bw) <= 0.9;
  };
  SaturationOptions opts;
  opts.initial_scale = 1e-6;  // far below the boundary
  const auto res = find_saturation(simple_set(), predicate, bw, opts);
  ASSERT_TRUE(res.found);
  EXPECT_NEAR(res.breakdown_utilization, 0.9, 1e-4);
}

TEST(Saturation, BracketsDownwardFromLargeInitialScale) {
  const BitsPerSecond bw = mbps(1);
  const auto predicate = [bw](const msg::MessageSet& m) {
    return m.utilization(bw) <= 0.2;
  };
  SaturationOptions opts;
  opts.initial_scale = 1e6;  // far above the boundary
  const auto res = find_saturation(simple_set(), predicate, bw, opts);
  ASSERT_TRUE(res.found);
  EXPECT_NEAR(res.breakdown_utilization, 0.2, 1e-4);
}

TEST(Saturation, DegenerateWhenPredicateFailsAtZero) {
  const auto never = [](const msg::MessageSet&) { return false; };
  const auto res = find_saturation(simple_set(), never, mbps(1));
  EXPECT_FALSE(res.found);
  EXPECT_TRUE(res.degenerate_zero);
}

TEST(Saturation, UnboundedWhenPredicateNeverFails) {
  const auto always = [](const msg::MessageSet&) { return true; };
  SaturationOptions opts;
  opts.max_scale = 1e6;
  const auto res = find_saturation(simple_set(), always, mbps(1), opts);
  EXPECT_FALSE(res.found);
  EXPECT_FALSE(res.degenerate_zero);
  EXPECT_GT(res.critical_scale, 0.0);
}

TEST(Saturation, CriticalScaleIsOnSchedulableSide) {
  // The reported scale must itself satisfy the predicate (it is the lower
  // bracket end).
  const BitsPerSecond bw = mbps(1);
  const auto predicate = [bw](const msg::MessageSet& m) {
    return m.utilization(bw) <= 0.7;
  };
  const auto res = find_saturation(simple_set(), predicate, bw);
  ASSERT_TRUE(res.found);
  EXPECT_TRUE(predicate(simple_set().scaled(res.critical_scale)));
  EXPECT_FALSE(predicate(simple_set().scaled(res.critical_scale * 1.001)));
}

TEST(Saturation, WorksAgainstRealPdpCriterion) {
  analysis::PdpParams p;
  p.ring = net::ieee8025_ring(2);
  p.frame = net::paper_frame_format();
  p.variant = analysis::PdpVariant::kModified8025;
  const BitsPerSecond bw = mbps(10);
  const auto predicate = [&](const msg::MessageSet& m) {
    return analysis::pdp_feasible(m, p, bw);
  };
  const auto res = find_saturation(simple_set(), predicate, bw);
  ASSERT_TRUE(res.found);
  EXPECT_GT(res.breakdown_utilization, 0.1);
  EXPECT_LT(res.breakdown_utilization, 1.0);
  // Boundary property: schedulable at the critical scale, not above.
  EXPECT_TRUE(predicate(simple_set().scaled(res.critical_scale)));
  EXPECT_FALSE(predicate(simple_set().scaled(res.critical_scale * 1.01)));
}

TEST(Saturation, WorksAgainstRealTtpCriterion) {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(2);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  const BitsPerSecond bw = mbps(100);
  const auto predicate = [&](const msg::MessageSet& m) {
    return analysis::ttp_feasible(m, p, bw);
  };
  const auto res = find_saturation(simple_set(), predicate, bw);
  ASSERT_TRUE(res.found);
  EXPECT_GT(res.breakdown_utilization, 0.3);
  EXPECT_LT(res.breakdown_utilization, 1.0);
}

// ---- scale-space kernel path -------------------------------------------------

TEST(SaturationKernel, PdpKernelPathIsBitIdenticalToPredicatePath) {
  // Same bisection, same verdicts => same probe sequence: critical scale,
  // utilization and probe count must match the predicate path exactly, not
  // approximately, over a corpus of random sets.
  analysis::PdpParams p;
  p.ring = net::ieee8025_ring(8);
  p.frame = net::paper_frame_format();
  p.variant = analysis::PdpVariant::kModified8025;
  const BitsPerSecond bw = mbps(16);
  const auto predicate = [&](const msg::MessageSet& m) {
    return analysis::pdp_feasible(m, p, bw);
  };
  msg::GeneratorConfig g;
  g.num_streams = 8;
  g.mean_period = milliseconds(100);
  msg::MessageSetGenerator gen(g);
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const auto base = gen.generate(rng);
    const auto ref = find_saturation(base, predicate, bw);
    const auto fast = find_saturation_scaled(
        base, analysis::PdpScaleKernel(base, p, bw), bw);
    ASSERT_EQ(ref.found, fast.found) << "trial " << trial;
    EXPECT_EQ(ref.critical_scale, fast.critical_scale) << "trial " << trial;
    EXPECT_EQ(ref.breakdown_utilization, fast.breakdown_utilization)
        << "trial " << trial;
    EXPECT_EQ(ref.degenerate_zero, fast.degenerate_zero);
    EXPECT_EQ(ref.predicate_evals, fast.predicate_evals) << "trial " << trial;
  }
}

TEST(SaturationKernel, TtpKernelPathIsBitIdenticalToPredicatePath) {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(8);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  const BitsPerSecond bw = mbps(100);
  const auto predicate = [&](const msg::MessageSet& m) {
    return analysis::ttp_feasible(m, p, bw);
  };
  msg::GeneratorConfig g;
  g.num_streams = 8;
  g.mean_period = milliseconds(100);
  msg::MessageSetGenerator gen(g);
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const auto base = gen.generate(rng);
    const auto ref = find_saturation(base, predicate, bw);
    const auto fast = find_saturation_scaled(
        base, analysis::TtpScaleKernel(base, p, bw), bw);
    ASSERT_EQ(ref.found, fast.found) << "trial " << trial;
    EXPECT_EQ(ref.critical_scale, fast.critical_scale) << "trial " << trial;
    EXPECT_EQ(ref.breakdown_utilization, fast.breakdown_utilization)
        << "trial " << trial;
    EXPECT_EQ(ref.predicate_evals, fast.predicate_evals) << "trial " << trial;
  }
}

TEST(SaturationKernel, PredicateEvalsCountsEveryProbe) {
  // The analytic-threshold search must report a plausible probe count:
  // at least the bracketing probes plus ~log2(1/tol) bisection steps.
  const BitsPerSecond bw = mbps(1);
  const auto predicate = [bw](const msg::MessageSet& m) {
    return m.utilization(bw) <= 0.8;
  };
  const auto res = find_saturation(simple_set(), predicate, bw);
  ASSERT_TRUE(res.found);
  EXPECT_GE(res.predicate_evals, 20);
  EXPECT_LE(res.predicate_evals, 200);
}

TEST(SaturationKernel, WorkspaceScalingIsBitIdenticalToScaledCopies) {
  const auto base = simple_set();
  ScaledWorkspace workspace;
  for (const double factor : {0.0, 0.25, 1.0, 3.5, 1e6}) {
    const auto& scaled = workspace.at_scale(base, factor);
    const auto copy = base.scaled(factor);
    ASSERT_EQ(scaled.size(), copy.size());
    for (std::size_t i = 0; i < copy.size(); ++i) {
      EXPECT_EQ(scaled[i].payload_bits, copy[i].payload_bits);
      EXPECT_EQ(scaled[i].period, copy[i].period);
    }
  }
}

TEST(SaturationKernel, KernelOverWorkspaceMatchesDirectPredicate) {
  const auto base = simple_set();
  const BitsPerSecond bw = mbps(1);
  const SchedulablePredicate predicate = [bw](const msg::MessageSet& m) {
    return m.utilization(bw) <= 0.8;
  };
  ScaledWorkspace workspace;
  const ScaleKernel kernel = kernel_over_workspace(base, predicate, workspace);
  for (const double factor : {0.1, 1.0, 2.6, 2.7, 10.0}) {
    EXPECT_EQ(kernel(factor), predicate(base.scaled(factor)))
        << "factor " << factor;
  }
}

TEST(Saturation, Preconditions) {
  const auto always = [](const msg::MessageSet&) { return true; };
  msg::MessageSet empty;
  EXPECT_THROW(find_saturation(empty, always, mbps(1)), PreconditionError);

  msg::MessageSet zero;
  zero.add({.period = milliseconds(10), .payload_bits = 0.0, .station = 0});
  EXPECT_THROW(find_saturation(zero, always, mbps(1)), PreconditionError);

  SaturationOptions bad;
  bad.relative_tolerance = 0.0;
  EXPECT_THROW(find_saturation(simple_set(), always, mbps(1), bad),
               PreconditionError);
  bad = {};
  bad.initial_scale = 0.0;
  EXPECT_THROW(find_saturation(simple_set(), always, mbps(1), bad),
               PreconditionError);
  EXPECT_THROW(find_saturation(simple_set(), always, 0.0), PreconditionError);
}

}  // namespace
}  // namespace tokenring::breakdown
