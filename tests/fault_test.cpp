// Unit tests of the fault framework (plans, recovery models, fault-aware
// margins) plus the margin-vs-simulation bracketing integration test: the
// analytic resilience margin must be conservative against the simulators.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/fault/margins.hpp"
#include "tokenring/fault/plan.hpp"
#include "tokenring/fault/recovery.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/workload.hpp"

namespace tokenring::fault {
namespace {

analysis::PdpParams pdp_params() {
  analysis::PdpParams p;
  p.ring = net::ieee8025_ring(4);
  p.frame = net::paper_frame_format();
  p.variant = analysis::PdpVariant::kModified8025;
  return p;
}

analysis::TtpParams ttp_params() {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(4);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

msg::MessageSet two_stream_set(Bits payload0, Bits payload2) {
  msg::MessageSet set;
  set.add({.period = milliseconds(20), .payload_bits = payload0, .station = 0});
  set.add({.period = milliseconds(40), .payload_bits = payload2, .station = 2});
  return set;
}

// ---- FaultPlan --------------------------------------------------------------

TEST(FaultPlan, AddersRecordAndSortedOrders) {
  FaultPlan plan;
  plan.add_token_loss(milliseconds(5));
  plan.add_frame_corruption(milliseconds(1));
  plan.add_duplicate_token(milliseconds(3));
  plan.add_noise_burst(milliseconds(4), milliseconds(2));
  ASSERT_EQ(plan.size(), 4u);

  const auto sorted = plan.sorted_events();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].kind, FaultKind::kFrameCorruption);
  EXPECT_EQ(sorted[1].kind, FaultKind::kDuplicateToken);
  EXPECT_EQ(sorted[2].kind, FaultKind::kNoiseBurst);
  EXPECT_DOUBLE_EQ(sorted[2].duration, milliseconds(2));
  EXPECT_EQ(sorted[3].kind, FaultKind::kTokenLoss);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].time, sorted[i].time);
  }
}

TEST(FaultPlan, CrashPairsWithRejoin) {
  FaultPlan plan;
  plan.add_station_crash(milliseconds(10), 2, milliseconds(20));
  ASSERT_EQ(plan.size(), 2u);
  const auto sorted = plan.sorted_events();
  EXPECT_EQ(sorted[0].kind, FaultKind::kStationCrash);
  EXPECT_EQ(sorted[0].station, 2);
  EXPECT_EQ(sorted[1].kind, FaultKind::kStationRejoin);
  EXPECT_EQ(sorted[1].station, 2);
  EXPECT_DOUBLE_EQ(sorted[1].time, milliseconds(30));

  FaultPlan permanent;
  permanent.add_station_crash(milliseconds(5), 1);  // no downtime: no rejoin
  EXPECT_EQ(permanent.size(), 1u);
}

TEST(FaultPlan, ValidateRejectsBadEvents) {
  FaultPlan negative_time;
  negative_time.add(FaultEvent{-1.0, FaultKind::kTokenLoss});
  EXPECT_THROW(negative_time.validate(4), PreconditionError);

  FaultPlan negative_duration;
  negative_duration.add(
      FaultEvent{milliseconds(1), FaultKind::kNoiseBurst, -1, -0.5});
  EXPECT_THROW(negative_duration.validate(4), PreconditionError);

  FaultPlan bad_station;
  bad_station.add_station_crash(milliseconds(1), 9);
  EXPECT_THROW(bad_station.validate(4), PreconditionError);

  FaultPlan good;
  good.add_token_loss(milliseconds(1));
  good.add_station_crash(milliseconds(2), 3, milliseconds(5));
  EXPECT_NO_THROW(good.validate(4));
}

TEST(FaultPlan, RandomIsDeterministicWithPerKindLanes) {
  const Seconds horizon = 1.0;
  FaultRates loss_only;
  loss_only.token_loss = 40.0;

  FaultRates both = loss_only;
  both.frame_corruption = 60.0;

  const auto a = FaultPlan::random(loss_only, horizon, 7, 8);
  const auto b = FaultPlan::random(both, horizon, 7, 8);
  ASSERT_FALSE(a.empty());

  // Same seed regenerates the identical plan.
  const auto b2 = FaultPlan::random(both, horizon, 7, 8);
  ASSERT_EQ(b2.size(), b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b2.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(b2.events()[i].time, b.events()[i].time);  // bit-identical
  }

  // Per-kind seed lanes: enabling corruption must not move the token-loss
  // schedule.
  std::vector<Seconds> losses_a;
  std::vector<Seconds> losses_b;
  std::size_t corruptions_b = 0;
  for (const auto& e : a.events()) {
    ASSERT_EQ(e.kind, FaultKind::kTokenLoss);
    losses_a.push_back(e.time);
  }
  for (const auto& e : b.events()) {
    if (e.kind == FaultKind::kTokenLoss) losses_b.push_back(e.time);
    if (e.kind == FaultKind::kFrameCorruption) ++corruptions_b;
  }
  EXPECT_GT(corruptions_b, 0u);
  EXPECT_EQ(losses_a, losses_b);

  // Everything lands in [0, 0.9*horizon] and validates.
  for (const auto& e : b.events()) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LE(e.time, 0.9 * horizon);
  }
  EXPECT_NO_THROW(b.validate(8));
}

// ---- recovery models --------------------------------------------------------

TEST(Recovery, PdpOutageOrderingAndDispatch) {
  const auto p = pdp_params();
  const BitsPerSecond bw = mbps(16);

  // Corruption wastes one slot; token loss adds the purge walk on top;
  // the beacon process (crash) is the costliest.
  EXPECT_LT(pdp_corruption_outage(p, bw), pdp_monitor_outage(p, bw));
  EXPECT_LT(pdp_monitor_outage(p, bw), pdp_beacon_outage(p, bw));
  EXPECT_GT(pdp_duplicate_outage(p, bw), 0.0);

  EXPECT_DOUBLE_EQ(pdp_fault_outage(FaultKind::kTokenLoss, p, bw),
                   pdp_monitor_outage(p, bw));
  EXPECT_DOUBLE_EQ(pdp_fault_outage(FaultKind::kFrameCorruption, p, bw),
                   pdp_corruption_outage(p, bw));
  EXPECT_DOUBLE_EQ(pdp_fault_outage(FaultKind::kStationCrash, p, bw),
                   pdp_fault_outage(FaultKind::kStationRejoin, p, bw));
  EXPECT_DOUBLE_EQ(
      pdp_fault_outage(FaultKind::kNoiseBurst, p, bw, milliseconds(3)),
      milliseconds(3) + pdp_monitor_outage(p, bw));
}

TEST(Recovery, TtpOutageOrderingAndDispatch) {
  const auto p = ttp_params();
  const BitsPerSecond bw = mbps(100);
  const Seconds ttrt = milliseconds(2);

  // Token loss pays the TRT double-expiry detection (2*TTRT) on top of the
  // claim; corruption is just one frame.
  EXPECT_NEAR(ttp_token_loss_outage(p, bw, ttrt),
              2.0 * ttrt + ttp_claim_outage(p, bw), 1e-12);
  EXPECT_LT(ttp_corruption_outage(p, bw), ttp_claim_outage(p, bw) + ttrt);
  EXPECT_LT(ttp_claim_outage(p, bw), ttp_duplicate_outage(p, bw));
  EXPECT_LT(ttp_duplicate_outage(p, bw), ttp_token_loss_outage(p, bw, ttrt));

  EXPECT_DOUBLE_EQ(ttp_fault_outage(FaultKind::kTokenLoss, p, bw, ttrt),
                   ttp_token_loss_outage(p, bw, ttrt));
  EXPECT_DOUBLE_EQ(ttp_fault_outage(FaultKind::kStationCrash, p, bw, ttrt),
                   ttp_reconfiguration_outage(p, bw));
  EXPECT_DOUBLE_EQ(
      ttp_fault_outage(FaultKind::kNoiseBurst, p, bw, ttrt, milliseconds(3)),
      milliseconds(3) + ttp_token_loss_outage(p, bw, ttrt));
}

// ---- margins ----------------------------------------------------------------

TEST(Margins, ZeroFaultsMatchesBaseCriteria) {
  const auto set = two_stream_set(40'000.0, 40'000.0);
  const auto pdp = pdp_params();
  const auto ttp = ttp_params();
  EXPECT_EQ(pdp_schedulable_with_faults(set, pdp, mbps(16), FaultBudget{}, 0),
            analysis::pdp_feasible(set, pdp, mbps(16)));
  const Seconds ttrt = milliseconds(2.5);
  EXPECT_EQ(ttp_schedulable_with_faults(set, ttp, mbps(100), ttrt,
                                        FaultBudget{}, 0),
            analysis::ttp_feasible_at(set, ttp, mbps(100), ttrt));
}

TEST(Margins, BinarySearchBracketsTheCriterion) {
  const auto set = two_stream_set(40'000.0, 40'000.0);

  const auto pdp = pdp_fault_margin(set, pdp_params(), mbps(16));
  ASSERT_TRUE(pdp.fault_free_schedulable);
  ASSERT_GE(pdp.margin, 1);
  EXPECT_TRUE(pdp_schedulable_with_faults(set, pdp_params(), mbps(16),
                                          FaultBudget{}, pdp.margin));
  EXPECT_FALSE(pdp_schedulable_with_faults(set, pdp_params(), mbps(16),
                                           FaultBudget{}, pdp.margin + 1));

  const Seconds ttrt = milliseconds(2.5);
  const auto ttp = ttp_fault_margin(set, ttp_params(), mbps(100), ttrt);
  ASSERT_TRUE(ttp.fault_free_schedulable);
  ASSERT_GE(ttp.margin, 1);
  EXPECT_TRUE(ttp_schedulable_with_faults(set, ttp_params(), mbps(100), ttrt,
                                          FaultBudget{}, ttp.margin));
  EXPECT_FALSE(ttp_schedulable_with_faults(set, ttp_params(), mbps(100), ttrt,
                                           FaultBudget{}, ttp.margin + 1));
}

TEST(Margins, InfeasibleSetReportsNegativeMargin) {
  // 40x overload: infeasible even fault-free.
  const auto heavy = two_stream_set(2'000'000.0, 2'000'000.0);
  const auto pdp = pdp_fault_margin(heavy, pdp_params(), mbps(16));
  EXPECT_FALSE(pdp.fault_free_schedulable);
  EXPECT_EQ(pdp.margin, -1);
  const auto ttp = ttp_fault_margin(heavy, ttp_params(), mbps(100));
  EXPECT_FALSE(ttp.fault_free_schedulable);
  EXPECT_EQ(ttp.margin, -1);
}

TEST(Margins, CostlierFaultKindsShrinkTheMargin) {
  const auto set = two_stream_set(40'000.0, 40'000.0);
  const auto corruption =
      pdp_fault_margin(set, pdp_params(), mbps(16),
                       FaultBudget{FaultKind::kFrameCorruption, 0.0});
  const auto loss = pdp_fault_margin(set, pdp_params(), mbps(16));
  const auto noise =
      pdp_fault_margin(set, pdp_params(), mbps(16),
                       FaultBudget{FaultKind::kNoiseBurst, milliseconds(5)});
  EXPECT_GE(corruption.margin, loss.margin);
  EXPECT_GT(loss.margin, noise.margin);
  EXPECT_GE(noise.margin, 0);

  const Seconds ttrt = milliseconds(2.5);
  const auto ttp_corruption =
      ttp_fault_margin(set, ttp_params(), mbps(100), ttrt,
                       FaultBudget{FaultKind::kFrameCorruption, 0.0});
  const auto ttp_loss = ttp_fault_margin(set, ttp_params(), mbps(100), ttrt);
  EXPECT_GT(ttp_corruption.margin, ttp_loss.margin);
}

// ---- margin vs simulation (the conservativeness bracket) --------------------
//
// Both tests inject k token losses back to back (each spaced one recovery
// apart, so every loss is charged its full outage and the ring is
// continuously dead for ~k * r) starting just after the t=80ms release
// that both streams share.

TEST(FaultMarginIntegration, PdpMarginIsConservativeInSimulation) {
  const BitsPerSecond bw = mbps(16);
  const auto p = pdp_params();
  const auto set = two_stream_set(40'000.0, 40'000.0);

  const auto report = pdp_fault_margin(set, p, bw);
  ASSERT_TRUE(report.fault_free_schedulable);
  ASSERT_GE(report.margin, 1);
  const Seconds r = report.recovery_per_fault;

  const auto run_with_burst = [&](int k) {
    auto cfg = sim::make_sim_config(set, p, bw, 6.0);
    const Seconds t0 = milliseconds(80) + 0.1 * r;
    for (int i = 0; i < k; ++i) {
      cfg.faults.add_token_loss(t0 + static_cast<double>(i) * r);
    }
    return sim::run_simulation(set, cfg);
  };

  // At the predicted margin the burst is absorbed: no deadline misses.
  const auto at_margin = run_with_burst(report.margin);
  EXPECT_EQ(at_margin.deadline_misses, 0u) << at_margin.summary();
  EXPECT_EQ(at_margin.faults_injected(),
            static_cast<std::size_t>(report.margin));

  // Beyond it the guarantee breaks: some k > margin misses. A burst longer
  // than the tightest period blacks out a whole window, so the search is
  // bounded by that certain-miss point.
  const int dark = report.margin +
                   static_cast<int>(std::ceil(milliseconds(20) / r)) + 2;
  int first_missing = -1;
  for (int k = report.margin + 1; k <= dark;
       k = (k < report.margin + 4) ? k + 1 : k + (k - report.margin)) {
    if (run_with_burst(k).deadline_misses > 0) {
      first_missing = k;
      break;
    }
  }
  if (first_missing < 0 && run_with_burst(dark).deadline_misses > 0) {
    first_missing = dark;
  }
  EXPECT_GT(first_missing, report.margin)
      << "no misses found up to a full blackout of the 20ms window";
}

TEST(FaultMarginIntegration, TtpMarginIsConservativeInSimulation) {
  const BitsPerSecond bw = mbps(100);
  const auto p = ttp_params();
  const auto set = two_stream_set(100'000.0, 200'000.0);
  const Seconds ttrt = milliseconds(2.5);

  const auto report = ttp_fault_margin(set, p, bw, ttrt);
  ASSERT_TRUE(report.fault_free_schedulable);
  ASSERT_GE(report.margin, 1);
  const Seconds r = report.recovery_per_fault;

  // The fault-aware criterion sizes allocations for the debited visit count
  // q_i(k); configure the stations with exactly those h_i.
  const Seconds charged = r + ttrt;  // per-fault debit used by the criterion
  const auto h_at = [&](const msg::SyncStream& s, int k) {
    const Seconds window = s.deadline() - static_cast<double>(k) * charged;
    const auto q = static_cast<std::int64_t>(std::floor(window / ttrt));
    TR_EXPECTS(q >= 2);
    return s.payload_time(bw) / static_cast<double>(q - 1) +
           p.frame.overhead_time(bw);
  };

  const auto run_with_burst = [&](int k) {
    sim::SimConfig cfg;
    cfg.protocol = sim::Protocol::kTtp;
    cfg.ttp = p;
    cfg.bandwidth = bw;
    cfg.ttrt = ttrt;
    for (const auto& s : set.streams()) {
      cfg.sync_bandwidth_per_stream.push_back(h_at(s, report.margin));
    }
    cfg.horizon = 6.0 * set.max_period();
    const Seconds t0 = milliseconds(80) + 0.2 * ttrt;
    for (int i = 0; i < k; ++i) {
      cfg.faults.add_token_loss(t0 + static_cast<double>(i) * r);
    }
    return sim::run_simulation(set, cfg);
  };

  const auto at_margin = run_with_burst(report.margin);
  EXPECT_EQ(at_margin.deadline_misses, 0u) << at_margin.summary();
  EXPECT_EQ(at_margin.token_losses, static_cast<std::size_t>(report.margin));

  const int dark = report.margin +
                   static_cast<int>(std::ceil(2.0 * milliseconds(20) / r)) + 2;
  int first_missing = -1;
  for (int k = report.margin + 1; k <= dark;
       k = (k < report.margin + 4) ? k + 1 : k + (k - report.margin)) {
    if (run_with_burst(k).deadline_misses > 0) {
      first_missing = k;
      break;
    }
  }
  if (first_missing < 0 && run_with_burst(dark).deadline_misses > 0) {
    first_missing = dark;
  }
  EXPECT_GT(first_missing, report.margin)
      << "no misses found up to a double blackout of the 20ms window";
}

}  // namespace
}  // namespace tokenring::fault
