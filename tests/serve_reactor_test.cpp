// Integration tests for the sharded epoll reactor front end: the timer
// wheel that carries its deadlines, golden equivalence against the
// thread-per-connection reference over real sockets, graceful drain with
// a hundred-plus parked connections, and the many-connections smoke the
// front end exists for.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "tokenring/obs/json.hpp"
#include "tokenring/obs/registry.hpp"
#include "tokenring/serve/server.hpp"
#include "tokenring/serve/timer_wheel.hpp"

namespace {

using namespace tokenring;
using serve::TimerWheel;

// ---- timer wheel -------------------------------------------------------

TEST(ServeTimerWheel, FiresAtTheDeadlineNotBefore) {
  TimerWheel wheel(1'000'000, 16);  // 1 ms ticks
  std::vector<TimerWheel::Expired> fired;
  const auto id = wheel.arm(5'000'000, 7);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(wheel.armed(), 1u);

  wheel.expire(3'000'000, fired);
  EXPECT_TRUE(fired.empty());
  wheel.expire(6'000'000, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].id, id);
  EXPECT_EQ(fired[0].payload, 7u);
  EXPECT_EQ(wheel.armed(), 0u);

  // Fired means gone: later sweeps stay quiet.
  fired.clear();
  wheel.expire(60'000'000, fired);
  EXPECT_TRUE(fired.empty());
}

TEST(ServeTimerWheel, CancelledTimersNeverFire) {
  TimerWheel wheel(1'000'000, 16);
  const auto id = wheel.arm(2'000'000, 1);
  const auto keep = wheel.arm(2'000'000, 2);
  wheel.cancel(id);
  EXPECT_EQ(wheel.armed(), 1u);

  std::vector<TimerWheel::Expired> fired;
  wheel.expire(10'000'000, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].id, keep);
  EXPECT_EQ(fired[0].payload, 2u);

  // Cancelling fired or unknown ids is a no-op.
  wheel.cancel(keep);
  wheel.cancel(12345);
}

TEST(ServeTimerWheel, DeadlinesLapsAheadSurviveEarlierSweeps) {
  // 16 slots x 1 ms = a 16 ms lap; a 50 ms deadline shares a slot with
  // earlier laps' sweeps and must stay armed until its own time comes.
  TimerWheel wheel(1'000'000, 16);
  const auto far = wheel.arm(50'000'000, 9);
  std::vector<TimerWheel::Expired> fired;
  for (std::uint64_t now = 1; now <= 49; ++now) {
    wheel.expire(now * 1'000'000, fired);
    EXPECT_TRUE(fired.empty()) << "fired early at " << now << " ms";
  }
  wheel.expire(51'000'000, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].id, far);
}

TEST(ServeTimerWheel, AlreadyDueDeadlineFiresOnTheNextSweep) {
  // Arm a deadline at/behind the sweep cursor: it must fire on the next
  // sweep, not one full lap later.
  TimerWheel wheel(1'000'000, 16);
  std::vector<TimerWheel::Expired> fired;
  wheel.expire(10'000'000, fired);  // cursor at 10 ms
  wheel.arm(9'000'000, 3);          // already overdue
  wheel.expire(12'000'000, fired);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].payload, 3u);
}

TEST(ServeTimerWheel, DeadlineLaterInASweptTickIsNotStrandedForALap) {
  // A sweep can land inside the deadline's own tick but before the
  // deadline's nanosecond: the entry is not yet due, but its slot has now
  // been passed. It must migrate forward and fire on the next sweep, not
  // sit stranded for a full lap (a 5+ second stall at serve defaults).
  TimerWheel wheel(1'000'000, 16);
  std::vector<TimerWheel::Expired> fired;
  wheel.expire(1'000'000, fired);  // cursor at 1 ms
  wheel.arm(5'700'000, 7);         // due 0.7 ms into tick 5
  wheel.expire(5'200'000, fired);  // sweeps tick 5 before the deadline
  EXPECT_TRUE(fired.empty());
  wheel.expire(6'000'000, fired);  // next sweep: must fire, not lap
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].payload, 7u);
}

TEST(ServeTimerWheel, PollTimeoutTracksArmedState) {
  TimerWheel wheel(10'000'000, 32);
  EXPECT_EQ(wheel.poll_timeout_ms(), -1);  // nothing armed: sleep forever
  const auto id = wheel.arm(1'000'000'000, 0);
  EXPECT_EQ(wheel.poll_timeout_ms(), 10);  // one tick while armed
  wheel.cancel(id);
  EXPECT_EQ(wheel.poll_timeout_ms(), -1);
}

// ---- socket helpers ----------------------------------------------------

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read whole lines until `expected` arrived or the peer closed.
std::vector<std::string> read_lines(int fd, std::size_t expected) {
  std::vector<std::string> lines;
  std::string buffer;
  char chunk[4096];
  while (lines.size() < expected) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const auto nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      lines.push_back(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  return lines;
}

/// Run one scripted conversation (send everything, read until EOF) and
/// return every response line the server produced.
std::vector<std::string> converse(serve::Server::FrontEnd mode,
                                  const std::string& script,
                                  std::size_t expected,
                                  std::size_t max_request_bytes = 1 << 20) {
  serve::Server::Options options;
  options.engine.jobs = 2;
  options.engine.max_request_bytes = max_request_bytes;
  options.front_end = mode;
  options.reactors = 2;
  serve::Server server(options);
  std::string error;
  EXPECT_TRUE(server.start(error)) << error;
  const int fd = connect_loopback(server.port());
  EXPECT_GE(fd, 0);
  EXPECT_TRUE(send_all(fd, script));
  // Half-close: the server sees EOF after the script and drains, so
  // read_lines can run to EOF without a timeout.
  ::shutdown(fd, SHUT_WR);
  const auto lines = read_lines(fd, expected);
  ::close(fd);
  server.request_stop();
  server.wait();
  return lines;
}

// ---- reactor vs threaded goldens ---------------------------------------

TEST(ServeReactor, MixedScriptMatchesThreadedFrontEndByteForByte) {
  // Pipelined pings, a real compute query, a malformed line, an empty
  // line, and a CRLF line: the reactor must produce exactly the byte
  // stream the thread-per-connection reference does.
  std::string script;
  for (int i = 0; i < 8; ++i) {
    script += "{\"type\":\"ping\",\"id\":" + std::to_string(i) + "}\n";
  }
  script +=
      "{\"type\":\"check\",\"id\":\"q\",\"protocol\":\"fddi\","
      "\"bandwidth_mbps\":100,\"streams\":[{\"station\":0,"
      "\"period_ms\":50,\"payload_bits\":10000}]}\n";
  script += "{oops\n";
  script += "\n";
  script += "{\"type\":\"ping\",\"id\":\"crlf\"}\r\n";

  const auto reactor =
      converse(serve::Server::FrontEnd::kReactor, script, 11);
  const auto threaded =
      converse(serve::Server::FrontEnd::kThreaded, script, 11);
  ASSERT_EQ(reactor.size(), 11u);
  EXPECT_EQ(reactor, threaded);
}

TEST(ServeReactor, OversizedLineMatchesThreaded413Golden) {
  const std::string script = "{\"type\":\"ping\",\"id\":1}\n" +
                             std::string(300, 'x') + "\n" +
                             "{\"type\":\"ping\",\"id\":\"never\"}\n";
  const auto reactor =
      converse(serve::Server::FrontEnd::kReactor, script, 3, 64);
  const auto threaded =
      converse(serve::Server::FrontEnd::kThreaded, script, 3, 64);
  // The ping is answered, the 413 follows it, the post-413 ping is not
  // served — on both front ends, byte for byte.
  ASSERT_EQ(reactor.size(), 2u);
  EXPECT_EQ(reactor, threaded);
  EXPECT_NE(reactor[1].find("413"), std::string::npos);
}

// ---- drain and scale ---------------------------------------------------

TEST(ServeReactor, DrainAnswersBufferedRequestsOn100ParkedConnections) {
  serve::Server::Options options;
  options.engine.jobs = 2;
  options.reactors = 2;
  serve::Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  // Park 120 connections, each proven accepted and served (one answered
  // ping) so the stop below cannot race the accept backlog.
  constexpr int kConns = 120;
  std::vector<int> fds;
  for (int i = 0; i < kConns; ++i) {
    const int fd = connect_loopback(server.port());
    ASSERT_GE(fd, 0) << "connection " << i;
    const std::string hello =
        "{\"type\":\"ping\",\"id\":" + std::to_string(i) + "}\n";
    ASSERT_TRUE(send_all(fd, hello));
    ASSERT_EQ(read_lines(fd, 1).size(), 1u) << "connection " << i;
    fds.push_back(fd);
  }

  // Pipeline three more pings on every parked connection (they sit in the
  // server-side socket buffers), then stop. The drain must answer all of
  // them on all 120 connections before closing.
  for (int i = 0; i < kConns; ++i) {
    std::string burst;
    for (int k = 0; k < 3; ++k) {
      burst += "{\"type\":\"ping\",\"id\":\"" + std::to_string(i) + "-" +
               std::to_string(k) + "\"}\n";
    }
    ASSERT_TRUE(send_all(fds[static_cast<std::size_t>(i)], burst));
  }
  // wait() runs the drain (half-close, answer, flush, close), so it must
  // proceed concurrently with the client-side reads below.
  server.request_stop();
  std::thread waiter([&] { server.wait(); });

  for (int i = 0; i < kConns; ++i) {
    const int fd = fds[static_cast<std::size_t>(i)];
    const auto lines = read_lines(fd, 3);
    EXPECT_EQ(lines.size(), 3u) << "connection " << i;
    // And then EOF, not a hang.
    char byte = 0;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0) << "connection " << i;
    ::close(fd);
  }
  waiter.join();
}

TEST(ServeReactor, IdleConnectionIsDroppedByTheTimerWheel) {
  serve::Server::Options options;
  options.engine.jobs = 2;
  options.idle_timeout_ms = 50;
  serve::Server server(options);  // reactor is the default front end
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  const std::string hello = "{\"type\":\"ping\",\"id\":\"hi\"}\n";
  ASSERT_TRUE(send_all(fd, hello));
  ASSERT_EQ(read_lines(fd, 1).size(), 1u);

  // Silence. The wheel must fire and the server must hang up (recv sees
  // EOF); the blocking recv doubles as the wait.
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);

  const auto metrics = obs::Registry::global().snapshot();
  const auto expirations = metrics.counters.find("serve.timer.expirations");
  ASSERT_NE(expirations, metrics.counters.end());
  EXPECT_GT(expirations->second, 0u);
  server.request_stop();
  server.wait();
}

TEST(ServeReactor, StatsRequestSurfacesReactorCountersAndGauges) {
  serve::Server::Options options;
  options.engine.jobs = 2;
  serve::Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, "{\"type\":\"stats\",\"id\":\"s\"}\n"));
  const auto lines = read_lines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  // The obs registry rows ride in the stats envelope, so operators see
  // the reactor's health (open conns, wakeups, timer fires) per request.
  EXPECT_NE(lines[0].find("serve.conn.opened"), std::string::npos);
  EXPECT_NE(lines[0].find("serve.reactor.wakeups"), std::string::npos);
  EXPECT_NE(lines[0].find("serve.reactor.peak_conns"), std::string::npos);
  ::close(fd);
  server.request_stop();
  server.wait();
}

TEST(ServeReactor, ManyConnectionsSmoke) {
  // 256 concurrent connections on 2 reactor shards, each answering a
  // ping while all the others stay parked.
  serve::Server::Options options;
  options.engine.jobs = 2;
  options.reactors = 2;
  serve::Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;

  constexpr int kConns = 256;
  std::vector<int> fds;
  for (int i = 0; i < kConns; ++i) {
    const int fd = connect_loopback(server.port());
    ASSERT_GE(fd, 0) << "connection " << i;
    fds.push_back(fd);
  }
  for (int i = 0; i < kConns; ++i) {
    const std::string ping =
        "{\"type\":\"ping\",\"id\":" + std::to_string(i) + "}\n";
    ASSERT_TRUE(send_all(fds[static_cast<std::size_t>(i)], ping));
  }
  for (int i = 0; i < kConns; ++i) {
    const auto lines = read_lines(fds[static_cast<std::size_t>(i)], 1);
    ASSERT_EQ(lines.size(), 1u) << "connection " << i;
    EXPECT_NE(lines[0].find("\"id\":" + std::to_string(i)),
              std::string::npos);
    ::close(fds[static_cast<std::size_t>(i)]);
  }
  server.request_stop();
  server.wait();
}

}  // namespace
