#include "tokenring/common/ascii_plot.hpp"

#include <gtest/gtest.h>

#include "tokenring/common/checks.hpp"

namespace tokenring {
namespace {

std::vector<std::string> lines_of(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

TEST(AsciiPlot, RendersMarkersAndLegend) {
  PlotSeries s{"demo", {1.0, 2.0, 3.0}, {0.1, 0.5, 0.9}, '*'};
  PlotOptions opt;
  opt.y_max = 1.0;
  const std::string out = render_plot({s}, opt);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* demo"), std::string::npos);
  // Axis frame present.
  EXPECT_NE(out.find("+---"), std::string::npos);
  EXPECT_NE(out.find("1.00 |"), std::string::npos);
  EXPECT_NE(out.find("0.00 |"), std::string::npos);
}

TEST(AsciiPlot, HighYLandsOnTopRowLowYOnBottom) {
  PlotSeries s{"s", {0.0, 1.0}, {0.0, 1.0}, '*'};
  PlotOptions opt;
  opt.width = 20;
  opt.height = 5;
  opt.y_max = 1.0;
  const auto ls = lines_of(render_plot({s}, opt));
  // Row 0 is the top interior row: the y=1 point sits there, far right.
  EXPECT_NE(ls[0].find('*'), std::string::npos);
  // Bottom interior row (index height-1) holds the y=0 point at far left.
  EXPECT_NE(ls[4].find('*'), std::string::npos);
  EXPECT_LT(ls[4].find('*'), ls[0].find('*'));
}

TEST(AsciiPlot, LogXSpreadsDecadesEvenly) {
  PlotSeries s{"s", {1.0, 10.0, 100.0}, {0.5, 0.5, 0.5}, '*'};
  PlotOptions opt;
  opt.width = 41;
  opt.height = 5;
  opt.log_x = true;
  opt.y_max = 1.0;
  const auto out = render_plot({s}, opt);
  const auto ls = lines_of(out);
  // All three markers on the middle row; middle point near the center.
  const auto& row = ls[2];
  const auto first = row.find('*');
  const auto last = row.rfind('*');
  const auto mid = row.find('*', first + 1);
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  const auto center = (first + last) / 2;
  EXPECT_NEAR(static_cast<double>(mid), static_cast<double>(center), 1.5);
  EXPECT_NE(out.find("(log)"), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesKeepTheirMarkers) {
  PlotSeries a{"a", {1.0}, {0.2}, 'o'};
  PlotSeries b{"b", {2.0}, {0.8}, '#'};
  const std::string out = render_plot({a, b});
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("o a"), std::string::npos);
  EXPECT_NE(out.find("# b"), std::string::npos);
}

TEST(AsciiPlot, AutoYMaxCoversData) {
  PlotSeries s{"s", {0.0, 1.0}, {0.0, 42.0}, '*'};
  const std::string out = render_plot({s});
  EXPECT_NE(out.find("44.10 |"), std::string::npos);  // 42 * 1.05
}

TEST(AsciiPlot, Preconditions) {
  EXPECT_THROW(render_plot({}), PreconditionError);
  PlotSeries mismatched{"m", {1.0, 2.0}, {1.0}, '*'};
  EXPECT_THROW(render_plot({mismatched}), PreconditionError);
  PlotSeries empty{"e", {}, {}, '*'};
  EXPECT_THROW(render_plot({empty}), PreconditionError);
  PlotSeries nonpositive{"n", {0.0}, {1.0}, '*'};
  PlotOptions log_opt;
  log_opt.log_x = true;
  EXPECT_THROW(render_plot({nonpositive}, log_opt), PreconditionError);
  PlotOptions tiny;
  tiny.width = 2;
  PlotSeries ok{"ok", {1.0}, {1.0}, '*'};
  EXPECT_THROW(render_plot({ok}, tiny), PreconditionError);
}

}  // namespace
}  // namespace tokenring
