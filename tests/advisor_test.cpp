#include "tokenring/planner/advisor.hpp"

#include <gtest/gtest.h>

#include "tokenring/common/checks.hpp"

namespace tokenring::planner {
namespace {

TrafficProfile small_profile() {
  TrafficProfile p;
  p.num_stations = 20;  // small for test speed
  p.mean_period = milliseconds(100);
  p.period_ratio = 10.0;
  return p;
}

TEST(Advisor, ProfileConvertsToSetup) {
  const auto setup = small_profile().to_setup();
  EXPECT_EQ(setup.num_stations, 20);
  EXPECT_DOUBLE_EQ(setup.mean_period, milliseconds(100));
  EXPECT_DOUBLE_EQ(setup.period_ratio, 10.0);
}

TEST(Advisor, RecommendsPdpAtLowBandwidth) {
  // The paper's conclusion: priority-driven wins at 1-10 Mbps.
  const auto rec = recommend_protocol(small_profile(), mbps(4), 25, 1);
  EXPECT_EQ(rec.best, Protocol::kModified8025);
  EXPECT_GT(rec.modified8025, rec.fddi);
  EXPECT_GE(rec.modified8025, rec.ieee8025);
}

TEST(Advisor, RecommendsTtpAtHighBandwidth) {
  // ... and the timed token wins at >= 100 Mbps.
  const auto rec = recommend_protocol(small_profile(), mbps(200), 25, 1);
  EXPECT_EQ(rec.best, Protocol::kFddi);
  EXPECT_GT(rec.fddi, rec.modified8025);
  EXPECT_GT(rec.margin, 1.0);
}

TEST(Advisor, EstimateAccessorMatchesFields) {
  const auto rec = recommend_protocol(small_profile(), mbps(50), 10, 2);
  EXPECT_DOUBLE_EQ(rec.estimate(Protocol::kIeee8025), rec.ieee8025);
  EXPECT_DOUBLE_EQ(rec.estimate(Protocol::kModified8025), rec.modified8025);
  EXPECT_DOUBLE_EQ(rec.estimate(Protocol::kFddi), rec.fddi);
  EXPECT_DOUBLE_EQ(rec.estimate(rec.best),
                   std::max({rec.ieee8025, rec.modified8025, rec.fddi}));
}

TEST(Advisor, DeterministicForFixedSeed) {
  const auto a = recommend_protocol(small_profile(), mbps(50), 10, 7);
  const auto b = recommend_protocol(small_profile(), mbps(50), 10, 7);
  EXPECT_DOUBLE_EQ(a.ieee8025, b.ieee8025);
  EXPECT_DOUBLE_EQ(a.fddi, b.fddi);
  EXPECT_EQ(a.best, b.best);
}

TEST(Advisor, Preconditions) {
  EXPECT_THROW(recommend_protocol(small_profile(), 0.0, 10, 1),
               PreconditionError);
  EXPECT_THROW(recommend_protocol(small_profile(), mbps(10), 0, 1),
               PreconditionError);
}

}  // namespace
}  // namespace tokenring::planner
