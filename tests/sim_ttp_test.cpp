#include "tokenring/sim/config.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::sim {
namespace {

SimConfig base_config(int stations, BitsPerSecond bw, Seconds ttrt) {
  SimConfig cfg;
  cfg.protocol = Protocol::kTtp;
  cfg.ttp.ring = net::fddi_ring(stations);
  cfg.ttp.frame = net::paper_frame_format();
  cfg.ttp.async_frame = net::paper_frame_format();
  cfg.bandwidth = bw;
  cfg.ttrt = ttrt;
  cfg.horizon = 0.5;
  cfg.worst_case_phasing = true;
  cfg.async_model = AsyncModel::kNone;
  return cfg;
}

msg::SyncStream stream(Seconds period, Bits payload, int station) {
  return msg::SyncStream{period, payload, station};
}

TEST(TtpSim, IdleRotationTakesTheta) {
  // No traffic at all: the token circulates in exactly Theta per lap.
  const BitsPerSecond bw = mbps(100);
  auto cfg = base_config(10, bw, milliseconds(5));
  cfg.horizon = milliseconds(50);
  const auto m = run_simulation(msg::MessageSet{}, cfg);
  ASSERT_GT(m.token_rotation.count(), 10u);
  EXPECT_NEAR(m.token_rotation.mean(), cfg.ttp.ring.theta(bw), 1e-12);
  EXPECT_NEAR(m.token_rotation.max(), cfg.ttp.ring.theta(bw), 1e-12);
}

TEST(TtpSim, AsyncFundedByEarlinessOnly) {
  // Idle sync + saturating async: every visit is early, so each station
  // burns its earliness on async frames; rotations stay <= 2*TTRT.
  const BitsPerSecond bw = mbps(100);
  auto cfg = base_config(4, bw, milliseconds(2));
  cfg.async_model = AsyncModel::kSaturating;
  cfg.horizon = milliseconds(200);
  const auto sim = make_simulator(msg::MessageSet{}, cfg);
  const auto m = sim->run();
  EXPECT_GT(m.async_frames_sent, 0u);
  EXPECT_LE(sim->max_intervisit(), 2.0 * cfg.ttrt + 1e-9);
}

TEST(TtpSim, NoAsyncWithoutSaturation) {
  auto cfg = base_config(4, mbps(100), milliseconds(2));
  EXPECT_EQ(run_simulation(msg::MessageSet{}, cfg).async_frames_sent, 0u);
}

TEST(TtpSim, SingleStreamServedWithinAllocation) {
  // One stream with the local allocation completes every message on time.
  const BitsPerSecond bw = mbps(100);
  const Seconds ttrt = milliseconds(2);
  auto cfg = base_config(4, bw, ttrt);
  cfg.horizon = milliseconds(400);
  cfg.async_model = AsyncModel::kSaturating;

  msg::MessageSet set;
  set.add(stream(milliseconds(20), 100'000.0, 1));  // 1 ms of payload
  const auto h = analysis::ttp_local_bandwidth(set[0], cfg.ttp, bw, ttrt);
  ASSERT_TRUE(h.has_value());
  cfg.sync_bandwidth_per_stream.push_back(*h);

  const auto sim = make_simulator(set, cfg);
  const auto m = sim->run();
  EXPECT_GT(m.messages_completed, 10u);
  EXPECT_EQ(m.deadline_misses, 0u);
  // Johnson's bound holds throughout.
  EXPECT_LE(sim->max_intervisit(), 2.0 * ttrt + 1e-9);
}

TEST(TtpSim, MultiVisitServiceTakesQMinusOneVisits) {
  // h sized for exactly (q-1) visits: the response time must stay within
  // the period but span multiple rotations.
  const BitsPerSecond bw = mbps(100);
  const Seconds ttrt = milliseconds(2);
  auto cfg = base_config(4, bw, ttrt);
  cfg.horizon = milliseconds(400);

  msg::MessageSet set;
  set.add(stream(milliseconds(20), 450'000.0, 0));  // 4.5 ms payload, q=10
  const auto h = analysis::ttp_local_bandwidth(set[0], cfg.ttp, bw, ttrt);
  ASSERT_TRUE(h.has_value());
  cfg.sync_bandwidth_per_stream.push_back(*h);

  const auto m = run_simulation(set, cfg);
  ASSERT_GT(m.messages_completed, 0u);
  EXPECT_EQ(m.deadline_misses, 0u);
  // Needs multiple token visits: response well above one rotation.
  EXPECT_GT(m.response_time.min(), ttrt);
  EXPECT_LE(m.response_time.max(), milliseconds(20) + 1e-9);
}

TEST(TtpSim, HundredsOfExactChunksDoNotAccumulateRounding) {
  // Regression: a message sized for exactly q-1 = 138 full-budget visits
  // must not leak a sub-bit floating-point residue into an extra rotation
  // (which would blow a near-zero-slack deadline).
  const BitsPerSecond bw = mbps(100);
  const Seconds ttrt = milliseconds(0.72);
  auto cfg = base_config(12, bw, ttrt);
  cfg.horizon = milliseconds(450);
  cfg.async_model = AsyncModel::kSaturating;

  msg::MessageSet set;
  // P just above 139*TTRT -> q = 139, 138 usable visits.
  set.add(stream(139.3 * ttrt, 843'013.9, 11));
  const auto h = analysis::ttp_local_bandwidth(set[0], cfg.ttp, bw, ttrt);
  ASSERT_TRUE(h.has_value());
  cfg.sync_bandwidth_per_stream.push_back(*h);

  const auto m = run_simulation(set, cfg);
  ASSERT_GT(m.messages_completed, 2u);
  EXPECT_EQ(m.deadline_misses, 0u);
  // Every response fits the Johnson bound (q visits' worth of rotations).
  EXPECT_LE(m.response_time.max(), 139.0 * ttrt + 1e-9);
}

TEST(TtpSim, MultipleStreamsPerStationEachGetTheirBandwidth) {
  // Generalization beyond the paper's one-stream-per-node model: two
  // streams at one station each own their local-scheme h_i and both meet
  // their deadlines; a station's visit may carry frames of both.
  const BitsPerSecond bw = mbps(100);
  const Seconds ttrt = milliseconds(2);
  auto cfg = base_config(4, bw, ttrt);
  cfg.horizon = milliseconds(400);
  cfg.async_model = AsyncModel::kSaturating;

  msg::MessageSet set;
  set.add(stream(milliseconds(20), 100'000.0, 2));
  set.add(stream(milliseconds(40), 200'000.0, 2));  // same station
  set.add(stream(milliseconds(30), 50'000.0, 0));
  ASSERT_TRUE(analysis::ttp_feasible_at(set, cfg.ttp, bw, ttrt));
  for (const auto& s : set.streams()) {
    cfg.sync_bandwidth_per_stream.push_back(
        analysis::ttp_local_bandwidth(s, cfg.ttp, bw, ttrt).value());
  }
  const auto sim = make_simulator(set, cfg);
  const auto m = sim->run();
  EXPECT_GT(m.messages_completed, 30u);
  EXPECT_EQ(m.deadline_misses, 0u);
  // Station 2 hosts two streams: 21 + 11 releases by t = 400 ms.
  ASSERT_TRUE(m.per_station.count(2));
  EXPECT_GE(m.per_station.at(2).released, 30u);
  EXPECT_LE(sim->max_intervisit(), 2.0 * ttrt + 1e-9);
}

TEST(TtpSim, ZeroAllocationStarvesStream) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = base_config(4, bw, milliseconds(2));
  cfg.horizon = milliseconds(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(20), 10'000.0, 0));
  cfg.sync_bandwidth_per_stream.push_back(0.0);  // starved on purpose
  const auto m = run_simulation(set, cfg);
  EXPECT_EQ(m.messages_completed, 0u);
  EXPECT_GT(m.deadline_misses, 0u);
}

TEST(TtpSim, JohnsonBoundAcrossRandomFeasibleSets) {
  // Property: for any set passing Theorem 5.1 with the local allocation,
  // the token inter-visit time never exceeds 2*TTRT.
  Rng rng(31);
  msg::GeneratorConfig g;
  g.num_streams = 12;
  g.mean_period = milliseconds(60);
  msg::MessageSetGenerator gen(g);

  const BitsPerSecond bw = mbps(100);
  int tested = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto base = gen.generate(rng).scaled(rng.uniform(10.0, 200.0));
    SimConfig cfg = base_config(12, bw, 0.0);
    cfg.ttrt = analysis::select_ttrt(base, cfg.ttp.ring, bw);
    cfg.async_model = AsyncModel::kSaturating;
    cfg.horizon = milliseconds(300);
    cfg.seed = static_cast<std::uint64_t>(trial);

    const analysis::TtpParams p = cfg.ttp;
    if (!analysis::ttp_feasible_at(base, p, bw, cfg.ttrt)) continue;
    for (const auto& s : base.streams()) {
      cfg.sync_bandwidth_per_stream.push_back(
          analysis::ttp_local_bandwidth(s, p, bw, cfg.ttrt).value());
    }
    const auto sim = make_simulator(base, cfg);
    sim->run();
    EXPECT_LE(sim->max_intervisit(), 2.0 * cfg.ttrt + 1e-9)
        << "trial " << trial;
    ++tested;
  }
  EXPECT_GT(tested, 0);
}

TEST(TtpSim, WrapperFillsTtrtAndAllocation) {
  const BitsPerSecond bw = mbps(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(20), 50'000.0, 0));
  set.add(stream(milliseconds(40), 50'000.0, 1));

  SimConfig cfg;
  cfg.protocol = Protocol::kTtp;
  cfg.ttp.ring = net::fddi_ring(4);
  cfg.ttp.frame = net::paper_frame_format();
  cfg.ttp.async_frame = net::paper_frame_format();
  cfg.bandwidth = bw;
  cfg.horizon = milliseconds(200);
  // ttrt and sync_bandwidth left empty: the factory must fill both.
  const auto m = run_simulation(set, cfg);
  EXPECT_GT(m.messages_completed, 0u);
  EXPECT_EQ(m.deadline_misses, 0u);
}

TEST(TtpSim, ReleasedCountMatchesPeriods) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = base_config(2, bw, milliseconds(2));
  cfg.horizon = milliseconds(100);
  cfg.worst_case_phasing = false;
  cfg.seed = 3;
  msg::MessageSet set;
  set.add(stream(milliseconds(10), 1'000.0, 0));
  cfg.sync_bandwidth_per_stream.push_back(analysis::ttp_local_bandwidth(set[0], cfg.ttp, bw, cfg.ttrt).value());
  const auto m = run_simulation(set, cfg);
  // phase in [0,10ms): 10 or 11 releases by t=100ms.
  EXPECT_GE(m.messages_released, 10u);
  EXPECT_LE(m.messages_released, 11u);
}

TEST(TtpSim, ConfigValidation) {
  msg::MessageSet set;
  set.add(stream(milliseconds(10), 1'000.0, 0));
  auto cfg = base_config(2, mbps(100), milliseconds(2));
  cfg.sync_bandwidth_per_stream = {1e-4, 1e-4};  // wrong size (set has 1)
  EXPECT_THROW(make_simulator(set, cfg), PreconditionError);

  cfg = base_config(2, mbps(100), milliseconds(2));
  cfg.horizon = 0.0;
  EXPECT_THROW(make_simulator(set, cfg), PreconditionError);

  cfg = base_config(2, mbps(100), milliseconds(2));
  msg::MessageSet bad;
  bad.add(stream(milliseconds(10), 1'000.0, 5));
  EXPECT_THROW(make_simulator(bad, cfg), PreconditionError);
}

TEST(TtpSim, RotationUnderLoadStaysAboveTheta) {
  // Serving traffic can only slow the token down relative to idle.
  const BitsPerSecond bw = mbps(100);
  auto cfg = base_config(4, bw, milliseconds(2));
  cfg.horizon = milliseconds(200);
  msg::MessageSet set;
  set.add(stream(milliseconds(20), 100'000.0, 0));
  cfg.sync_bandwidth_per_stream.push_back(analysis::ttp_local_bandwidth(set[0], cfg.ttp, bw, cfg.ttrt).value());
  const auto m = run_simulation(set, cfg);
  EXPECT_GE(m.token_rotation.max(), cfg.ttp.ring.theta(bw) - 1e-12);
}

}  // namespace
}  // namespace tokenring::sim
