// Tests for the admission-control service (serve/): wire parsing, cache,
// rate limiting, batching, the engine pipeline, and one TCP end-to-end
// round trip with a graceful drain.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "tokenring/analysis/ttp.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/exec/executor.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/obs/json.hpp"
#include "tokenring/serve/backoff.hpp"
#include "tokenring/serve/batcher.hpp"
#include "tokenring/serve/cache.hpp"
#include "tokenring/serve/engine.hpp"
#include "tokenring/serve/rate_limit.hpp"
#include "tokenring/serve/server.hpp"
#include "tokenring/serve/wire.hpp"

namespace {

using namespace tokenring;

obs::JsonValue parse_ok(const std::string& text) {
  auto result = obs::parse_json(text);
  EXPECT_TRUE(result.ok) << result.error << " @" << result.error_offset
                         << " in " << text;
  return result.value;
}

serve::Request parse_request_ok(const std::string& line) {
  serve::Request request;
  std::string error;
  EXPECT_TRUE(serve::parse_request(parse_ok(line), request, error)) << error;
  return request;
}

std::string parse_request_error(const std::string& line) {
  serve::Request request;
  std::string error;
  EXPECT_FALSE(serve::parse_request(parse_ok(line), request, error)) << line;
  return error;
}

int response_status(const obs::JsonValue& response) {
  const obs::JsonValue* status = response.find("status");
  return status == nullptr ? -1 : static_cast<int>(status->as_int64());
}

constexpr const char* kCheckLine =
    "{\"type\":\"check\",\"id\":7,\"protocol\":\"fddi\","
    "\"bandwidth_mbps\":100,\"streams\":["
    "{\"station\":0,\"period_ms\":50,\"payload_bits\":10000},"
    "{\"station\":1,\"period_ms\":100,\"payload_bits\":20000}]}";

serve::Engine::Options small_engine_options() {
  serve::Engine::Options options;
  options.jobs = 2;
  return options;
}

// ---- wire --------------------------------------------------------------------

TEST(ServeWire, ParsesCheckRequestAndEchoesId) {
  const auto request = parse_request_ok(kCheckLine);
  EXPECT_EQ(request.type, serve::RequestType::kCheck);
  EXPECT_EQ(request.id_token, "7");
  EXPECT_EQ(request.check.protocol, "fddi");
  EXPECT_DOUBLE_EQ(request.check.bandwidth_mbps, 100.0);
  ASSERT_EQ(request.check.set.size(), 2u);
  EXPECT_DOUBLE_EQ(request.check.set.streams()[0].period, 0.05);
  EXPECT_DOUBLE_EQ(request.check.set.streams()[1].payload_bits, 20000.0);
}

TEST(ServeWire, AdviseDefaultsMatchToolFlagDefaults) {
  const auto request = parse_request_ok("{\"type\":\"advise\"}");
  EXPECT_EQ(request.advise.stations, 100);
  EXPECT_DOUBLE_EQ(request.advise.mean_period_ms, 100.0);
  EXPECT_DOUBLE_EQ(request.advise.period_ratio, 10.0);
  EXPECT_EQ(request.advise.sets, 50);
  EXPECT_EQ(request.advise.seed, 1u);
  EXPECT_EQ(request.advise.bandwidths_mbps,
            (std::vector<double>{4.0, 16.0, 100.0, 622.0}));
}

TEST(ServeWire, StringIdRoundTripsQuoted) {
  const auto request =
      parse_request_ok("{\"type\":\"ping\",\"id\":\"a\\\"b\"}");
  EXPECT_EQ(request.id_token, "\"a\\\"b\"");
}

TEST(ServeWire, RejectsUnknownTypeAndFields) {
  EXPECT_NE(parse_request_error("{\"type\":\"frobnicate\"}").find("unknown"),
            std::string::npos);
  // Typo'd field names fail loudly instead of silently using the default.
  const std::string error = parse_request_error(
      "{\"type\":\"check\",\"bandwith_mbps\":100,"
      "\"streams\":[{\"station\":0,\"period_ms\":1,\"payload_bits\":1}]}");
  EXPECT_NE(error.find("bandwith_mbps"), std::string::npos);
  // advise fields are not valid on check requests.
  EXPECT_NE(parse_request_error(
                "{\"type\":\"advise\",\"noise_ms\":1}")
                .find("noise_ms"),
            std::string::npos);
}

TEST(ServeWire, RejectsMissingStreamsAndBadStreamShape) {
  EXPECT_NE(parse_request_error("{\"type\":\"check\"}").find("streams"),
            std::string::npos);
  EXPECT_NE(parse_request_error(
                "{\"type\":\"check\",\"streams\":[{\"station\":0}]}")
                .find("period_ms"),
            std::string::npos);
  EXPECT_NE(parse_request_error(
                "{\"type\":\"check\",\"streams\":[{\"station\":-1,"
                "\"period_ms\":1,\"payload_bits\":1}]}")
                .find("station"),
            std::string::npos);
}

TEST(ServeWire, CacheKeyCanonicalizesSpelling) {
  const auto a = parse_request_ok(kCheckLine);
  // Same query: reordered fields, exponent-notation numbers, explicit
  // defaults spelled out.
  const auto b = parse_request_ok(
      "{\"bandwidth_mbps\":1e2,\"protocol\":\"fddi\",\"streams\":["
      "{\"payload_bits\":1.0e4,\"period_ms\":50,\"station\":0},"
      "{\"station\":1,\"period_ms\":100,\"payload_bits\":20000}],"
      "\"type\":\"check\",\"id\":99}");
  EXPECT_EQ(serve::cache_key(a), serve::cache_key(b));

  auto c = parse_request_ok(kCheckLine);
  c.check.bandwidth_mbps = 16.0;
  EXPECT_NE(serve::cache_key(a), serve::cache_key(c));
  // The id is not part of the identity of a query.
  EXPECT_EQ(serve::cache_key(a).find('7'), std::string::npos);
}

// ---- token bucket / rate limiter ---------------------------------------------

TEST(ServeRateLimit, BucketRefillsAtConfiguredRate) {
  serve::TokenBucket bucket(10.0, 2.0, 0);  // 10 tokens/s, burst 2
  EXPECT_TRUE(bucket.consume(0));
  EXPECT_TRUE(bucket.consume(0));
  EXPECT_FALSE(bucket.consume(0));  // burst exhausted
  const std::uint64_t wait = bucket.nanos_until(1.0);
  EXPECT_EQ(wait, 100'000'000u);             // one token at 10/s = 100 ms
  EXPECT_FALSE(bucket.consume(wait - 1));    // just too early
  EXPECT_TRUE(bucket.consume(wait));         // exactly on time
}

TEST(ServeRateLimit, RefillPropertyHoldsOverRandomSchedules) {
  // Property: over any monotonic consume schedule, granted requests never
  // exceed burst + rate * elapsed (no bucket overshoot), and a full wait
  // of nanos_until(1) always yields a token.
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const double rate = rng.uniform(0.5, 2000.0);
    const double burst = rng.uniform(1.0, 50.0);
    serve::TokenBucket bucket(rate, burst, 0);
    std::uint64_t now = 0;
    std::uint64_t granted = 0;
    for (int step = 0; step < 200; ++step) {
      now += static_cast<std::uint64_t>(rng.uniform(0.0, 2e7));
      if (bucket.consume(now)) ++granted;
      EXPECT_LE(bucket.available(), burst);
    }
    const double elapsed_s = static_cast<double>(now) * 1e-9;
    EXPECT_LE(static_cast<double>(granted), burst + rate * elapsed_s + 1e-6)
        << "rate=" << rate << " burst=" << burst;
    const std::uint64_t wait = bucket.nanos_until(1.0);
    EXPECT_TRUE(bucket.consume(now + wait));
  }
}

TEST(ServeRateLimit, ForwardClockJumpGrantsAtMostBurst) {
  // A clock anomaly (NTP step, VM resume) that leaps hours ahead must not
  // mint unbounded credit: the refill saturates at `burst` no matter how
  // large the jump.
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const double rate = rng.uniform(0.5, 500.0);
    const double burst = std::floor(rng.uniform(1.0, 20.0));
    serve::TokenBucket bucket(rate, burst, 0);
    std::uint64_t now = 0;
    while (bucket.consume(now)) {
    }  // drain the initial burst
    // Jump far forward (up to ~12 days) and count consecutive grants.
    now += static_cast<std::uint64_t>(rng.uniform(3.6e12, 1e15));
    int granted = 0;
    while (bucket.consume(now)) ++granted;
    EXPECT_LE(granted, static_cast<int>(burst))
        << "rate=" << rate << " burst=" << burst;
    EXPECT_GE(granted, static_cast<int>(burst));  // and exactly the burst
  }
}

TEST(ServeRateLimit, RetryAfterShrinksMonotonicallyAsBucketRefills) {
  // The 429 hint must never grow while the client politely waits: at any
  // later probe time the advertised remaining wait is no larger, and once
  // the original hint has elapsed the request is admitted.
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const double rate = rng.uniform(0.5, 200.0);
    serve::RateLimiter limiter({.rate_per_s = rate, .burst = 1.0});
    std::uint64_t now = static_cast<std::uint64_t>(rng.uniform(0.0, 1e12));
    ASSERT_TRUE(limiter.check("c", now).allowed);
    const auto first = limiter.check("c", now);
    ASSERT_FALSE(first.allowed);
    ASSERT_GT(first.retry_after_ns, 0u);

    const std::uint64_t ready_ns = now + first.retry_after_ns;
    std::uint64_t last_hint = first.retry_after_ns;
    for (int probe = 0; probe < 8; ++probe) {
      now += (ready_ns - now) / 3;  // strictly before the advertised time
      if (now >= ready_ns) break;
      const auto denied = limiter.check("c", now);
      ASSERT_FALSE(denied.allowed) << "admitted before the advertised time";
      // Remaining wait from *now*; tolerate 1 ns of ceil() rounding.
      EXPECT_LE(denied.retry_after_ns, last_hint + 1);
      last_hint = denied.retry_after_ns;
    }
    EXPECT_TRUE(limiter.check("c", ready_ns).allowed);
  }
}

TEST(ServeRateLimit, StaleTimestampsDoNotRefillBackwards) {
  serve::TokenBucket bucket(1.0, 1.0, 1'000'000'000);
  EXPECT_TRUE(bucket.consume(1'000'000'000));
  // A clock that jumps backwards must not mint tokens.
  EXPECT_FALSE(bucket.consume(0));
  EXPECT_FALSE(bucket.consume(500'000'000));
}

TEST(ServeRateLimit, LimiterKeysBucketsByClient) {
  serve::RateLimiter limiter({.rate_per_s = 1.0, .burst = 1.0});
  EXPECT_TRUE(limiter.check("alice", 0).allowed);
  EXPECT_TRUE(limiter.check("bob", 0).allowed);  // own bucket
  const auto denied = limiter.check("alice", 0);
  EXPECT_FALSE(denied.allowed);
  EXPECT_GT(denied.retry_after_ns, 0u);
  // After the advertised back-off, alice is admitted again.
  EXPECT_TRUE(limiter.check("alice", denied.retry_after_ns).allowed);
}

TEST(ServeRateLimit, DisabledLimiterAdmitsEverything) {
  serve::RateLimiter limiter({.rate_per_s = 0.0});
  EXPECT_FALSE(limiter.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(limiter.check("anyone", 0).allowed);
  }
}

TEST(ServeBackoff, HonorsHintAndStaysWithinTheJitterEnvelope) {
  const serve::BackoffPolicy policy;
  Rng rng(3);
  for (int attempt = 0; attempt < 12; ++attempt) {
    const std::uint64_t hint = 40'000'000;  // the server's retry_after
    const std::uint64_t delay =
        serve::retry_delay_ns(policy, attempt, hint, rng);
    EXPECT_GE(delay, hint);                    // never undercut the server
    EXPECT_LE(delay, hint + policy.cap_ns);    // growth saturates at cap
  }
  // Full jitter: repeated draws at one attempt actually spread.
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t d = serve::retry_delay_ns(policy, 4, 0, rng);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, hi);
}

// ---- cache -------------------------------------------------------------------

TEST(ServeCache, SingleFlightComputesOnceUnderContention) {
  serve::ResultCache cache({.shards = 4, .capacity_per_shard = 16});
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  std::vector<std::string> values(8);
  for (std::size_t i = 0; i < values.size(); ++i) {
    threads.emplace_back([&cache, &computes, &values, i] {
      values[i] = cache
                      .get_or_compute("key",
                                      [&computes] {
                                        ++computes;
                                        std::this_thread::sleep_for(
                                            std::chrono::milliseconds(20));
                                        return std::string("value");
                                      })
                      .value;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computes.load(), 1);
  for (const auto& v : values) EXPECT_EQ(v, "value");
}

TEST(ServeCache, FailedComputeIsNotCachedAndWaitersRetry) {
  serve::ResultCache cache({.shards = 1, .capacity_per_shard = 4});
  EXPECT_THROW(cache.get_or_compute(
                   "key", []() -> std::string { throw PreconditionError("boom"); }),
               PreconditionError);
  const auto outcome =
      cache.get_or_compute("key", [] { return std::string("ok"); });
  EXPECT_FALSE(outcome.hit);
  EXPECT_EQ(outcome.value, "ok");
}

TEST(ServeCache, EvictsLeastRecentlyUsedBeyondCapacity) {
  serve::ResultCache cache({.shards = 1, .capacity_per_shard = 2});
  const auto fill = [&](const std::string& key) {
    return cache.get_or_compute(key, [&key] { return "v:" + key; });
  };
  fill("a");
  fill("b");
  EXPECT_TRUE(fill("a").hit);   // refresh a: b is now the LRU entry
  fill("c");                    // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(fill("a").hit);
  EXPECT_FALSE(fill("b").hit);  // recomputed
}

// ---- batcher -----------------------------------------------------------------

TEST(ServeBatcher, RunsEveryJobAndPropagatesExceptions) {
  const exec::Executor executor(2);
  serve::Batcher batcher(executor, /*max_group=*/4);
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(
        batcher.submit([i] { return std::to_string(i * i); }));
  }
  auto boom = batcher.submit(
      []() -> std::string { throw PreconditionError("job failed"); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
              std::to_string(i * i));
  }
  EXPECT_THROW(boom.get(), PreconditionError);
  batcher.drain();
}

// ---- engine ------------------------------------------------------------------

TEST(ServeEngine, CheckResponseEmbedsComputeBytesVerbatim) {
  serve::Engine engine(small_engine_options());
  const std::string response = engine.handle_line(kCheckLine, "test");

  const auto request = parse_request_ok(kCheckLine);
  const std::string expected = serve::Engine::compute_check(request.check);
  EXPECT_NE(response.find("\"result\":" + expected), std::string::npos)
      << response;

  // And the embedded verdict is the library's verdict for the same query.
  analysis::TtpParams params;
  params.ring = net::fddi_ring(2);
  params.frame = params.async_frame = net::paper_frame_format();
  const auto verdict =
      analysis::ttp_schedulable(request.check.set, params, mbps(100));
  const auto doc = parse_ok(response);
  EXPECT_EQ(doc.find("result")->find("schedulable")->as_bool(),
            verdict.schedulable);
  EXPECT_EQ(response_status(doc), 200);
  EXPECT_EQ(doc.find("id")->number_token(), "7");
}

TEST(ServeEngine, GoldenRoundTripPerRequestType) {
  serve::Engine engine(small_engine_options());
  const std::string faultcheck_line =
      "{\"type\":\"faultcheck\",\"id\":1,\"protocol\":\"modified8025\","
      "\"bandwidth_mbps\":16,\"noise_ms\":2,\"streams\":["
      "{\"station\":0,\"period_ms\":100,\"payload_bits\":10000}]}";
  const std::string advise_line =
      "{\"type\":\"advise\",\"id\":2,\"stations\":10,\"sets\":4,"
      "\"bandwidths_mbps\":[16],\"seed\":3}";

  const auto fc_request = parse_request_ok(faultcheck_line);
  EXPECT_NE(engine.handle_line(faultcheck_line, "test")
                .find("\"result\":" +
                      serve::Engine::compute_faultcheck(fc_request.check)),
            std::string::npos);

  const auto advise_request = parse_request_ok(advise_line);
  EXPECT_NE(engine.handle_line(advise_line, "test")
                .find("\"result\":" +
                      serve::Engine::compute_advise(advise_request.advise)),
            std::string::npos);

  const auto ping = parse_ok(engine.handle_line("{\"type\":\"ping\"}", "t"));
  EXPECT_EQ(ping.find("result")->find("message")->as_string(), "pong");

  const auto stats = parse_ok(engine.handle_line("{\"type\":\"stats\"}", "t"));
  EXPECT_EQ(response_status(stats), 200);
  EXPECT_NE(stats.find("result")->find("counters"), nullptr);
  EXPECT_NE(stats.find("result")->find("latency_us"), nullptr);
}

TEST(ServeEngine, CacheHitAnswersByteIdenticalToMiss) {
  serve::Engine engine(small_engine_options());
  const std::string miss = engine.handle_line(kCheckLine, "test");
  const std::string hit = engine.handle_line(kCheckLine, "test");
  EXPECT_NE(miss, hit);  // the cached marker flips...
  std::string expected = miss;
  const std::string from = "\"cached\":false";
  const auto at = expected.find(from);
  ASSERT_NE(at, std::string::npos);
  expected.replace(at, from.size(), "\"cached\":true");
  EXPECT_EQ(hit, expected);  // ...and nothing else changes

  // A respelled-but-equal query is also a hit.
  const auto respelled = engine.handle_line(
      "{\"bandwidth_mbps\":1e2,\"protocol\":\"fddi\",\"streams\":["
      "{\"payload_bits\":1.0e4,\"period_ms\":50,\"station\":0},"
      "{\"station\":1,\"period_ms\":100,\"payload_bits\":20000}],"
      "\"type\":\"check\",\"id\":7}",
      "test");
  EXPECT_EQ(respelled, hit);
}

TEST(ServeEngine, MalformedJsonGetsOffsetPointedRejection) {
  serve::Engine engine(small_engine_options());
  const auto doc = parse_ok(engine.handle_line("{\"type\": }", "test"));
  EXPECT_EQ(response_status(doc), 400);
  EXPECT_EQ(doc.find("offset")->as_uint64(), 9u);  // the '}' after the colon
  EXPECT_FALSE(doc.find("error")->as_string().empty());
}

TEST(ServeEngine, OversizedRequestGets413) {
  auto options = small_engine_options();
  options.max_request_bytes = 64;
  serve::Engine engine(options);
  const std::string big(100, 'x');
  const auto doc = parse_ok(engine.handle_line(big, "test"));
  EXPECT_EQ(response_status(doc), 413);
}

TEST(ServeEngine, RateLimitsPerClientWithRetryHint) {
  auto options = small_engine_options();
  options.limit.rate_per_s = 2.0;
  options.limit.burst = 2.0;
  std::uint64_t now = 0;
  serve::Engine engine(options, [&now] { return now; });

  const auto send = [&](const std::string& client) {
    const std::string line =
        "{\"type\":\"check\",\"client\":\"" + client + "\",\"streams\":["
        "{\"station\":0,\"period_ms\":100,\"payload_bits\":1000}]}";
    return parse_ok(engine.handle_line(line, "fallback"));
  };

  EXPECT_EQ(response_status(send("a")), 200);
  EXPECT_EQ(response_status(send("a")), 200);
  const auto denied = send("a");
  EXPECT_EQ(response_status(denied), 429);
  EXPECT_GT(denied.find("retry_after_ms")->as_double(), 0.0);
  // Another client has its own bucket; ping bypasses the limiter.
  EXPECT_EQ(response_status(send("b")), 200);
  EXPECT_EQ(response_status(
                parse_ok(engine.handle_line("{\"type\":\"ping\"}", "a"))),
            200);
  // Half a second mints one token at 2/s.
  now += 500'000'000;
  EXPECT_EQ(response_status(send("a")), 200);
  EXPECT_EQ(response_status(send("a")), 429);
}

// ---- overload: deadlines and shedding ----------------------------------------

// The stepping clock makes deadline tests deterministic without sleeping.
// One compute request observes the clock in a fixed sequence:
//   1. handle_line entry (start)        -> +1 step
//   2. dispatch deadline pre-check      -> +1 step
//   3. rate-limiter timestamp           -> +1 step
//   4. batched job's deadline re-check  -> +1 step
//   5. job-cost EWMA sample             -> +1 step
//   6. handle_line latency sample       -> +1 step
// So at the pre-check 1 step has elapsed, and at the job re-check 3
// steps. Atomic because the job reads the clock from a batcher thread.
// (Brittle by design: if dispatch gains a clock read, adjust the
// deadlines below rather than loosening the assertions.)
struct SteppingClock {
  std::atomic<std::uint64_t> now{0};
  std::uint64_t step_ns;
  explicit SteppingClock(std::uint64_t step) : step_ns(step) {}
  std::uint64_t operator()() { return now.fetch_add(step_ns) + step_ns; }
};

TEST(ServeOverload, ExpiredDeadlineIsRefusedBeforeAnyQueueing) {
  auto clock = std::make_shared<SteppingClock>(1'000'000);  // 1 ms per read
  serve::Engine engine(small_engine_options(), [clock] { return (*clock)(); });

  // 1 ms has elapsed by the pre-check; a 1 ms deadline is already gone.
  const std::string line =
      "{\"type\":\"check\",\"deadline_ms\":1,\"streams\":["
      "{\"station\":0,\"period_ms\":100,\"payload_bits\":1000}]}";
  const auto doc = parse_ok(engine.handle_line(line, "t"));
  EXPECT_EQ(response_status(doc), 504);
  EXPECT_DOUBLE_EQ(doc.find("elapsed_ms")->as_double(), 1.0);
  // Nothing was computed or cached: the identical query without a
  // deadline is a miss.
  const std::string relaxed =
      "{\"type\":\"check\",\"streams\":["
      "{\"station\":0,\"period_ms\":100,\"payload_bits\":1000}]}";
  const auto ok = parse_ok(engine.handle_line(relaxed, "t"));
  EXPECT_EQ(response_status(ok), 200);
  EXPECT_FALSE(ok.find("cached")->as_bool());
}

TEST(ServeOverload, DeadlineExpiringInQueueSkipsTheCompute) {
  auto clock = std::make_shared<SteppingClock>(1'000'000);
  serve::Engine engine(small_engine_options(), [clock] { return (*clock)(); });

  // 1 ms at the pre-check (passes), 3 ms at the job's re-check (expired):
  // the job is skipped before compute and answers 504 with the elapsed
  // wait.
  const std::string line =
      "{\"type\":\"check\",\"deadline_ms\":2.5,\"streams\":["
      "{\"station\":0,\"period_ms\":100,\"payload_bits\":1000}]}";
  const auto doc = parse_ok(engine.handle_line(line, "t"));
  EXPECT_EQ(response_status(doc), 504);
  EXPECT_DOUBLE_EQ(doc.find("elapsed_ms")->as_double(), 3.0);

  // A generous deadline on the same query computes normally (the failed
  // attempt must not have poisoned the cache).
  const std::string patient =
      "{\"type\":\"check\",\"deadline_ms\":1000,\"streams\":["
      "{\"station\":0,\"period_ms\":100,\"payload_bits\":1000}]}";
  EXPECT_EQ(response_status(parse_ok(engine.handle_line(patient, "t"))), 200);
}

TEST(ServeOverload, DeadlineIsNotPartOfTheCacheIdentity) {
  serve::Engine engine(small_engine_options());
  const std::string eager =
      "{\"type\":\"check\",\"deadline_ms\":60000,\"streams\":["
      "{\"station\":0,\"period_ms\":100,\"payload_bits\":1000}]}";
  const std::string no_deadline =
      "{\"type\":\"check\",\"streams\":["
      "{\"station\":0,\"period_ms\":100,\"payload_bits\":1000}]}";
  EXPECT_FALSE(
      parse_ok(engine.handle_line(eager, "t")).find("cached")->as_bool());
  // Same query, different patience: still a hit.
  EXPECT_TRUE(parse_ok(engine.handle_line(no_deadline, "t"))
                  .find("cached")
                  ->as_bool());
}

TEST(ServeOverload, ShedsColdComputeBeyondHighWaterButServesCacheHits) {
  auto options = small_engine_options();
  options.high_water = 1;
  serve::Engine engine(options);

  // Warm the cache while the queue is empty.
  EXPECT_EQ(response_status(parse_ok(engine.handle_line(kCheckLine, "t"))),
            200);

  // Wedge the admission queue at the watermark with a gated job.
  std::promise<void> gate;
  std::shared_future<void> opened(gate.get_future());
  auto wedge = engine.batcher().submit([opened] {
    opened.wait();
    return std::string("done");
  });

  // Cold compute is refused up front with a structured 503 + back-off...
  const std::string cold =
      "{\"type\":\"check\",\"id\":\"cold\",\"streams\":["
      "{\"station\":3,\"period_ms\":10,\"payload_bits\":500}]}";
  const auto shed = parse_ok(engine.handle_line(cold, "t"));
  EXPECT_EQ(response_status(shed), 503);
  EXPECT_GT(shed.find("retry_after_ms")->as_double(), 0.0);
  EXPECT_EQ(shed.find("id")->as_string(), "cold");

  // ...while cached answers and control-plane traffic keep flowing.
  EXPECT_EQ(response_status(parse_ok(engine.handle_line(kCheckLine, "t"))),
            200);
  const auto stats =
      parse_ok(engine.handle_line("{\"type\":\"stats\"}", "t"));
  EXPECT_EQ(response_status(stats), 200);
  EXPECT_GE(stats.find("result")->find("batch_depth")->as_uint64(), 1u);

  // Once the backlog clears, the same cold query computes normally.
  gate.set_value();
  EXPECT_EQ(wedge.get(), "done");
  engine.drain();
  EXPECT_EQ(response_status(parse_ok(engine.handle_line(cold, "t"))), 200);
}

TEST(ServeOverload, HighWaterZeroShedsEveryMiss) {
  auto options = small_engine_options();
  options.high_water = 0;  // cache-only mode: never admit new compute
  serve::Engine engine(options);
  EXPECT_EQ(response_status(parse_ok(engine.handle_line(kCheckLine, "t"))),
            503);
  const auto ping = parse_ok(engine.handle_line("{\"type\":\"ping\"}", "t"));
  EXPECT_EQ(response_status(ping), 200);
}

// ---- server ------------------------------------------------------------------

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::vector<std::string> read_lines(int fd, std::size_t expected) {
  std::vector<std::string> lines;
  std::string buffer;
  char chunk[4096];
  while (lines.size() < expected) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const auto nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      lines.push_back(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  return lines;
}

TEST(ServeServer, PipelinedRequestsAnswerInOrderAndDrainOnStop) {
  serve::Server::Options options;
  options.engine.jobs = 2;
  serve::Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  ASSERT_GT(server.port(), 0);

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);

  // First a lone ping, so the connection is known to be accepted and
  // served before the stop races the backlog.
  const std::string hello = "{\"type\":\"ping\",\"id\":\"hello\"}\n";
  ASSERT_EQ(::send(fd, hello.data(), hello.size(), 0),
            static_cast<ssize_t>(hello.size()));
  ASSERT_EQ(read_lines(fd, 1).size(), 1u);

  // One pipelined burst: pings, a compute query, and a malformed line.
  std::string burst;
  for (int i = 0; i < 5; ++i) {
    burst += "{\"type\":\"ping\",\"id\":" + std::to_string(i) + "}\n";
  }
  burst += std::string(kCheckLine) + "\n";
  burst += "{oops\n";
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));

  // Stop while the burst is in flight: the drain must still answer every
  // line already received before the connection closes.
  server.request_stop();
  const auto lines = read_lines(fd, 7);
  server.wait();
  ::close(fd);

  ASSERT_EQ(lines.size(), 7u);
  for (int i = 0; i < 5; ++i) {
    const auto doc = parse_ok(lines[static_cast<std::size_t>(i)]);
    EXPECT_EQ(doc.find("id")->number_token(), std::to_string(i));
    EXPECT_EQ(response_status(doc), 200);
  }
  EXPECT_EQ(response_status(parse_ok(lines[5])), 200);
  EXPECT_EQ(response_status(parse_ok(lines[6])), 400);
}

TEST(ServeServer, OversizedLineGets413ThenTheConnectionCloses) {
  // Golden contract: ANY 413 is answered and then the server hangs up —
  // also for a complete oversized line — so the close no longer depends
  // on how TCP happened to chunk the bytes (a mid-line overflow and a
  // complete line behave identically).
  serve::Server::Options options;
  options.engine.jobs = 2;
  options.engine.max_request_bytes = 64;
  serve::Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);

  // One oversized (but complete) line, with a valid ping pipelined after
  // it that must NOT be answered: the 413 ends the conversation.
  const std::string oversized(200, 'x');
  const std::string payload =
      oversized + "\n{\"type\":\"ping\",\"id\":\"after\"}\n";
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));

  const auto lines = read_lines(fd, 2);  // returns early on EOF
  ASSERT_EQ(lines.size(), 1u) << "the pipelined ping was answered after 413";
  const auto doc = parse_ok(lines[0]);
  EXPECT_EQ(response_status(doc), 413);

  // And the socket is truly closed, not just quiet.
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  server.request_stop();
  server.wait();
}

TEST(ServeServer, IdleConnectionIsDroppedAfterTheTimeout) {
  serve::Server::Options options;
  options.engine.jobs = 2;
  options.idle_timeout_ms = 50;
  serve::Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);

  // A live request is answered...
  const std::string ping = "{\"type\":\"ping\"}\n";
  ASSERT_EQ(::send(fd, ping.data(), ping.size(), 0),
            static_cast<ssize_t>(ping.size()));
  ASSERT_EQ(read_lines(fd, 1).size(), 1u);

  // ...then a slow-loris client that sends nothing further is cut off
  // (recv unblocks with EOF once the server shuts the connection down).
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  server.request_stop();
  server.wait();
}

TEST(ServeServer, EveryResponseLineIsValidJson) {
  serve::Server::Options options;
  options.engine.jobs = 2;
  serve::Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);

  const std::string lines_out =
      std::string(kCheckLine) + "\n" +
      "{\"type\":\"stats\"}\n" +
      "not json at all\n" +
      "{\"type\":\"check\"}\n";
  ASSERT_EQ(::send(fd, lines_out.data(), lines_out.size(), 0),
            static_cast<ssize_t>(lines_out.size()));
  const auto lines = read_lines(fd, 4);
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& line : lines) {
    EXPECT_TRUE(obs::is_valid_json(line)) << line;
    const auto doc = parse_ok(line);
    EXPECT_EQ(doc.find("schema")->as_string(), "tokenring.serve/1");
  }
  ::close(fd);
  server.request_stop();
  server.wait();
}

}  // namespace
