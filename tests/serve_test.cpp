// Tests for the admission-control service (serve/): wire parsing, cache,
// rate limiting, batching, the engine pipeline, and one TCP end-to-end
// round trip with a graceful drain.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "tokenring/analysis/ttp.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/exec/executor.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/obs/json.hpp"
#include "tokenring/serve/batcher.hpp"
#include "tokenring/serve/cache.hpp"
#include "tokenring/serve/engine.hpp"
#include "tokenring/serve/rate_limit.hpp"
#include "tokenring/serve/server.hpp"
#include "tokenring/serve/wire.hpp"

namespace {

using namespace tokenring;

obs::JsonValue parse_ok(const std::string& text) {
  auto result = obs::parse_json(text);
  EXPECT_TRUE(result.ok) << result.error << " @" << result.error_offset
                         << " in " << text;
  return result.value;
}

serve::Request parse_request_ok(const std::string& line) {
  serve::Request request;
  std::string error;
  EXPECT_TRUE(serve::parse_request(parse_ok(line), request, error)) << error;
  return request;
}

std::string parse_request_error(const std::string& line) {
  serve::Request request;
  std::string error;
  EXPECT_FALSE(serve::parse_request(parse_ok(line), request, error)) << line;
  return error;
}

int response_status(const obs::JsonValue& response) {
  const obs::JsonValue* status = response.find("status");
  return status == nullptr ? -1 : static_cast<int>(status->as_int64());
}

constexpr const char* kCheckLine =
    "{\"type\":\"check\",\"id\":7,\"protocol\":\"fddi\","
    "\"bandwidth_mbps\":100,\"streams\":["
    "{\"station\":0,\"period_ms\":50,\"payload_bits\":10000},"
    "{\"station\":1,\"period_ms\":100,\"payload_bits\":20000}]}";

serve::Engine::Options small_engine_options() {
  serve::Engine::Options options;
  options.jobs = 2;
  return options;
}

// ---- wire --------------------------------------------------------------------

TEST(ServeWire, ParsesCheckRequestAndEchoesId) {
  const auto request = parse_request_ok(kCheckLine);
  EXPECT_EQ(request.type, serve::RequestType::kCheck);
  EXPECT_EQ(request.id_token, "7");
  EXPECT_EQ(request.check.protocol, "fddi");
  EXPECT_DOUBLE_EQ(request.check.bandwidth_mbps, 100.0);
  ASSERT_EQ(request.check.set.size(), 2u);
  EXPECT_DOUBLE_EQ(request.check.set.streams()[0].period, 0.05);
  EXPECT_DOUBLE_EQ(request.check.set.streams()[1].payload_bits, 20000.0);
}

TEST(ServeWire, AdviseDefaultsMatchToolFlagDefaults) {
  const auto request = parse_request_ok("{\"type\":\"advise\"}");
  EXPECT_EQ(request.advise.stations, 100);
  EXPECT_DOUBLE_EQ(request.advise.mean_period_ms, 100.0);
  EXPECT_DOUBLE_EQ(request.advise.period_ratio, 10.0);
  EXPECT_EQ(request.advise.sets, 50);
  EXPECT_EQ(request.advise.seed, 1u);
  EXPECT_EQ(request.advise.bandwidths_mbps,
            (std::vector<double>{4.0, 16.0, 100.0, 622.0}));
}

TEST(ServeWire, StringIdRoundTripsQuoted) {
  const auto request =
      parse_request_ok("{\"type\":\"ping\",\"id\":\"a\\\"b\"}");
  EXPECT_EQ(request.id_token, "\"a\\\"b\"");
}

TEST(ServeWire, RejectsUnknownTypeAndFields) {
  EXPECT_NE(parse_request_error("{\"type\":\"frobnicate\"}").find("unknown"),
            std::string::npos);
  // Typo'd field names fail loudly instead of silently using the default.
  const std::string error = parse_request_error(
      "{\"type\":\"check\",\"bandwith_mbps\":100,"
      "\"streams\":[{\"station\":0,\"period_ms\":1,\"payload_bits\":1}]}");
  EXPECT_NE(error.find("bandwith_mbps"), std::string::npos);
  // advise fields are not valid on check requests.
  EXPECT_NE(parse_request_error(
                "{\"type\":\"advise\",\"noise_ms\":1}")
                .find("noise_ms"),
            std::string::npos);
}

TEST(ServeWire, RejectsMissingStreamsAndBadStreamShape) {
  EXPECT_NE(parse_request_error("{\"type\":\"check\"}").find("streams"),
            std::string::npos);
  EXPECT_NE(parse_request_error(
                "{\"type\":\"check\",\"streams\":[{\"station\":0}]}")
                .find("period_ms"),
            std::string::npos);
  EXPECT_NE(parse_request_error(
                "{\"type\":\"check\",\"streams\":[{\"station\":-1,"
                "\"period_ms\":1,\"payload_bits\":1}]}")
                .find("station"),
            std::string::npos);
}

TEST(ServeWire, CacheKeyCanonicalizesSpelling) {
  const auto a = parse_request_ok(kCheckLine);
  // Same query: reordered fields, exponent-notation numbers, explicit
  // defaults spelled out.
  const auto b = parse_request_ok(
      "{\"bandwidth_mbps\":1e2,\"protocol\":\"fddi\",\"streams\":["
      "{\"payload_bits\":1.0e4,\"period_ms\":50,\"station\":0},"
      "{\"station\":1,\"period_ms\":100,\"payload_bits\":20000}],"
      "\"type\":\"check\",\"id\":99}");
  EXPECT_EQ(serve::cache_key(a), serve::cache_key(b));

  auto c = parse_request_ok(kCheckLine);
  c.check.bandwidth_mbps = 16.0;
  EXPECT_NE(serve::cache_key(a), serve::cache_key(c));
  // The id is not part of the identity of a query.
  EXPECT_EQ(serve::cache_key(a).find('7'), std::string::npos);
}

// ---- token bucket / rate limiter ---------------------------------------------

TEST(ServeRateLimit, BucketRefillsAtConfiguredRate) {
  serve::TokenBucket bucket(10.0, 2.0, 0);  // 10 tokens/s, burst 2
  EXPECT_TRUE(bucket.consume(0));
  EXPECT_TRUE(bucket.consume(0));
  EXPECT_FALSE(bucket.consume(0));  // burst exhausted
  const std::uint64_t wait = bucket.nanos_until(1.0);
  EXPECT_EQ(wait, 100'000'000u);             // one token at 10/s = 100 ms
  EXPECT_FALSE(bucket.consume(wait - 1));    // just too early
  EXPECT_TRUE(bucket.consume(wait));         // exactly on time
}

TEST(ServeRateLimit, RefillPropertyHoldsOverRandomSchedules) {
  // Property: over any monotonic consume schedule, granted requests never
  // exceed burst + rate * elapsed (no bucket overshoot), and a full wait
  // of nanos_until(1) always yields a token.
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const double rate = rng.uniform(0.5, 2000.0);
    const double burst = rng.uniform(1.0, 50.0);
    serve::TokenBucket bucket(rate, burst, 0);
    std::uint64_t now = 0;
    std::uint64_t granted = 0;
    for (int step = 0; step < 200; ++step) {
      now += static_cast<std::uint64_t>(rng.uniform(0.0, 2e7));
      if (bucket.consume(now)) ++granted;
      EXPECT_LE(bucket.available(), burst);
    }
    const double elapsed_s = static_cast<double>(now) * 1e-9;
    EXPECT_LE(static_cast<double>(granted), burst + rate * elapsed_s + 1e-6)
        << "rate=" << rate << " burst=" << burst;
    const std::uint64_t wait = bucket.nanos_until(1.0);
    EXPECT_TRUE(bucket.consume(now + wait));
  }
}

TEST(ServeRateLimit, StaleTimestampsDoNotRefillBackwards) {
  serve::TokenBucket bucket(1.0, 1.0, 1'000'000'000);
  EXPECT_TRUE(bucket.consume(1'000'000'000));
  // A clock that jumps backwards must not mint tokens.
  EXPECT_FALSE(bucket.consume(0));
  EXPECT_FALSE(bucket.consume(500'000'000));
}

TEST(ServeRateLimit, LimiterKeysBucketsByClient) {
  serve::RateLimiter limiter({.rate_per_s = 1.0, .burst = 1.0});
  EXPECT_TRUE(limiter.check("alice", 0).allowed);
  EXPECT_TRUE(limiter.check("bob", 0).allowed);  // own bucket
  const auto denied = limiter.check("alice", 0);
  EXPECT_FALSE(denied.allowed);
  EXPECT_GT(denied.retry_after_ns, 0u);
  // After the advertised back-off, alice is admitted again.
  EXPECT_TRUE(limiter.check("alice", denied.retry_after_ns).allowed);
}

TEST(ServeRateLimit, DisabledLimiterAdmitsEverything) {
  serve::RateLimiter limiter({.rate_per_s = 0.0});
  EXPECT_FALSE(limiter.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(limiter.check("anyone", 0).allowed);
  }
}

// ---- cache -------------------------------------------------------------------

TEST(ServeCache, SingleFlightComputesOnceUnderContention) {
  serve::ResultCache cache({.shards = 4, .capacity_per_shard = 16});
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  std::vector<std::string> values(8);
  for (std::size_t i = 0; i < values.size(); ++i) {
    threads.emplace_back([&cache, &computes, &values, i] {
      values[i] = cache
                      .get_or_compute("key",
                                      [&computes] {
                                        ++computes;
                                        std::this_thread::sleep_for(
                                            std::chrono::milliseconds(20));
                                        return std::string("value");
                                      })
                      .value;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(computes.load(), 1);
  for (const auto& v : values) EXPECT_EQ(v, "value");
}

TEST(ServeCache, FailedComputeIsNotCachedAndWaitersRetry) {
  serve::ResultCache cache({.shards = 1, .capacity_per_shard = 4});
  EXPECT_THROW(cache.get_or_compute(
                   "key", []() -> std::string { throw PreconditionError("boom"); }),
               PreconditionError);
  const auto outcome =
      cache.get_or_compute("key", [] { return std::string("ok"); });
  EXPECT_FALSE(outcome.hit);
  EXPECT_EQ(outcome.value, "ok");
}

TEST(ServeCache, EvictsLeastRecentlyUsedBeyondCapacity) {
  serve::ResultCache cache({.shards = 1, .capacity_per_shard = 2});
  const auto fill = [&](const std::string& key) {
    return cache.get_or_compute(key, [&key] { return "v:" + key; });
  };
  fill("a");
  fill("b");
  EXPECT_TRUE(fill("a").hit);   // refresh a: b is now the LRU entry
  fill("c");                    // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(fill("a").hit);
  EXPECT_FALSE(fill("b").hit);  // recomputed
}

// ---- batcher -----------------------------------------------------------------

TEST(ServeBatcher, RunsEveryJobAndPropagatesExceptions) {
  const exec::Executor executor(2);
  serve::Batcher batcher(executor, /*max_group=*/4);
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(
        batcher.submit([i] { return std::to_string(i * i); }));
  }
  auto boom = batcher.submit(
      []() -> std::string { throw PreconditionError("job failed"); });
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
              std::to_string(i * i));
  }
  EXPECT_THROW(boom.get(), PreconditionError);
  batcher.drain();
}

// ---- engine ------------------------------------------------------------------

TEST(ServeEngine, CheckResponseEmbedsComputeBytesVerbatim) {
  serve::Engine engine(small_engine_options());
  const std::string response = engine.handle_line(kCheckLine, "test");

  const auto request = parse_request_ok(kCheckLine);
  const std::string expected = serve::Engine::compute_check(request.check);
  EXPECT_NE(response.find("\"result\":" + expected), std::string::npos)
      << response;

  // And the embedded verdict is the library's verdict for the same query.
  analysis::TtpParams params;
  params.ring = net::fddi_ring(2);
  params.frame = params.async_frame = net::paper_frame_format();
  const auto verdict =
      analysis::ttp_schedulable(request.check.set, params, mbps(100));
  const auto doc = parse_ok(response);
  EXPECT_EQ(doc.find("result")->find("schedulable")->as_bool(),
            verdict.schedulable);
  EXPECT_EQ(response_status(doc), 200);
  EXPECT_EQ(doc.find("id")->number_token(), "7");
}

TEST(ServeEngine, GoldenRoundTripPerRequestType) {
  serve::Engine engine(small_engine_options());
  const std::string faultcheck_line =
      "{\"type\":\"faultcheck\",\"id\":1,\"protocol\":\"modified8025\","
      "\"bandwidth_mbps\":16,\"noise_ms\":2,\"streams\":["
      "{\"station\":0,\"period_ms\":100,\"payload_bits\":10000}]}";
  const std::string advise_line =
      "{\"type\":\"advise\",\"id\":2,\"stations\":10,\"sets\":4,"
      "\"bandwidths_mbps\":[16],\"seed\":3}";

  const auto fc_request = parse_request_ok(faultcheck_line);
  EXPECT_NE(engine.handle_line(faultcheck_line, "test")
                .find("\"result\":" +
                      serve::Engine::compute_faultcheck(fc_request.check)),
            std::string::npos);

  const auto advise_request = parse_request_ok(advise_line);
  EXPECT_NE(engine.handle_line(advise_line, "test")
                .find("\"result\":" +
                      serve::Engine::compute_advise(advise_request.advise)),
            std::string::npos);

  const auto ping = parse_ok(engine.handle_line("{\"type\":\"ping\"}", "t"));
  EXPECT_EQ(ping.find("result")->find("message")->as_string(), "pong");

  const auto stats = parse_ok(engine.handle_line("{\"type\":\"stats\"}", "t"));
  EXPECT_EQ(response_status(stats), 200);
  EXPECT_NE(stats.find("result")->find("counters"), nullptr);
  EXPECT_NE(stats.find("result")->find("latency_us"), nullptr);
}

TEST(ServeEngine, CacheHitAnswersByteIdenticalToMiss) {
  serve::Engine engine(small_engine_options());
  const std::string miss = engine.handle_line(kCheckLine, "test");
  const std::string hit = engine.handle_line(kCheckLine, "test");
  EXPECT_NE(miss, hit);  // the cached marker flips...
  std::string expected = miss;
  const std::string from = "\"cached\":false";
  const auto at = expected.find(from);
  ASSERT_NE(at, std::string::npos);
  expected.replace(at, from.size(), "\"cached\":true");
  EXPECT_EQ(hit, expected);  // ...and nothing else changes

  // A respelled-but-equal query is also a hit.
  const auto respelled = engine.handle_line(
      "{\"bandwidth_mbps\":1e2,\"protocol\":\"fddi\",\"streams\":["
      "{\"payload_bits\":1.0e4,\"period_ms\":50,\"station\":0},"
      "{\"station\":1,\"period_ms\":100,\"payload_bits\":20000}],"
      "\"type\":\"check\",\"id\":7}",
      "test");
  EXPECT_EQ(respelled, hit);
}

TEST(ServeEngine, MalformedJsonGetsOffsetPointedRejection) {
  serve::Engine engine(small_engine_options());
  const auto doc = parse_ok(engine.handle_line("{\"type\": }", "test"));
  EXPECT_EQ(response_status(doc), 400);
  EXPECT_EQ(doc.find("offset")->as_uint64(), 9u);  // the '}' after the colon
  EXPECT_FALSE(doc.find("error")->as_string().empty());
}

TEST(ServeEngine, OversizedRequestGets413) {
  auto options = small_engine_options();
  options.max_request_bytes = 64;
  serve::Engine engine(options);
  const std::string big(100, 'x');
  const auto doc = parse_ok(engine.handle_line(big, "test"));
  EXPECT_EQ(response_status(doc), 413);
}

TEST(ServeEngine, RateLimitsPerClientWithRetryHint) {
  auto options = small_engine_options();
  options.limit.rate_per_s = 2.0;
  options.limit.burst = 2.0;
  std::uint64_t now = 0;
  serve::Engine engine(options, [&now] { return now; });

  const auto send = [&](const std::string& client) {
    const std::string line =
        "{\"type\":\"check\",\"client\":\"" + client + "\",\"streams\":["
        "{\"station\":0,\"period_ms\":100,\"payload_bits\":1000}]}";
    return parse_ok(engine.handle_line(line, "fallback"));
  };

  EXPECT_EQ(response_status(send("a")), 200);
  EXPECT_EQ(response_status(send("a")), 200);
  const auto denied = send("a");
  EXPECT_EQ(response_status(denied), 429);
  EXPECT_GT(denied.find("retry_after_ms")->as_double(), 0.0);
  // Another client has its own bucket; ping bypasses the limiter.
  EXPECT_EQ(response_status(send("b")), 200);
  EXPECT_EQ(response_status(
                parse_ok(engine.handle_line("{\"type\":\"ping\"}", "a"))),
            200);
  // Half a second mints one token at 2/s.
  now += 500'000'000;
  EXPECT_EQ(response_status(send("a")), 200);
  EXPECT_EQ(response_status(send("a")), 429);
}

// ---- server ------------------------------------------------------------------

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::vector<std::string> read_lines(int fd, std::size_t expected) {
  std::vector<std::string> lines;
  std::string buffer;
  char chunk[4096];
  while (lines.size() < expected) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const auto nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      lines.push_back(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  return lines;
}

TEST(ServeServer, PipelinedRequestsAnswerInOrderAndDrainOnStop) {
  serve::Server::Options options;
  options.engine.jobs = 2;
  serve::Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  ASSERT_GT(server.port(), 0);

  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);

  // First a lone ping, so the connection is known to be accepted and
  // served before the stop races the backlog.
  const std::string hello = "{\"type\":\"ping\",\"id\":\"hello\"}\n";
  ASSERT_EQ(::send(fd, hello.data(), hello.size(), 0),
            static_cast<ssize_t>(hello.size()));
  ASSERT_EQ(read_lines(fd, 1).size(), 1u);

  // One pipelined burst: pings, a compute query, and a malformed line.
  std::string burst;
  for (int i = 0; i < 5; ++i) {
    burst += "{\"type\":\"ping\",\"id\":" + std::to_string(i) + "}\n";
  }
  burst += std::string(kCheckLine) + "\n";
  burst += "{oops\n";
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0),
            static_cast<ssize_t>(burst.size()));

  // Stop while the burst is in flight: the drain must still answer every
  // line already received before the connection closes.
  server.request_stop();
  const auto lines = read_lines(fd, 7);
  server.wait();
  ::close(fd);

  ASSERT_EQ(lines.size(), 7u);
  for (int i = 0; i < 5; ++i) {
    const auto doc = parse_ok(lines[static_cast<std::size_t>(i)]);
    EXPECT_EQ(doc.find("id")->number_token(), std::to_string(i));
    EXPECT_EQ(response_status(doc), 200);
  }
  EXPECT_EQ(response_status(parse_ok(lines[5])), 200);
  EXPECT_EQ(response_status(parse_ok(lines[6])), 400);
}

TEST(ServeServer, EveryResponseLineIsValidJson) {
  serve::Server::Options options;
  options.engine.jobs = 2;
  serve::Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(error)) << error;
  const int fd = connect_loopback(server.port());
  ASSERT_GE(fd, 0);

  const std::string lines_out =
      std::string(kCheckLine) + "\n" +
      "{\"type\":\"stats\"}\n" +
      "not json at all\n" +
      "{\"type\":\"check\"}\n";
  ASSERT_EQ(::send(fd, lines_out.data(), lines_out.size(), 0),
            static_cast<ssize_t>(lines_out.size()));
  const auto lines = read_lines(fd, 4);
  ASSERT_EQ(lines.size(), 4u);
  for (const auto& line : lines) {
    EXPECT_TRUE(obs::is_valid_json(line)) << line;
    const auto doc = parse_ok(line);
    EXPECT_EQ(doc.find("schema")->as_string(), "tokenring.serve/1");
  }
  ::close(fd);
  server.request_stop();
  server.wait();
}

}  // namespace
