#include <gtest/gtest.h>

#include <vector>

#include "tokenring/common/checks.hpp"
#include "tokenring/sim/event_queue.hpp"
#include "tokenring/sim/simulator.hpp"

namespace tokenring::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(3.0, [&] { fired.push_back(3); });
  q.push(1.0, [&] { fired.push_back(1); });
  q.push(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeAndSize) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(5.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), PreconditionError);
  EXPECT_THROW(q.pop(), PreconditionError);
}

TEST(EventQueue, NegativeTimeRejected) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, [] {}), PreconditionError);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] { times.push_back(sim.now()); });
  sim.schedule_at(0.5, [&] { times.push_back(sim.now()); });
  sim.run_until(2.0);
  EXPECT_EQ(times, (std::vector<double>{0.5, 1.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // clock lands on the horizon
}

TEST(Simulator, RelativeScheduling) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(1.0, [&] {
    sim.schedule_in(0.25, [&] { fired_at = sim.now(); });
  });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 1.25);
}

TEST(Simulator, HorizonIsInclusive) {
  Simulator sim;
  bool at_horizon = false;
  bool past_horizon = false;
  sim.schedule_at(2.0, [&] { at_horizon = true; });
  sim.schedule_at(2.0 + 1e-9, [&] { past_horizon = true; });
  sim.run_until(2.0);
  EXPECT_TRUE(at_horizon);
  EXPECT_FALSE(past_horizon);
}

TEST(Simulator, EventsPastHorizonSurviveForNextRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(1.0);
  EXPECT_EQ(fired, 0);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.schedule_at(1.0, [&] {
    EXPECT_THROW(sim.schedule_at(0.5, [] {}), PreconditionError);
    EXPECT_THROW(sim.schedule_in(-0.1, [] {}), PreconditionError);
  });
  sim.run_until(2.0);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(static_cast<double>(i), [] {});
  const auto ran = sim.run_until(100.0);
  EXPECT_EQ(ran, 7u);
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, CascadedEventChainsRun) {
  // A self-perpetuating chain (like token passing) runs to the horizon.
  Simulator sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    ++hops;
    sim.schedule_in(0.1, hop);
  };
  sim.schedule_at(0.0, hop);
  sim.run_until(1.0);
  EXPECT_EQ(hops, 11);  // t = 0.0, 0.1, ..., 1.0 inclusive
}

}  // namespace
}  // namespace tokenring::sim
