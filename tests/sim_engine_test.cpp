// Engine-layer tests: the pooled-event calendar queue (exact (time, seq)
// order, SIM_CHECK key validation, randomized differential check against a
// reference heap), the simulator loop (clock, horizon, storm guard), the
// frontier work source, and frontier-vs-eager engine equivalence for the
// TTP simulator (bit-identical metrics, byte-identical JSONL traces).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/obs/trace_sinks.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/event_queue.hpp"
#include "tokenring/sim/simulator.hpp"
#include "tokenring/sim/workload.hpp"

namespace tokenring::sim {
namespace {

Event user_event(int index) {
  Event ev;
  ev.kind = EventKind::kUser;
  ev.index = index;
  return ev;
}

// ---- event queue ------------------------------------------------------------

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(3.0, user_event(3));
  q.push(1.0, user_event(1));
  q.push(2.0, user_event(2));
  std::vector<int> fired;
  while (!q.empty()) fired.push_back(q.pop().index);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.push(1.0, user_event(i));
  for (int i = 0; i < 10; ++i) {
    const Event ev = q.pop();
    EXPECT_EQ(ev.index, i);
    EXPECT_EQ(ev.seq, static_cast<std::uint64_t>(i));
  }
}

TEST(EventQueue, NextTimeAndSize) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.push(5.0, user_event(0));
  q.push(2.0, user_event(1));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW(q.next_time(), PreconditionError);
  EXPECT_THROW(q.pop(), PreconditionError);
}

TEST(EventQueue, NegativeTimeRejected) {
  EventQueue q;
  EXPECT_THROW(q.push(-1.0, user_event(0)), PreconditionError);
}

TEST(EventQueue, NonFiniteTimeRejectedNamingTheKind) {
  EventQueue q;
  Event hop;
  hop.kind = EventKind::kTtpTokenHop;
  try {
    q.push(std::numeric_limits<double>::quiet_NaN(), hop);
    FAIL() << "NaN key accepted";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("ttp-token-hop"), std::string::npos)
        << e.what();
  }
  Event fault;
  fault.kind = EventKind::kFault;
  try {
    q.push(std::numeric_limits<double>::infinity(), fault);
    FAIL() << "inf key accepted";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("fault"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(q.empty());  // nothing leaked into the queue
}

TEST(EventQueue, PushEarlierThanCurrentWindowStillPopsInOrder) {
  // Pop far enough to move the calendar window forward, then push an
  // earlier event: it must come out first.
  EventQueue q;
  for (int i = 0; i < 100; ++i) q.push(1e-3 * (i + 1), user_event(i));
  for (int i = 0; i < 50; ++i) q.pop();
  q.push(1e-6, user_event(999));
  EXPECT_EQ(q.pop().index, 999);
  EXPECT_EQ(q.pop().index, 50);
}

TEST(EventQueue, FarFutureEventsMergeExactly) {
  // Events far outside the near window live in the overflow heap; the pop
  // order must still be globally exact.
  EventQueue q;
  q.push(1e9, user_event(1));    // far future
  q.push(1e-6, user_event(0));   // near
  q.push(2e9, user_event(2));    // farther
  EXPECT_EQ(q.pop().index, 0);
  EXPECT_EQ(q.pop().index, 1);
  EXPECT_EQ(q.pop().index, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DifferentialAgainstReferenceHeap) {
  // 10k random operations (pushes over wildly mixed time scales, same-time
  // bursts, interleaved pops) against a trivially correct reference; the
  // pop streams must agree exactly, sequence numbers included.
  struct Ref {
    double at;
    std::uint64_t seq;
    int index;
  };
  const auto ref_less = [](const Ref& a, const Ref& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  };

  EventQueue q;
  std::vector<Ref> ref;
  Rng rng(2024);
  std::uint64_t next_seq = 0;
  double low_water = 0.0;  // pops only move forward; pushes stay >= this
  int pushes = 0;

  for (int op = 0; op < 10'000; ++op) {
    const double r = rng.uniform(0.0, 1.0);
    if (r < 0.55 || q.empty()) {
      // Push: mix of near, same-time bursts, and far-future keys.
      double at;
      const double kind = rng.uniform(0.0, 1.0);
      if (kind < 0.2 && !ref.empty()) {
        at = ref[static_cast<std::size_t>(rng.uniform_int(
                     0, static_cast<std::int64_t>(ref.size()) - 1))]
                 .at;  // exact duplicate time: exercises FIFO tie-break
      } else if (kind < 0.8) {
        at = low_water + rng.uniform(0.0, 1e-3);
      } else {
        at = low_water + rng.uniform(0.0, 1e6);  // far heap
      }
      q.push(at, user_event(pushes));
      ref.push_back(Ref{at, next_seq++, pushes});
      ++pushes;
    } else {
      const auto it = std::min_element(ref.begin(), ref.end(), ref_less);
      const Event got = q.pop();
      EXPECT_EQ(got.index, it->index) << "op " << op;
      EXPECT_EQ(got.seq, it->seq) << "op " << op;
      EXPECT_EQ(got.at, it->at) << "op " << op;
      low_water = it->at;
      ref.erase(it);
    }
    if (!ref.empty()) {
      const auto it = std::min_element(ref.begin(), ref.end(), ref_less);
      EXPECT_EQ(q.next_time(), it->at) << "op " << op;
    }
  }
  // Drain: the tails must agree too.
  std::sort(ref.begin(), ref.end(), ref_less);
  for (const Ref& want : ref) {
    const Event got = q.pop();
    ASSERT_EQ(got.index, want.index);
    ASSERT_EQ(got.seq, want.seq);
  }
  EXPECT_TRUE(q.empty());
}

// ---- simulator --------------------------------------------------------------

/// Test handler: records (time, index) of every delivered event and can
/// schedule follow-ups.
class RecordingHandler final : public EventHandler {
 public:
  explicit RecordingHandler(Simulator& sim) : sim_(sim) {}
  void on_event(const Event& ev) override {
    times.push_back(sim_.now());
    indices.push_back(ev.index);
    if (on_event_hook) on_event_hook(ev);
  }
  Simulator& sim_;
  std::vector<double> times;
  std::vector<int> indices;
  std::function<void(const Event&)> on_event_hook;
};

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  RecordingHandler h(sim);
  sim.set_handler(&h);
  sim.schedule_at(1.0, user_event(0));
  sim.schedule_at(0.5, user_event(1));
  sim.run_until(2.0);
  EXPECT_EQ(h.times, (std::vector<double>{0.5, 1.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // clock lands on the horizon
}

TEST(Simulator, RelativeScheduling) {
  Simulator sim;
  RecordingHandler h(sim);
  sim.set_handler(&h);
  h.on_event_hook = [&](const Event& ev) {
    if (ev.index == 0) sim.schedule_in(0.25, user_event(1));
  };
  sim.schedule_at(1.0, user_event(0));
  sim.run_until(10.0);
  ASSERT_EQ(h.times.size(), 2u);
  EXPECT_DOUBLE_EQ(h.times[1], 1.25);
}

TEST(Simulator, HorizonIsInclusive) {
  Simulator sim;
  RecordingHandler h(sim);
  sim.set_handler(&h);
  sim.schedule_at(2.0, user_event(0));
  sim.schedule_at(2.0 + 1e-9, user_event(1));
  sim.run_until(2.0);
  EXPECT_EQ(h.indices, (std::vector<int>{0}));
}

TEST(Simulator, EventsPastHorizonSurviveForNextRun) {
  Simulator sim;
  RecordingHandler h(sim);
  sim.set_handler(&h);
  sim.schedule_at(5.0, user_event(0));
  sim.run_until(1.0);
  EXPECT_TRUE(h.indices.empty());
  sim.run_until(10.0);
  EXPECT_EQ(h.indices, (std::vector<int>{0}));
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  RecordingHandler h(sim);
  sim.set_handler(&h);
  h.on_event_hook = [&](const Event&) {
    EXPECT_THROW(sim.schedule_at(0.5, user_event(9)), PreconditionError);
    EXPECT_THROW(sim.schedule_in(-0.1, user_event(9)), PreconditionError);
  };
  sim.schedule_at(1.0, user_event(0));
  sim.run_until(2.0);
  ASSERT_EQ(h.indices.size(), 1u);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  RecordingHandler h(sim);
  sim.set_handler(&h);
  for (int i = 0; i < 7; ++i) {
    sim.schedule_at(static_cast<double>(i), user_event(i));
  }
  const auto ran = sim.run_until(100.0);
  EXPECT_EQ(ran, 7u);
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulator, CascadedEventChainsRun) {
  // A self-perpetuating chain (like token passing) runs to the horizon.
  Simulator sim;
  RecordingHandler h(sim);
  sim.set_handler(&h);
  h.on_event_hook = [&](const Event&) { sim.schedule_in(0.1, user_event(0)); };
  sim.schedule_at(0.0, user_event(0));
  sim.run_until(1.0);
  EXPECT_EQ(h.indices.size(), 11u);  // t = 0.0, 0.1, ..., 1.0 inclusive
}

// ---- frontier source --------------------------------------------------------

/// A frontier ticking every `step` seconds that logs its firing times.
class TickingFrontier final : public FrontierSource {
 public:
  TickingFrontier(Simulator& sim, double step) : sim_(sim), step_(step) {}
  Seconds frontier_time() const override { return next_; }
  void advance_frontier() override {
    fired.push_back(sim_.now());
    next_ += step_;
  }
  Simulator& sim_;
  double step_;
  Seconds next_ = 0.0;
  std::vector<double> fired;
};

TEST(Simulator, FrontierInterleavesWithQueueByTime) {
  Simulator sim;
  RecordingHandler h(sim);
  TickingFrontier f(sim, 0.4);
  sim.set_handler(&h);
  sim.set_frontier(&f);
  sim.schedule_at(0.5, user_event(0));
  sim.run_until(1.0);
  // Frontier at 0.0, 0.4, 0.8; queue at 0.5.
  EXPECT_EQ(f.fired, (std::vector<double>{0.0, 0.4, 0.8}));
  EXPECT_EQ(h.times, (std::vector<double>{0.5}));
  EXPECT_EQ(sim.events_executed(), 4u);  // frontier advances count
}

TEST(Simulator, QueueWinsTiesAgainstFrontier) {
  // A queued event at exactly the frontier time fires first — a fault
  // destroying the token at a visit instant must beat the visit.
  Simulator sim;
  std::vector<int> order;
  RecordingHandler h(sim);
  TickingFrontier f(sim, 1.0);
  h.on_event_hook = [&](const Event&) { order.push_back(0); };
  class Spy final : public FrontierSource {
   public:
    Spy(TickingFrontier& inner, std::vector<int>& order)
        : inner_(inner), order_(order) {}
    Seconds frontier_time() const override { return inner_.frontier_time(); }
    void advance_frontier() override {
      order_.push_back(1);
      inner_.advance_frontier();
    }
    TickingFrontier& inner_;
    std::vector<int>& order_;
  } spy(f, order);
  sim.set_handler(&h);
  sim.set_frontier(&spy);
  sim.schedule_at(1.0, user_event(0));
  sim.run_until(1.0);
  // t=0 frontier, then at t=1 the queued event (0) before the frontier (1).
  EXPECT_EQ(order, (std::vector<int>{1, 0, 1}));
}

TEST(Simulator, FrontierCountsTowardStormGuard) {
  Simulator sim;
  RecordingHandler h(sim);
  TickingFrontier f(sim, 1e-6);
  sim.set_handler(&h);
  sim.set_frontier(&f);
  sim.set_max_events(100);
  EXPECT_THROW(sim.run_until(1.0), EventStormError);
}

// ---- engine equivalence -----------------------------------------------------

msg::MessageSet engine_set() {
  msg::MessageSet set;
  set.add({.period = milliseconds(5), .payload_bits = 30'000.0, .station = 1});
  set.add({.period = milliseconds(8), .payload_bits = 50'000.0, .station = 4});
  set.add({.period = milliseconds(13), .payload_bits = 20'000.0, .station = 4});
  return set;
}

SimConfig engine_config(EngineMode mode) {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(8);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  auto cfg = make_sim_config(engine_set(), p, mbps(100), 8.0);
  cfg.engine = mode;
  return cfg;
}

void expect_bit_identical(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.messages_released, b.messages_released);
  EXPECT_EQ(a.messages_completed, b.messages_completed);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.async_frames_sent, b.async_frames_sent);
  // Bit-identical, not approximately equal: the frontier walk performs the
  // same arithmetic as the eager walk.
  EXPECT_EQ(a.response_time.mean(), b.response_time.mean());
  EXPECT_EQ(a.response_time.max(), b.response_time.max());
  EXPECT_EQ(a.token_rotation.mean(), b.token_rotation.mean());
  EXPECT_EQ(a.token_rotation.max(), b.token_rotation.max());
}

TEST(EngineEquivalence, FrontierMatchesEagerBitForBit) {
  const auto eager = run_simulation(engine_set(), engine_config(EngineMode::kEager));
  const auto front =
      run_simulation(engine_set(), engine_config(EngineMode::kFrontier));
  expect_bit_identical(front, eager);
}

TEST(EngineEquivalence, HoldsUnderPoissonAsyncAndJitter) {
  auto eager_cfg = engine_config(EngineMode::kEager);
  eager_cfg.async_model = AsyncModel::kPoisson;
  eager_cfg.async_frames_per_second = 300.0;
  eager_cfg.arrival_jitter = 0.3;
  eager_cfg.worst_case_phasing = false;
  eager_cfg.seed = 77;
  auto front_cfg = eager_cfg;
  front_cfg.engine = EngineMode::kFrontier;
  expect_bit_identical(run_simulation(engine_set(), front_cfg),
                       run_simulation(engine_set(), eager_cfg));
}

TEST(EngineEquivalence, GoldenJsonlTracesAreByteIdentical) {
  // The full JSONL trace stream — every record, every field, formatted —
  // must not differ by a single byte between engines.
  const auto trace_of = [&](EngineMode mode) {
    std::ostringstream os;
    obs::JsonlTraceSink sink(os);
    auto cfg = engine_config(mode);
    cfg.trace = &sink;
    run_simulation(engine_set(), cfg);
    sink.flush();
    return os.str();
  };
  const std::string eager = trace_of(EngineMode::kEager);
  const std::string front = trace_of(EngineMode::kFrontier);
  ASSERT_GT(eager.size(), 10'000u);  // a real trace, not an empty file
  EXPECT_TRUE(front == eager) << "traces diverge";
}

TEST(EngineEquivalence, EventCountsMatchWithoutFaults) {
  const auto e = make_simulator(engine_set(), engine_config(EngineMode::kEager));
  const auto f =
      make_simulator(engine_set(), engine_config(EngineMode::kFrontier));
  const auto em = e->run();
  const auto fm = f->run();
  EXPECT_EQ(em.messages_completed, fm.messages_completed);
}

TEST(EngineEquivalence, HibernationPreservesCompletionMetrics) {
  // collect_rotation_stats = false + async kNone + no trace licenses the
  // idle-lap fast-forward; completion counts and deadline verdicts must
  // survive it (response times may differ only by float re-association).
  auto slow = engine_config(EngineMode::kFrontier);
  slow.async_model = AsyncModel::kNone;
  auto fast = slow;
  fast.collect_rotation_stats = false;
  const auto sm = run_simulation(engine_set(), slow);
  const auto fm = run_simulation(engine_set(), fast);
  EXPECT_EQ(fm.messages_released, sm.messages_released);
  EXPECT_EQ(fm.messages_completed, sm.messages_completed);
  EXPECT_EQ(fm.deadline_misses, sm.deadline_misses);
  EXPECT_NEAR(fm.response_time.mean(), sm.response_time.mean(), 1e-9);
}

}  // namespace
}  // namespace tokenring::sim
