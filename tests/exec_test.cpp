// Tests for the exec/ subsystem: seed streams, the thread pool, and the
// Executor's parallel_for / map_reduce drivers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tokenring/common/checks.hpp"
#include "tokenring/exec/executor.hpp"
#include "tokenring/exec/seed_stream.hpp"
#include "tokenring/exec/thread_pool.hpp"

namespace tokenring::exec {
namespace {

// ---- seed streams ----------------------------------------------------------

TEST(SeedStream, DeriveSeedIsDeterministic) {
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  EXPECT_EQ(derive_seed(42, 917), derive_seed(42, 917));
}

TEST(SeedStream, NearbyInputsDecorrelate) {
  // Consecutive indices and consecutive masters must all give distinct
  // seeds — the whole point of mixing through SplitMix64.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(derive_seed(7, i));
  for (std::uint64_t m = 1000; m < 2000; ++m) seeds.insert(derive_seed(m, 0));
  EXPECT_EQ(seeds.size(), 2000u);
}

TEST(SeedStream, TrialRngsReproduceAndDiffer) {
  Rng a = make_trial_rng(5, 3);
  Rng b = make_trial_rng(5, 3);
  Rng c = make_trial_rng(5, 4);
  const double da = a.uniform01();
  EXPECT_DOUBLE_EQ(da, b.uniform01());
  EXPECT_NE(da, c.uniform01());
}

TEST(SeedStream, SplitMix64MatchesReferenceVector) {
  // Reference: SplitMix64 seeded with 0 outputs
  // e220a8397b1dcdaf, 6e789e6aa1b965f4, ... (Vigna's splitmix64.c).
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
}

// ---- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { ++count; });
    }
  }  // destructor waits for completion
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsPendingWork) {
  // Queue up far more slow tasks than workers; destruction must complete
  // every accepted task, not drop the queued ones.
  std::atomic<int> count{0};
  {
    ThreadPool pool(2, /*queue_capacity=*/64);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++count;
      });
    }
  }
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ReportsGeometry) {
  ThreadPool pool(3, 5);
  EXPECT_EQ(pool.thread_count(), 3u);
  EXPECT_EQ(pool.queue_capacity(), 5u);
  ThreadPool defaulted(2);
  EXPECT_EQ(defaulted.queue_capacity(), 8u);  // 4 * threads
}

TEST(ThreadPool, Preconditions) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), PreconditionError);
}

// ---- executor --------------------------------------------------------------

TEST(Executor, DefaultJobsIsPositive) {
  EXPECT_GE(default_jobs(), 1u);
  EXPECT_EQ(Executor(0).jobs(), default_jobs());
  EXPECT_EQ(Executor(3).jobs(), 3u);
}

TEST(Executor, ParallelForCoversEveryIndexOnce) {
  for (std::size_t jobs : {1u, 4u}) {
    Executor ex(jobs);
    std::vector<int> hits(257, 0);
    ex.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257)
        << "jobs=" << jobs;
  }
}

TEST(Executor, ParallelForZeroIsANoop) {
  Executor ex(2);
  ex.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(Executor, ExceptionPropagatesFromWorker) {
  for (std::size_t jobs : {1u, 4u}) {
    Executor ex(jobs);
    EXPECT_THROW(
        ex.parallel_for(20,
                        [](std::size_t i) {
                          if (i == 7) throw std::runtime_error("boom");
                        }),
        std::runtime_error)
        << "jobs=" << jobs;
  }
}

TEST(Executor, LowestIndexExceptionWins) {
  // Several indices throw; the rethrown one must be the smallest index so
  // failures are reproducible across jobs counts.
  for (std::size_t jobs : {1u, 4u}) {
    Executor ex(jobs);
    try {
      ex.parallel_for(50, [](std::size_t i) {
        if (i % 10 == 3) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3") << "jobs=" << jobs;
    }
  }
}

TEST(Executor, CancellationStopsTheSweep) {
  for (std::size_t jobs : {1u, 4u}) {
    Executor ex(jobs);
    CancellationToken token;
    std::atomic<int> ran{0};
    ParallelForOptions options;
    options.cancel = token;
    EXPECT_THROW(ex.parallel_for(
                     10'000,
                     [&](std::size_t) {
                       if (++ran == 3) token.request_cancel();
                     },
                     options),
                 Cancelled)
        << "jobs=" << jobs;
    EXPECT_LT(ran.load(), 10'000) << "jobs=" << jobs;
  }
}

TEST(Executor, ProgressReachesTotal) {
  for (std::size_t jobs : {1u, 4u}) {
    Executor ex(jobs);
    std::size_t last_done = 0;
    std::size_t calls = 0;
    ParallelForOptions options;
    options.progress = [&](std::size_t done, std::size_t total) {
      EXPECT_EQ(total, 40u);
      EXPECT_GT(done, last_done);  // serialized + monotone
      last_done = done;
      ++calls;
    };
    ex.parallel_for(40, [](std::size_t) {}, options);
    EXPECT_EQ(last_done, 40u) << "jobs=" << jobs;
    EXPECT_EQ(calls, 40u) << "jobs=" << jobs;
  }
}

TEST(Executor, MapReduceFoldsInIndexOrderForAnyJobsCount) {
  const auto spell = [](std::size_t i) { return std::to_string(i) + ";"; };
  const auto concat = [](std::string acc, std::string x) { return acc + x; };
  Executor seq(1);
  Executor par(4);
  const std::string a = map_reduce(seq, 30, std::string{}, spell, concat);
  const std::string b = map_reduce(par, 30, std::string{}, spell, concat);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.substr(0, 8), "0;1;2;3;");
}

TEST(Executor, MapReduceSums) {
  Executor ex(4);
  const int total = map_reduce(
      ex, 100, 0, [](std::size_t i) { return static_cast<int>(i); },
      [](int acc, int x) { return acc + x; });
  EXPECT_EQ(total, 4950);
}

}  // namespace
}  // namespace tokenring::exec
