#include "tokenring/analysis/latency.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/config.hpp"

namespace tokenring::analysis {
namespace {

TtpParams params(int stations) {
  TtpParams p;
  p.ring = net::fddi_ring(stations);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

msg::SyncStream stream(Seconds period, Bits payload, int station) {
  return msg::SyncStream{period, payload, station};
}

TEST(TtpLatency, VisitsAndBoundByHand) {
  // P = 100 ms, TTRT = 10 ms -> q = 10, h = C/9 + ovhd. A message needing
  // exactly its allocation drains in 9 visits -> bound = 10 * TTRT = P.
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const auto s = stream(milliseconds(100), 90'000.0, 0);
  const auto b = ttp_response_bound(s, p, bw, milliseconds(10));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->visits, 9);
  EXPECT_NEAR(b->response_bound, milliseconds(100), 1e-12);
  EXPECT_NEAR(b->slack, 0.0, 1e-12);
}

TEST(TtpLatency, LocalAllocationAlwaysUsesQMinusOneVisits) {
  // The local scheme allocates the minimum bandwidth, so even a tiny
  // message trickles out over q-1 = 9 visits; the bound is q * TTRT.
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const auto s = stream(milliseconds(100), 100.0, 0);
  const auto b = ttp_response_bound(s, p, bw, milliseconds(10));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->visits, 9);
  EXPECT_NEAR(b->response_bound, milliseconds(100), 1e-12);
}

TEST(TtpLatency, GenerousAllocationCutsVisits) {
  // Latency-oriented provisioning: with h large enough to drain the whole
  // message in one visit the bound shrinks to 2*TTRT (one Johnson
  // inter-visit gap).
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const auto s = stream(milliseconds(100), 100.0, 0);
  const Seconds h =
      s.payload_time(bw) + p.frame.overhead_time(bw) + microseconds(1);
  const auto b = ttp_response_bound_with_h(s, h, p, bw, milliseconds(10));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->visits, 1);
  EXPECT_NEAR(b->response_bound, milliseconds(20), 1e-12);
  // Useless allocation: h below the frame overhead carries nothing.
  EXPECT_FALSE(ttp_response_bound_with_h(s, p.frame.overhead_time(bw) / 2.0,
                                         p, bw, milliseconds(10))
                   .has_value());
}

TEST(TtpLatency, ZeroPayloadZeroVisits) {
  const auto p = params(2);
  const auto b = ttp_response_bound(stream(milliseconds(100), 0.0, 0), p,
                                    mbps(100), milliseconds(10));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->visits, 0);
}

TEST(TtpLatency, InfeasibleTtrtGivesNoBound) {
  const auto p = params(2);
  EXPECT_FALSE(ttp_response_bound(stream(milliseconds(100), 1'000.0, 0), p,
                                  mbps(100), milliseconds(60))
                   .has_value());
}

TEST(TtpLatency, ReportCoversEveryStream) {
  const auto p = params(4);
  const BitsPerSecond bw = mbps(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(20), 10'000.0, 0));
  set.add(stream(milliseconds(50), 40'000.0, 1));
  set.add(stream(milliseconds(90), 80'000.0, 3));
  const auto report = ttp_latency_report(set, p, bw);
  ASSERT_EQ(report.size(), 3u);
  for (const auto& b : report) {
    EXPECT_TRUE(std::isfinite(b.response_bound));
    EXPECT_GT(b.visits, 0);
    // Guaranteed streams have the bound inside the deadline.
    EXPECT_GE(b.slack, 0.0);
  }
}

TEST(TtpLatency, BoundWithinDeadlineIffLocalSchemeGuarantees) {
  // The local allocation is built so that q_i - 1 visits always fit in the
  // period; the (k+1)*TTRT bound with k <= q_i - 1 must then sit within the
  // deadline.
  Rng rng(3);
  msg::GeneratorConfig g;
  g.num_streams = 10;
  msg::MessageSetGenerator gen(g);
  const auto p = params(10);
  const BitsPerSecond bw = mbps(100);
  for (int trial = 0; trial < 10; ++trial) {
    const auto set = gen.generate(rng).scaled(rng.uniform(1.0, 100.0));
    for (const auto& b : ttp_latency_report(set, p, bw)) {
      if (std::isfinite(b.response_bound)) {
        EXPECT_LE(b.response_bound, b.stream.period + 1e-9)
            << "trial " << trial;
      }
    }
  }
}

TEST(TtpLatency, SimulatedResponsesNeverExceedBound) {
  // Hard-bound property: simulate feasible sets under adversarial phasing
  // and saturating async; every observed response <= its stream's bound.
  Rng rng(17);
  msg::GeneratorConfig g;
  g.num_streams = 8;
  g.mean_period = milliseconds(60);
  msg::MessageSetGenerator gen(g);
  const auto p = params(8);
  const BitsPerSecond bw = mbps(100);

  int validated = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const auto base = gen.generate(rng);
    const auto predicate = [&](const msg::MessageSet& m) {
      return ttp_feasible(m, p, bw);
    };
    const auto sat = breakdown::find_saturation(base, predicate, bw);
    if (!sat.found) continue;
    const auto set = base.scaled(sat.critical_scale * 0.95);
    const Seconds ttrt = select_ttrt(set, p.ring, bw);

    sim::SimConfig cfg;
    cfg.protocol = sim::Protocol::kTtp;
    cfg.ttp = p;
    cfg.bandwidth = bw;
    cfg.ttrt = ttrt;
    cfg.horizon = 4.0 * set.max_period();
    cfg.worst_case_phasing = true;
    cfg.async_model = sim::AsyncModel::kSaturating;
    for (const auto& s : set.streams()) {
      cfg.sync_bandwidth_per_stream.push_back(
          ttp_local_bandwidth(s, p, bw, ttrt).value());
    }
    const auto metrics = sim::run_simulation(set, cfg);

    for (const auto& s : set.streams()) {
      const auto bound = ttp_response_bound(s, p, bw, ttrt);
      ASSERT_TRUE(bound.has_value());
      const auto it = metrics.per_station.find(s.station);
      if (it != metrics.per_station.end() && it->second.completed > 0) {
        EXPECT_LE(it->second.response_time.max(),
                  bound->response_bound + 1e-9)
            << "station " << s.station << " trial " << trial;
        ++validated;
      }
    }
  }
  EXPECT_GT(validated, 0);
}

}  // namespace
}  // namespace tokenring::analysis
