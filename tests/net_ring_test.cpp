#include "tokenring/net/ring.hpp"

#include <gtest/gtest.h>

#include "tokenring/common/checks.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::net {
namespace {

TEST(RingParams, RingLength) {
  RingParams p = ieee8025_ring(100, 100.0);
  EXPECT_DOUBLE_EQ(p.ring_length_m(), 10'000.0);
}

TEST(RingParams, PropagationDelayAtThreeQuartersC) {
  RingParams p = ieee8025_ring(100, 100.0);
  // 10 km at 0.75c = 10e3 / 2.248e8 s ~= 44.47 us.
  EXPECT_NEAR(to_microseconds(p.propagation_delay()), 44.47, 0.05);
}

TEST(RingParams, PropagationIndependentOfBandwidth) {
  RingParams p = fddi_ring();
  EXPECT_DOUBLE_EQ(p.propagation_delay(), p.propagation_delay());
  // walk_time difference between bandwidths is exactly the latency part.
  const Seconds w1 = p.walk_time(mbps(1));
  const Seconds w2 = p.walk_time(mbps(100));
  EXPECT_NEAR(w1 - w2, p.ring_latency(mbps(1)) - p.ring_latency(mbps(100)),
              1e-15);
}

TEST(RingParams, RingLatencyScalesInverselyWithBandwidth) {
  RingParams p = ieee8025_ring(100);
  // 4 bits * 100 stations = 400 bits; at 1 Mbps that is 400 us.
  EXPECT_NEAR(to_microseconds(p.ring_latency(mbps(1))), 400.0, 1e-9);
  EXPECT_NEAR(to_microseconds(p.ring_latency(mbps(100))), 4.0, 1e-9);
}

TEST(RingParams, FddiLatencyUses75BitsPerStation) {
  RingParams p = fddi_ring(100);
  // 75 bits * 100 stations = 7500 bits; at 100 Mbps that is 75 us.
  EXPECT_NEAR(to_microseconds(p.ring_latency(mbps(100))), 75.0, 1e-9);
}

TEST(RingParams, ThetaDecomposition) {
  RingParams p = fddi_ring(100);
  const BitsPerSecond bw = mbps(100);
  EXPECT_NEAR(p.theta(bw),
              p.propagation_delay() + p.ring_latency(bw) + p.token_time(bw),
              1e-18);
}

TEST(RingParams, ThetaMonotoneDecreasingInBandwidth) {
  RingParams p = ieee8025_ring();
  Seconds prev = p.theta(mbps(1));
  for (double m : {2.0, 5.0, 10.0, 100.0, 1000.0}) {
    const Seconds cur = p.theta(mbps(m));
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  // Theta approaches the propagation-delay floor at high bandwidth.
  EXPECT_NEAR(p.theta(gbps(100)), p.propagation_delay(),
              p.propagation_delay() * 0.01);
}

TEST(RingParams, HopLatencySumsToWalkTime) {
  RingParams p = fddi_ring(64, 150.0);
  const BitsPerSecond bw = mbps(100);
  EXPECT_NEAR(64.0 * p.hop_latency(bw), p.walk_time(bw), 1e-15);
}

TEST(RingParams, TokenTime) {
  RingParams p = ieee8025_ring();
  EXPECT_NEAR(to_microseconds(p.token_time(mbps(1))), 24.0, 1e-9);
  RingParams f = fddi_ring();
  EXPECT_NEAR(to_microseconds(f.token_time(mbps(100))), 0.88, 1e-9);
}

TEST(RingParams, ValidateRejectsBadValues) {
  RingParams p = ieee8025_ring();
  p.num_stations = 1;
  EXPECT_THROW(p.validate(), PreconditionError);

  p = ieee8025_ring();
  p.station_spacing_m = 0.0;
  EXPECT_THROW(p.validate(), PreconditionError);

  p = ieee8025_ring();
  p.signal_speed_fraction = 1.5;
  EXPECT_THROW(p.validate(), PreconditionError);

  p = ieee8025_ring();
  p.per_station_bit_delay = -1.0;
  EXPECT_THROW(p.validate(), PreconditionError);

  p = ieee8025_ring();
  p.token_length_bits = 0.0;
  EXPECT_THROW(p.validate(), PreconditionError);

  EXPECT_NO_THROW(ieee8025_ring().validate());
  EXPECT_NO_THROW(fddi_ring().validate());
}

TEST(Standards, PaperSection6Values) {
  const RingParams ieee = ieee8025_ring();
  EXPECT_EQ(ieee.num_stations, 100);
  EXPECT_DOUBLE_EQ(ieee.station_spacing_m, 100.0);
  EXPECT_DOUBLE_EQ(ieee.signal_speed_fraction, 0.75);
  EXPECT_DOUBLE_EQ(ieee.per_station_bit_delay, 4.0);

  const RingParams fddi = fddi_ring();
  EXPECT_DOUBLE_EQ(fddi.per_station_bit_delay, 75.0);
  EXPECT_GT(fddi.token_length_bits, ieee.token_length_bits);
}

TEST(Standards, CustomSizing) {
  const RingParams p = fddi_ring(16, 200.0);
  EXPECT_EQ(p.num_stations, 16);
  EXPECT_DOUBLE_EQ(p.ring_length_m(), 3'200.0);
}

}  // namespace
}  // namespace tokenring::net
