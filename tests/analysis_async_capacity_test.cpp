#include "tokenring/analysis/async_capacity.hpp"

#include <gtest/gtest.h>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/config.hpp"

namespace tokenring::analysis {
namespace {

TtpParams ttp_params(int stations) {
  TtpParams p;
  p.ring = net::fddi_ring(stations);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

PdpParams pdp_params(int stations) {
  PdpParams p;
  p.ring = net::ieee8025_ring(stations);
  p.frame = net::paper_frame_format();
  p.variant = PdpVariant::kModified8025;
  return p;
}

msg::SyncStream stream(Seconds period, Bits payload, int station) {
  return msg::SyncStream{period, payload, station};
}

TEST(TtpAsyncCapacity, EmptyRingLeavesAlmostEverything) {
  const auto p = ttp_params(4);
  const BitsPerSecond bw = mbps(100);
  const Seconds ttrt = milliseconds(4);
  const double cap = ttp_async_capacity(msg::MessageSet{}, p, bw, ttrt);
  // Only the walk time Theta is lost per rotation.
  EXPECT_NEAR(cap, 1.0 - p.ring.theta(bw) / ttrt, 1e-12);
  EXPECT_GT(cap, 0.95);
}

TEST(TtpAsyncCapacity, DecreasesWithSynchronousLoad) {
  const auto p = ttp_params(4);
  const BitsPerSecond bw = mbps(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 100'000.0, 0));
  const double light = ttp_async_capacity(set, p, bw);
  const double heavy = ttp_async_capacity(set.scaled(10.0), p, bw);
  EXPECT_GT(light, heavy);
  EXPECT_GE(heavy, 0.0);
}

TEST(TtpAsyncCapacity, ClampsToZeroUnderOverload) {
  const auto p = ttp_params(2);
  const BitsPerSecond bw = mbps(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 5e6, 0));  // 50 ms of payload per 50 ms
  EXPECT_DOUBLE_EQ(ttp_async_capacity(set, p, bw), 0.0);
}

TEST(TtpAsyncCapacity, AccessBoundIsTwoTtrt) {
  EXPECT_DOUBLE_EQ(ttp_async_access_bound(milliseconds(4)), milliseconds(8));
  EXPECT_THROW(ttp_async_access_bound(0.0), PreconditionError);
}

TEST(TtpAsyncCapacity, MatchesSimulatedThroughput) {
  // The saturating-async simulator should achieve roughly the analytical
  // async share (it is a steady-state average, so allow a loose band).
  const auto p = ttp_params(4);
  const BitsPerSecond bw = mbps(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(20), 100'000.0, 0));
  set.add(stream(milliseconds(40), 150'000.0, 2));
  const Seconds ttrt = select_ttrt(set, p.ring, bw);
  const double predicted = ttp_async_capacity(set, p, bw, ttrt);
  ASSERT_GT(predicted, 0.1);

  sim::SimConfig cfg;
  cfg.protocol = sim::Protocol::kTtp;
  cfg.ttp = p;
  cfg.bandwidth = bw;
  cfg.ttrt = ttrt;
  cfg.horizon = 2.0;
  cfg.async_model = sim::AsyncModel::kSaturating;
  for (const auto& s : set.streams()) {
    cfg.sync_bandwidth_per_stream.push_back(
        ttp_local_bandwidth(s, p, bw, ttrt).value());
  }
  const auto m = sim::run_simulation(set, cfg);
  const double observed = static_cast<double>(m.async_frames_sent) *
                          p.async_frame.frame_time(bw) / cfg.horizon;
  EXPECT_NEAR(observed, predicted, 0.15) << "predicted " << predicted
                                         << " observed " << observed;
}

TEST(PdpAsyncCapacity, EmptyRingIsFullyAsync) {
  EXPECT_DOUBLE_EQ(pdp_async_capacity(msg::MessageSet{}, pdp_params(4), mbps(10)),
                   1.0);
}

TEST(PdpAsyncCapacity, AccountsForAugmentedDemand) {
  const auto p = pdp_params(4);
  const BitsPerSecond bw = mbps(10);
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 50'000.0, 0));
  const double cap = pdp_async_capacity(set, p, bw);
  // Leftover must be below the raw-payload leftover (overheads count)...
  EXPECT_LT(cap, 1.0 - set.utilization(bw));
  // ...and match 1 - augmented utilization exactly.
  EXPECT_NEAR(cap, 1.0 - pdp_augmented_length(set[0], p, bw) / set[0].period,
              1e-12);
}

TEST(PdpAsyncCapacity, ClampsToZero) {
  const auto p = pdp_params(2);
  msg::MessageSet set;
  set.add(stream(milliseconds(10), 200'000.0, 0));  // 20 ms payload / 10 ms
  EXPECT_DOUBLE_EQ(pdp_async_capacity(set, p, mbps(10)), 0.0);
}

TEST(PdpAsyncCapacity, StandardVariantLeavesLessThanModified) {
  auto p_std = pdp_params(4);
  p_std.variant = PdpVariant::kStandard8025;
  auto p_mod = pdp_params(4);
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 50'000.0, 0));
  set.add(stream(milliseconds(80), 50'000.0, 1));
  const BitsPerSecond bw = mbps(10);
  EXPECT_LT(pdp_async_capacity(set, p_std, bw),
            pdp_async_capacity(set, p_mod, bw));
}

}  // namespace
}  // namespace tokenring::analysis
