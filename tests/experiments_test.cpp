// Tests for the experiment drivers. Sample counts are kept tiny: these
// tests pin the drivers' mechanics and the headline qualitative shapes, not
// publication-grade statistics (the bench binaries do that).

#include <gtest/gtest.h>

#include <cmath>

#include "tokenring/common/checks.hpp"
#include "tokenring/experiments/allocation_study.hpp"
#include "tokenring/experiments/crossover_study.hpp"
#include "tokenring/experiments/fault_study.hpp"
#include "tokenring/experiments/deadline_study.hpp"
#include "tokenring/experiments/distribution_study.hpp"
#include "tokenring/experiments/fig1.hpp"
#include "tokenring/experiments/frame_size_study.hpp"
#include "tokenring/experiments/setup.hpp"
#include "tokenring/experiments/sim_validation_study.hpp"
#include "tokenring/experiments/station_count_study.hpp"
#include "tokenring/experiments/ttrt_study.hpp"

namespace tokenring::experiments {
namespace {

PaperSetup small_setup() {
  PaperSetup s;
  s.num_stations = 16;
  return s;
}

// ---- setup -----------------------------------------------------------------

TEST(Setup, GeneratorConfigEchoesFields) {
  const auto g = small_setup().generator_config();
  EXPECT_EQ(g.num_streams, 16);
  EXPECT_DOUBLE_EQ(g.mean_period, milliseconds(100));
}

TEST(Setup, ParamsFollowStandards) {
  const auto setup = small_setup();
  EXPECT_DOUBLE_EQ(
      setup.pdp_params(analysis::PdpVariant::kStandard8025).ring
          .per_station_bit_delay,
      4.0);
  EXPECT_DOUBLE_EQ(setup.ttp_params().ring.per_station_bit_delay, 75.0);
  EXPECT_DOUBLE_EQ(setup.ttp_params().frame.info_bits, 512.0);
}

TEST(Setup, PredicatesReactToScale) {
  const auto setup = small_setup();
  msg::MessageSetGenerator gen(setup.generator_config());
  Rng rng(1);
  const auto base = gen.generate(rng);
  const auto pdp =
      setup.pdp_predicate(analysis::PdpVariant::kModified8025, mbps(10));
  EXPECT_TRUE(pdp(base.scaled(0.01)));
  EXPECT_FALSE(pdp(base.scaled(1e6)));
  const auto ttp = setup.ttp_predicate(mbps(100));
  EXPECT_TRUE(ttp(base.scaled(0.01)));
  EXPECT_FALSE(ttp(base.scaled(1e6)));
}

TEST(Setup, EstimatePointDeterministic) {
  const auto setup = small_setup();
  const auto p = setup.ttp_predicate(mbps(100));
  const auto a = estimate_point(setup, p, mbps(100), 5, 3);
  const auto b = estimate_point(setup, p, mbps(100), 5, 3);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

// ---- Figure 1 ----------------------------------------------------------------

TEST(Fig1, ReproducesHeadlineShape) {
  Fig1Config config;
  config.setup = small_setup();
  config.bandwidths_mbps = {2, 5, 20, 100, 500};
  config.sets_per_point = 12;
  const auto rows = run_fig1(config);
  ASSERT_EQ(rows.size(), 5u);

  const auto obs = analyze_fig1(rows);
  EXPECT_TRUE(obs.modified_dominates_standard);
  EXPECT_TRUE(obs.pdp_non_monotone);
  EXPECT_EQ(obs.low_bandwidth_winner, "pdp");
  EXPECT_EQ(obs.high_bandwidth_winner, "ttp");
  EXPECT_GT(obs.ttp_crossover_mbps, 2.0);
  EXPECT_LE(obs.ttp_crossover_mbps, 100.0);
  // FDDI ends high; PDP ends low.
  EXPECT_GT(rows.back().fddi, 0.7);
  EXPECT_LT(rows.back().modified8025, 0.2);
}

TEST(Fig1, RowsCarryConfidenceIntervals) {
  Fig1Config config;
  config.setup = small_setup();
  config.bandwidths_mbps = {20};
  config.sets_per_point = 8;
  const auto rows = run_fig1(config);
  EXPECT_GT(rows[0].fddi_ci, 0.0);
  EXPECT_GT(rows[0].modified8025_ci, 0.0);
}

TEST(Fig1, Preconditions) {
  Fig1Config config;
  config.bandwidths_mbps = {};
  EXPECT_THROW(run_fig1(config), PreconditionError);
  EXPECT_THROW(analyze_fig1({Fig1Row{}}), PreconditionError);
}

// ---- TTRT study ----------------------------------------------------------------

TEST(TtrtStudy, SqrtRuleNearEmpiricalOptimum) {
  TtrtStudyConfig config;
  config.setup = small_setup();
  config.bandwidth_mbps = 100.0;
  config.sets_per_point = 15;
  const auto result = run_ttrt_study(config);
  ASSERT_EQ(result.rows.size(), config.ttrt_fractions.size());

  // The sqrt rule must beat the naive largest-valid-TTRT choice...
  EXPECT_GT(result.sqrt_rule_breakdown,
            result.rows.back().breakdown_mean);
  // ...and come close to the empirical grid optimum.
  EXPECT_GT(result.sqrt_rule_breakdown,
            0.9 * result.best_row.breakdown_mean);
  // The maximizer is an interior point (sensitivity!), not an endpoint.
  EXPECT_GT(result.best_row.fraction, config.ttrt_fractions.front());
  EXPECT_LT(result.best_row.fraction, config.ttrt_fractions.back());
}

TEST(TtrtStudy, RejectsBadFractions) {
  TtrtStudyConfig config;
  config.setup = small_setup();
  config.ttrt_fractions = {1.5};
  EXPECT_THROW(run_ttrt_study(config), PreconditionError);
}

// ---- frame size ------------------------------------------------------------------

TEST(FrameSizeStudy, OptimumGrowsWithBandwidth) {
  FrameSizeStudyConfig config;
  config.setup = small_setup();
  config.payload_bytes = {16, 64, 256, 1024};
  config.bandwidths_mbps = {4, 100};
  config.sets_per_point = 12;
  const auto rows = run_frame_size_study(config);
  ASSERT_EQ(rows.size(), 8u);
  // Larger frames pay off at higher bandwidth (F must stay above Theta).
  EXPECT_GE(best_payload_bytes(rows, 100.0), best_payload_bytes(rows, 4.0));
}

TEST(FrameSizeStudy, UnknownBandwidthThrows) {
  FrameSizeStudyConfig config;
  config.setup = small_setup();
  config.payload_bytes = {64};
  config.bandwidths_mbps = {4};
  config.sets_per_point = 2;
  const auto rows = run_frame_size_study(config);
  EXPECT_THROW(best_payload_bytes(rows, 999.0), PreconditionError);
}

// ---- distribution study ------------------------------------------------------------

TEST(DistributionStudy, WinnerStableAcrossParameterizations) {
  DistributionStudyConfig config;
  config.setup = small_setup();
  config.bandwidth_mbps = 200.0;  // deep in TTP territory
  config.mean_periods_ms = {50, 200};
  config.period_ratios = {2, 10};
  config.distributions = {msg::PeriodDistribution::kUniform};
  config.sets_per_point = 10;
  const auto rows = run_distribution_study(config);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& r : rows) {
    EXPECT_GT(r.fddi, std::max(r.ieee8025, r.modified8025))
        << "mean=" << r.mean_period_ms << " ratio=" << r.period_ratio;
  }
}

TEST(DistributionStudy, DistributionNames) {
  EXPECT_STREQ(to_string(msg::PeriodDistribution::kUniform), "uniform");
  EXPECT_STREQ(to_string(msg::PeriodDistribution::kLogUniform), "log-uniform");
  EXPECT_STREQ(to_string(msg::PeriodDistribution::kEqual), "equal");
}

// ---- station count ------------------------------------------------------------------

TEST(StationCountStudy, MorStationsHurtPdpMoreThanTtp) {
  StationCountStudyConfig config;
  config.setup = small_setup();
  config.bandwidth_mbps = 100.0;
  config.station_counts = {8, 64};
  config.sets_per_point = 10;
  const auto rows = run_station_count_study(config);
  ASSERT_EQ(rows.size(), 2u);
  const double pdp_drop = rows[0].modified8025 - rows[1].modified8025;
  const double ttp_drop = rows[0].fddi - rows[1].fddi;
  EXPECT_GT(pdp_drop, 0.0);
  EXPECT_GT(pdp_drop, ttp_drop);
}

// ---- allocation study ------------------------------------------------------------------

TEST(AllocationStudy, LocalDominatesEverySchemeAtEveryLevel) {
  AllocationStudyConfig config;
  config.setup = small_setup();
  config.utilization_levels = {0.1, 0.3, 0.5};
  config.sets_per_point = 30;
  const auto rows = run_allocation_study(config);

  for (double u : config.utilization_levels) {
    double local_fraction = -1.0;
    for (const auto& r : rows) {
      if (r.scheme == analysis::AllocationScheme::kLocal && r.utilization == u) {
        local_fraction = r.feasible_fraction;
      }
    }
    ASSERT_GE(local_fraction, 0.0);
    for (const auto& r : rows) {
      if (r.utilization == u) {
        EXPECT_LE(r.feasible_fraction, local_fraction + 1e-12)
            << to_string(r.scheme) << " at U=" << u;
      }
    }
  }
}

TEST(AllocationStudy, FractionsAreProbabilities) {
  AllocationStudyConfig config;
  config.setup = small_setup();
  config.utilization_levels = {0.2};
  config.sets_per_point = 10;
  for (const auto& r : run_allocation_study(config)) {
    EXPECT_GE(r.feasible_fraction, 0.0);
    EXPECT_LE(r.feasible_fraction, 1.0);
  }
}

TEST(WorstCaseStudy, BoundHolds) {
  WorstCaseStudyConfig config;
  config.setup = small_setup();
  config.num_sets = 25;
  const auto result = run_worst_case_study(config);
  EXPECT_EQ(result.bound_violations, 0u);
  EXPECT_GT(result.analytical_bound, 0.25);   // near 1/3 at 100 Mbps
  EXPECT_LE(result.analytical_bound, 1.0 / 3.0 + 1e-12);
  // Every breakdown sample sits at or above the worst-case bound.
  EXPECT_GE(result.min_breakdown, result.analytical_bound - 1e-9);
  EXPECT_GE(result.mean_breakdown, result.min_breakdown);
}

// ---- deadline study ------------------------------------------------------------------

TEST(DeadlineStudy, TightDeadlinesHurtTtpMoreThanPdp) {
  DeadlineStudyConfig config;
  config.setup = small_setup();
  config.bandwidths_mbps = {100};
  config.deadline_fractions = {1.0, 0.3};
  config.sets_per_point = 12;
  const auto rows = run_deadline_study(config);
  ASSERT_EQ(rows.size(), 2u);
  const auto& implicit = rows[0];
  const auto& tight = rows[1];
  // Everyone loses capacity under tighter deadlines...
  EXPECT_LT(tight.modified8025, implicit.modified8025);
  EXPECT_LT(tight.fddi, implicit.fddi);
  // ...but the timed token loses a larger fraction (paper Section 7).
  const double pdp_retained = tight.modified8025 / implicit.modified8025;
  const double ttp_retained = tight.fddi / implicit.fddi;
  EXPECT_GT(pdp_retained, ttp_retained);
}

TEST(DeadlineStudy, ImplicitDeadlineRowMatchesPlainSetup) {
  DeadlineStudyConfig config;
  config.setup = small_setup();
  config.bandwidths_mbps = {100};
  config.deadline_fractions = {1.0};
  config.sets_per_point = 8;
  const auto rows = run_deadline_study(config);
  const auto plain = estimate_point(config.setup,
                                    config.setup.ttp_predicate(mbps(100)),
                                    mbps(100), 8, config.seed)
                         .mean();
  EXPECT_DOUBLE_EQ(rows[0].fddi, plain);
}

// ---- crossover study ------------------------------------------------------------------

TEST(CrossoverStudy, FindsInteriorCrossoverAtPaperishParameters) {
  CrossoverStudyConfig config;
  config.station_counts = {16};
  config.mean_periods_ms = {100};
  config.sets_per_point = 10;
  config.iterations = 8;
  const auto rows = run_crossover_study(config);
  ASSERT_EQ(rows.size(), 1u);
  const auto& r = rows[0];
  // The crossover is interior and in the paper's "1-10 vs 100" gap.
  EXPECT_GT(r.crossover_mbps, config.bw_low_mbps);
  EXPECT_LT(r.crossover_mbps, 200.0);
  // At the crossover the two protocols are within Monte Carlo noise.
  EXPECT_NEAR(r.pdp_at_crossover, r.ttp_at_crossover,
              0.15 * std::max(r.pdp_at_crossover, r.ttp_at_crossover));
}

TEST(CrossoverStudy, Preconditions) {
  CrossoverStudyConfig config;
  config.bw_high_mbps = config.bw_low_mbps;
  EXPECT_THROW(run_crossover_study(config), PreconditionError);
}

// ---- fault study -----------------------------------------------------------------------

TEST(FaultStudy, ZeroFaultRowsAreCleanAndLossesHurtTtpMore) {
  FaultStudyConfig config;
  config.setup.num_stations = 8;
  config.fault_counts = {0, 8};
  config.sets_per_point = 2;
  config.horizon_periods = 4.0;
  const auto rows = run_fault_study(config);
  ASSERT_EQ(rows.size(), 4u);  // 2 protocols x 1 kind x 2 counts

  double ttp_at_loss = -1.0;
  double pdp_at_loss = -1.0;
  for (const auto& r : rows) {
    EXPECT_EQ(r.kind, fault::FaultKind::kTokenLoss);
    if (r.faults == 0) {
      EXPECT_DOUBLE_EQ(r.miss_ratio, 0.0) << r.protocol;
      EXPECT_DOUBLE_EQ(r.outage, 0.0) << r.protocol;
    } else if (r.protocol == "fddi") {
      ttp_at_loss = r.miss_ratio;
      EXPECT_GT(r.outage, milliseconds(0.1));
    } else {
      pdp_at_loss = r.miss_ratio;
    }
  }
  // FDDI's claim-process outage costs at least as much as the 802.5
  // monitor's (usually strictly more).
  EXPECT_GE(ttp_at_loss, pdp_at_loss);
}

TEST(FaultStudy, SweepsKindsAndIsBitIdenticalAcrossJobs) {
  FaultStudyConfig config;
  config.setup.num_stations = 8;
  config.kinds = {fault::FaultKind::kTokenLoss,
                  fault::FaultKind::kFrameCorruption,
                  fault::FaultKind::kStationCrash};
  config.fault_counts = {0, 4};
  config.sets_per_point = 2;
  config.horizon_periods = 4.0;

  config.jobs = 1;
  const auto sequential = run_fault_study(config);
  ASSERT_EQ(sequential.size(), 12u);  // 2 protocols x 3 kinds x 2 counts

  config.jobs = 4;
  const auto parallel = run_fault_study(config);
  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].protocol, parallel[i].protocol);
    EXPECT_EQ(sequential[i].kind, parallel[i].kind);
    EXPECT_EQ(sequential[i].faults, parallel[i].faults);
    // Bit-identical, not approximately equal: plans come from per-trial
    // seed streams and the fold is in index order.
    EXPECT_EQ(sequential[i].miss_ratio, parallel[i].miss_ratio);
    EXPECT_EQ(sequential[i].attributed_ratio, parallel[i].attributed_ratio);
    EXPECT_EQ(sequential[i].outage, parallel[i].outage);
  }

  // Corruption's wasted slot is far cheaper than a full token-loss
  // recovery on the FDDI side.
  double loss_outage = 0.0, corruption_outage = 0.0;
  for (const auto& r : sequential) {
    if (r.protocol != "fddi" || r.faults == 0) continue;
    if (r.kind == fault::FaultKind::kTokenLoss) loss_outage = r.outage;
    if (r.kind == fault::FaultKind::kFrameCorruption) {
      corruption_outage = r.outage;
    }
  }
  EXPECT_GT(loss_outage, corruption_outage);
}

// ---- simulation validation ------------------------------------------------------------

TEST(SimValidationStudy, SoundOnSmallSample) {
  SimValidationConfig config;
  config.setup.num_stations = 8;
  config.bandwidths_mbps = {100};
  config.sets_per_point = 3;
  const auto rows = run_sim_validation(config);
  ASSERT_EQ(rows.size(), 3u);  // 2 PDP variants + TTP
  for (const auto& r : rows) {
    EXPECT_EQ(r.false_negatives, 0u) << r.protocol;
    EXPECT_EQ(r.johnson_violations, 0u) << r.protocol;
    if (r.protocol == "fddi" && r.sets_tested > 0) {
      EXPECT_GT(r.max_intervisit_ratio, 0.0);
      EXPECT_LE(r.max_intervisit_ratio, 2.0 + 1e-9);
    }
  }
}

TEST(SimValidationStudy, Preconditions) {
  SimValidationConfig config;
  config.outside_scale = 0.5;
  EXPECT_THROW(run_sim_validation(config), PreconditionError);
}

}  // namespace
}  // namespace tokenring::experiments
