// Sporadic-arrival extension tests: streams with minimum inter-arrival P
// and uniform extra jitter. The analyses' guarantees carry over (periodic
// is the worst case), and the simulators must honour both the guarantee and
// the slower release rate.

#include <gtest/gtest.h>

#include "tokenring/common/checks.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/workload.hpp"

namespace tokenring::sim {
namespace {

msg::MessageSet demo_set() {
  msg::MessageSet set;
  set.add({.period = milliseconds(20), .payload_bits = 10'000.0, .station = 0});
  set.add({.period = milliseconds(40), .payload_bits = 30'000.0, .station = 2});
  return set;
}

analysis::TtpParams ttp_params() {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(4);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

analysis::PdpParams pdp_params() {
  analysis::PdpParams p;
  p.ring = net::ieee8025_ring(4);
  p.frame = net::paper_frame_format();
  p.variant = analysis::PdpVariant::kModified8025;
  return p;
}

TEST(Sporadic, JitterSlowsReleases) {
  const auto set = demo_set();
  auto cfg = make_sim_config(set, pdp_params(), mbps(16), 20.0);
  const auto periodic = run_simulation(set, cfg);
  cfg.arrival_jitter = 0.5;  // inter-arrival in [P, 1.5P]
  const auto sporadic = run_simulation(set, cfg);
  EXPECT_LT(sporadic.messages_released, periodic.messages_released);
  // Expected slowdown ~ 1/1.25; allow a wide band.
  EXPECT_GT(sporadic.messages_released,
            periodic.messages_released * 6 / 10);
}

TEST(Sporadic, GuaranteesSurviveJitterPdp) {
  // Analysis accepts the periodic worst case => the sporadic run (less
  // demand in every window) must be clean too.
  const auto set = demo_set();
  ASSERT_TRUE(analysis::pdp_feasible(set, pdp_params(), mbps(16)));
  auto cfg = make_sim_config(set, pdp_params(), mbps(16), 20.0);
  cfg.arrival_jitter = 0.8;
  cfg.seed = 5;
  const auto m = run_simulation(set, cfg);
  EXPECT_GT(m.messages_completed, 10u);
  EXPECT_EQ(m.deadline_misses, 0u);
}

TEST(Sporadic, GuaranteesSurviveJitterTtp) {
  const auto set = demo_set();
  const auto p = ttp_params();
  ASSERT_TRUE(analysis::ttp_feasible(set, p, mbps(100)));
  auto cfg = make_sim_config(set, p, mbps(100), 20.0);
  cfg.arrival_jitter = 0.8;
  cfg.seed = 5;
  const auto m = run_simulation(set, cfg);
  EXPECT_GT(m.messages_completed, 10u);
  EXPECT_EQ(m.deadline_misses, 0u);
}

TEST(Sporadic, ZeroJitterIsExactlyPeriodic) {
  const auto set = demo_set();
  auto cfg = make_sim_config(set, pdp_params(), mbps(16), 10.0);
  cfg.arrival_jitter = 0.0;
  const auto a = run_simulation(set, cfg);
  const auto b = run_simulation(set, cfg);
  EXPECT_EQ(a.messages_released, b.messages_released);
  EXPECT_DOUBLE_EQ(a.response_time.mean(), b.response_time.mean());
}

TEST(Sporadic, NegativeJitterRejected) {
  const auto set = demo_set();
  auto cfg = make_sim_config(set, pdp_params(), mbps(16));
  cfg.arrival_jitter = -0.1;
  EXPECT_THROW(make_simulator(set, cfg), PreconditionError);
  auto tcfg = make_sim_config(set, ttp_params(), mbps(100));
  tcfg.arrival_jitter = -0.1;
  EXPECT_THROW(make_simulator(set, tcfg), PreconditionError);
}

}  // namespace
}  // namespace tokenring::sim
