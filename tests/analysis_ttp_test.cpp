#include "tokenring/analysis/ttp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::analysis {
namespace {

TtpParams params(int stations = 100) {
  TtpParams p;
  p.ring = net::fddi_ring(stations);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

msg::SyncStream stream(Seconds period, Bits payload, int station = 0) {
  return msg::SyncStream{period, payload, station};
}

// ---- TTRT selection -----------------------------------------------------------

TEST(Ttrt, BidIsSqrtThetaPeriod) {
  // When sqrt(Theta*P) < P/2 the bid is the geometric mean.
  const Seconds theta = microseconds(100);
  const Seconds period = milliseconds(100);
  EXPECT_NEAR(ttrt_bid(period, theta), std::sqrt(theta * period), 1e-15);
}

TEST(Ttrt, BidClampsToHalfPeriod) {
  // sqrt(Theta*P) > P/2 when Theta > P/4.
  const Seconds theta = milliseconds(40);
  const Seconds period = milliseconds(100);
  EXPECT_DOUBLE_EQ(ttrt_bid(period, theta), milliseconds(50));
}

TEST(Ttrt, SelectionTakesMinimumBid) {
  msg::MessageSet set;
  set.add(stream(milliseconds(20), 1.0, 0));
  set.add(stream(milliseconds(100), 1.0, 1));
  const auto ring = net::fddi_ring(2);
  const BitsPerSecond bw = mbps(100);
  const Seconds theta = ring.theta(bw);
  EXPECT_NEAR(select_ttrt(set, ring, bw),
              std::min(ttrt_bid(milliseconds(20), theta),
                       ttrt_bid(milliseconds(100), theta)),
              1e-15);
  // Minimum bid belongs to the shortest period.
  EXPECT_NEAR(select_ttrt(set, ring, bw), ttrt_bid(milliseconds(20), theta),
              1e-15);
}

TEST(Ttrt, MaxValidTtrtIsHalfMinPeriod) {
  msg::MessageSet set;
  set.add(stream(milliseconds(30), 1.0, 0));
  set.add(stream(milliseconds(20), 1.0, 1));
  EXPECT_DOUBLE_EQ(max_valid_ttrt(set), milliseconds(10));
}

TEST(Ttrt, SelectedTtrtAlwaysValid) {
  Rng rng(3);
  msg::GeneratorConfig g;
  g.num_streams = 50;
  msg::MessageSetGenerator gen(g);
  const auto ring = net::fddi_ring(50);
  for (double bw_mbps : {1.0, 10.0, 100.0, 1000.0}) {
    const auto set = gen.generate(rng);
    const Seconds ttrt = select_ttrt(set, ring, mbps(bw_mbps));
    EXPECT_LE(ttrt, max_valid_ttrt(set) + 1e-15);
    EXPECT_GT(ttrt, 0.0);
  }
}

TEST(Ttrt, Preconditions) {
  EXPECT_THROW(ttrt_bid(0.0, 1e-6), PreconditionError);
  EXPECT_THROW(ttrt_bid(1.0, 0.0), PreconditionError);
  msg::MessageSet empty;
  EXPECT_THROW(select_ttrt(empty, net::fddi_ring(2), mbps(10)),
               PreconditionError);
  EXPECT_THROW(max_valid_ttrt(empty), PreconditionError);
}

// ---- Lambda and bandwidth allocation -------------------------------------------

TEST(TtpLambda, ThetaPlusAsyncFrame) {
  const auto p = params();
  const BitsPerSecond bw = mbps(100);
  EXPECT_NEAR(ttp_lambda(p, bw),
              p.ring.theta(bw) + p.async_frame.frame_time(bw), 1e-18);
}

TEST(TtpLambda, DecreasesWithBandwidth) {
  const auto p = params();
  EXPECT_GT(ttp_lambda(p, mbps(1)), ttp_lambda(p, mbps(10)));
  EXPECT_GT(ttp_lambda(p, mbps(10)), ttp_lambda(p, mbps(100)));
}

TEST(TtpLocalBandwidth, FormulaByHand) {
  // P = 100 ms, TTRT = 10 ms -> q = 10; h = C/9 + F_ovhd.
  const auto p = params();
  const BitsPerSecond bw = mbps(100);
  const auto s = stream(milliseconds(100), 90'000.0);
  const Seconds c = transmission_time(90'000.0, bw);  // 0.9 ms
  const auto h = ttp_local_bandwidth(s, p, bw, milliseconds(10));
  ASSERT_TRUE(h.has_value());
  EXPECT_NEAR(*h, c / 9.0 + p.frame.overhead_time(bw), 1e-15);
}

TEST(TtpLocalBandwidth, ExactPeriodMultipleUsesFloor) {
  // P = 100 ms, TTRT = 50 ms -> q = 2, h = C/1 + ovhd.
  const auto p = params();
  const BitsPerSecond bw = mbps(100);
  const auto s = stream(milliseconds(100), 1'000.0);
  const auto h = ttp_local_bandwidth(s, p, bw, milliseconds(50));
  ASSERT_TRUE(h.has_value());
  EXPECT_NEAR(*h, s.payload_time(bw) + p.frame.overhead_time(bw), 1e-15);
}

TEST(TtpLocalBandwidth, QBelowTwoIsInfeasible) {
  const auto p = params();
  // P = 100 ms, TTRT = 60 ms -> q = 1: no guarantee possible.
  const auto s = stream(milliseconds(100), 1'000.0);
  EXPECT_FALSE(ttp_local_bandwidth(s, p, mbps(100), milliseconds(60)));
}

// ---- Theorem 5.1 ----------------------------------------------------------------

TEST(TtpSchedulability, HandComputedBoundary) {
  // 2 stations, equal periods 100 ms, TTRT 10 ms, 100 Mbps.
  // q = 10; criterion: sum C_i/9 + 2*F_ovhd <= TTRT - Lambda.
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  const Seconds ttrt = milliseconds(10);
  const Seconds lambda = ttp_lambda(p, bw);
  const Seconds f_ovhd = p.frame.overhead_time(bw);
  const Seconds budget = ttrt - lambda - 2.0 * f_ovhd;  // total sum C_i/9

  // Build a set exactly at the boundary.
  const Seconds per_stream_c = budget * 9.0 / 2.0;
  msg::MessageSet set;
  set.add(stream(milliseconds(100), per_stream_c * bw, 0));
  set.add(stream(milliseconds(100), per_stream_c * bw, 1));

  EXPECT_TRUE(ttp_feasible_at(set, p, bw, ttrt));
  EXPECT_FALSE(ttp_feasible_at(set.scaled(1.0 + 1e-9), p, bw, ttrt));
}

TEST(TtpSchedulability, VerdictFieldsConsistent) {
  const auto p = params(3);
  const BitsPerSecond bw = mbps(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(40), 10'000.0, 0));
  set.add(stream(milliseconds(60), 20'000.0, 1));
  set.add(stream(milliseconds(90), 30'000.0, 2));
  const auto v = ttp_schedulable(set, p, bw);
  ASSERT_EQ(v.reports.size(), 3u);
  Seconds sum_h = 0.0;
  for (const auto& r : v.reports) {
    EXPECT_TRUE(r.deadline_feasible);
    EXPECT_EQ(r.q, static_cast<std::int64_t>(std::floor(r.stream.period / v.ttrt)));
    EXPECT_GT(r.h, 0.0);
    sum_h += r.h;
  }
  EXPECT_NEAR(v.allocated, sum_h, 1e-15);
  EXPECT_NEAR(v.available, v.ttrt - v.lambda, 1e-15);
  EXPECT_EQ(v.schedulable, v.allocated <= v.available);
}

TEST(TtpSchedulability, FeasibleMatchesFullVerdict) {
  Rng rng(7);
  msg::GeneratorConfig g;
  g.num_streams = 30;
  msg::MessageSetGenerator gen(g);
  const auto p = params(30);
  for (int trial = 0; trial < 40; ++trial) {
    const auto set = gen.generate(rng).scaled(rng.uniform(1.0, 500.0));
    const BitsPerSecond bw = mbps(rng.uniform(5.0, 500.0));
    EXPECT_EQ(ttp_feasible(set, p, bw), ttp_schedulable(set, p, bw).schedulable)
        << "trial " << trial;
  }
}

TEST(TtpSchedulability, MonotoneInScale) {
  Rng rng(9);
  msg::GeneratorConfig g;
  g.num_streams = 25;
  msg::MessageSetGenerator gen(g);
  const auto p = params(25);
  const BitsPerSecond bw = mbps(100);
  for (int trial = 0; trial < 20; ++trial) {
    const auto base = gen.generate(rng);
    bool prev = true;
    for (double scale : {1.0, 10.0, 100.0, 1'000.0, 10'000.0}) {
      const bool ok = ttp_feasible(base.scaled(scale), p, bw);
      if (!prev) {
        EXPECT_FALSE(ok);
      }
      prev = ok;
    }
  }
}

TEST(TtpSchedulability, TooShortPeriodForTtrtFails) {
  const auto p = params(2);
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 1'000.0, 0));
  set.add(stream(milliseconds(100), 1'000.0, 1));
  // Explicit TTRT of 60 ms makes q = 1 -> infeasible regardless of load.
  const auto v = ttp_schedulable_at(set, p, mbps(100), milliseconds(60));
  EXPECT_FALSE(v.schedulable);
  EXPECT_FALSE(v.reports[0].deadline_feasible);
}

TEST(TtpSchedulability, ZeroPayloadStillPaysFrameOverhead) {
  // Theorem 5.1 keeps the n*F_ovhd term even for empty messages: each
  // station's allocation must fit one frame header per usable visit.
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 0.0, 0));
  set.add(stream(milliseconds(100), 0.0, 1));
  const auto v = ttp_schedulable(set, p, bw);
  EXPECT_NEAR(v.allocated, 2.0 * p.frame.overhead_time(bw), 1e-15);
}

TEST(TtpCriticalScale, MatchesBisectionOnRandomSets) {
  // The closed form and the generic monotone bisection must locate the
  // same boundary.
  Rng rng(12);
  msg::GeneratorConfig g;
  g.num_streams = 20;
  msg::MessageSetGenerator gen(g);
  const auto p = params(20);
  for (int trial = 0; trial < 15; ++trial) {
    const auto base = gen.generate(rng);
    const BitsPerSecond bw = mbps(rng.uniform(20.0, 500.0));
    const Seconds ttrt = select_ttrt(base, p.ring, bw);
    const double closed = ttp_critical_scale(base, p, bw, ttrt);
    const auto bisect = breakdown::find_saturation(
        base,
        [&](const msg::MessageSet& m) {
          return ttp_feasible_at(m, p, bw, ttrt);
        },
        bw);
    ASSERT_TRUE(bisect.found) << "trial " << trial;
    EXPECT_NEAR(bisect.critical_scale, closed, closed * 1e-5)
        << "trial " << trial;
  }
}

TEST(TtpCriticalScale, BoundaryBehaviour) {
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 10'000.0, 0));
  set.add(stream(milliseconds(100), 10'000.0, 1));
  const Seconds ttrt = milliseconds(10);
  const double alpha = ttp_critical_scale(set, p, bw, ttrt);
  EXPECT_GT(alpha, 0.0);
  EXPECT_TRUE(ttp_feasible_at(set.scaled(alpha * 0.999999), p, bw, ttrt));
  EXPECT_FALSE(ttp_feasible_at(set.scaled(alpha * 1.000001), p, bw, ttrt));
}

TEST(TtpCriticalScale, DegenerateCases) {
  const auto p = params(2);
  const BitsPerSecond bw = mbps(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 10'000.0, 0));
  // q < 2 -> zero.
  EXPECT_DOUBLE_EQ(ttp_critical_scale(set, p, bw, milliseconds(60)), 0.0);
  // Zero payloads stay feasible forever -> infinity.
  msg::MessageSet zero;
  zero.add(stream(milliseconds(100), 0.0, 0));
  EXPECT_TRUE(std::isinf(ttp_critical_scale(zero, p, bw, milliseconds(10))));
  // At 1 Mbps with 100 stations the n*F_ovhd term alone kills it.
  const auto p100 = params(100);
  msg::MessageSet big;
  for (int i = 0; i < 100; ++i) {
    big.add(stream(milliseconds(100), 1'000.0, i));
  }
  EXPECT_DOUBLE_EQ(
      ttp_critical_scale(big, p100, mbps(1), milliseconds(9)), 0.0);
}

TEST(TtpWorstCase, ApproachesOneThird) {
  const auto p = params();
  // As bandwidth grows and TTRT >> Lambda, the bound approaches 1/3.
  const Seconds ttrt = milliseconds(4);
  const double bound = ttp_worst_case_utilization_bound(p, gbps(10), ttrt);
  EXPECT_GT(bound, 0.32);
  EXPECT_LE(bound, 1.0 / 3.0 + 1e-12);
}

TEST(TtpWorstCase, ZeroWhenOverheadSwallowsTtrt) {
  const auto p = params();
  // At 1 Mbps Lambda ~= 8.2 ms > TTRT = 1 ms.
  EXPECT_DOUBLE_EQ(ttp_worst_case_utilization_bound(p, mbps(1), milliseconds(1)),
                   0.0);
}

TEST(TtpSchedulability, Preconditions) {
  const auto p = params(2);
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 1.0, 0));
  EXPECT_THROW(ttp_schedulable_at(set, p, 0.0, milliseconds(1)),
               PreconditionError);
  EXPECT_THROW(ttp_schedulable_at(set, p, mbps(10), 0.0), PreconditionError);
  msg::MessageSet empty;
  EXPECT_THROW(ttp_schedulable(empty, p, mbps(10)), PreconditionError);
}

}  // namespace
}  // namespace tokenring::analysis
