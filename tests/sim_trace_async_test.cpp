// Tests for simulator tracing, per-station metrics, and the Poisson
// asynchronous-traffic model.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tokenring/common/checks.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/trace.hpp"

namespace tokenring::sim {
namespace {

msg::SyncStream stream(Seconds period, Bits payload, int station) {
  return msg::SyncStream{period, payload, station};
}

SimConfig pdp_config(int stations, BitsPerSecond bw) {
  SimConfig cfg;
  cfg.protocol = Protocol::kPdp;
  cfg.pdp.ring = net::ieee8025_ring(stations);
  cfg.pdp.frame = net::paper_frame_format();
  cfg.pdp.variant = analysis::PdpVariant::kModified8025;
  cfg.bandwidth = bw;
  cfg.horizon = milliseconds(200);
  cfg.async_model = AsyncModel::kNone;
  return cfg;
}

SimConfig ttp_config(int stations, BitsPerSecond bw, Seconds ttrt) {
  SimConfig cfg;
  cfg.protocol = Protocol::kTtp;
  cfg.ttp.ring = net::fddi_ring(stations);
  cfg.ttp.frame = net::paper_frame_format();
  cfg.ttp.async_frame = net::paper_frame_format();
  cfg.bandwidth = bw;
  cfg.ttrt = ttrt;
  cfg.horizon = milliseconds(200);
  cfg.async_model = AsyncModel::kNone;
  return cfg;
}

// ---- tracing ------------------------------------------------------------------

TEST(Trace, PdpEmitsLifecycleEvents) {
  auto cfg = pdp_config(2, mbps(10));
  std::vector<TraceRecord> records;
  CallbackSink sink([&](const TraceRecord& r) { records.push_back(r); });
  cfg.trace = &sink;
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 1'024.0, 0));
  run_simulation(set, cfg);

  const auto count = [&](TraceEventKind kind) {
    return std::count_if(records.begin(), records.end(),
                         [kind](const TraceRecord& r) { return r.kind == kind; });
  };
  // Arrivals at t = 0, 50, 100, 150, 200 ms (horizon inclusive); the last
  // message's frames would start past the horizon, so 4 complete.
  EXPECT_EQ(count(TraceEventKind::kMessageArrival), 5);
  EXPECT_EQ(count(TraceEventKind::kMessageComplete), 4);
  EXPECT_EQ(count(TraceEventKind::kSyncFrameStart), 8);   // 2 frames each
  EXPECT_EQ(count(TraceEventKind::kDeadlineMiss), 0);

  // Timestamps are non-decreasing and within the horizon.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].at + 1e-12, records[i - 1].at);
  }
  EXPECT_LE(records.back().at, cfg.horizon + 1e-12);
}

TEST(Trace, TtpEmitsTokenArrivals) {
  auto cfg = ttp_config(4, mbps(100), milliseconds(2));
  std::vector<TraceRecord> records;
  CallbackSink sink([&](const TraceRecord& r) { records.push_back(r); });
  cfg.trace = &sink;
  run_simulation(msg::MessageSet{}, cfg);
  const auto tokens = std::count_if(
      records.begin(), records.end(), [](const TraceRecord& r) {
        return r.kind == TraceEventKind::kTokenArrival;
      });
  // Idle ring at Theta per lap, 200 ms horizon: thousands of visits.
  EXPECT_GT(tokens, 1'000);
}

TEST(Trace, FormattingIsStable) {
  TraceRecord r;
  r.at = milliseconds(1.5);
  r.kind = TraceEventKind::kMessageComplete;
  r.station = 3;
  r.detail = milliseconds(0.25);
  const std::string line = format_trace_record(r);
  EXPECT_NE(line.find("1.5000 ms"), std::string::npos);
  EXPECT_NE(line.find("station   3"), std::string::npos);
  EXPECT_NE(line.find("complete"), std::string::npos);

  r.kind = TraceEventKind::kMessageArrival;
  r.detail = 512.0;
  EXPECT_NE(format_trace_record(r).find("512 bits"), std::string::npos);
}

TEST(Trace, KindNames) {
  EXPECT_STREQ(to_string(TraceEventKind::kMessageArrival), "arrival");
  EXPECT_STREQ(to_string(TraceEventKind::kDeadlineMiss), "DEADLINE-MISS");
  EXPECT_STREQ(to_string(TraceEventKind::kTokenArrival), "token");
}

// ---- per-station metrics ---------------------------------------------------------

TEST(PerStation, PdpSplitsByStation) {
  auto cfg = pdp_config(4, mbps(10));
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 512.0, 1));
  set.add(stream(milliseconds(100), 1'024.0, 3));
  const auto m = run_simulation(set, cfg);

  ASSERT_EQ(m.per_station.size(), 2u);
  ASSERT_TRUE(m.per_station.count(1));
  ASSERT_TRUE(m.per_station.count(3));
  EXPECT_EQ(m.per_station.at(1).released, 5u);  // t = 0..200 ms step 50
  EXPECT_EQ(m.per_station.at(3).released, 3u);  // t = 0, 100, 200 ms
  EXPECT_EQ(m.per_station.at(1).completed + m.per_station.at(3).completed,
            m.messages_completed);
  EXPECT_EQ(m.per_station.at(1).misses, 0u);
  // Aggregate response stats cover per-station ones.
  EXPECT_GE(m.response_time.max() + 1e-15,
            m.per_station.at(3).response_time.max());
}

TEST(PerStation, TtpAttributesMissesToStarvedStation) {
  auto cfg = ttp_config(4, mbps(100), milliseconds(2));
  msg::MessageSet set;
  set.add(stream(milliseconds(20), 10'000.0, 0));
  cfg.sync_bandwidth_per_stream.push_back(0.0);  // h = 0: starved
  const auto m = run_simulation(set, cfg);
  ASSERT_TRUE(m.per_station.count(0));
  EXPECT_GT(m.per_station.at(0).misses, 0u);
  EXPECT_EQ(m.per_station.at(0).completed, 0u);
}

// ---- Poisson asynchronous traffic ---------------------------------------------------

TEST(PoissonAsync, PdpSendsRoughlyRateTimesHorizon) {
  auto cfg = pdp_config(4, mbps(100));
  cfg.async_model = AsyncModel::kPoisson;
  cfg.async_frames_per_second = 500.0;  // per station
  cfg.horizon = 1.0;
  cfg.seed = 9;
  const auto m = run_simulation(msg::MessageSet{}, cfg);
  // 4 stations * 500 fps * 1 s = 2000 expected; allow generous slack.
  EXPECT_GT(m.async_frames_sent, 1'600u);
  EXPECT_LT(m.async_frames_sent, 2'400u);
}

TEST(PoissonAsync, PdpPoissonLighterThanSaturating) {
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 10'240.0, 0));
  auto cfg = pdp_config(4, mbps(10));
  cfg.horizon = milliseconds(500);

  cfg.async_model = AsyncModel::kSaturating;
  const auto sat = run_simulation(set, cfg);
  cfg.async_model = AsyncModel::kPoisson;
  cfg.async_frames_per_second = 100.0;
  const auto poi = run_simulation(set, cfg);

  EXPECT_GT(sat.async_frames_sent, poi.async_frames_sent);
  // Lighter cross-traffic => no worse sync response.
  EXPECT_LE(poi.response_time.mean(), sat.response_time.mean() + 1e-9);
}

TEST(PoissonAsync, TtpConsumesOnlyQueuedFrames) {
  auto cfg = ttp_config(4, mbps(100), milliseconds(2));
  cfg.async_model = AsyncModel::kPoisson;
  cfg.async_frames_per_second = 200.0;
  cfg.horizon = 1.0;
  cfg.seed = 4;
  const auto m = run_simulation(msg::MessageSet{}, cfg);
  // Expected arrivals: 4 * 200 = 800. All should eventually be served
  // (plenty of earliness on an idle ring), never more than arrived.
  EXPECT_GT(m.async_frames_sent, 600u);
  EXPECT_LT(m.async_frames_sent, 1'000u);
}

TEST(PoissonAsync, RateRequiredWhenModelIsPoisson) {
  auto cfg = pdp_config(2, mbps(10));
  cfg.async_model = AsyncModel::kPoisson;
  cfg.async_frames_per_second = 0.0;
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 512.0, 0));
  EXPECT_THROW(make_simulator(set, cfg), PreconditionError);

  auto tcfg = ttp_config(2, mbps(100), milliseconds(2));
  tcfg.async_model = AsyncModel::kPoisson;
  EXPECT_THROW(make_simulator(set, tcfg), PreconditionError);
}

TEST(PoissonAsync, ModelNames) {
  EXPECT_STREQ(to_string(AsyncModel::kNone), "none");
  EXPECT_STREQ(to_string(AsyncModel::kSaturating), "saturating");
  EXPECT_STREQ(to_string(AsyncModel::kPoisson), "poisson");
}

}  // namespace
}  // namespace tokenring::sim
