// Constrained-deadline (D <= P) extension tests. The paper's model has
// implicit deadlines (D = P); these tests pin both backwards compatibility
// (explicit D = P behaves identically) and the deadline-monotonic
// generalization across the analysis stack and the simulators.

#include <gtest/gtest.h>

#include "tokenring/analysis/latency.hpp"
#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/msg/io.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/workload.hpp"

namespace tokenring {
namespace {

msg::SyncStream stream(Seconds period, Bits payload, int station,
                       Seconds deadline = 0.0) {
  msg::SyncStream s{period, payload, station};
  s.relative_deadline = deadline;
  return s;
}

analysis::PdpParams pdp_params(int n) {
  analysis::PdpParams p;
  p.ring = net::ieee8025_ring(n);
  p.frame = net::paper_frame_format();
  p.variant = analysis::PdpVariant::kModified8025;
  return p;
}

analysis::TtpParams ttp_params(int n) {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(n);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

// ---- model ------------------------------------------------------------------

TEST(Deadline, DefaultsToThePeriod) {
  const auto s = stream(milliseconds(50), 100.0, 0);
  EXPECT_DOUBLE_EQ(s.deadline(), milliseconds(50));
  const auto d = stream(milliseconds(50), 100.0, 0, milliseconds(20));
  EXPECT_DOUBLE_EQ(d.deadline(), milliseconds(20));
}

TEST(Deadline, ValidationRejectsDeadlineBeyondPeriod) {
  auto s = stream(milliseconds(50), 100.0, 0, milliseconds(60));
  EXPECT_THROW(s.validate(), PreconditionError);
  s.relative_deadline = -1.0;
  EXPECT_THROW(s.validate(), PreconditionError);
  s.relative_deadline = milliseconds(50);  // D == P is fine
  EXPECT_NO_THROW(s.validate());
}

TEST(Deadline, SortOrderIsDeadlineMonotonic) {
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 1.0, 0));                    // D = 100
  set.add(stream(milliseconds(200), 2.0, 1, milliseconds(30)));  // D = 30
  const auto sorted = set.rm_sorted();
  EXPECT_EQ(sorted[0].station, 1);  // tighter deadline first
  EXPECT_EQ(sorted[1].station, 0);
}

// ---- analysis ----------------------------------------------------------------

TEST(Deadline, ExplicitDeadlineEqualToPeriodMatchesImplicit) {
  Rng rng(3);
  msg::GeneratorConfig g;
  g.num_streams = 12;
  msg::MessageSetGenerator gen(g);
  const auto pdp = pdp_params(12);
  const auto ttp = ttp_params(12);
  for (int trial = 0; trial < 10; ++trial) {
    const auto base = gen.generate(rng).scaled(rng.uniform(1.0, 60.0));
    std::vector<msg::SyncStream> explicit_streams = base.streams();
    for (auto& s : explicit_streams) s.relative_deadline = s.period;
    const msg::MessageSet explicit_set{std::move(explicit_streams)};
    const BitsPerSecond bw = mbps(rng.uniform(4.0, 200.0));

    EXPECT_EQ(analysis::pdp_feasible(base, pdp, bw),
              analysis::pdp_feasible(explicit_set, pdp, bw));
    EXPECT_EQ(analysis::ttp_feasible(base, ttp, bw),
              analysis::ttp_feasible(explicit_set, ttp, bw));
  }
}

TEST(Deadline, TighteningDeadlinesOnlyRemovesFeasibility) {
  Rng rng(7);
  msg::GeneratorConfig g;
  g.num_streams = 10;
  msg::MessageSetGenerator gen(g);
  const auto pdp = pdp_params(10);
  const auto ttp = ttp_params(10);
  int flips = 0;
  for (int trial = 0; trial < 20; ++trial) {
    // Sit just inside the implicit-deadline boundary so that tightening
    // the deadlines has something to bite.
    const BitsPerSecond bw = mbps(20);
    auto base = gen.generate(rng);
    const auto sat = breakdown::find_saturation(
        base,
        [&](const msg::MessageSet& m) {
          return analysis::pdp_feasible(m, pdp, bw);
        },
        bw);
    if (!sat.found) continue;
    base = base.scaled(sat.critical_scale * 0.9);
    std::vector<msg::SyncStream> tight_streams = base.streams();
    for (auto& s : tight_streams) s.relative_deadline = 0.6 * s.period;
    const msg::MessageSet tight{std::move(tight_streams)};

    if (analysis::pdp_feasible(tight, pdp, bw)) {
      EXPECT_TRUE(analysis::pdp_feasible(base, pdp, bw));
    } else if (analysis::pdp_feasible(base, pdp, bw)) {
      ++flips;  // tightened away — expected sometimes
    }
    if (analysis::ttp_feasible(tight, ttp, bw)) {
      EXPECT_TRUE(analysis::ttp_feasible(base, ttp, bw));
    }
  }
  EXPECT_GT(flips, 0) << "tightening never bit: test is vacuous";
}

TEST(Deadline, RtaComparesAgainstDeadlineNotPeriod) {
  // One task, cost 0.6, D = 0.5 < P = 1: infeasible; with D = 0.7 feasible.
  std::vector<analysis::FpTask> tasks = {{1.0, 0.6, 0.5}};
  EXPECT_FALSE(analysis::response_time_analysis(tasks, 0.0).schedulable);
  tasks[0].deadline = 0.7;
  EXPECT_TRUE(analysis::response_time_analysis(tasks, 0.0).schedulable);
  EXPECT_TRUE(analysis::lsd_point_test_all(tasks, 0.0).schedulable);
}

TEST(Deadline, LsdAgreesWithRtaUnderConstrainedDeadlines) {
  Rng rng(11);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    std::vector<analysis::FpTask> tasks;
    for (int i = 0; i < n; ++i) {
      analysis::FpTask t;
      t.period = rng.uniform(1.0, 50.0);
      t.deadline = t.period * rng.uniform(0.3, 1.0);
      t.cost = rng.uniform(0.0, 0.25) * t.deadline;
      tasks.push_back(t);
    }
    std::sort(tasks.begin(), tasks.end(),
              [](const analysis::FpTask& a, const analysis::FpTask& b) {
                return a.effective_deadline() < b.effective_deadline();
              });
    const Seconds blocking = rng.uniform(0.0, 0.1);
    EXPECT_EQ(analysis::response_time_analysis(tasks, blocking).schedulable,
              analysis::lsd_point_test_all(tasks, blocking).schedulable)
        << "trial " << trial;
  }
}

TEST(Deadline, TtpVisitsCountedWithinDeadlineWindow) {
  // P = 100 ms but D = 20 ms, TTRT = 5 ms: q = floor(20/5) = 4, so the
  // local allocation spreads the message over 3 visits, not 19.
  const auto p = ttp_params(4);
  const BitsPerSecond bw = mbps(100);
  const auto s = stream(milliseconds(100), 30'000.0, 0, milliseconds(20));
  const auto h = analysis::ttp_local_bandwidth(s, p, bw, milliseconds(5));
  ASSERT_TRUE(h.has_value());
  EXPECT_NEAR(*h, s.payload_time(bw) / 3.0 + p.frame.overhead_time(bw), 1e-15);

  const auto b = analysis::ttp_response_bound(s, p, bw, milliseconds(5));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->visits, 3);
  EXPECT_NEAR(b->response_bound, milliseconds(20), 1e-12);
  EXPECT_NEAR(b->slack, 0.0, 1e-12);
}

TEST(Deadline, TtrtSelectionUsesDeadlines) {
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 1.0, 0, milliseconds(10)));
  const auto ring = net::fddi_ring(2);
  const BitsPerSecond bw = mbps(100);
  // Bid is computed from D = 10 ms, not P = 100 ms.
  EXPECT_NEAR(analysis::select_ttrt(set, ring, bw),
              analysis::ttrt_bid(milliseconds(10), ring.theta(bw)), 1e-15);
  EXPECT_DOUBLE_EQ(analysis::max_valid_ttrt(set), milliseconds(5));
}

// ---- simulators ------------------------------------------------------------------

TEST(Deadline, PdpSimDetectsMissAgainstConstrainedDeadline) {
  // A message whose response (~0.9 ms) beats P = 100 ms comfortably but
  // violates D = 0.5 ms.
  const BitsPerSecond bw = mbps(1);
  sim::SimConfig cfg;
  cfg.protocol = sim::Protocol::kPdp;
  cfg.pdp = pdp_params(2);
  cfg.bandwidth = bw;
  cfg.horizon = milliseconds(50);
  cfg.async_model = sim::AsyncModel::kNone;

  msg::MessageSet loose;
  loose.add(stream(milliseconds(100), 512.0, 0));
  EXPECT_EQ(sim::run_simulation(loose, cfg).deadline_misses, 0u);

  msg::MessageSet tight;
  tight.add(stream(milliseconds(100), 512.0, 0, milliseconds(0.5)));
  const auto m = sim::run_simulation(tight, cfg);
  EXPECT_GT(m.deadline_misses, 0u);
}

TEST(Deadline, PdpSimPrefersTighterDeadlineAtEqualPeriods) {
  // Equal periods, different deadlines: the deadline-monotonic winner is
  // the D = 5 ms stream — it must never miss even though its station index
  // is higher.
  const BitsPerSecond bw = mbps(4);
  sim::SimConfig cfg;
  cfg.protocol = sim::Protocol::kPdp;
  cfg.pdp = pdp_params(4);
  cfg.bandwidth = bw;
  cfg.horizon = milliseconds(200);
  cfg.async_model = sim::AsyncModel::kNone;

  msg::MessageSet set;
  set.add(stream(milliseconds(50), 8'192.0, 0));                    // D = 50
  set.add(stream(milliseconds(50), 2'048.0, 3, milliseconds(5)));   // D = 5
  const auto m = sim::run_simulation(set, cfg);
  ASSERT_TRUE(m.per_station.count(3));
  EXPECT_EQ(m.per_station.at(3).misses, 0u);
  // The tight stream's responses stay within its 5 ms deadline.
  EXPECT_LE(m.per_station.at(3).response_time.max(), milliseconds(5) + 1e-9);
}

TEST(Deadline, TtpGuaranteeHoldsForConstrainedDeadlineSets) {
  // End-to-end: generate constrained-deadline sets, accept via Theorem 5.1
  // (deadline-window q), simulate adversarially — no misses allowed.
  Rng rng(19);
  msg::GeneratorConfig g;
  g.num_streams = 8;
  g.mean_period = milliseconds(60);
  g.deadline_fraction = 0.5;
  msg::MessageSetGenerator gen(g);
  const auto p = ttp_params(8);
  const BitsPerSecond bw = mbps(100);

  int validated = 0;
  for (int trial = 0; trial < 5; ++trial) {
    auto set = gen.generate(rng).scaled(10.0);
    // Shrink until feasible under the constrained deadlines.
    while (!analysis::ttp_feasible(set, p, bw)) set = set.scaled(0.5);
    auto cfg = sim::make_sim_config(set, p, bw, 4.0);
    cfg.async_model = sim::AsyncModel::kSaturating;
    const auto m = sim::run_simulation(set, cfg);
    EXPECT_EQ(m.deadline_misses, 0u) << "trial " << trial;
    EXPECT_GT(m.messages_completed, 0u);
    ++validated;
  }
  EXPECT_EQ(validated, 5);
}

// ---- scenario I/O -------------------------------------------------------------------

TEST(Deadline, CsvRoundTripsTheDeadlineColumn) {
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 1'000.0, 0, milliseconds(20)));
  set.add(stream(milliseconds(80), 2'000.0, 1));
  const std::string csv = msg::to_csv(set);
  EXPECT_NE(csv.find("deadline_ms"), std::string::npos);
  const auto parsed = msg::message_set_from_csv(csv);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed[0].relative_deadline, milliseconds(20));
  EXPECT_DOUBLE_EQ(parsed[1].relative_deadline, 0.0);
  EXPECT_DOUBLE_EQ(parsed[1].deadline(), milliseconds(80));
}

TEST(Deadline, PaperModelCsvStaysThreeColumns) {
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 1'000.0, 0));
  EXPECT_EQ(msg::to_csv(set).find("deadline_ms"), std::string::npos);
}

TEST(Deadline, FourColumnCsvParses) {
  const auto set = msg::message_set_from_csv(
      "station,period_ms,payload_bits,deadline_ms\n0,100,512,25\n");
  ASSERT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set[0].relative_deadline, milliseconds(25));
}

TEST(Deadline, InvalidDeadlineInCsvRejected) {
  EXPECT_THROW(msg::message_set_from_csv(
                   "station,period_ms,payload_bits,deadline_ms\n0,100,512,150\n"),
               msg::ParseError);
}

TEST(Deadline, GeneratorAppliesFraction) {
  msg::GeneratorConfig g;
  g.num_streams = 20;
  g.deadline_fraction = 0.4;
  msg::MessageSetGenerator gen(g);
  Rng rng(2);
  const auto set = gen.generate(rng);
  for (const auto& s : set.streams()) {
    EXPECT_NEAR(s.deadline(), 0.4 * s.period, 1e-15);
  }
  g.deadline_fraction = 1.5;
  EXPECT_THROW(msg::MessageSetGenerator{g}, PreconditionError);
}

}  // namespace
}  // namespace tokenring
