#include "tokenring/net/frame.hpp"

#include <gtest/gtest.h>

#include "tokenring/common/checks.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::net {
namespace {

TEST(FrameFormat, PaperDefaults) {
  const FrameFormat f = paper_frame_format();
  EXPECT_DOUBLE_EQ(f.info_bits, 512.0);
  EXPECT_DOUBLE_EQ(f.overhead_bits, 112.0);
  EXPECT_DOUBLE_EQ(f.total_bits(), 624.0);
}

TEST(FrameFormat, TimesAtBandwidth) {
  const FrameFormat f = paper_frame_format();
  EXPECT_NEAR(to_microseconds(f.frame_time(mbps(1))), 624.0, 1e-9);
  EXPECT_NEAR(to_microseconds(f.info_time(mbps(1))), 512.0, 1e-9);
  EXPECT_NEAR(to_microseconds(f.overhead_time(mbps(1))), 112.0, 1e-9);
  EXPECT_NEAR(to_microseconds(f.frame_time(mbps(100))), 6.24, 1e-9);
}

TEST(FrameFormat, FrameCountsBasic) {
  const FrameFormat f = paper_frame_format();
  EXPECT_EQ(f.full_frames(0.0), 0);
  EXPECT_EQ(f.frames_for_payload(0.0), 0);
  EXPECT_EQ(f.full_frames(1.0), 0);
  EXPECT_EQ(f.frames_for_payload(1.0), 1);
  EXPECT_EQ(f.full_frames(511.0), 0);
  EXPECT_EQ(f.frames_for_payload(511.0), 1);
}

TEST(FrameFormat, FrameCountsExactMultiple) {
  const FrameFormat f = paper_frame_format();
  EXPECT_EQ(f.full_frames(512.0), 1);
  EXPECT_EQ(f.frames_for_payload(512.0), 1);  // K == L
  EXPECT_EQ(f.full_frames(1024.0), 2);
  EXPECT_EQ(f.frames_for_payload(1024.0), 2);
}

TEST(FrameFormat, FrameCountsWithShortLastFrame) {
  const FrameFormat f = paper_frame_format();
  EXPECT_EQ(f.full_frames(513.0), 1);
  EXPECT_EQ(f.frames_for_payload(513.0), 2);  // K == L + 1
  EXPECT_EQ(f.full_frames(5'000.0), 9);
  EXPECT_EQ(f.frames_for_payload(5'000.0), 10);
}

TEST(FrameFormat, LastFramePayload) {
  const FrameFormat f = paper_frame_format();
  EXPECT_DOUBLE_EQ(f.last_frame_payload_bits(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.last_frame_payload_bits(512.0), 512.0);  // exact -> full
  EXPECT_DOUBLE_EQ(f.last_frame_payload_bits(513.0), 1.0);
  EXPECT_DOUBLE_EQ(f.last_frame_payload_bits(300.0), 300.0);
}

TEST(FrameFormat, NegativePayloadRejected) {
  const FrameFormat f = paper_frame_format();
  EXPECT_THROW(f.full_frames(-1.0), tokenring::PreconditionError);
  EXPECT_THROW(f.frames_for_payload(-1.0), tokenring::PreconditionError);
  EXPECT_THROW(f.last_frame_payload_bits(-1.0), tokenring::PreconditionError);
}

TEST(FrameFormat, ValidateRejectsBadGeometry) {
  FrameFormat f;
  f.info_bits = 0.0;
  EXPECT_THROW(f.validate(), tokenring::PreconditionError);
  f = paper_frame_format();
  f.overhead_bits = -1.0;
  EXPECT_THROW(f.validate(), tokenring::PreconditionError);
  EXPECT_NO_THROW(paper_frame_format().validate());
}

TEST(FrameFormat, CustomPayloadFactory) {
  const FrameFormat f = frame_format_with_payload_bytes(128);
  EXPECT_DOUBLE_EQ(f.info_bits, 1'024.0);
  EXPECT_DOUBLE_EQ(f.overhead_bits, 112.0);
}

}  // namespace
}  // namespace tokenring::net
