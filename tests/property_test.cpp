// Cross-module randomized property tests. Each property here is either an
// invariant the paper's analysis depends on, or a documented *non*-property
// (like the bandwidth anomaly) pinned as an executable fact.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tokenring/analysis/async_capacity.hpp"
#include "tokenring/analysis/fixed_priority.hpp"
#include "tokenring/analysis/kernels.hpp"
#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/exec/seed_stream.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/msg/io.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring {
namespace {

msg::MessageSetGenerator generator(int streams, Seconds mean = milliseconds(80),
                                   double ratio = 8.0) {
  msg::GeneratorConfig g;
  g.num_streams = streams;
  g.mean_period = mean;
  g.period_ratio = ratio;
  return msg::MessageSetGenerator(g);
}

analysis::PdpParams pdp_params(int n, analysis::PdpVariant v) {
  analysis::PdpParams p;
  p.ring = net::ieee8025_ring(n);
  p.frame = net::paper_frame_format();
  p.variant = v;
  return p;
}

analysis::TtpParams ttp_params(int n) {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(n);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

// ---- order invariance ----------------------------------------------------------

class OrderInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderInvariance, VerdictsIgnoreStreamOrder) {
  Rng rng(GetParam());
  auto gen = generator(12);
  const auto pdp = pdp_params(12, analysis::PdpVariant::kModified8025);
  const auto ttp = ttp_params(12);
  for (int trial = 0; trial < 10; ++trial) {
    const auto base = gen.generate(rng).scaled(rng.uniform(1.0, 60.0));
    const BitsPerSecond bw = mbps(rng.uniform(4.0, 200.0));

    std::vector<msg::SyncStream> shuffled = base.streams();
    std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
    const msg::MessageSet permuted{std::move(shuffled)};

    EXPECT_EQ(analysis::pdp_feasible(base, pdp, bw),
              analysis::pdp_feasible(permuted, pdp, bw));
    EXPECT_EQ(analysis::ttp_feasible(base, ttp, bw),
              analysis::ttp_feasible(permuted, ttp, bw));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderInvariance, ::testing::Values(1, 2, 3));

// ---- breakdown utilization bounds ------------------------------------------------

class BreakdownBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BreakdownBounds, SaturatedUtilizationIsAProperFraction) {
  Rng rng(GetParam());
  auto gen = generator(10);
  const auto pdp = pdp_params(10, analysis::PdpVariant::kStandard8025);
  const auto ttp = ttp_params(10);
  for (int trial = 0; trial < 8; ++trial) {
    const auto base = gen.generate(rng);
    const BitsPerSecond bw = mbps(rng.uniform(2.0, 500.0));
    for (const auto& predicate :
         {breakdown::SchedulablePredicate(
              [&](const msg::MessageSet& m) {
                return analysis::pdp_feasible(m, pdp, bw);
              }),
          breakdown::SchedulablePredicate([&](const msg::MessageSet& m) {
            return analysis::ttp_feasible(m, ttp, bw);
          })}) {
      const auto sat = breakdown::find_saturation(base, predicate, bw);
      if (sat.found) {
        EXPECT_GT(sat.breakdown_utilization, 0.0);
        EXPECT_LE(sat.breakdown_utilization, 1.0 + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BreakdownBounds, ::testing::Values(5, 7));

// ---- the bandwidth anomaly, pinned ------------------------------------------------
//
// Two complementary executable facts:
//  * For a FIXED message set, more bandwidth never hurts: every cost term
//    of Theorem 4.1 (C'_i, B) decreases with bandwidth, so feasibility is
//    monotone. The paper's anomaly is NOT about fixed sets.
//  * What falls with bandwidth is the breakdown *utilization*: at high
//    speed every frame still occupies a Theta-bound slot, so schedulable
//    sets carry an ever-smaller payload fraction.

class BandwidthMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthMonotone, FixedSetFeasibilityNeverDegradesWithBandwidth) {
  Rng rng(GetParam());
  auto gen = generator(12);
  const auto p = pdp_params(12, analysis::PdpVariant::kModified8025);
  int feasible_seen = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const auto set = gen.generate(rng).scaled(rng.uniform(1.0, 60.0));
    bool prev = false;
    for (double bw_mbps : {2.0, 5.0, 20.0, 100.0, 1000.0}) {
      const bool ok = analysis::pdp_feasible(set, p, mbps(bw_mbps));
      if (prev) {
        EXPECT_TRUE(ok) << "feasibility lost at " << bw_mbps << " Mbps";
      }
      prev = ok;
      feasible_seen += ok ? 1 : 0;
    }
  }
  EXPECT_GT(feasible_seen, 0);  // property must not hold vacuously
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthMonotone, ::testing::Values(41, 43));

TEST(BandwidthAnomaly, BreakdownUtilizationFallsWhileTtpRises) {
  // The paper's Figure 1 mechanism on a single payload direction.
  Rng rng(3);
  auto gen = generator(20, milliseconds(100), 10.0);
  const auto base = gen.generate(rng);
  const auto pdp = pdp_params(20, analysis::PdpVariant::kModified8025);
  const auto ttp = ttp_params(20);

  const auto breakdown_at = [&](const auto& params, auto feasible,
                                double bw_mbps) {
    const BitsPerSecond bw = mbps(bw_mbps);
    return breakdown::find_saturation(
               base,
               [&](const msg::MessageSet& m) {
                 return feasible(m, params, bw);
               },
               bw)
        .breakdown_utilization;
  };
  const auto pdp_feasible_fn = [](const msg::MessageSet& m, const auto& p,
                                  BitsPerSecond bw) {
    return analysis::pdp_feasible(m, p, bw);
  };
  const auto ttp_feasible_fn = [](const msg::MessageSet& m, const auto& p,
                                  BitsPerSecond bw) {
    return analysis::ttp_feasible(m, p, bw);
  };

  const double pdp_low = breakdown_at(pdp, pdp_feasible_fn, 5.0);
  const double pdp_high = breakdown_at(pdp, pdp_feasible_fn, 1000.0);
  const double ttp_low = breakdown_at(ttp, ttp_feasible_fn, 5.0);
  const double ttp_high = breakdown_at(ttp, ttp_feasible_fn, 1000.0);

  EXPECT_GT(pdp_low, 2.0 * pdp_high)
      << "PDP breakdown utilization must collapse at high bandwidth";
  EXPECT_GT(ttp_high, ttp_low)
      << "TTP breakdown utilization must keep rising";
}

// ---- augmented length consistency ---------------------------------------------------

class AugmentedLength : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AugmentedLength, HighBandwidthFloorIsThetaPerFrame) {
  // Once F <= Theta, the augmented length equals K*Theta (+ token
  // overhead), independent of the payload's exact bit count within a frame.
  Rng rng(GetParam());
  const auto p = pdp_params(100, analysis::PdpVariant::kModified8025);
  const BitsPerSecond bw = mbps(1000);
  const Seconds theta = p.ring.theta(bw);
  ASSERT_LE(p.frame.frame_time(bw), theta);
  for (int trial = 0; trial < 40; ++trial) {
    const double payload = rng.uniform(1.0, 50'000.0);
    const msg::SyncStream s{milliseconds(100), payload, 0};
    const auto k = p.frame.frames_for_payload(payload);
    EXPECT_NEAR(analysis::pdp_augmented_length(s, p, bw),
                static_cast<double>(k) * theta + theta / 2.0, 1e-15);
  }
}

TEST_P(AugmentedLength, TtpAugmentedMatchesReportField) {
  Rng rng(GetParam() + 100);
  auto gen = generator(8);
  const auto p = ttp_params(8);
  const auto set = gen.generate(rng).scaled(20.0);
  const BitsPerSecond bw = mbps(100);
  const auto v = analysis::ttp_schedulable(set, p, bw);
  for (const auto& r : v.reports) {
    // C'_i = C_i + (q_i - 1) * F_ovhd (paper eq. 8).
    EXPECT_NEAR(r.augmented_length,
                r.stream.payload_time(bw) +
                    static_cast<double>(r.q - 1) * p.frame.overhead_time(bw),
                1e-15);
    // h_i = C'_i / (q_i - 1) (paper eq. 5).
    EXPECT_NEAR(r.h, r.augmented_length / static_cast<double>(r.q - 1),
                1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AugmentedLength, ::testing::Values(11, 13));

// ---- async capacity coherence ---------------------------------------------------------

TEST(AsyncCapacityProperty, CapacityPlusDemandNeverExceedsOneWhenFeasible) {
  Rng rng(31);
  auto gen = generator(10);
  const auto p = pdp_params(10, analysis::PdpVariant::kStandard8025);
  int feasible_seen = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto set = gen.generate(rng).scaled(rng.uniform(0.1, 40.0));
    const BitsPerSecond bw = mbps(rng.uniform(2.0, 200.0));
    if (!analysis::pdp_feasible(set, p, bw)) continue;  // capacity undefined
    ++feasible_seen;
    const double cap = analysis::pdp_async_capacity(set, p, bw);
    // For a guaranteed load: raw synchronous utilization + async leftover
    // can never exceed the link.
    EXPECT_LE(set.utilization(bw) + cap, 1.0 + 1e-9);
  }
  EXPECT_GT(feasible_seen, 0);
}

// ---- scenario CSV fuzz round trip --------------------------------------------------------

class CsvRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvRoundTrip, RandomSetsSurviveSerialization) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 40));
    auto gen = generator(n, milliseconds(rng.uniform(5.0, 500.0)),
                         rng.uniform(1.0, 50.0));
    const auto set = gen.generate(rng).scaled(rng.uniform(0.01, 1'000.0));
    const auto parsed = msg::message_set_from_csv(msg::to_csv(set));
    ASSERT_EQ(parsed.size(), set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
      EXPECT_EQ(parsed[i].station, set[i].station);
      EXPECT_DOUBLE_EQ(parsed[i].period, set[i].period);
      EXPECT_DOUBLE_EQ(parsed[i].payload_bits, set[i].payload_bits);
    }
    // Verdicts survive the round trip bit-exactly.
    const auto p = ttp_params(40);
    const BitsPerSecond bw = mbps(100);
    EXPECT_EQ(analysis::ttp_feasible(set, p, bw),
              analysis::ttp_feasible(parsed, p, bw));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTrip, ::testing::Values(17, 19, 23));

// ---- fast-kernel differential --------------------------------------------------------
//
// The screened verdicts (rta_feasible_fast, lsd_feasible_fast) and the
// scale-space kernels (PdpScaleKernel, TtpScaleKernel) are drop-in
// replacements for the exact analyses; these tests pin verdict-for-verdict
// agreement on a large randomized corpus drawn from the exec/ seed stream
// (fixed master seeds, so every run and every machine sees the same sets).

std::vector<analysis::FpTask> random_task_set(Rng& rng) {
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 8));
  // Total utilization straddling the feasibility boundary so both verdicts
  // appear, plus occasional zero-cost (degenerate payload) tasks.
  double remaining = rng.uniform(0.1, 1.4);
  const bool constrained = rng.uniform01() < 0.3;
  std::vector<analysis::FpTask> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& t = tasks[i];
    t.period = rng.uniform(0.01, 0.1);
    const double share =
        i + 1 == n ? remaining : rng.uniform(0.0, remaining);
    remaining -= share;
    t.cost = share * t.period;
    if (rng.uniform01() < 0.1) t.cost = 0.0;
    if (constrained) t.deadline = t.period * rng.uniform(0.5, 1.0);
  }
  std::sort(tasks.begin(), tasks.end(),
            [](const analysis::FpTask& a, const analysis::FpTask& b) {
              return a.effective_deadline() < b.effective_deadline();
            });
  return tasks;
}

TEST(FastKernelDifferential, ScreenedVerdictsMatchExactOn10kTaskSets) {
  int schedulable = 0;
  int infeasible = 0;
  for (std::uint64_t trial = 0; trial < 10'000; ++trial) {
    Rng rng = exec::make_trial_rng(0xFA57, trial);
    const auto tasks = random_task_set(rng);
    const Seconds blocking =
        rng.uniform01() < 0.3 ? 0.0 : rng.uniform(0.0, 0.02);

    const bool exact_rta =
        analysis::response_time_analysis(tasks, blocking).schedulable;
    const bool exact_lsd =
        analysis::lsd_point_test_all(tasks, blocking).schedulable;
    ASSERT_EQ(exact_rta, exact_lsd) << "exact analyses split at trial "
                                    << trial;
    ASSERT_EQ(exact_rta, analysis::rta_feasible_fast(tasks, blocking))
        << "rta_feasible_fast disagrees at trial " << trial;
    ASSERT_EQ(exact_lsd, analysis::lsd_feasible_fast(tasks, blocking))
        << "lsd_feasible_fast disagrees at trial " << trial;
    (exact_rta ? schedulable : infeasible) += 1;
  }
  // The corpus must exercise both verdicts, or the agreement is vacuous.
  EXPECT_GT(schedulable, 100);
  EXPECT_GT(infeasible, 100);
}

TEST(FastKernelDifferential, ScaleKernelsMatchPredicatesScaleForScale) {
  int schedulable = 0;
  int infeasible = 0;
  for (std::uint64_t trial = 0; trial < 1'000; ++trial) {
    Rng rng = exec::make_trial_rng(0x5CA1E, trial);
    const int n = static_cast<int>(rng.uniform_int(1, 16));
    auto gen = generator(n, milliseconds(rng.uniform(20.0, 200.0)),
                         rng.uniform(1.0, 10.0));
    auto base = gen.generate(rng);
    if (rng.uniform01() < 0.05) {
      // Degenerate all-zero payload set: kernels must still agree.
      std::vector<msg::SyncStream> zeroed = base.streams();
      for (auto& s : zeroed) s.payload_bits = 0.0;
      base = msg::MessageSet{std::move(zeroed)};
    }
    const BitsPerSecond bw = mbps(rng.uniform(4.0, 200.0));
    const auto pdp = pdp_params(n, analysis::PdpVariant::kModified8025);
    const auto ttp = ttp_params(n);
    const Seconds pinned_ttrt = milliseconds(rng.uniform(0.5, 20.0));

    const analysis::PdpScaleKernel pdp_kernel(base, pdp, bw);
    const analysis::TtpScaleKernel ttp_kernel(base, ttp, bw);
    const analysis::TtpScaleKernel ttp_kernel_at(base, ttp, bw, pinned_ttrt);

    // Random probe order, including scale 0, exercises the PDP kernel's
    // carried failed-task hint the way a real bisection would.
    for (int probe = 0; probe < 5; ++probe) {
      const double scale =
          probe == 0 ? 0.0 : rng.uniform(0.0, 50.0);
      const auto scaled = base.scaled(scale);
      const bool pdp_ref = analysis::pdp_feasible(scaled, pdp, bw);
      ASSERT_EQ(pdp_kernel(scale), pdp_ref)
          << "PDP kernel disagrees at trial " << trial << " scale " << scale;
      ASSERT_EQ(ttp_kernel(scale), analysis::ttp_feasible(scaled, ttp, bw))
          << "TTP kernel disagrees at trial " << trial << " scale " << scale;
      ASSERT_EQ(ttp_kernel_at(scale),
                analysis::ttp_feasible_at(scaled, ttp, bw, pinned_ttrt))
          << "pinned-TTRT kernel disagrees at trial " << trial << " scale "
          << scale;
      (pdp_ref ? schedulable : infeasible) += 1;
    }
  }
  EXPECT_GT(schedulable, 100);
  EXPECT_GT(infeasible, 100);
}

// ---- batched (SoA) kernel differential -----------------------------------------------
//
// The batch kernels (PdpBatchKernel, TtpBatchKernel) and the lockstep
// bisector (find_saturation_batch) claim bit-identity with the scalar
// path. These tests pin that claim on randomized corpora: lockstep
// verdicts verdict-for-verdict against the scalar kernels (including
// masked lanes, zero-payload lanes and deadline-infeasible q_i < 2 TTP
// lanes), and every field of the batched saturation results against
// per-lane scalar searches.

/// One BatchScaleKernel view over a concrete SoA kernel instance.
template <typename Kernel>
breakdown::BatchScaleKernel as_batch_kernel(const Kernel& kernel) {
  return [&kernel](std::span<const double> scales,
                   std::span<const std::uint8_t> active,
                   std::span<std::uint8_t> verdicts) {
    kernel.evaluate(scales, active, verdicts);
  };
}

TEST(BatchKernelDifferential, LockstepVerdictsMatchScalarKernels) {
  constexpr std::size_t kLanes = 6;
  int schedulable = 0;
  int infeasible = 0;
  int zero_payload_lanes = 0;
  int low_q_lanes = 0;
  for (std::uint64_t trial = 0; trial < 300; ++trial) {
    Rng rng = exec::make_trial_rng(0xBA7C, trial);
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    auto gen = generator(n, milliseconds(rng.uniform(20.0, 200.0)),
                         rng.uniform(1.0, 10.0));
    std::vector<msg::MessageSet> bases;
    bases.reserve(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) {
      msg::MessageSet base = gen.generate(rng);
      if (l == 2 && rng.uniform01() < 0.5) {
        // Degenerate zero-payload lane: the full-width SoA cost loops must
        // keep it exactly 0 next to live lanes.
        std::vector<msg::SyncStream> zeroed = base.streams();
        for (auto& s : zeroed) s.payload_bits = 0.0;
        base = msg::MessageSet{std::move(zeroed)};
        ++zero_payload_lanes;
      }
      bases.push_back(std::move(base));
    }
    const BitsPerSecond bw = mbps(rng.uniform(4.0, 200.0));
    // Alternate variants so both token-overhead branches of the batched
    // cost loop (per-frame vs per-message) face the scalar kernel.
    const auto variant = trial % 2 == 0 ? analysis::PdpVariant::kModified8025
                                        : analysis::PdpVariant::kStandard8025;
    const auto pdp = pdp_params(n, variant);
    const auto ttp = ttp_params(n);
    const Seconds pinned_ttrt = milliseconds(rng.uniform(0.5, 40.0));
    // The PDP comparison must not be vacuous about blocking.
    ASSERT_GT(analysis::pdp_blocking(pdp, bw), 0.0);
    for (const auto& base : bases) {
      double min_deadline = base.streams()[0].deadline();
      for (const auto& s : base.streams()) {
        min_deadline = std::min(min_deadline, s.deadline());
      }
      if (min_deadline / pinned_ttrt < 2.0) ++low_q_lanes;
    }

    const analysis::PdpBatchKernel pdp_batch(bases, pdp, bw);
    const analysis::TtpBatchKernel ttp_batch(bases, ttp, bw);
    const analysis::TtpBatchKernel ttp_batch_at(bases, ttp, bw, pinned_ttrt);
    std::vector<analysis::PdpScaleKernel> pdp_scalar;
    std::vector<analysis::TtpScaleKernel> ttp_scalar;
    std::vector<analysis::TtpScaleKernel> ttp_scalar_at;
    for (const auto& base : bases) {
      pdp_scalar.emplace_back(base, pdp, bw);
      ttp_scalar.emplace_back(base, ttp, bw);
      ttp_scalar_at.emplace_back(base, ttp, bw, pinned_ttrt);
    }

    std::vector<double> scales(kLanes, 0.0);
    std::vector<std::uint8_t> verdicts(kLanes, 0);
    for (int probe = 0; probe < 4; ++probe) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        scales[l] = probe == 0 ? 0.0 : rng.uniform(0.0, 50.0);
      }
      pdp_batch.evaluate(scales, verdicts);
      for (std::size_t l = 0; l < kLanes; ++l) {
        const bool ref = pdp_scalar[l](scales[l]);
        ASSERT_EQ(verdicts[l] != 0, ref)
            << "PDP lane " << l << " disagrees at trial " << trial
            << " scale " << scales[l];
        (ref ? schedulable : infeasible) += 1;
      }
      ttp_batch.evaluate(scales, verdicts);
      for (std::size_t l = 0; l < kLanes; ++l) {
        ASSERT_EQ(verdicts[l] != 0, ttp_scalar[l](scales[l]))
            << "TTP lane " << l << " disagrees at trial " << trial
            << " scale " << scales[l];
      }
      ttp_batch_at.evaluate(scales, verdicts);
      for (std::size_t l = 0; l < kLanes; ++l) {
        ASSERT_EQ(verdicts[l] != 0, ttp_scalar_at[l](scales[l]))
            << "pinned-TTRT lane " << l << " disagrees at trial " << trial
            << " scale " << scales[l];
      }
    }

    // Masked evaluation: inactive lanes keep their verdict slot untouched,
    // active lanes still match the scalar kernel.
    constexpr std::uint8_t kSentinel = 0xEE;
    std::vector<std::uint8_t> active(kLanes, 0);
    for (std::size_t l = 0; l < kLanes; ++l) {
      active[l] = l % 2 == 0 ? 1 : 0;
      scales[l] = rng.uniform(0.0, 50.0);
      verdicts[l] = kSentinel;
    }
    pdp_batch.evaluate(scales, active, verdicts);
    for (std::size_t l = 0; l < kLanes; ++l) {
      if (active[l] != 0) {
        ASSERT_EQ(verdicts[l] != 0, pdp_scalar[l](scales[l]))
            << "masked PDP lane " << l << " disagrees at trial " << trial;
      } else {
        ASSERT_EQ(verdicts[l], kSentinel)
            << "inactive PDP lane " << l << " was written at trial " << trial;
      }
    }
    for (std::size_t l = 0; l < kLanes; ++l) verdicts[l] = kSentinel;
    ttp_batch_at.evaluate(scales, active, verdicts);
    for (std::size_t l = 0; l < kLanes; ++l) {
      if (active[l] != 0) {
        ASSERT_EQ(verdicts[l] != 0, ttp_scalar_at[l](scales[l]))
            << "masked TTP lane " << l << " disagrees at trial " << trial;
      } else {
        ASSERT_EQ(verdicts[l], kSentinel)
            << "inactive TTP lane " << l << " was written at trial " << trial;
      }
    }
  }
  // The corpus must exercise both verdicts and the degenerate lane shapes.
  EXPECT_GT(schedulable, 100);
  EXPECT_GT(infeasible, 100);
  EXPECT_GT(zero_payload_lanes, 10);
  EXPECT_GT(low_q_lanes, 10);
}

TEST(BatchKernelDifferential, BatchedSaturationMatchesScalarFieldForField) {
  constexpr std::size_t kLanes = 5;
  int found = 0;
  int degenerate = 0;
  int unbounded = 0;
  for (std::uint64_t trial = 0; trial < 120; ++trial) {
    Rng rng = exec::make_trial_rng(0x5A7B, trial);
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    auto gen = generator(n, milliseconds(rng.uniform(20.0, 200.0)),
                         rng.uniform(1.0, 10.0));
    std::vector<msg::MessageSet> bases;
    bases.reserve(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) bases.push_back(gen.generate(rng));
    const BitsPerSecond bw = mbps(rng.uniform(2.0, 500.0));
    const auto variant = trial % 2 == 0 ? analysis::PdpVariant::kModified8025
                                        : analysis::PdpVariant::kStandard8025;
    const auto pdp = pdp_params(n, variant);
    const auto ttp = ttp_params(n);
    // A large pinned TTRT manufactures deadline-infeasible (q_i < 2) lanes,
    // which must surface as degenerate_zero in batch and scalar alike.
    const Seconds pinned_ttrt = milliseconds(rng.uniform(0.5, 60.0));
    // A tight max_scale on some trials manufactures "unbounded" lanes
    // (bracketing walks off the top), covering the third outcome class.
    breakdown::SaturationOptions options;
    if (trial % 3 == 0) options.max_scale = 4.0;

    const auto expect_match = [&](const breakdown::SaturationResult& got,
                                  const breakdown::SaturationResult& ref,
                                  std::size_t lane, const char* what) {
      EXPECT_EQ(got.found, ref.found)
          << what << " lane " << lane << " trial " << trial;
      EXPECT_EQ(got.degenerate_zero, ref.degenerate_zero)
          << what << " lane " << lane << " trial " << trial;
      EXPECT_EQ(got.critical_scale, ref.critical_scale)
          << what << " lane " << lane << " trial " << trial;
      EXPECT_EQ(got.breakdown_utilization, ref.breakdown_utilization)
          << what << " lane " << lane << " trial " << trial;
      EXPECT_EQ(got.predicate_evals, ref.predicate_evals)
          << what << " lane " << lane << " trial " << trial;
      found += got.found ? 1 : 0;
      degenerate += got.degenerate_zero ? 1 : 0;
      unbounded += (!got.found && !got.degenerate_zero) ? 1 : 0;
    };

    const analysis::PdpBatchKernel pdp_batch(bases, pdp, bw);
    const auto pdp_results =
        breakdown::find_saturation_batch(
            bases, as_batch_kernel(pdp_batch), bw, options);
    for (std::size_t l = 0; l < kLanes; ++l) {
      const analysis::PdpScaleKernel scalar(bases[l], pdp, bw);
      const auto ref = breakdown::find_saturation_scaled(
          bases[l], [&scalar](double s) { return scalar(s); }, bw, options);
      expect_match(pdp_results[l], ref, l, "PDP");
    }

    const analysis::TtpBatchKernel ttp_batch(bases, ttp, bw);
    const auto ttp_results =
        breakdown::find_saturation_batch(
            bases, as_batch_kernel(ttp_batch), bw, options);
    for (std::size_t l = 0; l < kLanes; ++l) {
      const analysis::TtpScaleKernel scalar(bases[l], ttp, bw);
      const auto ref = breakdown::find_saturation_scaled(
          bases[l], [&scalar](double s) { return scalar(s); }, bw, options);
      expect_match(ttp_results[l], ref, l, "TTP");
    }

    const analysis::TtpBatchKernel ttp_batch_at(bases, ttp, bw, pinned_ttrt);
    const auto ttp_at_results = breakdown::find_saturation_batch(
        bases, as_batch_kernel(ttp_batch_at), bw, options);
    for (std::size_t l = 0; l < kLanes; ++l) {
      const analysis::TtpScaleKernel scalar(bases[l], ttp, bw, pinned_ttrt);
      const auto ref = breakdown::find_saturation_scaled(
          bases[l], [&scalar](double s) { return scalar(s); }, bw, options);
      expect_match(ttp_at_results[l], ref, l, "pinned-TTRT");
    }
  }
  // All three scalar outcome classes must appear, or bit-identity on the
  // interesting paths is vacuous.
  EXPECT_GT(found, 100);
  EXPECT_GT(degenerate, 10);
  EXPECT_GT(unbounded, 0);
}

// ---- TTRT scaling ---------------------------------------------------------------------

TEST(TtrtProperty, SelectionScalesWithSqrtTheta) {
  // For fixed periods, TTRT ~ sqrt(Theta): quadrupling Theta (via ring
  // size at fixed bandwidth contributions) roughly doubles the bid, as
  // long as the P_min/2 clamp stays inactive.
  msg::MessageSet set;
  set.add({.period = milliseconds(400), .payload_bits = 1.0, .station = 0});
  const Seconds theta = microseconds(50);
  const Seconds bid1 = analysis::ttrt_bid(milliseconds(400), theta);
  const Seconds bid4 = analysis::ttrt_bid(milliseconds(400), 4.0 * theta);
  EXPECT_NEAR(bid4 / bid1, 2.0, 1e-9);
}

}  // namespace
}  // namespace tokenring
