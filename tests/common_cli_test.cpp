#include "tokenring/common/cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tokenring/common/checks.hpp"

namespace tokenring {
namespace {

// Helper building a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Cli, DefaultsApplyWithoutArgs) {
  CliFlags flags;
  flags.declare("sets", "100", "number of sets");
  Argv a({"prog"});
  ASSERT_TRUE(flags.parse(a.argc(), a.argv()));
  EXPECT_EQ(flags.get_int("sets"), 100);
}

TEST(Cli, EqualsSyntax) {
  CliFlags flags;
  flags.declare("sets", "100", "");
  Argv a({"prog", "--sets=25"});
  ASSERT_TRUE(flags.parse(a.argc(), a.argv()));
  EXPECT_EQ(flags.get_int("sets"), 25);
}

TEST(Cli, SpaceSyntax) {
  CliFlags flags;
  flags.declare("seed", "1", "");
  Argv a({"prog", "--seed", "777"});
  ASSERT_TRUE(flags.parse(a.argc(), a.argv()));
  EXPECT_EQ(flags.get_int("seed"), 777);
}

TEST(Cli, UnknownFlagRejected) {
  CliFlags flags;
  flags.declare("sets", "100", "");
  Argv a({"prog", "--bogus=1"});
  EXPECT_FALSE(flags.parse(a.argc(), a.argv()));
}

TEST(Cli, MissingValueRejected) {
  CliFlags flags;
  flags.declare("sets", "100", "");
  Argv a({"prog", "--sets"});
  EXPECT_FALSE(flags.parse(a.argc(), a.argv()));
}

TEST(Cli, PositionalRejected) {
  CliFlags flags;
  flags.declare("sets", "100", "");
  Argv a({"prog", "17"});
  EXPECT_FALSE(flags.parse(a.argc(), a.argv()));
}

TEST(Cli, HelpShortCircuits) {
  CliFlags flags;
  flags.declare("sets", "100", "");
  Argv a({"prog", "--help"});
  EXPECT_FALSE(flags.parse(a.argc(), a.argv()));
}

TEST(Cli, ParseDetailedDistinguishesHelpFromErrors) {
  // --help is a successful outcome (the caller exits 0); unknown flags and
  // missing values are errors (exit 1). parse() collapses both to false,
  // which is why callers that care about exit codes use parse_detailed.
  CliFlags flags;
  flags.declare("sets", "100", "");
  {
    Argv a({"prog", "--help"});
    EXPECT_EQ(flags.parse_detailed(a.argc(), a.argv()),
              CliFlags::ParseOutcome::kHelp);
  }
  {
    Argv a({"prog", "--bogus=1"});
    EXPECT_EQ(flags.parse_detailed(a.argc(), a.argv()),
              CliFlags::ParseOutcome::kError);
  }
  {
    Argv a({"prog", "--sets"});
    EXPECT_EQ(flags.parse_detailed(a.argc(), a.argv()),
              CliFlags::ParseOutcome::kError);
  }
  {
    Argv a({"prog", "--sets=7"});
    EXPECT_EQ(flags.parse_detailed(a.argc(), a.argv()),
              CliFlags::ParseOutcome::kOk);
    EXPECT_EQ(flags.get_int("sets"), 7);
  }
}

TEST(Cli, TypedAccessors) {
  CliFlags flags;
  flags.declare("d", "2.5", "");
  flags.declare("b", "true", "");
  flags.declare("s", "hello", "");
  Argv a({"prog"});
  ASSERT_TRUE(flags.parse(a.argc(), a.argv()));
  EXPECT_DOUBLE_EQ(flags.get_double("d"), 2.5);
  EXPECT_TRUE(flags.get_bool("b"));
  EXPECT_EQ(flags.get_string("s"), "hello");
}

TEST(Cli, BadTypeThrows) {
  CliFlags flags;
  flags.declare("d", "abc", "");
  Argv a({"prog"});
  ASSERT_TRUE(flags.parse(a.argc(), a.argv()));
  EXPECT_THROW(flags.get_double("d"), PreconditionError);
  EXPECT_THROW(flags.get_int("d"), PreconditionError);
  EXPECT_THROW(flags.get_bool("d"), PreconditionError);
}

TEST(Cli, UndeclaredAccessThrows) {
  CliFlags flags;
  EXPECT_THROW(flags.get_string("nope"), PreconditionError);
}

TEST(Cli, DoubleDeclarationThrows) {
  CliFlags flags;
  flags.declare("x", "1", "");
  EXPECT_THROW(flags.declare("x", "2", ""), PreconditionError);
}

TEST(Cli, BatchFlagDefaultsValidatesAndWarns) {
  {
    CliFlags flags;
    declare_batch_flag(flags);
    Argv a({"prog"});
    ASSERT_TRUE(flags.parse(a.argc(), a.argv()));
    EXPECT_EQ(get_batch(flags, 100), 64u);
  }
  {
    CliFlags flags;
    declare_batch_flag(flags);
    Argv a({"prog", "--batch=8"});
    ASSERT_TRUE(flags.parse(a.argc(), a.argv()));
    EXPECT_EQ(get_batch(flags, 100), 8u);
  }
  {
    CliFlags flags;
    declare_batch_flag(flags);
    Argv a({"prog", "--batch=0"});
    ASSERT_TRUE(flags.parse(a.argc(), a.argv()));
    EXPECT_THROW(get_batch(flags, 100), PreconditionError);
  }
  {
    // Oversized batches are accepted (the extra lanes are simply unused)
    // but warn on stderr.
    CliFlags flags;
    declare_batch_flag(flags);
    Argv a({"prog", "--batch=256"});
    ASSERT_TRUE(flags.parse(a.argc(), a.argv()));
    testing::internal::CaptureStderr();
    EXPECT_EQ(get_batch(flags, 10), 256u);
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("--batch 256 exceeds"), std::string::npos);
  }
}

TEST(Cli, ParseDoubleList) {
  const auto v = parse_double_list("1,2.5,100");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
  EXPECT_DOUBLE_EQ(v[2], 100.0);
}

TEST(Cli, ParseDoubleListSkipsEmpty) {
  const auto v = parse_double_list("1,,2,");
  ASSERT_EQ(v.size(), 2u);
}

TEST(Cli, ParseDoubleListEmptyString) {
  EXPECT_TRUE(parse_double_list("").empty());
}

}  // namespace
}  // namespace tokenring
