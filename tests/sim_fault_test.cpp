// Failure-injection tests: token loss and recovery in both simulators.

#include <gtest/gtest.h>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/pdp_sim.hpp"
#include "tokenring/sim/ttp_sim.hpp"
#include "tokenring/sim/workload.hpp"

namespace tokenring::sim {
namespace {

msg::SyncStream stream(Seconds period, Bits payload, int station) {
  return msg::SyncStream{period, payload, station};
}

msg::MessageSet light_set() {
  msg::MessageSet set;
  set.add(stream(milliseconds(20), 10'000.0, 0));
  set.add(stream(milliseconds(40), 20'000.0, 2));
  return set;
}

analysis::TtpParams ttp_params() {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(4);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

analysis::PdpParams pdp_params() {
  analysis::PdpParams p;
  p.ring = net::ieee8025_ring(4);
  p.frame = net::paper_frame_format();
  p.variant = analysis::PdpVariant::kModified8025;
  return p;
}

// ---- TTP --------------------------------------------------------------------

TEST(TtpFault, LossIsCountedAndRingRecovers) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_ttp_sim_config(light_set(), ttp_params(), bw, 10.0);
  cfg.token_loss_times = {milliseconds(50)};
  TtpSimulation sim(light_set(), cfg);
  const auto m = sim.run();
  EXPECT_EQ(m.token_losses, 1u);
  // Traffic continues after recovery: completions span the whole horizon.
  EXPECT_GT(m.messages_completed, 15u);
  EXPECT_LT(m.miss_ratio(), 0.3);
}

TEST(TtpFault, NoLossesMeansFieldStaysZero) {
  const BitsPerSecond bw = mbps(100);
  const auto cfg = make_ttp_sim_config(light_set(), ttp_params(), bw, 5.0);
  TtpSimulation sim(light_set(), cfg);
  EXPECT_EQ(sim.run().token_losses, 0u);
}

TEST(TtpFault, OutageShowsUpAsInterVisitGap) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_ttp_sim_config(light_set(), ttp_params(), bw, 10.0);
  const Seconds outage = 2.0 * cfg.ttrt +
                         2.0 * cfg.params.ring.walk_time(bw) +
                         cfg.params.ring.token_time(bw);
  cfg.token_loss_times = {milliseconds(50)};
  TtpSimulation sim(light_set(), cfg);
  sim.run();
  // The recovery gap dominates every normal rotation.
  EXPECT_GE(sim.max_intervisit(), outage - 1e-9);
}

TEST(TtpFault, RepeatedLossesAllRecovered) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_ttp_sim_config(light_set(), ttp_params(), bw, 15.0);
  cfg.token_loss_times = {milliseconds(30), milliseconds(120),
                          milliseconds(250)};
  TtpSimulation sim(light_set(), cfg);
  const auto m = sim.run();
  EXPECT_EQ(m.token_losses, 3u);
  EXPECT_GT(m.messages_completed, 20u);
}

TEST(TtpFault, BackToBackLossesSupersedeCleanly) {
  // A second loss during the first recovery must not spawn two tokens.
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_ttp_sim_config(light_set(), ttp_params(), bw, 10.0);
  cfg.token_loss_times = {milliseconds(50), milliseconds(50.1)};
  TtpSimulation sim(light_set(), cfg);
  const auto m = sim.run();
  EXPECT_EQ(m.token_losses, 2u);
  // Ring still alive at the end (steady completions).
  EXPECT_GT(m.messages_completed, 10u);
}

TEST(TtpFault, LossBurstCausesMissesForTightStreams) {
  // A stream using 17 of its 18 token visits per period has ~0.25 ms of
  // slack; a burst of three token losses (~0.7 ms of outage) must blow it.
  const BitsPerSecond bw = mbps(100);
  analysis::TtpParams p = ttp_params();
  msg::MessageSet set;
  set.add(stream(milliseconds(2), 20'000.0, 0));
  auto cfg = make_ttp_sim_config(set, p, bw, 40.0);
  ASSERT_GT(cfg.sync_bandwidth_per_stream[0], 0.0);
  cfg.token_loss_times = {milliseconds(20), milliseconds(20.3),
                          milliseconds(20.6)};
  TtpSimulation with_loss(set, cfg);
  const auto m = with_loss.run();
  EXPECT_EQ(m.token_losses, 3u);
  EXPECT_GT(m.deadline_misses, 0u);

  cfg.token_loss_times.clear();
  TtpSimulation clean(set, cfg);
  EXPECT_EQ(clean.run().deadline_misses, 0u);
}

TEST(TtpFault, NegativeLossTimeRejected) {
  auto cfg = make_ttp_sim_config(light_set(), ttp_params(), mbps(100), 5.0);
  cfg.token_loss_times = {-1.0};
  TtpSimulation sim(light_set(), cfg);
  EXPECT_THROW(sim.run(), PreconditionError);
}

// ---- PDP --------------------------------------------------------------------

TEST(PdpFault, LossIsCountedAndRingRecovers) {
  const BitsPerSecond bw = mbps(16);
  auto cfg = make_pdp_sim_config(light_set(), pdp_params(), bw, 10.0);
  cfg.token_loss_times = {milliseconds(50)};
  PdpSimulation sim(light_set(), cfg);
  const auto m = sim.run();
  EXPECT_EQ(m.token_losses, 1u);
  EXPECT_GT(m.messages_completed, 15u);
}

TEST(PdpFault, AbortedFrameIsRetransmitted) {
  // Kill the token right in the middle of the only message's transmission:
  // the payload must still arrive (later), not be silently lost.
  const BitsPerSecond bw = mbps(1);
  auto cfg = make_pdp_sim_config(light_set(), pdp_params(), bw, 1.0);
  cfg.async_model = AsyncModel::kNone;
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 5'000.0, 0));  // ~10 frames, ~6 ms
  cfg.horizon = milliseconds(99);
  cfg.token_loss_times = {milliseconds(3)};  // mid-message
  PdpSimulation sim(set, cfg);
  const auto m = sim.run();
  EXPECT_EQ(m.token_losses, 1u);
  ASSERT_EQ(m.messages_completed, 1u);
  EXPECT_EQ(m.deadline_misses, 0u);
  // The outage pushed the completion later than the clean run.
  cfg.token_loss_times.clear();
  PdpSimulation clean(set, cfg);
  const auto mc = clean.run();
  EXPECT_GT(m.response_time.mean(), mc.response_time.mean());
}

TEST(PdpFault, RecoveryRestartsArbitrationByPriority) {
  // Two messages pending during the outage: after recovery the
  // shorter-period one transmits first (no misses for it).
  const BitsPerSecond bw = mbps(16);
  auto cfg = make_pdp_sim_config(light_set(), pdp_params(), bw, 5.0);
  cfg.token_loss_times = {milliseconds(1)};
  PdpSimulation sim(light_set(), cfg);
  const auto m = sim.run();
  EXPECT_EQ(m.token_losses, 1u);
  ASSERT_TRUE(m.per_station.count(0));
  EXPECT_EQ(m.per_station.at(0).misses, 0u);  // P=20ms stream unharmed
}

TEST(PdpFault, ManyLossesDegradeButNeverWedge) {
  const BitsPerSecond bw = mbps(16);
  auto cfg = make_pdp_sim_config(light_set(), pdp_params(), bw, 20.0);
  for (int i = 1; i <= 20; ++i) {
    cfg.token_loss_times.push_back(milliseconds(18.0 * i));
  }
  PdpSimulation sim(light_set(), cfg);
  const auto m = sim.run();
  EXPECT_EQ(m.token_losses, 20u);
  // Ring keeps making progress between losses.
  EXPECT_GT(m.messages_completed, 20u);
}

}  // namespace
}  // namespace tokenring::sim
