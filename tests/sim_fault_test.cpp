// Failure-injection tests: FaultPlan-driven faults and recovery in both
// simulators — token loss, frame corruption, noise bursts, station
// crash/rejoin, duplicate tokens, miss attribution and determinism.

#include <gtest/gtest.h>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/fault/recovery.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/simulator.hpp"
#include "tokenring/sim/workload.hpp"

namespace tokenring::sim {
namespace {

msg::SyncStream stream(Seconds period, Bits payload, int station) {
  return msg::SyncStream{period, payload, station};
}

msg::MessageSet light_set() {
  msg::MessageSet set;
  set.add(stream(milliseconds(20), 10'000.0, 0));
  set.add(stream(milliseconds(40), 20'000.0, 2));
  return set;
}

analysis::TtpParams ttp_params() {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(4);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

analysis::PdpParams pdp_params() {
  analysis::PdpParams p;
  p.ring = net::ieee8025_ring(4);
  p.frame = net::paper_frame_format();
  p.variant = analysis::PdpVariant::kModified8025;
  return p;
}

// ---- TTP --------------------------------------------------------------------

TEST(TtpFault, LossIsCountedAndRingRecovers) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_sim_config(light_set(), ttp_params(), bw, 10.0);
  cfg.faults.add_token_loss(milliseconds(50));
  const auto m = run_simulation(light_set(), cfg);
  EXPECT_EQ(m.token_losses, 1u);
  EXPECT_EQ(m.faults_injected(), 1u);
  EXPECT_GT(m.total_outage(), 0.0);
  // Traffic continues after recovery: completions span the whole horizon.
  EXPECT_GT(m.messages_completed, 15u);
  EXPECT_LT(m.miss_ratio(), 0.3);
}

TEST(TtpFault, NoFaultsMeansCountersStayZero) {
  const BitsPerSecond bw = mbps(100);
  const auto cfg = make_sim_config(light_set(), ttp_params(), bw, 5.0);
  const auto m = run_simulation(light_set(), cfg);
  EXPECT_EQ(m.token_losses, 0u);
  EXPECT_EQ(m.faults_injected(), 0u);
  EXPECT_EQ(m.total_outage(), 0.0);
}

TEST(TtpFault, OutageShowsUpAsInterVisitGap) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_sim_config(light_set(), ttp_params(), bw, 10.0);
  const Seconds outage =
      fault::ttp_token_loss_outage(cfg.ttp, bw, cfg.ttrt);
  cfg.faults.add_token_loss(milliseconds(50));
  const auto sim = make_simulator(light_set(), cfg);
  const auto m = sim->run();
  // The recovery gap dominates every normal rotation, and the accounted
  // outage matches the recovery model.
  EXPECT_GE(sim->max_intervisit(), outage - 1e-9);
  EXPECT_NEAR(m.total_outage(), outage, 1e-9);
}

TEST(TtpFault, RepeatedLossesAllRecovered) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_sim_config(light_set(), ttp_params(), bw, 15.0);
  cfg.faults.add_token_loss(milliseconds(30));
  cfg.faults.add_token_loss(milliseconds(120));
  cfg.faults.add_token_loss(milliseconds(250));
  const auto m = run_simulation(light_set(), cfg);
  EXPECT_EQ(m.token_losses, 3u);
  EXPECT_GT(m.messages_completed, 20u);
}

TEST(TtpFault, BackToBackLossesSupersedeCleanly) {
  // A second loss during the first recovery must not spawn two tokens.
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_sim_config(light_set(), ttp_params(), bw, 10.0);
  cfg.faults.add_token_loss(milliseconds(50));
  cfg.faults.add_token_loss(milliseconds(50.1));
  const auto m = run_simulation(light_set(), cfg);
  EXPECT_EQ(m.token_losses, 2u);
  // Ring still alive at the end (steady completions).
  EXPECT_GT(m.messages_completed, 10u);
}

TEST(TtpFault, LossBurstCausesAttributedMissesForTightStreams) {
  // A stream using 17 of its 18 token visits per period has ~0.25 ms of
  // slack; a burst of three token losses (~0.7 ms of outage) must blow it,
  // and the misses must be attributed to the outage windows.
  const BitsPerSecond bw = mbps(100);
  analysis::TtpParams p = ttp_params();
  msg::MessageSet set;
  set.add(stream(milliseconds(2), 20'000.0, 0));
  auto cfg = make_sim_config(set, p, bw, 40.0);
  ASSERT_GT(cfg.sync_bandwidth_per_stream[0], 0.0);
  cfg.faults.add_token_loss(milliseconds(20));
  cfg.faults.add_token_loss(milliseconds(20.3));
  cfg.faults.add_token_loss(milliseconds(20.6));
  const auto m = run_simulation(set, cfg);
  EXPECT_EQ(m.token_losses, 3u);
  EXPECT_GT(m.deadline_misses, 0u);
  EXPECT_GT(m.fault_attributed_misses(), 0u);
  EXPECT_LE(m.fault_attributed_misses(), m.deadline_misses);
  EXPECT_GT(m.per_fault.at(fault::FaultKind::kTokenLoss).attributed_misses,
            0u);

  cfg.faults = {};
  EXPECT_EQ(run_simulation(set, cfg).deadline_misses, 0u);
}

TEST(TtpFault, CorruptionWastesOneSlotNotAClaimRecovery) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_sim_config(light_set(), ttp_params(), bw, 10.0);
  cfg.faults.add_frame_corruption(milliseconds(50));
  const auto m = run_simulation(light_set(), cfg);
  const auto& acct = m.per_fault.at(fault::FaultKind::kFrameCorruption);
  EXPECT_EQ(acct.injected, 1u);
  // Retransmission costs at most one max-size frame — far below the claim
  // recovery a token loss would trigger.
  EXPECT_LE(acct.outage, fault::ttp_corruption_outage(cfg.ttp, bw) + 1e-12);
  EXPECT_LT(acct.outage,
            fault::ttp_token_loss_outage(cfg.ttp, bw, cfg.ttrt));
  EXPECT_EQ(m.token_losses, 0u);
  EXPECT_GT(m.messages_completed, 15u);
}

TEST(TtpFault, NoiseBurstOutlastsPlainTokenLoss) {
  const BitsPerSecond bw = mbps(100);
  auto base = make_sim_config(light_set(), ttp_params(), bw, 10.0);

  auto loss_cfg = base;
  loss_cfg.faults.add_token_loss(milliseconds(50));
  const auto loss_m = run_simulation(light_set(), loss_cfg);

  auto noise_cfg = base;
  noise_cfg.faults.add_noise_burst(milliseconds(50), milliseconds(3));
  const auto noise_m = run_simulation(light_set(), noise_cfg);

  EXPECT_NEAR(noise_m.total_outage() - loss_m.total_outage(), milliseconds(3),
              1e-9);
}

TEST(TtpFault, CrashedStationLosesQueueAndRingRunsOn) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_sim_config(light_set(), ttp_params(), bw, 10.0);
  // Station 2 (the P=40ms stream's host) dies mid-run and never returns.
  cfg.faults.add_station_crash(milliseconds(100), 2);
  const auto m = run_simulation(light_set(), cfg);
  EXPECT_EQ(m.per_fault.at(fault::FaultKind::kStationCrash).injected, 1u);
  // Station 0 keeps completing messages on the reconfigured ring.
  ASSERT_TRUE(m.per_station.count(0));
  EXPECT_GT(m.per_station.at(0).completed, 15u);
  // Station 2 releases stop at the crash: roughly 100ms/40ms ~ 3 releases,
  // far below the ~10 a full run would produce.
  ASSERT_TRUE(m.per_station.count(2));
  EXPECT_LT(m.per_station.at(2).released, 5u);
}

TEST(TtpFault, CrashAndRejoinReconfigureTwiceAndTrafficResumes) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_sim_config(light_set(), ttp_params(), bw, 10.0);
  cfg.faults.add_station_crash(milliseconds(60), 2, milliseconds(80));
  const auto m = run_simulation(light_set(), cfg);
  EXPECT_EQ(m.per_fault.at(fault::FaultKind::kStationCrash).injected, 1u);
  EXPECT_EQ(m.per_fault.at(fault::FaultKind::kStationRejoin).injected, 1u);
  // After the rejoin station 2 releases and completes messages again:
  // more releases than the pre-crash ~2, fewer than the clean ~10.
  ASSERT_TRUE(m.per_station.count(2));
  EXPECT_GT(m.per_station.at(2).completed, 3u);
}

TEST(TtpFault, DuplicateTokenResolvedWithShortOutage) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_sim_config(light_set(), ttp_params(), bw, 10.0);
  cfg.faults.add_duplicate_token(milliseconds(50));
  const auto m = run_simulation(light_set(), cfg);
  const auto& acct = m.per_fault.at(fault::FaultKind::kDuplicateToken);
  EXPECT_EQ(acct.injected, 1u);
  EXPECT_LT(acct.outage,
            fault::ttp_token_loss_outage(cfg.ttp, bw, cfg.ttrt));
  EXPECT_GT(m.messages_completed, 15u);
}

TEST(TtpFault, InvalidPlanRejected) {
  auto cfg = make_sim_config(light_set(), ttp_params(), mbps(100), 5.0);
  cfg.faults.add_token_loss(milliseconds(1));
  cfg.faults.add(fault::FaultEvent{-1.0, fault::FaultKind::kTokenLoss});
  EXPECT_THROW(make_simulator(light_set(), cfg), PreconditionError);

  auto bad_station = make_sim_config(light_set(), ttp_params(), mbps(100),
                                         5.0);
  bad_station.faults.add_station_crash(milliseconds(1), 99);
  EXPECT_THROW(make_simulator(light_set(), bad_station), PreconditionError);
}

// ---- PDP --------------------------------------------------------------------

TEST(PdpFault, LossIsCountedAndRingRecovers) {
  const BitsPerSecond bw = mbps(16);
  auto cfg = make_sim_config(light_set(), pdp_params(), bw, 10.0);
  cfg.faults.add_token_loss(milliseconds(50));
  const auto m = run_simulation(light_set(), cfg);
  EXPECT_EQ(m.token_losses, 1u);
  EXPECT_NEAR(m.total_outage(), fault::pdp_monitor_outage(cfg.pdp, bw),
              1e-9);
  EXPECT_GT(m.messages_completed, 15u);
}

TEST(PdpFault, AbortedFrameIsRetransmitted) {
  // Kill the token right in the middle of the only message's transmission:
  // the payload must still arrive (later), not be silently lost.
  const BitsPerSecond bw = mbps(1);
  auto cfg = make_sim_config(light_set(), pdp_params(), bw, 1.0);
  cfg.async_model = AsyncModel::kNone;
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 5'000.0, 0));  // ~10 frames, ~6 ms
  cfg.horizon = milliseconds(99);
  cfg.faults.add_token_loss(milliseconds(3));  // mid-message
  const auto m = run_simulation(set, cfg);
  EXPECT_EQ(m.token_losses, 1u);
  ASSERT_EQ(m.messages_completed, 1u);
  EXPECT_EQ(m.deadline_misses, 0u);
  // The outage pushed the completion later than the clean run.
  cfg.faults = {};
  const auto mc = run_simulation(set, cfg);
  EXPECT_GT(m.response_time.mean(), mc.response_time.mean());
}

TEST(PdpFault, RecoveryRestartsArbitrationByPriority) {
  // Two messages pending during the outage: after recovery the
  // shorter-period one transmits first (no misses for it).
  const BitsPerSecond bw = mbps(16);
  auto cfg = make_sim_config(light_set(), pdp_params(), bw, 5.0);
  cfg.faults.add_token_loss(milliseconds(1));
  const auto m = run_simulation(light_set(), cfg);
  EXPECT_EQ(m.token_losses, 1u);
  ASSERT_TRUE(m.per_station.count(0));
  EXPECT_EQ(m.per_station.at(0).misses, 0u);  // P=20ms stream unharmed
}

TEST(PdpFault, ManyLossesDegradeButNeverWedge) {
  const BitsPerSecond bw = mbps(16);
  auto cfg = make_sim_config(light_set(), pdp_params(), bw, 20.0);
  for (int i = 1; i <= 20; ++i) {
    cfg.faults.add_token_loss(milliseconds(18.0 * i));
  }
  const auto m = run_simulation(light_set(), cfg);
  EXPECT_EQ(m.token_losses, 20u);
  // Ring keeps making progress between losses.
  EXPECT_GT(m.messages_completed, 20u);
}

TEST(PdpFault, CorruptionRetransmitsWithinOneSlot) {
  const BitsPerSecond bw = mbps(16);
  auto cfg = make_sim_config(light_set(), pdp_params(), bw, 10.0);
  cfg.faults.add_frame_corruption(milliseconds(50));
  const auto m = run_simulation(light_set(), cfg);
  const auto& acct = m.per_fault.at(fault::FaultKind::kFrameCorruption);
  EXPECT_EQ(acct.injected, 1u);
  EXPECT_LE(acct.outage, fault::pdp_corruption_outage(cfg.pdp, bw) + 1e-12);
  EXPECT_EQ(m.token_losses, 0u);
  EXPECT_GT(m.messages_completed, 15u);
}

TEST(PdpFault, CrashShrinksThetaAndRejoinRestoresService) {
  const BitsPerSecond bw = mbps(16);
  auto cfg = make_sim_config(light_set(), pdp_params(), bw, 10.0);
  cfg.faults.add_station_crash(milliseconds(60), 2, milliseconds(60));
  const auto m = run_simulation(light_set(), cfg);
  EXPECT_EQ(m.per_fault.at(fault::FaultKind::kStationCrash).injected, 1u);
  EXPECT_EQ(m.per_fault.at(fault::FaultKind::kStationRejoin).injected, 1u);
  // Station 0 rides through both reconfigurations; station 2 resumes after
  // the rejoin.
  ASSERT_TRUE(m.per_station.count(0));
  EXPECT_GT(m.per_station.at(0).completed, 15u);
  ASSERT_TRUE(m.per_station.count(2));
  EXPECT_GT(m.per_station.at(2).completed, 3u);
}

TEST(PdpFault, DuplicateTokenCheaperThanMonitorRecovery) {
  const BitsPerSecond bw = mbps(16);
  auto cfg = make_sim_config(light_set(), pdp_params(), bw, 10.0);
  cfg.faults.add_duplicate_token(milliseconds(50));
  const auto m = run_simulation(light_set(), cfg);
  const auto& acct = m.per_fault.at(fault::FaultKind::kDuplicateToken);
  EXPECT_EQ(acct.injected, 1u);
  EXPECT_LT(acct.outage, fault::pdp_monitor_outage(cfg.pdp, bw));
  EXPECT_GT(m.messages_completed, 15u);
}

// ---- determinism & guards ---------------------------------------------------

TEST(FaultDeterminism, RandomPlanRunsAreBitIdentical) {
  const BitsPerSecond bw = mbps(100);
  fault::FaultRates rates;
  rates.token_loss = 20.0;
  rates.frame_corruption = 20.0;
  rates.noise_burst = 5.0;
  rates.noise_duration = milliseconds(1);
  rates.station_crash = 5.0;
  rates.crash_downtime = milliseconds(20);
  rates.duplicate_token = 10.0;

  auto cfg = make_sim_config(light_set(), ttp_params(), bw, 10.0);
  cfg.faults = fault::FaultPlan::random(rates, cfg.horizon, 1234,
                                        cfg.ttp.ring.num_stations);
  ASSERT_FALSE(cfg.faults.empty());
  const auto a = run_simulation(light_set(), cfg);
  const auto b = run_simulation(light_set(), cfg);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.messages_completed, b.messages_completed);
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_EQ(a.total_outage(), b.total_outage());          // bit-identical
  EXPECT_EQ(a.response_time.mean(), b.response_time.mean());

  // Same seed regenerates the same plan; a different seed does not.
  const auto again = fault::FaultPlan::random(rates, cfg.horizon, 1234,
                                              cfg.ttp.ring.num_stations);
  EXPECT_EQ(again.size(), cfg.faults.size());
  const auto other = fault::FaultPlan::random(rates, cfg.horizon, 99,
                                              cfg.ttp.ring.num_stations);
  EXPECT_NE(other.sorted_events().front().time,
            cfg.faults.sorted_events().front().time);
}

TEST(EventStormGuard, TinyEventBudgetAborts) {
  const BitsPerSecond bw = mbps(100);
  auto cfg = make_sim_config(light_set(), ttp_params(), bw, 10.0);
  cfg.max_events = 50;  // a real run takes many thousands
  EXPECT_THROW(run_simulation(light_set(), cfg), EventStormError);
}

TEST(EventStormGuard, DefaultBudgetDoesNotTripNormalRuns) {
  const BitsPerSecond bw = mbps(16);
  auto cfg = make_sim_config(light_set(), pdp_params(), bw, 5.0);
  cfg.faults.add_token_loss(milliseconds(10));
  EXPECT_NO_THROW(run_simulation(light_set(), cfg));
}

}  // namespace
}  // namespace tokenring::sim
