#include "tokenring/breakdown/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "tokenring/analysis/kernels.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/exec/seed_stream.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::breakdown {
namespace {

msg::MessageSetGenerator small_generator() {
  msg::GeneratorConfig g;
  g.num_streams = 10;
  g.mean_period = milliseconds(100);
  g.period_ratio = 10.0;
  return msg::MessageSetGenerator(g);
}

TEST(MonteCarlo, ClosedFormPredicateRecoversThreshold) {
  // Against "utilization <= 0.8" every saturated sample lands exactly on
  // 0.8, so the estimator must return 0.8 with ~zero variance.
  const BitsPerSecond bw = mbps(10);
  const SchedulablePredicate predicate = [bw](const msg::MessageSet& m) {
    return m.utilization(bw) <= 0.8;
  };
  auto gen = small_generator();
  Rng rng(1);
  MonteCarloOptions opts;
  opts.num_sets = 25;
  const auto est = estimate_breakdown_utilization(gen, predicate, bw, rng, opts);
  EXPECT_EQ(est.utilization.count(), 25u);
  EXPECT_NEAR(est.mean(), 0.8, 1e-4);
  EXPECT_LT(est.utilization.stddev(), 1e-4);
  EXPECT_EQ(est.degenerate_sets, 0u);
  EXPECT_EQ(est.unbounded_sets, 0u);
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  const BitsPerSecond bw = mbps(100);
  analysis::TtpParams p;
  p.ring = net::fddi_ring(10);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  const SchedulablePredicate predicate = [&](const msg::MessageSet& m) {
    return analysis::ttp_feasible(m, p, bw);
  };
  auto gen = small_generator();
  MonteCarloOptions opts;
  opts.num_sets = 10;

  Rng r1(42);
  Rng r2(42);
  const auto a = estimate_breakdown_utilization(gen, predicate, bw, r1, opts);
  const auto b = estimate_breakdown_utilization(gen, predicate, bw, r2, opts);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.utilization.stddev(), b.utilization.stddev());
}

TEST(MonteCarlo, DegenerateSamplesCountAsZero) {
  const SchedulablePredicate never = [](const msg::MessageSet&) {
    return false;
  };
  auto gen = small_generator();
  Rng rng(3);
  MonteCarloOptions opts;
  opts.num_sets = 5;
  const auto est =
      estimate_breakdown_utilization(gen, never, mbps(10), rng, opts);
  EXPECT_EQ(est.degenerate_sets, 5u);
  EXPECT_EQ(est.utilization.count(), 5u);
  EXPECT_DOUBLE_EQ(est.mean(), 0.0);
}

TEST(MonteCarlo, UnboundedSamplesExcluded) {
  const SchedulablePredicate always = [](const msg::MessageSet&) {
    return true;
  };
  auto gen = small_generator();
  Rng rng(4);
  MonteCarloOptions opts;
  opts.num_sets = 5;
  opts.saturation.max_scale = 100.0;
  const auto est =
      estimate_breakdown_utilization(gen, always, mbps(10), rng, opts);
  EXPECT_EQ(est.unbounded_sets, 5u);
  EXPECT_EQ(est.utilization.count(), 0u);
}

TEST(MonteCarlo, RealTtpEstimateIsInPlausibleRange) {
  // FDDI at 100 Mbps with 10 stations: average breakdown utilization should
  // land comfortably between the 33% worst case and 100%.
  const BitsPerSecond bw = mbps(100);
  analysis::TtpParams p;
  p.ring = net::fddi_ring(10);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  const SchedulablePredicate predicate = [&](const msg::MessageSet& m) {
    return analysis::ttp_feasible(m, p, bw);
  };
  auto gen = small_generator();
  Rng rng(7);
  MonteCarloOptions opts;
  opts.num_sets = 30;
  const auto est = estimate_breakdown_utilization(gen, predicate, bw, rng, opts);
  EXPECT_GT(est.mean(), 0.5);
  EXPECT_LT(est.mean(), 1.0);
  EXPECT_GT(est.ci95(), 0.0);
}

TEST(MonteCarlo, KeepSamplesRecordsEveryDraw) {
  const BitsPerSecond bw = mbps(10);
  const SchedulablePredicate predicate = [bw](const msg::MessageSet& m) {
    return m.utilization(bw) <= 0.5;
  };
  auto gen = small_generator();
  Rng rng(6);
  MonteCarloOptions opts;
  opts.num_sets = 12;
  opts.keep_samples = true;
  const auto est = estimate_breakdown_utilization(gen, predicate, bw, rng, opts);
  ASSERT_EQ(est.samples.size(), 12u);
  for (double s : est.samples) EXPECT_NEAR(s, 0.5, 1e-4);
}

TEST(MonteCarlo, SamplesOffByDefault) {
  const SchedulablePredicate predicate = [](const msg::MessageSet& m) {
    return m.utilization(mbps(10)) <= 0.5;
  };
  auto gen = small_generator();
  Rng rng(6);
  MonteCarloOptions opts;
  opts.num_sets = 3;
  const auto est =
      estimate_breakdown_utilization(gen, predicate, mbps(10), rng, opts);
  EXPECT_TRUE(est.samples.empty());
  EXPECT_THROW(est.quantile(0.5), PreconditionError);
}

TEST(MonteCarlo, QuantilesAreOrderedAndBracketed) {
  const BitsPerSecond bw = mbps(100);
  analysis::TtpParams p;
  p.ring = net::fddi_ring(10);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  const SchedulablePredicate predicate = [&](const msg::MessageSet& m) {
    return analysis::ttp_feasible(m, p, bw);
  };
  auto gen = small_generator();
  Rng rng(8);
  MonteCarloOptions opts;
  opts.num_sets = 40;
  opts.keep_samples = true;
  const auto est = estimate_breakdown_utilization(gen, predicate, bw, rng, opts);
  const double q10 = est.quantile(0.1);
  const double q50 = est.quantile(0.5);
  const double q90 = est.quantile(0.9);
  EXPECT_LE(q10, q50);
  EXPECT_LE(q50, q90);
  EXPECT_DOUBLE_EQ(est.quantile(0.0), est.utilization.min());
  EXPECT_DOUBLE_EQ(est.quantile(1.0), est.utilization.max());
  EXPECT_THROW(est.quantile(1.5), PreconditionError);
}

TEST(MonteCarloParallel, JobsCountDoesNotChangeTheEstimate) {
  // The headline invariant of the exec/ subsystem: for a fixed master seed
  // the BreakdownEstimate is bit-identical for every jobs value, because
  // trial RNGs are keyed by (seed, trial index) and shards are folded in a
  // fixed order. Compare every field exactly — no tolerances.
  const BitsPerSecond bw = mbps(100);
  analysis::TtpParams p;
  p.ring = net::fddi_ring(10);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  const SchedulablePredicate predicate = [&](const msg::MessageSet& m) {
    return analysis::ttp_feasible(m, p, bw);
  };
  auto gen = small_generator();
  MonteCarloOptions opts;
  opts.num_sets = 40;
  opts.keep_samples = true;

  const exec::Executor seq(1);
  const exec::Executor par(8);
  const auto a = estimate_breakdown_utilization(gen, predicate, bw, 42, seq, opts);
  const auto b = estimate_breakdown_utilization(gen, predicate, bw, 42, par, opts);

  EXPECT_EQ(a.utilization.count(), b.utilization.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.ci95(), b.ci95());
  EXPECT_EQ(a.utilization.variance(), b.utilization.variance());
  EXPECT_EQ(a.utilization.min(), b.utilization.min());
  EXPECT_EQ(a.utilization.max(), b.utilization.max());
  EXPECT_EQ(a.degenerate_sets, b.degenerate_sets);
  EXPECT_EQ(a.unbounded_sets, b.unbounded_sets);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
  }
}

TEST(MonteCarloParallel, SamplesAreInTrialIndexOrder) {
  // Recompute each trial independently via its seed stream: samples[k] must
  // be the breakdown of trial k regardless of which worker ran it.
  const BitsPerSecond bw = mbps(100);
  analysis::TtpParams p;
  p.ring = net::fddi_ring(10);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  const SchedulablePredicate predicate = [&](const msg::MessageSet& m) {
    return analysis::ttp_feasible(m, p, bw);
  };
  auto gen = small_generator();
  MonteCarloOptions opts;
  opts.num_sets = 24;
  opts.keep_samples = true;
  const std::uint64_t seed = 91;

  const exec::Executor par(8);
  const auto est = estimate_breakdown_utilization(gen, predicate, bw, seed, par, opts);
  ASSERT_EQ(est.samples.size(), opts.num_sets);

  for (std::size_t k : {std::size_t{0}, std::size_t{7}, std::size_t{23}}) {
    Rng rng = exec::make_trial_rng(seed, k);
    const msg::MessageSet set = gen.generate(rng);
    const auto sat = find_saturation(set, predicate, bw, opts.saturation);
    ASSERT_TRUE(sat.found);
    EXPECT_EQ(est.samples[k], sat.breakdown_utilization) << "trial " << k;
  }
}

TEST(MonteCarloParallel, MergeCombinesCountsAndSamples) {
  BreakdownEstimate a;
  a.utilization.add(0.5);
  a.degenerate_sets = 1;
  a.samples = {0.5};
  BreakdownEstimate b;
  b.utilization.add(0.7);
  b.unbounded_sets = 2;
  b.samples = {0.7};
  a.merge(b);
  EXPECT_EQ(a.utilization.count(), 2u);
  EXPECT_EQ(a.degenerate_sets, 1u);
  EXPECT_EQ(a.unbounded_sets, 2u);
  ASSERT_EQ(a.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(a.samples[0], 0.5);
  EXPECT_DOUBLE_EQ(a.samples[1], 0.7);
}

TEST(MonteCarloParallel, ProgressAndCancellation) {
  const SchedulablePredicate predicate = [](const msg::MessageSet& m) {
    return m.utilization(mbps(10)) <= 0.5;
  };
  auto gen = small_generator();
  MonteCarloOptions opts;
  opts.num_sets = 32;
  std::size_t last_done = 0;
  opts.progress = [&](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 32u);
    EXPECT_GE(done, last_done);
    last_done = done;
  };
  const exec::Executor seq(1);
  const auto est =
      estimate_breakdown_utilization(gen, predicate, mbps(10), 5, seq, opts);
  EXPECT_EQ(est.utilization.count(), 32u);
  EXPECT_EQ(last_done, 32u);

  exec::CancellationToken token;
  token.request_cancel();
  MonteCarloOptions cancelled = opts;
  cancelled.progress = nullptr;
  cancelled.cancel = token;
  EXPECT_THROW(
      estimate_breakdown_utilization(gen, predicate, mbps(10), 5, seq, cancelled),
      exec::Cancelled);
}

// ---- batched (SoA) estimator -----------------------------------------------

analysis::TtpParams paper_ttp_params() {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(10);
  p.frame = net::paper_frame_format();
  p.async_frame = net::paper_frame_format();
  return p;
}

ScaleKernelFactory scalar_ttp_factory(const analysis::TtpParams& p,
                                      BitsPerSecond bw) {
  return [p, bw](const msg::MessageSet& base) {
    return ScaleKernel(analysis::TtpScaleKernel(base, p, bw));
  };
}

BatchScaleKernelFactory batched_ttp_factory(const analysis::TtpParams& p,
                                            BitsPerSecond bw) {
  return [p, bw](std::span<const msg::MessageSet> bases) {
    auto kernel = std::make_shared<analysis::TtpBatchKernel>(bases, p, bw);
    return BatchScaleKernel([kernel](std::span<const double> scales,
                                     std::span<const std::uint8_t> active,
                                     std::span<std::uint8_t> verdicts) {
      kernel->evaluate(scales, active, verdicts);
    });
  };
}

void expect_identical(const BreakdownEstimate& a, const BreakdownEstimate& b) {
  EXPECT_EQ(a.utilization.count(), b.utilization.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.ci95(), b.ci95());
  EXPECT_EQ(a.utilization.variance(), b.utilization.variance());
  EXPECT_EQ(a.utilization.min(), b.utilization.min());
  EXPECT_EQ(a.utilization.max(), b.utilization.max());
  EXPECT_EQ(a.degenerate_sets, b.degenerate_sets);
  EXPECT_EQ(a.unbounded_sets, b.unbounded_sets);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
  }
}

TEST(MonteCarloBatch, EveryJobsBatchGridPointMatchesTheScalarEstimate) {
  // The batched overload's contract: lockstep SoA saturation reproduces the
  // scalar per-trial estimate bit for bit for every (jobs, batch_size)
  // combination. 37 trials so no grid point divides evenly — remainder
  // batches, partial shards and partial batch groups are all exercised.
  const BitsPerSecond bw = mbps(100);
  const auto p = paper_ttp_params();
  auto gen = small_generator();
  MonteCarloOptions opts;
  opts.num_sets = 37;
  opts.keep_samples = true;
  const std::uint64_t seed = 42;

  const exec::Executor seq(1);
  const auto reference = estimate_breakdown_utilization(
      gen, scalar_ttp_factory(p, bw), bw, seed, seq, opts);
  EXPECT_GT(reference.utilization.count(), 0u);

  for (std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    const exec::Executor executor(jobs);
    for (std::size_t batch : {std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
      MonteCarloOptions batched_opts = opts;
      batched_opts.batch_size = batch;
      const auto batched = estimate_breakdown_utilization(
          gen, batched_ttp_factory(p, bw), bw, seed, executor, batched_opts);
      SCOPED_TRACE("jobs=" + std::to_string(jobs) +
                   " batch=" + std::to_string(batch));
      expect_identical(reference, batched);
    }
  }
}

TEST(MonteCarloBatch, SequentialBatchedPreservesTheSharedDrawStream) {
  // The Rng& overload draws a whole batch from the shared stream before
  // saturating it; because the boundary search consumes no randomness this
  // must leave both the estimate and the engine's position identical to
  // the one-at-a-time path — checked by comparing the next draw after
  // each run.
  const BitsPerSecond bw = mbps(100);
  const auto p = paper_ttp_params();
  auto gen = small_generator();
  MonteCarloOptions opts;
  opts.num_sets = 37;
  opts.keep_samples = true;

  Rng scalar_rng(42);
  const auto reference = estimate_breakdown_utilization(
      gen, scalar_ttp_factory(p, bw), bw, scalar_rng, opts);
  const double next_draw = scalar_rng.uniform(0.0, 1.0);

  for (std::size_t batch : {std::size_t{1}, std::size_t{5}, std::size_t{64}}) {
    MonteCarloOptions batched_opts = opts;
    batched_opts.batch_size = batch;
    Rng rng(42);
    const auto batched = estimate_breakdown_utilization(
        gen, batched_ttp_factory(p, bw), bw, rng, batched_opts);
    SCOPED_TRACE("batch=" + std::to_string(batch));
    expect_identical(reference, batched);
    EXPECT_EQ(rng.uniform(0.0, 1.0), next_draw);
  }
}

TEST(MonteCarloBatch, BatchSizePreconditionRejected) {
  const BitsPerSecond bw = mbps(100);
  const auto p = paper_ttp_params();
  auto gen = small_generator();
  MonteCarloOptions opts;
  opts.num_sets = 2;
  opts.batch_size = 0;
  Rng rng(1);
  EXPECT_THROW(estimate_breakdown_utilization(gen, batched_ttp_factory(p, bw),
                                              bw, rng, opts),
               PreconditionError);
  const exec::Executor seq(1);
  EXPECT_THROW(estimate_breakdown_utilization(gen, batched_ttp_factory(p, bw),
                                              bw, 1, seq, opts),
               PreconditionError);
}

TEST(MonteCarlo, Preconditions) {
  auto gen = small_generator();
  Rng rng(1);
  MonteCarloOptions opts;
  opts.num_sets = 0;
  const SchedulablePredicate always = [](const msg::MessageSet&) {
    return true;
  };
  EXPECT_THROW(estimate_breakdown_utilization(gen, always, mbps(10), rng, opts),
               PreconditionError);
  opts.num_sets = 1;
  EXPECT_THROW(estimate_breakdown_utilization(gen, always, 0.0, rng, opts),
               PreconditionError);
}

}  // namespace
}  // namespace tokenring::breakdown
