#include <gtest/gtest.h>

#include "tokenring/common/checks.hpp"
#include "tokenring/msg/message_set.hpp"
#include "tokenring/msg/stream.hpp"

namespace tokenring::msg {
namespace {

SyncStream make(Seconds period, Bits payload, int station = 0) {
  return SyncStream{period, payload, station};
}

TEST(SyncStream, PayloadTimeAndUtilization) {
  const SyncStream s = make(milliseconds(100), bytes(1'000));  // 8000 bits
  EXPECT_NEAR(to_milliseconds(s.payload_time(mbps(1))), 8.0, 1e-12);
  EXPECT_NEAR(s.utilization(mbps(1)), 0.08, 1e-12);
  EXPECT_NEAR(s.utilization(mbps(8)), 0.01, 1e-12);
}

TEST(SyncStream, ValidateRejectsBadStreams) {
  EXPECT_THROW(make(0.0, 100.0).validate(), PreconditionError);
  EXPECT_THROW(make(-1.0, 100.0).validate(), PreconditionError);
  EXPECT_THROW(make(1.0, -1.0).validate(), PreconditionError);
  SyncStream s = make(1.0, 100.0);
  s.station = -1;
  EXPECT_THROW(s.validate(), PreconditionError);
  EXPECT_NO_THROW(make(1.0, 0.0).validate());  // zero payload is legal
}

TEST(SyncStream, DescribeMentionsKeyNumbers) {
  const SyncStream s = make(milliseconds(50), 512.0, 7);
  const std::string d = s.describe(mbps(1));
  EXPECT_NE(d.find("station=7"), std::string::npos);
  EXPECT_NE(d.find("P=50"), std::string::npos);
}

TEST(MessageSet, UtilizationSums) {
  MessageSet set;
  set.add(make(milliseconds(10), 1'000.0, 0));
  set.add(make(milliseconds(20), 4'000.0, 1));
  // At 1 Mbps: 1ms/10ms + 4ms/20ms = 0.1 + 0.2.
  EXPECT_NEAR(set.utilization(mbps(1)), 0.3, 1e-12);
}

TEST(MessageSet, EmptySetBasics) {
  MessageSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.utilization(mbps(1)), 0.0);
  EXPECT_THROW(set.min_period(), PreconditionError);
  EXPECT_THROW(set.max_period(), PreconditionError);
}

TEST(MessageSet, MinMaxPeriod) {
  MessageSet set;
  set.add(make(milliseconds(30), 1.0, 0));
  set.add(make(milliseconds(10), 1.0, 1));
  set.add(make(milliseconds(20), 1.0, 2));
  EXPECT_DOUBLE_EQ(set.min_period(), milliseconds(10));
  EXPECT_DOUBLE_EQ(set.max_period(), milliseconds(30));
}

TEST(MessageSet, RmSortedOrdersByPeriod) {
  MessageSet set;
  set.add(make(milliseconds(30), 1.0, 0));
  set.add(make(milliseconds(10), 2.0, 1));
  set.add(make(milliseconds(20), 3.0, 2));
  const MessageSet sorted = set.rm_sorted();
  EXPECT_DOUBLE_EQ(sorted[0].period, milliseconds(10));
  EXPECT_DOUBLE_EQ(sorted[1].period, milliseconds(20));
  EXPECT_DOUBLE_EQ(sorted[2].period, milliseconds(30));
  // Original untouched.
  EXPECT_DOUBLE_EQ(set[0].period, milliseconds(30));
}

TEST(MessageSet, RmSortStableForEqualPeriods) {
  MessageSet set;
  set.add(make(milliseconds(10), 1.0, 5));
  set.add(make(milliseconds(10), 2.0, 3));
  set.add(make(milliseconds(10), 3.0, 9));
  const MessageSet sorted = set.rm_sorted();
  EXPECT_EQ(sorted[0].station, 5);
  EXPECT_EQ(sorted[1].station, 3);
  EXPECT_EQ(sorted[2].station, 9);
}

TEST(MessageSet, ScaledMultipliesPayloadsOnly) {
  MessageSet set;
  set.add(make(milliseconds(10), 1'000.0, 0));
  set.add(make(milliseconds(20), 2'000.0, 1));
  const MessageSet doubled = set.scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled[0].payload_bits, 2'000.0);
  EXPECT_DOUBLE_EQ(doubled[1].payload_bits, 4'000.0);
  EXPECT_DOUBLE_EQ(doubled[0].period, set[0].period);
  EXPECT_NEAR(doubled.utilization(mbps(1)), 2.0 * set.utilization(mbps(1)),
              1e-12);
}

TEST(MessageSet, ScaledByZeroAndIdentity) {
  MessageSet set;
  set.add(make(milliseconds(10), 1'000.0, 0));
  EXPECT_DOUBLE_EQ(set.scaled(0.0)[0].payload_bits, 0.0);
  EXPECT_DOUBLE_EQ(set.scaled(1.0)[0].payload_bits, 1'000.0);
  EXPECT_THROW(set.scaled(-0.5), PreconditionError);
}

TEST(MessageSet, ScaledIntoMatchesScaledBitForBit) {
  MessageSet set;
  set.add(make(milliseconds(10), 1'000.0, 0));
  set.add(make(milliseconds(30), 12'345.0, 1));
  MessageSet buffer;
  for (const double factor : {0.0, 0.3777, 1.0, 17.5}) {
    set.scaled_into(factor, buffer);
    const MessageSet copy = set.scaled(factor);
    ASSERT_EQ(buffer.size(), copy.size());
    for (std::size_t i = 0; i < copy.size(); ++i) {
      EXPECT_EQ(buffer[i].payload_bits, copy[i].payload_bits);
      EXPECT_EQ(buffer[i].period, copy[i].period);
      EXPECT_EQ(buffer[i].station, copy[i].station);
    }
  }
  // The buffer shrinks and grows with the source set.
  MessageSet one;
  one.add(make(milliseconds(5), 7.0, 2));
  one.scaled_into(2.0, buffer);
  ASSERT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer[0].payload_bits, 14.0);
}

TEST(MessageSet, ScaledIntoRejectsAliasingAndNegativeFactor) {
  MessageSet set;
  set.add(make(milliseconds(10), 1'000.0, 0));
  MessageSet buffer;
  EXPECT_THROW(set.scaled_into(-1.0, buffer), PreconditionError);
  EXPECT_THROW(set.scaled_into(1.0, set), PreconditionError);
}

TEST(MessageSet, ValidatePropagatesToStreams) {
  MessageSet set;
  set.add(make(0.0, 1.0, 0));
  EXPECT_THROW(set.validate(), PreconditionError);
}

}  // namespace
}  // namespace tokenring::msg
