// Tests for the observability layer: JSON emission and validation, the
// metric registry's determinism contract across thread counts, trace
// sinks (JSONL round-trip, ring-buffer forensics), and the run-manifest
// schema (golden document).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "tokenring/breakdown/monte_carlo.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/exec/executor.hpp"
#include "tokenring/experiments/setup.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/obs/json.hpp"
#include "tokenring/obs/manifest.hpp"
#include "tokenring/obs/registry.hpp"
#include "tokenring/obs/span.hpp"
#include "tokenring/obs/trace_sinks.hpp"
#include "tokenring/sim/trace.hpp"

namespace {

using namespace tokenring;

// ---- JSON primitives ---------------------------------------------------------

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::escape_json("plain"), "plain");
  EXPECT_EQ(obs::escape_json("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::escape_json("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_json("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(obs::escape_json(std::string("a\x01z")), "a\\u0001z");
  // Multi-byte UTF-8 passes through unchanged.
  EXPECT_EQ(obs::escape_json("π"), "π");
}

TEST(JsonNumber, RoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(obs::json_number(0.0), "0");
  EXPECT_EQ(obs::json_number(2.5), "2.5");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  // Shortest form still parses back to the identical bits.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(obs::json_number(v)), v);
}

TEST(JsonValidator, AcceptsValidRejectsInvalid) {
  EXPECT_TRUE(obs::is_valid_json("{}"));
  EXPECT_TRUE(obs::is_valid_json(" { \"a\" : [1, -2.5e3, true, null] } "));
  EXPECT_TRUE(obs::is_valid_json("\"\\u00e9\""));
  EXPECT_FALSE(obs::is_valid_json(""));
  EXPECT_FALSE(obs::is_valid_json("{"));
  EXPECT_FALSE(obs::is_valid_json("{} extra"));
  EXPECT_FALSE(obs::is_valid_json("{'a':1}"));
  EXPECT_FALSE(obs::is_valid_json("[01]"));
  EXPECT_FALSE(obs::is_valid_json("\"\n\""));  // raw control char
}

TEST(JsonWriter, CompactObjectWithNestedArray) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("name").value_string("x\"y");
  w.key("vals");
  w.begin_array();
  w.value_int(-3);
  w.value_uint(7);
  w.value_bool(false);
  w.value_null();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.depth(), 0u);
  EXPECT_EQ(os.str(), R"({"name":"x\"y","vals":[-3,7,false,null]})");
  EXPECT_TRUE(obs::is_valid_json(os.str()));
}

TEST(JsonWriter, StrictModeRejectsNonFiniteAndInvalidRawTokens) {
  // Wire formats opt into strict mode: a degraded-but-parseable document
  // (a latency rendered as null) is worse there than a failed request.
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_array();
  EXPECT_THROW(w.value_number(std::nan("")), PreconditionError);
  EXPECT_THROW(w.value_number(std::numeric_limits<double>::infinity()),
               PreconditionError);
  EXPECT_THROW(w.value_raw("{oops"), PreconditionError);
  w.value_raw("{\"ok\":1}");  // pre-rendered tokens must themselves parse
  w.value_number(2.5);
  w.end_array();
  EXPECT_EQ(os.str(), R"([{"ok":1},2.5])");

  // The default (manifest) mode keeps the lenient non-finite -> null
  // rendering so metric emission never throws mid-document.
  std::ostringstream lenient;
  obs::JsonWriter lw(lenient);
  lw.begin_array();
  lw.value_number(std::nan(""));
  lw.end_array();
  EXPECT_EQ(lenient.str(), "[null]");
}

TEST(JsonParse, BuildsDocumentWithExactNumberTokens) {
  const auto doc = obs::parse_json(
      R"( {"seed": 9007199254740993, "rate": 1e-3, "tags": ["a", null]} )");
  ASSERT_TRUE(doc.ok) << doc.error;
  const obs::JsonValue* seed = doc.value.find("seed");
  ASSERT_NE(seed, nullptr);
  // 2^53 + 1 is not representable as a double; the raw token preserves it.
  EXPECT_EQ(seed->as_int64(), 9007199254740993LL);
  EXPECT_EQ(seed->number_token(), "9007199254740993");
  EXPECT_DOUBLE_EQ(doc.value.find("rate")->as_double(), 1e-3);
  EXPECT_EQ(doc.value.find("rate")->number_token(), "1e-3");
  ASSERT_EQ(doc.value.find("tags")->items().size(), 2u);
  EXPECT_EQ(doc.value.find("tags")->items()[0].as_string(), "a");
  EXPECT_TRUE(doc.value.find("tags")->items()[1].is_null());
  EXPECT_EQ(doc.value.find("missing"), nullptr);
}

TEST(JsonParse, AccessorsRejectLossyConversions) {
  const auto doc = obs::parse_json(
      R"({"half": 1.5, "big": 18446744073709551615, "s": "x"})");
  ASSERT_TRUE(doc.ok) << doc.error;
  // No silent truncation: 1.5 is a number but not an integer.
  EXPECT_THROW(doc.value.find("half")->as_int64(), PreconditionError);
  // 2^64 - 1 fits unsigned but overflows signed.
  EXPECT_EQ(doc.value.find("big")->as_uint64(), 18446744073709551615ULL);
  EXPECT_THROW(doc.value.find("big")->as_int64(), PreconditionError);
  EXPECT_THROW(doc.value.find("s")->as_double(), PreconditionError);
  EXPECT_THROW(doc.value.as_string(), PreconditionError);
}

TEST(JsonParse, ReportsByteOffsetOfFirstError) {
  struct Case {
    const char* text;
    std::size_t offset;
  };
  // The offset is what a malformed-request 400 points the client at, so
  // pin it to the exact offending byte, not just "it failed".
  const Case cases[] = {
      {"{\"type\": }", 9},       // value expected where '}' sits
      {"{} extra", 3},           // trailing garbage after the document
      {"[1, 2", 5},              // unterminated array: fails at end of input
      {"{\"a\" 1}", 5},          // missing ':' separator
      {"[01]", 2},               // leading zero: '1' starts the garbage
  };
  for (const auto& c : cases) {
    const auto doc = obs::parse_json(c.text);
    EXPECT_FALSE(doc.ok) << c.text;
    EXPECT_EQ(doc.error_offset, c.offset) << c.text << ": " << doc.error;
    EXPECT_FALSE(doc.error.empty()) << c.text;
    // validate_json is parse_json minus the document; same diagnostics.
    const auto validated = obs::validate_json(c.text);
    EXPECT_FALSE(validated.ok) << c.text;
    EXPECT_EQ(validated.error_offset, c.offset) << c.text;
  }
}

TEST(JsonParse, DecodesUnicodeEscapesToUtf8) {
  // Basic multilingual plane escape: \u00e9 -> U+00E9 as two UTF-8 bytes.
  const auto bmp = obs::parse_json("\"caf\\u00e9\"");
  ASSERT_TRUE(bmp.ok);
  EXPECT_EQ(bmp.value.as_string(), "caf\xc3\xa9");
  // Surrogate pair combines into one 4-byte UTF-8 sequence (U+1F600).
  const auto pair = obs::parse_json("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(pair.ok);
  EXPECT_EQ(pair.value.as_string(), "\xf0\x9f\x98\x80");
  // An unpaired surrogate is still accepted (the validator takes any hex
  // quad) but decodes to U+FFFD instead of smuggling invalid UTF-8.
  const auto lone = obs::parse_json("\"\\ud83d!\"");
  ASSERT_TRUE(lone.ok);
  EXPECT_EQ(lone.value.as_string(), "\xef\xbf\xbd!");
}

// ---- registry ----------------------------------------------------------------

TEST(Registry, CounterAggregationIsDeterministicAcrossJobs) {
  // The same logical workload recorded under 1 worker and under 8 workers
  // must produce bit-identical counter values: integers, order-independent
  // merges. This is the manifest's cross---jobs determinism contract.
  auto run_workload = [](std::size_t jobs) {
    obs::Registry::global().reset_values();
    const exec::Executor executor(jobs);
    executor.parallel_for(64, [](std::size_t i) {
      static const obs::Counter trials("obs_test.trials");
      static const obs::Counter weight("obs_test.weight");
      static const obs::Gauge deepest("obs_test.deepest");
      static const obs::Histogram util("obs_test.util", {0.25, 0.5, 0.75});
      trials.add();
      weight.add(i);
      deepest.record(i % 17);
      util.observe(static_cast<double>(i) / 64.0);
    });
    return obs::Registry::global().snapshot();
  };

  const auto seq = run_workload(1);
  const auto par = run_workload(8);

  EXPECT_EQ(seq.counters.at("obs_test.trials"), 64u);
  EXPECT_EQ(seq.counters.at("obs_test.trials"),
            par.counters.at("obs_test.trials"));
  EXPECT_EQ(seq.counters.at("obs_test.weight"), 64u * 63u / 2u);
  EXPECT_EQ(seq.counters.at("obs_test.weight"),
            par.counters.at("obs_test.weight"));
  EXPECT_EQ(seq.gauges.at("obs_test.deepest"), 16u);
  EXPECT_EQ(seq.gauges.at("obs_test.deepest"),
            par.gauges.at("obs_test.deepest"));
  const auto& h1 = seq.histograms.at("obs_test.util");
  const auto& h8 = par.histograms.at("obs_test.util");
  EXPECT_EQ(h1.counts, h8.counts);
  EXPECT_EQ(h1.total, 64u);
}

TEST(Registry, PredicateEvalCounterIsDeterministicAcrossJobs) {
  // The saturation search bumps "breakdown.predicate_evals" once per probe.
  // The probe sequence depends only on verdicts (never on timing or thread
  // placement), so the same Monte Carlo run under 1 worker and 4 workers
  // must land on the exact same total — this is the counter the run
  // manifest exposes as the search-effort metric.
  experiments::PaperSetup setup;
  setup.num_stations = 6;
  const BitsPerSecond bw = mbps(16);
  const auto factory =
      setup.pdp_kernel_factory(analysis::PdpVariant::kModified8025, bw);

  auto run_workload = [&](std::size_t jobs) {
    obs::Registry::global().reset_values();
    const exec::Executor executor(jobs);
    breakdown::MonteCarloOptions options;
    options.num_sets = 12;
    msg::MessageSetGenerator generator(setup.generator_config());
    const auto estimate = breakdown::estimate_breakdown_utilization(
        generator, factory, bw, 7, executor, options);
    const auto snap = obs::Registry::global().snapshot();
    return std::pair(estimate.mean(), snap.counters.at("breakdown.predicate_evals"));
  };

  const auto [mean1, evals1] = run_workload(1);
  const auto [mean4, evals4] = run_workload(4);
  EXPECT_EQ(mean1, mean4);
  EXPECT_EQ(evals1, evals4);
  EXPECT_GT(evals1, 0u);
}

TEST(Registry, PredicateEvalCounterIsDeterministicAcrossBatchSizes) {
  // The batched (SoA) estimator replays every scalar probe lane for lane,
  // and its per-lane searches bump "breakdown.predicate_evals" once per
  // probe evaluated for that lane — never once per full-width kernel pass.
  // So the manifest's search-effort metric must agree exactly between the
  // scalar path and the batched path at every batch size (and so must the
  // trial tallies).
  experiments::PaperSetup setup;
  setup.num_stations = 6;
  const BitsPerSecond bw = mbps(16);
  const auto scalar_factory =
      setup.pdp_kernel_factory(analysis::PdpVariant::kModified8025, bw);
  const auto batch_factory =
      setup.pdp_batch_kernel_factory(analysis::PdpVariant::kModified8025, bw);

  struct Tally {
    double mean = 0.0;
    std::uint64_t evals = 0;
    std::uint64_t trials = 0;
  };
  auto run_scalar = [&] {
    obs::Registry::global().reset_values();
    const exec::Executor executor(2);
    breakdown::MonteCarloOptions options;
    options.num_sets = 12;
    msg::MessageSetGenerator generator(setup.generator_config());
    const auto estimate = breakdown::estimate_breakdown_utilization(
        generator, scalar_factory, bw, 7, executor, options);
    const auto snap = obs::Registry::global().snapshot();
    return Tally{estimate.mean(),
                 snap.counters.at("breakdown.predicate_evals"),
                 snap.counters.at("breakdown.trials")};
  };
  auto run_batched = [&](std::size_t batch_size) {
    obs::Registry::global().reset_values();
    const exec::Executor executor(2);
    breakdown::MonteCarloOptions options;
    options.num_sets = 12;
    options.batch_size = batch_size;
    msg::MessageSetGenerator generator(setup.generator_config());
    const auto estimate = breakdown::estimate_breakdown_utilization(
        generator, batch_factory, bw, 7, executor, options);
    const auto snap = obs::Registry::global().snapshot();
    return Tally{estimate.mean(),
                 snap.counters.at("breakdown.predicate_evals"),
                 snap.counters.at("breakdown.trials")};
  };

  const Tally scalar = run_scalar();
  const Tally batch1 = run_batched(1);
  const Tally batch64 = run_batched(64);
  EXPECT_GT(scalar.evals, 0u);
  EXPECT_EQ(scalar.trials, 12u);
  EXPECT_EQ(batch1.mean, scalar.mean);
  EXPECT_EQ(batch1.evals, scalar.evals);
  EXPECT_EQ(batch1.trials, scalar.trials);
  EXPECT_EQ(batch64.mean, scalar.mean);
  EXPECT_EQ(batch64.evals, scalar.evals);
  EXPECT_EQ(batch64.trials, scalar.trials);
}

TEST(Registry, GaugeSurvivesWorkerThreadRetirement) {
  // Gauges fold by max when a pool thread exits; the high watermark set on
  // a retired worker must survive into later snapshots unscaled.
  obs::Registry::global().reset_values();
  {
    const exec::Executor executor(4);
    executor.parallel_for(16, [](std::size_t i) {
      static const obs::Gauge peak("obs_test.retire_peak");
      peak.record(100 + i);
    });
  }  // pool threads join and retire their shards here
  const auto snap = obs::Registry::global().snapshot();
  EXPECT_EQ(snap.gauges.at("obs_test.retire_peak"), 115u);
}

TEST(Registry, HistogramBucketsBySampleValue) {
  obs::Registry::global().reset_values();
  const obs::Histogram h("obs_test.hist", {1.0, 10.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(5.0);   // bucket 1 (<= 10)
  h.observe(99.0);  // overflow bucket
  const auto snap = obs::Registry::global().snapshot();
  const auto& data = snap.histograms.at("obs_test.hist");
  EXPECT_EQ(data.counts, (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(data.total, 4u);
}

TEST(Span, RecordsCountAndDuration) {
  obs::Registry::global().reset_values();
  for (int i = 0; i < 3; ++i) {
    const obs::Span span("obs_test.span");
  }
  const auto profile = obs::span_profile();
  const auto& stats = profile.at("obs_test.span");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_GE(stats.total_ns, stats.max_ns);
}

// ---- JSONL trace sink --------------------------------------------------------

sim::TraceRecord make_record(double at, sim::TraceEventKind kind, int station,
                             double detail) {
  sim::TraceRecord r;
  r.at = at;
  r.kind = kind;
  r.station = station;
  r.detail = detail;
  return r;
}

TEST(JsonlTraceSink, EmitsOneValidObjectPerLineWithKindSpecificFields) {
  std::ostringstream os;
  {
    obs::JsonlTraceSink sink(os);
    ASSERT_TRUE(sink.ok());
    sink.emit(make_record(0.001, sim::TraceEventKind::kMessageArrival, 2,
                          12000.0));
    sink.emit(make_record(0.002, sim::TraceEventKind::kMessageComplete, 2,
                          0.0004));
    sink.emit(make_record(0.003, sim::TraceEventKind::kDeadlineMiss, 5,
                          0.25));
    sink.emit(make_record(0.004, sim::TraceEventKind::kTokenArrival, 0,
                          -0.0001));
  }  // destructor flushes

  std::istringstream lines(os.str());
  std::string line;
  std::vector<std::string> seen;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(obs::is_valid_json(line)) << line;
    seen.push_back(line);
  }
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0],
            R"({"at_s":0.001,"kind":"message_arrival","station":2,)"
            R"("payload_bits":12000})");
  EXPECT_EQ(seen[1],
            R"({"at_s":0.002,"kind":"message_complete","station":2,)"
            R"("response_time_s":4e-04})");
  EXPECT_EQ(seen[2],
            R"({"at_s":0.003,"kind":"deadline_miss","station":5,)"
            R"("response_time_s":0.25})");
  EXPECT_EQ(seen[3],
            R"({"at_s":0.004,"kind":"token_arrival","station":0,)"
            R"("earliness_s":-1e-04})");
}

TEST(JsonlTraceSink, KindNamesAndDetailFieldsAreStable) {
  using K = sim::TraceEventKind;
  EXPECT_STREQ(obs::json_kind_name(K::kSyncFrameStart), "sync_frame_start");
  EXPECT_STREQ(obs::json_kind_name(K::kAsyncFrame), "async_frame");
  EXPECT_STREQ(obs::json_detail_field(K::kSyncFrameStart), "frame_time_s");
  EXPECT_STREQ(obs::json_detail_field(K::kAsyncFrame), "frame_time_s");
  EXPECT_STREQ(obs::json_detail_field(K::kMessageArrival), "payload_bits");
  EXPECT_STREQ(obs::json_detail_field(K::kDeadlineMiss), "response_time_s");
}

// ---- ring-buffer sink --------------------------------------------------------

TEST(RingBufferSink, KeepsExactlyLastNEventsBeforeFirstMiss) {
  constexpr std::size_t kCapacity = 4;
  obs::RingBufferSink sink(kCapacity);

  // 10 ordinary events, then the miss, then noise that must be ignored.
  for (int i = 0; i < 10; ++i) {
    sink.emit(make_record(0.001 * i, sim::TraceEventKind::kTokenArrival, i,
                          0.0));
  }
  sink.emit(
      make_record(0.5, sim::TraceEventKind::kDeadlineMiss, 7, 0.123));
  for (int i = 0; i < 5; ++i) {
    sink.emit(make_record(1.0 + i, sim::TraceEventKind::kAsyncFrame, 1, 0.0));
  }

  const auto window = sink.before_miss();
  ASSERT_EQ(window.size(), kCapacity);
  // Oldest-first: stations 6, 7, 8, 9 — the last four before the miss.
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(window[i].station, static_cast<int>(6 + i));
    EXPECT_EQ(window[i].kind, sim::TraceEventKind::kTokenArrival);
  }
  ASSERT_TRUE(sink.first_miss().has_value());
  EXPECT_EQ(sink.first_miss()->station, 7);
  EXPECT_DOUBLE_EQ(sink.first_miss()->response_time(), 0.123);
}

TEST(RingBufferSink, YoungSimKeepsFewerThanCapacity) {
  obs::RingBufferSink sink(8);
  sink.emit(make_record(0.0, sim::TraceEventKind::kMessageArrival, 0, 1.0));
  sink.emit(make_record(0.1, sim::TraceEventKind::kDeadlineMiss, 0, 0.2));
  EXPECT_EQ(sink.before_miss().size(), 1u);
  EXPECT_TRUE(sink.first_miss().has_value());
}

TEST(FanOutSink, BroadcastsInOrder) {
  std::vector<int> order;
  sim::CallbackSink a([&](const sim::TraceRecord&) { order.push_back(1); });
  sim::CallbackSink b([&](const sim::TraceRecord&) { order.push_back(2); });
  obs::FanOutSink fan({&a, &b});
  fan.emit(make_record(0.0, sim::TraceEventKind::kTokenArrival, 0, 0.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---- run manifest ------------------------------------------------------------

TEST(RunManifest, GoldenDocument) {
  obs::RunManifest m;
  m.tool = "golden_tool";
  m.version = "1.0.0";
  m.git = "deadbee";
  m.seed = 42;
  m.config = {{"alpha", "0.5"}, {"label", "a b"}};
  m.results.push_back({"points",
                       {"x", "name"},
                       {{"1.5", "first"}, {"-2", "second row"}}});
  m.metrics.counters["sim.runs"] = 3;
  m.metrics.gauges["sim.max_queue_depth"] = 9;
  m.metrics.histograms["util"] = {{0.5}, {2, 1}, 3};
  m.metrics.spans["fig1"] = {1, 1000, 1000};

  std::ostringstream os;
  m.write_json(os, 2);
  EXPECT_TRUE(obs::is_valid_json(os.str()));

  const std::string golden = R"({
  "schema": "tokenring.run_manifest/1",
  "tool": "golden_tool",
  "version": "1.0.0",
  "git": "deadbee",
  "seed": 42,
  "jobs": null,
  "config": {
    "alpha": "0.5",
    "label": "a b"
  },
  "results": [
    {
      "name": "points",
      "headers": [
        "x",
        "name"
      ],
      "rows": [
        {
          "x": 1.5,
          "name": "first"
        },
        {
          "x": -2,
          "name": "second row"
        }
      ]
    }
  ],
  "counters": {
    "sim.runs": 3
  },
  "gauges": {
    "sim.max_queue_depth": 9
  },
  "histograms": {
    "util": {
      "bounds": [
        0.5
      ],
      "counts": [
        2,
        1
      ],
      "total": 3
    }
  },
  "span_profile": {
    "fig1": {
      "count": 1,
      "total_ns": 1000,
      "max_ns": 1000
    }
  }
}
)";
  EXPECT_EQ(os.str(), golden);
}

TEST(RunManifest, CompactFormIsValidJson) {
  obs::RunManifest m;
  m.tool = "t";
  std::ostringstream os;
  m.write_json(os, 0);
  const std::string line = os.str();
  // Single line plus trailing newline.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  EXPECT_TRUE(obs::is_valid_json(line));
}

}  // namespace
