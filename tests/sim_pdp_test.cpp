#include "tokenring/sim/config.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "tokenring/common/checks.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::sim {
namespace {

SimConfig base_config(int stations, analysis::PdpVariant variant,
                      BitsPerSecond bw) {
  SimConfig cfg;
  cfg.protocol = Protocol::kPdp;
  cfg.pdp.ring = net::ieee8025_ring(stations);
  cfg.pdp.frame = net::paper_frame_format();
  cfg.pdp.variant = variant;
  cfg.bandwidth = bw;
  cfg.horizon = 0.5;
  cfg.worst_case_phasing = true;
  cfg.async_model = AsyncModel::kNone;
  return cfg;
}

msg::SyncStream stream(Seconds period, Bits payload, int station) {
  return msg::SyncStream{period, payload, station};
}

TEST(PdpSim, SingleStreamSingleFrameTiming) {
  // Two stations, one 512-bit message at station 0, no async: the token is
  // released at station 1 at t=0, walks one hop, and the frame (624 bits)
  // occupies max(F, Theta).
  const BitsPerSecond bw = mbps(1);
  auto cfg = base_config(2, analysis::PdpVariant::kStandard8025, bw);
  cfg.horizon = milliseconds(50);

  msg::MessageSet set;
  set.add(stream(milliseconds(100), 512.0, 0));
  const auto m = run_simulation(set, cfg);

  const Seconds walk =
      cfg.pdp.ring.hop_latency(bw) + cfg.pdp.ring.token_time(bw);
  const Seconds frame = cfg.pdp.frame.frame_time(bw);
  const Seconds theta = cfg.pdp.ring.theta(bw);
  const Seconds expected = walk + std::max(frame, theta);

  EXPECT_EQ(m.messages_completed, 1u);
  EXPECT_EQ(m.deadline_misses, 0u);
  ASSERT_EQ(m.response_time.count(), 1u);
  EXPECT_NEAR(m.response_time.mean(), expected, 1e-12);
}

TEST(PdpSim, HighBandwidthFrameOccupiesTheta) {
  // At 100 Mbps on a 100-station ring the frame is far shorter than Theta:
  // the effective slot is Theta (header-return wait).
  const BitsPerSecond bw = mbps(100);
  auto cfg = base_config(100, analysis::PdpVariant::kStandard8025, bw);
  cfg.horizon = milliseconds(50);

  msg::MessageSet set;
  set.add(stream(milliseconds(100), 512.0, 0));
  const auto m = run_simulation(set, cfg);

  const Seconds walk =
      cfg.pdp.ring.hop_latency(bw) + cfg.pdp.ring.token_time(bw);
  const Seconds theta = cfg.pdp.ring.theta(bw);
  ASSERT_GT(theta, cfg.pdp.frame.frame_time(bw));
  ASSERT_EQ(m.messages_completed, 1u);
  EXPECT_NEAR(m.response_time.mean(), walk + theta, 1e-12);
}

TEST(PdpSim, ModifiedSendsBackToBackFrames) {
  // A 3-frame message: the standard variant re-circulates the token after
  // every frame (full self-loop on a lone station), the modified one does
  // not -> strictly smaller response time.
  const BitsPerSecond bw = mbps(4);
  msg::MessageSet set;
  set.add(stream(milliseconds(100), 3 * 512.0, 0));

  // Horizon below the period: exactly one message, released at t=0 through
  // the deterministic busy-path arbitration (hand-timable).
  auto cfg_std = base_config(2, analysis::PdpVariant::kStandard8025, bw);
  cfg_std.horizon = milliseconds(50);
  auto cfg_mod = base_config(2, analysis::PdpVariant::kModified8025, bw);
  cfg_mod.horizon = milliseconds(50);
  const auto m_std = run_simulation(set, cfg_std);
  const auto m_mod = run_simulation(set, cfg_mod);

  ASSERT_EQ(m_std.messages_completed, m_mod.messages_completed);
  ASSERT_GT(m_std.messages_completed, 0u);
  EXPECT_LT(m_mod.response_time.mean(), m_std.response_time.mean());

  // Modified timing by hand: walk + 3 * max(F, Theta).
  const Seconds walk =
      cfg_mod.pdp.ring.hop_latency(bw) + cfg_mod.pdp.ring.token_time(bw);
  const Seconds slot = std::max(cfg_mod.pdp.frame.frame_time(bw),
                                cfg_mod.pdp.ring.theta(bw));
  EXPECT_NEAR(m_mod.response_time.min(), walk + 3.0 * slot, 1e-12);
}

TEST(PdpSim, RateMonotonicPriorityWins) {
  // Both messages pending at t=0; the shorter-period stream transmits
  // first even though it sits at a higher station index.
  const BitsPerSecond bw = mbps(4);
  auto cfg = base_config(4, analysis::PdpVariant::kStandard8025, bw);
  cfg.horizon = milliseconds(100);

  msg::MessageSet set;
  set.add(stream(milliseconds(100), 512.0, 0));  // low priority
  set.add(stream(milliseconds(10), 512.0, 3));   // high priority
  const auto m = run_simulation(set, cfg);

  ASSERT_GE(m.messages_completed, 2u);
  // The high-priority stream's normalized response must be small; the
  // low-priority one waited behind it. Check the high-priority message was
  // never pushed past its (much shorter) deadline.
  EXPECT_EQ(m.deadline_misses, 0u);
  // Response-time spread: the fastest completion belongs to the
  // high-priority frame which went first; the low-priority one ~2 slots.
  EXPECT_LT(m.response_time.min(), m.response_time.max());
}

TEST(PdpSim, OverloadedStreamMissesDeadlines) {
  // 15 ms of payload every 10 ms at 1 Mbps cannot fit.
  const BitsPerSecond bw = mbps(1);
  auto cfg = base_config(2, analysis::PdpVariant::kModified8025, bw);
  cfg.horizon = milliseconds(200);
  msg::MessageSet set;
  set.add(stream(milliseconds(10), 15'000.0, 0));
  const auto m = run_simulation(set, cfg);
  EXPECT_GT(m.deadline_misses, 0u);
}

TEST(PdpSim, SaturatingAsyncBlocksFirstSyncFrame) {
  // With saturating async, an async frame starts at t=0 before the queued
  // sync frame: the sync response includes that blocking (Lemma 4.1).
  const BitsPerSecond bw = mbps(1);
  auto cfg = base_config(2, analysis::PdpVariant::kStandard8025, bw);
  cfg.async_model = AsyncModel::kSaturating;
  cfg.horizon = milliseconds(50);

  msg::MessageSet set;
  set.add(stream(milliseconds(100), 512.0, 0));
  const auto m = run_simulation(set, cfg);

  const Seconds async_slot = std::max(cfg.pdp.frame.frame_time(bw),
                                      cfg.pdp.ring.theta(bw));
  ASSERT_EQ(m.messages_completed, 1u);
  EXPECT_GT(m.response_time.mean(), async_slot);
  EXPECT_GT(m.async_frames_sent, 0u);
}

TEST(PdpSim, NoAsyncWithoutSaturation) {
  const BitsPerSecond bw = mbps(10);
  auto cfg = base_config(2, analysis::PdpVariant::kStandard8025, bw);
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 512.0, 0));
  const auto m = run_simulation(set, cfg);
  EXPECT_EQ(m.async_frames_sent, 0u);
}

TEST(PdpSim, ArrivalCountMatchesPeriods) {
  const BitsPerSecond bw = mbps(10);
  auto cfg = base_config(2, analysis::PdpVariant::kStandard8025, bw);
  cfg.horizon = milliseconds(100);
  msg::MessageSet set;
  set.add(stream(milliseconds(10), 512.0, 0));
  const auto m = run_simulation(set, cfg);
  // Arrivals at 0, 10, ..., 100 ms inclusive = 11 releases.
  EXPECT_EQ(m.messages_released, 11u);
  EXPECT_EQ(m.deadline_misses, 0u);
}

TEST(PdpSim, IdleTokenCaptureAfterQuietPeriod) {
  // Random phasing, no async: the ring goes idle between messages; the
  // idle-token capture path must still deliver every message.
  const BitsPerSecond bw = mbps(10);
  auto cfg = base_config(4, analysis::PdpVariant::kStandard8025, bw);
  cfg.worst_case_phasing = false;
  cfg.seed = 5;
  cfg.horizon = milliseconds(500);
  msg::MessageSet set;
  set.add(stream(milliseconds(40), 512.0, 0));
  set.add(stream(milliseconds(70), 1'024.0, 2));
  const auto m = run_simulation(set, cfg);
  EXPECT_GT(m.messages_completed, 10u);
  EXPECT_EQ(m.deadline_misses, 0u);
}

TEST(PdpSim, WorstCaseVsRandomPhasing) {
  // Random phasing can only improve (or equal) the worst-case response.
  const BitsPerSecond bw = mbps(4);
  msg::MessageSet set;
  for (int i = 0; i < 6; ++i) {
    set.add(stream(milliseconds(30 + 10 * i), 2'048.0, i));
  }
  auto wc = base_config(6, analysis::PdpVariant::kStandard8025, bw);
  wc.async_model = AsyncModel::kSaturating;
  wc.horizon = milliseconds(300);
  auto rnd = wc;
  rnd.worst_case_phasing = false;
  rnd.seed = 11;
  const auto m_wc = run_simulation(set, wc);
  const auto m_rnd = run_simulation(set, rnd);
  ASSERT_GT(m_wc.messages_completed, 0u);
  ASSERT_GT(m_rnd.messages_completed, 0u);
  EXPECT_GE(m_wc.response_time.max() + 1e-9, m_rnd.response_time.max() * 0.5)
      << "sanity: worst-case phasing should not be wildly better";
}

TEST(PdpSim, StationValidation) {
  auto cfg = base_config(2, analysis::PdpVariant::kStandard8025, mbps(10));
  msg::MessageSet bad;
  bad.add(stream(milliseconds(10), 512.0, 7));  // station out of range
  EXPECT_THROW(make_simulator(bad, cfg), PreconditionError);
}

TEST(PdpSim, MultipleStreamsPerStationSupported) {
  // Generalization beyond the paper's one-stream-per-node model: a station
  // hosting two streams contends with the higher priority of the two.
  const BitsPerSecond bw = mbps(16);
  auto cfg = base_config(4, analysis::PdpVariant::kModified8025, bw);
  cfg.horizon = milliseconds(200);
  msg::MessageSet set;
  set.add(stream(milliseconds(20), 2'048.0, 1));
  set.add(stream(milliseconds(50), 4'096.0, 1));  // same station
  set.add(stream(milliseconds(40), 2'048.0, 3));
  const auto m = run_simulation(set, cfg);
  // 11 + 5 + 6 releases by t = 200 ms inclusive.
  EXPECT_EQ(m.messages_released, 22u);
  EXPECT_EQ(m.deadline_misses, 0u);
  // Both streams at station 1 report under that station.
  ASSERT_TRUE(m.per_station.count(1));
  EXPECT_EQ(m.per_station.at(1).released, 16u);
}

TEST(PdpSim, ConfigValidation) {
  msg::MessageSet set;
  set.add(stream(milliseconds(10), 512.0, 0));
  auto cfg = base_config(2, analysis::PdpVariant::kStandard8025, mbps(10));
  cfg.bandwidth = 0.0;
  EXPECT_THROW(make_simulator(set, cfg), PreconditionError);
  cfg = base_config(2, analysis::PdpVariant::kStandard8025, mbps(10));
  cfg.horizon = 0.0;
  EXPECT_THROW(make_simulator(set, cfg), PreconditionError);
}

TEST(PdpSim, MetricsSummaryMentionsCounts) {
  const BitsPerSecond bw = mbps(10);
  auto cfg = base_config(2, analysis::PdpVariant::kStandard8025, bw);
  msg::MessageSet set;
  set.add(stream(milliseconds(50), 512.0, 0));
  const auto m = run_simulation(set, cfg);
  const std::string s = m.summary();
  EXPECT_NE(s.find("released="), std::string::npos);
  EXPECT_NE(s.find("misses="), std::string::npos);
}

}  // namespace
}  // namespace tokenring::sim
