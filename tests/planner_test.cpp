#include "tokenring/planner/planner.hpp"

#include <gtest/gtest.h>

#include "tokenring/common/checks.hpp"
#include "tokenring/common/rng.hpp"

namespace tokenring::planner {
namespace {

msg::SyncStream stream(Seconds period, Bits payload, int station) {
  return msg::SyncStream{period, payload, station};
}

TEST(Planner, ProtocolNames) {
  EXPECT_STREQ(to_string(Protocol::kIeee8025), "IEEE 802.5");
  EXPECT_STREQ(to_string(Protocol::kModified8025), "Modified IEEE 802.5");
  EXPECT_STREQ(to_string(Protocol::kFddi), "FDDI timed token");
}

TEST(Planner, DefaultConfigFollowsStandards) {
  const auto fddi = default_config(Protocol::kFddi, mbps(100), 32);
  EXPECT_EQ(fddi.ring.num_stations, 32);
  EXPECT_DOUBLE_EQ(fddi.ring.per_station_bit_delay, 75.0);
  const auto ieee = default_config(Protocol::kIeee8025, mbps(16), 32);
  EXPECT_DOUBLE_EQ(ieee.ring.per_station_bit_delay, 4.0);
  EXPECT_NO_THROW(fddi.validate());
  EXPECT_NO_THROW(ieee.validate());
}

TEST(Planner, ConfigValidation) {
  auto cfg = default_config(Protocol::kFddi, mbps(100));
  cfg.bandwidth = 0.0;
  EXPECT_THROW(AdmissionController{cfg}, PreconditionError);
}

class AdmissionPerProtocol : public ::testing::TestWithParam<Protocol> {};

TEST_P(AdmissionPerProtocol, AdmitsLightStreamsRejectsOverload) {
  auto controller = AdmissionController(
      default_config(GetParam(), mbps(16), 16));

  // Light stream: must be admitted.
  const auto d1 = controller.try_admit(stream(milliseconds(50), bytes(500), 0));
  EXPECT_TRUE(d1.admitted) << d1.reason;
  EXPECT_EQ(controller.admitted().size(), 1u);
  EXPECT_GT(controller.utilization(), 0.0);

  // Monster stream: 200% of the link by itself.
  const auto d2 =
      controller.try_admit(stream(milliseconds(10), 320'000.0, 1));
  EXPECT_FALSE(d2.admitted);
  EXPECT_EQ(controller.admitted().size(), 1u);  // set unchanged
  EXPECT_NE(d2.reason.find("criterion"), std::string::npos);
}

TEST_P(AdmissionPerProtocol, RejectsOccupiedStation) {
  auto controller = AdmissionController(
      default_config(GetParam(), mbps(16), 16));
  ASSERT_TRUE(
      controller.try_admit(stream(milliseconds(50), bytes(100), 3)).admitted);
  const auto d = controller.try_admit(stream(milliseconds(60), bytes(100), 3));
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("occupied") != std::string::npos ||
                d.reason.find("already") != std::string::npos,
            false);
}

TEST_P(AdmissionPerProtocol, RejectsStationOutsideRing) {
  auto controller = AdmissionController(
      default_config(GetParam(), mbps(16), 8));
  const auto d = controller.try_admit(stream(milliseconds(50), bytes(100), 8));
  EXPECT_FALSE(d.admitted);
}

TEST_P(AdmissionPerProtocol, RemoveFreesCapacity) {
  auto controller = AdmissionController(
      default_config(GetParam(), mbps(16), 16));
  ASSERT_TRUE(
      controller.try_admit(stream(milliseconds(50), bytes(1000), 0)).admitted);
  EXPECT_TRUE(controller.remove(0));
  EXPECT_FALSE(controller.remove(0));  // already gone
  EXPECT_DOUBLE_EQ(controller.utilization(), 0.0);
  // Station is free again.
  EXPECT_TRUE(
      controller.try_admit(stream(milliseconds(50), bytes(1000), 0)).admitted);
}

TEST_P(AdmissionPerProtocol, AdmittedSetsStaySchedulable) {
  // Invariant: whatever sequence of admits/rejects happens, the accepted
  // set always passes the protocol's criterion.
  auto controller = AdmissionController(
      default_config(GetParam(), mbps(16), 16));
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    msg::SyncStream s;
    s.station = static_cast<int>(rng.uniform_int(0, 15));
    s.period = milliseconds(rng.uniform(10.0, 200.0));
    s.payload_bits = rng.uniform(1'000.0, 200'000.0);
    controller.try_admit(s);
    EXPECT_TRUE(controller.feasible(controller.admitted()));
  }
}

TEST_P(AdmissionPerProtocol, HeadroomIsAdmissibleAndTight) {
  auto controller = AdmissionController(
      default_config(GetParam(), mbps(16), 16));
  ASSERT_TRUE(
      controller.try_admit(stream(milliseconds(40), bytes(2'000), 0)).admitted);

  const auto headroom = controller.headroom_bits(milliseconds(50), 1, 16.0);
  ASSERT_TRUE(headroom.has_value());
  EXPECT_GT(*headroom, 0.0);

  // The quoted payload must be admissible...
  auto probe = controller;
  EXPECT_TRUE(
      probe.try_admit(stream(milliseconds(50), *headroom, 1)).admitted);
  // ...and only slightly more must not be.
  auto probe2 = controller;
  EXPECT_FALSE(
      probe2.try_admit(stream(milliseconds(50), *headroom * 1.01 + 64.0, 1))
          .admitted);
}

TEST_P(AdmissionPerProtocol, HeadroomUnavailableOnOccupiedStation) {
  auto controller = AdmissionController(
      default_config(GetParam(), mbps(16), 16));
  ASSERT_TRUE(
      controller.try_admit(stream(milliseconds(40), bytes(100), 2)).admitted);
  EXPECT_FALSE(controller.headroom_bits(milliseconds(50), 2).has_value());
  EXPECT_FALSE(controller.headroom_bits(milliseconds(50), 99).has_value());
}

INSTANTIATE_TEST_SUITE_P(Protocols, AdmissionPerProtocol,
                         ::testing::Values(Protocol::kIeee8025,
                                           Protocol::kModified8025,
                                           Protocol::kFddi));

TEST(Planner, FddiHeadroomZeroPayloadInfeasibleWhenTtrtTooLong) {
  // A 5 ms period stream forces TTRT <= 2.5 ms; if an admitted 1 s stream
  // pinned TTRT bidding higher... the bid rule re-selects per set, so this
  // must still be admissible. Sanity: headroom exists for short periods.
  auto controller =
      AdmissionController(default_config(Protocol::kFddi, mbps(100), 8));
  ASSERT_TRUE(controller
                  .try_admit(stream(milliseconds(1'000), bytes(10'000), 0))
                  .admitted);
  const auto h = controller.headroom_bits(milliseconds(5), 1);
  ASSERT_TRUE(h.has_value());
  EXPECT_GT(*h, 0.0);
}

TEST(Planner, UtilizationAccumulates) {
  auto controller =
      AdmissionController(default_config(Protocol::kFddi, mbps(100), 8));
  double last = 0.0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(controller
                    .try_admit(stream(milliseconds(100), bytes(10'000), i))
                    .admitted);
    EXPECT_GT(controller.utilization(), last);
    last = controller.utilization();
  }
}

}  // namespace
}  // namespace tokenring::planner
