#include "tokenring/common/units.hpp"

#include <gtest/gtest.h>

namespace tokenring {
namespace {

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(milliseconds(100), 0.1);
  EXPECT_DOUBLE_EQ(microseconds(250), 0.00025);
  EXPECT_DOUBLE_EQ(nanoseconds(10), 1e-8);
}

TEST(Units, BandwidthHelpers) {
  EXPECT_DOUBLE_EQ(mbps(1), 1e6);
  EXPECT_DOUBLE_EQ(mbps(100), 1e8);
  EXPECT_DOUBLE_EQ(kbps(64), 64e3);
  EXPECT_DOUBLE_EQ(gbps(1), 1e9);
}

TEST(Units, ByteHelper) {
  EXPECT_DOUBLE_EQ(bytes(64), 512.0);
  EXPECT_DOUBLE_EQ(bytes(1), 8.0);
}

TEST(Units, TransmissionTime) {
  // 512 bits at 1 Mbps = 512 us.
  EXPECT_DOUBLE_EQ(transmission_time(512.0, mbps(1)), 512e-6);
  // 512 bits at 100 Mbps = 5.12 us.
  EXPECT_NEAR(transmission_time(512.0, mbps(100)), 5.12e-6, 1e-15);
}

TEST(Units, ReportingConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(42)), 42.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_mbps(mbps(155)), 155.0);
}

TEST(Units, SpeedOfLightConstant) {
  EXPECT_DOUBLE_EQ(kSpeedOfLightMps, 299'792'458.0);
}

}  // namespace
}  // namespace tokenring
