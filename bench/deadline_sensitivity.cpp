// Deadline sensitivity (extension; DESIGN.md Abl. H): breakdown utilization
// as relative deadlines tighten from D = P (the paper's model) to D = 0.2P.
// Quantifies the paper's Section 7 argument: tight deadlines punish the
// timed token's round-robin service far more than the priority-driven
// protocol's deadline-monotonic arbitration.

#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/deadline_study.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "60", "Monte Carlo message sets per point");
  flags.declare("seed", "47", "base RNG seed");
  flags.declare("stations", "100", "stations on the ring");
  flags.declare("bandwidths-mbps", "10,100", "bandwidth list [Mbit/s]");
  flags.declare("fractions", "1.0,0.8,0.6,0.4,0.2",
                "deadline fractions D/P to sweep");
  obs::RunReport report("deadline_sensitivity");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;

  experiments::DeadlineStudyConfig config;
  config.setup.num_stations = static_cast<int>(flags.get_int("stations"));
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.jobs = get_jobs(flags);
  config.batch = get_batch(flags, config.sets_per_point);
  config.bandwidths_mbps = parse_double_list(flags.get_string("bandwidths-mbps"));
  config.deadline_fractions = parse_double_list(flags.get_string("fractions"));

  report.note("# Deadline-sensitivity ablation (n=%d, %zu sets/point)\n\n",
              config.setup.num_stations, config.sets_per_point);

  const auto rows = experiments::run_deadline_study(config);

  Table table({"BW_Mbps", "D/P", "ieee8025", "modified8025", "fddi"});
  for (const auto& r : rows) {
    table.add_row({fmt(r.bandwidth_mbps, 0), fmt(r.deadline_fraction, 1),
                   fmt(r.ieee8025), fmt(r.modified8025), fmt(r.fddi)});
  }
  report.add_table("results", table);

  report.note("\n# Observations\n");
  for (double bw : config.bandwidths_mbps) {
    double pdp_first = -1, pdp_last = 0, ttp_first = -1, ttp_last = 0;
    for (const auto& r : rows) {
      if (r.bandwidth_mbps != bw) continue;
      if (pdp_first < 0) {
        pdp_first = r.modified8025;
        ttp_first = r.fddi;
      }
      pdp_last = r.modified8025;
      ttp_last = r.fddi;
    }
    const auto retained = [](double first, double last) {
      return first > 0 ? 100.0 * last / first : 0.0;
    };
    report.note(
        "at %4.0f Mbps, tightening D/P %.1f -> %.1f retains %.0f%% of PDP's "
        "breakdown utilization but only %.0f%% of FDDI's\n",
        bw, config.deadline_fractions.front(), config.deadline_fractions.back(),
        retained(pdp_first, pdp_last), retained(ttp_first, ttp_last));
  }
  return report.finish();
}
