// TTRT sensitivity (paper Section 5.2): breakdown utilization of the timed
// token protocol as a function of the chosen TTRT, validating that the
// sqrt(Theta * P_min) bidding rule lands near the empirical maximizer and
// clearly beats the naive "largest valid TTRT" (P_min / 2).

#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/ttrt_study.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "100", "Monte Carlo message sets per point");
  flags.declare("seed", "7", "base RNG seed");
  flags.declare("stations", "100", "stations on the ring");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  flags.declare("equal-periods", "false",
                "use equal periods (the paper's analytical special case)");
  obs::RunReport report("ttrt_sensitivity");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;

  experiments::TtrtStudyConfig config;
  config.setup.num_stations = static_cast<int>(flags.get_int("stations"));
  config.bandwidth_mbps = flags.get_double("bandwidth-mbps");
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.jobs = get_jobs(flags);
  config.batch = get_batch(flags, config.sets_per_point);
  if (flags.get_bool("equal-periods")) {
    config.setup.period_dist = msg::PeriodDistribution::kEqual;
  }

  report.note(
      "# TTRT sensitivity at %.0f Mbps (n=%d, %s periods, %zu sets/point)\n\n",
      config.bandwidth_mbps, config.setup.num_stations,
      flags.get_bool("equal-periods") ? "equal" : "uniform",
      config.sets_per_point);

  const auto result = experiments::run_ttrt_study(config);

  Table table({"fraction_of_Pmin/2", "TTRT_ms", "breakdown", "ci95"});
  for (const auto& r : result.rows) {
    table.add_row({fmt(r.fraction, 2), fmt(to_milliseconds(r.ttrt), 3),
                   fmt(r.breakdown_mean), fmt(r.breakdown_ci)});
  }
  report.add_table("results", table);

  report.note("\n# Observations\n");
  report.note("empirical best TTRT: %.3f ms (fraction %.2f) -> %.3f\n",
              to_milliseconds(result.best_row.ttrt), result.best_row.fraction,
              result.best_row.breakdown_mean);
  report.note("sqrt(Theta*Pmin) rule: %.3f ms -> %.3f\n",
              to_milliseconds(result.sqrt_rule_ttrt),
              result.sqrt_rule_breakdown);
  const auto& largest = result.rows.back();
  report.note("largest valid TTRT (Pmin/2 = %.3f ms) -> %.3f\n",
              to_milliseconds(largest.ttrt), largest.breakdown_mean);
  report.note("sqrt rule vs Pmin/2: %+.1f%% breakdown utilization\n",
              100.0 * (result.sqrt_rule_breakdown - largest.breakdown_mean) /
                  (largest.breakdown_mean > 0 ? largest.breakdown_mean : 1.0));
  return report.finish();
}
