// Crossover bandwidth (paper conclusion): the link speed where the timed
// token protocol overtakes the priority-driven protocol, as a function of
// ring size and period scale. The paper's single data point is "between
// 10 and 100 Mbps" for n=100, mean period 100 ms; this table shows how the
// recommendation moves with the deployment.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/crossover_study.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "40", "Monte Carlo message sets per estimate");
  flags.declare("seed", "43", "base RNG seed");
  flags.declare("stations", "25,50,100", "ring sizes");
  flags.declare("mean-periods-ms", "20,100,500", "mean periods [ms]");
  obs::RunReport report("crossover");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;

  experiments::CrossoverStudyConfig config;
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.jobs = get_jobs(flags);
  config.batch = get_batch(flags, config.sets_per_point);
  config.station_counts.clear();
  for (double v : parse_double_list(flags.get_string("stations"))) {
    config.station_counts.push_back(static_cast<int>(v));
  }
  config.mean_periods_ms = parse_double_list(flags.get_string("mean-periods-ms"));

  report.note("# PDP->TTP crossover bandwidth by deployment\n\n");

  const auto rows = experiments::run_crossover_study(config);

  Table table({"stations", "mean_period_ms", "crossover_Mbps",
               "pdp_at_crossover", "ttp_at_crossover"});
  for (const auto& r : rows) {
    table.add_row({fmt(static_cast<long long>(r.stations)),
                   fmt(r.mean_period_ms, 0),
                   std::isinf(r.crossover_mbps) ? "never<=1000"
                                                : fmt(r.crossover_mbps, 1),
                   fmt(r.pdp_at_crossover, 3), fmt(r.ttp_at_crossover, 3)});
  }
  report.add_table("results", table);

  report.note(
      "\n# Observations\n"
      "Larger rings push the crossover DOWN (Theta grows with n, hurting\n"
      "PDP first). SHORTER periods push it UP: with tight deadlines the\n"
      "timed token's round-robin priority inversions bite hardest — exactly\n"
      "the paper's Section 7 argument for preferring PDP there. The paper's\n"
      "n=100 / 100 ms point lands at ~10 Mbps, matching its '1-10 Mbps vs\n"
      "100 Mbps' conclusion.\n");
  return report.finish();
}
