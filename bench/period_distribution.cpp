// Period-distribution ablation: the paper states "the results obtained for
// other values of these parameters were similar". This bench substantiates
// the claim by sweeping the mean period, max/min ratio, and distribution
// shape at a fixed bandwidth.

#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/distribution_study.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "60", "Monte Carlo message sets per point");
  flags.declare("seed", "13", "base RNG seed");
  flags.declare("stations", "100", "stations on the ring");
  flags.declare("bandwidth-mbps", "10", "link bandwidth [Mbit/s]");
  obs::RunReport report("period_distribution");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;

  experiments::DistributionStudyConfig config;
  config.setup.num_stations = static_cast<int>(flags.get_int("stations"));
  config.bandwidth_mbps = flags.get_double("bandwidth-mbps");
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.jobs = get_jobs(flags);
  config.batch = get_batch(flags, config.sets_per_point);

  report.note("# Period-distribution ablation at %.0f Mbps (n=%d)\n\n",
              config.bandwidth_mbps, config.setup.num_stations);

  const auto rows = experiments::run_distribution_study(config);

  Table table({"dist", "mean_ms", "ratio", "ieee8025", "modified8025", "fddi"});
  for (const auto& r : rows) {
    table.add_row({r.distribution, fmt(r.mean_period_ms, 0),
                   fmt(r.period_ratio, 0), fmt(r.ieee8025), fmt(r.modified8025),
                   fmt(r.fddi)});
  }
  report.add_table("results", table);

  // The paper's "similar results" claim: the PDP-vs-TTP winner at this
  // bandwidth should be stable across period parameterizations.
  std::size_t pdp_wins = 0;
  for (const auto& r : rows) {
    if (std::max(r.ieee8025, r.modified8025) >= r.fddi) ++pdp_wins;
  }
  report.note("\n# Observations\nPDP wins %zu / %zu parameterizations at %.0f Mbps\n",
              pdp_wins, rows.size(), config.bandwidth_mbps);
  return report.finish();
}
