// Frame-size trade-off for the priority-driven protocol (paper Section
// 4.2): small frames approximate preemption better but pay the fixed
// per-frame overhead more often; once the frame time falls below Theta the
// extra granularity is pure loss.

#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/frame_size_study.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "60", "Monte Carlo message sets per point");
  flags.declare("seed", "11", "base RNG seed");
  flags.declare("stations", "100", "stations on the ring");
  flags.declare("bandwidths-mbps", "4,16,100", "bandwidth list [Mbit/s]");
  flags.declare("payload-bytes", "16,32,64,128,256,512,1024,4096",
                "frame payload sizes [bytes]");
  obs::RunReport report("frame_size");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;

  experiments::FrameSizeStudyConfig config;
  config.setup.num_stations = static_cast<int>(flags.get_int("stations"));
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.jobs = get_jobs(flags);
  config.batch = get_batch(flags, config.sets_per_point);
  config.bandwidths_mbps = parse_double_list(flags.get_string("bandwidths-mbps"));
  config.payload_bytes = parse_double_list(flags.get_string("payload-bytes"));

  report.note("# PDP frame-size ablation (n=%d, %zu sets/point)\n\n",
              config.setup.num_stations, config.sets_per_point);

  const auto rows = experiments::run_frame_size_study(config);

  Table table({"BW_Mbps", "payload_B", "ieee8025", "modified8025"});
  for (const auto& r : rows) {
    table.add_row({fmt(r.bandwidth_mbps, 0), fmt(r.payload_bytes, 0),
                   fmt(r.ieee8025), fmt(r.modified8025)});
  }
  report.add_table("results", table);

  report.note("\n# Observations\n");
  for (double bw : config.bandwidths_mbps) {
    report.note("best payload at %4.0f Mbps (modified 802.5): %.0f bytes\n", bw,
                experiments::best_payload_bytes(rows, bw));
  }
  report.note(
      "(expected: the optimum grows with bandwidth — tiny frames only make\n"
      " sense while F stays above Theta)\n");
  return report.finish();
}
