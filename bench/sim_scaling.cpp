// Simulator scaling (google-benchmark): cost of driving a large, mostly
// idle ring through the event engine. On a 1024-station ring with a
// handful of synchronous streams, almost every token rotation is pure
// token passing; the eager engine pays one event per hop for it while the
// frontier engine advances station ready-times lazily and fast-forwards
// whole idle laps in O(1).
//
// BM_SimScalingEager / BM_SimScalingFrontier run the identical scenario
// (same streams, same horizon, same metrics — pinned bit-identical by
// tests/sim_engine_test.cpp) on the two engines, so their in-run ratio is
// machine independent; scripts/check_perf_baseline.py gates it at >= 10x.
// BM_SimScalingFrontierLong stretches the horizon 16x to show the
// hibernating engine's cost scales with traffic, not with idle time.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/setup.hpp"
#include "tokenring/obs/report.hpp"
#include "tokenring/sim/workload.hpp"

namespace {

using namespace tokenring;

// A sparse workload: 4 streams on a ring of `n` stations. Periods are
// hundreds of milliseconds against a ~2 ms rotation, so the ring idles
// for dozens of rotations between releases — the regime where per-hop
// event cost dominates the eager engine.
msg::MessageSet sparse_set(int n) {
  msg::MessageSet set;
  for (int i = 0; i < 4; ++i) {
    set.add({.period = milliseconds(200.0 + 20.0 * i),
             .payload_bits = 4'000.0,
             .station = (i * n) / 4});
  }
  return set;
}

sim::SimConfig scaling_config(int n, sim::EngineMode mode,
                              double horizon_seconds) {
  experiments::PaperSetup setup;
  setup.num_stations = n;
  auto cfg = sim::make_sim_config(sparse_set(n), setup.ttp_params(), mbps(100));
  cfg.horizon = horizon_seconds;
  cfg.engine = mode;
  // License the idle-lap fast-forward (sim/config.hpp): no async traffic,
  // no per-rotation statistics, no trace. The eager reference runs under
  // the same flags so the pair isolates the engine, not the bookkeeping.
  cfg.async_model = sim::AsyncModel::kNone;
  cfg.collect_rotation_stats = false;
  return cfg;
}

void BM_SimScalingEager(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto set = sparse_set(n);
  const auto cfg = scaling_config(n, sim::EngineMode::kEager, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(set, cfg));
  }
  state.SetLabel("2 s of ring time per iteration");
}
BENCHMARK(BM_SimScalingEager)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_SimScalingFrontier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto set = sparse_set(n);
  const auto cfg = scaling_config(n, sim::EngineMode::kFrontier, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(set, cfg));
  }
  state.SetLabel("2 s of ring time per iteration");
}
BENCHMARK(BM_SimScalingFrontier)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_SimScalingFrontierLong(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto set = sparse_set(n);
  const auto cfg = scaling_config(n, sim::EngineMode::kFrontier, 32.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(set, cfg));
  }
  state.SetLabel("32 s of ring time per iteration");
}
BENCHMARK(BM_SimScalingFrontierLong)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Same reporter arrangement as micro_schedulability: every run lands in
// the manifest's "benchmarks" table; console output is kept in table mode
// and suppressed in csv/json modes.
class ManifestReporter : public benchmark::ConsoleReporter {
 public:
  explicit ManifestReporter(bool quiet)
      : table_({"name", "iterations", "real_time", "cpu_time", "time_unit"}),
        quiet_(quiet) {}

  bool ReportContext(const Context& context) override {
    return quiet_ ? true : ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      table_.add_row({run.benchmark_name(),
                      fmt(static_cast<long long>(run.iterations)),
                      fmt(run.GetAdjustedRealTime(), 1),
                      fmt(run.GetAdjustedCPUTime(), 1),
                      benchmark::GetTimeUnitString(run.time_unit)});
    }
    if (!quiet_) ConsoleReporter::ReportRuns(runs);
  }

  const Table& table() const { return table_; }

 private:
  Table table_;
  bool quiet_;
};

bool is_bool_token(const std::string& s) {
  return s == "true" || s == "false" || s == "1" || s == "0" || s == "yes" ||
         s == "no";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tokenring;
  CliFlags flags;

  std::vector<char*> report_args = {argv[0]};
  std::vector<char*> bench_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool ours = arg.rfind("--format", 0) == 0 ||
                      arg.rfind("--out", 0) == 0 ||
                      arg.rfind("--profile", 0) == 0;
    if (!ours) {
      bench_args.push_back(argv[i]);
      continue;
    }
    report_args.push_back(argv[i]);
    if (arg.find('=') == std::string::npos && i + 1 < argc) {
      const std::string next = argv[i + 1];
      const bool take =
          arg.rfind("--profile", 0) == 0 ? is_bool_token(next)
                                         : next.rfind("--", 0) != 0;
      if (take) report_args.push_back(argv[++i]);
    }
  }

  int report_argc = static_cast<int>(report_args.size());
  obs::RunReport report("sim_scaling");
  if (auto rc = obs::bootstrap_run(report, flags, report_argc,
                                   report_args.data(),
                                   {.jobs = false, .batch = false})) {
    return *rc;
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }

  ManifestReporter reporter(!report.verbose());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  report.record_table("benchmarks", reporter.table());
  if (report.format() == obs::OutputFormat::kCsv) {
    reporter.table().print_csv(std::cout);
  }
  return report.finish();
}
