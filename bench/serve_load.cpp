// Load benchmark for the admission-control daemon: an in-process Server on
// a loopback ephemeral port, hammered by pipelined client connections.
//
// The workload is the pattern the serve/ cache is designed for: a hot set
// of distinct advise queries (operators tune a config, then re-ask), all
// pre-warmed so the steady state measures the service path — framing,
// parse, canonicalization, cache hit, envelope — not the Monte Carlo
// sweep. Each client keeps `--pipeline` requests in flight, so the
// syscall cost amortizes and the daemon sees the concurrency it was built
// for. Per-request latency is measured send-to-receive at the client
// (responses on one connection return in order).
//
// Emits the usual run manifest with a google-benchmark-shaped
// "benchmarks" table so scripts/check_perf_baseline.py can gate it:
//   BM_ServeAdviseThroughput  aggregate wall ns per completed query
//   BM_ServeAdviseLatencyP50  median client-observed latency [ns]
//   BM_ServeAdviseLatencyP99  tail latency [ns]
//   BM_ServeAdviseLatencyP999 far-tail latency [ns]
//   BM_ServeOverload          ns per structured refusal on a saturated
//                             server (the 503 shed fast path: parse,
//                             watermark check, envelope — no compute)
//   BM_ServeManyConnsReactor  ns per connection to open, serve, and park
//   BM_ServeManyConnsThreaded --connections mostly-idle peers on each
//                             front end (the pair the reactor's >= 5x
//                             per-connection win is gated on; resident
//                             memory per mode is reported alongside)
// A "connection_sweep" table records client-observed p50/p99/p99.9 for
// the pipelined hot mix while 64..--connections idle peers are parked on
// the same server (the scaling curve in EXPERIMENTS.md).
// --min-qps turns the throughput target into a hard failure (CI smoke
// runs use a modest floor; the tentpole claim is >= 100k queries/s on a
// development machine). --deadline-ms attaches a per-request deadline to
// every hot-set query; shed/timeout totals are reported either way.
//
// All client connects are nonblocking with bounded retries, and the
// parked pool opens in waves smaller than the listen backlog: a naive
// connect() flood at --connections=4096 overruns the accept queue, the
// kernel drops SYNs, and the bench ends up timing 1 s SYN-retransmit
// stalls instead of the server.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/obs/registry.hpp"
#include "tokenring/obs/report.hpp"
#include "tokenring/serve/backoff.hpp"
#include "tokenring/serve/server.hpp"

namespace {

using namespace tokenring;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One advise request line from the hot set; `slot` varies the seed so the
/// hot set holds distinct cache entries, not one. `deadline_ms` > 0
/// attaches a per-request deadline (expired ones come back as 504s).
std::string advise_line(int slot, int sets, double deadline_ms) {
  std::string line =
      "{\"type\":\"advise\",\"id\":" + std::to_string(slot) +
      ",\"stations\":20,\"mean_period_ms\":100,\"period_ratio\":10,"
      "\"bandwidths_mbps\":[16,100],\"sets\":" + std::to_string(sets) +
      ",\"seed\":" + std::to_string(slot + 1);
  if (deadline_ms > 0.0) {
    line += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  return line + "}";
}

/// A cold check query per slot for the overload phase: every one is a
/// distinct cache miss, so a zero-high-water server sheds it.
std::string cold_check_line(int slot) {
  return "{\"type\":\"check\",\"id\":" + std::to_string(slot) +
         ",\"protocol\":\"fddi\",\"bandwidth_mbps\":100,\"streams\":["
         "{\"station\":0,\"period_ms\":" + std::to_string(50 + slot) +
         ",\"payload_bits\":10000}]}";
}

/// Start a nonblocking connect to 127.0.0.1:port. Returns the fd with the
/// connect in flight (or already established), -1 on immediate failure.
int begin_connect(int port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
          0 ||
      errno == EINPROGRESS) {
    return fd;
  }
  ::close(fd);
  return -1;
}

/// Wait for an in-flight nonblocking connect to resolve; true only when
/// the socket connected cleanly (SO_ERROR == 0) within the timeout.
bool finish_connect(int fd, int timeout_ms) {
  pollfd p{fd, POLLOUT, 0};
  const int rc = ::poll(&p, 1, timeout_ms);
  if (rc <= 0) return false;
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return false;
  return err == 0;
}

bool set_blocking(int fd, bool blocking) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl < 0) return false;
  const int want = blocking ? (fl & ~O_NONBLOCK) : (fl | O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

/// Nonblocking connect with bounded retries, handed back in blocking mode
/// for the closed-loop clients. Refused or stalled attempts back off
/// briefly instead of failing the whole run.
int connect_loopback(int port) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int fd = begin_connect(port);
    if (fd >= 0) {
      if (finish_connect(fd, 2000) && set_blocking(fd, true)) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return fd;
      }
      ::close(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
  }
  return -1;
}

/// Current resident set size, from /proc/self/status (0 if unreadable).
std::uint64_t vm_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

/// Lift the soft fd limit toward the hard limit when a run needs more
/// descriptors than the default soft cap allows (2 per parked connection
/// plus slack for the servers and clients).
void raise_fd_limit(std::size_t needed) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur >= needed) return;
  rl.rlim_cur = std::min<rlim_t>(rl.rlim_max,
                                 std::max<rlim_t>(needed, rl.rlim_cur));
  ::setrlimit(RLIMIT_NOFILE, &rl);
}

/// A pool of parked, mostly-idle connections. Grown in waves well under
/// the listen backlog, and each wave is pinged (and the responses read)
/// before the next wave connects — so connections sitting established but
/// un-accepted never pile up to the backlog limit, and the kernel never
/// silently drops SYNs into 1 s retransmit stalls. What the growth time
/// measures is the server's real per-connection cost: accept, front-end
/// registration (thread spawn vs epoll add), and one served request.
class ParkedPool {
 public:
  static constexpr std::size_t kWave = 256;

  ~ParkedPool() { close_all(); }

  std::size_t size() const { return fds_.size(); }

  /// Grow to `target` parked connections; each new connection has served
  /// exactly one ping before this returns. False on connect/ping failure.
  bool grow(int port, std::size_t target) {
    std::vector<int> wave;
    while (fds_.size() < target) {
      const std::size_t want = std::min(kWave, target - fds_.size());
      wave.clear();
      for (std::size_t i = 0; i < want; ++i) {
        const int fd = begin_connect(port);
        if (fd < 0) {
          for (int open : wave) ::close(open);
          return false;
        }
        wave.push_back(fd);
      }
      for (std::size_t i = 0; i < wave.size(); ++i) {
        int fd = wave[i];
        for (int attempt = 0; !finish_connect(fd, 2000); ++attempt) {
          ::close(fd);
          fd = -1;
          if (attempt >= 8) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
          fd = begin_connect(port);
          if (fd < 0) break;
        }
        wave[i] = fd;
        if (fd < 0) {
          for (int open : wave) {
            if (open >= 0) ::close(open);
          }
          return false;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      if (!ping_wave(wave)) {
        for (int open : wave) ::close(open);
        return false;
      }
      fds_.insert(fds_.end(), wave.begin(), wave.end());
    }
    return true;
  }

  void close_all() {
    for (int fd : fds_) ::close(fd);
    fds_.clear();
  }

 private:
  /// One ping per connection, then wait until every connection has
  /// answered with a full response line.
  bool ping_wave(const std::vector<int>& wave) {
    static const std::string ping = "{\"type\":\"ping\",\"id\":0}\n";
    for (int fd : wave) {
      // The line is a fraction of the send buffer on a fresh socket, so a
      // short write here means the connection is already broken.
      if (::send(fd, ping.data(), ping.size(), MSG_NOSIGNAL) !=
          static_cast<ssize_t>(ping.size())) {
        return false;
      }
    }
    struct Waiting {
      int fd;
      std::string buf;
    };
    std::vector<Waiting> waiting;
    waiting.reserve(wave.size());
    for (int fd : wave) waiting.push_back({fd, {}});
    std::vector<pollfd> pfds;
    char chunk[4096];
    while (!waiting.empty()) {
      pfds.clear();
      for (const Waiting& w : waiting) pfds.push_back({w.fd, POLLIN, 0});
      const int rc =
          ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 10000);
      if (rc <= 0 && errno != EINTR) return false;
      std::size_t kept = 0;
      for (std::size_t i = 0; i < waiting.size(); ++i) {
        bool done = false;
        if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
          const ssize_t n = ::recv(waiting[i].fd, chunk, sizeof(chunk), 0);
          if (n <= 0) {
            if (n == 0 || (errno != EAGAIN && errno != EINTR)) return false;
          } else {
            waiting[i].buf.append(chunk, static_cast<std::size_t>(n));
            done = waiting[i].buf.find('\n') != std::string::npos;
          }
        }
        if (!done) {
          if (kept != i) waiting[kept] = std::move(waiting[i]);
          ++kept;
        }
      }
      waiting.resize(kept);
    }
    return true;
  }

  std::vector<int> fds_;
};

/// Open, serve one request, and park `n` connections against a dedicated
/// server in the given front-end mode; reports the per-connection cost
/// (accept + front-end registration + one served ping — a thread spawn per
/// peer for the threaded loop, an epoll add for the reactor) and the
/// process RSS growth while all `n` sit parked.
struct ManyConnsResult {
  bool ok = false;
  double per_conn_ns = 0.0;
  std::uint64_t rss_delta = 0;
};

ManyConnsResult run_many_conns(serve::Server::FrontEnd mode, std::size_t n,
                               std::size_t jobs) {
  ManyConnsResult out;
  serve::Server::Options opt;
  opt.engine.jobs = jobs;
  opt.front_end = mode;
  serve::Server server(opt);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "many-conns server: %s\n", error.c_str());
    return out;
  }
  ParkedPool pool;
  const std::uint64_t rss_before = vm_rss_bytes();
  const std::uint64_t t0 = now_ns();
  if (!pool.grow(server.port(), n)) {
    std::fprintf(stderr, "many-conns: failed to park %zu connections\n", n);
    server.request_stop();
    server.wait();
    return out;
  }
  const std::uint64_t t1 = now_ns();
  const std::uint64_t rss_parked = vm_rss_bytes();
  out.per_conn_ns =
      static_cast<double>(t1 - t0) / static_cast<double>(n);
  out.rss_delta = rss_parked > rss_before ? rss_parked - rss_before : 0;
  out.ok = true;
  pool.close_all();
  server.request_stop();
  server.wait();
  return out;
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

struct ClientResult {
  std::vector<std::uint64_t> latencies_ns;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  bool ok = false;
  /// Client-observed response statuses (200 / 429 / 503 / 504 / other).
  std::uint64_t served = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
};

/// Pull the "status" code out of one response line without a full JSON
/// parse (the envelope always spells it "status":NNN).
int response_status(std::string_view line) {
  const auto at = line.find("\"status\":");
  if (at == std::string_view::npos) return -1;
  int status = 0;
  for (std::size_t i = at + 9; i < line.size() && line[i] >= '0' &&
                               line[i] <= '9';
       ++i) {
    status = status * 10 + (line[i] - '0');
  }
  return status;
}

void tally_status(ClientResult& out, std::string_view line) {
  switch (response_status(line)) {
    case 200:
      ++out.served;
      break;
    case 429:
      ++out.rate_limited;
      break;
    case 503:
      ++out.shed;
      break;
    case 504:
      ++out.timed_out;
      break;
    default:
      break;
  }
}

/// Closed loop with a fixed pipeline depth: prime `depth` requests, then
/// send one more for every response line read.
void run_client(int port, const std::vector<std::string>& lines,
                std::size_t requests, std::size_t depth, ClientResult& out) {
  const int fd = connect_loopback(port);
  if (fd < 0) return;
  out.latencies_ns.reserve(requests);
  std::vector<std::uint64_t> sent_at;
  sent_at.reserve(requests);

  std::size_t sent = 0;
  std::size_t received = 0;
  std::string buffer;
  char chunk[16384];
  out.start_ns = now_ns();

  const auto push_one = [&] {
    const std::string& line = lines[sent % lines.size()];
    sent_at.push_back(now_ns());
    ++sent;
    std::string wire = line;
    wire.push_back('\n');
    return send_all(fd, wire.data(), wire.size());
  };

  for (std::size_t i = 0; i < std::min(depth, requests); ++i) {
    if (!push_one()) {
      ::close(fd);
      return;
    }
  }
  while (received < requests) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      tally_status(out, std::string_view(buffer).substr(start, nl - start));
      start = nl + 1;
      out.latencies_ns.push_back(now_ns() - sent_at[received]);
      ++received;
      if (sent < requests && !push_one()) break;
    }
    buffer.erase(0, start);
  }
  out.end_ns = now_ns();
  ::close(fd);
  out.ok = received == requests;
}

/// The retry_after_ms hint from a 429/503 envelope, in nanoseconds.
std::uint64_t parse_retry_after_ns(const std::string& line) {
  const auto at = line.find("\"retry_after_ms\":");
  if (at == std::string::npos) return 0;
  const double ms = std::strtod(line.c_str() + at + 17, nullptr);
  return ms > 0.0 ? static_cast<std::uint64_t>(ms * 1e6) : 0;
}

/// Warm the cache one request at a time, retrying structured refusals
/// (429 rate-limited, 503 shed) with the shared backoff policy — the same
/// hint-plus-full-jitter discipline scripts/serve_client.py implements.
bool warm_with_retries(int port, const std::vector<std::string>& lines) {
  const int fd = connect_loopback(port);
  if (fd < 0) return false;
  Rng rng(0x5eedu);
  const serve::BackoffPolicy policy;
  std::string buffer;
  char chunk[4096];
  for (const std::string& line : lines) {
    for (int attempt = 0;; ++attempt) {
      std::string wire = line;
      wire.push_back('\n');
      if (!send_all(fd, wire.data(), wire.size())) {
        ::close(fd);
        return false;
      }
      std::size_t nl;
      while ((nl = buffer.find('\n')) == std::string::npos) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          ::close(fd);
          return false;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
      }
      const std::string response = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      const int status = response_status(response);
      if (status != 429 && status != 503) break;
      if (attempt >= 10) {
        ::close(fd);
        return false;
      }
      const std::uint64_t delay = serve::retry_delay_ns(
          policy, attempt, parse_retry_after_ns(response), rng);
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    }
  }
  ::close(fd);
  return true;
}

std::uint64_t percentile(std::vector<std::uint64_t>& v, double q) {
  if (v.empty()) return 0;
  const std::size_t k = std::min(
      v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k];
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("clients", "8", "concurrent client connections");
  flags.declare("requests", "20000", "requests per client");
  flags.declare("pipeline", "64", "requests kept in flight per client");
  flags.declare("hot-set", "64", "distinct advise queries in the hot set");
  flags.declare("sets", "8", "Monte Carlo sets per advise query");
  flags.declare("min-qps", "0",
                "fail unless aggregate throughput reaches this [queries/s]");
  flags.declare("deadline-ms", "0",
                "attach this deadline to every hot-set query [ms]; 0 = none");
  flags.declare("connections", "1024",
                "parked-connection count for the sweep and the "
                "BM_ServeManyConns pair (0 = skip both)");
  obs::RunReport report("serve_load");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv,
                                   {.batch = false})) {
    return *rc;
  }

  serve::Server::Options opt;
  opt.engine.jobs = get_jobs(flags);
  serve::Server server(opt);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  const auto clients = static_cast<std::size_t>(flags.get_int("clients"));
  const auto requests = static_cast<std::size_t>(flags.get_int("requests"));
  const auto depth =
      std::max<std::size_t>(1, static_cast<std::size_t>(flags.get_int("pipeline")));
  const auto hot_set = std::max<std::size_t>(
      1, static_cast<std::size_t>(flags.get_int("hot-set")));
  const int sets = static_cast<int>(flags.get_int("sets"));
  const double deadline_ms = flags.get_double("deadline-ms");
  const auto connections =
      static_cast<std::size_t>(flags.get_int("connections"));

  // 2 fds per parked connection (client + server side) plus slack for the
  // servers, clients, and engine plumbing.
  raise_fd_limit(2 * connections + 256);

  // Deadlines are not part of the cache identity, so warming without one
  // still turns the measured phase into cache hits even when --deadline-ms
  // marks every measured query.
  std::vector<std::string> warm_lines;
  std::vector<std::string> lines;
  warm_lines.reserve(hot_set);
  lines.reserve(hot_set);
  for (std::size_t i = 0; i < hot_set; ++i) {
    warm_lines.push_back(advise_line(static_cast<int>(i), sets, 0.0));
    lines.push_back(advise_line(static_cast<int>(i), sets, deadline_ms));
  }

  // Warm every hot-set entry through one connection so the measured phase
  // is all cache hits (the recurring-query steady state). Refusals are
  // retried with the shared backoff policy rather than failing the run.
  if (!warm_with_retries(server.port(), warm_lines)) {
    std::fprintf(stderr, "warmup failed\n");
    return 1;
  }

  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      run_client(server.port(), lines, requests, depth, results[c]);
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::uint64_t> latencies;
  std::uint64_t first_start = UINT64_MAX;
  std::uint64_t last_end = 0;
  std::uint64_t served = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
  bool all_ok = true;
  for (const ClientResult& r : results) {
    all_ok = all_ok && r.ok;
    latencies.insert(latencies.end(), r.latencies_ns.begin(),
                     r.latencies_ns.end());
    first_start = std::min(first_start, r.start_ns);
    last_end = std::max(last_end, r.end_ns);
    served += r.served;
    rate_limited += r.rate_limited;
    shed += r.shed;
    timed_out += r.timed_out;
  }
  if (!all_ok || latencies.empty()) {
    std::fprintf(stderr, "load run failed: a client lost its connection\n");
    return 1;
  }

  const std::uint64_t wall_ns = last_end - first_start;
  const auto total = static_cast<double>(latencies.size());
  const double ns_per_query = static_cast<double>(wall_ns) / total;
  const double qps = 1e9 / ns_per_query;
  const std::uint64_t p50 = percentile(latencies, 0.50);
  const std::uint64_t p90 = percentile(latencies, 0.90);
  const std::uint64_t p99 = percentile(latencies, 0.99);
  const std::uint64_t p999 = percentile(latencies, 0.999);

  // Connection-count sweep: park growing tiers of idle connections on the
  // still-warm server and re-measure the pipelined hot mix at each tier.
  // The tier rows go in their own manifest table (not "benchmarks"): they
  // are the EXPERIMENTS.md scaling curve, not baseline-gated timings.
  Table sweep({"connections", "qps", "p50_us", "p99_us", "p999_us"});
  if (connections > 0) {
    ParkedPool parked;
    const std::size_t sweep_requests = std::min<std::size_t>(requests, 10000);
    std::vector<std::size_t> tiers;
    for (std::size_t tier = 64; tier < connections; tier *= 4) {
      tiers.push_back(tier);
    }
    tiers.push_back(connections);
    for (const std::size_t tier : tiers) {
      if (!parked.grow(server.port(), tier)) {
        std::fprintf(stderr, "sweep: failed to park %zu connections\n", tier);
        return 1;
      }
      ClientResult r;
      run_client(server.port(), lines, sweep_requests, depth, r);
      if (!r.ok) {
        std::fprintf(stderr, "sweep: client lost its connection at %zu "
                             "parked\n", tier);
        return 1;
      }
      const double tier_wall = static_cast<double>(r.end_ns - r.start_ns);
      const double tier_qps =
          1e9 * static_cast<double>(sweep_requests) / tier_wall;
      sweep.add_row(
          {fmt(static_cast<long long>(tier)), fmt(tier_qps, 0),
           fmt(static_cast<double>(percentile(r.latencies_ns, 0.50)) * 1e-3, 1),
           fmt(static_cast<double>(percentile(r.latencies_ns, 0.99)) * 1e-3, 1),
           fmt(static_cast<double>(percentile(r.latencies_ns, 0.999)) * 1e-3,
               1)});
    }
  }

  server.request_stop();
  server.wait();

  const auto metrics = obs::Registry::global().snapshot();
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = metrics.counters.find(name);
    return it == metrics.counters.end() ? 0 : it->second;
  };

  report.note(
      "%zu clients x %zu requests (pipeline %zu, hot set %zu, deadline %.3g "
      "ms): %.0f queries/s, p50 %.1f us, p99 %.1f us, p99.9 %.1f us\n",
      clients, requests, depth, hot_set, deadline_ms, qps,
      static_cast<double>(p50) * 1e-3, static_cast<double>(p99) * 1e-3,
      static_cast<double>(p999) * 1e-3);
  report.note("cache hits %llu / misses %llu, batch groups %llu\n",
              static_cast<unsigned long long>(counter("serve.cache.hits")),
              static_cast<unsigned long long>(counter("serve.cache.misses")),
              static_cast<unsigned long long>(counter("serve.batch.groups")));
  report.note(
      "statuses: %llu served, %llu rate-limited (429), %llu shed (503), "
      "%llu past-deadline (504); server counters: shed %llu, "
      "deadline_expired %llu\n",
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(rate_limited),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(timed_out),
      static_cast<unsigned long long>(counter("serve.shed")),
      static_cast<unsigned long long>(counter("serve.deadline_expired")));

  // Overload phase: a fresh server with high_water = 0 sheds every cold
  // miss, so driving it with distinct check queries measures the refusal
  // fast path end to end (frame, parse, watermark check, 503 envelope —
  // no compute). This is the latency floor a client sees under shed.
  const std::size_t overload_requests =
      std::max<std::size_t>(1, std::min<std::size_t>(requests, 20000));
  double overload_ns = 0.0;
  {
    serve::Server::Options oopt;
    oopt.engine.jobs = get_jobs(flags);
    oopt.engine.high_water = 0;
    serve::Server overload_server(oopt);
    if (!overload_server.start(error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::vector<std::string> cold;
    cold.reserve(hot_set);
    for (std::size_t i = 0; i < hot_set; ++i) {
      cold.push_back(cold_check_line(static_cast<int>(i)));
    }
    ClientResult refusals;
    run_client(overload_server.port(), cold, overload_requests, depth,
               refusals);
    overload_server.request_stop();
    overload_server.wait();
    if (!refusals.ok) {
      std::fprintf(stderr, "overload phase failed: connection lost\n");
      return 1;
    }
    overload_ns = static_cast<double>(refusals.end_ns - refusals.start_ns) /
                  static_cast<double>(overload_requests);
    report.note(
        "overload phase (high-water 0): %zu cold queries, %llu shed (503), "
        "%.0f refusals/s\n",
        overload_requests, static_cast<unsigned long long>(refusals.shed),
        1e9 / overload_ns);
  }

  // Many-connections pair: the same park-N-idle-peers workload against
  // each front end on its own server. Reactor first, so its RSS delta is
  // not flattered by allocator pages the threaded phase already faulted
  // in.
  ManyConnsResult reactor_conns;
  ManyConnsResult threaded_conns;
  if (connections > 0) {
    reactor_conns = run_many_conns(serve::Server::FrontEnd::kReactor,
                                   connections, get_jobs(flags));
    threaded_conns = run_many_conns(serve::Server::FrontEnd::kThreaded,
                                    connections, get_jobs(flags));
    if (!reactor_conns.ok || !threaded_conns.ok) return 1;
    const double rss_ratio =
        threaded_conns.rss_delta > 0
            ? static_cast<double>(reactor_conns.rss_delta) /
                  static_cast<double>(threaded_conns.rss_delta)
            : 0.0;
    report.note(
        "%zu parked connections: reactor %.1f us/conn, %.1f MiB resident; "
        "threaded %.1f us/conn, %.1f MiB resident (reactor uses %.0f%% of "
        "threaded memory)\n",
        connections, reactor_conns.per_conn_ns * 1e-3,
        static_cast<double>(reactor_conns.rss_delta) / (1024.0 * 1024.0),
        threaded_conns.per_conn_ns * 1e-3,
        static_cast<double>(threaded_conns.rss_delta) / (1024.0 * 1024.0),
        rss_ratio * 100.0);
  }

  Table table({"name", "iterations", "real_time", "cpu_time", "time_unit"});
  const auto add_row = [&](const std::string& name, double ns,
                           std::size_t iterations) {
    table.add_row({name, fmt(static_cast<long long>(iterations)), fmt(ns, 1),
                   fmt(ns, 1), "ns"});
  };
  add_row("BM_ServeAdviseThroughput", ns_per_query, latencies.size());
  add_row("BM_ServeAdviseLatencyP50", static_cast<double>(p50),
          latencies.size());
  add_row("BM_ServeAdviseLatencyP90", static_cast<double>(p90),
          latencies.size());
  add_row("BM_ServeAdviseLatencyP99", static_cast<double>(p99),
          latencies.size());
  add_row("BM_ServeAdviseLatencyP999", static_cast<double>(p999),
          latencies.size());
  add_row("BM_ServeOverload", overload_ns, overload_requests);
  if (connections > 0) {
    add_row("BM_ServeManyConnsReactor", reactor_conns.per_conn_ns,
            connections);
    add_row("BM_ServeManyConnsThreaded", threaded_conns.per_conn_ns,
            connections);
    report.record_table("connection_sweep", sweep);
  }
  report.record_table("benchmarks", table);
  if (report.verbose()) table.print(std::cout);
  if (report.format() == obs::OutputFormat::kCsv) table.print_csv(std::cout);

  const double min_qps = flags.get_double("min-qps");
  if (min_qps > 0.0 && qps < min_qps) {
    std::fprintf(stderr, "FAIL: %.0f queries/s below the %.0f floor\n", qps,
                 min_qps);
    return 1;
  }
  return report.finish();
}
