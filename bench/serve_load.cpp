// Load benchmark for the admission-control daemon: an in-process Server on
// a loopback ephemeral port, hammered by pipelined client connections.
//
// The workload is the pattern the serve/ cache is designed for: a hot set
// of distinct advise queries (operators tune a config, then re-ask), all
// pre-warmed so the steady state measures the service path — framing,
// parse, canonicalization, cache hit, envelope — not the Monte Carlo
// sweep. Each client keeps `--pipeline` requests in flight, so the
// syscall cost amortizes and the daemon sees the concurrency it was built
// for. Per-request latency is measured send-to-receive at the client
// (responses on one connection return in order).
//
// Emits the usual run manifest with a google-benchmark-shaped
// "benchmarks" table so scripts/check_perf_baseline.py can gate it:
//   BM_ServeAdviseThroughput  aggregate wall ns per completed query
//   BM_ServeAdviseLatencyP50  median client-observed latency [ns]
//   BM_ServeAdviseLatencyP99  tail latency [ns]
// --min-qps turns the throughput target into a hard failure (CI smoke
// runs use a modest floor; the tentpole claim is >= 100k queries/s on a
// development machine).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/obs/registry.hpp"
#include "tokenring/obs/report.hpp"
#include "tokenring/serve/server.hpp"

namespace {

using namespace tokenring;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One advise request line from the hot set; `slot` varies the seed so the
/// hot set holds distinct cache entries, not one.
std::string advise_line(int slot, int sets) {
  return "{\"type\":\"advise\",\"id\":" + std::to_string(slot) +
         ",\"stations\":20,\"mean_period_ms\":100,\"period_ratio\":10,"
         "\"bandwidths_mbps\":[16,100],\"sets\":" + std::to_string(sets) +
         ",\"seed\":" + std::to_string(slot + 1) + "}";
}

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

struct ClientResult {
  std::vector<std::uint64_t> latencies_ns;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  bool ok = false;
};

/// Closed loop with a fixed pipeline depth: prime `depth` requests, then
/// send one more for every response line read.
void run_client(int port, const std::vector<std::string>& lines,
                std::size_t requests, std::size_t depth, ClientResult& out) {
  const int fd = connect_loopback(port);
  if (fd < 0) return;
  out.latencies_ns.reserve(requests);
  std::vector<std::uint64_t> sent_at;
  sent_at.reserve(requests);

  std::size_t sent = 0;
  std::size_t received = 0;
  std::string buffer;
  char chunk[16384];
  out.start_ns = now_ns();

  const auto push_one = [&] {
    const std::string& line = lines[sent % lines.size()];
    sent_at.push_back(now_ns());
    ++sent;
    std::string wire = line;
    wire.push_back('\n');
    return send_all(fd, wire.data(), wire.size());
  };

  for (std::size_t i = 0; i < std::min(depth, requests); ++i) {
    if (!push_one()) {
      ::close(fd);
      return;
    }
  }
  while (received < requests) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      start = nl + 1;
      out.latencies_ns.push_back(now_ns() - sent_at[received]);
      ++received;
      if (sent < requests && !push_one()) break;
    }
    buffer.erase(0, start);
  }
  out.end_ns = now_ns();
  ::close(fd);
  out.ok = received == requests;
}

std::uint64_t percentile(std::vector<std::uint64_t>& v, double q) {
  if (v.empty()) return 0;
  const std::size_t k = std::min(
      v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k];
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("clients", "8", "concurrent client connections");
  flags.declare("requests", "20000", "requests per client");
  flags.declare("pipeline", "64", "requests kept in flight per client");
  flags.declare("hot-set", "64", "distinct advise queries in the hot set");
  flags.declare("sets", "8", "Monte Carlo sets per advise query");
  flags.declare("min-qps", "0",
                "fail unless aggregate throughput reaches this [queries/s]");
  obs::RunReport report("serve_load");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv,
                                   {.batch = false})) {
    return *rc;
  }

  serve::Server::Options opt;
  opt.engine.jobs = get_jobs(flags);
  serve::Server server(opt);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  const auto clients = static_cast<std::size_t>(flags.get_int("clients"));
  const auto requests = static_cast<std::size_t>(flags.get_int("requests"));
  const auto depth =
      std::max<std::size_t>(1, static_cast<std::size_t>(flags.get_int("pipeline")));
  const auto hot_set = std::max<std::size_t>(
      1, static_cast<std::size_t>(flags.get_int("hot-set")));
  const int sets = static_cast<int>(flags.get_int("sets"));

  std::vector<std::string> lines;
  lines.reserve(hot_set);
  for (std::size_t i = 0; i < hot_set; ++i) {
    lines.push_back(advise_line(static_cast<int>(i), sets));
  }

  // Warm every hot-set entry through one connection so the measured phase
  // is all cache hits (the recurring-query steady state).
  {
    ClientResult warm;
    run_client(server.port(), lines, lines.size(), 1, warm);
    if (!warm.ok) {
      std::fprintf(stderr, "warmup failed\n");
      return 1;
    }
  }

  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      run_client(server.port(), lines, requests, depth, results[c]);
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::uint64_t> latencies;
  std::uint64_t first_start = UINT64_MAX;
  std::uint64_t last_end = 0;
  bool all_ok = true;
  for (const ClientResult& r : results) {
    all_ok = all_ok && r.ok;
    latencies.insert(latencies.end(), r.latencies_ns.begin(),
                     r.latencies_ns.end());
    first_start = std::min(first_start, r.start_ns);
    last_end = std::max(last_end, r.end_ns);
  }
  if (!all_ok || latencies.empty()) {
    std::fprintf(stderr, "load run failed: a client lost its connection\n");
    return 1;
  }

  const std::uint64_t wall_ns = last_end - first_start;
  const auto total = static_cast<double>(latencies.size());
  const double ns_per_query = static_cast<double>(wall_ns) / total;
  const double qps = 1e9 / ns_per_query;
  const std::uint64_t p50 = percentile(latencies, 0.50);
  const std::uint64_t p90 = percentile(latencies, 0.90);
  const std::uint64_t p99 = percentile(latencies, 0.99);

  server.request_stop();
  server.wait();

  const auto metrics = obs::Registry::global().snapshot();
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = metrics.counters.find(name);
    return it == metrics.counters.end() ? 0 : it->second;
  };

  report.note(
      "%zu clients x %zu requests (pipeline %zu, hot set %zu): "
      "%.0f queries/s, p50 %.1f us, p99 %.1f us\n",
      clients, requests, depth, hot_set, qps,
      static_cast<double>(p50) * 1e-3, static_cast<double>(p99) * 1e-3);
  report.note("cache hits %llu / misses %llu, batch groups %llu\n",
              static_cast<unsigned long long>(counter("serve.cache.hits")),
              static_cast<unsigned long long>(counter("serve.cache.misses")),
              static_cast<unsigned long long>(counter("serve.batch.groups")));

  Table table({"name", "iterations", "real_time", "cpu_time", "time_unit"});
  const auto add_row = [&](const std::string& name, double ns) {
    table.add_row({name, fmt(static_cast<long long>(latencies.size())),
                   fmt(ns, 1), fmt(ns, 1), "ns"});
  };
  add_row("BM_ServeAdviseThroughput", ns_per_query);
  add_row("BM_ServeAdviseLatencyP50", static_cast<double>(p50));
  add_row("BM_ServeAdviseLatencyP90", static_cast<double>(p90));
  add_row("BM_ServeAdviseLatencyP99", static_cast<double>(p99));
  report.record_table("benchmarks", table);
  if (report.verbose()) table.print(std::cout);
  if (report.format() == obs::OutputFormat::kCsv) table.print_csv(std::cout);

  const double min_qps = flags.get_double("min-qps");
  if (min_qps > 0.0 && qps < min_qps) {
    std::fprintf(stderr, "FAIL: %.0f queries/s below the %.0f floor\n", qps,
                 min_qps);
    return 1;
  }
  return report.finish();
}
