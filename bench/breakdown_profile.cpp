// Breakdown-utilization *distribution* at representative bandwidths.
//
// The average (Figure 1) hides the spread: Lehoczky-Sha-Ding's original
// methodology also reported how concentrated breakdown utilizations are
// across random sets. This bench prints quantiles per protocol per
// bandwidth, showing e.g. that the FDDI breakdown distribution is tight
// (the criterion is a smooth sum) while the PDP one spreads (scheduling
// points interact with the period mix).

#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/setup.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

namespace {

breakdown::BreakdownEstimate estimate_with_samples(
    const experiments::PaperSetup& setup,
    const breakdown::BatchScaleKernelFactory& factory, BitsPerSecond bw,
    std::size_t sets, std::uint64_t seed, std::size_t batch,
    const exec::Executor& executor) {
  msg::MessageSetGenerator gen(setup.generator_config());
  breakdown::MonteCarloOptions options;
  options.num_sets = sets;
  options.keep_samples = true;
  options.batch_size = batch;
  return breakdown::estimate_breakdown_utilization(gen, factory, bw, seed,
                                                   executor, options);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "200", "Monte Carlo message sets per cell");
  flags.declare("seed", "37", "base RNG seed");
  flags.declare("stations", "100", "stations on the ring");
  flags.declare("bandwidths-mbps", "5,20,100", "bandwidth list [Mbit/s]");
  obs::RunReport report("breakdown_profile");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;

  experiments::PaperSetup setup;
  setup.num_stations = static_cast<int>(flags.get_int("stations"));
  const auto sets = static_cast<std::size_t>(flags.get_int("sets"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto batch = get_batch(flags, sets);
  const exec::Executor executor(get_jobs(flags));

  report.note(
      "# Breakdown-utilization distribution (n=%d, %zu sets/cell)\n\n",
      setup.num_stations, sets);

  Table table({"protocol", "BW_Mbps", "p05", "p25", "median", "p75", "p95",
               "mean", "stddev"});

  struct Proto {
    const char* name;
    std::function<breakdown::BatchScaleKernelFactory(BitsPerSecond)> factory;
  };
  const Proto protos[] = {
      {"ieee8025",
       [&](BitsPerSecond bw) {
         return setup.pdp_batch_kernel_factory(analysis::PdpVariant::kStandard8025,
                                               bw);
       }},
      {"modified8025",
       [&](BitsPerSecond bw) {
         return setup.pdp_batch_kernel_factory(analysis::PdpVariant::kModified8025,
                                               bw);
       }},
      {"fddi",
       [&](BitsPerSecond bw) { return setup.ttp_batch_kernel_factory(bw); }},
  };

  for (double bw_mbps : parse_double_list(flags.get_string("bandwidths-mbps"))) {
    const BitsPerSecond bw = mbps(bw_mbps);
    for (const auto& proto : protos) {
      const auto est = estimate_with_samples(setup, proto.factory(bw), bw,
                                             sets, seed, batch, executor);
      table.add_row({proto.name, fmt(bw_mbps, 0), fmt(est.quantile(0.05)),
                     fmt(est.quantile(0.25)), fmt(est.quantile(0.5)),
                     fmt(est.quantile(0.75)), fmt(est.quantile(0.95)),
                     fmt(est.mean()), fmt(est.utilization.stddev())});
    }
  }
  report.add_table("results", table);
  return report.finish();
}
