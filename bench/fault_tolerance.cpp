// Fault tolerance under injected faults (DESIGN.md experiment Abl. F):
// miss ratio vs. fault kind x count for both protocols. The 802.5 active
// monitor / beacon restores service within a few Theta; FDDI needs TRT
// double-expiry plus the claim process (order TTRT) — so at equal fault
// rates the timed token pays more deadline misses per outage.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/fault_study.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

namespace {

std::vector<fault::FaultKind> parse_kinds(const std::string& csv) {
  std::vector<fault::FaultKind> kinds;
  std::istringstream in(csv);
  std::string name;
  while (std::getline(in, name, ',')) {
    if (name.empty()) continue;
    const auto kind = fault::parse_fault_kind(name);
    if (!kind) {
      std::fprintf(stderr, "unknown fault kind '%s'\n", name.c_str());
      std::exit(1);
    }
    kinds.push_back(*kind);
  }
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "5", "message sets per point");
  flags.declare("seed", "41", "base RNG seed");
  flags.declare("stations", "12", "stations on the ring");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  flags.declare("load-scale", "0.7", "load relative to the boundary");
  flags.declare("kinds", "token_loss,frame_corruption,station_crash",
                "comma-separated fault kinds to sweep");
  flags.declare("counts", "0,1,2,5,10", "faults injected per run");
  flags.declare("noise-ms", "1", "noise burst duration [ms]");
  obs::RunReport report("fault_tolerance");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;

  experiments::FaultStudyConfig config;
  config.setup.num_stations = static_cast<int>(flags.get_int("stations"));
  config.bandwidth_mbps = flags.get_double("bandwidth-mbps");
  config.load_scale = flags.get_double("load-scale");
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.kinds = parse_kinds(flags.get_string("kinds"));
  config.noise_duration = milliseconds(flags.get_double("noise-ms"));
  config.jobs = get_jobs(flags);
  config.batch = get_batch(flags, config.sets_per_point);
  config.fault_counts.clear();
  for (double c : parse_double_list(flags.get_string("counts"))) {
    config.fault_counts.push_back(static_cast<int>(c));
  }

  report.note(
      "# Fault tolerance at %.0f Mbps (n=%d, load %.0f%% of boundary)\n\n",
      config.bandwidth_mbps, config.setup.num_stations,
      100.0 * config.load_scale);

  const auto rows = experiments::run_fault_study(config);

  Table table({"protocol", "kind", "faults", "miss_ratio", "attributed",
               "outage_per_fault_us"});
  for (const auto& r : rows) {
    table.add_row({r.protocol, fault::to_string(r.kind),
                   fmt(static_cast<long long>(r.faults)), fmt(r.miss_ratio),
                   fmt(r.attributed_ratio),
                   fmt(to_microseconds(r.outage), 1)});
  }
  report.add_table("results", table);

  report.note(
      "\n# Observations\n"
      "Zero-fault rows must show ~0 miss ratio (loads sit inside the\n"
      "boundary); each FDDI token loss costs a ~2*TTRT+2*WT outage vs the\n"
      "802.5 monitor's few-Theta recovery, while frame corruption is one\n"
      "wasted slot on either ring.\n");
  return report.finish();
}
