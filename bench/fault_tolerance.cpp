// Fault tolerance under token loss (DESIGN.md experiment Abl. F): miss
// ratio vs. number of injected token losses for both protocols. The 802.5
// active monitor restores service within a few Theta; FDDI needs TRT
// double-expiry plus the claim process (order TTRT) — so at equal loss
// rates the timed token pays more deadline misses per outage.

#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/fault_study.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "5", "message sets per point");
  flags.declare("seed", "41", "base RNG seed");
  flags.declare("stations", "12", "stations on the ring");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  flags.declare("load-scale", "0.7", "load relative to the boundary");
  if (!flags.parse(argc, argv)) return 1;

  experiments::FaultStudyConfig config;
  config.setup.num_stations = static_cast<int>(flags.get_int("stations"));
  config.bandwidth_mbps = flags.get_double("bandwidth-mbps");
  config.load_scale = flags.get_double("load-scale");
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  std::printf(
      "# Token-loss fault tolerance at %.0f Mbps (n=%d, load %.0f%% of "
      "boundary)\n\n",
      config.bandwidth_mbps, config.setup.num_stations,
      100.0 * config.load_scale);

  const auto rows = experiments::run_fault_study(config);

  Table table({"protocol", "losses", "miss_ratio", "outage_per_loss_us"});
  for (const auto& r : rows) {
    table.add_row({r.protocol, fmt(static_cast<long long>(r.losses)),
                   fmt(r.miss_ratio), fmt(to_microseconds(r.outage), 1)});
  }
  table.print(std::cout);
  std::printf("\nCSV:\n");
  table.print_csv(std::cout);

  std::printf(
      "\n# Observations\n"
      "Zero-loss rows must show ~0 miss ratio (loads sit inside the\n"
      "boundary); each FDDI loss costs a ~2*TTRT+2*WT outage vs the 802.5\n"
      "monitor's few-Theta recovery.\n");
  return 0;
}
