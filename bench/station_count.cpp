// Station-count ablation: protocol scaling with ring size at a fixed
// bandwidth. More stations raise Theta and multiply per-rotation overheads,
// hurting PDP (whose effective frame slot is Theta-bound at high bandwidth)
// more than TTP.

#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/station_count_study.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "60", "Monte Carlo message sets per point");
  flags.declare("seed", "17", "base RNG seed");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  flags.declare("stations", "10,25,50,100,150,200", "station counts");
  obs::RunReport report("station_count");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;

  experiments::StationCountStudyConfig config;
  config.bandwidth_mbps = flags.get_double("bandwidth-mbps");
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.jobs = get_jobs(flags);
  config.batch = get_batch(flags, config.sets_per_point);
  config.station_counts.clear();
  for (double v : parse_double_list(flags.get_string("stations"))) {
    config.station_counts.push_back(static_cast<int>(v));
  }

  report.note("# Station-count ablation at %.0f Mbps\n\n", config.bandwidth_mbps);

  const auto rows = experiments::run_station_count_study(config);

  Table table({"stations", "ieee8025", "modified8025", "fddi"});
  for (const auto& r : rows) {
    table.add_row({fmt(static_cast<long long>(r.stations)), fmt(r.ieee8025),
                   fmt(r.modified8025), fmt(r.fddi)});
  }
  report.add_table("results", table);

  report.note("\n# Observations\n");
  if (rows.size() >= 2) {
    const auto& first = rows.front();
    const auto& last = rows.back();
    report.note("n %d -> %d: modified 802.5 %.3f -> %.3f, FDDI %.3f -> %.3f\n",
                first.stations, last.stations, first.modified8025,
                last.modified8025, first.fddi, last.fddi);
  }
  return report.finish();
}
