// Analysis-vs-simulation validation: the discrete-event simulators exercise
// each protocol's schedulability criterion from both sides of the boundary
// (see DESIGN.md, experiment Val. D).

#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/sim_validation_study.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "10", "message sets per (protocol, bandwidth)");
  flags.declare("seed", "29", "base RNG seed");
  flags.declare("stations", "12", "stations on the ring (simulation cost!)");
  flags.declare("bandwidths-mbps", "10,100", "bandwidth list [Mbit/s]");
  obs::RunReport report("sim_validation");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv,
                                   {.jobs = false, .batch = false})) {
    return *rc;
  }

  experiments::SimValidationConfig config;
  config.setup.num_stations = static_cast<int>(flags.get_int("stations"));
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.bandwidths_mbps = parse_double_list(flags.get_string("bandwidths-mbps"));

  report.note(
      "# Simulation validation (n=%d, %zu sets/cell)\n"
      "# inside scale: PDP %.2f, TTP %.2f of the boundary; outside: %.1fx\n\n",
      config.setup.num_stations, config.sets_per_point, config.inside_scale_pdp,
      config.inside_scale_ttp, config.outside_scale);

  const auto rows = experiments::run_sim_validation(config);

  Table table({"protocol", "BW_Mbps", "tested", "skipped", "false_neg",
               "outside_clean", "johnson_viol", "max_rot/TTRT"});
  bool sound = true;
  for (const auto& r : rows) {
    table.add_row({r.protocol, fmt(r.bandwidth_mbps, 0),
                   fmt(static_cast<long long>(r.sets_tested)),
                   fmt(static_cast<long long>(r.degenerate_skipped)),
                   fmt(static_cast<long long>(r.false_negatives)),
                   fmt(static_cast<long long>(r.outside_clean)),
                   fmt(static_cast<long long>(r.johnson_violations)),
                   r.protocol == "fddi" ? fmt(r.max_intervisit_ratio, 3) : "-"});
    sound &= r.false_negatives == 0 && r.johnson_violations == 0;
  }
  report.add_table("results", table);

  report.note("\n# Observations\nanalysis sound against simulation: %s\n",
              sound ? "yes (0 false negatives, 0 Johnson violations)"
                    : "NO - investigate!");
  return report.finish();
}
