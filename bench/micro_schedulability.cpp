// Micro-benchmarks (google-benchmark): cost of the schedulability tests
// themselves. Relevant because admission control runs these online: the
// paper's criteria are only useful in practice if a test over n streams is
// cheap. Compares the exact scheduling-point test (Theorem 4.1 as printed)
// against the equivalent response-time analysis, the O(n) TTP criterion,
// and one full breakdown-saturation search.
//
// Benchmarks come in reference/fast pairs: every *Kernel / *Fast /
// *ScaledInto variant has a same-shaped reference benchmark in the same
// run, so scripts/check_perf_baseline.py can gate both absolute regressions
// (against the checked-in BENCH_kernels.json) and the in-run speedup of the
// fast path over its reference.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "tokenring/analysis/fixed_priority.hpp"
#include "tokenring/analysis/kernels.hpp"
#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/cli.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/setup.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/obs/report.hpp"
#include "tokenring/sim/workload.hpp"

namespace {

using namespace tokenring;

msg::MessageSet make_set(int n, std::uint64_t seed, double scale) {
  msg::GeneratorConfig g;
  g.num_streams = n;
  g.mean_period = milliseconds(100);
  g.period_ratio = 10.0;
  msg::MessageSetGenerator gen(g);
  Rng rng(seed);
  return gen.generate(rng).scaled(scale);
}

experiments::PaperSetup setup_for(int n) {
  experiments::PaperSetup s;
  s.num_stations = n;
  return s;
}

void BM_PdpResponseTimeAnalysis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto params =
      setup_for(n).pdp_params(analysis::PdpVariant::kStandard8025);
  const BitsPerSecond bw = mbps(16);
  const auto set = make_set(n, 1, 20.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::pdp_feasible(set, params, bw));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PdpResponseTimeAnalysis)->Arg(10)->Arg(50)->Arg(100)->Arg(500)
    ->Complexity(benchmark::oNSquared);

void BM_PdpSchedulingPointTest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto params =
      setup_for(n).pdp_params(analysis::PdpVariant::kStandard8025);
  const BitsPerSecond bw = mbps(16);
  const auto set = make_set(n, 1, 20.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::pdp_schedulable_lsd(set, params, bw).schedulable);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PdpSchedulingPointTest)->Arg(10)->Arg(50)->Arg(100)
    ->Complexity(benchmark::oNCubed);

void BM_TtpCriterion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto params = setup_for(n).ttp_params();
  const BitsPerSecond bw = mbps(100);
  const auto set = make_set(n, 1, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::ttp_feasible(set, params, bw));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_TtpCriterion)->Arg(10)->Arg(100)->Arg(1000)
    ->Complexity(benchmark::oN);

void BM_PdpAugmentedLength(benchmark::State& state) {
  const auto params =
      setup_for(100).pdp_params(analysis::PdpVariant::kModified8025);
  const msg::SyncStream s{milliseconds(100), 5'000.0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::pdp_augmented_length(s, params, mbps(16)));
  }
}
BENCHMARK(BM_PdpAugmentedLength);

void BM_SaturationSearchPdp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto setup = setup_for(n);
  const BitsPerSecond bw = mbps(16);
  const auto predicate =
      setup.pdp_predicate(analysis::PdpVariant::kModified8025, bw);
  const auto base = make_set(n, 3, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        breakdown::find_saturation(base, predicate, bw).breakdown_utilization);
  }
}
BENCHMARK(BM_SaturationSearchPdp)->Arg(10)->Arg(100);

void BM_SaturationSearchTtp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto setup = setup_for(n);
  const BitsPerSecond bw = mbps(100);
  const auto predicate = setup.ttp_predicate(bw);
  const auto base = make_set(n, 3, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        breakdown::find_saturation(base, predicate, bw).breakdown_utilization);
  }
}
BENCHMARK(BM_SaturationSearchTtp)->Arg(10)->Arg(100)->Arg(1000);

// Kernel-path saturation searches: identical probe sequence and result to
// the predicate pairs above (pinned by tests), but the scale-invariant work
// is hoisted out of the probe loop and no probe allocates.
void BM_SaturationSearchPdpKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto setup = setup_for(n);
  const BitsPerSecond bw = mbps(16);
  const auto params = setup.pdp_params(analysis::PdpVariant::kModified8025);
  const auto base = make_set(n, 3, 1.0);
  for (auto _ : state) {
    const analysis::PdpScaleKernel kernel(base, params, bw);
    benchmark::DoNotOptimize(
        breakdown::find_saturation_scaled(base, kernel, bw)
            .breakdown_utilization);
  }
}
BENCHMARK(BM_SaturationSearchPdpKernel)->Arg(10)->Arg(100);

void BM_SaturationSearchTtpKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto setup = setup_for(n);
  const BitsPerSecond bw = mbps(100);
  const auto params = setup.ttp_params();
  const auto base = make_set(n, 3, 1.0);
  for (auto _ : state) {
    const analysis::TtpScaleKernel kernel(base, params, bw);
    benchmark::DoNotOptimize(
        breakdown::find_saturation_scaled(base, kernel, bw)
            .breakdown_utilization);
  }
}
BENCHMARK(BM_SaturationSearchTtpKernel)->Arg(10)->Arg(100)->Arg(1000);

// Batched (SoA) saturation: B independent boundary searches advanced in
// lockstep by one batch kernel vs the same B searches run one scalar
// kernel at a time. Same sets, same probe sequences, bit-identical
// results (pinned by tests) — the pair isolates the SoA/vectorization
// win. Arg = lanes per batch.
std::vector<msg::MessageSet> make_lane_sets(int n, std::size_t lanes,
                                            std::uint64_t seed) {
  std::vector<msg::MessageSet> bases;
  bases.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    bases.push_back(make_set(n, seed + lane, 1.0));
  }
  return bases;
}

void BM_SaturationScalarPdp(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const int n = 100;
  const BitsPerSecond bw = mbps(16);
  const auto params = setup_for(n).pdp_params(analysis::PdpVariant::kModified8025);
  const auto bases = make_lane_sets(n, lanes, 3);
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& base : bases) {
      const analysis::PdpScaleKernel kernel(base, params, bw);
      acc += breakdown::find_saturation_scaled(base, kernel, bw)
                 .breakdown_utilization;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_SaturationScalarPdp)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_SaturationBatchPdp(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const int n = 100;
  const BitsPerSecond bw = mbps(16);
  const auto params = setup_for(n).pdp_params(analysis::PdpVariant::kModified8025);
  const auto bases = make_lane_sets(n, lanes, 3);
  for (auto _ : state) {
    const analysis::PdpBatchKernel kernel(bases, params, bw);
    const auto sats = breakdown::find_saturation_batch(
        bases,
        [&kernel](std::span<const double> scales,
                  std::span<const std::uint8_t> active,
                  std::span<std::uint8_t> verdicts) {
          kernel.evaluate(scales, active, verdicts);
        },
        bw);
    double acc = 0.0;
    for (const auto& sat : sats) acc += sat.breakdown_utilization;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_SaturationBatchPdp)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_SaturationScalarTtp(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const int n = 100;
  const BitsPerSecond bw = mbps(100);
  const auto params = setup_for(n).ttp_params();
  const auto bases = make_lane_sets(n, lanes, 3);
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& base : bases) {
      const analysis::TtpScaleKernel kernel(base, params, bw);
      acc += breakdown::find_saturation_scaled(base, kernel, bw)
                 .breakdown_utilization;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_SaturationScalarTtp)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_SaturationBatchTtp(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const int n = 100;
  const BitsPerSecond bw = mbps(100);
  const auto params = setup_for(n).ttp_params();
  const auto bases = make_lane_sets(n, lanes, 3);
  for (auto _ : state) {
    const analysis::TtpBatchKernel kernel(bases, params, bw);
    const auto sats = breakdown::find_saturation_batch(
        bases,
        [&kernel](std::span<const double> scales,
                  std::span<const std::uint8_t> active,
                  std::span<std::uint8_t> verdicts) {
          kernel.evaluate(scales, active, verdicts);
        },
        bw);
    double acc = 0.0;
    for (const auto& sat : sats) acc += sat.breakdown_utilization;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_SaturationBatchTtp)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

// Raw kernel-evaluate throughput at a fixed scale, with bytes_per_second
// reporting the effective memory bandwidth of the probe arithmetic (per
// full-width pass the TTP kernel streams the base-payload and
// usable-visits SoA rows and the per-lane accumulators). The scalar
// counterpart evaluates the same lanes one kernel at a time.
void BM_TtpEvaluateScalar(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const int n = 100;
  const BitsPerSecond bw = mbps(100);
  const auto params = setup_for(n).ttp_params();
  const auto bases = make_lane_sets(n, lanes, 3);
  std::vector<analysis::TtpScaleKernel> kernels;
  kernels.reserve(lanes);
  for (const auto& base : bases) kernels.emplace_back(base, params, bw);
  for (auto _ : state) {
    bool all = true;
    for (const auto& kernel : kernels) all &= kernel(2.0);
    benchmark::DoNotOptimize(all);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              (2 * static_cast<std::size_t>(n) + 1) * lanes *
                              sizeof(double)));
}
BENCHMARK(BM_TtpEvaluateScalar)->Arg(64);

void BM_TtpEvaluateBatch(benchmark::State& state) {
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const int n = 100;
  const BitsPerSecond bw = mbps(100);
  const auto params = setup_for(n).ttp_params();
  const auto bases = make_lane_sets(n, lanes, 3);
  const analysis::TtpBatchKernel kernel(bases, params, bw);
  const std::vector<double> scales(lanes, 2.0);
  std::vector<std::uint8_t> verdicts(lanes, 0);
  for (auto _ : state) {
    kernel.evaluate(scales, verdicts);
    benchmark::DoNotOptimize(verdicts.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(
                              (2 * static_cast<std::size_t>(n) + 1) * lanes *
                              sizeof(double)));
}
BENCHMARK(BM_TtpEvaluateBatch)->Arg(64);

// Allocation cost of one payload scaling: fresh copy vs reuse of one
// workspace buffer (what every saturation probe used to pay vs pays now).
void BM_ScaledCopy(benchmark::State& state) {
  const auto base = make_set(static_cast<int>(state.range(0)), 3, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.scaled(1.5));
  }
}
BENCHMARK(BM_ScaledCopy)->Arg(100);

void BM_ScaledInto(benchmark::State& state) {
  const auto base = make_set(static_cast<int>(state.range(0)), 3, 1.0);
  msg::MessageSet buffer;
  for (auto _ : state) {
    base.scaled_into(1.5, buffer);
    benchmark::DoNotOptimize(buffer);
  }
}
BENCHMARK(BM_ScaledInto)->Arg(100);

// Screened boolean verdicts vs the full exact analyses they wrap, on a
// prebuilt task list (the shape of one saturation probe after hoisting).
void BM_RtaExact(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto params =
      setup_for(n).pdp_params(analysis::PdpVariant::kStandard8025);
  const BitsPerSecond bw = mbps(16);
  const auto tasks = analysis::pdp_tasks(make_set(n, 1, 20.0), params, bw);
  const Seconds blocking = analysis::pdp_blocking(params, bw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::response_time_analysis(tasks, blocking).schedulable);
  }
}
BENCHMARK(BM_RtaExact)->Arg(100);

void BM_RtaScreened(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto params =
      setup_for(n).pdp_params(analysis::PdpVariant::kStandard8025);
  const BitsPerSecond bw = mbps(16);
  const auto tasks = analysis::pdp_tasks(make_set(n, 1, 20.0), params, bw);
  const Seconds blocking = analysis::pdp_blocking(params, bw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::rta_feasible_fast(tasks, blocking));
  }
}
BENCHMARK(BM_RtaScreened)->Arg(100);

void BM_LsdExact(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto params =
      setup_for(n).pdp_params(analysis::PdpVariant::kStandard8025);
  const BitsPerSecond bw = mbps(16);
  const auto tasks = analysis::pdp_tasks(make_set(n, 1, 20.0), params, bw);
  const Seconds blocking = analysis::pdp_blocking(params, bw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::lsd_point_test_all(tasks, blocking).schedulable);
  }
}
BENCHMARK(BM_LsdExact)->Arg(100);

void BM_LsdIncremental(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto params =
      setup_for(n).pdp_params(analysis::PdpVariant::kStandard8025);
  const BitsPerSecond bw = mbps(16);
  const auto tasks = analysis::pdp_tasks(make_set(n, 1, 20.0), params, bw);
  const Seconds blocking = analysis::pdp_blocking(params, bw);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::lsd_feasible_fast(tasks, blocking));
  }
}
BENCHMARK(BM_LsdIncremental)->Arg(100);

void BM_PdpSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto setup = setup_for(n);
  const auto params = setup.pdp_params(analysis::PdpVariant::kModified8025);
  const BitsPerSecond bw = mbps(16);
  const auto set = make_set(n, 5, 10.0);
  const sim::SimConfig cfg = sim::make_sim_config(set, params, bw, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(set, cfg));
  }
  state.SetLabel("two max-period horizons per iteration");
}
BENCHMARK(BM_PdpSimulation)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_TtpSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto setup = setup_for(n);
  const auto params = setup.ttp_params();
  const BitsPerSecond bw = mbps(100);
  const auto set = make_set(n, 5, 10.0);
  const sim::SimConfig cfg = sim::make_sim_config(set, params, bw, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_simulation(set, cfg));
  }
  state.SetLabel("two max-period horizons per iteration");
}
BENCHMARK(BM_TtpSimulation)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

// Collects every run into a Table for the manifest; in table mode it also
// delegates to ConsoleReporter so the familiar google-benchmark output is
// unchanged, in csv/json modes the console output is suppressed.
class ManifestReporter : public benchmark::ConsoleReporter {
 public:
  explicit ManifestReporter(bool quiet)
      : table_({"name", "iterations", "real_time", "cpu_time", "time_unit"}),
        quiet_(quiet) {}

  bool ReportContext(const Context& context) override {
    return quiet_ ? true : ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      table_.add_row({run.benchmark_name(),
                      fmt(static_cast<long long>(run.iterations)),
                      fmt(run.GetAdjustedRealTime(), 1),
                      fmt(run.GetAdjustedCPUTime(), 1),
                      benchmark::GetTimeUnitString(run.time_unit)});
    }
    if (!quiet_) ConsoleReporter::ReportRuns(runs);
  }

  const Table& table() const { return table_; }

 private:
  Table table_;
  bool quiet_;
};

bool is_bool_token(const std::string& s) {
  return s == "true" || s == "false" || s == "1" || s == "0" || s == "yes" ||
         s == "no";
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the shared --format/--out/
// --profile flags must be peeled off before benchmark::Initialize (which
// rejects arguments it does not know), and the per-benchmark timings are
// recorded into the run manifest.
int main(int argc, char** argv) {
  using namespace tokenring;
  CliFlags flags;

  std::vector<char*> report_args = {argv[0]};
  std::vector<char*> bench_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool ours = arg.rfind("--format", 0) == 0 ||
                      arg.rfind("--out", 0) == 0 ||
                      arg.rfind("--profile", 0) == 0;
    if (!ours) {
      bench_args.push_back(argv[i]);
      continue;
    }
    report_args.push_back(argv[i]);
    // Space-separated value form: also claim the value token. --profile is
    // boolean and may appear bare, so only claim an explicit bool token.
    if (arg.find('=') == std::string::npos && i + 1 < argc) {
      const std::string next = argv[i + 1];
      const bool take =
          arg.rfind("--profile", 0) == 0 ? is_bool_token(next)
                                         : next.rfind("--", 0) != 0;
      if (take) report_args.push_back(argv[++i]);
    }
  }

  int report_argc = static_cast<int>(report_args.size());
  obs::RunReport report("micro_schedulability");
  if (auto rc = obs::bootstrap_run(report, flags, report_argc,
                                   report_args.data(),
                                   {.jobs = false, .batch = false})) {
    return *rc;
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }

  ManifestReporter reporter(!report.verbose());
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  report.record_table("benchmarks", reporter.table());
  if (report.format() == obs::OutputFormat::kCsv) {
    reporter.table().print_csv(std::cout);
  }
  return report.finish();
}
