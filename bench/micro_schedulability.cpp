// Micro-benchmarks (google-benchmark): cost of the schedulability tests
// themselves. Relevant because admission control runs these online: the
// paper's criteria are only useful in practice if a test over n streams is
// cheap. Compares the exact scheduling-point test (Theorem 4.1 as printed)
// against the equivalent response-time analysis, the O(n) TTP criterion,
// and one full breakdown-saturation search.

#include <benchmark/benchmark.h>

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/experiments/setup.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/sim/workload.hpp"

namespace {

using namespace tokenring;

msg::MessageSet make_set(int n, std::uint64_t seed, double scale) {
  msg::GeneratorConfig g;
  g.num_streams = n;
  g.mean_period = milliseconds(100);
  g.period_ratio = 10.0;
  msg::MessageSetGenerator gen(g);
  Rng rng(seed);
  return gen.generate(rng).scaled(scale);
}

experiments::PaperSetup setup_for(int n) {
  experiments::PaperSetup s;
  s.num_stations = n;
  return s;
}

void BM_PdpResponseTimeAnalysis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto params =
      setup_for(n).pdp_params(analysis::PdpVariant::kStandard8025);
  const BitsPerSecond bw = mbps(16);
  const auto set = make_set(n, 1, 20.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::pdp_feasible(set, params, bw));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PdpResponseTimeAnalysis)->Arg(10)->Arg(50)->Arg(100)->Arg(500)
    ->Complexity(benchmark::oNSquared);

void BM_PdpSchedulingPointTest(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto params =
      setup_for(n).pdp_params(analysis::PdpVariant::kStandard8025);
  const BitsPerSecond bw = mbps(16);
  const auto set = make_set(n, 1, 20.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::pdp_schedulable_lsd(set, params, bw).schedulable);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_PdpSchedulingPointTest)->Arg(10)->Arg(50)->Arg(100)
    ->Complexity(benchmark::oNCubed);

void BM_TtpCriterion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto params = setup_for(n).ttp_params();
  const BitsPerSecond bw = mbps(100);
  const auto set = make_set(n, 1, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::ttp_feasible(set, params, bw));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_TtpCriterion)->Arg(10)->Arg(100)->Arg(1000)
    ->Complexity(benchmark::oN);

void BM_PdpAugmentedLength(benchmark::State& state) {
  const auto params =
      setup_for(100).pdp_params(analysis::PdpVariant::kModified8025);
  const msg::SyncStream s{milliseconds(100), 5'000.0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::pdp_augmented_length(s, params, mbps(16)));
  }
}
BENCHMARK(BM_PdpAugmentedLength);

void BM_SaturationSearchPdp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto setup = setup_for(n);
  const BitsPerSecond bw = mbps(16);
  const auto predicate =
      setup.pdp_predicate(analysis::PdpVariant::kModified8025, bw);
  const auto base = make_set(n, 3, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        breakdown::find_saturation(base, predicate, bw).breakdown_utilization);
  }
}
BENCHMARK(BM_SaturationSearchPdp)->Arg(10)->Arg(100);

void BM_SaturationSearchTtp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto setup = setup_for(n);
  const BitsPerSecond bw = mbps(100);
  const auto predicate = setup.ttp_predicate(bw);
  const auto base = make_set(n, 3, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        breakdown::find_saturation(base, predicate, bw).breakdown_utilization);
  }
}
BENCHMARK(BM_SaturationSearchTtp)->Arg(10)->Arg(100)->Arg(1000);

void BM_PdpSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto setup = setup_for(n);
  const auto params = setup.pdp_params(analysis::PdpVariant::kModified8025);
  const BitsPerSecond bw = mbps(16);
  const auto set = make_set(n, 5, 10.0);
  sim::PdpSimConfig cfg = sim::make_pdp_sim_config(set, params, bw, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_pdp_simulation(set, cfg));
  }
  state.SetLabel("two max-period horizons per iteration");
}
BENCHMARK(BM_PdpSimulation)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_TtpSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto setup = setup_for(n);
  const auto params = setup.ttp_params();
  const BitsPerSecond bw = mbps(100);
  const auto set = make_set(n, 5, 10.0);
  sim::TtpSimConfig cfg = sim::make_ttp_sim_config(set, params, bw, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_ttp_simulation(set, cfg));
  }
  state.SetLabel("two max-period horizons per iteration");
}
BENCHMARK(BM_TtpSimulation)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
