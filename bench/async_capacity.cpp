// Asynchronous capacity left by a guaranteed synchronous load (DESIGN.md
// experiment Abl. E). The paper's protocols differ sharply here: PDP burns
// Theta-bound slots per frame at high bandwidth, so its async leftover
// collapses exactly where TTP's grows. The TTP column is cross-checked
// against simulated saturating-async throughput.

#include <cstdio>
#include <iostream>

#include "tokenring/analysis/async_capacity.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/cli.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/setup.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("stations", "16", "stations on the ring");
  flags.declare("bandwidths-mbps", "10,100", "bandwidth list [Mbit/s]");
  flags.declare("sync-levels", "0.05,0.1,0.2,0.3,0.4",
                "synchronous utilization levels");
  flags.declare("sim-horizon-s", "1.0", "simulated seconds for the TTP check");
  flags.declare("seed", "31", "RNG seed");
  obs::RunReport report("async_capacity");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv,
                                   {.jobs = false, .batch = false})) {
    return *rc;
  }

  experiments::PaperSetup setup;
  setup.num_stations = static_cast<int>(flags.get_int("stations"));

  report.note(
      "# Async capacity vs synchronous load (n=%d)\n"
      "# cells: fraction of the link left for asynchronous traffic\n\n",
      setup.num_stations);

  Table table({"BW_Mbps", "sync_U", "pdp_std", "pdp_mod", "ttp", "ttp_sim"});

  msg::MessageSetGenerator gen(setup.generator_config());
  for (double bw_mbps : parse_double_list(flags.get_string("bandwidths-mbps"))) {
    const BitsPerSecond bw = mbps(bw_mbps);
    for (double level : parse_double_list(flags.get_string("sync-levels"))) {
      Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
      auto set = gen.generate(rng);
      set = set.scaled(level / set.utilization(bw));

      const auto p_std = setup.pdp_params(analysis::PdpVariant::kStandard8025);
      const auto p_mod = setup.pdp_params(analysis::PdpVariant::kModified8025);
      const auto p_ttp = setup.ttp_params();
      const Seconds ttrt = analysis::select_ttrt(set, p_ttp.ring, bw);

      const double ttp_cap = analysis::ttp_async_capacity(set, p_ttp, bw, ttrt);

      // Simulated check: saturating async throughput on the same ring.
      sim::SimConfig cfg;
      cfg.protocol = sim::Protocol::kTtp;
      cfg.ttp = p_ttp;
      cfg.bandwidth = bw;
      cfg.ttrt = ttrt;
      cfg.horizon = flags.get_double("sim-horizon-s");
      cfg.async_model = sim::AsyncModel::kSaturating;
      for (const auto& s : set.streams()) {
        cfg.sync_bandwidth_per_stream.push_back(
            analysis::ttp_local_bandwidth(s, p_ttp, bw, ttrt).value_or(0.0));
      }
      const auto m = sim::run_simulation(set, cfg);
      const double ttp_sim = static_cast<double>(m.async_frames_sent) *
                             p_ttp.async_frame.frame_time(bw) / cfg.horizon;

      table.add_row({fmt(bw_mbps, 0), fmt(level, 2),
                     fmt(analysis::pdp_async_capacity(set, p_std, bw), 3),
                     fmt(analysis::pdp_async_capacity(set, p_mod, bw), 3),
                     fmt(ttp_cap, 3), fmt(ttp_sim, 3)});
    }
  }
  report.add_table("results", table);
  report.note(
      "\n# Observations\n"
      "At high bandwidth the PDP columns collapse (each frame burns a\n"
      "Theta-bound slot) while TTP passes most of the link to async —\n"
      "the same mechanism behind Figure 1's crossover.\n");
  return report.finish();
}
