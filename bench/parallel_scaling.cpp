// Parallel-scaling benchmark for the exec/ Monte Carlo engine.
//
// Runs the Figure-1 workload (TTP breakdown estimation at one bandwidth)
// at jobs in {1, 2, 4, 8}, reports trials/sec and speedup over the
// sequential run, and checks that every jobs count reproduces the exact
// sequential mean — the bit-identity contract of the seed-stream design.
// The last line of output is a single JSON record for machine consumption.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "tokenring/breakdown/monte_carlo.hpp"
#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/setup.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "400", "Monte Carlo message sets per run");
  flags.declare("seed", "42", "master RNG seed");
  flags.declare("stations", "100", "stations on the ring");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  flags.declare("jobs-list", "1,2,4,8", "worker counts to measure");
  obs::RunReport report("parallel_scaling");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv,
                                   {.jobs = false, .batch = false})) {
    return *rc;
  }

  experiments::PaperSetup setup;
  setup.num_stations = static_cast<int>(flags.get_int("stations"));
  const auto sets = static_cast<std::size_t>(flags.get_int("sets"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const BitsPerSecond bw = mbps(flags.get_double("bandwidth-mbps"));

  msg::MessageSetGenerator gen(setup.generator_config());
  const auto predicate = setup.ttp_predicate(bw);
  breakdown::MonteCarloOptions options;
  options.num_sets = sets;

  report.note("# Parallel scaling: TTP breakdown estimation, %zu sets, n=%d\n",
              sets, setup.num_stations);
  report.note("# hardware concurrency: %zu\n\n", exec::default_jobs());

  struct Row {
    std::size_t jobs;
    double seconds;
    double trials_per_sec;
    double speedup;
    bool identical;
  };
  std::vector<Row> rows;
  double seq_seconds = 0.0;
  double seq_mean = 0.0;

  for (double jobs_d : parse_double_list(flags.get_string("jobs-list"))) {
    const auto jobs = static_cast<std::size_t>(jobs_d);
    const exec::Executor executor(jobs);
    const auto t0 = std::chrono::steady_clock::now();
    const auto est = breakdown::estimate_breakdown_utilization(
        gen, predicate, bw, seed, executor, options);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (rows.empty()) {
      seq_seconds = seconds;
      seq_mean = est.mean();
    }
    rows.push_back({jobs, seconds, static_cast<double>(sets) / seconds,
                    seq_seconds / seconds, est.mean() == seq_mean});
  }

  Table table({"jobs", "seconds", "trials_per_sec", "speedup", "identical"});
  for (const auto& r : rows) {
    table.add_row({std::to_string(r.jobs), fmt(r.seconds, 3),
                   fmt(r.trials_per_sec, 1), fmt(r.speedup, 2),
                   r.identical ? "yes" : "NO"});
  }
  // This binary historically prints the table with no "CSV:" block, so it
  // records the table in the manifest itself instead of using add_table.
  report.record_table("results", table);
  if (report.verbose()) {
    table.print(std::cout);
  } else if (report.format() == obs::OutputFormat::kCsv) {
    table.print_csv(std::cout);
  }

  bool all_identical = true;
  for (const auto& r : rows) all_identical = all_identical && r.identical;
  report.note("\nall jobs counts bit-identical to sequential: %s\n",
              all_identical ? "yes" : "NO");

  // Machine-readable record (one line).
  report.note("\nJSON: {\"bench\":\"parallel_scaling\",\"sets\":%zu,"
              "\"stations\":%d,\"bandwidth_mbps\":%.0f,\"seed\":%llu,"
              "\"hardware_concurrency\":%zu,\"bit_identical\":%s,\"runs\":[",
              sets, setup.num_stations, flags.get_double("bandwidth-mbps"),
              static_cast<unsigned long long>(seed), exec::default_jobs(),
              all_identical ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    report.note("%s{\"jobs\":%zu,\"seconds\":%.4f,\"trials_per_sec\":%.1f,"
                "\"speedup\":%.3f}",
                i ? "," : "", r.jobs, r.seconds, r.trials_per_sec, r.speedup);
  }
  report.note("]}\n");
  const int rc = report.finish();
  return all_identical ? rc : 1;
}
