// Synchronous-bandwidth allocation schemes for the timed-token protocol
// (paper Section 5.2) and the worst-case ~33% guarantee (Sections 2, 5).
//
// Part 1: fraction of random message sets each scheme can guarantee at
// fixed utilization levels — the local scheme must dominate (it allocates
// exactly each station's minimum need).
// Part 2: the analytical worst-case bound (1 - Lambda/TTRT)/3 versus the
// empirical minimum breakdown utilization over random sets.

#include <cstdio>
#include <iostream>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/allocation_study.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "200", "Monte Carlo message sets per point");
  flags.declare("seed", "19", "base RNG seed");
  flags.declare("stations", "100", "stations on the ring");
  flags.declare("bandwidth-mbps", "100", "link bandwidth [Mbit/s]");
  obs::RunReport report("allocation_schemes");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;

  experiments::AllocationStudyConfig config;
  config.setup.num_stations = static_cast<int>(flags.get_int("stations"));
  config.bandwidth_mbps = flags.get_double("bandwidth-mbps");
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.jobs = get_jobs(flags);

  report.note(
      "# TTP allocation schemes at %.0f Mbps (n=%d, %zu sets/level)\n"
      "# cell = fraction of random sets the scheme guarantees\n\n",
      config.bandwidth_mbps, config.setup.num_stations, config.sets_per_point);

  const auto rows = experiments::run_allocation_study(config);

  Table table({"utilization", "local", "full-length", "proportional",
               "norm-proportional", "equal-partition"});
  for (double u : config.utilization_levels) {
    std::vector<std::string> cells = {fmt(u, 2)};
    for (auto scheme : analysis::all_allocation_schemes()) {
      for (const auto& r : rows) {
        if (r.scheme == scheme && r.utilization == u) {
          cells.push_back(fmt(r.feasible_fraction, 3));
        }
      }
    }
    table.add_row(cells);
  }
  report.add_table("results", table);

  experiments::WorstCaseStudyConfig wc;
  wc.setup = config.setup;
  wc.bandwidth_mbps = config.bandwidth_mbps;
  wc.num_sets = config.sets_per_point;
  wc.seed = config.seed;
  wc.jobs = config.jobs;
  wc.batch = get_batch(flags, wc.num_sets);
  const auto worst = experiments::run_worst_case_study(wc);

  report.note("\n# Worst-case guarantee (local scheme)\n");
  report.note("analytical bound (1 - Lambda/TTRT)/3 : %.4f\n",
              worst.analytical_bound);
  report.note("empirical min breakdown utilization  : %.4f\n",
              worst.min_breakdown);
  report.note("empirical mean breakdown utilization : %.4f\n",
              worst.mean_breakdown);
  report.note("sets rejected below the bound        : %zu (must be 0)\n",
              worst.bound_violations);
  return report.finish();
}
