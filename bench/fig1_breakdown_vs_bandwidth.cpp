// Figure 1: average breakdown utilization vs. bandwidth for the three
// protocol implementations (IEEE 802.5, Modified IEEE 802.5, FDDI timed
// token) under the paper's Section 6.2 operating conditions.
//
// The paper's observations this harness reproduces:
//  * PDP improves with bandwidth up to a point, then *falls* (token-walk
//    overhead Theta dominates the shrinking frame time);
//  * the modified 802.5 dominates the standard one everywhere;
//  * PDP beats TTP at low bandwidth, TTP wins at >= ~100 Mbps.

#include <cstdio>
#include <iostream>

#include "tokenring/common/ascii_plot.hpp"
#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/experiments/fig1.hpp"
#include "tokenring/obs/report.hpp"

using namespace tokenring;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.declare("sets", "100", "Monte Carlo message sets per point");
  flags.declare("seed", "42", "base RNG seed");
  flags.declare("stations", "100", "stations on the ring (= streams)");
  flags.declare("mean-period-ms", "100", "average message period [ms]");
  flags.declare("period-ratio", "10", "max/min period ratio");
  flags.declare("bandwidths-mbps", "1,2,5,10,20,50,100,200,500,1000",
                "bandwidth sweep [Mbit/s]");
  obs::RunReport report("fig1_breakdown_vs_bandwidth");
  if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;

  experiments::Fig1Config config;
  config.setup.num_stations = static_cast<int>(flags.get_int("stations"));
  config.setup.mean_period = milliseconds(flags.get_double("mean-period-ms"));
  config.setup.period_ratio = flags.get_double("period-ratio");
  config.sets_per_point = static_cast<std::size_t>(flags.get_int("sets"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.jobs = get_jobs(flags);
  config.batch = get_batch(flags, config.sets_per_point);
  config.bandwidths_mbps = parse_double_list(flags.get_string("bandwidths-mbps"));

  report.note(
      "# Figure 1 reproduction: average breakdown utilization vs bandwidth\n"
      "# n=%d stations, mean period %.0f ms, ratio %.0f, %zu sets/point\n\n",
      config.setup.num_stations, to_milliseconds(config.setup.mean_period),
      config.setup.period_ratio, config.sets_per_point);

  const auto rows = experiments::run_fig1(config);

  Table table({"BW_Mbps", "ieee8025", "ieee8025_ci95", "modified8025",
               "modified8025_ci95", "fddi", "fddi_ci95"});
  for (const auto& r : rows) {
    table.add_row({fmt(r.bandwidth_mbps, 0), fmt(r.ieee8025), fmt(r.ieee8025_ci),
                   fmt(r.modified8025), fmt(r.modified8025_ci), fmt(r.fddi),
                   fmt(r.fddi_ci)});
  }
  report.add_table("results", table);

  // The figure itself.
  PlotSeries std_series{"IEEE 802.5", {}, {}, 'o'};
  PlotSeries mod_series{"Modified IEEE 802.5", {}, {}, 'x'};
  PlotSeries fddi_series{"FDDI", {}, {}, '#'};
  for (const auto& r : rows) {
    std_series.x.push_back(r.bandwidth_mbps);
    std_series.y.push_back(r.ieee8025);
    mod_series.x.push_back(r.bandwidth_mbps);
    mod_series.y.push_back(r.modified8025);
    fddi_series.x.push_back(r.bandwidth_mbps);
    fddi_series.y.push_back(r.fddi);
  }
  PlotOptions plot;
  plot.log_x = true;
  plot.y_max = 1.0;
  plot.title = "\nFigure 1: Avg. breakdown utilization vs bandwidth";
  plot.x_label = "Bandwidth (Mbps)";
  plot.y_label = "average breakdown utilization";
  report.note("%s", render_plot({std_series, mod_series, fddi_series}, plot)
                        .c_str());

  const auto obs = experiments::analyze_fig1(rows);
  report.note("\n# Observations (paper Section 6.2)\n");
  report.note("PDP (modified) peaks at %.0f Mbps (%.3f); non-monotone: %s\n",
              obs.pdp_peak_bandwidth_mbps, obs.pdp_peak_utilization,
              obs.pdp_non_monotone ? "yes (as in the paper)" : "NO (unexpected)");
  report.note("modified 802.5 >= standard 802.5 everywhere: %s\n",
              obs.modified_dominates_standard ? "yes" : "NO (unexpected)");
  report.note("FDDI monotone rising: %s\n",
              obs.fddi_monotone_rising ? "yes" : "NO (unexpected)");
  report.note("winner at %6.0f Mbps: %s\n", rows.front().bandwidth_mbps,
              obs.low_bandwidth_winner.c_str());
  report.note("winner at %6.0f Mbps: %s\n", rows.back().bandwidth_mbps,
              obs.high_bandwidth_winner.c_str());
  if (obs.ttp_crossover_mbps > 0.0) {
    report.note("TTP overtakes PDP at ~%g Mbps\n", obs.ttp_crossover_mbps);
  }
  return report.finish();
}
