// Worst-case response-time bounds.
//
// PDP: the exact response-time analysis already yields per-stream worst
// responses (see pdp.hpp / PdpStreamReport::response_time).
//
// TTP: Johnson's cycle-time property generalizes to "in any interval of
// length (k+1)*TTRT the token visits a station at least k times". A message
// needing k synchronous-bandwidth visits is therefore always done within
// (k+1)*TTRT of its arrival, where
//     k = ceil( C_i / (h_i - F_ovhd) )
// (each visit carries one frame of h_i seconds, F_ovhd of which is
// overhead). These are hard bounds: the TTP simulator's observed responses
// must never exceed them (tested).

#pragma once

#include <optional>
#include <vector>

#include "tokenring/analysis/ttp.hpp"
#include "tokenring/msg/message_set.hpp"

namespace tokenring::analysis {

/// Per-stream TTP latency quote.
struct TtpLatencyBound {
  msg::SyncStream stream;
  /// Allocated synchronous bandwidth h_i [s].
  Seconds h = 0.0;
  /// Token visits needed to drain one message.
  std::int64_t visits = 0;
  /// Hard worst-case response bound (k+1)*TTRT [s].
  Seconds response_bound = 0.0;
  /// Deadline slack: period - response_bound (>= 0 iff guaranteed).
  Seconds slack = 0.0;
};

/// Worst-case response bound of one stream under the local allocation at
/// the given TTRT. Returns nullopt when the stream cannot be guaranteed at
/// this TTRT (q_i < 2) or its allocation carries no payload capacity.
/// Note the local allocation stretches every message over exactly
/// q_i - 1 visits (minimum bandwidth), so the bound equals q_i * TTRT; use
/// the explicit-h overload to quote latency for a more generous allocation.
std::optional<TtpLatencyBound> ttp_response_bound(const msg::SyncStream& stream,
                                                  const TtpParams& params,
                                                  BitsPerSecond bw,
                                                  Seconds ttrt);

/// Worst-case response bound with an explicitly provisioned synchronous
/// bandwidth `h` (latency-oriented allocation: a larger h needs fewer
/// visits). Returns nullopt when h cannot carry any payload.
std::optional<TtpLatencyBound> ttp_response_bound_with_h(
    const msg::SyncStream& stream, Seconds h, const TtpParams& params,
    BitsPerSecond bw, Seconds ttrt);

/// Bounds for every stream in the set (paper TTRT rule). Streams that
/// cannot be guaranteed come back with visits = 0 and response_bound = inf.
std::vector<TtpLatencyBound> ttp_latency_report(const msg::MessageSet& set,
                                                const TtpParams& params,
                                                BitsPerSecond bw);

}  // namespace tokenring::analysis
