#include "tokenring/analysis/ttrt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tokenring/common/checks.hpp"

namespace tokenring::analysis {

Seconds ttrt_bid(Seconds period, Seconds theta) {
  TR_EXPECTS(period > 0.0);
  TR_EXPECTS(theta > 0.0);
  return std::min(std::sqrt(theta * period), period / 2.0);
}

Seconds select_ttrt(const msg::MessageSet& set, const net::RingParams& ring,
                    BitsPerSecond bw) {
  TR_EXPECTS(!set.empty());
  TR_EXPECTS(bw > 0.0);
  const Seconds theta = ring.theta(bw);
  Seconds best = std::numeric_limits<double>::infinity();
  for (const auto& s : set.streams()) {
    // Bids use the effective deadline: the guarantee window is D_i, so the
    // TTRT must fit q_i >= 2 visits inside it (D = P in the paper's model).
    best = std::min(best, ttrt_bid(s.deadline(), theta));
  }
  return best;
}

Seconds max_valid_ttrt(const msg::MessageSet& set) {
  TR_EXPECTS(!set.empty());
  Seconds min_deadline = std::numeric_limits<double>::infinity();
  for (const auto& s : set.streams()) {
    min_deadline = std::min(min_deadline, s.deadline());
  }
  return min_deadline / 2.0;
}

}  // namespace tokenring::analysis
