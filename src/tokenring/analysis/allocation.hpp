// Baseline synchronous-bandwidth allocation schemes for the timed-token
// protocol (paper Section 5.2 context; schemes from Agrawal-Chen-Zhao).
//
// All schemes share the same feasibility model the paper uses for the local
// scheme: within any period P_i Johnson's bound guarantees at least
// q_i - 1 = floor(P_i/TTRT) - 1 usable token visits, each visit carries one
// synchronous frame of length h_i with F_ovhd overhead, and the ring-wide
// protocol constraint is sum h_i <= TTRT - Lambda.
//
// A scheme is *feasible* for a set iff
//   (deadline)  (q_i - 1) * (h_i - F_ovhd) >= C_i  for every i, and
//   (protocol)  sum h_i <= TTRT - Lambda.
//
// Under this model the local scheme allocates exactly each station's
// minimum need, so its feasibility region contains every other scheme's —
// it stands in for the "optimal" scheme of [4] (see DESIGN.md Section 5).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tokenring/analysis/ttp.hpp"
#include "tokenring/msg/message_set.hpp"

namespace tokenring::analysis {

/// Baseline allocation schemes.
enum class AllocationScheme {
  /// h_i = C_i/(q_i - 1) + F_ovhd — the paper's choice (minimum need).
  kLocal,
  /// h_i = C_i + F_ovhd — whole message in one visit.
  kFullLength,
  /// h_i = U_i * (TTRT - Lambda) — proportional to raw utilization.
  kProportional,
  /// h_i = (U_i / U) * (TTRT - Lambda) — utilization-normalized.
  kNormalizedProportional,
  /// h_i = (TTRT - Lambda) / n — equal split.
  kEqualPartition,
};

/// Display name, e.g. "local", "full-length".
const char* to_string(AllocationScheme scheme);

/// All schemes, for sweeping in benches/tests.
std::vector<AllocationScheme> all_allocation_schemes();

/// Result of allocating for one message set.
struct AllocationResult {
  AllocationScheme scheme{};
  Seconds ttrt = 0.0;
  Seconds lambda = 0.0;
  /// Per-stream h_i in the input set's order [s].
  std::vector<Seconds> h;
  /// Deadline constraint satisfied for every stream.
  bool deadline_ok = false;
  /// Protocol constraint sum h_i <= TTRT - Lambda satisfied.
  bool protocol_ok = false;

  bool feasible() const { return deadline_ok && protocol_ok; }
};

/// Compute h_i under `scheme` and evaluate both constraints.
/// Requires a validated set, bw > 0, ttrt > 0.
AllocationResult allocate(const msg::MessageSet& set, const TtpParams& params,
                          BitsPerSecond bw, Seconds ttrt,
                          AllocationScheme scheme);

}  // namespace tokenring::analysis
