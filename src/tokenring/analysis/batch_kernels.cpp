// Structure-of-arrays batch kernels (see kernels.hpp for the contract).
//
// This translation unit holds the lane-vectorized hot loops and is compiled
// with a slightly raised x86 baseline (see src/CMakeLists.txt) so the
// floor/ceil in the PDP frame-count arithmetic can use vector rounding
// instructions. Every operation is IEEE-exact scalar-for-scalar (mul, div,
// add, floor, ceil, max, blend — no FMA contraction, no reassociation), so
// the verdicts are bit-identical to the scalar kernels whatever the vector
// width. The VEC-HOT markers delimit the loops scripts/check_vectorization.py
// requires the compiler to vectorize.

#include <algorithm>
#include <cmath>

#include "tokenring/analysis/kernels.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"

namespace tokenring::analysis {

namespace {

/// Augmented-length stage of the PDP batch probe: cost[i*lanes + l] is
/// bitwise `pdp_augmented_length(stream with payload base_payload * scale,
/// params, bw)` — same multiplies, same divides, same accumulation order as
/// the scalar path, with its branches turned into selects.
template <bool kStandard, bool kFrameDominated>
void pdp_batch_costs(std::size_t stations, std::size_t lanes,
                     const double* base_payload, const double* scales,
                     double info_bits, double theta, double frame_time,
                     double info_time, double overhead_time, double bw,
                     double* cost) {
  for (std::size_t i = 0; i < stations; ++i) {
    const double* bp = base_payload + i * lanes;
    double* c = cost + i * lanes;
    // VEC-HOT-BEGIN(pdp_costs)
    for (std::size_t l = 0; l < lanes; ++l) {
      const double payload = bp[l] * scales[l];
      const double frames = payload / info_bits;
      const double full = std::floor(frames);   // L_i
      const double total = std::ceil(frames);   // K_i
      const double token_overhead =
          kStandard ? total * theta / 2.0 : theta / 2.0;
      double value;
      if constexpr (kFrameDominated) {
        // F <= Theta: every frame's slot costs Theta.
        value = total * theta + token_overhead;
      } else {
        // L_i full frames at F each, plus a short last frame iff K_i > L_i.
        // The short-frame time is computed unconditionally (it is harmless
        // garbage when K_i == L_i) so both conditionals lower to selects.
        const double short_frame =
            std::max(payload / bw - full * info_time + overhead_time, theta);
        const double tail = total > full ? short_frame : 0.0;
        value = full * frame_time + token_overhead + tail;
      }
      c[l] = payload > 0.0 ? value : 0.0;
    }
    // VEC-HOT-END(pdp_costs)
  }
}

}  // namespace

PdpBatchKernel::PdpBatchKernel(std::span<const msg::MessageSet> bases,
                               const PdpParams& params, BitsPerSecond bw)
    : lanes_(bases.size()),
      bw_(bw),
      blocking_(pdp_blocking(params, bw)),
      theta_(params.ring.theta(bw)),
      frame_time_(params.frame.frame_time(bw)),
      info_time_(params.frame.info_time(bw)),
      overhead_time_(params.frame.overhead_time(bw)),
      info_bits_(params.frame.info_bits),
      standard_variant_(params.variant == PdpVariant::kStandard8025),
      frame_dominated_(params.frame.frame_time(bw) <= params.ring.theta(bw)) {
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(!bases.empty());
  stations_ = bases[0].size();
  TR_EXPECTS(stations_ >= 1);

  base_payload_.resize(stations_ * lanes_);
  cost_.resize(stations_ * lanes_);
  tasks_.resize(lanes_);
  failed_hint_.assign(lanes_, static_cast<std::size_t>(-1));
  for (std::size_t l = 0; l < lanes_; ++l) {
    TR_EXPECTS_MSG(bases[l].size() == stations_,
                   "batch lanes must share one station count");
    // Deadline sort compares only deadlines, which scaling leaves
    // untouched: the base permutation is the scaled permutation (same
    // hoist as the scalar kernel).
    const msg::MessageSet sorted = bases[l].rm_sorted();
    tasks_[l].resize(stations_);
    for (std::size_t i = 0; i < stations_; ++i) {
      const auto& s = sorted.streams()[i];
      base_payload_[i * lanes_ + l] = s.payload_bits;
      tasks_[l][i].period = s.period;
      tasks_[l][i].deadline = s.relative_deadline;
    }
  }
}

void PdpBatchKernel::evaluate(std::span<const double> scales,
                              std::span<const std::uint8_t> active,
                              std::span<std::uint8_t> verdicts) const {
  TR_EXPECTS(scales.size() == lanes_);
  TR_EXPECTS(active.size() == lanes_);
  TR_EXPECTS(verdicts.size() == lanes_);

  using CostFn = void (*)(std::size_t, std::size_t, const double*,
                          const double*, double, double, double, double,
                          double, double, double*);
  static constexpr CostFn kCostFns[2][2] = {
      {&pdp_batch_costs<false, false>, &pdp_batch_costs<false, true>},
      {&pdp_batch_costs<true, false>, &pdp_batch_costs<true, true>}};
  kCostFns[standard_variant_ ? 1 : 0][frame_dominated_ ? 1 : 0](
      stations_, lanes_, base_payload_.data(), scales.data(), info_bits_,
      theta_, frame_time_, info_time_, overhead_time_, bw_, cost_.data());

  // Screened RTA per live lane: identical verdict to the scalar kernel (the
  // failed-task hint only reorders which task is tested first).
  for (std::size_t l = 0; l < lanes_; ++l) {
    if (!active[l]) continue;
    auto& tasks = tasks_[l];
    for (std::size_t i = 0; i < stations_; ++i) {
      tasks[i].cost = cost_[i * lanes_ + l];
    }
    verdicts[l] =
        rta_feasible_fast(tasks, blocking_, &failed_hint_[l]) ? 1 : 0;
  }
}

void PdpBatchKernel::evaluate(std::span<const double> scales,
                              std::span<std::uint8_t> verdicts) const {
  const std::vector<std::uint8_t> all(lanes_, 1);
  evaluate(scales, all, verdicts);
}

TtpBatchKernel::TtpBatchKernel(std::span<const msg::MessageSet> bases,
                               const TtpParams& params, BitsPerSecond bw)
    : TtpBatchKernel(bases, params, bw, nullptr) {}

TtpBatchKernel::TtpBatchKernel(std::span<const msg::MessageSet> bases,
                               const TtpParams& params, BitsPerSecond bw,
                               Seconds ttrt)
    : TtpBatchKernel(bases, params, bw, &ttrt) {}

TtpBatchKernel::TtpBatchKernel(std::span<const msg::MessageSet> bases,
                               const TtpParams& params, BitsPerSecond bw,
                               const Seconds* pinned_ttrt)
    : lanes_(bases.size()),
      bw_(bw),
      frame_overhead_(params.frame.overhead_time(bw)) {
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(!bases.empty());
  stations_ = bases[0].size();
  TR_EXPECTS(stations_ >= 1);

  const Seconds lambda = ttp_lambda(params, bw);
  available_.resize(lanes_);
  infeasible_.assign(lanes_, 0);
  base_payload_.assign(stations_ * lanes_, 0.0);
  usable_visits_.assign(stations_ * lanes_, 1.0);
  allocated_.resize(lanes_);
  for (std::size_t l = 0; l < lanes_; ++l) {
    TR_EXPECTS_MSG(bases[l].size() == stations_,
                   "batch lanes must share one station count");
    // The paper's TTRT rule reads only periods and deadlines:
    // scale-invariant, so selecting on the base set is exact.
    const Seconds ttrt = pinned_ttrt != nullptr
                             ? *pinned_ttrt
                             : select_ttrt(bases[l], params.ring, bw);
    TR_EXPECTS(ttrt > 0.0);
    available_[l] = ttrt - lambda;
    for (std::size_t i = 0; i < stations_; ++i) {
      const auto& s = bases[l].streams()[i];
      // q_i = floor(D_i / TTRT) reads only the deadline: scale-invariant.
      const auto q =
          static_cast<std::int64_t>(std::floor(s.deadline() / ttrt));
      if (q < 2) {
        // Deadline-infeasible at every scale; leave the dummy rows (payload
        // 0, divisor 1) so the full-width loop stays finite, and force the
        // verdict below — exactly the scalar kernel's early-out flag.
        infeasible_[l] = 1;
        break;
      }
      base_payload_[i * lanes_ + l] = s.payload_bits;
      usable_visits_[i * lanes_ + l] = static_cast<double>(q - 1);
    }
  }
}

void TtpBatchKernel::evaluate(std::span<const double> scales,
                              std::span<const std::uint8_t> active,
                              std::span<std::uint8_t> verdicts) const {
  TR_EXPECTS(scales.size() == lanes_);
  TR_EXPECTS(active.size() == lanes_);
  TR_EXPECTS(verdicts.size() == lanes_);

  double* acc = allocated_.data();
  std::fill(allocated_.begin(), allocated_.end(), 0.0);
  // Per-lane allocation sums accumulate in station order — the scalar
  // accumulation order — with lanes advancing in lockstep.
  for (std::size_t i = 0; i < stations_; ++i) {
    const double* bp = base_payload_.data() + i * lanes_;
    const double* uv = usable_visits_.data() + i * lanes_;
    // VEC-HOT-BEGIN(ttp_alloc)
    for (std::size_t l = 0; l < lanes_; ++l) {
      const double payload_bits = bp[l] * scales[l];
      acc[l] += (payload_bits / bw_) / uv[l] + frame_overhead_;
    }
    // VEC-HOT-END(ttp_alloc)
  }
  // Non-negative terms make the per-station prefix sums monotone (in FP
  // too), so "some prefix exceeded the available time" — the scalar early
  // exit — holds exactly when the full sum does.
  for (std::size_t l = 0; l < lanes_; ++l) {
    if (!active[l]) continue;
    verdicts[l] = (!infeasible_[l] && acc[l] <= available_[l]) ? 1 : 0;
  }
}

void TtpBatchKernel::evaluate(std::span<const double> scales,
                              std::span<std::uint8_t> verdicts) const {
  const std::vector<std::uint8_t> all(lanes_, 1);
  evaluate(scales, all, verdicts);
}

}  // namespace tokenring::analysis
