#include "tokenring/analysis/ttp.hpp"

#include <cmath>
#include <limits>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"

namespace tokenring::analysis {

void TtpParams::validate() const {
  ring.validate();
  frame.validate();
  async_frame.validate();
}

Seconds ttp_lambda(const TtpParams& params, BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  return params.ring.theta(bw) + params.async_frame.frame_time(bw);
}

std::optional<Seconds> ttp_local_bandwidth(const msg::SyncStream& stream,
                                           const TtpParams& params,
                                           BitsPerSecond bw, Seconds ttrt) {
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(ttrt > 0.0);
  // q_i counts token visits guaranteed inside the stream's *deadline*
  // window; with implicit deadlines (D = P, the paper's model) this is
  // exactly floor(P_i / TTRT).
  const auto q =
      static_cast<std::int64_t>(std::floor(stream.deadline() / ttrt));
  if (q < 2) return std::nullopt;
  return stream.payload_time(bw) / static_cast<double>(q - 1) +
         params.frame.overhead_time(bw);
}

TtpVerdict ttp_schedulable_at(const msg::MessageSet& set,
                              const TtpParams& params, BitsPerSecond bw,
                              Seconds ttrt) {
  params.validate();
  set.validate();
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(ttrt > 0.0);

  TtpVerdict v;
  v.ttrt = ttrt;
  v.lambda = ttp_lambda(params, bw);
  v.available = ttrt - v.lambda;
  v.reports.reserve(set.size());

  bool all_deadline_feasible = true;
  Seconds allocated = 0.0;
  for (const auto& s : set.streams()) {
    TtpStreamReport r;
    r.stream = s;
    r.q = static_cast<std::int64_t>(std::floor(s.deadline() / ttrt));
    const auto h = ttp_local_bandwidth(s, params, bw, ttrt);
    r.deadline_feasible = h.has_value();
    if (h) {
      r.h = *h;
      r.augmented_length = s.payload_time(bw) +
                           static_cast<double>(r.q - 1) *
                               params.frame.overhead_time(bw);
      allocated += r.h;
    } else {
      all_deadline_feasible = false;
    }
    v.reports.push_back(r);
  }

  v.allocated = allocated;
  // Theorem 5.1: protocol constraint sum h_i <= TTRT - Lambda, plus every
  // stream must have q_i >= 2 for the deadline constraint to hold.
  v.schedulable = all_deadline_feasible && allocated <= v.available;
  return v;
}

TtpVerdict ttp_schedulable(const msg::MessageSet& set, const TtpParams& params,
                           BitsPerSecond bw) {
  TR_EXPECTS(!set.empty());
  const Seconds ttrt = select_ttrt(set, params.ring, bw);
  return ttp_schedulable_at(set, params, bw, ttrt);
}

bool ttp_feasible_at(const msg::MessageSet& set, const TtpParams& params,
                     BitsPerSecond bw, Seconds ttrt) {
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(ttrt > 0.0);
  const Seconds available = ttrt - ttp_lambda(params, bw);
  Seconds allocated = 0.0;
  for (const auto& s : set.streams()) {
    const auto h = ttp_local_bandwidth(s, params, bw, ttrt);
    if (!h) return false;
    allocated += *h;
    if (allocated > available) return false;
  }
  return true;
}

bool ttp_feasible(const msg::MessageSet& set, const TtpParams& params,
                  BitsPerSecond bw) {
  TR_EXPECTS(!set.empty());
  return ttp_feasible_at(set, params, bw, select_ttrt(set, params.ring, bw));
}

double ttp_critical_scale(const msg::MessageSet& set, const TtpParams& params,
                          BitsPerSecond bw, Seconds ttrt) {
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(ttrt > 0.0);
  const Seconds f_ovhd = params.frame.overhead_time(bw);
  Seconds per_scale_demand = 0.0;  // sum C_i / (q_i - 1) at scale 1
  for (const auto& s : set.streams()) {
    const auto q =
        static_cast<std::int64_t>(std::floor(s.deadline() / ttrt));
    if (q < 2) return 0.0;
    per_scale_demand += s.payload_time(bw) / static_cast<double>(q - 1);
  }
  const Seconds headroom = ttrt - ttp_lambda(params, bw) -
                           static_cast<double>(set.size()) * f_ovhd;
  if (headroom < 0.0) return 0.0;
  if (per_scale_demand <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return headroom / per_scale_demand;
}

double ttp_worst_case_utilization_bound(const TtpParams& params,
                                        BitsPerSecond bw, Seconds ttrt) {
  TR_EXPECTS(ttrt > 0.0);
  const Seconds lambda = ttp_lambda(params, bw);
  if (lambda >= ttrt) return 0.0;
  return (1.0 - lambda / ttrt) / 3.0;
}

}  // namespace tokenring::analysis
