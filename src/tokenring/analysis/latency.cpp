#include "tokenring/analysis/latency.hpp"

#include <cmath>
#include <limits>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"

namespace tokenring::analysis {

std::optional<TtpLatencyBound> ttp_response_bound(const msg::SyncStream& stream,
                                                  const TtpParams& params,
                                                  BitsPerSecond bw,
                                                  Seconds ttrt) {
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(ttrt > 0.0);
  const auto h = ttp_local_bandwidth(stream, params, bw, ttrt);
  if (!h) return std::nullopt;
  return ttp_response_bound_with_h(stream, *h, params, bw, ttrt);
}

std::optional<TtpLatencyBound> ttp_response_bound_with_h(
    const msg::SyncStream& stream, Seconds h, const TtpParams& params,
    BitsPerSecond bw, Seconds ttrt) {
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(ttrt > 0.0);
  TR_EXPECTS(h >= 0.0);
  const Seconds payload_per_visit = h - params.frame.overhead_time(bw);
  if (payload_per_visit <= 0.0 && stream.payload_bits > 0.0) {
    return std::nullopt;
  }

  TtpLatencyBound bound;
  bound.stream = stream;
  bound.h = h;
  bound.visits =
      stream.payload_bits <= 0.0
          ? 0
          : static_cast<std::int64_t>(
                std::ceil(stream.payload_time(bw) / payload_per_visit -
                          1e-12));
  bound.response_bound = static_cast<double>(bound.visits + 1) * ttrt;
  bound.slack = stream.deadline() - bound.response_bound;
  return bound;
}

std::vector<TtpLatencyBound> ttp_latency_report(const msg::MessageSet& set,
                                                const TtpParams& params,
                                                BitsPerSecond bw) {
  TR_EXPECTS(!set.empty());
  const Seconds ttrt = select_ttrt(set, params.ring, bw);
  std::vector<TtpLatencyBound> report;
  report.reserve(set.size());
  for (const auto& s : set.streams()) {
    if (auto b = ttp_response_bound(s, params, bw, ttrt)) {
      report.push_back(*b);
    } else {
      TtpLatencyBound failed;
      failed.stream = s;
      failed.response_bound = std::numeric_limits<double>::infinity();
      failed.slack = -std::numeric_limits<double>::infinity();
      report.push_back(failed);
    }
  }
  return report;
}

}  // namespace tokenring::analysis
