#include "tokenring/analysis/fixed_priority.hpp"

#include <algorithm>
#include <cmath>

#include "tokenring/common/checks.hpp"

namespace tokenring::analysis {

namespace {

// Workload of task i and all higher-priority tasks released in [0, t],
// plus blocking: W_i(t) = B + C'_i + sum_{j<i} C'_j * ceil(t / P_j).
Seconds workload(const std::vector<FpTask>& tasks, std::size_t i,
                 Seconds blocking, Seconds t) {
  Seconds w = blocking + tasks[i].cost;
  for (std::size_t j = 0; j < i; ++j) {
    w += tasks[j].cost * std::ceil(t / tasks[j].period);
  }
  return w;
}

}  // namespace

void validate_sorted_tasks(const std::vector<FpTask>& tasks) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TR_EXPECTS_MSG(tasks[i].period > 0.0, "task period must be positive");
    TR_EXPECTS_MSG(tasks[i].cost >= 0.0, "task cost cannot be negative");
    TR_EXPECTS_MSG(tasks[i].deadline >= 0.0 &&
                       tasks[i].deadline <= tasks[i].period,
                   "constrained deadlines must satisfy 0 < D <= P");
    if (i > 0) {
      TR_EXPECTS_MSG(tasks[i - 1].effective_deadline() <=
                         tasks[i].effective_deadline(),
                     "tasks must be sorted by non-decreasing deadline");
    }
  }
}

bool lsd_point_test(const std::vector<FpTask>& tasks, std::size_t i,
                    Seconds blocking) {
  TR_EXPECTS(i < tasks.size());
  const Seconds d = tasks[i].effective_deadline();
  // Scheduling points { l * P_k : k <= i, l*P_k <= D_i } union { D_i }.
  // (With D_i = P_i the union adds t = P_i via k = i, l = 1 and this is
  // exactly the paper's R_i.)
  for (std::size_t k = 0; k <= i; ++k) {
    const auto lmax =
        static_cast<std::int64_t>(std::floor(d / tasks[k].period));
    for (std::int64_t l = 1; l <= lmax; ++l) {
      const Seconds t = static_cast<double>(l) * tasks[k].period;
      if (workload(tasks, i, blocking, t) <= t) return true;
    }
  }
  return workload(tasks, i, blocking, d) <= d;
}

FpSetVerdict lsd_point_test_all(const std::vector<FpTask>& tasks,
                                Seconds blocking) {
  validate_sorted_tasks(tasks);
  TR_EXPECTS(blocking >= 0.0);
  FpSetVerdict v;
  v.schedulable = true;
  v.tasks.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const bool ok = lsd_point_test(tasks, i, blocking);
    v.tasks[i].schedulable = ok;
    if (!ok && v.schedulable) {
      v.schedulable = false;
      v.first_failure = i;
    }
  }
  return v;
}

std::optional<Seconds> response_time(const std::vector<FpTask>& tasks,
                                     std::size_t i, Seconds blocking) {
  TR_EXPECTS(i < tasks.size());
  const Seconds deadline = tasks[i].effective_deadline();
  Seconds r = blocking + tasks[i].cost;
  if (r > deadline) return std::nullopt;
  // The iteration is monotone non-decreasing and bounded by the deadline
  // when schedulable, so it terminates; cap iterations defensively against
  // floating-point stalls.
  for (int iter = 0; iter < 10'000; ++iter) {
    Seconds next = blocking + tasks[i].cost;
    for (std::size_t j = 0; j < i; ++j) {
      next += tasks[j].cost * std::ceil(r / tasks[j].period);
    }
    if (next > deadline) return std::nullopt;
    if (next <= r) return next;  // fixpoint (next == r up to fp noise)
    r = next;
  }
  // Did not converge within the cap: treat as unschedulable (conservative).
  return std::nullopt;
}

FpSetVerdict response_time_analysis(const std::vector<FpTask>& tasks,
                                    Seconds blocking) {
  validate_sorted_tasks(tasks);
  TR_EXPECTS(blocking >= 0.0);
  FpSetVerdict v;
  v.schedulable = true;
  v.tasks.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto r = response_time(tasks, i, blocking);
    v.tasks[i].schedulable = r.has_value();
    v.tasks[i].response_time = r;
    if (!r && v.schedulable) {
      v.schedulable = false;
      v.first_failure = i;
      // Keep filling per-task verdicts: callers report all failures.
    }
  }
  return v;
}

double liu_layland_bound(std::size_t n) {
  TR_EXPECTS(n >= 1);
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

double hyperbolic_product(const std::vector<FpTask>& tasks) {
  double prod = 1.0;
  for (const auto& t : tasks) {
    TR_EXPECTS(t.period > 0.0);
    prod *= (t.cost / t.period + 1.0);
  }
  return prod;
}

}  // namespace tokenring::analysis
