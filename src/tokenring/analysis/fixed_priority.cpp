#include "tokenring/analysis/fixed_priority.hpp"

#include <algorithm>
#include <cmath>

#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::analysis {

namespace {

// Activations of a period-P stream interfering in [0, t]: the mathematical
// ceil(t/P), which excludes an arrival landing exactly at t. The scheduling
// points are generated as fl(l * P), and that product divided back by P can
// round one ulp *above* l — a plain ceil would then count the arrival at t
// as interference and wrongly reject the point. Snap back whenever the
// previous multiple already reaches t.
double activations(Seconds t, Seconds period) {
  double c = std::ceil(t / period);
  if ((c - 1.0) * period >= t) c -= 1.0;
  return c;
}

// Workload of task i and all higher-priority tasks released in [0, t],
// plus blocking: W_i(t) = B + C'_i + sum_{j<i} C'_j * ceil(t / P_j).
Seconds workload(const std::vector<FpTask>& tasks, std::size_t i,
                 Seconds blocking, Seconds t) {
  Seconds w = blocking + tasks[i].cost;
  for (std::size_t j = 0; j < i; ++j) {
    w += tasks[j].cost * activations(t, tasks[j].period);
  }
  return w;
}

// Safety margin for the pre-filter screens: the mathematical conditions
// are evaluated in floating point, so a raw comparison could fire inside
// the rounding noise of the exact test it short-circuits. 1e-9 relative is
// ~1e5 times the accumulated rounding of a 100-task sum, and far below any
// slack a real workload exhibits.
constexpr double kFilterMargin = 1e-9;

// Necessary condition (quick-reject): feasibility of the lowest-priority
// task requires r = B + C_n + r * U_{<n} <= D_n <= P_n at some r, which
// rearranges to sum_j U_j + B/P_n <= 1. Utilization beyond that (with
// margin) proves the set infeasible without any fixpoint iteration. Valid
// for constrained deadlines too, since D_n <= P_n only strengthens it.
bool utilization_quick_reject(const std::vector<FpTask>& tasks,
                              Seconds blocking) {
  double u = 0.0;
  for (const auto& t : tasks) u += t.cost / t.period;
  return u + blocking / tasks.back().period > 1.0 + kFilterMargin;
}

// Incremental prefix state for the per-task hyperbolic quick-accept
// (Bini-Buttazzo, extended with the blocking term folded into the task
// under test): while every deadline seen so far is implicit (so deadline
// order == period order == RM order), task i is schedulable if
//   prod_{j<i} (1 + U_j) * (1 + (C_i + B)/P_i) <= 2.
struct HyperbolicScreen {
  double prefix_product = 1.0;  // prod (1 + U_j) over tasks before i
  bool all_implicit = true;

  // Must be called for tasks in order; returns true if task i is proven
  // schedulable. Call advance() afterwards whether or not it fired.
  bool accepts(const FpTask& task, Seconds blocking) const {
    return all_implicit &&
           task.effective_deadline() == task.period &&
           prefix_product * (1.0 + (task.cost + blocking) / task.period) <=
               2.0 * (1.0 - kFilterMargin);
  }

  void advance(const FpTask& task) {
    all_implicit = all_implicit && task.effective_deadline() == task.period;
    prefix_product *= 1.0 + task.cost / task.period;
  }
};

}  // namespace

void validate_sorted_tasks(const std::vector<FpTask>& tasks) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TR_EXPECTS_MSG(tasks[i].period > 0.0, "task period must be positive");
    TR_EXPECTS_MSG(tasks[i].cost >= 0.0, "task cost cannot be negative");
    TR_EXPECTS_MSG(tasks[i].deadline >= 0.0 &&
                       tasks[i].deadline <= tasks[i].period,
                   "constrained deadlines must satisfy 0 < D <= P");
    if (i > 0) {
      TR_EXPECTS_MSG(tasks[i - 1].effective_deadline() <=
                         tasks[i].effective_deadline(),
                     "tasks must be sorted by non-decreasing deadline");
    }
  }
}

bool lsd_point_test(const std::vector<FpTask>& tasks, std::size_t i,
                    Seconds blocking, std::size_t* workload_evals) {
  TR_EXPECTS(i < tasks.size());
  const Seconds d = tasks[i].effective_deadline();
  // Scheduling points { l * P_k : k <= i, l*P_k <= D_i } union { D_i }.
  // (With D_i = P_i the union adds t = P_i via k = i, l = 1 and this is
  // exactly the paper's R_i.) Harmonic periods generate the same t through
  // several (k, l) pairs; sorting and deduplicating evaluates each
  // distinct point once — the workload at a given t does not depend on how
  // the point was generated, so the existential verdict is unchanged.
  std::vector<Seconds> points;
  for (std::size_t k = 0; k <= i; ++k) {
    const auto lmax =
        static_cast<std::int64_t>(std::floor(d / tasks[k].period));
    for (std::int64_t l = 1; l <= lmax; ++l) {
      points.push_back(static_cast<double>(l) * tasks[k].period);
    }
  }
  points.push_back(d);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  std::size_t evals = 0;
  bool ok = false;
  for (const Seconds t : points) {
    ++evals;
    if (workload(tasks, i, blocking, t) <= t) {
      ok = true;
      break;
    }
  }
  if (workload_evals) *workload_evals = evals;
  return ok;
}

FpSetVerdict lsd_point_test_all(const std::vector<FpTask>& tasks,
                                Seconds blocking) {
  validate_sorted_tasks(tasks);
  TR_EXPECTS(blocking >= 0.0);
  FpSetVerdict v;
  v.schedulable = true;
  v.tasks.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const bool ok = lsd_point_test(tasks, i, blocking);
    v.tasks[i].schedulable = ok;
    if (!ok && v.schedulable) {
      v.schedulable = false;
      v.first_failure = i;
    }
  }
  return v;
}

std::optional<Seconds> response_time(const std::vector<FpTask>& tasks,
                                     std::size_t i, Seconds blocking,
                                     RtaStatus* status) {
  TR_EXPECTS(i < tasks.size());
  const Seconds deadline = tasks[i].effective_deadline();
  Seconds r = blocking + tasks[i].cost;
  if (r > deadline) {
    if (status) *status = RtaStatus::kDeadlineExceeded;
    return std::nullopt;
  }
  for (int iter = 0; iter < kMaxRtaIterations; ++iter) {
    Seconds next = blocking + tasks[i].cost;
    for (std::size_t j = 0; j < i; ++j) {
      next += tasks[j].cost * std::ceil(r / tasks[j].period);
    }
    if (next > deadline) {
      if (status) *status = RtaStatus::kDeadlineExceeded;
      return std::nullopt;
    }
    if (next <= r) {  // fixpoint (next == r up to fp noise)
      if (status) *status = RtaStatus::kConverged;
      return next;
    }
    r = next;
  }
  // Iteration cap: treat as unschedulable (conservative) but tell the
  // caller — and the run manifest — that this was a bailout, not a proof.
  static const obs::Counter cap_hits("analysis.rta_cap_hits");
  cap_hits.add();
  if (status) *status = RtaStatus::kIterationCapReached;
  return std::nullopt;
}

FpSetVerdict response_time_analysis(const std::vector<FpTask>& tasks,
                                    Seconds blocking) {
  validate_sorted_tasks(tasks);
  TR_EXPECTS(blocking >= 0.0);
  FpSetVerdict v;
  v.schedulable = true;
  v.tasks.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    RtaStatus status = RtaStatus::kConverged;
    auto r = response_time(tasks, i, blocking, &status);
    v.tasks[i].schedulable = r.has_value();
    v.tasks[i].response_time = r;
    if (status == RtaStatus::kIterationCapReached) ++v.iteration_cap_hits;
    if (!r && v.schedulable) {
      v.schedulable = false;
      v.first_failure = i;
      // Keep filling per-task verdicts: callers report all failures.
    }
  }
  return v;
}

bool rta_feasible_fast(const std::vector<FpTask>& tasks, Seconds blocking,
                       std::size_t* failed_hint) {
  if (tasks.empty()) return true;
  // Failed-task-first: inside a saturation bisection, the unschedulable
  // side usually fails at the same task as the previous probe; testing it
  // first turns most "false" evaluations into a single fixpoint run.
  const std::size_t hint =
      failed_hint ? *failed_hint : static_cast<std::size_t>(-1);
  if (hint < tasks.size()) {
    if (!response_time(tasks, hint, blocking)) return false;
  }
  if (utilization_quick_reject(tasks, blocking)) {
    // The proof names the lowest-priority task as the infeasible one.
    if (failed_hint) *failed_hint = tasks.size() - 1;
    return false;
  }
  HyperbolicScreen screen;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (i != hint && !screen.accepts(tasks[i], blocking)) {
      if (!response_time(tasks, i, blocking)) {
        if (failed_hint) *failed_hint = i;
        return false;
      }
    }
    screen.advance(tasks[i]);
  }
  return true;
}

namespace {

// One scheduling point for the incremental walk: `t` is the l-th multiple
// of stream `k`'s period (bitwise the same value the reference generates).
struct PointEvent {
  Seconds t;
  std::size_t k;
};

// Incremental Lehoczky-Sha-Ding test for one task: walk the merged,
// deduplicated point list in ascending order keeping W_i(t) as a running
// value — each event advances exactly one stream's ceil term by one, so
// the whole walk costs O(points) instead of O(i * points).
bool lsd_point_test_incremental(const std::vector<FpTask>& tasks,
                                std::size_t i, Seconds blocking,
                                std::vector<PointEvent>& events) {
  const Seconds d = tasks[i].effective_deadline();
  events.clear();
  for (std::size_t k = 0; k <= i; ++k) {
    const auto lmax =
        static_cast<std::int64_t>(std::floor(d / tasks[k].period));
    for (std::int64_t l = 1; l <= lmax; ++l) {
      events.push_back({static_cast<double>(l) * tasks[k].period, k});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const PointEvent& a, const PointEvent& b) { return a.t < b.t; });

  // At any t no larger than the first point, every ceil term is 1.
  Seconds w = blocking + tasks[i].cost;
  for (std::size_t j = 0; j < i; ++j) w += tasks[j].cost;

  std::size_t e = 0;
  while (e < events.size()) {
    const Seconds t = events[e].t;
    if (w <= t) return true;
    // Advance every stream whose multiple this point is (duplicates from
    // harmonic periods collapse into one evaluation, several bumps): past
    // t, stream k's ceil is one higher. Events of the task itself (k == i)
    // mark evaluation points but add no interference term.
    for (; e < events.size() && events[e].t == t; ++e) {
      if (events[e].k < i) w += tasks[events[e].k].cost;
    }
  }
  // Final point t = D_i. If D_i coincides with the last multiple the loop
  // already evaluated it with the exact ceil values; the re-check here
  // uses the advanced (larger) workload and so can only stay negative.
  return w <= d;
}

}  // namespace

bool lsd_feasible_fast(const std::vector<FpTask>& tasks, Seconds blocking) {
  if (tasks.empty()) return true;
  if (utilization_quick_reject(tasks, blocking)) return false;
  std::vector<PointEvent> events;
  HyperbolicScreen screen;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!screen.accepts(tasks[i], blocking) &&
        !lsd_point_test_incremental(tasks, i, blocking, events)) {
      return false;
    }
    screen.advance(tasks[i]);
  }
  return true;
}

double liu_layland_bound(std::size_t n) {
  TR_EXPECTS(n >= 1);
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

double hyperbolic_product(const std::vector<FpTask>& tasks) {
  double prod = 1.0;
  for (const auto& t : tasks) {
    TR_EXPECTS(t.period > 0.0);
    prod *= (t.cost / t.period + 1.0);
  }
  return prod;
}

}  // namespace tokenring::analysis
