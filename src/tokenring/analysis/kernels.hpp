// Allocation-free schedulability kernels in scale space.
//
// A saturation search (breakdown/saturation.hpp) probes one base message
// set at ~40-60 scale factors per trial. The plain predicates re-derive
// everything from the scaled set on every probe: copy the streams, sort
// them, re-select the TTRT, recompute blocking. All of that is invariant
// under uniform payload scaling — periods, deadlines, the priority
// permutation, Theta, frame geometry, TTRT bids, per-station visit counts
// and the blocking term depend only on quantities scaling leaves
// untouched. These kernels hoist the invariant work into construction
// (once per trial) and leave only the genuinely scale-dependent arithmetic
// in operator() — no allocation, no sort, no sqrt in the probe loop.
//
// Contract: kernel(a) returns the same verdict as the predicate it
// replaces evaluated on base.scaled(a), for every a. The scale-dependent
// arithmetic replays the reference implementations operation for
// operation (same multiplies, same divides, same accumulation order), and
// the screens in rta_feasible_fast are margin-guarded exact conditions, so
// bisection trajectories — and Monte Carlo breakdown utilizations — are
// bit-identical to the predicate path. The differential property test and
// the kernel-vs-predicate saturation tests pin this.

#pragma once

#include <cstddef>
#include <vector>

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/msg/message_set.hpp"

namespace tokenring::analysis {

/// Scale-space form of `pdp_feasible`: kernel(a) == pdp_feasible(
/// base.scaled(a), params, bw). Hoists the rate-monotonic sort and the
/// blocking bound; per probe it recomputes the augmented lengths (frame
/// counts depend on the scaled payload) and runs the screened RTA with a
/// failed-task-first hint carried across probes.
class PdpScaleKernel {
 public:
  PdpScaleKernel(const msg::MessageSet& base, const PdpParams& params,
                 BitsPerSecond bw);

  bool operator()(double scale) const;

 private:
  PdpParams params_;
  BitsPerSecond bw_ = 0.0;
  Seconds blocking_ = 0.0;
  std::vector<msg::SyncStream> sorted_;  // base streams, deadline order
  mutable std::vector<FpTask> tasks_;    // costs rewritten per probe
  mutable std::size_t failed_hint_ = static_cast<std::size_t>(-1);
};

/// Scale-space form of `ttp_feasible` / `ttp_feasible_at`: kernel(a) ==
/// ttp_feasible_at(base.scaled(a), params, bw, ttrt) with the TTRT either
/// pinned or chosen by the paper rule on the base set (the rule reads only
/// periods and deadlines, so it is scale-invariant). Hoists the TTRT
/// selection, Lambda, the per-frame overhead and every per-station visit
/// count; a probe is one multiply-divide-accumulate pass with the same
/// early exits as the reference.
class TtpScaleKernel {
 public:
  /// Paper TTRT selection rule (matches `ttp_feasible`).
  TtpScaleKernel(const msg::MessageSet& base, const TtpParams& params,
                 BitsPerSecond bw);
  /// Pinned TTRT (matches `ttp_feasible_at`).
  TtpScaleKernel(const msg::MessageSet& base, const TtpParams& params,
                 BitsPerSecond bw, Seconds ttrt);

  bool operator()(double scale) const;

 private:
  struct Station {
    double base_payload_bits = 0.0;
    double usable_visits = 0.0;  // q_i - 1 as a double, ready to divide by
  };

  BitsPerSecond bw_ = 0.0;
  Seconds available_ = 0.0;  // TTRT - Lambda
  Seconds frame_overhead_ = 0.0;
  bool any_deadline_infeasible_ = false;  // some q_i < 2: false at any scale
  std::vector<Station> stations_;  // base stream order
};

}  // namespace tokenring::analysis
