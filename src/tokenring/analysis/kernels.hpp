// Allocation-free schedulability kernels in scale space.
//
// A saturation search (breakdown/saturation.hpp) probes one base message
// set at ~40-60 scale factors per trial. The plain predicates re-derive
// everything from the scaled set on every probe: copy the streams, sort
// them, re-select the TTRT, recompute blocking. All of that is invariant
// under uniform payload scaling — periods, deadlines, the priority
// permutation, Theta, frame geometry, TTRT bids, per-station visit counts
// and the blocking term depend only on quantities scaling leaves
// untouched. These kernels hoist the invariant work into construction
// (once per trial) and leave only the genuinely scale-dependent arithmetic
// in operator() — no allocation, no sort, no sqrt in the probe loop.
//
// Contract: kernel(a) returns the same verdict as the predicate it
// replaces evaluated on base.scaled(a), for every a. The scale-dependent
// arithmetic replays the reference implementations operation for
// operation (same multiplies, same divides, same accumulation order), and
// the screens in rta_feasible_fast are margin-guarded exact conditions, so
// bisection trajectories — and Monte Carlo breakdown utilizations — are
// bit-identical to the predicate path. The differential property test and
// the kernel-vs-predicate saturation tests pin this.

// The batch kernels below are the structure-of-arrays siblings: one kernel
// evaluates B independent trials ("lanes") per pass. Because each lane must
// replay the scalar accumulation order bit for bit, the vectorization
// dimension is *across* lanes: per-station values are stored station-major
// x lane-minor (index = station * lanes + lane), so the inner loop walks a
// contiguous run of independent lanes the compiler can autovectorize.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/msg/message_set.hpp"

namespace tokenring::analysis {

/// Scale-space form of `pdp_feasible`: kernel(a) == pdp_feasible(
/// base.scaled(a), params, bw). Hoists the rate-monotonic sort and the
/// blocking bound; per probe it recomputes the augmented lengths (frame
/// counts depend on the scaled payload) and runs the screened RTA with a
/// failed-task-first hint carried across probes.
class PdpScaleKernel {
 public:
  PdpScaleKernel(const msg::MessageSet& base, const PdpParams& params,
                 BitsPerSecond bw);

  bool operator()(double scale) const;

 private:
  PdpParams params_;
  BitsPerSecond bw_ = 0.0;
  Seconds blocking_ = 0.0;
  std::vector<msg::SyncStream> sorted_;  // base streams, deadline order
  mutable std::vector<FpTask> tasks_;    // costs rewritten per probe
  mutable std::size_t failed_hint_ = static_cast<std::size_t>(-1);
};

/// Scale-space form of `ttp_feasible` / `ttp_feasible_at`: kernel(a) ==
/// ttp_feasible_at(base.scaled(a), params, bw, ttrt) with the TTRT either
/// pinned or chosen by the paper rule on the base set (the rule reads only
/// periods and deadlines, so it is scale-invariant). Hoists the TTRT
/// selection, Lambda, the per-frame overhead and every per-station visit
/// count; a probe is one multiply-divide-accumulate pass with the same
/// early exits as the reference.
class TtpScaleKernel {
 public:
  /// Paper TTRT selection rule (matches `ttp_feasible`).
  TtpScaleKernel(const msg::MessageSet& base, const TtpParams& params,
                 BitsPerSecond bw);
  /// Pinned TTRT (matches `ttp_feasible_at`).
  TtpScaleKernel(const msg::MessageSet& base, const TtpParams& params,
                 BitsPerSecond bw, Seconds ttrt);

  bool operator()(double scale) const;

 private:
  struct Station {
    double base_payload_bits = 0.0;
    double usable_visits = 0.0;  // q_i - 1 as a double, ready to divide by
  };

  BitsPerSecond bw_ = 0.0;
  Seconds available_ = 0.0;  // TTRT - Lambda
  Seconds frame_overhead_ = 0.0;
  bool any_deadline_infeasible_ = false;  // some q_i < 2: false at any scale
  std::vector<Station> stations_;  // base stream order
};

/// Batched form of `PdpScaleKernel`: lane l answers, for the base set
/// bases[l] it was built from, the same verdict `PdpScaleKernel(bases[l],
/// params, bw)(scales[l])` would — bit-identical, probe for probe. All
/// bases must be non-empty and share one station count (Monte Carlo
/// batches do: the generator's stream count is fixed per experiment).
///
/// The augmented-length stage (the multiply-divide-floor-ceil arithmetic
/// of `pdp_augmented_length`) runs full-width over a station-major x
/// lane-minor SoA of base payloads in branch-light loops; the screened RTA
/// stage then runs per *active* lane with a per-lane failed-task hint (the
/// hint steers which task is tested first and never changes the verdict).
/// Frame counts are assumed to stay below 2^53, matching the int64 domain
/// of the scalar path.
class PdpBatchKernel {
 public:
  PdpBatchKernel(std::span<const msg::MessageSet> bases,
                 const PdpParams& params, BitsPerSecond bw);

  std::size_t lanes() const { return lanes_; }

  /// verdicts[l] = lane l's verdict at scales[l], for every lane with
  /// active[l] != 0 (other verdict entries are left untouched). The cost
  /// stage always computes full width — masking keeps the hot loops
  /// branch-free; converged lanes simply carry a stale scale.
  void evaluate(std::span<const double> scales,
                std::span<const std::uint8_t> active,
                std::span<std::uint8_t> verdicts) const;

  /// All-lanes convenience overload.
  void evaluate(std::span<const double> scales,
                std::span<std::uint8_t> verdicts) const;

 private:
  std::size_t lanes_ = 0;
  std::size_t stations_ = 0;
  BitsPerSecond bw_ = 0.0;
  Seconds blocking_ = 0.0;
  Seconds theta_ = 0.0;
  Seconds frame_time_ = 0.0;
  Seconds info_time_ = 0.0;
  Seconds overhead_time_ = 0.0;
  double info_bits_ = 0.0;
  bool standard_variant_ = false;   // token passed per frame, not per message
  bool frame_dominated_ = false;    // frame_time <= theta for this geometry
  std::vector<double> base_payload_;  // station-major x lane-minor, RM order
  mutable std::vector<double> cost_;  // same layout; scratch per evaluate
  mutable std::vector<std::vector<FpTask>> tasks_;      // per lane, RM order
  mutable std::vector<std::size_t> failed_hint_;        // per lane
};

/// Batched form of `TtpScaleKernel`: lane l replays
/// `TtpScaleKernel(bases[l], params, bw[, ttrt])(scales[l])` bit for bit.
/// The TTRT (and hence the per-lane available time TTRT - Lambda and the
/// per-station usable visit counts q_i - 1) is selected per lane on the
/// base set; lanes with some q_i < 2 are deadline-infeasible at every
/// scale and their verdict is forced false, exactly like the scalar
/// kernel. The per-station allocation sum accumulates in station order per
/// lane; since every term is non-negative the scalar early exit decides
/// exactly when the full sum exceeds the available time, so the batched
/// full-sum verdict is identical.
class TtpBatchKernel {
 public:
  /// Paper TTRT selection rule, applied per lane (matches `ttp_feasible`).
  TtpBatchKernel(std::span<const msg::MessageSet> bases,
                 const TtpParams& params, BitsPerSecond bw);
  /// Pinned TTRT shared by all lanes (matches `ttp_feasible_at`).
  TtpBatchKernel(std::span<const msg::MessageSet> bases,
                 const TtpParams& params, BitsPerSecond bw, Seconds ttrt);

  std::size_t lanes() const { return lanes_; }

  void evaluate(std::span<const double> scales,
                std::span<const std::uint8_t> active,
                std::span<std::uint8_t> verdicts) const;
  void evaluate(std::span<const double> scales,
                std::span<std::uint8_t> verdicts) const;

 private:
  TtpBatchKernel(std::span<const msg::MessageSet> bases,
                 const TtpParams& params, BitsPerSecond bw,
                 const Seconds* pinned_ttrt);

  std::size_t lanes_ = 0;
  std::size_t stations_ = 0;
  BitsPerSecond bw_ = 0.0;
  Seconds frame_overhead_ = 0.0;
  std::vector<double> available_;         // per lane: TTRT_l - Lambda
  std::vector<std::uint8_t> infeasible_;  // per lane: some q_i < 2
  std::vector<double> base_payload_;      // station-major x lane-minor
  std::vector<double> usable_visits_;     // same layout; 1.0 dummy rows for
                                          // infeasible lanes keep the full-
                                          // width divide finite
  mutable std::vector<double> allocated_;  // per-lane accumulators; scratch
};

}  // namespace tokenring::analysis
