#include "tokenring/analysis/pdp.hpp"

#include <algorithm>
#include <cmath>

#include "tokenring/common/checks.hpp"

namespace tokenring::analysis {

const char* to_string(PdpVariant v) {
  switch (v) {
    case PdpVariant::kStandard8025:
      return "IEEE 802.5";
    case PdpVariant::kModified8025:
      return "Modified IEEE 802.5";
  }
  return "?";
}

void PdpParams::validate() const {
  ring.validate();
  frame.validate();
}

Seconds pdp_augmented_length(const msg::SyncStream& stream,
                             const PdpParams& params, BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  if (stream.payload_bits <= 0.0) return 0.0;

  const Seconds theta = params.ring.theta(bw);
  const Seconds frame_time = params.frame.frame_time(bw);
  const auto full = params.frame.full_frames(stream.payload_bits);    // L_i
  const auto total = params.frame.frames_for_payload(stream.payload_bits);  // K_i
  const auto k = static_cast<double>(total);
  const auto l = static_cast<double>(full);

  // Token-circulation overhead: Theta/2 on average per token pass; paid per
  // frame (standard) or per message (modified).
  const Seconds token_overhead =
      params.variant == PdpVariant::kStandard8025 ? k * theta / 2.0
                                                  : theta / 2.0;

  if (frame_time <= theta) {
    // Every frame's slot is dominated by waiting for its header to return.
    return k * theta + token_overhead;
  }

  // F > Theta: L_i full frames cost F each; a short last frame (iff
  // K_i = L_i + 1) costs max(C_i - L_i*F_info + F_ovhd, Theta).
  Seconds result = l * frame_time + token_overhead;
  if (total > full) {
    const Seconds short_frame_time =
        stream.payload_time(bw) - l * params.frame.info_time(bw) +
        params.frame.overhead_time(bw);
    result += std::max(short_frame_time, theta);
  }
  return result;
}

Seconds pdp_blocking(const PdpParams& params, BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  return 2.0 * std::max(params.frame.frame_time(bw), params.ring.theta(bw));
}

std::vector<FpTask> pdp_tasks(const msg::MessageSet& set,
                              const PdpParams& params, BitsPerSecond bw) {
  const msg::MessageSet sorted = set.rm_sorted();
  std::vector<FpTask> tasks;
  tasks.reserve(sorted.size());
  for (const auto& s : sorted.streams()) {
    tasks.push_back(FpTask{s.period, pdp_augmented_length(s, params, bw),
                           s.relative_deadline});
  }
  return tasks;
}

namespace {

PdpVerdict build_verdict(const msg::MessageSet& set, const PdpParams& params,
                         BitsPerSecond bw, bool use_lsd) {
  params.validate();
  set.validate();
  TR_EXPECTS(bw > 0.0);

  const msg::MessageSet sorted = set.rm_sorted();
  const std::vector<FpTask> tasks = pdp_tasks(set, params, bw);
  const Seconds blocking = pdp_blocking(params, bw);

  const FpSetVerdict fp = use_lsd ? lsd_point_test_all(tasks, blocking)
                                  : response_time_analysis(tasks, blocking);

  PdpVerdict v;
  v.schedulable = fp.schedulable;
  v.blocking = blocking;
  v.reports.resize(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto& r = v.reports[i];
    r.stream = sorted[i];
    r.augmented_length = tasks[i].cost;
    r.frames = params.frame.frames_for_payload(sorted[i].payload_bits);
    r.schedulable = fp.tasks[i].schedulable;
    r.response_time = fp.tasks[i].response_time;
  }
  return v;
}

}  // namespace

PdpVerdict pdp_schedulable(const msg::MessageSet& set, const PdpParams& params,
                           BitsPerSecond bw) {
  return build_verdict(set, params, bw, /*use_lsd=*/false);
}

PdpVerdict pdp_schedulable_lsd(const msg::MessageSet& set,
                               const PdpParams& params, BitsPerSecond bw) {
  return build_verdict(set, params, bw, /*use_lsd=*/true);
}

bool pdp_feasible(const msg::MessageSet& set, const PdpParams& params,
                  BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  const std::vector<FpTask> tasks = pdp_tasks(set, params, bw);
  const Seconds blocking = pdp_blocking(params, bw);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!response_time(tasks, i, blocking)) return false;
  }
  return true;
}

}  // namespace tokenring::analysis
