// TTRT (Target Token Rotation Time) selection — paper Section 5.2.
//
// Johnson's bound says the time between two successive token visits to a
// station is at most 2*TTRT, so guaranteeing at least one useful visit per
// period needs TTRT <= P_min / 2. The paper goes further: for equal periods
// P, the breakdown utilization is maximized near sqrt(Theta * P); for
// unequal periods, each station bids sqrt(Theta * P_i) and the minimum bid
// wins (i.e. TTRT = sqrt(Theta * P_min)), clamped to P_min / 2.
//
// (The published text's radicand glyph is lost to OCR; sqrt(Theta*P) is the
// dimensionally-consistent reading matching the companion tech report. The
// bench `bench_ttrt_sensitivity` verifies the maximizer empirically.)

#pragma once

#include "tokenring/common/units.hpp"
#include "tokenring/msg/message_set.hpp"
#include "tokenring/net/ring.hpp"

namespace tokenring::analysis {

/// A single station's TTRT bid: min(sqrt(Theta * P_i), P_i / 2).
Seconds ttrt_bid(Seconds period, Seconds theta);

/// Paper's TTRT selection: minimum bid across stations = TTRT for the ring.
/// Requires a non-empty set and bw > 0.
Seconds select_ttrt(const msg::MessageSet& set, const net::RingParams& ring,
                    BitsPerSecond bw);

/// Johnson's upper bound on a valid TTRT: half the minimum period.
Seconds max_valid_ttrt(const msg::MessageSet& set);

}  // namespace tokenring::analysis
