// Priority-driven protocol (IEEE 802.5) schedulability analysis — paper
// Section 4.
//
// Rate-monotonic scheduling is approximated on the ring by splitting
// messages into frames and arbitrating per frame through the token's
// priority/reservation fields. The analysis (Theorem 4.1) is the exact
// fixed-priority test applied to *augmented* message lengths C'_i that fold
// in all protocol overheads, plus a blocking term B = 2*max(F, Theta)
// (Lemma 4.1) for the non-preemptable frame in flight and the distributed
// arbitration.
//
// Effective frame time:
//  * F <= Theta: the sender must wait for the transmitted frame's header to
//    come back around the ring before arbitration can conclude, so each
//    frame occupies the medium for Theta.
//  * F >  Theta: a full frame occupies F; a short last frame occupies
//    max(C_i - L_i*F_info + F_ovhd, Theta).
//
// Token-circulation overhead: Theta/2 on average per token pass. The
// standard 802.5 implementation passes the token after *every frame*
// (token-holding timer = one frame), costing K_i * Theta/2 per message; the
// modified implementation keeps transmitting while still the highest-
// priority active station, costing Theta/2 once per message.

#pragma once

#include <vector>

#include "tokenring/analysis/fixed_priority.hpp"
#include "tokenring/msg/message_set.hpp"
#include "tokenring/net/frame.hpp"
#include "tokenring/net/ring.hpp"

namespace tokenring::analysis {

/// Which 802.5 implementation (paper Section 4.2, "Token Holding Timer").
enum class PdpVariant {
  /// Standard IEEE 802.5: free token issued after every frame.
  kStandard8025,
  /// Modified 802.5: back-to-back frames while still the highest-priority
  /// active station; token passed once per message.
  kModified8025,
};

/// Human-readable variant name ("IEEE 802.5" / "Modified IEEE 802.5").
const char* to_string(PdpVariant v);

/// Static configuration of a PDP analysis.
struct PdpParams {
  net::RingParams ring;
  net::FrameFormat frame;
  PdpVariant variant = PdpVariant::kStandard8025;

  void validate() const;
};

/// Per-stream detail of a PDP schedulability verdict.
struct PdpStreamReport {
  /// Stream as indexed in rate-monotonic order.
  msg::SyncStream stream;
  /// Augmented length C'_i [s].
  Seconds augmented_length = 0.0;
  /// Total frames K_i.
  std::int64_t frames = 0;
  bool schedulable = false;
  /// Worst-case response time when schedulable (from RTA).
  std::optional<Seconds> response_time;
};

/// Whole-set PDP verdict.
struct PdpVerdict {
  bool schedulable = false;
  /// Blocking term B = 2*max(F, Theta) [s].
  Seconds blocking = 0.0;
  /// Reports in rate-monotonic order.
  std::vector<PdpStreamReport> reports;
};

/// Augmented message length C'_i for one stream (see file comment).
/// Requires params validated and bw > 0.
Seconds pdp_augmented_length(const msg::SyncStream& stream,
                             const PdpParams& params, BitsPerSecond bw);

/// Blocking bound B = 2*max(F, Theta) (paper Lemma 4.1).
Seconds pdp_blocking(const PdpParams& params, BitsPerSecond bw);

/// Exact schedulability test (Theorem 4.1) via response-time analysis —
/// the fast path used in Monte Carlo loops.
PdpVerdict pdp_schedulable(const msg::MessageSet& set, const PdpParams& params,
                           BitsPerSecond bw);

/// Same verdict computed with the literal scheduling-point formulation of
/// Theorem 4.1. Slower; kept as the paper-faithful reference (tests assert
/// agreement with `pdp_schedulable`).
PdpVerdict pdp_schedulable_lsd(const msg::MessageSet& set,
                               const PdpParams& params, BitsPerSecond bw);

/// Lean boolean verdict with early exit on the first failing stream — the
/// fast path for Monte Carlo breakdown searches (identical verdict to
/// `pdp_schedulable`).
bool pdp_feasible(const msg::MessageSet& set, const PdpParams& params,
                  BitsPerSecond bw);

/// Convert a message set into rate-monotonic-ordered FpTasks with augmented
/// costs (exposed for reuse by benches/tests).
std::vector<FpTask> pdp_tasks(const msg::MessageSet& set,
                              const PdpParams& params, BitsPerSecond bw);

}  // namespace tokenring::analysis
