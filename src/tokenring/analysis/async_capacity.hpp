// Asynchronous (non-real-time) capacity analysis.
//
// The paper treats asynchronous traffic as best-effort; these helpers
// quantify how much of the link a guaranteed synchronous load leaves for
// it — the figure a designer needs to know whether bulk traffic will
// starve.
//
// TTP: in steady state each rotation lasts at most TTRT; of that, Theta is
// the walk, sum(h_i) is reserved synchronous time, and only the remainder
// can be spent on asynchronous frames (funded by token earliness). The
// asynchronous share is therefore (TTRT - Theta - sum h_i) / TTRT.
//
// PDP: asynchronous frames are the lowest priority; in the long run they
// get whatever the augmented synchronous demand does not consume:
// 1 - sum(C'_i / P_i).

#pragma once

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/msg/message_set.hpp"

namespace tokenring::analysis {

/// Long-run fraction of time available to asynchronous traffic on a TTP
/// ring carrying `set` with the local allocation at the given TTRT.
/// Clamped to [0, 1]; 0 means synchronous traffic plus overheads saturate
/// the ring.
double ttp_async_capacity(const msg::MessageSet& set, const TtpParams& params,
                          BitsPerSecond bw, Seconds ttrt);

/// Same with the paper's TTRT selection rule.
double ttp_async_capacity(const msg::MessageSet& set, const TtpParams& params,
                          BitsPerSecond bw);

/// Worst-case wait until an asynchronous-ready TTP station may transmit,
/// assuming the ring is otherwise in steady state: Johnson's bound, 2*TTRT.
Seconds ttp_async_access_bound(Seconds ttrt);

/// Long-run fraction of time available to asynchronous traffic on a PDP
/// ring carrying `set` (augmented demand includes all protocol overheads).
/// Clamped to [0, 1].
double pdp_async_capacity(const msg::MessageSet& set, const PdpParams& params,
                          BitsPerSecond bw);

}  // namespace tokenring::analysis
