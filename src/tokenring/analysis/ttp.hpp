// Timed-token protocol (FDDI) schedulability analysis — paper Section 5.
//
// The local synchronous-bandwidth allocation scheme (Agrawal-Chen-Zhao)
// assigns station i
//
//     q_i  = floor(P_i / TTRT)              (token visits usable: q_i - 1)
//     C'_i = C_i + (q_i - 1) * F_ovhd       (one frame per usable visit)
//     h_i  = C_i / (q_i - 1) + F_ovhd
//
// and the message set is schedulable (Theorem 5.1) iff
//
//     sum_i C_i / (q_i - 1)  +  n * F_ovhd   <=   TTRT - Lambda
//
// where Lambda = Theta + F_async accounts for the token walk plus one
// asynchronous-overrun frame per rotation. The deadline constraint is
// implied: the local allocation gives each station exactly its minimum need
// per usable visit, and Johnson's bound guarantees q_i - 1 usable visits in
// any window of length P_i when the protocol constraint holds.
// q_i >= 2 (i.e. TTRT <= P_i / 2) is required for any guarantee at all.

#pragma once

#include <optional>
#include <vector>

#include "tokenring/common/units.hpp"
#include "tokenring/msg/message_set.hpp"
#include "tokenring/net/frame.hpp"
#include "tokenring/net/ring.hpp"

namespace tokenring::analysis {

/// Static configuration of a TTP analysis.
struct TtpParams {
  net::RingParams ring;
  /// Frame overhead geometry for synchronous traffic (only overhead_bits is
  /// used: synchronous frame *length* is the allocated h_i).
  net::FrameFormat frame;
  /// Asynchronous frame geometry; its full transmission time is the
  /// asynchronous-overrun term in Lambda. Defaults to the paper's 64-byte
  /// payload + 112-bit overhead.
  net::FrameFormat async_frame;

  void validate() const;
};

/// Per-station allocation and feasibility detail.
struct TtpStreamReport {
  msg::SyncStream stream;
  /// q_i = floor(P_i / TTRT).
  std::int64_t q = 0;
  /// Allocated synchronous bandwidth h_i [s]; 0 if q_i < 2.
  Seconds h = 0.0;
  /// Augmented length C'_i = C_i + (q_i - 1) * F_ovhd [s].
  Seconds augmented_length = 0.0;
  /// False iff q_i < 2 (period too short for the chosen TTRT).
  bool deadline_feasible = false;
};

/// Whole-set TTP verdict.
struct TtpVerdict {
  bool schedulable = false;
  Seconds ttrt = 0.0;
  /// Protocol overhead Lambda = Theta + F_async [s].
  Seconds lambda = 0.0;
  /// Left-hand side of Theorem 5.1 (total allocated bandwidth sum h_i).
  Seconds allocated = 0.0;
  /// Right-hand side TTRT - Lambda [s].
  Seconds available = 0.0;
  std::vector<TtpStreamReport> reports;
};

/// Lambda = Theta + one asynchronous-overrun frame time.
Seconds ttp_lambda(const TtpParams& params, BitsPerSecond bw);

/// Local-scheme synchronous bandwidth h_i for one stream at the given TTRT.
/// Returns nullopt when q_i < 2 (no guarantee possible).
std::optional<Seconds> ttp_local_bandwidth(const msg::SyncStream& stream,
                                           const TtpParams& params,
                                           BitsPerSecond bw, Seconds ttrt);

/// Theorem 5.1 schedulability test at an explicit TTRT.
TtpVerdict ttp_schedulable_at(const msg::MessageSet& set,
                              const TtpParams& params, BitsPerSecond bw,
                              Seconds ttrt);

/// Theorem 5.1 test with the paper's TTRT selection rule
/// (TTRT = min_i sqrt(Theta * P_i), clamped to P_min / 2).
TtpVerdict ttp_schedulable(const msg::MessageSet& set, const TtpParams& params,
                           BitsPerSecond bw);

/// Lean boolean form of `ttp_schedulable_at` (fast path for Monte Carlo).
bool ttp_feasible_at(const msg::MessageSet& set, const TtpParams& params,
                     BitsPerSecond bw, Seconds ttrt);

/// Lean boolean form of `ttp_schedulable` (selects TTRT by the paper rule).
bool ttp_feasible(const msg::MessageSet& set, const TtpParams& params,
                  BitsPerSecond bw);

/// Closed-form critical payload scale for Theorem 5.1. Because the
/// criterion is linear in the payloads (q_i depends only on periods and
/// TTRT, which payload scaling leaves untouched), the saturation boundary
/// is exactly
///     alpha* = (TTRT - Lambda - n*F_ovhd) / sum_i(C_i / (q_i - 1))
/// Returns 0 when the overhead terms alone are infeasible (or any q_i < 2),
/// and +infinity for an all-zero-payload set that stays feasible at any
/// scale. Cross-checked against the generic bisection in tests; the Monte
/// Carlo drivers use the bisection path so one exercises the other.
double ttp_critical_scale(const msg::MessageSet& set, const TtpParams& params,
                          BitsPerSecond bw, Seconds ttrt);

/// Worst-case achievable utilization of the local scheme,
/// (1 - Lambda/TTRT) / 3 — approaches the paper's "up to 33%" guarantee as
/// overheads vanish. Provided for the Section 2/5 claim benches.
double ttp_worst_case_utilization_bound(const TtpParams& params,
                                        BitsPerSecond bw, Seconds ttrt);

}  // namespace tokenring::analysis
