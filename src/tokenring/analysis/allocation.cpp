#include "tokenring/analysis/allocation.hpp"

#include <cmath>

#include "tokenring/common/checks.hpp"

namespace tokenring::analysis {

const char* to_string(AllocationScheme scheme) {
  switch (scheme) {
    case AllocationScheme::kLocal:
      return "local";
    case AllocationScheme::kFullLength:
      return "full-length";
    case AllocationScheme::kProportional:
      return "proportional";
    case AllocationScheme::kNormalizedProportional:
      return "norm-proportional";
    case AllocationScheme::kEqualPartition:
      return "equal-partition";
  }
  return "?";
}

std::vector<AllocationScheme> all_allocation_schemes() {
  return {AllocationScheme::kLocal, AllocationScheme::kFullLength,
          AllocationScheme::kProportional,
          AllocationScheme::kNormalizedProportional,
          AllocationScheme::kEqualPartition};
}

AllocationResult allocate(const msg::MessageSet& set, const TtpParams& params,
                          BitsPerSecond bw, Seconds ttrt,
                          AllocationScheme scheme) {
  params.validate();
  set.validate();
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(ttrt > 0.0);

  AllocationResult res;
  res.scheme = scheme;
  res.ttrt = ttrt;
  res.lambda = ttp_lambda(params, bw);
  res.h.resize(set.size(), 0.0);

  const Seconds available = ttrt - res.lambda;
  const Seconds f_ovhd = params.frame.overhead_time(bw);
  const double total_util = set.utilization(bw);
  const auto n = static_cast<double>(set.size());

  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto& s = set[i];
    const auto q =
        static_cast<std::int64_t>(std::floor(s.deadline() / ttrt));
    switch (scheme) {
      case AllocationScheme::kLocal:
        res.h[i] = q >= 2 ? s.payload_time(bw) / static_cast<double>(q - 1) +
                                f_ovhd
                          : 0.0;
        break;
      case AllocationScheme::kFullLength:
        res.h[i] = s.payload_time(bw) + f_ovhd;
        break;
      case AllocationScheme::kProportional:
        res.h[i] = s.utilization(bw) * available;
        break;
      case AllocationScheme::kNormalizedProportional:
        res.h[i] = total_util > 0.0
                       ? s.utilization(bw) / total_util * available
                       : 0.0;
        break;
      case AllocationScheme::kEqualPartition:
        res.h[i] = available > 0.0 ? available / n : 0.0;
        break;
    }
  }

  // Evaluate the two constraints under the shared availability model. The
  // local scheme satisfies its deadline constraint with exact equality by
  // construction, so both comparisons carry a small relative tolerance to
  // keep floating-point noise from flipping boundary verdicts.
  constexpr double kRelTol = 1e-9;
  res.deadline_ok = true;
  Seconds sum_h = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    const auto& s = set[i];
    const auto q =
        static_cast<std::int64_t>(std::floor(s.deadline() / ttrt));
    sum_h += res.h[i];
    if (q < 2) {
      res.deadline_ok = false;
      continue;
    }
    const Seconds usable =
        static_cast<double>(q - 1) * std::max(0.0, res.h[i] - f_ovhd);
    const Seconds need = s.payload_time(bw);
    if (usable < need * (1.0 - kRelTol)) res.deadline_ok = false;
  }
  res.protocol_ok = sum_h <= available + kRelTol * ttrt;
  return res;
}

}  // namespace tokenring::analysis
