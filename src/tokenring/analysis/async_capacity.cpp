#include "tokenring/analysis/async_capacity.hpp"

#include <algorithm>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"

namespace tokenring::analysis {

double ttp_async_capacity(const msg::MessageSet& set, const TtpParams& params,
                          BitsPerSecond bw, Seconds ttrt) {
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(ttrt > 0.0);
  Seconds allocated = 0.0;
  for (const auto& s : set.streams()) {
    allocated += ttp_local_bandwidth(s, params, bw, ttrt).value_or(0.0);
  }
  const Seconds theta = params.ring.theta(bw);
  return std::clamp((ttrt - theta - allocated) / ttrt, 0.0, 1.0);
}

double ttp_async_capacity(const msg::MessageSet& set, const TtpParams& params,
                          BitsPerSecond bw) {
  TR_EXPECTS(!set.empty());
  return ttp_async_capacity(set, params, bw,
                            select_ttrt(set, params.ring, bw));
}

Seconds ttp_async_access_bound(Seconds ttrt) {
  TR_EXPECTS(ttrt > 0.0);
  return 2.0 * ttrt;
}

double pdp_async_capacity(const msg::MessageSet& set, const PdpParams& params,
                          BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  double augmented_utilization = 0.0;
  for (const auto& s : set.streams()) {
    augmented_utilization += pdp_augmented_length(s, params, bw) / s.period;
  }
  return std::clamp(1.0 - augmented_utilization, 0.0, 1.0);
}

}  // namespace tokenring::analysis
