// Generic fixed-priority (rate-monotonic) schedulability machinery.
//
// The PDP analysis (paper Theorem 4.1) is the Lehoczky-Sha-Ding exact
// characterization [RTSS'89] applied to augmented message lengths C'_i with
// a blocking term B. This file implements that test in two equivalent
// forms:
//
//  * `lsd_point_test`         — the scheduling-point formulation exactly as
//                               printed in the paper (minimize workload
//                               ratio over R_i = {l*P_k}), and
//  * `response_time_analysis` — the fixpoint-iteration formulation
//                               (Joseph/Pandya/Audsley), which gives the
//                               same verdict but runs orders of magnitude
//                               faster inside Monte Carlo loops.
//
// A randomized property test asserts the two agree; the Monte Carlo driver
// uses the fast one.
//
// Inputs are plain vectors sorted by increasing period (rate-monotonic
// priority order, index 0 = highest priority). Deadlines equal periods.

#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "tokenring/common/units.hpp"

namespace tokenring::analysis {

/// One task/stream as seen by the generic tests.
struct FpTask {
  /// Period [s].
  Seconds period = 0.0;
  /// Worst-case transmission demand per period (the augmented C'_i) [s].
  Seconds cost = 0.0;
  /// Relative deadline [s]; 0 means deadline = period (the paper's model).
  /// Constrained deadlines require tasks sorted deadline-monotonically.
  Seconds deadline = 0.0;

  /// Effective relative deadline.
  Seconds effective_deadline() const {
    return deadline > 0.0 ? deadline : period;
  }
};

/// Result for one task.
struct FpTaskVerdict {
  bool schedulable = false;
  /// Worst-case response time if the RTA converged within the period;
  /// unset when the task is unschedulable (RTA diverged past the deadline).
  std::optional<Seconds> response_time;
};

/// Whole-set verdict.
struct FpSetVerdict {
  bool schedulable = false;
  /// Index of the first (highest-priority) task that failed, if any.
  std::optional<std::size_t> first_failure;
  /// Per-task verdicts, same order as the input.
  std::vector<FpTaskVerdict> tasks;
  /// How many tasks hit the RTA iteration cap (kMaxRtaIterations) instead
  /// of converging or provably missing their deadline. Non-zero means the
  /// "unschedulable" verdicts for those tasks are conservative, not exact;
  /// tools surface this as a warning.
  std::size_t iteration_cap_hits = 0;
};

/// Upper bound on RTA fixpoint iterations. The iteration is monotone
/// non-decreasing and bounded by the deadline when schedulable, so in
/// exact arithmetic it always terminates; the cap only guards against
/// floating-point stalls (e.g. `next` creeping by sub-ulp amounts near the
/// deadline). 10'000 is orders of magnitude above the iteration counts
/// seen in practice (tens at most), so hitting it signals numerical
/// trouble, not a hard problem instance.
inline constexpr int kMaxRtaIterations = 10'000;

/// Why `response_time` returned what it did.
enum class RtaStatus {
  /// Fixpoint reached within the deadline: the returned response time is
  /// exact.
  kConverged,
  /// The iteration crossed the deadline: the task provably misses it.
  kDeadlineExceeded,
  /// kMaxRtaIterations reached without a fixpoint: the task is *treated*
  /// as unschedulable (conservative). Also tallied in the obs counter
  /// "analysis.rta_cap_hits".
  kIterationCapReached,
};

/// Paper Theorem 4.1 / Lehoczky-Sha-Ding scheduling-point test for task `i`
/// (0-based) in a set sorted by increasing effective deadline: is there a
/// scheduling point t in { l*P_k : k <= i, l*P_k <= D_i } union { D_i } with
///   B + C'_i + sum_{j<i} C'_j * ceil(t/P_j)  <=  t ?
/// (With implicit deadlines this is exactly the paper's R_i.)
/// `blocking` is the B term (2*max(F, Theta) for PDP).
/// Points are sorted and deduplicated before testing, so harmonic periods
/// (where l*P_k collides across k) evaluate each distinct t once; the
/// verdict is unchanged because the workload at a given t is the same
/// however the point was generated. `workload_evals`, when non-null, is
/// set to the number of workload evaluations performed (early exit on the
/// first passing point included).
/// Preconditions: tasks sorted by effective deadline; costs/periods
/// positive or zero cost; i < tasks.size().
bool lsd_point_test(const std::vector<FpTask>& tasks, std::size_t i,
                    Seconds blocking, std::size_t* workload_evals = nullptr);

/// Scheduling-point test over the whole set (every task must pass).
FpSetVerdict lsd_point_test_all(const std::vector<FpTask>& tasks,
                                Seconds blocking);

/// Response-time analysis for task `i`:
///   r^{m+1} = B + C'_i + sum_{j<i} ceil(r^m / P_j) * C'_j
/// starting from r^0 = B + C'_i, until fixpoint or r > D_i.
/// Returns the response time if schedulable; `status`, when non-null,
/// distinguishes deadline misses from iteration-cap bailouts.
std::optional<Seconds> response_time(const std::vector<FpTask>& tasks,
                                     std::size_t i, Seconds blocking,
                                     RtaStatus* status = nullptr);

/// RTA over the whole set. Same verdict as `lsd_point_test_all` (both are
/// exact for this model); this one is the fast path.
FpSetVerdict response_time_analysis(const std::vector<FpTask>& tasks,
                                    Seconds blocking);

/// Boolean RTA verdict with cheap screens around the exact per-task test:
///  * quick-reject: sum(cost/period) + blocking/P_last > 1 means the
///    lowest-priority task cannot fit (necessary condition, margin-guarded
///    against rounding), so the whole set fails without any iteration;
///  * per-task hyperbolic quick-accept (Bini-Buttazzo with the blocking
///    term folded into the task under test): while every deadline so far
///    is implicit, prod_{j<i}(1+U_j) * (1 + (C_i+B)/P_i) <= 2 proves task
///    i schedulable without running its fixpoint;
///  * failed-task-first: `failed_hint` (in/out, optional) names the task
///    that failed last time; re-testing it first lets the unschedulable
///    side of a bisection exit after one fixpoint run.
/// Tasks that no screen decides get the exact `response_time` fixpoint, so
/// the verdict matches `response_time_analysis` (screens are margin-guarded
/// sufficient/necessary conditions; the differential property test pins
/// the agreement).
bool rta_feasible_fast(const std::vector<FpTask>& tasks, Seconds blocking,
                       std::size_t* failed_hint = nullptr);

/// Boolean scheduling-point verdict with the same screens as
/// `rta_feasible_fast` plus an incremental point walk: per-task point
/// lists are sorted and deduplicated once, and the workload is updated in
/// O(1) per point (each point bumps exactly its own stream's ceil term)
/// instead of recomputed in O(i). The incremental sum associates additions
/// in point order rather than task order, so workload values can differ
/// from the reference by ulps; verdicts agree except on exact
/// workload == t ties (measure zero, pinned by the differential test).
bool lsd_feasible_fast(const std::vector<FpTask>& tasks, Seconds blocking);

/// Liu-Layland utilization bound n*(2^{1/n} - 1): a *sufficient* condition
/// on sum(cost/period) for schedulability with zero blocking. Provided for
/// context in examples/benches. Requires n >= 1.
double liu_layland_bound(std::size_t n);

/// Hyperbolic bound (Bini-Buttazzo): prod(U_i + 1) <= 2 is sufficient with
/// zero blocking. Returns the product for the given tasks.
double hyperbolic_product(const std::vector<FpTask>& tasks);

/// Throws PreconditionError unless the tasks are sorted by non-decreasing
/// effective deadline, with positive periods, non-negative costs, and
/// deadlines within periods.
void validate_sorted_tasks(const std::vector<FpTask>& tasks);

}  // namespace tokenring::analysis
