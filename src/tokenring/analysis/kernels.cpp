#include "tokenring/analysis/kernels.hpp"

#include <cmath>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"

namespace tokenring::analysis {

PdpScaleKernel::PdpScaleKernel(const msg::MessageSet& base,
                               const PdpParams& params, BitsPerSecond bw)
    : params_(params), bw_(bw), blocking_(pdp_blocking(params, bw)) {
  TR_EXPECTS(bw > 0.0);
  // The stable deadline sort compares only deadlines, which scaling leaves
  // untouched, so the base permutation is the scaled permutation.
  const msg::MessageSet sorted = base.rm_sorted();
  sorted_ = sorted.streams();
  tasks_.resize(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    tasks_[i].period = sorted_[i].period;
    tasks_[i].deadline = sorted_[i].relative_deadline;
  }
}

bool PdpScaleKernel::operator()(double scale) const {
  // Augmented lengths depend on the scaled payload through the frame
  // count, so they are recomputed per probe — but on a stack-local stream,
  // with the same multiply `scaled()` performs, feeding the same
  // `pdp_augmented_length` the predicate path uses: costs are bitwise
  // equal to the reference's.
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    msg::SyncStream s = sorted_[i];
    s.payload_bits *= scale;
    tasks_[i].cost = pdp_augmented_length(s, params_, bw_);
  }
  return rta_feasible_fast(tasks_, blocking_, &failed_hint_);
}

TtpScaleKernel::TtpScaleKernel(const msg::MessageSet& base,
                               const TtpParams& params, BitsPerSecond bw)
    : TtpScaleKernel(base, params, bw,
                     select_ttrt(base, params.ring, bw)) {}

TtpScaleKernel::TtpScaleKernel(const msg::MessageSet& base,
                               const TtpParams& params, BitsPerSecond bw,
                               Seconds ttrt)
    : bw_(bw),
      available_(ttrt - ttp_lambda(params, bw)),
      frame_overhead_(params.frame.overhead_time(bw)) {
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(ttrt > 0.0);
  stations_.reserve(base.size());
  for (const auto& s : base.streams()) {
    // q_i = floor(D_i / TTRT) reads only the deadline: scale-invariant.
    const auto q = static_cast<std::int64_t>(std::floor(s.deadline() / ttrt));
    if (q < 2) {
      any_deadline_infeasible_ = true;
      break;
    }
    stations_.push_back({s.payload_bits, static_cast<double>(q - 1)});
  }
}

bool TtpScaleKernel::operator()(double scale) const {
  // Replays ttp_feasible_at on the scaled set: same per-station h_i
  // arithmetic, same accumulation order, same early exits.
  if (any_deadline_infeasible_) return false;
  Seconds allocated = 0.0;
  for (const auto& st : stations_) {
    const double payload_bits = st.base_payload_bits * scale;
    allocated +=
        (payload_bits / bw_) / st.usable_visits + frame_overhead_;
    if (allocated > available_) return false;
  }
  return true;
}

}  // namespace tokenring::analysis
