#include "tokenring/net/standards.hpp"

namespace tokenring::net {

RingParams ieee8025_ring(int num_stations, double station_spacing_m) {
  RingParams p;
  p.num_stations = num_stations;
  p.station_spacing_m = station_spacing_m;
  p.signal_speed_fraction = 0.75;
  p.per_station_bit_delay = 4.0;   // paper Section 6
  p.token_length_bits = 24.0;      // 802.5 token: SD + AC + ED
  return p;
}

RingParams fddi_ring(int num_stations, double station_spacing_m) {
  RingParams p;
  p.num_stations = num_stations;
  p.station_spacing_m = station_spacing_m;
  p.signal_speed_fraction = 0.75;
  p.per_station_bit_delay = 75.0;  // paper Section 6
  p.token_length_bits = 88.0;      // FDDI token incl. preamble
  return p;
}

FrameFormat paper_frame_format() {
  FrameFormat f;
  f.info_bits = 512.0;      // 64 bytes
  f.overhead_bits = 112.0;  // paper Section 6
  return f;
}

FrameFormat frame_format_with_payload_bytes(double payload_bytes) {
  FrameFormat f;
  f.info_bits = payload_bytes * 8.0;
  f.overhead_bits = 112.0;
  return f;
}

}  // namespace tokenring::net
