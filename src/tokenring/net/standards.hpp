// Canned parameter sets matching the standards (and the paper's Section 6
// experiment configuration).
//
// The paper states: n = 100 stations, d = 100 m spacing, signal speed
// 0.75c, average per-station bit delay 4 bits (IEEE 802.5) / 75 bits
// (FDDI), frame payload 64 bytes, frame overhead F_ovhd^b = 112 bits.
// Token lengths are not given in the paper; we use the standards' values
// (24-bit 802.5 token; 88-bit FDDI token including preamble) — they only
// enter through Theta and are dwarfed by the latency terms.

#pragma once

#include "tokenring/net/frame.hpp"
#include "tokenring/net/ring.hpp"

namespace tokenring::net {

/// IEEE 802.5 ring with the paper's Section 6 physical layout.
RingParams ieee8025_ring(int num_stations = 100,
                         double station_spacing_m = 100.0);

/// FDDI ring with the paper's Section 6 physical layout.
RingParams fddi_ring(int num_stations = 100, double station_spacing_m = 100.0);

/// The paper's frame format: 64-byte payload, 112-bit overhead.
FrameFormat paper_frame_format();

/// Frame format with a custom payload size in bytes (overhead stays at the
/// paper's 112 bits); used by the frame-size ablation.
FrameFormat frame_format_with_payload_bytes(double payload_bytes);

}  // namespace tokenring::net
