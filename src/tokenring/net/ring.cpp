#include "tokenring/net/ring.hpp"

#include "tokenring/common/checks.hpp"

namespace tokenring::net {

double RingParams::ring_length_m() const {
  return static_cast<double>(num_stations) * station_spacing_m;
}

Seconds RingParams::propagation_delay() const {
  return ring_length_m() / (signal_speed_fraction * kSpeedOfLightMps);
}

Seconds RingParams::ring_latency(BitsPerSecond bw) const {
  return static_cast<double>(num_stations) * per_station_bit_delay / bw;
}

Seconds RingParams::walk_time(BitsPerSecond bw) const {
  return propagation_delay() + ring_latency(bw);
}

Seconds RingParams::token_time(BitsPerSecond bw) const {
  return token_length_bits / bw;
}

Seconds RingParams::theta(BitsPerSecond bw) const {
  return walk_time(bw) + token_time(bw);
}

Seconds RingParams::hop_latency(BitsPerSecond bw) const {
  return station_spacing_m / (signal_speed_fraction * kSpeedOfLightMps) +
         per_station_bit_delay / bw;
}

void RingParams::validate() const {
  TR_EXPECTS_MSG(num_stations >= 2, "a ring needs at least two stations");
  TR_EXPECTS(station_spacing_m > 0.0);
  TR_EXPECTS(signal_speed_fraction > 0.0 && signal_speed_fraction <= 1.0);
  TR_EXPECTS(per_station_bit_delay >= 0.0);
  TR_EXPECTS(token_length_bits > 0.0);
}

}  // namespace tokenring::net
