// Physical ring model: topology, latencies and the token walk time.
//
// Paper notation (Section 3.1):
//   WT     = token walk time around the ring = propagation delay + per-
//            station ring/buffer latency,
//   Theta  = WT + token transmission time.
//
// Theta is the single most important network constant in the paper: it is
// the effective frame slot when frames are shorter than the ring latency
// (PDP), the token-passing overhead per rotation (TTP), and the quantity
// whose bandwidth-dependence explains the non-monotone PDP curve in
// Figure 1. Everything here is a pure function of bandwidth so analyses can
// sweep bandwidth cheaply.

#pragma once

#include <cstdint>

#include "tokenring/common/units.hpp"

namespace tokenring::net {

/// Static description of a token ring. One instance describes both the
/// physical layout (stations, spacing, signalling speed) and the MAC-level
/// constants that depend on the standard in use (per-station bit delay,
/// token length).
struct RingParams {
  /// Number of stations on the ring (= number of synchronous streams in the
  /// paper's model; exactly one stream arrives at each station).
  int num_stations = 100;
  /// Distance between neighbouring stations [m].
  double station_spacing_m = 100.0;
  /// Signal propagation speed as a fraction of c (paper: 0.75).
  double signal_speed_fraction = 0.75;
  /// Station latency in bits (ring + buffer delay contributed by each
  /// station). Paper: 4 bits for IEEE 802.5, 75 bits for FDDI.
  double per_station_bit_delay = 4.0;
  /// Token length in bits (enters Theta through the token transmission
  /// time). IEEE 802.5 token: 24 bits; FDDI token: 88 bits.
  double token_length_bits = 24.0;

  /// Total ring circumference [m].
  double ring_length_m() const;

  /// One-way propagation delay around the whole ring [s]. Independent of
  /// bandwidth; this is the floor Theta approaches as bandwidth grows.
  Seconds propagation_delay() const;

  /// Sum of station latencies at bandwidth `bw` [s]
  /// (num_stations * per_station_bit_delay / bw).
  Seconds ring_latency(BitsPerSecond bw) const;

  /// Token walk time WT = propagation delay + ring latency.
  Seconds walk_time(BitsPerSecond bw) const;

  /// Token transmission time = token_length_bits / bw.
  Seconds token_time(BitsPerSecond bw) const;

  /// Theta = WT + token transmission time (paper Section 3.1).
  Seconds theta(BitsPerSecond bw) const;

  /// Latency of one hop (station i to its downstream neighbour): spacing
  /// propagation + one station's bit delay. Used by the simulator; n hops
  /// sum exactly to walk_time().
  Seconds hop_latency(BitsPerSecond bw) const;

  /// Throws PreconditionError if any field is out of its documented domain.
  void validate() const;
};

}  // namespace tokenring::net
