#include "tokenring/net/frame.hpp"

#include <cmath>

#include "tokenring/common/checks.hpp"

namespace tokenring::net {

std::int64_t FrameFormat::full_frames(double payload_bits) const {
  TR_EXPECTS(payload_bits >= 0.0);
  return static_cast<std::int64_t>(std::floor(payload_bits / info_bits));
}

std::int64_t FrameFormat::frames_for_payload(double payload_bits) const {
  TR_EXPECTS(payload_bits >= 0.0);
  return static_cast<std::int64_t>(std::ceil(payload_bits / info_bits));
}

double FrameFormat::last_frame_payload_bits(double payload_bits) const {
  TR_EXPECTS(payload_bits >= 0.0);
  if (payload_bits == 0.0) return 0.0;
  const double rem = std::fmod(payload_bits, info_bits);
  return rem == 0.0 ? info_bits : rem;
}

void FrameFormat::validate() const {
  TR_EXPECTS(info_bits > 0.0);
  TR_EXPECTS(overhead_bits >= 0.0);
}

}  // namespace tokenring::net
