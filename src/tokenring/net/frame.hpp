// MAC frame format: information payload vs. per-frame overhead.
//
// Paper notation (Section 4.2): F_info^b and F_ovhd^b are the information
// and overhead parts of a frame in bits; F^b the total; F = F^b / BW the
// frame transmission time. A message of C_i^b payload bits is split into
//   L_i = floor(C_i^b / F_info^b)   full frames, and
//   K_i = ceil (C_i^b / F_info^b)   frames in total
// (K_i = L_i + 1 iff the last frame is short).

#pragma once

#include <cstdint>

#include "tokenring/common/units.hpp"

namespace tokenring::net {

/// Frame geometry shared by the synchronous and asynchronous traffic in the
/// paper's experiments (64-byte payload, 112-bit overhead by default).
struct FrameFormat {
  /// Information (payload) bits per full frame, F_info^b.
  double info_bits = 512.0;  // 64 bytes
  /// Per-frame overhead bits, F_ovhd^b (headers, trailers, FCS...).
  double overhead_bits = 112.0;

  /// Total bits per full frame, F^b.
  double total_bits() const { return info_bits + overhead_bits; }

  /// Transmission time of the payload part at `bw`.
  Seconds info_time(BitsPerSecond bw) const { return info_bits / bw; }
  /// Transmission time of the overhead part at `bw`.
  Seconds overhead_time(BitsPerSecond bw) const { return overhead_bits / bw; }
  /// Transmission time F of one full frame at `bw`.
  Seconds frame_time(BitsPerSecond bw) const { return total_bits() / bw; }

  /// L_i: number of *full* frames for a payload of `payload_bits`.
  std::int64_t full_frames(double payload_bits) const;
  /// K_i: total number of frames (ceil). Requires payload_bits >= 0.
  std::int64_t frames_for_payload(double payload_bits) const;
  /// Payload bits carried by the (possibly short) last frame; equals
  /// info_bits when the payload is an exact multiple.
  double last_frame_payload_bits(double payload_bits) const;

  /// Throws PreconditionError if bits are out of domain.
  void validate() const;
};

}  // namespace tokenring::net
