// Synchronous message stream model (paper Section 3.2).
//
// A stream S_i delivers one message of C_i^b payload bits every P_i
// seconds; the deadline of each message is the end of its period. In the
// paper's model exactly one stream originates at each station, so a stream
// also identifies its source station.

#pragma once

#include <string>

#include "tokenring/common/units.hpp"

namespace tokenring::msg {

/// One periodic synchronous stream.
struct SyncStream {
  /// Period P_i [s].
  Seconds period = 0.0;
  /// Payload length C_i^b [bits]. Continuous (see units.hpp).
  Bits payload_bits = 0.0;
  /// Source station index (0-based position on the ring).
  int station = 0;
  /// Relative deadline D_i [s]; 0 (the default) means D_i = P_i — the
  /// paper's model. Constrained deadlines (0 < D_i <= P_i) are an
  /// extension: analyses switch to deadline-monotonic ordering, which
  /// coincides with rate-monotonic when every deadline is implicit.
  Seconds relative_deadline = 0.0;

  /// Effective relative deadline: explicit value, or the period.
  Seconds deadline() const {
    return relative_deadline > 0.0 ? relative_deadline : period;
  }

  /// Payload transmission time C_i = C_i^b / BW.
  Seconds payload_time(BitsPerSecond bw) const { return payload_bits / bw; }

  /// Per-stream utilization C_i / P_i at bandwidth `bw`.
  double utilization(BitsPerSecond bw) const {
    return payload_time(bw) / period;
  }

  /// Throws PreconditionError if the stream is malformed.
  void validate() const;

  /// Human-readable one-liner for diagnostics.
  std::string describe(BitsPerSecond bw) const;
};

}  // namespace tokenring::msg
