#include "tokenring/msg/io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "tokenring/common/checks.hpp"

namespace tokenring::msg {

namespace {

std::vector<std::string> split_commas(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  std::ostringstream os;
  os << "scenario CSV line " << line_no << ": " << what;
  throw ParseError(os.str());
}

}  // namespace

std::string to_csv(const MessageSet& set) {
  // The 4th column appears only when some stream carries an explicit
  // constrained deadline, so paper-model files stay in the simple format.
  bool any_deadline = false;
  for (const auto& s : set.streams()) {
    any_deadline |= s.relative_deadline > 0.0;
  }
  std::ostringstream os;
  os << (any_deadline ? "station,period_ms,payload_bits,deadline_ms\n"
                      : "station,period_ms,payload_bits\n");
  os.precision(17);
  for (const auto& s : set.streams()) {
    os << s.station << "," << to_milliseconds(s.period) << ","
       << s.payload_bits;
    if (any_deadline) os << "," << to_milliseconds(s.relative_deadline);
    os << "\n";
  }
  return os.str();
}

MessageSet message_set_from_csv(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool has_deadline_column = false;
  MessageSet set;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    if (!saw_header) {
      if (stripped == "station,period_ms,payload_bits") {
        has_deadline_column = false;
      } else if (stripped == "station,period_ms,payload_bits,deadline_ms") {
        has_deadline_column = true;
      } else {
        fail(line_no,
             "expected header 'station,period_ms,payload_bits[,deadline_ms]'"
             ", got '" +
                 stripped + "'");
      }
      saw_header = true;
      continue;
    }
    const auto cells = split_commas(stripped);
    const std::size_t expected = has_deadline_column ? 4u : 3u;
    if (cells.size() != expected) {
      fail(line_no, "expected " + std::to_string(expected) +
                        " comma-separated fields, got " +
                        std::to_string(cells.size()));
    }
    SyncStream s;
    try {
      std::size_t consumed = 0;
      s.station = std::stoi(trim(cells[0]), &consumed);
      s.period = milliseconds(std::stod(trim(cells[1])));
      s.payload_bits = std::stod(trim(cells[2]));
      if (has_deadline_column) {
        s.relative_deadline = milliseconds(std::stod(trim(cells[3])));
      }
    } catch (const std::exception& e) {
      fail(line_no, std::string("could not parse number: ") + e.what());
    }
    try {
      s.validate();
    } catch (const PreconditionError& e) {
      fail(line_no, e.what());
    }
    set.add(s);
  }
  if (!saw_header) throw ParseError("scenario CSV: missing header line");
  return set;
}

MessageSet load_message_set(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open scenario file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return message_set_from_csv(buffer.str());
}

void save_message_set(const std::string& path, const MessageSet& set) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot write scenario file: " + path);
  out << to_csv(set);
  if (!out) throw ParseError("write failed for scenario file: " + path);
}

}  // namespace tokenring::msg
