#include "tokenring/msg/stream.hpp"

#include <sstream>

#include "tokenring/common/checks.hpp"

namespace tokenring::msg {

void SyncStream::validate() const {
  TR_EXPECTS_MSG(period > 0.0, "stream period must be positive");
  TR_EXPECTS_MSG(payload_bits >= 0.0, "payload cannot be negative");
  TR_EXPECTS_MSG(station >= 0, "station index cannot be negative");
  TR_EXPECTS_MSG(relative_deadline >= 0.0,
                 "relative deadline cannot be negative");
  TR_EXPECTS_MSG(relative_deadline <= period,
                 "constrained deadlines must satisfy D <= P");
}

std::string SyncStream::describe(BitsPerSecond bw) const {
  std::ostringstream os;
  os << "S(station=" << station << ", P=" << to_milliseconds(period)
     << "ms, C=" << payload_bits << "b, U=" << utilization(bw) << ")";
  return os.str();
}

}  // namespace tokenring::msg
