#include "tokenring/msg/stream.hpp"

#include <cmath>
#include <sstream>

#include "tokenring/common/checks.hpp"

namespace tokenring::msg {

void SyncStream::validate() const {
  // Finiteness first: an inf period would sail through the positivity
  // check and then silently wedge horizon sizing and utilization sums.
  TR_EXPECTS_MSG(std::isfinite(period), "stream period must be finite");
  TR_EXPECTS_MSG(std::isfinite(payload_bits), "payload must be finite");
  TR_EXPECTS_MSG(std::isfinite(relative_deadline),
                 "relative deadline must be finite");
  TR_EXPECTS_MSG(period > 0.0, "stream period must be positive");
  TR_EXPECTS_MSG(payload_bits >= 0.0, "payload cannot be negative");
  TR_EXPECTS_MSG(station >= 0, "station index cannot be negative");
  TR_EXPECTS_MSG(relative_deadline >= 0.0,
                 "relative deadline cannot be negative");
  TR_EXPECTS_MSG(relative_deadline <= period,
                 "constrained deadlines must satisfy D <= P");
}

std::string SyncStream::describe(BitsPerSecond bw) const {
  std::ostringstream os;
  os << "S(station=" << station << ", P=" << to_milliseconds(period)
     << "ms, C=" << payload_bits << "b, U=" << utilization(bw) << ")";
  return os.str();
}

}  // namespace tokenring::msg
