// Synchronous message set M = {S_1 ... S_n} (paper Section 3.2).
//
// Most analyses need the streams in rate-monotonic order (shortest period =
// highest priority); `rm_sorted()` returns a copy in that order without
// losing the original station assignment. Scaling all payloads by a common
// factor is the primitive the breakdown-utilization search is built on.

#pragma once

#include <cstddef>
#include <vector>

#include "tokenring/msg/stream.hpp"

namespace tokenring::msg {

/// An ordered collection of synchronous streams.
class MessageSet {
 public:
  MessageSet() = default;
  explicit MessageSet(std::vector<SyncStream> streams);

  /// Number of streams n.
  std::size_t size() const { return streams_.size(); }
  bool empty() const { return streams_.empty(); }

  const SyncStream& operator[](std::size_t i) const { return streams_[i]; }
  const std::vector<SyncStream>& streams() const { return streams_; }

  /// Append one stream.
  void add(SyncStream s);

  /// Total utilization U(M) = sum C_i / P_i at bandwidth `bw`.
  double utilization(BitsPerSecond bw) const;

  /// Shortest / longest period in the set. Requires non-empty.
  Seconds min_period() const;
  Seconds max_period() const;

  /// Copy with streams sorted by increasing effective deadline — the
  /// deadline-monotonic priority order, which reduces to rate-monotonic
  /// when every deadline is implicit (D = P, the paper's model). The sort
  /// is stable, so streams with equal deadlines keep their relative
  /// order — analyses treat earlier-indexed ones as higher priority, which
  /// is the conservative convention.
  MessageSet rm_sorted() const;

  /// Copy with every payload multiplied by `factor` (>= 0). Periods are
  /// untouched. This is the direction-preserving scaling of the
  /// Lehoczky-Sha-Ding saturation procedure.
  MessageSet scaled(double factor) const;

  /// Allocation-free form of `scaled`: writes the scaled copy into `out`,
  /// reusing its stream storage when the capacity suffices. Produces values
  /// bit-identical to `scaled(factor)` (same multiply, same order), so the
  /// saturation search can swap between them freely. Aliasing with *this is
  /// not allowed.
  void scaled_into(double factor, MessageSet& out) const;

  /// Validates every stream and that stations are within [0, limit).
  void validate() const;

 private:
  std::vector<SyncStream> streams_;
};

}  // namespace tokenring::msg
