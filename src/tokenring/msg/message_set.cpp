#include "tokenring/msg/message_set.hpp"

#include <algorithm>

#include "tokenring/common/checks.hpp"

namespace tokenring::msg {

MessageSet::MessageSet(std::vector<SyncStream> streams)
    : streams_(std::move(streams)) {}

void MessageSet::add(SyncStream s) { streams_.push_back(s); }

double MessageSet::utilization(BitsPerSecond bw) const {
  double u = 0.0;
  for (const auto& s : streams_) u += s.utilization(bw);
  return u;
}

Seconds MessageSet::min_period() const {
  TR_EXPECTS(!streams_.empty());
  return std::min_element(streams_.begin(), streams_.end(),
                          [](const SyncStream& a, const SyncStream& b) {
                            return a.period < b.period;
                          })
      ->period;
}

Seconds MessageSet::max_period() const {
  TR_EXPECTS(!streams_.empty());
  return std::max_element(streams_.begin(), streams_.end(),
                          [](const SyncStream& a, const SyncStream& b) {
                            return a.period < b.period;
                          })
      ->period;
}

MessageSet MessageSet::rm_sorted() const {
  std::vector<SyncStream> copy = streams_;
  std::stable_sort(copy.begin(), copy.end(),
                   [](const SyncStream& a, const SyncStream& b) {
                     return a.deadline() < b.deadline();
                   });
  return MessageSet(std::move(copy));
}

MessageSet MessageSet::scaled(double factor) const {
  TR_EXPECTS(factor >= 0.0);
  std::vector<SyncStream> copy = streams_;
  for (auto& s : copy) s.payload_bits *= factor;
  return MessageSet(std::move(copy));
}

void MessageSet::scaled_into(double factor, MessageSet& out) const {
  TR_EXPECTS(factor >= 0.0);
  TR_EXPECTS(&out != this);
  out.streams_.assign(streams_.begin(), streams_.end());
  for (auto& s : out.streams_) s.payload_bits *= factor;
}

void MessageSet::validate() const {
  for (const auto& s : streams_) s.validate();
}

}  // namespace tokenring::msg
