// Message-set serialization: a small CSV format so scenarios can live in
// files, be shared between tools, and be replayed by the examples.
//
// Format (header required, '#' comment lines ignored):
//
//   station,period_ms,payload_bits
//   0,20,16000
//   1,50,32000
//
// Parsing is strict: malformed rows raise ParseError with line numbers so
// broken scenario files fail loudly.

#pragma once

#include <stdexcept>
#include <string>

#include "tokenring/msg/message_set.hpp"

namespace tokenring::msg {

/// Thrown on malformed scenario text/files.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Render a set as scenario CSV (header + one row per stream).
std::string to_csv(const MessageSet& set);

/// Parse scenario CSV. Throws ParseError on malformed input; the returned
/// set is validated.
MessageSet message_set_from_csv(const std::string& text);

/// Load a scenario file. Throws ParseError if the file cannot be read or
/// parsed.
MessageSet load_message_set(const std::string& path);

/// Save a scenario file. Throws ParseError if the file cannot be written.
void save_message_set(const std::string& path, const MessageSet& set);

}  // namespace tokenring::msg
