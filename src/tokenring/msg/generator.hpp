// Random message-set generation for the Monte Carlo experiments (paper
// Section 6.2).
//
// The paper draws periods from a uniform distribution parameterized by the
// *average* period and the max/min *ratio*; with mean m and ratio r the
// support is [2m/(1+r), 2mr/(1+r)]. Payload lengths are drawn as a random
// direction and later scaled to the schedulability boundary, so only their
// relative sizes matter; we provide the distributions used in the
// Lehoczky-Sha-Ding methodology plus a few for ablations.

#pragma once

#include "tokenring/common/rng.hpp"
#include "tokenring/msg/message_set.hpp"

namespace tokenring::msg {

/// Period distribution choices.
enum class PeriodDistribution {
  /// Uniform on [min, max] — the paper's choice.
  kUniform,
  /// Log-uniform on [min, max] — spreads priorities across decades.
  kLogUniform,
  /// All periods equal to the mean — the paper's special case for which
  /// TTRT = sqrt(Theta * P) is provably near-optimal.
  kEqual,
};

/// Payload (message length) direction distributions. Payloads get rescaled
/// to the saturation boundary, so these fix only relative magnitudes.
enum class PayloadDistribution {
  /// C_i^b uniform on [1, 10] kilobits, independent of the period.
  kUniform,
  /// C_i^b proportional to P_i times a uniform [0.5, 1.5] jitter — every
  /// stream carries a comparable utilization share.
  kProportionalToPeriod,
};

/// Parameters for random set generation.
struct GeneratorConfig {
  /// Number of streams (= stations; one stream per station).
  int num_streams = 100;
  /// Mean period [s]; paper: 100 ms.
  Seconds mean_period = 0.1;
  /// Max/min period ratio; paper: 10. Must be >= 1. Ignored for kEqual.
  double period_ratio = 10.0;
  PeriodDistribution period_dist = PeriodDistribution::kUniform;
  PayloadDistribution payload_dist = PayloadDistribution::kUniform;
  /// Relative deadline as a fraction of the period, in (0, 1]. 1.0 (the
  /// default) produces implicit deadlines (the paper's D = P model);
  /// smaller values generate constrained deadlines D = fraction * P.
  double deadline_fraction = 1.0;

  /// Smallest period in the support: 2*mean/(1+ratio).
  Seconds min_period() const;
  /// Largest period in the support: ratio * min_period().
  Seconds max_period() const;

  void validate() const;
};

/// Draws random message sets. Stream i is assigned to station i.
class MessageSetGenerator {
 public:
  explicit MessageSetGenerator(GeneratorConfig config);

  const GeneratorConfig& config() const { return config_; }

  /// Draw one random set (periods + payload direction).
  MessageSet generate(Rng& rng) const;

 private:
  GeneratorConfig config_;
};

}  // namespace tokenring::msg
