#include "tokenring/msg/generator.hpp"

#include <cmath>

#include "tokenring/common/checks.hpp"

namespace tokenring::msg {

Seconds GeneratorConfig::min_period() const {
  if (period_dist == PeriodDistribution::kEqual) return mean_period;
  return 2.0 * mean_period / (1.0 + period_ratio);
}

Seconds GeneratorConfig::max_period() const {
  if (period_dist == PeriodDistribution::kEqual) return mean_period;
  return period_ratio * min_period();
}

void GeneratorConfig::validate() const {
  TR_EXPECTS(num_streams >= 1);
  TR_EXPECTS(mean_period > 0.0);
  TR_EXPECTS(period_ratio >= 1.0);
  TR_EXPECTS(deadline_fraction > 0.0 && deadline_fraction <= 1.0);
}

MessageSetGenerator::MessageSetGenerator(GeneratorConfig config)
    : config_(config) {
  config_.validate();
}

MessageSet MessageSetGenerator::generate(Rng& rng) const {
  const Seconds pmin = config_.min_period();
  const Seconds pmax = config_.max_period();

  MessageSet set;
  for (int i = 0; i < config_.num_streams; ++i) {
    SyncStream s;
    s.station = i;
    switch (config_.period_dist) {
      case PeriodDistribution::kUniform:
        s.period = rng.uniform(pmin, pmax);
        break;
      case PeriodDistribution::kLogUniform:
        s.period = std::exp(rng.uniform(std::log(pmin), std::log(pmax)));
        break;
      case PeriodDistribution::kEqual:
        s.period = config_.mean_period;
        break;
    }
    if (config_.deadline_fraction < 1.0) {
      s.relative_deadline = config_.deadline_fraction * s.period;
    }
    switch (config_.payload_dist) {
      case PayloadDistribution::kUniform:
        s.payload_bits = rng.uniform(1'000.0, 10'000.0);
        break;
      case PayloadDistribution::kProportionalToPeriod:
        // Scale-free: proportionality constant is arbitrary because the
        // saturation search rescales; 1e5 bits/s keeps numbers readable.
        s.payload_bits = s.period * 1e5 * rng.uniform(0.5, 1.5);
        break;
    }
    set.add(s);
  }
  return set;
}

}  // namespace tokenring::msg
