// Deterministic random number generation for experiments.
//
// Every stochastic component in this library takes an explicit `Rng&` so
// that experiments are reproducible from a single seed and tests can pin
// their randomness. The engine is mt19937_64; helper draws mirror the
// distributions the paper's Monte Carlo procedure needs.

#pragma once

#include <cstdint>
#include <random>

#include "tokenring/common/checks.hpp"

namespace tokenring {

/// Seedable random source used by generators, Monte Carlo drivers and the
/// simulators. Copyable (copies fork the stream state).
class Rng {
 public:
  /// Default seed gives a fixed, documented stream (tests rely on this).
  explicit Rng(std::uint64_t seed = 0x5eed'cafe'f00d'1234ULL) : engine_(seed) {}

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform real in [0, 1).
  double uniform01() { return uniform(0.0, 1.0); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed with the given mean (> 0). Used for Poisson
  /// asynchronous-traffic inter-arrival times in the simulator.
  double exponential(double mean);

  /// Bernoulli draw with probability p in [0, 1].
  bool bernoulli(double p);

  /// Access to the raw engine (for std::shuffle etc.).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace tokenring
