#include "tokenring/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "tokenring/common/checks.hpp"

namespace tokenring {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TR_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  TR_EXPECTS_MSG(cells.size() == headers_.size(),
                 "row width must match header count");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << " |\n";
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string fmt(long long v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string fmt_sci(double v, int prec) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(prec) << v;
  return os.str();
}

}  // namespace tokenring
