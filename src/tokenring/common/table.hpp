// ASCII table and CSV writers for the benchmark harness.
//
// Every bench binary prints its series twice: a human-readable aligned
// table (what you eyeball against the paper's figure) and a machine-
// readable CSV block (what you plot). Both come from the same Table.

#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace tokenring {

/// A simple column-oriented table: set headers once, append rows of cells.
/// Numeric cells should be pre-formatted by the caller (see `fmt` helpers).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Raw access for structured (JSON) emission.
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

  /// Render as an aligned ASCII table with a header separator.
  void print(std::ostream& os) const;

  /// Render as CSV (header row first).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` digits after the decimal point.
std::string fmt(double v, int prec = 4);
/// Format an integer.
std::string fmt(long long v);
/// Format a double in engineering style (e.g. "1e+06").
std::string fmt_sci(double v, int prec = 3);

}  // namespace tokenring
