#include "tokenring/common/rng.hpp"

namespace tokenring {

double Rng::uniform(double lo, double hi) {
  TR_EXPECTS(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TR_EXPECTS(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::exponential(double mean) {
  TR_EXPECTS(mean > 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  TR_EXPECTS(p >= 0.0 && p <= 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

}  // namespace tokenring
