#include "tokenring/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "tokenring/common/checks.hpp"

namespace tokenring {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::std_error() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ci95_half_width() const { return 1.96 * std_error(); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  TR_EXPECTS(lo < hi);
  TR_EXPECTS(buckets >= 1);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  TR_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    cum = next;
  }
  return hi_;
}

}  // namespace tokenring
