#include "tokenring/common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "tokenring/common/checks.hpp"

namespace tokenring {

std::string render_plot(const std::vector<PlotSeries>& series,
                        const PlotOptions& options) {
  TR_EXPECTS(!series.empty());
  TR_EXPECTS(options.width >= 8);
  TR_EXPECTS(options.height >= 4);

  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_auto_max = -std::numeric_limits<double>::infinity();
  std::size_t points = 0;
  for (const auto& s : series) {
    TR_EXPECTS_MSG(s.x.size() == s.y.size(), "series x/y length mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      TR_EXPECTS_MSG(!options.log_x || s.x[i] > 0.0,
                     "log-x plot requires positive x");
      x_min = std::min(x_min, s.x[i]);
      x_max = std::max(x_max, s.x[i]);
      y_auto_max = std::max(y_auto_max, s.y[i]);
      ++points;
    }
  }
  TR_EXPECTS_MSG(points > 0, "nothing to plot");
  if (x_max == x_min) x_max = x_min + 1.0;

  const double y_min = options.y_min;
  double y_max = options.y_max > options.y_min
                     ? options.y_max
                     : std::max(y_auto_max * 1.05, y_min + 1e-12);

  const auto x_coord = [&](double x) {
    const double t = options.log_x
                         ? (std::log(x) - std::log(x_min)) /
                               (std::log(x_max) - std::log(x_min))
                         : (x - x_min) / (x_max - x_min);
    return std::clamp(static_cast<int>(std::lround(
                          t * static_cast<double>(options.width - 1))),
                      0, options.width - 1);
  };
  const auto y_coord = [&](double y) {
    const double t = (y - y_min) / (y_max - y_min);
    return std::clamp(static_cast<int>(std::lround(
                          t * static_cast<double>(options.height - 1))),
                      0, options.height - 1);
  };

  // Grid, row 0 at the top.
  std::vector<std::string> grid(static_cast<std::size_t>(options.height),
                                std::string(static_cast<std::size_t>(options.width), ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const int col = x_coord(s.x[i]);
      const int row = options.height - 1 - y_coord(s.y[i]);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          s.marker;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << "\n";
  char buf[32];
  for (int r = 0; r < options.height; ++r) {
    // y tick labels on the first, middle and last rows.
    const double y_here =
        y_max - (y_max - y_min) * static_cast<double>(r) /
                    static_cast<double>(options.height - 1);
    if (r == 0 || r == options.height - 1 || r == options.height / 2) {
      std::snprintf(buf, sizeof buf, "%6.2f |", y_here);
    } else {
      std::snprintf(buf, sizeof buf, "       |");
    }
    os << buf << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << "       +" << std::string(static_cast<std::size_t>(options.width), '-')
     << "\n";
  std::snprintf(buf, sizeof buf, "%-8s%-10.3g", "", x_min);
  os << buf;
  const std::string right = [&] {
    char b[16];
    std::snprintf(b, sizeof b, "%.3g", x_max);
    return std::string(b);
  }();
  const int pad = options.width - 10 - static_cast<int>(right.size());
  os << std::string(static_cast<std::size_t>(std::max(0, pad)), ' ') << right;
  if (!options.x_label.empty()) os << "  " << options.x_label;
  if (options.log_x) os << " (log)";
  os << "\n";
  for (const auto& s : series) {
    os << "        " << s.marker << " " << s.label << "\n";
  }
  if (!options.y_label.empty()) os << "        y: " << options.y_label << "\n";
  return os.str();
}

}  // namespace tokenring
