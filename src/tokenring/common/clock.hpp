// Monotonic time as a plain nanosecond count.
//
// Everything in the serve/ stack that races real time — request deadlines,
// idle/write timeouts, rate-limit refills, latency histograms — works on
// `std::uint64_t` nanoseconds from a monotonic clock, injected as a
// callable so tests can script time instead of sleeping. This header is
// the one place that actually reads the clock.

#pragma once

#include <chrono>
#include <cstdint>

namespace tokenring {

/// Nanoseconds on std::chrono::steady_clock (monotonic, never steps).
inline std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace tokenring
