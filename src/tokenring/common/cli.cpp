#include "tokenring/common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "tokenring/common/checks.hpp"

namespace tokenring {

void CliFlags::declare(const std::string& name, const std::string& default_value,
                       const std::string& help) {
  TR_EXPECTS_MSG(!flags_.count(name), "flag declared twice: " + name);
  flags_[name] = Flag{default_value, help};
}

CliFlags::ParseOutcome CliFlags::parse_detailed(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0]);
      return ParseOutcome::kHelp;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      print_usage(argv[0]);
      return ParseOutcome::kError;
    }
    std::string name;
    std::string value;
    bool have_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
      have_value = true;
    } else {
      name = arg.substr(2);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      print_usage(argv[0]);
      return ParseOutcome::kError;
    }
    if (!have_value) {
      // Boolean flags (default "true"/"false") may appear bare: `--profile`.
      const std::string& dflt = it->second.value;
      const bool boolean_like = dflt == "true" || dflt == "false";
      const bool next_is_flag =
          i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0;
      if (boolean_like && next_is_flag) {
        value = "true";
      } else if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        print_usage(argv[0]);
        return ParseOutcome::kError;
      } else {
        value = argv[++i];
      }
    }
    it->second.value = value;
  }
  return ParseOutcome::kOk;
}

bool CliFlags::parse(int argc, char** argv) {
  return parse_detailed(argc, argv) == ParseOutcome::kOk;
}

std::string CliFlags::get_string(const std::string& name) const {
  auto it = flags_.find(name);
  TR_EXPECTS_MSG(it != flags_.end(), "flag not declared: " + name);
  return it->second.value;
}

double CliFlags::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw PreconditionError("flag --" + name + " is not a number: " + v);
  }
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw PreconditionError("flag --" + name + " is not an integer: " + v);
  }
}

bool CliFlags::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw PreconditionError("flag --" + name + " is not a boolean: " + v);
}

std::vector<std::pair<std::string, std::string>> CliFlags::items() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(flags_.size());
  for (const auto& [name, flag] : flags_) out.emplace_back(name, flag.value);
  return out;
}

void CliFlags::print_usage(const std::string& program) const {
  std::fprintf(stderr, "usage: %s [--flag=value ...]\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.value.c_str());
  }
}

void declare_jobs_flag(CliFlags& flags) {
  flags.declare("jobs", "0",
                "worker threads (0 = hardware concurrency, 1 = sequential); "
                "results are identical for every value");
}

std::size_t get_jobs(const CliFlags& flags) {
  const std::int64_t jobs = flags.get_int("jobs");
  if (jobs < 0) throw PreconditionError("flag --jobs must be >= 0");
  return static_cast<std::size_t>(jobs);
}

void declare_batch_flag(CliFlags& flags) {
  flags.declare("batch", "64",
                "trials saturated per lockstep SoA batch (>= 1); "
                "results are identical for every value");
}

std::size_t get_batch(const CliFlags& flags, std::size_t trials) {
  const std::int64_t batch = flags.get_int("batch");
  if (batch < 1) throw PreconditionError("flag --batch must be >= 1");
  const auto value = static_cast<std::size_t>(batch);
  if (trials > 0 && value > trials) {
    std::fprintf(stderr,
                 "warning: --batch %zu exceeds the %zu trials per point; "
                 "the extra lanes are never filled\n",
                 value, trials);
  }
  return value;
}

std::vector<double> parse_double_list(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    out.push_back(std::stod(item));
  }
  return out;
}

}  // namespace tokenring
