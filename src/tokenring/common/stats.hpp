// Running statistics (Welford) and simple histograms.
//
// Used by the Monte Carlo breakdown-utilization estimator (mean + 95% CI of
// saturated-set utilizations) and by the simulator metrics (token rotation
// times, response times).

#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace tokenring {

/// Numerically stable single-pass accumulator for mean/variance/min/max.
class RunningStats {
 public:
  /// Incorporate one sample.
  void add(double x);

  /// Number of samples seen.
  std::size_t count() const { return count_; }
  /// Sample mean; 0 if empty.
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 if fewer than two samples.
  double variance() const;
  /// Square root of variance().
  double stddev() const;
  /// Standard error of the mean; 0 if fewer than two samples.
  double std_error() const;
  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean (1.96 * std_error). 0 if fewer than two samples.
  double ci95_half_width() const;
  /// Smallest sample; +inf if empty.
  double min() const { return min_; }
  /// Largest sample; -inf if empty.
  double max() const { return max_; }
  /// Sum of all samples.
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bucket. Used for response-time and rotation-time profiles.
class Histogram {
 public:
  /// Requires lo < hi and buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  /// Incorporate one sample.
  void add(double x);

  /// Bucket counts.
  const std::vector<std::size_t>& counts() const { return counts_; }
  /// Total samples.
  std::size_t total() const { return total_; }
  /// Inclusive lower edge of bucket `i`.
  double bucket_lo(std::size_t i) const;
  /// Exclusive upper edge of bucket `i`.
  double bucket_hi(std::size_t i) const;
  /// Linear-interpolation quantile estimate, q in [0,1].
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tokenring
