// Terminal line plots for the benchmark harness.
//
// Renders series of (x, y) points on a character grid with a log- or
// linear-scaled x axis — enough to eyeball the reproduction of the paper's
// Figure 1 directly in the bench output without leaving the terminal.

#pragma once

#include <string>
#include <vector>

namespace tokenring {

/// One plotted series.
struct PlotSeries {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;  // same length as x
  char marker = '*';
};

/// Plot appearance and scales.
struct PlotOptions {
  int width = 72;    // interior columns
  int height = 20;   // interior rows
  bool log_x = false;
  double y_min = 0.0;
  /// y maximum; <= y_min means auto (max over series, padded).
  double y_max = 0.0;
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Render the series into a multi-line string. Points outside the ranges
/// clamp to the border. Requires at least one series with at least one
/// point; series must have matching x/y lengths; with log_x all x must be
/// positive.
std::string render_plot(const std::vector<PlotSeries>& series,
                        const PlotOptions& options = {});

}  // namespace tokenring
