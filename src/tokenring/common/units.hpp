// Units and conversion helpers.
//
// The library works in SI base units throughout:
//   * time      -> seconds, as `Seconds` (double)
//   * data size -> bits, as `Bits` (double; fractional bits never appear in
//                  protocol state, but payload scaling during breakdown
//                  search is continuous, so the arithmetic type is double)
//   * bandwidth -> bits per second, as `BitsPerSecond` (double)
//
// Keeping everything in SI avoids the classic ms/us mix-ups in
// schedulability formulas; the named constructor helpers below are the only
// sanctioned way to write literal quantities.

#pragma once

#include <cstdint>

namespace tokenring {

/// Time in seconds.
using Seconds = double;
/// Data size in bits (continuous: breakdown scaling multiplies payloads
/// by an arbitrary real factor).
using Bits = double;
/// Bandwidth in bits per second.
using BitsPerSecond = double;

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLightMps = 299'792'458.0;

// ---- named literal helpers -------------------------------------------------

/// `milliseconds(100)` -> 0.1 s.
constexpr Seconds milliseconds(double ms) { return ms * 1e-3; }
/// `microseconds(44.4)` -> 4.44e-5 s.
constexpr Seconds microseconds(double us) { return us * 1e-6; }
/// `nanoseconds(10)` -> 1e-8 s.
constexpr Seconds nanoseconds(double ns) { return ns * 1e-9; }

/// `mbps(100)` -> 1e8 bit/s.
constexpr BitsPerSecond mbps(double m) { return m * 1e6; }
/// `kbps(64)` -> 6.4e4 bit/s.
constexpr BitsPerSecond kbps(double k) { return k * 1e3; }
/// `gbps(1)` -> 1e9 bit/s.
constexpr BitsPerSecond gbps(double g) { return g * 1e9; }

/// `bytes(64)` -> 512 bits.
constexpr Bits bytes(double b) { return b * 8.0; }

// ---- conversions -----------------------------------------------------------

/// Transmission time of `bits` at bandwidth `bw`.
constexpr Seconds transmission_time(Bits bits, BitsPerSecond bw) {
  return bits / bw;
}

/// Seconds -> milliseconds (for reporting).
constexpr double to_milliseconds(Seconds s) { return s * 1e3; }
/// Seconds -> microseconds (for reporting).
constexpr double to_microseconds(Seconds s) { return s * 1e6; }
/// bit/s -> Mbit/s (for reporting).
constexpr double to_mbps(BitsPerSecond bw) { return bw / 1e6; }

}  // namespace tokenring
