// Lightweight contract checks (I.6/I.8-style Expects/Ensures).
//
// Precondition violations are programming errors by the caller; we throw
// std::invalid_argument with a descriptive message so tests can assert on
// them and interactive tools fail loudly instead of producing garbage
// schedulability verdicts.

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tokenring {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void precondition_failed(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace tokenring

/// Check a documented precondition; throws tokenring::PreconditionError.
#define TR_EXPECTS(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::tokenring::detail::precondition_failed(#cond, __FILE__, __LINE__,    \
                                               std::string{});               \
  } while (0)

/// Check a documented precondition with an explanatory message.
#define TR_EXPECTS_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond))                                                             \
      ::tokenring::detail::precondition_failed(#cond, __FILE__, __LINE__,    \
                                               (msg));                       \
  } while (0)
