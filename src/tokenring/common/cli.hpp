// Minimal command-line flag parsing for bench/example binaries.
//
// Flags are `--name=value` or `--name value`. Unknown flags are an error so
// typos surface immediately. Each binary declares its flags up front, which
// doubles as `--help` text.

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace tokenring {

/// Parses `--key=value` style flags with typed accessors and defaults.
class CliFlags {
 public:
  /// Declare a flag before parsing. `help` is shown by `--help`.
  void declare(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// Outcome of parse_detailed: callers that care about exit codes must
  /// distinguish an explicit help request (exit 0) from a flag error
  /// (exit non-zero).
  enum class ParseOutcome { kOk, kHelp, kError };

  /// Parse argv. Prints usage on kHelp (`--help`/`-h`) and on kError
  /// (unknown flag, missing value, stray positional), with the error
  /// reason on stderr first.
  ParseOutcome parse_detailed(int argc, char** argv);

  /// Legacy form of parse_detailed. Returns false if `--help` was given
  /// or an unknown/malformed flag was seen — conflating the two; new
  /// callers should use parse_detailed so `--help` can exit 0.
  bool parse(int argc, char** argv);

  /// Typed accessors; flag must have been declared.
  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// True iff the flag was declared (not necessarily set on the command
  /// line). Lets shared helpers probe for optional flags.
  bool has(const std::string& name) const { return flags_.count(name) > 0; }

  /// Every declared flag with its final (post-parse) value, sorted by name.
  /// Used to echo the effective configuration into run manifests.
  std::vector<std::pair<std::string, std::string>> items() const;

  /// Print usage for all declared flags.
  void print_usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
};

/// Split a comma-separated list into values ("1,2,5" -> {1,2,5}).
std::vector<double> parse_double_list(const std::string& csv);

/// Declare the standard `--jobs` flag (worker threads for parallel Monte
/// Carlo; 0 = hardware concurrency, 1 = sequential). Every binary that
/// sweeps Monte Carlo points declares it through here so the wording and
/// default stay uniform.
void declare_jobs_flag(CliFlags& flags);

/// Read the `--jobs` flag declared by `declare_jobs_flag`. Rejects
/// negative values; returns 0 for "use hardware concurrency".
std::size_t get_jobs(const CliFlags& flags);

/// Declare the standard `--batch` flag (trials saturated per lockstep SoA
/// batch in the Monte Carlo boundary search). Like `--jobs`, a pure
/// throughput knob: results are bit-identical for every value.
void declare_batch_flag(CliFlags& flags);

/// Read the `--batch` flag declared by `declare_batch_flag`. Rejects
/// values < 1; warns on stderr when the batch exceeds `trials` (harmless,
/// but the extra lanes buy nothing).
std::size_t get_batch(const CliFlags& flags, std::size_t trials);

}  // namespace tokenring
