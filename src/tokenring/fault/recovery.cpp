#include "tokenring/fault/recovery.hpp"

#include <algorithm>

#include "tokenring/common/checks.hpp"

namespace tokenring::fault {

Seconds pdp_monitor_outage(const analysis::PdpParams& params,
                           BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  const Seconds theta = params.ring.theta(bw);
  return std::max(params.frame.frame_time(bw), theta) + theta;
}

Seconds pdp_corruption_outage(const analysis::PdpParams& params,
                              BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  return std::max(params.frame.frame_time(bw), params.ring.theta(bw));
}

Seconds pdp_beacon_outage(const analysis::PdpParams& params,
                          BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  const Seconds theta = params.ring.theta(bw);
  return std::max(params.frame.frame_time(bw), theta) +
         2.0 * params.ring.walk_time(bw) + params.ring.token_time(bw);
}

Seconds pdp_duplicate_outage(const analysis::PdpParams& params,
                             BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  return params.ring.theta(bw) + params.ring.token_time(bw);
}

Seconds pdp_fault_outage(FaultKind kind, const analysis::PdpParams& params,
                         BitsPerSecond bw, Seconds noise_duration) {
  switch (kind) {
    case FaultKind::kTokenLoss:
      return pdp_monitor_outage(params, bw);
    case FaultKind::kFrameCorruption:
      return pdp_corruption_outage(params, bw);
    case FaultKind::kNoiseBurst:
      return noise_duration + pdp_monitor_outage(params, bw);
    case FaultKind::kStationCrash:
    case FaultKind::kStationRejoin:
      return pdp_beacon_outage(params, bw);
    case FaultKind::kDuplicateToken:
      return pdp_duplicate_outage(params, bw);
  }
  return 0.0;
}

Seconds ttp_claim_outage(const analysis::TtpParams& params, BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  return 2.0 * params.ring.walk_time(bw) + params.ring.token_time(bw);
}

Seconds ttp_token_loss_outage(const analysis::TtpParams& params,
                              BitsPerSecond bw, Seconds ttrt) {
  TR_EXPECTS(ttrt > 0.0);
  return 2.0 * ttrt + ttp_claim_outage(params, bw);
}

Seconds ttp_corruption_outage(const analysis::TtpParams& params,
                              BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  return params.frame.frame_time(bw);
}

Seconds ttp_duplicate_outage(const analysis::TtpParams& params,
                             BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  return params.ring.walk_time(bw) + ttp_claim_outage(params, bw);
}

Seconds ttp_reconfiguration_outage(const analysis::TtpParams& params,
                                   BitsPerSecond bw) {
  TR_EXPECTS(bw > 0.0);
  return params.ring.walk_time(bw) + ttp_claim_outage(params, bw);
}

Seconds ttp_fault_outage(FaultKind kind, const analysis::TtpParams& params,
                         BitsPerSecond bw, Seconds ttrt,
                         Seconds noise_duration) {
  switch (kind) {
    case FaultKind::kTokenLoss:
      return ttp_token_loss_outage(params, bw, ttrt);
    case FaultKind::kFrameCorruption:
      return ttp_corruption_outage(params, bw);
    case FaultKind::kNoiseBurst:
      return noise_duration + ttp_token_loss_outage(params, bw, ttrt);
    case FaultKind::kStationCrash:
    case FaultKind::kStationRejoin:
      return ttp_reconfiguration_outage(params, bw);
    case FaultKind::kDuplicateToken:
      return ttp_duplicate_outage(params, bw);
  }
  return 0.0;
}

}  // namespace tokenring::fault
