// Protocol recovery models: how long each fault keeps the ring down.
//
// The two protocols the paper compares recover through very different
// machinery, and these constants are where that difference is encoded once
// for both the simulators (which stall the ring for exactly these outages)
// and the fault-aware schedulability criteria (which charge them as a
// per-period recovery budget, see margins.hpp).
//
// IEEE 802.5 (PDP) — active monitor + beacon:
//  * Token loss: the monitor notices the absence of valid transmissions
//    within one frame slot, purges the ring (one full walk) and issues a
//    fresh token — outage = max(F, Theta) + Theta.
//  * Frame corruption: the sender sees the failed FCS when the header
//    returns and retransmits — one wasted slot, max(F, Theta).
//  * Duplicate token: the monitor sees a token it did not issue and purges
//    the ring — Theta + token time.
//  * Station crash / rejoin: the downstream neighbour beacons, the fault
//    domain is bypassed, then the monitor purges — modelled as the monitor
//    timeout plus two ring walks.
//
// FDDI (TTP) — claim process:
//  * Token loss: detected when some station's TRT expires with Late_Ct
//    already set (bounded by 2*TTRT), then claim frames circulate (~2 ring
//    walks) and the winner issues a fresh token.
//  * Frame corruption: one retransmitted frame's worth of medium time.
//  * Duplicate token: a station receiving a token while holding one strips
//    it and enters claim — one walk of detection plus the claim.
//  * Station crash / rejoin: the physical break is seen as signal loss
//    (immediate, no TRT expiry wait) and resolved by beacon+claim —
//    one walk plus the claim.
//
// All outages are pure functions of the analysis parameter structs so that
// simulators and criteria can never drift apart.

#pragma once

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/fault/plan.hpp"

namespace tokenring::fault {

// ---- IEEE 802.5 (PDP) -------------------------------------------------------

/// Active-monitor recovery after a destroyed token: detection slot + purge
/// walk. This is the outage the pre-fault-framework simulator hard-coded.
Seconds pdp_monitor_outage(const analysis::PdpParams& params,
                           BitsPerSecond bw);

/// Wasted slot for a corrupted (FCS-failed) frame: the retransmission
/// itself is ordinary traffic, so only the ruined slot is outage.
Seconds pdp_corruption_outage(const analysis::PdpParams& params,
                              BitsPerSecond bw);

/// Beacon-driven ring reconfiguration after a station crash or rejoin.
Seconds pdp_beacon_outage(const analysis::PdpParams& params, BitsPerSecond bw);

/// Monitor purge after detecting a duplicate token.
Seconds pdp_duplicate_outage(const analysis::PdpParams& params,
                             BitsPerSecond bw);

/// Worst-case outage one fault of `kind` causes under 802.5 (kNoiseBurst
/// adds `noise_duration` on top of its recovery; kStationRejoin and
/// kStationCrash both cost one beacon reconfiguration).
Seconds pdp_fault_outage(FaultKind kind, const analysis::PdpParams& params,
                         BitsPerSecond bw, Seconds noise_duration = 0.0);

// ---- FDDI (TTP) -------------------------------------------------------------

/// The claim process proper: ~2 ring walks of claim frames plus the fresh
/// token's transmission.
Seconds ttp_claim_outage(const analysis::TtpParams& params, BitsPerSecond bw);

/// Full token-loss recovery: TRT double-expiry detection (2*TTRT) + claim.
Seconds ttp_token_loss_outage(const analysis::TtpParams& params,
                              BitsPerSecond bw, Seconds ttrt);

/// One retransmitted frame's worth of medium time.
Seconds ttp_corruption_outage(const analysis::TtpParams& params,
                              BitsPerSecond bw);

/// Duplicate-token resolution: one walk of detection + claim.
Seconds ttp_duplicate_outage(const analysis::TtpParams& params,
                             BitsPerSecond bw);

/// Crash/rejoin reconfiguration: signal-loss detection (one walk) + claim.
Seconds ttp_reconfiguration_outage(const analysis::TtpParams& params,
                                   BitsPerSecond bw);

/// Worst-case outage one fault of `kind` causes under FDDI.
Seconds ttp_fault_outage(FaultKind kind, const analysis::TtpParams& params,
                         BitsPerSecond bw, Seconds ttrt,
                         Seconds noise_duration = 0.0);

}  // namespace tokenring::fault
