#include "tokenring/fault/plan.hpp"

#include <algorithm>

#include "tokenring/common/checks.hpp"
#include "tokenring/exec/seed_stream.hpp"

namespace tokenring::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTokenLoss:
      return "token_loss";
    case FaultKind::kFrameCorruption:
      return "frame_corruption";
    case FaultKind::kNoiseBurst:
      return "noise_burst";
    case FaultKind::kStationCrash:
      return "station_crash";
    case FaultKind::kStationRejoin:
      return "station_rejoin";
    case FaultKind::kDuplicateToken:
      return "duplicate_token";
  }
  return "?";
}

std::optional<FaultKind> parse_fault_kind(const std::string& name) {
  for (FaultKind kind : kAllFaultKinds) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

void FaultPlan::add(FaultEvent event) { events_.push_back(event); }

void FaultPlan::add_token_loss(Seconds at) {
  add({at, FaultKind::kTokenLoss, -1, 0.0});
}

void FaultPlan::add_frame_corruption(Seconds at) {
  add({at, FaultKind::kFrameCorruption, -1, 0.0});
}

void FaultPlan::add_noise_burst(Seconds at, Seconds duration) {
  add({at, FaultKind::kNoiseBurst, -1, duration});
}

void FaultPlan::add_station_crash(Seconds at, int station, Seconds downtime) {
  add({at, FaultKind::kStationCrash, station, 0.0});
  if (downtime > 0.0) add_station_rejoin(at + downtime, station);
}

void FaultPlan::add_station_rejoin(Seconds at, int station) {
  add({at, FaultKind::kStationRejoin, station, 0.0});
}

void FaultPlan::add_duplicate_token(Seconds at) {
  add({at, FaultKind::kDuplicateToken, -1, 0.0});
}

namespace {

/// Poisson arrival times for one kind over [0, window], from that kind's
/// private seed sub-stream.
std::vector<Seconds> poisson_times(double rate, Seconds window,
                                   std::uint64_t seed, std::uint64_t lane) {
  std::vector<Seconds> times;
  if (rate <= 0.0 || window <= 0.0) return times;
  Rng rng = exec::make_trial_rng(seed, lane);
  Seconds t = rng.exponential(1.0 / rate);
  while (t <= window) {
    times.push_back(t);
    t += rng.exponential(1.0 / rate);
  }
  return times;
}

}  // namespace

FaultPlan FaultPlan::random(const FaultRates& rates, Seconds horizon,
                            std::uint64_t seed, int num_stations) {
  TR_EXPECTS(horizon > 0.0);
  TR_EXPECTS(num_stations >= 1);
  TR_EXPECTS(rates.noise_duration >= 0.0);
  TR_EXPECTS(rates.crash_downtime >= 0.0);
  const Seconds window = 0.9 * horizon;

  FaultPlan plan;
  for (Seconds t : poisson_times(rates.token_loss, window, seed, 0)) {
    plan.add_token_loss(t);
  }
  for (Seconds t : poisson_times(rates.frame_corruption, window, seed, 1)) {
    plan.add_frame_corruption(t);
  }
  for (Seconds t : poisson_times(rates.noise_burst, window, seed, 2)) {
    plan.add_noise_burst(t, rates.noise_duration);
  }
  {
    // Crashes draw their targets from the same lane as their times so that
    // the (time, station) pairs are a deterministic function of the seed.
    Rng target_rng = exec::make_trial_rng(seed, 3);
    for (Seconds t : poisson_times(rates.station_crash, window, seed, 4)) {
      const int station = static_cast<int>(
          target_rng.uniform_int(0, num_stations - 1));
      plan.add_station_crash(t, station, rates.crash_downtime);
    }
  }
  for (Seconds t : poisson_times(rates.duplicate_token, window, seed, 5)) {
    plan.add_duplicate_token(t);
  }
  return plan;
}

std::vector<FaultEvent> FaultPlan::sorted_events() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return sorted;
}

void FaultPlan::validate(int num_stations) const {
  for (const auto& e : events_) {
    TR_EXPECTS_MSG(e.time >= 0.0, "fault times must be non-negative");
    TR_EXPECTS_MSG(e.duration >= 0.0, "fault durations must be non-negative");
    if (e.kind == FaultKind::kStationCrash ||
        e.kind == FaultKind::kStationRejoin) {
      TR_EXPECTS_MSG(e.station >= 0 && e.station < num_stations,
                     "crash/rejoin station outside the ring");
    }
  }
}

}  // namespace tokenring::fault
