#include "tokenring/fault/margins.hpp"

#include <cmath>
#include <functional>

#include "tokenring/analysis/fixed_priority.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::fault {

namespace {

/// One bump per margin query (not per binary-search probe), mirroring the
/// per-trial granularity used by the sim and Monte Carlo counters.
void count_margin_query(const FaultMarginReport& report) {
  static const obs::Counter queries("fault.margin_queries");
  static const obs::Counter infeasible("fault.margin_infeasible");
  queries.add();
  if (!report.fault_free_schedulable) infeasible.add();
}

/// Largest k in [0, inf) with test(k) true, given test(0) true and test
/// monotone (true up to some boundary, false after). `hi_bound` is any k
/// known to fail (outages exceeding the longest deadline always do).
int largest_feasible(const std::function<bool(int)>& test, int hi_bound) {
  int lo = 0;        // known feasible
  int hi = hi_bound; // known infeasible
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    if (test(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// A k past which no criterion can pass: the whole deadline window spent
/// recovering. +2 keeps the search bracket valid even at outage ~ 0 window.
int hopeless_faults(const msg::MessageSet& set, Seconds outage) {
  Seconds longest = 0.0;
  for (const auto& s : set.streams()) {
    longest = std::max(longest, s.deadline());
  }
  if (outage <= 0.0) return 2;
  return static_cast<int>(std::ceil(longest / outage)) + 2;
}

}  // namespace

bool pdp_schedulable_with_faults(const msg::MessageSet& set,
                                 const analysis::PdpParams& params,
                                 BitsPerSecond bw, const FaultBudget& budget,
                                 int faults_per_period) {
  TR_EXPECTS(faults_per_period >= 0);
  TR_EXPECTS(bw > 0.0);
  const auto tasks = analysis::pdp_tasks(set, params, bw);
  // Beyond the recovery outage itself, a fault destroys the frame in
  // flight, whose partial transmission (up to one max frame) is repeated.
  const Seconds recovery =
      pdp_fault_outage(budget.kind, params, bw, budget.noise_duration) +
      params.frame.frame_time(bw);
  const Seconds blocking = analysis::pdp_blocking(params, bw) +
                           static_cast<double>(faults_per_period) * recovery;
  return analysis::response_time_analysis(tasks, blocking).schedulable;
}

bool ttp_schedulable_with_faults(const msg::MessageSet& set,
                                 const analysis::TtpParams& params,
                                 BitsPerSecond bw, Seconds ttrt,
                                 const FaultBudget& budget,
                                 int faults_per_period) {
  TR_EXPECTS(faults_per_period >= 0);
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(!set.empty());
  if (ttrt <= 0.0) ttrt = analysis::select_ttrt(set, params.ring, bw);
  // Each outage also wastes the rotation in progress when it strikes (the
  // aborted visit plus the fresh ramp-up), so charge one TTRT on top.
  const Seconds recovery =
      ttp_fault_outage(budget.kind, params, bw, ttrt, budget.noise_duration) +
      ttrt;
  const Seconds debit = static_cast<double>(faults_per_period) * recovery;

  const Seconds available = ttrt - analysis::ttp_lambda(params, bw);
  const Seconds f_ovhd = params.frame.overhead_time(bw);
  Seconds allocated = 0.0;
  for (const auto& s : set.streams()) {
    const Seconds window = s.deadline() - debit;
    if (window <= 0.0) return false;
    const auto q = static_cast<std::int64_t>(std::floor(window / ttrt));
    if (q < 2) return false;
    allocated += s.payload_time(bw) / static_cast<double>(q - 1) + f_ovhd;
    if (allocated > available) return false;
  }
  return true;
}

FaultMarginReport pdp_fault_margin(const msg::MessageSet& set,
                                   const analysis::PdpParams& params,
                                   BitsPerSecond bw,
                                   const FaultBudget& budget) {
  FaultMarginReport report;
  report.recovery_per_fault =
      pdp_fault_outage(budget.kind, params, bw, budget.noise_duration);
  report.fault_free_schedulable =
      pdp_schedulable_with_faults(set, params, bw, budget, 0);
  if (report.fault_free_schedulable) {
    report.margin = largest_feasible(
        [&](int k) {
          return pdp_schedulable_with_faults(set, params, bw, budget, k);
        },
        hopeless_faults(set, report.recovery_per_fault));
  }
  count_margin_query(report);
  return report;
}

FaultMarginReport ttp_fault_margin(const msg::MessageSet& set,
                                   const analysis::TtpParams& params,
                                   BitsPerSecond bw, Seconds ttrt,
                                   const FaultBudget& budget) {
  TR_EXPECTS(!set.empty());
  if (ttrt <= 0.0) ttrt = analysis::select_ttrt(set, params.ring, bw);
  FaultMarginReport report;
  report.recovery_per_fault =
      ttp_fault_outage(budget.kind, params, bw, ttrt, budget.noise_duration);
  report.fault_free_schedulable =
      ttp_schedulable_with_faults(set, params, bw, ttrt, budget, 0);
  if (report.fault_free_schedulable) {
    report.margin = largest_feasible(
        [&](int k) {
          return ttp_schedulable_with_faults(set, params, bw, ttrt, budget, k);
        },
        hopeless_faults(set, report.recovery_per_fault));
  }
  count_margin_query(report);
  return report;
}

}  // namespace tokenring::fault
