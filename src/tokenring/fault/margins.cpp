#include "tokenring/fault/margins.hpp"

#include <cmath>
#include <functional>

#include "tokenring/analysis/fixed_priority.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::fault {

namespace {

/// One bump per margin query (not per binary-search probe), mirroring the
/// per-trial granularity used by the sim and Monte Carlo counters.
void count_margin_query(const FaultMarginReport& report) {
  static const obs::Counter queries("fault.margin_queries");
  static const obs::Counter infeasible("fault.margin_infeasible");
  queries.add();
  if (!report.fault_free_schedulable) infeasible.add();
}

/// Largest k in [0, inf) with test(k) true, given test(0) true and test
/// monotone (true up to some boundary, false after). `hi_bound` is any k
/// known to fail (outages exceeding the longest deadline always do).
int largest_feasible(const std::function<bool(int)>& test, int hi_bound) {
  int lo = 0;        // known feasible
  int hi = hi_bound; // known infeasible
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    if (test(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// A k past which no criterion can pass: the whole deadline window spent
/// recovering. +2 keeps the search bracket valid even at outage ~ 0 window.
int hopeless_faults(const msg::MessageSet& set, Seconds outage) {
  Seconds longest = 0.0;
  for (const auto& s : set.streams()) {
    longest = std::max(longest, s.deadline());
  }
  if (outage <= 0.0) return 2;
  return static_cast<int>(std::ceil(longest / outage)) + 2;
}

/// Exact RTA verdict over the whole set without building a per-probe
/// FpSetVerdict: same per-task optionals as response_time_analysis, early
/// exit on the first failure.
bool all_tasks_feasible(const std::vector<analysis::FpTask>& tasks,
                        Seconds blocking) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!analysis::response_time(tasks, i, blocking)) return false;
  }
  return true;
}

/// PDP probe with the augmented task list and per-fault recovery hoisted
/// out of the margin binary search: only the blocking term depends on k.
bool pdp_probe(const std::vector<analysis::FpTask>& tasks,
               Seconds base_blocking, Seconds recovery_with_repeat,
               int faults_per_period) {
  const Seconds blocking =
      base_blocking +
      static_cast<double>(faults_per_period) * recovery_with_repeat;
  return all_tasks_feasible(tasks, blocking);
}

/// Scale-invariant per-stream TTP state for the margin search: payload
/// times and deadlines don't change with k, only the debit does.
struct TtpProbeState {
  Seconds available = 0.0;
  Seconds frame_overhead = 0.0;
  Seconds ttrt = 0.0;
  Seconds recovery_with_rotation = 0.0;
  struct Station {
    Seconds deadline = 0.0;
    Seconds payload_time = 0.0;
  };
  std::vector<Station> stations;
};

TtpProbeState make_ttp_probe_state(const msg::MessageSet& set,
                                   const analysis::TtpParams& params,
                                   BitsPerSecond bw, Seconds ttrt,
                                   const FaultBudget& budget) {
  TtpProbeState st;
  st.ttrt = ttrt;
  // Each outage also wastes the rotation in progress when it strikes (the
  // aborted visit plus the fresh ramp-up), so charge one TTRT on top.
  st.recovery_with_rotation =
      ttp_fault_outage(budget.kind, params, bw, ttrt, budget.noise_duration) +
      ttrt;
  st.available = ttrt - analysis::ttp_lambda(params, bw);
  st.frame_overhead = params.frame.overhead_time(bw);
  st.stations.reserve(set.size());
  for (const auto& s : set.streams()) {
    st.stations.push_back({s.deadline(), s.payload_time(bw)});
  }
  return st;
}

bool ttp_probe(const TtpProbeState& st, int faults_per_period) {
  const Seconds debit =
      static_cast<double>(faults_per_period) * st.recovery_with_rotation;
  Seconds allocated = 0.0;
  for (const auto& s : st.stations) {
    const Seconds window = s.deadline - debit;
    if (window <= 0.0) return false;
    const auto q = static_cast<std::int64_t>(std::floor(window / st.ttrt));
    if (q < 2) return false;
    allocated += s.payload_time / static_cast<double>(q - 1) +
                 st.frame_overhead;
    if (allocated > st.available) return false;
  }
  return true;
}

}  // namespace

bool pdp_schedulable_with_faults(const msg::MessageSet& set,
                                 const analysis::PdpParams& params,
                                 BitsPerSecond bw, const FaultBudget& budget,
                                 int faults_per_period) {
  TR_EXPECTS(faults_per_period >= 0);
  TR_EXPECTS(bw > 0.0);
  const auto tasks = analysis::pdp_tasks(set, params, bw);
  // Beyond the recovery outage itself, a fault destroys the frame in
  // flight, whose partial transmission (up to one max frame) is repeated.
  const Seconds recovery =
      pdp_fault_outage(budget.kind, params, bw, budget.noise_duration) +
      params.frame.frame_time(bw);
  return pdp_probe(tasks, analysis::pdp_blocking(params, bw), recovery,
                   faults_per_period);
}

bool ttp_schedulable_with_faults(const msg::MessageSet& set,
                                 const analysis::TtpParams& params,
                                 BitsPerSecond bw, Seconds ttrt,
                                 const FaultBudget& budget,
                                 int faults_per_period) {
  TR_EXPECTS(faults_per_period >= 0);
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(!set.empty());
  if (ttrt <= 0.0) ttrt = analysis::select_ttrt(set, params.ring, bw);
  return ttp_probe(make_ttp_probe_state(set, params, bw, ttrt, budget),
                   faults_per_period);
}

FaultMarginReport pdp_fault_margin(const msg::MessageSet& set,
                                   const analysis::PdpParams& params,
                                   BitsPerSecond bw,
                                   const FaultBudget& budget) {
  FaultMarginReport report;
  report.recovery_per_fault =
      pdp_fault_outage(budget.kind, params, bw, budget.noise_duration);
  // Everything except the blocking term is independent of the fault count,
  // so the augmented task list is built once for the whole binary search
  // instead of once per probe.
  const auto tasks = analysis::pdp_tasks(set, params, bw);
  const Seconds base_blocking = analysis::pdp_blocking(params, bw);
  const Seconds recovery =
      report.recovery_per_fault + params.frame.frame_time(bw);
  report.fault_free_schedulable = pdp_probe(tasks, base_blocking, recovery, 0);
  if (report.fault_free_schedulable) {
    report.margin = largest_feasible(
        [&](int k) { return pdp_probe(tasks, base_blocking, recovery, k); },
        hopeless_faults(set, report.recovery_per_fault));
  }
  count_margin_query(report);
  return report;
}

FaultMarginReport ttp_fault_margin(const msg::MessageSet& set,
                                   const analysis::TtpParams& params,
                                   BitsPerSecond bw, Seconds ttrt,
                                   const FaultBudget& budget) {
  TR_EXPECTS(!set.empty());
  TR_EXPECTS(bw > 0.0);
  if (ttrt <= 0.0) ttrt = analysis::select_ttrt(set, params.ring, bw);
  FaultMarginReport report;
  report.recovery_per_fault =
      ttp_fault_outage(budget.kind, params, bw, ttrt, budget.noise_duration);
  // Payload times, deadlines and the Theorem 5.1 constants are hoisted
  // once; each probe only re-derives the k-dependent visit counts.
  const TtpProbeState state =
      make_ttp_probe_state(set, params, bw, ttrt, budget);
  report.fault_free_schedulable = ttp_probe(state, 0);
  if (report.fault_free_schedulable) {
    report.margin = largest_feasible(
        [&](int k) { return ttp_probe(state, k); },
        hopeless_faults(set, report.recovery_per_fault));
  }
  count_margin_query(report);
  return report;
}

}  // namespace tokenring::fault
