// Fault plans: what goes wrong on the ring, and when.
//
// A FaultPlan is the single description of every failure a simulation run
// will experience. It can be scripted event by event (tests, drills) or
// generated randomly from per-kind rates under a deterministic seed stream
// (Monte Carlo sweeps): plan generation happens entirely up front from
// (seed, kind) through exec/seed_stream, so the same plan — and therefore
// bit-identical simulation results — comes out for any worker-thread count.
//
// The plan is protocol-agnostic: it says *what* happens to the medium
// (token destroyed, frame corrupted, noise burst, station crash/rejoin,
// duplicate token); each simulator applies its protocol's recovery
// machinery (802.5 active monitor / beacon vs FDDI claim process, see
// recovery.hpp) to decide how long the outage lasts.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tokenring/common/units.hpp"

namespace tokenring::fault {

/// What kind of failure strikes the ring.
enum class FaultKind {
  /// The circulating token (or the frame occupying the medium) is
  /// destroyed. 802.5: active-monitor purge; FDDI: TRT double-expiry
  /// detection plus the claim process.
  kTokenLoss,
  /// The frame in flight is damaged (FCS failure) and must be
  /// retransmitted; the token survives. No effect on an idle medium.
  kFrameCorruption,
  /// Transient noise makes the medium unusable for `duration` seconds,
  /// destroying whatever was in flight; recovery starts when the noise
  /// clears.
  kNoiseBurst,
  /// Station `station` drops off the ring: its streams stop, pending
  /// messages are lost, and the ring reconfigures around the gap (ring
  /// latency and Theta shrink). 802.5: beacon process; FDDI: claim.
  kStationCrash,
  /// Station `station` re-inserts into the ring (Theta grows back); the
  /// insertion itself disrupts the ring for one recovery.
  kStationRejoin,
  /// A second token appears (e.g. a station erroneously issued one). The
  /// protocol detects and resolves it down to a single token.
  kDuplicateToken,
};

/// All kinds, in declaration order (sweep helpers iterate this).
inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kTokenLoss,      FaultKind::kFrameCorruption,
    FaultKind::kNoiseBurst,     FaultKind::kStationCrash,
    FaultKind::kStationRejoin,  FaultKind::kDuplicateToken,
};

/// Display name ("token_loss", "frame_corruption", ...).
const char* to_string(FaultKind kind);

/// Inverse of to_string; nullopt for an unknown name.
std::optional<FaultKind> parse_fault_kind(const std::string& name);

/// One scheduled failure.
struct FaultEvent {
  Seconds time = 0.0;
  FaultKind kind = FaultKind::kTokenLoss;
  /// Target station for kStationCrash / kStationRejoin; ignored (-1)
  /// otherwise.
  int station = -1;
  /// Noise length for kNoiseBurst; ignored (0) otherwise.
  Seconds duration = 0.0;
};

/// Mean fault arrivals per second for random plan generation; 0 disables a
/// kind. Crashes are always paired with a rejoin `crash_downtime` later.
struct FaultRates {
  double token_loss = 0.0;
  double frame_corruption = 0.0;
  double noise_burst = 0.0;
  double station_crash = 0.0;
  double duplicate_token = 0.0;
  /// Length of each generated noise burst [s].
  Seconds noise_duration = 0.0;
  /// Outage between a generated crash and its rejoin [s].
  Seconds crash_downtime = 0.0;
};

/// A deterministic schedule of faults for one simulation run.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Scripted additions (chainable through repeated calls).
  void add(FaultEvent event);
  void add_token_loss(Seconds at);
  void add_frame_corruption(Seconds at);
  void add_noise_burst(Seconds at, Seconds duration);
  /// Adds the crash and, when `downtime` > 0, the matching rejoin.
  void add_station_crash(Seconds at, int station, Seconds downtime = 0.0);
  void add_station_rejoin(Seconds at, int station);
  void add_duplicate_token(Seconds at);

  /// Poisson-process plan over [0, 0.9*horizon] (late faults have no time
  /// to show consequences). Each kind draws from its own seed sub-stream
  /// derived from (seed, kind index), so adding one kind never perturbs
  /// another's schedule. Crash targets are uniform over [0, num_stations).
  static FaultPlan random(const FaultRates& rates, Seconds horizon,
                          std::uint64_t seed, int num_stations);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Events sorted by time (stable for equal times).
  std::vector<FaultEvent> sorted_events() const;

  /// Throws PreconditionError on negative times/durations, or a crash or
  /// rejoin targeting a station outside [0, num_stations).
  void validate(int num_stations) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace tokenring::fault
