// Fault-aware schedulability: Theorems 4.1 / 5.1 with a recovery budget.
//
// The paper's criteria assume a fault-free ring. Here each criterion is
// charged for up to k faults per period (equivalently: per deadline
// window), each costing the protocol's worst-case recovery outage r for
// the chosen fault kind (recovery.hpp):
//
//  * PDP: during an outage the medium serves nobody — at any priority this
//    is exactly non-preemptable blocking, so the Lemma 4.1 term grows to
//    B' = B + k*(r + F), the extra max-frame time F covering the partial
//    transmission the fault destroyed (it is repeated in full). This is
//    conservative: it assumes every window of every stream eats all k
//    recoveries in full.
//
//  * TTP: an outage freezes token rotation, so a window of length D_i
//    only guarantees the token visits of a window of length
//    D_i - k*(r + TTRT) — the extra TTRT per fault covers the rotation in
//    progress when the fault struck, which delivers nothing. The
//    local-allocation criterion is re-derived with the debited window:
//        q_i(k) = floor((D_i - k*(r + TTRT)) / TTRT), q_i(k) >= 2 required,
//        sum_i C_i/(q_i(k)-1) + n*F_ovhd <= TTRT - Lambda.
//    (The h_i the stations actually configure stay the fault-free ones —
//    the debit only tightens the visit-count guarantee, which is where
//    outages bite. Charging allocations at q_i(k) is conservative on top:
//    real visits still deliver the fault-free h_i.)
//
// The *fault resilience margin* of a message set is the largest k for
// which the fault-aware criterion still passes — "how many token losses
// per period can this configuration absorb before the guarantee breaks".

#pragma once

#include <cstdint>

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/fault/plan.hpp"
#include "tokenring/fault/recovery.hpp"

namespace tokenring::fault {

/// Which fault the per-period budget charges, and how severe it is.
struct FaultBudget {
  FaultKind kind = FaultKind::kTokenLoss;
  /// Noise length used when kind == kNoiseBurst.
  Seconds noise_duration = 0.0;
};

/// Resilience verdict for one message set under one protocol.
struct FaultMarginReport {
  /// Verdict of the fault-free criterion (k = 0).
  bool fault_free_schedulable = false;
  /// Worst-case recovery outage per fault [s] — the time the ring is dead
  /// (what the simulators stall for). The criteria charge an additional
  /// boundary term on top (one max frame for PDP, one TTRT for TTP).
  Seconds recovery_per_fault = 0.0;
  /// Largest k with the fault-aware criterion passing; -1 when even the
  /// fault-free criterion fails.
  int margin = -1;
};

/// Theorem 4.1 with k faults per period folded into the blocking term.
bool pdp_schedulable_with_faults(const msg::MessageSet& set,
                                 const analysis::PdpParams& params,
                                 BitsPerSecond bw, const FaultBudget& budget,
                                 int faults_per_period);

/// Theorem 5.1 with every deadline window debited by k recovery outages.
/// `ttrt` <= 0 selects the paper's TTRT rule.
bool ttp_schedulable_with_faults(const msg::MessageSet& set,
                                 const analysis::TtpParams& params,
                                 BitsPerSecond bw, Seconds ttrt,
                                 const FaultBudget& budget,
                                 int faults_per_period);

/// Max faults per period tolerated by the PDP criterion (binary search on
/// the monotone fault-aware test).
FaultMarginReport pdp_fault_margin(const msg::MessageSet& set,
                                   const analysis::PdpParams& params,
                                   BitsPerSecond bw,
                                   const FaultBudget& budget = {});

/// Max faults per period tolerated by the TTP criterion. `ttrt` <= 0
/// selects the paper's TTRT rule.
FaultMarginReport ttp_fault_margin(const msg::MessageSet& set,
                                   const analysis::TtpParams& params,
                                   BitsPerSecond bw, Seconds ttrt = 0.0,
                                   const FaultBudget& budget = {});

}  // namespace tokenring::fault
