// Protocol selection advisor — the paper's design-stage use case.
//
// "At the design stage, when faced with a choice between alternative
// protocols, and in the absence of a detailed knowledge of the message
// sets, it is more appropriate to base the selection on the average case
// performance" (Section 2). Given a traffic profile (station count, period
// statistics) and a bandwidth, the advisor estimates the average breakdown
// utilization of all three implementations and recommends the winner with
// its margin.

#pragma once

#include <cstdint>

#include "tokenring/experiments/setup.hpp"
#include "tokenring/planner/planner.hpp"

namespace tokenring::planner {

/// Traffic profile for the advisor; the subset of PaperSetup a designer
/// would actually know up front.
struct TrafficProfile {
  int num_stations = 100;
  double station_spacing_m = 100.0;
  Seconds mean_period = milliseconds(100);
  double period_ratio = 10.0;

  experiments::PaperSetup to_setup() const;
};

/// Per-protocol estimate and the recommendation.
struct Recommendation {
  Protocol best{};
  double ieee8025 = 0.0;
  double modified8025 = 0.0;
  double fddi = 0.0;
  /// best / second-best mean breakdown utilization (1.0 = dead heat).
  double margin = 1.0;
  /// Mean fault resilience margin (fault/margins.hpp: max token losses per
  /// period the fault-aware criterion still absorbs) with each sampled set
  /// scaled to 70% of its own schedulability boundary. Sets infeasible
  /// even at that load contribute -1, matching FaultMarginReport.
  double modified8025_resilience = 0.0;
  double fddi_resilience = 0.0;

  /// Estimate for one protocol (indexing helper for reports).
  double estimate(Protocol protocol) const;
};

/// Estimate breakdown utilization for each protocol at `bandwidth` via
/// Monte Carlo (`num_sets` random sets, deterministic in `seed`) and pick
/// the winner, running the trials on `executor`. Saturation searches run
/// in lockstep SoA batches of `batch` trials (breakdown/monte_carlo.hpp);
/// the recommendation is the same for every (jobs, batch) combination.
Recommendation recommend_protocol(const TrafficProfile& profile,
                                  BitsPerSecond bandwidth,
                                  std::size_t num_sets,
                                  std::uint64_t seed,
                                  const exec::Executor& executor,
                                  std::size_t batch = 64);

/// Convenience overload running inline on the calling thread.
Recommendation recommend_protocol(const TrafficProfile& profile,
                                  BitsPerSecond bandwidth,
                                  std::size_t num_sets = 50,
                                  std::uint64_t seed = 1,
                                  std::size_t batch = 64);

}  // namespace tokenring::planner
