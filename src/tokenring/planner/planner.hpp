// Online admission control for real-time token rings.
//
// This is the "network designer / runtime manager" face of the paper's
// schedulability criteria: an AdmissionController holds the currently
// guaranteed stream set for one ring and answers, in microseconds (see
// bench/micro_schedulability), whether one more synchronous stream can be
// admitted without endangering existing guarantees. Rejected streams leave
// the accepted set untouched.

#pragma once

#include <optional>
#include <string>

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/msg/message_set.hpp"

namespace tokenring::planner {

/// The three protocol implementations the paper compares.
enum class Protocol {
  kIeee8025,
  kModified8025,
  kFddi,
};

/// Display name, e.g. "FDDI timed token".
const char* to_string(Protocol protocol);

/// Static ring description for a controller. `ring`/`frame` defaults follow
/// the protocol family's standard constants when constructed via
/// `default_config`.
struct PlannerConfig {
  Protocol protocol = Protocol::kFddi;
  BitsPerSecond bandwidth = mbps(100);
  net::RingParams ring;
  net::FrameFormat frame;
  /// Asynchronous frame geometry (TTP overrun term only).
  net::FrameFormat async_frame;

  void validate() const;
};

/// Standard-conformant config for a protocol at a bandwidth.
PlannerConfig default_config(Protocol protocol, BitsPerSecond bandwidth,
                             int num_stations = 100);

/// Outcome of an admission attempt.
struct AdmissionDecision {
  bool admitted = false;
  /// Synchronous utilization of the accepted set after the decision.
  double utilization = 0.0;
  /// Human-readable grounds ("schedulable", "station occupied", ...).
  std::string reason;
};

/// Maintains the guaranteed stream set for one ring.
class AdmissionController {
 public:
  explicit AdmissionController(PlannerConfig config);

  const PlannerConfig& config() const { return config_; }
  const msg::MessageSet& admitted() const { return admitted_; }
  /// Synchronous utilization of the accepted set.
  double utilization() const;

  /// Admit `stream` iff the resulting set stays schedulable under the
  /// configured protocol. One stream per station (the paper's model).
  AdmissionDecision try_admit(const msg::SyncStream& stream);

  /// Withdraw the stream at `station`. Returns false if none is admitted
  /// there.
  bool remove(int station);

  /// Is an arbitrary set schedulable under this controller's protocol?
  bool feasible(const msg::MessageSet& set) const;

  /// Largest payload [bits] a new stream with the given period could carry
  /// at `station` while keeping the set schedulable; nullopt if the station
  /// is occupied or even a zero-payload stream does not fit. Binary search
  /// over the (monotone) criterion, `tolerance_bits` wide.
  std::optional<Bits> headroom_bits(Seconds period, int station,
                                    Bits tolerance_bits = 1.0) const;

 private:
  PlannerConfig config_;
  msg::MessageSet admitted_;
};

}  // namespace tokenring::planner
