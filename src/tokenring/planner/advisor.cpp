#include "tokenring/planner/advisor.hpp"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "tokenring/analysis/kernels.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/exec/seed_stream.hpp"
#include "tokenring/fault/margins.hpp"

namespace tokenring::planner {

namespace {

/// Load (relative to each set's own boundary) at which the advisor probes
/// fault resilience. At the boundary itself the margin is 0 by definition;
/// 70% is the load the fault-tolerance experiments use.
constexpr double kResilienceLoad = 0.7;

struct ResilienceSample {
  double pdp = 0.0;
  double fddi = 0.0;
};

/// Mean token-loss resilience margins over `num_sets` sets drawn from
/// per-trial seed streams (deterministic for any executor jobs count). The
/// boundary searches run in lockstep SoA batches of `batch` lanes; groups
/// map to the executor and their per-trial samples fold in trial order, so
/// the means are bit-identical for every (jobs, batch) combination.
ResilienceSample estimate_resilience(const experiments::PaperSetup& setup,
                                     BitsPerSecond bw, std::size_t num_sets,
                                     std::uint64_t seed,
                                     const exec::Executor& executor,
                                     std::size_t batch) {
  TR_EXPECTS(batch >= 1);
  const auto pdp_params =
      setup.pdp_params(analysis::PdpVariant::kModified8025);
  const auto ttp_params = setup.ttp_params();
  const std::size_t groups = (num_sets + batch - 1) / batch;
  const auto sample_group = [&](std::size_t g) {
    const std::size_t lo = g * batch;
    const std::size_t count = std::min(batch, num_sets - lo);
    msg::MessageSetGenerator generator(setup.generator_config());
    std::vector<msg::MessageSet> bases;
    bases.reserve(count);
    for (std::size_t j = 0; j < count; ++j) {
      Rng rng = exec::make_trial_rng(seed, lo + j);
      bases.push_back(generator.generate(rng));
    }
    const analysis::PdpBatchKernel pdp_kernel(bases, pdp_params, bw);
    const auto pdp_sats = breakdown::find_saturation_batch(
        bases,
        [&pdp_kernel](std::span<const double> scales,
                      std::span<const std::uint8_t> active,
                      std::span<std::uint8_t> verdicts) {
          pdp_kernel.evaluate(scales, active, verdicts);
        },
        bw);
    const analysis::TtpBatchKernel ttp_kernel(bases, ttp_params, bw);
    const auto ttp_sats = breakdown::find_saturation_batch(
        bases,
        [&ttp_kernel](std::span<const double> scales,
                      std::span<const std::uint8_t> active,
                      std::span<std::uint8_t> verdicts) {
          ttp_kernel.evaluate(scales, active, verdicts);
        },
        bw);
    std::vector<ResilienceSample> samples(count);
    for (std::size_t j = 0; j < count; ++j) {
      ResilienceSample s{-1.0, -1.0};
      if (pdp_sats[j].found) {
        const auto set =
            bases[j].scaled(pdp_sats[j].critical_scale * kResilienceLoad);
        s.pdp = fault::pdp_fault_margin(set, pdp_params, bw).margin;
      }
      if (ttp_sats[j].found) {
        const auto set =
            bases[j].scaled(ttp_sats[j].critical_scale * kResilienceLoad);
        s.fddi = fault::ttp_fault_margin(set, ttp_params, bw).margin;
      }
      samples[j] = s;
    }
    return samples;
  };
  const auto total = exec::map_reduce(
      executor, groups, ResilienceSample{}, sample_group,
      [](ResilienceSample acc, std::vector<ResilienceSample> samples) {
        // Per-trial fold in trial order: the same += sequence as a scalar
        // per-set sweep, whatever the group size.
        for (const ResilienceSample& s : samples) {
          acc.pdp += s.pdp;
          acc.fddi += s.fddi;
        }
        return acc;
      });
  const double n = static_cast<double>(num_sets);
  return {total.pdp / n, total.fddi / n};
}

}  // namespace

experiments::PaperSetup TrafficProfile::to_setup() const {
  experiments::PaperSetup setup;
  setup.num_stations = num_stations;
  setup.station_spacing_m = station_spacing_m;
  setup.mean_period = mean_period;
  setup.period_ratio = period_ratio;
  return setup;
}

double Recommendation::estimate(Protocol protocol) const {
  switch (protocol) {
    case Protocol::kIeee8025:
      return ieee8025;
    case Protocol::kModified8025:
      return modified8025;
    case Protocol::kFddi:
      return fddi;
  }
  return 0.0;
}

Recommendation recommend_protocol(const TrafficProfile& profile,
                                  BitsPerSecond bandwidth,
                                  std::size_t num_sets, std::uint64_t seed,
                                  const exec::Executor& executor,
                                  std::size_t batch) {
  TR_EXPECTS(bandwidth > 0.0);
  TR_EXPECTS(num_sets >= 1);
  TR_EXPECTS(batch >= 1);

  const auto setup = profile.to_setup();
  Recommendation rec;
  rec.ieee8025 =
      experiments::estimate_point(
          setup,
          setup.pdp_batch_kernel_factory(analysis::PdpVariant::kStandard8025,
                                         bandwidth),
          bandwidth, num_sets, seed, executor, batch)
          .mean();
  rec.modified8025 =
      experiments::estimate_point(
          setup,
          setup.pdp_batch_kernel_factory(analysis::PdpVariant::kModified8025,
                                         bandwidth),
          bandwidth, num_sets, seed, executor, batch)
          .mean();
  rec.fddi = experiments::estimate_point(
                 setup, setup.ttp_batch_kernel_factory(bandwidth), bandwidth,
                 num_sets, seed, executor, batch)
                 .mean();

  const auto resilience =
      estimate_resilience(setup, bandwidth, num_sets, seed, executor, batch);
  rec.modified8025_resilience = resilience.pdp;
  rec.fddi_resilience = resilience.fddi;

  struct Entry {
    Protocol protocol;
    double value;
  };
  Entry entries[] = {{Protocol::kIeee8025, rec.ieee8025},
                     {Protocol::kModified8025, rec.modified8025},
                     {Protocol::kFddi, rec.fddi}};
  std::sort(std::begin(entries), std::end(entries),
            [](const Entry& a, const Entry& b) { return a.value > b.value; });
  rec.best = entries[0].protocol;
  rec.margin = entries[1].value > 0.0 ? entries[0].value / entries[1].value
                                      : (entries[0].value > 0.0 ? 1e9 : 1.0);
  return rec;
}

Recommendation recommend_protocol(const TrafficProfile& profile,
                                  BitsPerSecond bandwidth,
                                  std::size_t num_sets, std::uint64_t seed,
                                  std::size_t batch) {
  const exec::Executor inline_executor(1);
  return recommend_protocol(profile, bandwidth, num_sets, seed,
                            inline_executor, batch);
}

}  // namespace tokenring::planner
