#include "tokenring/planner/advisor.hpp"

#include <algorithm>
#include <utility>

#include "tokenring/analysis/kernels.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/exec/seed_stream.hpp"
#include "tokenring/fault/margins.hpp"

namespace tokenring::planner {

namespace {

/// Load (relative to each set's own boundary) at which the advisor probes
/// fault resilience. At the boundary itself the margin is 0 by definition;
/// 70% is the load the fault-tolerance experiments use.
constexpr double kResilienceLoad = 0.7;

struct ResilienceSample {
  double pdp = 0.0;
  double fddi = 0.0;
};

/// Mean token-loss resilience margins over `num_sets` sets drawn from
/// per-trial seed streams (deterministic for any executor jobs count).
ResilienceSample estimate_resilience(const experiments::PaperSetup& setup,
                                     BitsPerSecond bw, std::size_t num_sets,
                                     std::uint64_t seed,
                                     const exec::Executor& executor) {
  const auto pdp_params =
      setup.pdp_params(analysis::PdpVariant::kModified8025);
  const auto ttp_params = setup.ttp_params();
  const auto sample_one = [&](std::size_t i) {
    msg::MessageSetGenerator generator(setup.generator_config());
    Rng rng = exec::make_trial_rng(seed, i);
    const auto base = generator.generate(rng);
    ResilienceSample s{-1.0, -1.0};
    {
      const auto sat = breakdown::find_saturation_scaled(
          base, analysis::PdpScaleKernel(base, pdp_params, bw), bw);
      if (sat.found) {
        const auto set = base.scaled(sat.critical_scale * kResilienceLoad);
        s.pdp = fault::pdp_fault_margin(set, pdp_params, bw).margin;
      }
    }
    {
      const auto sat = breakdown::find_saturation_scaled(
          base, analysis::TtpScaleKernel(base, ttp_params, bw), bw);
      if (sat.found) {
        const auto set = base.scaled(sat.critical_scale * kResilienceLoad);
        s.fddi = fault::ttp_fault_margin(set, ttp_params, bw).margin;
      }
    }
    return s;
  };
  const auto total = exec::map_reduce(
      executor, num_sets, ResilienceSample{},
      sample_one, [](ResilienceSample acc, ResilienceSample s) {
        acc.pdp += s.pdp;
        acc.fddi += s.fddi;
        return acc;
      });
  const double n = static_cast<double>(num_sets);
  return {total.pdp / n, total.fddi / n};
}

}  // namespace

experiments::PaperSetup TrafficProfile::to_setup() const {
  experiments::PaperSetup setup;
  setup.num_stations = num_stations;
  setup.station_spacing_m = station_spacing_m;
  setup.mean_period = mean_period;
  setup.period_ratio = period_ratio;
  return setup;
}

double Recommendation::estimate(Protocol protocol) const {
  switch (protocol) {
    case Protocol::kIeee8025:
      return ieee8025;
    case Protocol::kModified8025:
      return modified8025;
    case Protocol::kFddi:
      return fddi;
  }
  return 0.0;
}

Recommendation recommend_protocol(const TrafficProfile& profile,
                                  BitsPerSecond bandwidth,
                                  std::size_t num_sets, std::uint64_t seed,
                                  const exec::Executor& executor) {
  TR_EXPECTS(bandwidth > 0.0);
  TR_EXPECTS(num_sets >= 1);

  const auto setup = profile.to_setup();
  Recommendation rec;
  rec.ieee8025 =
      experiments::estimate_point(
          setup,
          setup.pdp_kernel_factory(analysis::PdpVariant::kStandard8025, bandwidth),
          bandwidth, num_sets, seed, executor)
          .mean();
  rec.modified8025 =
      experiments::estimate_point(
          setup,
          setup.pdp_kernel_factory(analysis::PdpVariant::kModified8025, bandwidth),
          bandwidth, num_sets, seed, executor)
          .mean();
  rec.fddi = experiments::estimate_point(setup, setup.ttp_kernel_factory(bandwidth),
                                         bandwidth, num_sets, seed, executor)
                 .mean();

  const auto resilience =
      estimate_resilience(setup, bandwidth, num_sets, seed, executor);
  rec.modified8025_resilience = resilience.pdp;
  rec.fddi_resilience = resilience.fddi;

  struct Entry {
    Protocol protocol;
    double value;
  };
  Entry entries[] = {{Protocol::kIeee8025, rec.ieee8025},
                     {Protocol::kModified8025, rec.modified8025},
                     {Protocol::kFddi, rec.fddi}};
  std::sort(std::begin(entries), std::end(entries),
            [](const Entry& a, const Entry& b) { return a.value > b.value; });
  rec.best = entries[0].protocol;
  rec.margin = entries[1].value > 0.0 ? entries[0].value / entries[1].value
                                      : (entries[0].value > 0.0 ? 1e9 : 1.0);
  return rec;
}

Recommendation recommend_protocol(const TrafficProfile& profile,
                                  BitsPerSecond bandwidth,
                                  std::size_t num_sets, std::uint64_t seed) {
  const exec::Executor inline_executor(1);
  return recommend_protocol(profile, bandwidth, num_sets, seed,
                            inline_executor);
}

}  // namespace tokenring::planner
