#include "tokenring/planner/advisor.hpp"

#include <algorithm>

#include "tokenring/common/checks.hpp"

namespace tokenring::planner {

experiments::PaperSetup TrafficProfile::to_setup() const {
  experiments::PaperSetup setup;
  setup.num_stations = num_stations;
  setup.station_spacing_m = station_spacing_m;
  setup.mean_period = mean_period;
  setup.period_ratio = period_ratio;
  return setup;
}

double Recommendation::estimate(Protocol protocol) const {
  switch (protocol) {
    case Protocol::kIeee8025:
      return ieee8025;
    case Protocol::kModified8025:
      return modified8025;
    case Protocol::kFddi:
      return fddi;
  }
  return 0.0;
}

Recommendation recommend_protocol(const TrafficProfile& profile,
                                  BitsPerSecond bandwidth,
                                  std::size_t num_sets, std::uint64_t seed,
                                  const exec::Executor& executor) {
  TR_EXPECTS(bandwidth > 0.0);
  TR_EXPECTS(num_sets >= 1);

  const auto setup = profile.to_setup();
  Recommendation rec;
  rec.ieee8025 =
      experiments::estimate_point(
          setup,
          setup.pdp_predicate(analysis::PdpVariant::kStandard8025, bandwidth),
          bandwidth, num_sets, seed, executor)
          .mean();
  rec.modified8025 =
      experiments::estimate_point(
          setup,
          setup.pdp_predicate(analysis::PdpVariant::kModified8025, bandwidth),
          bandwidth, num_sets, seed, executor)
          .mean();
  rec.fddi = experiments::estimate_point(setup, setup.ttp_predicate(bandwidth),
                                         bandwidth, num_sets, seed, executor)
                 .mean();

  struct Entry {
    Protocol protocol;
    double value;
  };
  Entry entries[] = {{Protocol::kIeee8025, rec.ieee8025},
                     {Protocol::kModified8025, rec.modified8025},
                     {Protocol::kFddi, rec.fddi}};
  std::sort(std::begin(entries), std::end(entries),
            [](const Entry& a, const Entry& b) { return a.value > b.value; });
  rec.best = entries[0].protocol;
  rec.margin = entries[1].value > 0.0 ? entries[0].value / entries[1].value
                                      : (entries[0].value > 0.0 ? 1e9 : 1.0);
  return rec;
}

Recommendation recommend_protocol(const TrafficProfile& profile,
                                  BitsPerSecond bandwidth,
                                  std::size_t num_sets, std::uint64_t seed) {
  const exec::Executor inline_executor(1);
  return recommend_protocol(profile, bandwidth, num_sets, seed,
                            inline_executor);
}

}  // namespace tokenring::planner
