#include "tokenring/planner/planner.hpp"

#include <algorithm>

#include "tokenring/common/checks.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::planner {

const char* to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kIeee8025:
      return "IEEE 802.5";
    case Protocol::kModified8025:
      return "Modified IEEE 802.5";
    case Protocol::kFddi:
      return "FDDI timed token";
  }
  return "?";
}

void PlannerConfig::validate() const {
  TR_EXPECTS(bandwidth > 0.0);
  ring.validate();
  frame.validate();
  async_frame.validate();
}

PlannerConfig default_config(Protocol protocol, BitsPerSecond bandwidth,
                             int num_stations) {
  PlannerConfig cfg;
  cfg.protocol = protocol;
  cfg.bandwidth = bandwidth;
  cfg.ring = protocol == Protocol::kFddi ? net::fddi_ring(num_stations)
                                         : net::ieee8025_ring(num_stations);
  cfg.frame = net::paper_frame_format();
  cfg.async_frame = net::paper_frame_format();
  return cfg;
}

AdmissionController::AdmissionController(PlannerConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

double AdmissionController::utilization() const {
  return admitted_.utilization(config_.bandwidth);
}

bool AdmissionController::feasible(const msg::MessageSet& set) const {
  if (set.empty()) return true;
  switch (config_.protocol) {
    case Protocol::kIeee8025:
    case Protocol::kModified8025: {
      analysis::PdpParams p;
      p.ring = config_.ring;
      p.frame = config_.frame;
      p.variant = config_.protocol == Protocol::kIeee8025
                      ? analysis::PdpVariant::kStandard8025
                      : analysis::PdpVariant::kModified8025;
      return analysis::pdp_feasible(set, p, config_.bandwidth);
    }
    case Protocol::kFddi: {
      analysis::TtpParams p;
      p.ring = config_.ring;
      p.frame = config_.frame;
      p.async_frame = config_.async_frame;
      return analysis::ttp_feasible(set, p, config_.bandwidth);
    }
  }
  return false;
}

AdmissionDecision AdmissionController::try_admit(const msg::SyncStream& stream) {
  stream.validate();
  AdmissionDecision decision;

  if (stream.station >= config_.ring.num_stations) {
    decision.utilization = utilization();
    decision.reason = "station index outside the ring";
    return decision;
  }
  const bool occupied = std::any_of(
      admitted_.streams().begin(), admitted_.streams().end(),
      [&](const msg::SyncStream& s) { return s.station == stream.station; });
  if (occupied) {
    decision.utilization = utilization();
    decision.reason = "station already carries a synchronous stream";
    return decision;
  }

  msg::MessageSet candidate = admitted_;
  candidate.add(stream);
  if (!feasible(candidate)) {
    decision.utilization = utilization();
    decision.reason = "admitting the stream would violate the " +
                      std::string(to_string(config_.protocol)) +
                      " schedulability criterion";
    return decision;
  }

  admitted_ = std::move(candidate);
  decision.admitted = true;
  decision.utilization = utilization();
  decision.reason = "schedulable";
  return decision;
}

bool AdmissionController::remove(int station) {
  std::vector<msg::SyncStream> remaining;
  bool removed = false;
  for (const auto& s : admitted_.streams()) {
    if (s.station == station && !removed) {
      removed = true;
      continue;
    }
    remaining.push_back(s);
  }
  if (removed) admitted_ = msg::MessageSet(std::move(remaining));
  return removed;
}

std::optional<Bits> AdmissionController::headroom_bits(
    Seconds period, int station, Bits tolerance_bits) const {
  TR_EXPECTS(period > 0.0);
  TR_EXPECTS(tolerance_bits > 0.0);
  if (station < 0 || station >= config_.ring.num_stations) return std::nullopt;
  const bool occupied = std::any_of(
      admitted_.streams().begin(), admitted_.streams().end(),
      [&](const msg::SyncStream& s) { return s.station == station; });
  if (occupied) return std::nullopt;

  const auto fits = [&](Bits payload) {
    msg::MessageSet candidate = admitted_;
    candidate.add(msg::SyncStream{period, payload, station});
    return feasible(candidate);
  };
  if (!fits(0.0)) return std::nullopt;

  // Exponential bracket, then bisection (the criteria are monotone in the
  // new stream's payload).
  Bits lo = 0.0;
  Bits hi = 1'000.0;
  while (fits(hi)) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e15) return lo;  // practically unbounded
  }
  while (hi - lo > tolerance_bits) {
    const Bits mid = 0.5 * (lo + hi);
    (fits(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace tokenring::planner
