#include "tokenring/experiments/setup.hpp"

#include <memory>

#include "tokenring/analysis/kernels.hpp"
#include "tokenring/analysis/ttrt.hpp"

namespace tokenring::experiments {

msg::GeneratorConfig PaperSetup::generator_config() const {
  msg::GeneratorConfig g;
  g.num_streams = num_stations;
  g.mean_period = mean_period;
  g.period_ratio = period_ratio;
  g.period_dist = period_dist;
  g.payload_dist = payload_dist;
  g.deadline_fraction = deadline_fraction;
  return g;
}

analysis::PdpParams PaperSetup::pdp_params(analysis::PdpVariant variant) const {
  analysis::PdpParams p;
  p.ring = net::ieee8025_ring(num_stations, station_spacing_m);
  p.frame = net::frame_format_with_payload_bytes(frame_payload_bytes);
  p.variant = variant;
  return p;
}

analysis::TtpParams PaperSetup::ttp_params() const {
  analysis::TtpParams p;
  p.ring = net::fddi_ring(num_stations, station_spacing_m);
  p.frame = net::frame_format_with_payload_bytes(frame_payload_bytes);
  p.async_frame = net::frame_format_with_payload_bytes(frame_payload_bytes);
  return p;
}

breakdown::SchedulablePredicate PaperSetup::pdp_predicate(
    analysis::PdpVariant variant, BitsPerSecond bw) const {
  return [params = pdp_params(variant), bw](const msg::MessageSet& set) {
    return analysis::pdp_feasible(set, params, bw);
  };
}

breakdown::SchedulablePredicate PaperSetup::ttp_predicate(
    BitsPerSecond bw) const {
  return [params = ttp_params(), bw](const msg::MessageSet& set) {
    return analysis::ttp_feasible(set, params, bw);
  };
}

breakdown::SchedulablePredicate PaperSetup::ttp_predicate_at(
    BitsPerSecond bw, Seconds ttrt) const {
  return [params = ttp_params(), bw, ttrt](const msg::MessageSet& set) {
    return analysis::ttp_feasible_at(set, params, bw, ttrt);
  };
}

breakdown::ScaleKernelFactory PaperSetup::pdp_kernel_factory(
    analysis::PdpVariant variant, BitsPerSecond bw) const {
  return [params = pdp_params(variant), bw](const msg::MessageSet& base) {
    // The kernel carries mutable per-trial state (task buffer, failed-task
    // hint), so each trial gets its own heap instance shared into the
    // returned std::function; the factory itself stays const and
    // thread-safe.
    auto kernel = std::make_shared<analysis::PdpScaleKernel>(base, params, bw);
    return breakdown::ScaleKernel(
        [kernel](double scale) { return (*kernel)(scale); });
  };
}

breakdown::ScaleKernelFactory PaperSetup::ttp_kernel_factory(
    BitsPerSecond bw) const {
  return [params = ttp_params(), bw](const msg::MessageSet& base) {
    return breakdown::ScaleKernel(
        analysis::TtpScaleKernel(base, params, bw));
  };
}

breakdown::ScaleKernelFactory PaperSetup::ttp_kernel_factory_at(
    BitsPerSecond bw, Seconds ttrt) const {
  return [params = ttp_params(), bw, ttrt](const msg::MessageSet& base) {
    return breakdown::ScaleKernel(
        analysis::TtpScaleKernel(base, params, bw, ttrt));
  };
}

namespace {

/// Wrap one batch kernel instance (which carries mutable scratch state)
/// into the std::function form, sharing it on the heap — the same pattern
/// the scalar PDP factory uses.
template <typename Kernel>
breakdown::BatchScaleKernel wrap_batch_kernel(std::shared_ptr<Kernel> kernel) {
  return [kernel = std::move(kernel)](std::span<const double> scales,
                                      std::span<const std::uint8_t> active,
                                      std::span<std::uint8_t> verdicts) {
    kernel->evaluate(scales, active, verdicts);
  };
}

}  // namespace

breakdown::BatchScaleKernelFactory PaperSetup::pdp_batch_kernel_factory(
    analysis::PdpVariant variant, BitsPerSecond bw) const {
  return [params = pdp_params(variant),
          bw](std::span<const msg::MessageSet> bases) {
    return wrap_batch_kernel(
        std::make_shared<analysis::PdpBatchKernel>(bases, params, bw));
  };
}

breakdown::BatchScaleKernelFactory PaperSetup::ttp_batch_kernel_factory(
    BitsPerSecond bw) const {
  return [params = ttp_params(), bw](std::span<const msg::MessageSet> bases) {
    return wrap_batch_kernel(
        std::make_shared<analysis::TtpBatchKernel>(bases, params, bw));
  };
}

breakdown::BatchScaleKernelFactory PaperSetup::ttp_batch_kernel_factory_at(
    BitsPerSecond bw, Seconds ttrt) const {
  return [params = ttp_params(), bw,
          ttrt](std::span<const msg::MessageSet> bases) {
    return wrap_batch_kernel(
        std::make_shared<analysis::TtpBatchKernel>(bases, params, bw, ttrt));
  };
}

namespace {

template <typename Criterion>
breakdown::BreakdownEstimate estimate_point_impl(
    const PaperSetup& setup, const Criterion& criterion, BitsPerSecond bw,
    std::size_t num_sets, std::uint64_t seed,
    const exec::Executor& executor) {
  msg::MessageSetGenerator generator(setup.generator_config());
  breakdown::MonteCarloOptions options;
  options.num_sets = num_sets;
  return breakdown::estimate_breakdown_utilization(generator, criterion, bw,
                                                   seed, executor, options);
}

}  // namespace

breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup, const breakdown::SchedulablePredicate& predicate,
    BitsPerSecond bw, std::size_t num_sets, std::uint64_t seed,
    const exec::Executor& executor) {
  return estimate_point_impl(setup, predicate, bw, num_sets, seed, executor);
}

breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup, const breakdown::SchedulablePredicate& predicate,
    BitsPerSecond bw, std::size_t num_sets, std::uint64_t seed) {
  const exec::Executor inline_executor(1);
  return estimate_point(setup, predicate, bw, num_sets, seed, inline_executor);
}

breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup,
    const breakdown::ScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::size_t num_sets, std::uint64_t seed, const exec::Executor& executor) {
  return estimate_point_impl(setup, kernel_factory, bw, num_sets, seed,
                             executor);
}

breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup,
    const breakdown::ScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::size_t num_sets, std::uint64_t seed) {
  const exec::Executor inline_executor(1);
  return estimate_point(setup, kernel_factory, bw, num_sets, seed,
                        inline_executor);
}

breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup,
    const breakdown::BatchScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::size_t num_sets, std::uint64_t seed, const exec::Executor& executor,
    std::size_t batch) {
  msg::MessageSetGenerator generator(setup.generator_config());
  breakdown::MonteCarloOptions options;
  options.num_sets = num_sets;
  options.batch_size = batch;
  return breakdown::estimate_breakdown_utilization(generator, kernel_factory,
                                                   bw, seed, executor, options);
}

breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup,
    const breakdown::BatchScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::size_t num_sets, std::uint64_t seed, std::size_t batch) {
  const exec::Executor inline_executor(1);
  return estimate_point(setup, kernel_factory, bw, num_sets, seed,
                        inline_executor, batch);
}

}  // namespace tokenring::experiments
