// Deadline-sensitivity ablation (extension; paper Section 7 context).
//
// The paper argues that at low speeds "the priority inversions caused by
// such a round robin scheduling approach tend to adversely affect the
// messages with short deadlines" — i.e. the timed token suffers most when
// deadlines tighten. This study makes that claim quantitative for the
// constrained-deadline extension (D = fraction * P): breakdown utilization
// per protocol as the deadline fraction shrinks. PDP only re-ranks its
// priorities (deadline-monotonic) and tightens the RTA bound; TTP loses
// quadratically — q_i = floor(D_i/TTRT) shrinks AND the optimal TTRT
// itself must shrink with the deadline window.

#pragma once

#include <cstdint>
#include <vector>

#include "tokenring/experiments/setup.hpp"

namespace tokenring::experiments {

struct DeadlineStudyConfig {
  PaperSetup setup;  // deadline_fraction overridden per row
  std::vector<double> deadline_fractions = {1.0, 0.8, 0.6, 0.4, 0.2};
  std::vector<double> bandwidths_mbps = {10, 100};
  std::size_t sets_per_point = 60;
  std::uint64_t seed = 47;
  /// Worker threads for the Monte Carlo trials; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Trials saturated per lockstep SoA batch (monte_carlo.hpp). A pure
  /// throughput knob: the rows are identical for every value.
  std::size_t batch = 64;
};

struct DeadlineStudyRow {
  double bandwidth_mbps = 0.0;
  double deadline_fraction = 0.0;
  double ieee8025 = 0.0;
  double modified8025 = 0.0;
  double fddi = 0.0;
};

std::vector<DeadlineStudyRow> run_deadline_study(
    const DeadlineStudyConfig& config);

}  // namespace tokenring::experiments
