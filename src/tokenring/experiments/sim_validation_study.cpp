#include "tokenring/experiments/sim_validation_study.hpp"

#include "tokenring/obs/span.hpp"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "tokenring/analysis/kernels.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/sim/config.hpp"

namespace tokenring::experiments {

namespace {

/// Locate every base set's schedulability boundary in lockstep chunks of
/// `batch` lanes. `make_kernel(chunk)` builds the SoA batch kernel for one
/// chunk; results are bit-identical to per-set find_saturation with the
/// matching predicate (the batch-kernel contract).
template <typename MakeKernel>
std::vector<breakdown::SaturationResult> saturate_all(
    const std::vector<msg::MessageSet>& bases, std::size_t batch,
    BitsPerSecond bw, const MakeKernel& make_kernel) {
  TR_EXPECTS(batch >= 1);
  std::vector<breakdown::SaturationResult> sats;
  sats.reserve(bases.size());
  for (std::size_t lo = 0; lo < bases.size(); lo += batch) {
    const std::size_t count = std::min(batch, bases.size() - lo);
    const std::span<const msg::MessageSet> chunk(bases.data() + lo, count);
    const auto kernel = make_kernel(chunk);
    auto part = breakdown::find_saturation_batch(
        chunk,
        [&kernel](std::span<const double> scales,
                  std::span<const std::uint8_t> active,
                  std::span<std::uint8_t> verdicts) {
          kernel.evaluate(scales, active, verdicts);
        },
        bw);
    for (auto& r : part) sats.push_back(std::move(r));
  }
  return sats;
}

SimValidationRow validate_pdp(const SimValidationConfig& config,
                              analysis::PdpVariant variant, double bw_mbps) {
  const BitsPerSecond bw = mbps(bw_mbps);
  const auto params = config.setup.pdp_params(variant);
  msg::MessageSetGenerator gen(config.setup.generator_config());
  Rng rng(config.seed);

  SimValidationRow row;
  row.protocol = variant == analysis::PdpVariant::kStandard8025
                     ? "ieee8025"
                     : "modified8025";
  row.bandwidth_mbps = bw_mbps;

  // Draw first, saturate in batch: the boundary search consumes no
  // randomness, so the generator stream (and every downstream draw) is
  // unchanged from the per-set form.
  std::vector<msg::MessageSet> bases;
  bases.reserve(config.sets_per_point);
  for (std::size_t i = 0; i < config.sets_per_point; ++i) {
    bases.push_back(gen.generate(rng));
  }
  const auto sats = saturate_all(
      bases, config.batch, bw, [&](std::span<const msg::MessageSet> chunk) {
        return analysis::PdpBatchKernel(chunk, params, bw);
      });

  for (std::size_t i = 0; i < config.sets_per_point; ++i) {
    const auto& base = bases[i];
    const auto& sat = sats[i];
    if (!sat.found) {
      ++row.degenerate_skipped;
      continue;
    }
    ++row.sets_tested;

    sim::SimConfig cfg;
    cfg.protocol = sim::Protocol::kPdp;
    cfg.pdp = params;
    cfg.bandwidth = bw;
    cfg.worst_case_phasing = true;
    cfg.async_model = sim::AsyncModel::kSaturating;
    cfg.seed = config.seed + i;

    const auto inside =
        base.scaled(sat.critical_scale * config.inside_scale_pdp);
    cfg.horizon = config.horizon_periods * inside.max_period();
    if (sim::run_simulation(inside, cfg).deadline_misses > 0) {
      ++row.false_negatives;
    }

    const auto outside = base.scaled(sat.critical_scale * config.outside_scale);
    cfg.horizon = config.horizon_periods * outside.max_period();
    if (sim::run_simulation(outside, cfg).deadline_misses == 0) {
      ++row.outside_clean;
    }
  }
  return row;
}

SimValidationRow validate_ttp(const SimValidationConfig& config,
                              double bw_mbps) {
  const BitsPerSecond bw = mbps(bw_mbps);
  const auto params = config.setup.ttp_params();
  msg::MessageSetGenerator gen(config.setup.generator_config());
  Rng rng(config.seed);

  SimValidationRow row;
  row.protocol = "fddi";
  row.bandwidth_mbps = bw_mbps;

  std::vector<msg::MessageSet> bases;
  bases.reserve(config.sets_per_point);
  for (std::size_t i = 0; i < config.sets_per_point; ++i) {
    bases.push_back(gen.generate(rng));
  }
  const auto sats = saturate_all(
      bases, config.batch, bw, [&](std::span<const msg::MessageSet> chunk) {
        return analysis::TtpBatchKernel(chunk, params, bw);
      });

  for (std::size_t i = 0; i < config.sets_per_point; ++i) {
    const auto& base = bases[i];
    const auto& sat = sats[i];
    if (!sat.found) {
      ++row.degenerate_skipped;
      continue;
    }
    ++row.sets_tested;

    const auto inside =
        base.scaled(sat.critical_scale * config.inside_scale_ttp);
    sim::SimConfig cfg;
    cfg.protocol = sim::Protocol::kTtp;
    cfg.ttp = params;
    cfg.bandwidth = bw;
    cfg.ttrt = analysis::select_ttrt(inside, params.ring, bw);
    cfg.worst_case_phasing = true;
    cfg.async_model = sim::AsyncModel::kSaturating;
    cfg.seed = config.seed + i;
    cfg.horizon = config.horizon_periods * inside.max_period();
    for (const auto& s : inside.streams()) {
      cfg.sync_bandwidth_per_stream.push_back(
          analysis::ttp_local_bandwidth(s, params, bw, cfg.ttrt).value_or(0.0));
    }
    const auto inside_sim = sim::make_simulator(inside, cfg);
    const auto inside_metrics = inside_sim->run();
    if (inside_metrics.deadline_misses > 0) ++row.false_negatives;
    const double ratio = inside_sim->max_intervisit() / cfg.ttrt;
    row.max_intervisit_ratio = std::max(row.max_intervisit_ratio, ratio);
    if (ratio > 2.0 + 1e-9) ++row.johnson_violations;

    const auto outside = base.scaled(sat.critical_scale * config.outside_scale);
    sim::SimConfig out_cfg = cfg;
    out_cfg.ttrt = analysis::select_ttrt(outside, params.ring, bw);
    out_cfg.horizon = config.horizon_periods * outside.max_period();
    out_cfg.sync_bandwidth_per_stream.clear();
    for (const auto& s : outside.streams()) {
      out_cfg.sync_bandwidth_per_stream.push_back(
          analysis::ttp_local_bandwidth(s, params, bw, out_cfg.ttrt)
              .value_or(0.0));
    }
    if (sim::run_simulation(outside, out_cfg).deadline_misses == 0) {
      ++row.outside_clean;
    }
  }
  return row;
}

}  // namespace

std::vector<SimValidationRow> run_sim_validation(
    const SimValidationConfig& config) {
  const obs::Span span("experiments/sim_validation");
  TR_EXPECTS(!config.bandwidths_mbps.empty());
  TR_EXPECTS(config.sets_per_point >= 1);
  TR_EXPECTS(config.inside_scale_pdp > 0.0 && config.inside_scale_pdp < 1.0);
  TR_EXPECTS(config.inside_scale_ttp > 0.0 && config.inside_scale_ttp <= 1.0);
  TR_EXPECTS(config.outside_scale > 1.0);

  std::vector<SimValidationRow> rows;
  for (double bw_mbps : config.bandwidths_mbps) {
    rows.push_back(
        validate_pdp(config, analysis::PdpVariant::kStandard8025, bw_mbps));
    rows.push_back(
        validate_pdp(config, analysis::PdpVariant::kModified8025, bw_mbps));
    rows.push_back(validate_ttp(config, bw_mbps));
  }
  return rows;
}

}  // namespace tokenring::experiments
