#include "tokenring/experiments/fig1.hpp"

#include "tokenring/obs/span.hpp"

#include <algorithm>

#include "tokenring/common/checks.hpp"

namespace tokenring::experiments {

std::vector<Fig1Row> run_fig1(const Fig1Config& config) {
  const obs::Span span("experiments/fig1");
  TR_EXPECTS(!config.bandwidths_mbps.empty());
  TR_EXPECTS(config.sets_per_point >= 1);

  const exec::Executor executor(config.jobs);
  std::vector<Fig1Row> rows;
  rows.reserve(config.bandwidths_mbps.size());
  for (double bw_mbps : config.bandwidths_mbps) {
    const BitsPerSecond bw = mbps(bw_mbps);
    const auto std8025 = estimate_point(
        config.setup,
        config.setup.pdp_batch_kernel_factory(analysis::PdpVariant::kStandard8025,
                                              bw),
        bw, config.sets_per_point, config.seed, executor, config.batch);
    const auto mod8025 = estimate_point(
        config.setup,
        config.setup.pdp_batch_kernel_factory(analysis::PdpVariant::kModified8025,
                                              bw),
        bw, config.sets_per_point, config.seed, executor, config.batch);
    const auto fddi = estimate_point(
        config.setup, config.setup.ttp_batch_kernel_factory(bw), bw,
        config.sets_per_point, config.seed, executor, config.batch);

    Fig1Row row;
    row.bandwidth_mbps = bw_mbps;
    row.ieee8025 = std8025.mean();
    row.ieee8025_ci = std8025.ci95();
    row.modified8025 = mod8025.mean();
    row.modified8025_ci = mod8025.ci95();
    row.fddi = fddi.mean();
    row.fddi_ci = fddi.ci95();
    rows.push_back(row);
  }
  return rows;
}

Fig1Observations analyze_fig1(const std::vector<Fig1Row>& rows) {
  TR_EXPECTS(rows.size() >= 2);

  Fig1Observations obs;
  obs.modified_dominates_standard = true;
  obs.fddi_monotone_rising = true;

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (r.modified8025 > obs.pdp_peak_utilization) {
      obs.pdp_peak_utilization = r.modified8025;
      obs.pdp_peak_bandwidth_mbps = r.bandwidth_mbps;
    }
    if (r.modified8025 + 1e-9 < r.ieee8025) {
      obs.modified_dominates_standard = false;
    }
    if (i > 0 && r.fddi + 1e-9 < rows[i - 1].fddi) {
      obs.fddi_monotone_rising = false;
    }
  }
  obs.pdp_non_monotone =
      rows.back().modified8025 < obs.pdp_peak_utilization - 1e-12;

  const auto winner = [](const Fig1Row& r) {
    return r.fddi >= std::max(r.ieee8025, r.modified8025) ? "ttp" : "pdp";
  };
  obs.low_bandwidth_winner = winner(rows.front());
  obs.high_bandwidth_winner = winner(rows.back());

  for (const auto& r : rows) {
    if (r.fddi >= std::max(r.ieee8025, r.modified8025)) {
      // Ignore degenerate ties where every protocol is at ~zero (e.g. the
      // 1 Mbps point, where nothing is schedulable for 100 stations).
      if (r.fddi < 1e-6) continue;
      obs.ttp_crossover_mbps = r.bandwidth_mbps;
      break;
    }
  }
  return obs;
}

}  // namespace tokenring::experiments
