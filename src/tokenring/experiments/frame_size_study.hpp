// Frame-size ablation (paper Section 4.2, "Choice of Frame Size").
//
// The paper describes the PDP frame-size trade-off: small frames give finer
// preemption granularity (better for short-deadline traffic) but pay the
// fixed per-frame overhead more often; and once the frame time drops below
// Theta the extra granularity is pure loss. This study sweeps the frame
// payload size at several bandwidths and reports the breakdown utilization
// per (frame size, bandwidth) cell for both PDP variants.

#pragma once

#include <cstdint>
#include <vector>

#include "tokenring/experiments/setup.hpp"

namespace tokenring::experiments {

struct FrameSizeStudyConfig {
  PaperSetup setup;
  std::vector<double> payload_bytes = {16, 32, 64, 128, 256, 512, 1024, 4096};
  std::vector<double> bandwidths_mbps = {4, 16, 100};
  std::size_t sets_per_point = 60;
  std::uint64_t seed = 11;
  /// Worker threads for the Monte Carlo trials; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Trials saturated per lockstep SoA batch (monte_carlo.hpp). A pure
  /// throughput knob: the rows are identical for every value.
  std::size_t batch = 64;
};

struct FrameSizeStudyRow {
  double payload_bytes = 0.0;
  double bandwidth_mbps = 0.0;
  double ieee8025 = 0.0;
  double modified8025 = 0.0;
};

/// Rows ordered by (bandwidth, payload).
std::vector<FrameSizeStudyRow> run_frame_size_study(
    const FrameSizeStudyConfig& config);

/// For one bandwidth, the payload size maximizing the modified-802.5
/// breakdown utilization. Requires rows from `run_frame_size_study`.
double best_payload_bytes(const std::vector<FrameSizeStudyRow>& rows,
                          double bandwidth_mbps);

}  // namespace tokenring::experiments
