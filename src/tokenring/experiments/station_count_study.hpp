// Station-count ablation: how the protocols scale with ring size.
//
// Growing the ring raises Theta (more latency, longer walk) and multiplies
// the per-rotation overheads (n * F_ovhd in Theorem 5.1; more frames
// contending in Theorem 4.1). The paper fixes n = 100; this study sweeps n
// at fixed bandwidth so the crossover's dependence on ring size is visible.

#pragma once

#include <cstdint>
#include <vector>

#include "tokenring/experiments/setup.hpp"

namespace tokenring::experiments {

struct StationCountStudyConfig {
  PaperSetup setup;  // num_stations is overridden per point
  double bandwidth_mbps = 100.0;
  std::vector<int> station_counts = {10, 25, 50, 100, 150, 200};
  std::size_t sets_per_point = 60;
  std::uint64_t seed = 17;
  /// Worker threads for the Monte Carlo trials; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Trials saturated per lockstep SoA batch (monte_carlo.hpp). A pure
  /// throughput knob: the rows are identical for every value.
  std::size_t batch = 64;
};

struct StationCountStudyRow {
  int stations = 0;
  double ieee8025 = 0.0;
  double modified8025 = 0.0;
  double fddi = 0.0;
};

std::vector<StationCountStudyRow> run_station_count_study(
    const StationCountStudyConfig& config);

}  // namespace tokenring::experiments
