// Crossover study — the paper's conclusion, quantified.
//
// "We thus conclude that bandwidth ranges for which the respective
// protocols have been found suitable for non-real-time systems are also
// appropriate for real-time applications." The concrete artifact behind
// that sentence is the crossover bandwidth: the link speed above which the
// timed token protocol's average breakdown utilization exceeds the
// priority-driven protocol's. This study locates it by bisection over
// bandwidth for several ring sizes and period scales, showing how the
// protocol recommendation shifts with the deployment.

#pragma once

#include <cstdint>
#include <vector>

#include "tokenring/experiments/setup.hpp"

namespace tokenring::experiments {

struct CrossoverStudyConfig {
  PaperSetup setup;  // num_stations / mean_period overridden per row
  std::vector<int> station_counts = {25, 50, 100};
  std::vector<double> mean_periods_ms = {20, 100, 500};
  /// Bandwidth search interval [Mbps]; the crossover must lie inside.
  double bw_low_mbps = 1.0;
  double bw_high_mbps = 1000.0;
  /// Bisection iterations over bandwidth (the breakdown difference is
  /// noisy, so a fixed budget beats a tolerance).
  int iterations = 12;
  std::size_t sets_per_point = 40;
  std::uint64_t seed = 43;
  /// Worker threads for the Monte Carlo trials; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Trials saturated per lockstep SoA batch (monte_carlo.hpp). A pure
  /// throughput knob: the rows are identical for every value.
  std::size_t batch = 64;
};

struct CrossoverStudyRow {
  int stations = 0;
  double mean_period_ms = 0.0;
  /// Bandwidth where FDDI first beats modified 802.5 [Mbps]; 0 if FDDI
  /// already wins at bw_low, infinity if it never wins by bw_high.
  double crossover_mbps = 0.0;
  /// Breakdown utilizations at the crossover (equal up to Monte Carlo
  /// noise when the crossover is interior).
  double pdp_at_crossover = 0.0;
  double ttp_at_crossover = 0.0;
};

std::vector<CrossoverStudyRow> run_crossover_study(
    const CrossoverStudyConfig& config);

}  // namespace tokenring::experiments
