// Figure 1 experiment driver: average breakdown utilization vs. bandwidth
// for the three protocol implementations.
//
// This module computes the data; presentation (table/CSV printing) lives in
// the bench binary. Keeping the driver in the library makes the experiment
// unit-testable with small sample counts.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tokenring/experiments/setup.hpp"

namespace tokenring::experiments {

/// Sweep configuration for the Figure 1 reproduction.
struct Fig1Config {
  PaperSetup setup;
  std::vector<double> bandwidths_mbps = {1,  2,   5,   10,  20,
                                         50, 100, 200, 500, 1000};
  std::size_t sets_per_point = 100;
  std::uint64_t seed = 42;
  /// Worker threads for the Monte Carlo trials; 0 = hardware concurrency,
  /// 1 = inline sequential. The rows are identical for every value.
  std::size_t jobs = 0;
  /// Trials saturated per lockstep SoA batch (monte_carlo.hpp). A pure
  /// throughput knob: the rows are identical for every value.
  std::size_t batch = 64;
};

/// One bandwidth point: mean breakdown utilization and 95% CI half-width
/// per protocol implementation.
struct Fig1Row {
  double bandwidth_mbps = 0.0;
  double ieee8025 = 0.0;
  double ieee8025_ci = 0.0;
  double modified8025 = 0.0;
  double modified8025_ci = 0.0;
  double fddi = 0.0;
  double fddi_ci = 0.0;
};

/// The paper's qualitative observations, checked mechanically on the rows.
struct Fig1Observations {
  /// Bandwidth at which the modified-802.5 curve peaks [Mbps].
  double pdp_peak_bandwidth_mbps = 0.0;
  double pdp_peak_utilization = 0.0;
  /// True iff the curve falls after its peak (the paper's anomaly).
  bool pdp_non_monotone = false;
  /// True iff modified >= standard at every point.
  bool modified_dominates_standard = false;
  /// True iff the FDDI curve is non-decreasing across the sweep.
  bool fddi_monotone_rising = false;
  /// Winner ("pdp" or "ttp") at the lowest and highest bandwidth points.
  std::string low_bandwidth_winner;
  std::string high_bandwidth_winner;
  /// First bandwidth at which TTP >= both PDP curves; 0 if never.
  double ttp_crossover_mbps = 0.0;
};

/// Run the sweep. Rows come back in the order of `bandwidths_mbps`.
std::vector<Fig1Row> run_fig1(const Fig1Config& config);

/// Derive the headline observations from sweep rows. Requires >= 2 rows.
Fig1Observations analyze_fig1(const std::vector<Fig1Row>& rows);

}  // namespace tokenring::experiments
