#include "tokenring/experiments/frame_size_study.hpp"

#include "tokenring/obs/span.hpp"

#include "tokenring/common/checks.hpp"

namespace tokenring::experiments {

std::vector<FrameSizeStudyRow> run_frame_size_study(
    const FrameSizeStudyConfig& config) {
  const obs::Span span("experiments/frame_size_study");
  TR_EXPECTS(!config.payload_bytes.empty());
  TR_EXPECTS(!config.bandwidths_mbps.empty());

  const exec::Executor executor(config.jobs);
  std::vector<FrameSizeStudyRow> rows;
  for (double bw_mbps : config.bandwidths_mbps) {
    const BitsPerSecond bw = mbps(bw_mbps);
    for (double payload : config.payload_bytes) {
      PaperSetup setup = config.setup;
      setup.frame_payload_bytes = payload;

      FrameSizeStudyRow row;
      row.payload_bytes = payload;
      row.bandwidth_mbps = bw_mbps;
      row.ieee8025 =
          estimate_point(setup,
                         setup.pdp_batch_kernel_factory(
                             analysis::PdpVariant::kStandard8025, bw),
                         bw, config.sets_per_point, config.seed, executor,
                         config.batch)
              .mean();
      row.modified8025 =
          estimate_point(setup,
                         setup.pdp_batch_kernel_factory(
                             analysis::PdpVariant::kModified8025, bw),
                         bw, config.sets_per_point, config.seed, executor,
                         config.batch)
              .mean();
      rows.push_back(row);
    }
  }
  return rows;
}

double best_payload_bytes(const std::vector<FrameSizeStudyRow>& rows,
                          double bandwidth_mbps) {
  double best_payload = 0.0;
  double best_value = -1.0;
  for (const auto& r : rows) {
    if (r.bandwidth_mbps == bandwidth_mbps && r.modified8025 > best_value) {
      best_value = r.modified8025;
      best_payload = r.payload_bytes;
    }
  }
  TR_EXPECTS_MSG(best_value >= 0.0, "no rows for the requested bandwidth");
  return best_payload;
}

}  // namespace tokenring::experiments
