// Shared experiment configuration: the paper's Section 6.2 operating
// conditions with knobs for the ablation studies, plus predicate factories
// binding each protocol's schedulability criterion to a bandwidth.
//
// Every bench binary and the experiment drivers below build their scenarios
// through this type so that "the paper's conditions" exist in exactly one
// place.

#pragma once

#include <cstdint>

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/breakdown/monte_carlo.hpp"
#include "tokenring/exec/executor.hpp"
#include "tokenring/msg/generator.hpp"
#include "tokenring/net/standards.hpp"

namespace tokenring::experiments {

/// The paper's experiment parameters (Section 6.2), overridable per study.
struct PaperSetup {
  int num_stations = 100;
  double station_spacing_m = 100.0;
  Seconds mean_period = milliseconds(100);
  double period_ratio = 10.0;
  double frame_payload_bytes = 64.0;
  msg::PeriodDistribution period_dist = msg::PeriodDistribution::kUniform;
  msg::PayloadDistribution payload_dist = msg::PayloadDistribution::kUniform;
  /// Relative deadline as a fraction of the period; 1.0 = the paper's
  /// implicit-deadline model (see the deadline_sensitivity ablation).
  double deadline_fraction = 1.0;

  /// Generator drawing message sets under these conditions.
  msg::GeneratorConfig generator_config() const;

  /// PDP analysis parameters (802.5 ring constants).
  analysis::PdpParams pdp_params(analysis::PdpVariant variant) const;

  /// TTP analysis parameters (FDDI ring constants).
  analysis::TtpParams ttp_params() const;

  /// Schedulability predicate for one PDP variant at one bandwidth.
  breakdown::SchedulablePredicate pdp_predicate(analysis::PdpVariant variant,
                                                BitsPerSecond bw) const;

  /// Schedulability predicate for TTP (paper TTRT rule) at one bandwidth.
  breakdown::SchedulablePredicate ttp_predicate(BitsPerSecond bw) const;

  /// TTP predicate with an explicitly pinned TTRT (for the sensitivity
  /// study).
  breakdown::SchedulablePredicate ttp_predicate_at(BitsPerSecond bw,
                                                   Seconds ttrt) const;

  /// Scale-kernel factories matching the predicates above verdict for
  /// verdict (analysis/kernels.hpp): per trial, the scale-invariant work is
  /// hoisted once and each saturation probe is allocation-free. These are
  /// what the experiment drivers use; the predicates remain the reference
  /// path (tests pin that both produce bit-identical estimates).
  breakdown::ScaleKernelFactory pdp_kernel_factory(analysis::PdpVariant variant,
                                                   BitsPerSecond bw) const;
  breakdown::ScaleKernelFactory ttp_kernel_factory(BitsPerSecond bw) const;
  breakdown::ScaleKernelFactory ttp_kernel_factory_at(BitsPerSecond bw,
                                                      Seconds ttrt) const;

  /// Batched (SoA) kernel factories: one kernel saturates a whole batch of
  /// trials in lockstep (analysis/kernels.hpp PdpBatchKernel /
  /// TtpBatchKernel), with verdicts — and therefore Monte Carlo estimates
  /// — bit-identical to the scalar factories above. The experiment drivers
  /// route through these; the scalar factories and predicates remain the
  /// reference paths the tests compare against.
  breakdown::BatchScaleKernelFactory pdp_batch_kernel_factory(
      analysis::PdpVariant variant, BitsPerSecond bw) const;
  breakdown::BatchScaleKernelFactory ttp_batch_kernel_factory(
      BitsPerSecond bw) const;
  breakdown::BatchScaleKernelFactory ttp_batch_kernel_factory_at(
      BitsPerSecond bw, Seconds ttrt) const;
};

/// Estimate the average breakdown utilization of one predicate at one
/// bandwidth, running the trials on `executor`. Trial i draws from the
/// seed stream derived from (seed, i), so curves estimated for different
/// protocols share the same random message sets (common random numbers),
/// which sharpens curve-to-curve comparisons — and the result is
/// bit-identical for every executor jobs count.
breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup, const breakdown::SchedulablePredicate& predicate,
    BitsPerSecond bw, std::size_t num_sets, std::uint64_t seed,
    const exec::Executor& executor);

/// Convenience overload running inline on the calling thread (same result
/// as any parallel executor, just sequentially).
breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup, const breakdown::SchedulablePredicate& predicate,
    BitsPerSecond bw, std::size_t num_sets, std::uint64_t seed);

/// Kernel-factory forms: same estimates, allocation-free probe loop.
breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup,
    const breakdown::ScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::size_t num_sets, std::uint64_t seed, const exec::Executor& executor);

breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup,
    const breakdown::ScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::size_t num_sets, std::uint64_t seed);

/// Batched forms: trials are saturated in lockstep batches of `batch`
/// lanes (see monte_carlo.hpp). Bit-identical to the scalar forms for
/// every (executor jobs, batch) combination.
breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup,
    const breakdown::BatchScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::size_t num_sets, std::uint64_t seed, const exec::Executor& executor,
    std::size_t batch);

breakdown::BreakdownEstimate estimate_point(
    const PaperSetup& setup,
    const breakdown::BatchScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::size_t num_sets, std::uint64_t seed, std::size_t batch);

}  // namespace tokenring::experiments
