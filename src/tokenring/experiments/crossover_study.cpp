#include "tokenring/experiments/crossover_study.hpp"

#include "tokenring/obs/span.hpp"

#include <cmath>
#include <limits>

#include "tokenring/common/checks.hpp"

namespace tokenring::experiments {

namespace {

// Does FDDI meaningfully beat modified 802.5 at this bandwidth? A tie at
// ~zero (the degenerate low-bandwidth regime where neither protocol can
// schedule anything) does not count as a win.
bool ttp_wins(const PaperSetup& setup, BitsPerSecond bw, std::size_t sets,
              std::uint64_t seed, const exec::Executor& executor,
              std::size_t batch) {
  const double ttp = estimate_point(setup, setup.ttp_batch_kernel_factory(bw),
                                    bw, sets, seed, executor, batch)
                         .mean();
  const double pdp =
      estimate_point(setup,
                     setup.pdp_batch_kernel_factory(
                         analysis::PdpVariant::kModified8025, bw),
                     bw, sets, seed, executor, batch)
          .mean();
  return ttp >= pdp && ttp > 0.01;
}

}  // namespace

std::vector<CrossoverStudyRow> run_crossover_study(
    const CrossoverStudyConfig& config) {
  const obs::Span span("experiments/crossover_study");
  TR_EXPECTS(!config.station_counts.empty());
  TR_EXPECTS(!config.mean_periods_ms.empty());
  TR_EXPECTS(config.bw_low_mbps > 0.0);
  TR_EXPECTS(config.bw_high_mbps > config.bw_low_mbps);
  TR_EXPECTS(config.iterations >= 1);

  const exec::Executor executor(config.jobs);
  std::vector<CrossoverStudyRow> rows;
  for (int n : config.station_counts) {
    for (double mean_ms : config.mean_periods_ms) {
      PaperSetup setup = config.setup;
      setup.num_stations = n;
      setup.mean_period = milliseconds(mean_ms);

      CrossoverStudyRow row;
      row.stations = n;
      row.mean_period_ms = mean_ms;

      const auto wins = [&](double bw_mbps) {
        return ttp_wins(setup, mbps(bw_mbps), config.sets_per_point,
                        config.seed, executor, config.batch);
      };

      if (wins(config.bw_low_mbps)) {
        row.crossover_mbps = config.bw_low_mbps;
      } else if (!wins(config.bw_high_mbps)) {
        row.crossover_mbps = std::numeric_limits<double>::infinity();
      } else {
        // Bisect in log-bandwidth: TTP gains and PDP loses with bandwidth,
        // so the win predicate flips exactly once in the search interval.
        double lo = std::log(config.bw_low_mbps);
        double hi = std::log(config.bw_high_mbps);
        for (int it = 0; it < config.iterations; ++it) {
          const double mid = 0.5 * (lo + hi);
          (wins(std::exp(mid)) ? hi : lo) = mid;
        }
        row.crossover_mbps = std::exp(hi);
      }

      if (std::isfinite(row.crossover_mbps) && row.crossover_mbps > 0.0) {
        const BitsPerSecond bw = mbps(row.crossover_mbps);
        row.ttp_at_crossover =
            estimate_point(setup, setup.ttp_batch_kernel_factory(bw), bw,
                           config.sets_per_point, config.seed, executor,
                           config.batch)
                .mean();
        row.pdp_at_crossover =
            estimate_point(setup,
                           setup.pdp_batch_kernel_factory(
                               analysis::PdpVariant::kModified8025, bw),
                           bw, config.sets_per_point, config.seed, executor,
                           config.batch)
                .mean();
      }
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace tokenring::experiments
