// TTRT sensitivity study (paper Section 5.2 claim).
//
// The paper asserts that (a) the timed-token protocol's breakdown
// utilization is sensitive to TTRT, (b) for equal periods P the maximizer
// is near sqrt(Theta*P), and (c) values well below the Johnson limit
// P_min/2 usually win. This study pins TTRT to a grid of fractions of
// P_min/2 and estimates the breakdown utilization at each, flagging the
// empirical maximizer and where the sqrt rule lands.

#pragma once

#include <cstdint>
#include <vector>

#include "tokenring/experiments/setup.hpp"

namespace tokenring::experiments {

struct TtrtStudyConfig {
  PaperSetup setup;
  double bandwidth_mbps = 100.0;
  /// TTRT grid, expressed as fractions of P_min/2 (the largest valid TTRT).
  std::vector<double> ttrt_fractions = {0.02, 0.05, 0.1, 0.2, 0.3,
                                        0.4,  0.5,  0.7, 0.9, 1.0};
  std::size_t sets_per_point = 100;
  std::uint64_t seed = 7;
  /// Worker threads for the Monte Carlo trials; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Trials saturated per lockstep SoA batch (monte_carlo.hpp). A pure
  /// throughput knob: the rows are identical for every value.
  std::size_t batch = 64;
};

struct TtrtStudyRow {
  double fraction = 0.0;
  Seconds ttrt = 0.0;
  double breakdown_mean = 0.0;
  double breakdown_ci = 0.0;
};

struct TtrtStudyResult {
  std::vector<TtrtStudyRow> rows;
  /// TTRT produced by the paper's sqrt(Theta*P_min) bidding rule for the
  /// study's P_min.
  Seconds sqrt_rule_ttrt = 0.0;
  /// Breakdown estimate when each set uses the sqrt rule (per-set TTRT).
  double sqrt_rule_breakdown = 0.0;
  /// Grid row with the highest mean breakdown.
  TtrtStudyRow best_row;
};

TtrtStudyResult run_ttrt_study(const TtrtStudyConfig& config);

}  // namespace tokenring::experiments
