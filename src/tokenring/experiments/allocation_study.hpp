// Synchronous-bandwidth allocation scheme comparison (paper Section 5.2)
// and the worst-case 33% guarantee (paper Sections 2 and 5).
//
// Scheme comparison: several allocation rules are evaluated on random
// message sets normalized to exact utilization levels; the figure of merit
// is the fraction of sets each scheme can guarantee at each level. (The
// breakdown-scaling metric is not applicable to every baseline scheme:
// e.g. proportional allocation is not monotone in payload scale.)
//
// Worst-case guarantee: the local scheme guarantees any set with
// U <= (1 - Lambda/TTRT)/3; we verify no sampled set at/below the bound is
// rejected, and report the empirical minimum breakdown utilization, which
// must sit at or above the bound.

#pragma once

#include <cstdint>
#include <vector>

#include "tokenring/analysis/allocation.hpp"
#include "tokenring/experiments/setup.hpp"

namespace tokenring::experiments {

struct AllocationStudyConfig {
  PaperSetup setup;
  double bandwidth_mbps = 100.0;
  std::vector<double> utilization_levels = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
  std::size_t sets_per_point = 200;
  std::uint64_t seed = 19;
  /// Worker threads for the per-set feasibility checks; 0 = hardware
  /// concurrency.
  std::size_t jobs = 0;
};

struct AllocationStudyRow {
  analysis::AllocationScheme scheme{};
  double utilization = 0.0;
  /// Fraction of sampled sets this scheme guarantees at this utilization.
  double feasible_fraction = 0.0;
};

std::vector<AllocationStudyRow> run_allocation_study(
    const AllocationStudyConfig& config);

struct WorstCaseStudyConfig {
  PaperSetup setup;
  double bandwidth_mbps = 100.0;
  std::size_t num_sets = 200;
  std::uint64_t seed = 23;
  /// Worker threads for the per-set saturation searches; 0 = hardware
  /// concurrency.
  std::size_t jobs = 0;
  /// Boundary searches run per lockstep SoA batch (breakdown/saturation.hpp).
  /// A pure throughput knob: the result is identical for every value.
  std::size_t batch = 64;
};

struct WorstCaseStudyResult {
  /// Analytical bound (1 - Lambda/TTRT)/3 at the sqrt-rule TTRT of the
  /// sampled sets (evaluated per set; this is the sample minimum).
  double analytical_bound = 0.0;
  /// Smallest breakdown utilization across the sampled sets.
  double min_breakdown = 0.0;
  /// Average breakdown utilization (for contrast with the worst case).
  double mean_breakdown = 0.0;
  /// Sets with U at 99.9% of the bound that the criterion rejected
  /// (soundness violations; must be 0).
  std::size_t bound_violations = 0;
};

WorstCaseStudyResult run_worst_case_study(const WorstCaseStudyConfig& config);

}  // namespace tokenring::experiments
