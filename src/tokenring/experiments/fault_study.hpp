// Fault-tolerance study: deadline-miss behaviour under injected faults.
//
// The paper's protocols recover from ring disturbances very differently:
// IEEE 802.5 relies on the active monitor (outage ~ one frame slot plus a
// ring purge, i.e. a few Theta), while FDDI detects a lost token through
// TRT expiry with Late_Ct set (up to 2*TTRT) and then runs the claim
// process — an outage on the order of the TTRT, typically orders of
// magnitude longer than Theta. This study scales feasible message sets to
// a fixed fraction of their schedulability boundary, injects faults of
// each requested kind at each requested count (uniformly at random over
// the run, deterministic per trial via seed streams), and reports the
// resulting miss ratio per protocol x kind x count cell. Trials are
// independent and run on an exec::Executor; results are bit-identical for
// any jobs value.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tokenring/experiments/setup.hpp"
#include "tokenring/fault/plan.hpp"

namespace tokenring::experiments {

struct FaultStudyConfig {
  PaperSetup setup;
  double bandwidth_mbps = 100.0;
  /// Fault kinds to sweep. kStationRejoin is not directly injectable here:
  /// rejoins ride along with kStationCrash (every crash in this study is
  /// paired with a rejoin half a downtime later, so the ring reconfigures
  /// twice per crash).
  std::vector<fault::FaultKind> kinds = {fault::FaultKind::kTokenLoss};
  /// Number of faults injected per run (the x-axis).
  std::vector<int> fault_counts = {0, 1, 2, 5, 10};
  /// Noise-burst jam duration (kNoiseBurst plans only).
  Seconds noise_duration = milliseconds(1.0);
  /// Crashed-station downtime as a fraction of the horizon (kStationCrash
  /// plans only); the rejoin lands inside the run.
  double crash_downtime_fraction = 0.1;
  /// Scale relative to each set's schedulability boundary.
  double load_scale = 0.7;
  std::size_t sets_per_point = 5;
  double horizon_periods = 6.0;
  std::uint64_t seed = 41;
  /// Worker threads for the trial sweep; 0 = hardware concurrency.
  std::size_t jobs = 1;
  /// Boundary searches run per lockstep SoA batch (breakdown/saturation.hpp).
  /// A pure throughput knob: the rows are identical for every value.
  std::size_t batch = 64;

  FaultStudyConfig() { setup.num_stations = 12; }
};

struct FaultStudyRow {
  std::string protocol;  // "modified8025" or "fddi"
  fault::FaultKind kind = fault::FaultKind::kTokenLoss;
  int faults = 0;
  /// Deadline misses / messages released, averaged over the sampled sets.
  double miss_ratio = 0.0;
  /// Fraction of those misses the simulator attributed to a fault outage
  /// window (the rest are congestion misses).
  double attributed_ratio = 0.0;
  /// Mean measured outage per injected fault [s] (0 when faults == 0).
  Seconds outage = 0.0;
};

std::vector<FaultStudyRow> run_fault_study(const FaultStudyConfig& config);

}  // namespace tokenring::experiments
