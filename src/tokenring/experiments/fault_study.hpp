// Fault-tolerance study: deadline-miss behaviour under token loss.
//
// The paper's protocols recover from a destroyed token very differently:
// IEEE 802.5 relies on the active monitor (outage ~ one frame slot plus a
// ring purge, i.e. a few Theta), while FDDI detects the loss through TRT
// expiry with Late_Ct set (up to 2*TTRT) and then runs the claim process —
// an outage on the order of the TTRT, typically orders of magnitude longer
// than Theta. This study scales feasible message sets to a fixed fraction
// of their schedulability boundary, injects token losses uniformly at
// random over the run, and reports the resulting miss ratio per protocol.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tokenring/experiments/setup.hpp"

namespace tokenring::experiments {

struct FaultStudyConfig {
  PaperSetup setup;
  double bandwidth_mbps = 100.0;
  /// Number of token losses injected per run.
  std::vector<int> loss_counts = {0, 1, 2, 5, 10};
  /// Scale relative to each set's schedulability boundary.
  double load_scale = 0.7;
  std::size_t sets_per_point = 5;
  double horizon_periods = 6.0;
  std::uint64_t seed = 41;

  FaultStudyConfig() { setup.num_stations = 12; }
};

struct FaultStudyRow {
  std::string protocol;  // "modified8025" or "fddi"
  int losses = 0;
  /// Deadline misses / messages released, averaged over the sampled sets.
  double miss_ratio = 0.0;
  /// Mean recovery outage per loss [s] (protocol model constant).
  Seconds outage = 0.0;
};

std::vector<FaultStudyRow> run_fault_study(const FaultStudyConfig& config);

}  // namespace tokenring::experiments
