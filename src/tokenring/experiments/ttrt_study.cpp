#include "tokenring/experiments/ttrt_study.hpp"

#include "tokenring/obs/span.hpp"

#include <algorithm>
#include <cmath>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"

namespace tokenring::experiments {

TtrtStudyResult run_ttrt_study(const TtrtStudyConfig& config) {
  const obs::Span span("experiments/ttrt_study");
  TR_EXPECTS(!config.ttrt_fractions.empty());
  TR_EXPECTS(config.sets_per_point >= 1);

  const BitsPerSecond bw = mbps(config.bandwidth_mbps);
  const auto gen_config = config.setup.generator_config();
  const Seconds p_min = gen_config.min_period();
  const Seconds max_ttrt = p_min / 2.0;

  const exec::Executor executor(config.jobs);
  TtrtStudyResult result;
  for (double fraction : config.ttrt_fractions) {
    TR_EXPECTS(fraction > 0.0 && fraction <= 1.0);
    const Seconds ttrt = fraction * max_ttrt;
    const auto est = estimate_point(
        config.setup, config.setup.ttp_batch_kernel_factory_at(bw, ttrt), bw,
        config.sets_per_point, config.seed, executor, config.batch);
    TtrtStudyRow row;
    row.fraction = fraction;
    row.ttrt = ttrt;
    row.breakdown_mean = est.mean();
    row.breakdown_ci = est.ci95();
    result.rows.push_back(row);
  }

  const Seconds theta = config.setup.ttp_params().ring.theta(bw);
  result.sqrt_rule_ttrt = std::min(std::sqrt(theta * p_min), max_ttrt);
  result.sqrt_rule_breakdown =
      estimate_point(config.setup, config.setup.ttp_batch_kernel_factory(bw),
                     bw, config.sets_per_point, config.seed, executor,
                     config.batch)
          .mean();

  result.best_row = *std::max_element(
      result.rows.begin(), result.rows.end(),
      [](const TtrtStudyRow& a, const TtrtStudyRow& b) {
        return a.breakdown_mean < b.breakdown_mean;
      });
  return result;
}

}  // namespace tokenring::experiments
