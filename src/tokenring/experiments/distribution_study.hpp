// Period-distribution ablation (the paper reports only mean 100 ms / ratio
// 10 and says "results obtained for other values of these parameters were
// similar"). This study substantiates that claim: it sweeps the mean
// period, the max/min ratio, and the distribution shape, and reports the
// breakdown utilization of all three protocol implementations at a fixed
// bandwidth.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tokenring/experiments/setup.hpp"

namespace tokenring::experiments {

struct DistributionStudyConfig {
  PaperSetup setup;  // mean/ratio/dist fields are overridden per cell
  double bandwidth_mbps = 10.0;
  std::vector<double> mean_periods_ms = {10, 100, 1000};
  std::vector<double> period_ratios = {2, 10, 100};
  std::vector<msg::PeriodDistribution> distributions = {
      msg::PeriodDistribution::kUniform, msg::PeriodDistribution::kLogUniform};
  std::size_t sets_per_point = 60;
  std::uint64_t seed = 13;
  /// Worker threads for the Monte Carlo trials; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Trials saturated per lockstep SoA batch (monte_carlo.hpp). A pure
  /// throughput knob: the rows are identical for every value.
  std::size_t batch = 64;
};

struct DistributionStudyRow {
  double mean_period_ms = 0.0;
  double period_ratio = 0.0;
  std::string distribution;
  double ieee8025 = 0.0;
  double modified8025 = 0.0;
  double fddi = 0.0;
};

const char* to_string(msg::PeriodDistribution dist);

std::vector<DistributionStudyRow> run_distribution_study(
    const DistributionStudyConfig& config);

}  // namespace tokenring::experiments
