// Analysis-vs-simulation validation study (the repository's substitute for
// the paper's missing testbed; see DESIGN.md).
//
// For random message sets scaled against each protocol's schedulability
// boundary, the discrete-event simulators check:
//  * soundness: sets inside the boundary meet every deadline under
//    adversarial phasing + saturating asynchronous load;
//  * tightness: sets far outside the boundary do miss;
//  * Johnson's bound: TTP token inter-visit times never exceed 2*TTRT for
//    accepted sets.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tokenring/experiments/setup.hpp"

namespace tokenring::experiments {

struct SimValidationConfig {
  /// Smaller ring than the paper default keeps simulation cost sane.
  PaperSetup setup;
  std::vector<double> bandwidths_mbps = {10, 100};
  std::size_t sets_per_point = 10;
  /// Scale (relative to the saturation boundary) for the "inside" runs.
  double inside_scale_pdp = 0.6;  // Theta/2 in Theorem 4.1 is average-case
  double inside_scale_ttp = 0.99;
  /// Scale for the "outside" runs.
  double outside_scale = 3.0;
  /// Simulation horizon as a multiple of the longest period.
  double horizon_periods = 4.0;
  std::uint64_t seed = 29;
  /// Boundary searches run per lockstep SoA batch (breakdown/saturation.hpp).
  /// A pure throughput knob: the rows are identical for every value.
  std::size_t batch = 64;

  SimValidationConfig() { setup.num_stations = 12; }
};

struct SimValidationRow {
  std::string protocol;  // "ieee8025", "modified8025", "fddi"
  double bandwidth_mbps = 0.0;
  std::size_t sets_tested = 0;
  std::size_t degenerate_skipped = 0;
  /// Inside-boundary runs with deadline misses: must be 0.
  std::size_t false_negatives = 0;
  /// Outside-boundary runs with no misses (analysis conservative there).
  std::size_t outside_clean = 0;
  /// TTP only: inside-boundary runs violating inter-visit <= 2*TTRT.
  std::size_t johnson_violations = 0;
  /// Largest observed (inter-visit / TTRT) across inside runs (TTP only).
  double max_intervisit_ratio = 0.0;
};

std::vector<SimValidationRow> run_sim_validation(
    const SimValidationConfig& config);

}  // namespace tokenring::experiments
