#include "tokenring/experiments/station_count_study.hpp"

#include "tokenring/obs/span.hpp"

#include "tokenring/common/checks.hpp"

namespace tokenring::experiments {

std::vector<StationCountStudyRow> run_station_count_study(
    const StationCountStudyConfig& config) {
  const obs::Span span("experiments/station_count_study");
  TR_EXPECTS(!config.station_counts.empty());

  const BitsPerSecond bw = mbps(config.bandwidth_mbps);
  const exec::Executor executor(config.jobs);
  std::vector<StationCountStudyRow> rows;
  for (int n : config.station_counts) {
    TR_EXPECTS(n >= 2);
    PaperSetup setup = config.setup;
    setup.num_stations = n;

    StationCountStudyRow row;
    row.stations = n;
    row.ieee8025 =
        estimate_point(setup,
                       setup.pdp_batch_kernel_factory(
                           analysis::PdpVariant::kStandard8025, bw),
                       bw, config.sets_per_point, config.seed, executor,
                       config.batch)
            .mean();
    row.modified8025 =
        estimate_point(setup,
                       setup.pdp_batch_kernel_factory(
                           analysis::PdpVariant::kModified8025, bw),
                       bw, config.sets_per_point, config.seed, executor,
                       config.batch)
            .mean();
    row.fddi = estimate_point(setup, setup.ttp_batch_kernel_factory(bw), bw,
                              config.sets_per_point, config.seed, executor,
                              config.batch)
                   .mean();
    rows.push_back(row);
  }
  return rows;
}

}  // namespace tokenring::experiments
