#include "tokenring/experiments/deadline_study.hpp"

#include "tokenring/obs/span.hpp"

#include "tokenring/common/checks.hpp"

namespace tokenring::experiments {

std::vector<DeadlineStudyRow> run_deadline_study(
    const DeadlineStudyConfig& config) {
  const obs::Span span("experiments/deadline_study");
  TR_EXPECTS(!config.deadline_fractions.empty());
  TR_EXPECTS(!config.bandwidths_mbps.empty());

  const exec::Executor executor(config.jobs);
  std::vector<DeadlineStudyRow> rows;
  for (double bw_mbps : config.bandwidths_mbps) {
    const BitsPerSecond bw = mbps(bw_mbps);
    for (double fraction : config.deadline_fractions) {
      TR_EXPECTS(fraction > 0.0 && fraction <= 1.0);
      PaperSetup setup = config.setup;
      setup.deadline_fraction = fraction;

      DeadlineStudyRow row;
      row.bandwidth_mbps = bw_mbps;
      row.deadline_fraction = fraction;
      row.ieee8025 =
          estimate_point(setup,
                         setup.pdp_batch_kernel_factory(
                             analysis::PdpVariant::kStandard8025, bw),
                         bw, config.sets_per_point, config.seed, executor,
                         config.batch)
              .mean();
      row.modified8025 =
          estimate_point(setup,
                         setup.pdp_batch_kernel_factory(
                             analysis::PdpVariant::kModified8025, bw),
                         bw, config.sets_per_point, config.seed, executor,
                         config.batch)
              .mean();
      row.fddi = estimate_point(setup, setup.ttp_batch_kernel_factory(bw), bw,
                                config.sets_per_point, config.seed, executor,
                                config.batch)
                     .mean();
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace tokenring::experiments
