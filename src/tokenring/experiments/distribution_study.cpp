#include "tokenring/experiments/distribution_study.hpp"

#include "tokenring/obs/span.hpp"

#include "tokenring/common/checks.hpp"

namespace tokenring::experiments {

const char* to_string(msg::PeriodDistribution dist) {
  switch (dist) {
    case msg::PeriodDistribution::kUniform:
      return "uniform";
    case msg::PeriodDistribution::kLogUniform:
      return "log-uniform";
    case msg::PeriodDistribution::kEqual:
      return "equal";
  }
  return "?";
}

std::vector<DistributionStudyRow> run_distribution_study(
    const DistributionStudyConfig& config) {
  const obs::Span span("experiments/distribution_study");
  TR_EXPECTS(!config.mean_periods_ms.empty());
  TR_EXPECTS(!config.period_ratios.empty());
  TR_EXPECTS(!config.distributions.empty());

  const BitsPerSecond bw = mbps(config.bandwidth_mbps);
  const exec::Executor executor(config.jobs);
  std::vector<DistributionStudyRow> rows;
  for (auto dist : config.distributions) {
    for (double mean_ms : config.mean_periods_ms) {
      for (double ratio : config.period_ratios) {
        PaperSetup setup = config.setup;
        setup.mean_period = milliseconds(mean_ms);
        setup.period_ratio = ratio;
        setup.period_dist = dist;

        DistributionStudyRow row;
        row.mean_period_ms = mean_ms;
        row.period_ratio = ratio;
        row.distribution = to_string(dist);
        row.ieee8025 =
            estimate_point(setup,
                           setup.pdp_batch_kernel_factory(
                               analysis::PdpVariant::kStandard8025, bw),
                           bw, config.sets_per_point, config.seed, executor,
                           config.batch)
                .mean();
        row.modified8025 =
            estimate_point(setup,
                           setup.pdp_batch_kernel_factory(
                               analysis::PdpVariant::kModified8025, bw),
                           bw, config.sets_per_point, config.seed, executor,
                           config.batch)
                .mean();
        row.fddi =
            estimate_point(setup, setup.ttp_batch_kernel_factory(bw), bw,
                           config.sets_per_point, config.seed, executor,
                           config.batch)
                .mean();
        rows.push_back(row);
      }
    }
  }
  return rows;
}

}  // namespace tokenring::experiments
