#include "tokenring/experiments/allocation_study.hpp"

#include <algorithm>
#include <limits>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/checks.hpp"

namespace tokenring::experiments {

std::vector<AllocationStudyRow> run_allocation_study(
    const AllocationStudyConfig& config) {
  TR_EXPECTS(!config.utilization_levels.empty());
  TR_EXPECTS(config.sets_per_point >= 1);

  const BitsPerSecond bw = mbps(config.bandwidth_mbps);
  const auto params = config.setup.ttp_params();
  msg::MessageSetGenerator gen(config.setup.generator_config());

  std::vector<AllocationStudyRow> rows;
  for (double target_u : config.utilization_levels) {
    TR_EXPECTS(target_u > 0.0);
    // Common random numbers: the same sets are scored by every scheme.
    std::vector<msg::MessageSet> sets;
    Rng rng(config.seed);
    for (std::size_t i = 0; i < config.sets_per_point; ++i) {
      auto base = gen.generate(rng);
      const double u0 = base.utilization(bw);
      sets.push_back(base.scaled(target_u / u0));
    }

    for (auto scheme : analysis::all_allocation_schemes()) {
      std::size_t feasible = 0;
      for (const auto& set : sets) {
        const Seconds ttrt = analysis::select_ttrt(set, params.ring, bw);
        if (analysis::allocate(set, params, bw, ttrt, scheme).feasible()) {
          ++feasible;
        }
      }
      AllocationStudyRow row;
      row.scheme = scheme;
      row.utilization = target_u;
      row.feasible_fraction =
          static_cast<double>(feasible) /
          static_cast<double>(config.sets_per_point);
      rows.push_back(row);
    }
  }
  return rows;
}

WorstCaseStudyResult run_worst_case_study(const WorstCaseStudyConfig& config) {
  TR_EXPECTS(config.num_sets >= 1);
  const BitsPerSecond bw = mbps(config.bandwidth_mbps);
  const auto params = config.setup.ttp_params();
  msg::MessageSetGenerator gen(config.setup.generator_config());
  Rng rng(config.seed);

  WorstCaseStudyResult result;
  result.analytical_bound = std::numeric_limits<double>::infinity();
  result.min_breakdown = std::numeric_limits<double>::infinity();
  RunningStats breakdowns;

  for (std::size_t i = 0; i < config.num_sets; ++i) {
    const auto base = gen.generate(rng);
    const Seconds ttrt = analysis::select_ttrt(base, params.ring, bw);
    const double bound =
        analysis::ttp_worst_case_utilization_bound(params, bw, ttrt);
    result.analytical_bound = std::min(result.analytical_bound, bound);

    // Soundness at the bound: normalize this set's utilization to 99.9% of
    // the bound; Theorem 5.1 must accept it.
    // Note: the published 33% bound ignores the per-visit frame overhead,
    // which our criterion includes (the n*F_ovhd term), so the normalized
    // check deducts that overhead share from the bound first.
    const double overhead_share =
        static_cast<double>(base.size()) * params.frame.overhead_time(bw) /
        ttrt;
    const double usable_bound = std::max(0.0, bound - overhead_share / 3.0);
    const double u0 = base.utilization(bw);
    if (usable_bound > 0.0) {
      const auto at_bound = base.scaled(0.999 * usable_bound / u0);
      if (!analysis::ttp_feasible_at(at_bound, params, bw, ttrt)) {
        ++result.bound_violations;
      }
    }

    // Empirical breakdown for this set.
    const auto sat = breakdown::find_saturation(
        base,
        [&](const msg::MessageSet& m) {
          return analysis::ttp_feasible_at(m, params, bw, ttrt);
        },
        bw);
    if (sat.found) {
      breakdowns.add(sat.breakdown_utilization);
      result.min_breakdown =
          std::min(result.min_breakdown, sat.breakdown_utilization);
    }
  }
  result.mean_breakdown = breakdowns.mean();
  return result;
}

}  // namespace tokenring::experiments
