#include "tokenring/experiments/allocation_study.hpp"

#include "tokenring/obs/span.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "tokenring/analysis/kernels.hpp"
#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/exec/seed_stream.hpp"

namespace tokenring::experiments {

std::vector<AllocationStudyRow> run_allocation_study(
    const AllocationStudyConfig& config) {
  const obs::Span span("experiments/allocation_study");
  TR_EXPECTS(!config.utilization_levels.empty());
  TR_EXPECTS(config.sets_per_point >= 1);

  const BitsPerSecond bw = mbps(config.bandwidth_mbps);
  const auto params = config.setup.ttp_params();
  msg::MessageSetGenerator gen(config.setup.generator_config());
  const exec::Executor executor(config.jobs);

  std::vector<AllocationStudyRow> rows;
  for (double target_u : config.utilization_levels) {
    TR_EXPECTS(target_u > 0.0);
    // Common random numbers: the same sets are scored by every scheme (and,
    // because set i comes from the seed stream (seed, i), by every level
    // and every jobs count).
    std::vector<msg::MessageSet> sets(config.sets_per_point);
    executor.parallel_for(config.sets_per_point, [&](std::size_t i) {
      Rng rng = exec::make_trial_rng(config.seed, i);
      auto base = gen.generate(rng);
      const double u0 = base.utilization(bw);
      sets[i] = base.scaled(target_u / u0);
    });

    for (auto scheme : analysis::all_allocation_schemes()) {
      const std::size_t feasible = exec::map_reduce(
          executor, sets.size(), std::size_t{0},
          [&](std::size_t i) -> std::size_t {
            const Seconds ttrt =
                analysis::select_ttrt(sets[i], params.ring, bw);
            return analysis::allocate(sets[i], params, bw, ttrt, scheme)
                           .feasible()
                       ? 1
                       : 0;
          },
          [](std::size_t acc, std::size_t one) { return acc + one; });
      AllocationStudyRow row;
      row.scheme = scheme;
      row.utilization = target_u;
      row.feasible_fraction =
          static_cast<double>(feasible) /
          static_cast<double>(config.sets_per_point);
      rows.push_back(row);
    }
  }
  return rows;
}

WorstCaseStudyResult run_worst_case_study(const WorstCaseStudyConfig& config) {
  const obs::Span span("experiments/worst_case_study");
  TR_EXPECTS(config.num_sets >= 1);
  const BitsPerSecond bw = mbps(config.bandwidth_mbps);
  const auto params = config.setup.ttp_params();
  msg::MessageSetGenerator gen(config.setup.generator_config());
  const exec::Executor executor(config.jobs);

  // Per-set outcomes are computed in parallel (independent seed streams),
  // then folded in set order so the aggregates are jobs-invariant.
  struct SetOutcome {
    double bound = 0.0;
    bool violation = false;
    bool found = false;
    double breakdown = 0.0;
  };
  std::vector<SetOutcome> outcomes(config.num_sets);
  std::vector<msg::MessageSet> bases(config.num_sets);
  executor.parallel_for(config.num_sets, [&](std::size_t i) {
    SetOutcome& out = outcomes[i];
    Rng rng = exec::make_trial_rng(config.seed, i);
    const auto& base = bases[i] = gen.generate(rng);
    const Seconds ttrt = analysis::select_ttrt(base, params.ring, bw);
    out.bound = analysis::ttp_worst_case_utilization_bound(params, bw, ttrt);

    // Soundness at the bound: normalize this set's utilization to 99.9% of
    // the bound; Theorem 5.1 must accept it.
    // Note: the published 33% bound ignores the per-visit frame overhead,
    // which our criterion includes (the n*F_ovhd term), so the normalized
    // check deducts that overhead share from the bound first.
    const double overhead_share =
        static_cast<double>(base.size()) * params.frame.overhead_time(bw) /
        ttrt;
    const double usable_bound =
        std::max(0.0, out.bound - overhead_share / 3.0);
    const double u0 = base.utilization(bw);
    if (usable_bound > 0.0) {
      const auto at_bound = base.scaled(0.999 * usable_bound / u0);
      if (!analysis::ttp_feasible_at(at_bound, params, bw, ttrt)) {
        out.violation = true;
      }
    }
  });

  // Empirical breakdown per set, searched in lockstep SoA batches. The
  // paper-rule TtpBatchKernel selects each lane's TTRT on its base set —
  // exactly the pinned-TTRT predicate the per-set search used (the TTRT
  // rule is scale-invariant), so every outcome is bit-identical. Chunks are
  // independent, so the chunk grid parallelizes without changing results.
  TR_EXPECTS(config.batch >= 1);
  const std::size_t chunks = (config.num_sets + config.batch - 1) / config.batch;
  executor.parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = c * config.batch;
    const std::size_t count = std::min(config.batch, config.num_sets - lo);
    const std::span<const msg::MessageSet> chunk(bases.data() + lo, count);
    const analysis::TtpBatchKernel kernel(chunk, params, bw);
    const auto sats = breakdown::find_saturation_batch(
        chunk,
        [&kernel](std::span<const double> scales,
                  std::span<const std::uint8_t> active,
                  std::span<std::uint8_t> verdicts) {
          kernel.evaluate(scales, active, verdicts);
        },
        bw);
    for (std::size_t j = 0; j < count; ++j) {
      if (sats[j].found) {
        outcomes[lo + j].found = true;
        outcomes[lo + j].breakdown = sats[j].breakdown_utilization;
      }
    }
  });

  WorstCaseStudyResult result;
  result.analytical_bound = std::numeric_limits<double>::infinity();
  result.min_breakdown = std::numeric_limits<double>::infinity();
  RunningStats breakdowns;
  for (const SetOutcome& out : outcomes) {
    result.analytical_bound = std::min(result.analytical_bound, out.bound);
    if (out.violation) ++result.bound_violations;
    if (out.found) {
      breakdowns.add(out.breakdown);
      result.min_breakdown = std::min(result.min_breakdown, out.breakdown);
    }
  }
  result.mean_breakdown = breakdowns.mean();
  return result;
}

}  // namespace tokenring::experiments
