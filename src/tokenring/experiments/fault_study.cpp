#include "tokenring/experiments/fault_study.hpp"

#include "tokenring/obs/span.hpp"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "tokenring/analysis/kernels.hpp"
#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/exec/executor.hpp"
#include "tokenring/exec/seed_stream.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/workload.hpp"

namespace tokenring::experiments {

namespace {

/// A base set scaled to the study load for each protocol (when its
/// schedulability boundary exists).
struct PreparedSet {
  bool pdp_found = false;
  bool ttp_found = false;
  msg::MessageSet pdp_set;
  msg::MessageSet ttp_set;
};

struct CellStats {
  double missed = 0.0;
  double released = 0.0;
  double attributed = 0.0;
  Seconds outage = 0.0;
  double injected = 0.0;

  void absorb(const CellStats& o) {
    missed += o.missed;
    released += o.released;
    attributed += o.attributed;
    outage += o.outage;
    injected += o.injected;
  }
};

struct TrialResult {
  CellStats pdp;
  CellStats ttp;
};

CellStats stats_of(const sim::SimMetrics& m) {
  CellStats s;
  s.missed = static_cast<double>(m.deadline_misses);
  s.released = static_cast<double>(m.messages_released);
  s.attributed = static_cast<double>(m.fault_attributed_misses());
  s.outage = m.total_outage();
  s.injected = static_cast<double>(m.faults_injected());
  return s;
}

/// Deterministic plan of `count` faults of one kind, uniform over the first
/// 90% of the run (a fault right at the horizon has no time to show its
/// consequences and only adds noise). Station crashes pick a uniform victim
/// and rejoin after the configured downtime.
fault::FaultPlan make_plan(fault::FaultKind kind, int count, Seconds horizon,
                           std::uint64_t trial_seed, int num_stations,
                           const FaultStudyConfig& config) {
  fault::FaultPlan plan;
  Rng rng = exec::make_trial_rng(trial_seed, 0xfa17);
  std::vector<Seconds> times;
  times.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    times.push_back(rng.uniform(0.0, 0.9 * horizon));
  }
  std::sort(times.begin(), times.end());
  const Seconds downtime = config.crash_downtime_fraction * horizon;
  for (Seconds t : times) {
    switch (kind) {
      case fault::FaultKind::kTokenLoss:
        plan.add_token_loss(t);
        break;
      case fault::FaultKind::kFrameCorruption:
        plan.add_frame_corruption(t);
        break;
      case fault::FaultKind::kNoiseBurst:
        plan.add_noise_burst(t, config.noise_duration);
        break;
      case fault::FaultKind::kDuplicateToken:
        plan.add_duplicate_token(t);
        break;
      case fault::FaultKind::kStationCrash:
      case fault::FaultKind::kStationRejoin: {
        const int victim = static_cast<int>(
            rng.uniform_int(0, static_cast<std::int64_t>(num_stations) - 1));
        plan.add_station_crash(t, victim, downtime);
        break;
      }
    }
  }
  return plan;
}

}  // namespace

std::vector<FaultStudyRow> run_fault_study(const FaultStudyConfig& config) {
  const obs::Span span("experiments/fault_study");
  TR_EXPECTS(!config.kinds.empty());
  TR_EXPECTS(!config.fault_counts.empty());
  TR_EXPECTS(config.sets_per_point >= 1);
  TR_EXPECTS(config.load_scale > 0.0 && config.load_scale < 1.0);
  TR_EXPECTS(config.noise_duration >= 0.0);
  TR_EXPECTS(config.crash_downtime_fraction > 0.0 &&
             config.crash_downtime_fraction < 1.0);

  const BitsPerSecond bw = mbps(config.bandwidth_mbps);
  const auto pdp_params =
      config.setup.pdp_params(analysis::PdpVariant::kModified8025);
  const auto ttp_params = config.setup.ttp_params();

  // The stochastic parts that share one engine stream (set generation and
  // boundary search) run sequentially up front; the expensive simulations
  // then fan out over independent trials, each with its own seed stream, so
  // results are bit-identical for any jobs value. Boundary searches run in
  // lockstep SoA batches; drawing every base first leaves the generator
  // stream unchanged because the searches consume no randomness.
  std::vector<PreparedSet> prepared(config.sets_per_point);
  {
    TR_EXPECTS(config.batch >= 1);
    msg::MessageSetGenerator gen(config.setup.generator_config());
    Rng rng(config.seed);
    std::vector<msg::MessageSet> bases;
    bases.reserve(config.sets_per_point);
    for (std::size_t i = 0; i < config.sets_per_point; ++i) {
      bases.push_back(gen.generate(rng));
    }
    for (std::size_t lo = 0; lo < bases.size(); lo += config.batch) {
      const std::size_t count = std::min(config.batch, bases.size() - lo);
      const std::span<const msg::MessageSet> chunk(bases.data() + lo, count);
      const analysis::PdpBatchKernel pdp_kernel(chunk, pdp_params, bw);
      const auto pdp_sats = breakdown::find_saturation_batch(
          chunk,
          [&pdp_kernel](std::span<const double> scales,
                        std::span<const std::uint8_t> active,
                        std::span<std::uint8_t> verdicts) {
            pdp_kernel.evaluate(scales, active, verdicts);
          },
          bw);
      const analysis::TtpBatchKernel ttp_kernel(chunk, ttp_params, bw);
      const auto ttp_sats = breakdown::find_saturation_batch(
          chunk,
          [&ttp_kernel](std::span<const double> scales,
                        std::span<const std::uint8_t> active,
                        std::span<std::uint8_t> verdicts) {
            ttp_kernel.evaluate(scales, active, verdicts);
          },
          bw);
      for (std::size_t j = 0; j < count; ++j) {
        PreparedSet& p = prepared[lo + j];
        if (pdp_sats[j].found) {
          p.pdp_found = true;
          p.pdp_set =
              bases[lo + j].scaled(pdp_sats[j].critical_scale * config.load_scale);
        }
        if (ttp_sats[j].found) {
          p.ttp_found = true;
          p.ttp_set =
              bases[lo + j].scaled(ttp_sats[j].critical_scale * config.load_scale);
        }
      }
    }
  }

  const std::size_t counts = config.fault_counts.size();
  const std::size_t cells = config.kinds.size() * counts;
  const std::size_t trials = cells * config.sets_per_point;

  auto run_trial = [&](std::size_t t) -> TrialResult {
    const std::size_t cell = t / config.sets_per_point;
    const std::size_t set_idx = t % config.sets_per_point;
    const fault::FaultKind kind = config.kinds[cell / counts];
    const int count = config.fault_counts[cell % counts];
    const auto& p = prepared[set_idx];
    const std::uint64_t trial_seed = exec::derive_seed(config.seed, t);

    TrialResult out;
    if (p.pdp_found) {
      auto cfg = sim::make_sim_config(p.pdp_set, pdp_params, bw,
                                      config.horizon_periods);
      cfg.seed = config.seed + set_idx;
      cfg.faults = make_plan(kind, count, cfg.horizon, trial_seed,
                             pdp_params.ring.num_stations, config);
      out.pdp = stats_of(sim::run_simulation(p.pdp_set, cfg));
    }
    if (p.ttp_found) {
      auto cfg = sim::make_sim_config(p.ttp_set, ttp_params, bw,
                                      config.horizon_periods);
      cfg.seed = config.seed + set_idx;
      cfg.faults = make_plan(kind, count, cfg.horizon, trial_seed,
                             ttp_params.ring.num_stations, config);
      out.ttp = stats_of(sim::run_simulation(p.ttp_set, cfg));
    }
    return out;
  };

  std::vector<TrialResult> results(trials);
  exec::Executor executor(config.jobs);
  executor.parallel_for(trials, [&](std::size_t t) { results[t] = run_trial(t); });

  std::vector<FaultStudyRow> rows;
  rows.reserve(2 * cells);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    CellStats pdp, ttp;
    for (std::size_t i = 0; i < config.sets_per_point; ++i) {
      pdp.absorb(results[cell * config.sets_per_point + i].pdp);
      ttp.absorb(results[cell * config.sets_per_point + i].ttp);
    }
    const fault::FaultKind kind = config.kinds[cell / counts];
    const int count = config.fault_counts[cell % counts];
    const auto emit = [&](const char* protocol, const CellStats& s) {
      FaultStudyRow row;
      row.protocol = protocol;
      row.kind = kind;
      row.faults = count;
      row.miss_ratio = s.released > 0 ? s.missed / s.released : 0.0;
      row.attributed_ratio = s.missed > 0 ? s.attributed / s.missed : 0.0;
      row.outage = s.injected > 0 ? s.outage / s.injected : 0.0;
      rows.push_back(row);
    };
    emit("modified8025", pdp);
    emit("fddi", ttp);
  }
  return rows;
}

}  // namespace tokenring::experiments
