#include "tokenring/experiments/fault_study.hpp"

#include <algorithm>

#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/sim/pdp_sim.hpp"
#include "tokenring/sim/ttp_sim.hpp"
#include "tokenring/sim/workload.hpp"

namespace tokenring::experiments {

namespace {

std::vector<Seconds> random_loss_times(Rng& rng, int count, Seconds horizon) {
  std::vector<Seconds> times;
  times.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Avoid the last 10%: a loss right at the horizon has no time to show
    // its consequences and only adds noise.
    times.push_back(rng.uniform(0.0, 0.9 * horizon));
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace

std::vector<FaultStudyRow> run_fault_study(const FaultStudyConfig& config) {
  TR_EXPECTS(!config.loss_counts.empty());
  TR_EXPECTS(config.sets_per_point >= 1);
  TR_EXPECTS(config.load_scale > 0.0 && config.load_scale < 1.0);

  const BitsPerSecond bw = mbps(config.bandwidth_mbps);
  const auto pdp_params =
      config.setup.pdp_params(analysis::PdpVariant::kModified8025);
  const auto ttp_params = config.setup.ttp_params();
  msg::MessageSetGenerator gen(config.setup.generator_config());

  std::vector<FaultStudyRow> rows;
  for (int losses : config.loss_counts) {
    TR_EXPECTS(losses >= 0);
    double pdp_missed = 0.0, pdp_released = 0.0;
    double ttp_missed = 0.0, ttp_released = 0.0;
    Seconds pdp_outage = 0.0;
    Seconds ttp_outage = 0.0;

    Rng rng(config.seed);
    for (std::size_t i = 0; i < config.sets_per_point; ++i) {
      const auto base = gen.generate(rng);

      // PDP run.
      {
        const auto predicate = [&](const msg::MessageSet& m) {
          return analysis::pdp_feasible(m, pdp_params, bw);
        };
        const auto sat = breakdown::find_saturation(base, predicate, bw);
        if (sat.found) {
          const auto set = base.scaled(sat.critical_scale * config.load_scale);
          auto cfg = sim::make_pdp_sim_config(set, pdp_params, bw,
                                              config.horizon_periods);
          cfg.seed = config.seed + i;
          cfg.token_loss_times =
              random_loss_times(rng, losses, cfg.horizon);
          const auto m = sim::run_pdp_simulation(set, cfg);
          pdp_missed += static_cast<double>(m.deadline_misses);
          pdp_released += static_cast<double>(m.messages_released);
          const Seconds theta = pdp_params.ring.theta(bw);
          pdp_outage =
              std::max(pdp_params.frame.frame_time(bw), theta) + theta;
        }
      }

      // TTP run.
      {
        const auto predicate = [&](const msg::MessageSet& m) {
          return analysis::ttp_feasible(m, ttp_params, bw);
        };
        const auto sat = breakdown::find_saturation(base, predicate, bw);
        if (sat.found) {
          const auto set = base.scaled(sat.critical_scale * config.load_scale);
          auto cfg = sim::make_ttp_sim_config(set, ttp_params, bw,
                                              config.horizon_periods);
          cfg.seed = config.seed + i;
          cfg.token_loss_times =
              random_loss_times(rng, losses, cfg.horizon);
          const auto m = sim::run_ttp_simulation(set, cfg);
          ttp_missed += static_cast<double>(m.deadline_misses);
          ttp_released += static_cast<double>(m.messages_released);
          ttp_outage = 2.0 * cfg.ttrt +
                       2.0 * ttp_params.ring.walk_time(bw) +
                       ttp_params.ring.token_time(bw);
        }
      }
    }

    FaultStudyRow pdp_row;
    pdp_row.protocol = "modified8025";
    pdp_row.losses = losses;
    pdp_row.miss_ratio = pdp_released > 0 ? pdp_missed / pdp_released : 0.0;
    pdp_row.outage = pdp_outage;
    rows.push_back(pdp_row);

    FaultStudyRow ttp_row;
    ttp_row.protocol = "fddi";
    ttp_row.losses = losses;
    ttp_row.miss_ratio = ttp_released > 0 ? ttp_missed / ttp_released : 0.0;
    ttp_row.outage = ttp_outage;
    rows.push_back(ttp_row);
  }
  return rows;
}

}  // namespace tokenring::experiments
