// Deterministic seed streams for parallel Monte Carlo (SplitMix64).
//
// Trial i of a sweep must see the same random draws no matter which worker
// thread runs it or in what order trials are scheduled. We therefore never
// share one engine stream across trials; instead each trial gets its own
// `Rng` seeded from (master seed, trial index) through SplitMix64, the
// avalanche-quality mixer introduced as the seeding generator for
// splittable PRNGs (Steele, Lea & Flood, OOPSLA 2014). Derived seeds for
// consecutive indices are statistically independent even though the inputs
// differ by one bit, which a plain `master + i` seeding of mt19937_64 does
// not guarantee.

#pragma once

#include <cstdint>

#include "tokenring/common/rng.hpp"

namespace tokenring::exec {

/// One SplitMix64 output step: mixes `state + i * GOLDEN_GAMMA` through the
/// finalizer. Exposed for tests; `derive_seed` is the intended entry point.
std::uint64_t splitmix64(std::uint64_t x);

/// Seed for sub-stream `index` of the stream family keyed by `master`.
/// Equal (master, index) pairs always yield the same seed; distinct indices
/// yield decorrelated seeds.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index);

/// Independent per-trial engine: `Rng(derive_seed(master, index))`.
Rng make_trial_rng(std::uint64_t master, std::uint64_t index);

}  // namespace tokenring::exec
