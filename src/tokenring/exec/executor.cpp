#include "tokenring/exec/executor.hpp"

#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"
#include "tokenring/obs/span.hpp"

namespace tokenring::exec {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<std::size_t>(hw) : 1;
}

Executor::Executor(std::size_t jobs) : jobs_(jobs ? jobs : default_jobs()) {
  if (jobs_ > 1) pool_ = std::make_unique<ThreadPool>(jobs_);
}

Executor::~Executor() = default;

namespace {

// Shared bookkeeping for one parallel_for call: completion count, the
// winning (lowest-index) exception, and cancellation fan-out.
struct ForState {
  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t completed = 0;
  std::size_t total = 0;
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  bool abort = false;  // error seen or cancel requested: skip new indices
};

}  // namespace

void Executor::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& body,
                            const ParallelForOptions& options) const {
  TR_EXPECTS(body != nullptr);
  if (n == 0) return;

  static const obs::SpanHandle span_handle("exec/parallel_for");
  static const obs::Counter tasks("exec.parallel_for_tasks");
  const obs::Span span(span_handle);
  tasks.add(n);

  const bool cancellable = options.cancel.has_value();
  const auto cancelled = [&] {
    return cancellable && options.cancel->cancel_requested();
  };

  if (!pool_) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancelled()) throw Cancelled();
      body(i);  // exceptions propagate directly; lowest index trivially wins
      if (options.progress) options.progress(i + 1, n);
    }
    if (cancelled()) throw Cancelled();
    return;
  }

  auto state = std::make_shared<ForState>();
  state->total = n;

  for (std::size_t i = 0; i < n; ++i) {
    pool_->submit([state, i, &body, &options, &cancelled] {
      bool run = true;
      {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (state->abort) run = false;
      }
      if (run && cancelled()) {
        std::lock_guard<std::mutex> lock(state->mutex);
        state->abort = true;
        run = false;
      }
      if (run) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->abort = true;
          if (i < state->error_index) {
            state->error_index = i;
            state->error = std::current_exception();
          }
        }
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      ++state->completed;
      if (run && !state->error && options.progress) {
        options.progress(state->completed, state->total);
      }
      if (state->completed == state->total) state->all_done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] { return state->completed == state->total; });
  if (state->error) std::rethrow_exception(state->error);
  if (cancelled()) throw Cancelled();
}

}  // namespace tokenring::exec
