// Parallel-for / map-reduce driver over the thread pool.
//
// `Executor` is the object the library threads through its hot paths: it
// owns a `ThreadPool` when jobs > 1 and degenerates to a plain inline loop
// when jobs == 1, so sequential execution stays a first-class, dependency-
// free code path. Determinism contract: `parallel_for` promises nothing
// about execution order, so callers that need reproducible results must
// make every index self-contained (e.g. per-index seed streams, see
// seed_stream.hpp) and reduce in index order — which `map_reduce` does.
// Under that discipline results are bit-identical for any jobs value.

#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "tokenring/exec/thread_pool.hpp"

namespace tokenring::exec {

/// Worker count to use when the caller does not specify one: the hardware
/// concurrency, or 1 when the runtime cannot report it.
std::size_t default_jobs();

/// Cooperative cancellation: hand the same token to a running sweep and to
/// whoever may abort it; `request_cancel` makes the sweep stop scheduling
/// new indices and throw `Cancelled` once in-flight ones finish.
class CancellationToken {
 public:
  CancellationToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() const { cancelled_->store(true); }
  bool cancel_requested() const { return cancelled_->load(); }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// Thrown by parallel_for/map_reduce when their token was cancelled.
class Cancelled : public std::runtime_error {
 public:
  Cancelled() : std::runtime_error("execution cancelled") {}
};

/// Optional hooks for one parallel_for/map_reduce call.
struct ParallelForOptions {
  /// Called after each index completes, as (done, total). Serialized by the
  /// driver; may be invoked from worker threads.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Checked before each index starts.
  std::optional<CancellationToken> cancel;
};

/// Execution policy: jobs == 1 runs inline on the calling thread; jobs > 1
/// runs on an owned ThreadPool. Create one per sweep and reuse it for every
/// point — pool startup is paid once, not per estimate.
class Executor {
 public:
  /// `jobs` == 0 picks default_jobs().
  explicit Executor(std::size_t jobs = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t jobs() const { return jobs_; }

  /// Run body(i) for every i in [0, n). Blocks until all indices finished.
  /// The first exception thrown by a body (lowest index wins when several
  /// throw) is rethrown here; remaining indices are skipped once a failure
  /// or cancellation is observed. Throws `Cancelled` if the token fired.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    const ParallelForOptions& options = {}) const;

 private:
  std::size_t jobs_;
  std::unique_ptr<ThreadPool> pool_;  // null iff jobs_ == 1
};

/// Deterministic parallel map + ordered fold: results[i] = map_fn(i) are
/// computed in parallel, then folded left-to-right in index order as
/// acc = reduce_fn(acc, results[i]). The fold order (and therefore any
/// floating-point rounding) is independent of the jobs count. The mapped
/// type may differ from the accumulator type (e.g. a map_fn returning a
/// *vector* of partials per index, with the reducer folding each element
/// in order — how the batched Monte Carlo path keeps the per-shard merge
/// tree while dispatching whole batch groups).
template <typename T, typename MapFn, typename ReduceFn>
T map_reduce(const Executor& executor, std::size_t n, T init, MapFn&& map_fn,
             ReduceFn&& reduce_fn, const ParallelForOptions& options = {}) {
  using Mapped = std::decay_t<std::invoke_result_t<MapFn&, std::size_t>>;
  std::vector<std::optional<Mapped>> results(n);
  executor.parallel_for(
      n, [&](std::size_t i) { results[i].emplace(map_fn(i)); }, options);
  T acc = std::move(init);
  for (auto& r : results) acc = reduce_fn(std::move(acc), std::move(*r));
  return acc;
}

}  // namespace tokenring::exec
