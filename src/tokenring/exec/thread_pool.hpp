// Fixed-size worker pool with a bounded task queue.
//
// Workers are started in the constructor and joined in the destructor.
// `submit` blocks while the queue is at capacity, so a producer enqueueing
// a long sweep cannot outrun the workers and balloon memory. Shutdown is
// clean: the destructor lets workers drain every task that was already
// accepted before joining, so no submitted work is silently dropped.
//
// Tasks must not throw — higher-level drivers (Executor::parallel_for)
// wrap user callables and route exceptions back to the caller; a throwing
// task at this layer terminates, like an escaping exception on any thread.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tokenring::exec {

class ThreadPool {
 public:
  /// Start `num_threads` workers (>= 1). `queue_capacity` bounds the number
  /// of accepted-but-unstarted tasks; 0 picks 4 * num_threads.
  explicit ThreadPool(std::size_t num_threads, std::size_t queue_capacity = 0);

  /// Drains all accepted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }
  std::size_t queue_capacity() const { return capacity_; }

  /// Enqueue one task; blocks while the queue is full. Must not be called
  /// during/after destruction (precondition, checked).
  void submit(std::function<void()> task);

 private:
  void worker_loop();

  std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tokenring::exec
