#include "tokenring/exec/seed_stream.hpp"

namespace tokenring::exec {

namespace {
// 2^64 / phi, the "golden gamma" stream increment from the SplitMix64
// reference implementation.
constexpr std::uint64_t kGoldenGamma = 0x9E3779B97F4A7C15ULL;
}  // namespace

std::uint64_t splitmix64(std::uint64_t x) {
  x += kGoldenGamma;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) {
  // Walk the SplitMix64 stream keyed by `master` to position `index`, then
  // mix once more so that streams of nearby masters also decorrelate.
  return splitmix64(splitmix64(master + index * kGoldenGamma));
}

Rng make_trial_rng(std::uint64_t master, std::uint64_t index) {
  return Rng(derive_seed(master, index));
}

}  // namespace tokenring::exec
