#include "tokenring/exec/thread_pool.hpp"

#include <utility>

#include "tokenring/common/checks.hpp"

namespace tokenring::exec {

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
    : capacity_(queue_capacity ? queue_capacity : 4 * num_threads) {
  TR_EXPECTS(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  TR_EXPECTS(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return stopping_ || queue_.size() < capacity_; });
    TR_EXPECTS_MSG(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();
  }
}

}  // namespace tokenring::exec
