#include "tokenring/breakdown/monte_carlo.hpp"

#include <algorithm>
#include <cmath>

#include "tokenring/common/checks.hpp"

namespace tokenring::breakdown {

double BreakdownEstimate::quantile(double q) const {
  TR_EXPECTS(q >= 0.0 && q <= 1.0);
  TR_EXPECTS_MSG(!samples.empty(),
                 "quantile needs keep_samples and at least one sample");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const SchedulablePredicate& predicate, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options) {
  TR_EXPECTS(options.num_sets >= 1);
  TR_EXPECTS(bw > 0.0);

  BreakdownEstimate est;
  for (std::size_t i = 0; i < options.num_sets; ++i) {
    const msg::MessageSet base = generator.generate(rng);
    const SaturationResult sat =
        find_saturation(base, predicate, bw, options.saturation);
    if (sat.degenerate_zero) {
      ++est.degenerate_sets;
      est.utilization.add(0.0);
      if (options.keep_samples) est.samples.push_back(0.0);
    } else if (!sat.found) {
      ++est.unbounded_sets;  // pathological; excluded from the average
    } else {
      est.utilization.add(sat.breakdown_utilization);
      if (options.keep_samples) {
        est.samples.push_back(sat.breakdown_utilization);
      }
    }
  }
  return est;
}

}  // namespace tokenring::breakdown
