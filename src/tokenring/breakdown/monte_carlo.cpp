#include "tokenring/breakdown/monte_carlo.hpp"

#include <algorithm>
#include <cmath>

#include "tokenring/common/checks.hpp"
#include "tokenring/exec/seed_stream.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::breakdown {

namespace {

/// Per-trial tallies for the run manifest. Bumped once per Monte Carlo
/// trial (not per saturation step), so the hot path stays untouched.
void count_trial(const SaturationResult& sat) {
  static const obs::Counter trials("breakdown.trials");
  static const obs::Counter degenerate("breakdown.degenerate_sets");
  static const obs::Counter unbounded("breakdown.unbounded_sets");
  trials.add();
  if (sat.degenerate_zero) {
    degenerate.add();
  } else if (!sat.found) {
    unbounded.add();
  }
}

}  // namespace

double BreakdownEstimate::quantile(double q) const {
  TR_EXPECTS(q >= 0.0 && q <= 1.0);
  TR_EXPECTS_MSG(!samples.empty(),
                 "quantile needs keep_samples and at least one sample");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void BreakdownEstimate::merge(const BreakdownEstimate& other) {
  utilization.merge(other.utilization);
  degenerate_sets += other.degenerate_sets;
  unbounded_sets += other.unbounded_sets;
  samples.insert(samples.end(), other.samples.begin(), other.samples.end());
}

namespace {

// Classify one saturated draw into the estimate. Shared by both entry
// points so their per-trial semantics cannot drift apart.
void accumulate_trial(const SaturationResult& sat, bool keep_samples,
                      BreakdownEstimate& est) {
  if (sat.degenerate_zero) {
    ++est.degenerate_sets;
    est.utilization.add(0.0);
    if (keep_samples) est.samples.push_back(0.0);
  } else if (!sat.found) {
    ++est.unbounded_sets;  // pathological; excluded from the average
  } else {
    est.utilization.add(sat.breakdown_utilization);
    if (keep_samples) est.samples.push_back(sat.breakdown_utilization);
  }
}

// Saturate one drawn base set; both trial styles (predicate / kernel
// factory) funnel through this signature so the estimator loops are shared.
using SaturateTrial =
    std::function<SaturationResult(const msg::MessageSet& base)>;

SaturateTrial saturate_with_predicate(const SchedulablePredicate& predicate,
                                      BitsPerSecond bw,
                                      const SaturationOptions& options) {
  return [&predicate, bw, &options](const msg::MessageSet& base) {
    return find_saturation(base, predicate, bw, options);
  };
}

SaturateTrial saturate_with_factory(const ScaleKernelFactory& factory,
                                    BitsPerSecond bw,
                                    const SaturationOptions& options) {
  return [&factory, bw, &options](const msg::MessageSet& base) {
    const ScaleKernel kernel = factory(base);
    return find_saturation_scaled(base, kernel, bw, options);
  };
}

BreakdownEstimate estimate_sequential(const msg::MessageSetGenerator& generator,
                                      const SaturateTrial& saturate, Rng& rng,
                                      const MonteCarloOptions& options) {
  TR_EXPECTS(options.num_sets >= 1);

  BreakdownEstimate est;
  for (std::size_t i = 0; i < options.num_sets; ++i) {
    const msg::MessageSet base = generator.generate(rng);
    const SaturationResult sat = saturate(base);
    count_trial(sat);
    accumulate_trial(sat, options.keep_samples, est);
  }
  return est;
}

BreakdownEstimate estimate_parallel(const msg::MessageSetGenerator& generator,
                                    const SaturateTrial& saturate,
                                    std::uint64_t master_seed,
                                    const exec::Executor& executor,
                                    const MonteCarloOptions& options) {
  TR_EXPECTS(options.num_sets >= 1);
  TR_EXPECTS(options.shard_size >= 1);

  const std::size_t n = options.num_sets;
  const std::size_t shard = options.shard_size;
  const std::size_t num_shards = (n + shard - 1) / shard;

  // Trial i is fully determined by (master_seed, i): its own Rng, its own
  // draw, its own saturation search. Threads only decide *who* computes a
  // shard, never *what* it computes, so the result cannot depend on the
  // executor's jobs count or on scheduling order.
  const auto run_shard = [&](std::size_t s) {
    BreakdownEstimate part;
    const std::size_t lo = s * shard;
    const std::size_t hi = std::min(n, lo + shard);
    for (std::size_t i = lo; i < hi; ++i) {
      Rng rng = exec::make_trial_rng(master_seed, i);
      const msg::MessageSet base = generator.generate(rng);
      const SaturationResult sat = saturate(base);
      count_trial(sat);
      accumulate_trial(sat, options.keep_samples, part);
    }
    return part;
  };

  exec::ParallelForOptions pf;
  pf.cancel = options.cancel;
  if (options.progress) {
    pf.progress = [&options, n, shard](std::size_t done_shards, std::size_t) {
      options.progress(std::min(n, done_shards * shard), n);
    };
  }

  // Shards merge left-to-right in trial order; because the shard grid is
  // fixed by shard_size alone, the floating-point merge tree — and hence
  // every output bit — is the same for any jobs count.
  return exec::map_reduce(
      executor, num_shards, BreakdownEstimate{}, run_shard,
      [](BreakdownEstimate acc, BreakdownEstimate part) {
        acc.merge(part);
        return acc;
      },
      pf);
}

}  // namespace

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const SchedulablePredicate& predicate, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options) {
  TR_EXPECTS(bw > 0.0);
  return estimate_sequential(
      generator, saturate_with_predicate(predicate, bw, options.saturation),
      rng, options);
}

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const SchedulablePredicate& predicate, BitsPerSecond bw,
    std::uint64_t master_seed, const exec::Executor& executor,
    const MonteCarloOptions& options) {
  TR_EXPECTS(bw > 0.0);
  return estimate_parallel(
      generator, saturate_with_predicate(predicate, bw, options.saturation),
      master_seed, executor, options);
}

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const ScaleKernelFactory& kernel_factory, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options) {
  TR_EXPECTS(bw > 0.0);
  return estimate_sequential(
      generator, saturate_with_factory(kernel_factory, bw, options.saturation),
      rng, options);
}

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const ScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::uint64_t master_seed, const exec::Executor& executor,
    const MonteCarloOptions& options) {
  TR_EXPECTS(bw > 0.0);
  return estimate_parallel(
      generator, saturate_with_factory(kernel_factory, bw, options.saturation),
      master_seed, executor, options);
}

}  // namespace tokenring::breakdown
