#include "tokenring/breakdown/monte_carlo.hpp"

#include <algorithm>
#include <cmath>

#include "tokenring/common/checks.hpp"
#include "tokenring/exec/seed_stream.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::breakdown {

namespace {

/// Per-trial tallies for the run manifest. Bumped once per Monte Carlo
/// trial (not per saturation step), so the hot path stays untouched.
void count_trial(const SaturationResult& sat) {
  static const obs::Counter trials("breakdown.trials");
  static const obs::Counter degenerate("breakdown.degenerate_sets");
  static const obs::Counter unbounded("breakdown.unbounded_sets");
  trials.add();
  if (sat.degenerate_zero) {
    degenerate.add();
  } else if (!sat.found) {
    unbounded.add();
  }
}

}  // namespace

double BreakdownEstimate::quantile(double q) const {
  TR_EXPECTS(q >= 0.0 && q <= 1.0);
  TR_EXPECTS_MSG(!samples.empty(),
                 "quantile needs keep_samples and at least one sample");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void BreakdownEstimate::merge(const BreakdownEstimate& other) {
  utilization.merge(other.utilization);
  degenerate_sets += other.degenerate_sets;
  unbounded_sets += other.unbounded_sets;
  samples.insert(samples.end(), other.samples.begin(), other.samples.end());
}

namespace {

// Classify one saturated draw into the estimate. Shared by both entry
// points so their per-trial semantics cannot drift apart.
void accumulate_trial(const SaturationResult& sat, bool keep_samples,
                      BreakdownEstimate& est) {
  if (sat.degenerate_zero) {
    ++est.degenerate_sets;
    est.utilization.add(0.0);
    if (keep_samples) est.samples.push_back(0.0);
  } else if (!sat.found) {
    ++est.unbounded_sets;  // pathological; excluded from the average
  } else {
    est.utilization.add(sat.breakdown_utilization);
    if (keep_samples) est.samples.push_back(sat.breakdown_utilization);
  }
}

// Saturate one drawn base set; both trial styles (predicate / kernel
// factory) funnel through this signature so the estimator loops are shared.
using SaturateTrial =
    std::function<SaturationResult(const msg::MessageSet& base)>;

SaturateTrial saturate_with_predicate(const SchedulablePredicate& predicate,
                                      BitsPerSecond bw,
                                      const SaturationOptions& options) {
  return [&predicate, bw, &options](const msg::MessageSet& base) {
    return find_saturation(base, predicate, bw, options);
  };
}

SaturateTrial saturate_with_factory(const ScaleKernelFactory& factory,
                                    BitsPerSecond bw,
                                    const SaturationOptions& options) {
  return [&factory, bw, &options](const msg::MessageSet& base) {
    const ScaleKernel kernel = factory(base);
    return find_saturation_scaled(base, kernel, bw, options);
  };
}

BreakdownEstimate estimate_sequential(const msg::MessageSetGenerator& generator,
                                      const SaturateTrial& saturate, Rng& rng,
                                      const MonteCarloOptions& options) {
  TR_EXPECTS(options.num_sets >= 1);

  BreakdownEstimate est;
  for (std::size_t i = 0; i < options.num_sets; ++i) {
    const msg::MessageSet base = generator.generate(rng);
    const SaturationResult sat = saturate(base);
    count_trial(sat);
    accumulate_trial(sat, options.keep_samples, est);
  }
  return est;
}

BreakdownEstimate estimate_parallel(const msg::MessageSetGenerator& generator,
                                    const SaturateTrial& saturate,
                                    std::uint64_t master_seed,
                                    const exec::Executor& executor,
                                    const MonteCarloOptions& options) {
  TR_EXPECTS(options.num_sets >= 1);
  TR_EXPECTS(options.shard_size >= 1);

  const std::size_t n = options.num_sets;
  const std::size_t shard = options.shard_size;
  const std::size_t num_shards = (n + shard - 1) / shard;

  // Trial i is fully determined by (master_seed, i): its own Rng, its own
  // draw, its own saturation search. Threads only decide *who* computes a
  // shard, never *what* it computes, so the result cannot depend on the
  // executor's jobs count or on scheduling order.
  const auto run_shard = [&](std::size_t s) {
    BreakdownEstimate part;
    const std::size_t lo = s * shard;
    const std::size_t hi = std::min(n, lo + shard);
    for (std::size_t i = lo; i < hi; ++i) {
      Rng rng = exec::make_trial_rng(master_seed, i);
      const msg::MessageSet base = generator.generate(rng);
      const SaturationResult sat = saturate(base);
      count_trial(sat);
      accumulate_trial(sat, options.keep_samples, part);
    }
    return part;
  };

  exec::ParallelForOptions pf;
  pf.cancel = options.cancel;
  if (options.progress) {
    pf.progress = [&options, n, shard](std::size_t done_shards, std::size_t) {
      options.progress(std::min(n, done_shards * shard), n);
    };
  }

  // Shards merge left-to-right in trial order; because the shard grid is
  // fixed by shard_size alone, the floating-point merge tree — and hence
  // every output bit — is the same for any jobs count.
  return exec::map_reduce(
      executor, num_shards, BreakdownEstimate{}, run_shard,
      [](BreakdownEstimate acc, BreakdownEstimate part) {
        acc.merge(part);
        return acc;
      },
      pf);
}

// Draw one batch of base sets through `draw`, saturate them in lockstep,
// and tally each trial in index order. Shared by the sequential and
// parallel batched estimators.
void run_batch(const std::function<msg::MessageSet()>& draw, std::size_t count,
               const BatchScaleKernelFactory& factory, BitsPerSecond bw,
               const SaturationOptions& sat_options,
               const std::function<void(std::size_t, const SaturationResult&)>&
                   tally) {
  std::vector<msg::MessageSet> bases;
  bases.reserve(count);
  for (std::size_t j = 0; j < count; ++j) bases.push_back(draw());
  const BatchScaleKernel kernel = factory(bases);
  const std::vector<SaturationResult> sats =
      find_saturation_batch(bases, kernel, bw, sat_options);
  for (std::size_t j = 0; j < count; ++j) {
    count_trial(sats[j]);
    tally(j, sats[j]);
  }
}

BreakdownEstimate estimate_batch_sequential(
    const msg::MessageSetGenerator& generator,
    const BatchScaleKernelFactory& factory, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options) {
  TR_EXPECTS(options.num_sets >= 1);
  TR_EXPECTS(options.batch_size >= 1);

  // The saturation search consumes no randomness, so drawing a whole batch
  // from the shared stream before saturating leaves the draw sequence —
  // and hence every trial — identical to the one-at-a-time estimator.
  BreakdownEstimate est;
  const std::size_t n = options.num_sets;
  for (std::size_t lo = 0; lo < n; lo += options.batch_size) {
    const std::size_t count = std::min(options.batch_size, n - lo);
    run_batch([&] { return generator.generate(rng); }, count, factory, bw,
              options.saturation,
              [&](std::size_t, const SaturationResult& sat) {
                accumulate_trial(sat, options.keep_samples, est);
              });
  }
  return est;
}

BreakdownEstimate estimate_batch_parallel(
    const msg::MessageSetGenerator& generator,
    const BatchScaleKernelFactory& factory, std::uint64_t master_seed,
    BitsPerSecond bw, const exec::Executor& executor,
    const MonteCarloOptions& options) {
  TR_EXPECTS(options.num_sets >= 1);
  TR_EXPECTS(options.shard_size >= 1);
  TR_EXPECTS(options.batch_size >= 1);

  const std::size_t n = options.num_sets;
  const std::size_t shard = options.shard_size;
  // The parallel work unit is a *batch group*: batch_size rounded up to a
  // whole number of shards. Every trial stays pinned to its shard and
  // shards are folded one by one in trial order, so the merge tree — fixed
  // by shard_size alone — is the same as the scalar path's for every
  // (jobs, batch_size) combination.
  const std::size_t shards_per_group = (options.batch_size + shard - 1) / shard;
  const std::size_t group = shards_per_group * shard;
  const std::size_t num_groups = (n + group - 1) / group;

  const auto run_group = [&](std::size_t g) {
    const std::size_t lo = g * group;
    const std::size_t count = std::min(n, lo + group) - lo;
    std::vector<BreakdownEstimate> parts((count + shard - 1) / shard);
    std::size_t next = lo;
    run_batch(
        [&] {
          Rng rng = exec::make_trial_rng(master_seed, next++);
          return generator.generate(rng);
        },
        count, factory, bw, options.saturation,
        [&](std::size_t j, const SaturationResult& sat) {
          accumulate_trial(sat, options.keep_samples, parts[j / shard]);
        });
    return parts;
  };

  exec::ParallelForOptions pf;
  pf.cancel = options.cancel;
  if (options.progress) {
    pf.progress = [&options, n, group](std::size_t done_groups, std::size_t) {
      options.progress(std::min(n, done_groups * group), n);
    };
  }

  return exec::map_reduce(
      executor, num_groups, BreakdownEstimate{}, run_group,
      [](BreakdownEstimate acc, std::vector<BreakdownEstimate> parts) {
        for (BreakdownEstimate& part : parts) acc.merge(part);
        return acc;
      },
      pf);
}

}  // namespace

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const SchedulablePredicate& predicate, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options) {
  TR_EXPECTS(bw > 0.0);
  return estimate_sequential(
      generator, saturate_with_predicate(predicate, bw, options.saturation),
      rng, options);
}

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const SchedulablePredicate& predicate, BitsPerSecond bw,
    std::uint64_t master_seed, const exec::Executor& executor,
    const MonteCarloOptions& options) {
  TR_EXPECTS(bw > 0.0);
  return estimate_parallel(
      generator, saturate_with_predicate(predicate, bw, options.saturation),
      master_seed, executor, options);
}

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const ScaleKernelFactory& kernel_factory, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options) {
  TR_EXPECTS(bw > 0.0);
  return estimate_sequential(
      generator, saturate_with_factory(kernel_factory, bw, options.saturation),
      rng, options);
}

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const ScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::uint64_t master_seed, const exec::Executor& executor,
    const MonteCarloOptions& options) {
  TR_EXPECTS(bw > 0.0);
  return estimate_parallel(
      generator, saturate_with_factory(kernel_factory, bw, options.saturation),
      master_seed, executor, options);
}

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const BatchScaleKernelFactory& kernel_factory, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options) {
  TR_EXPECTS(bw > 0.0);
  return estimate_batch_sequential(generator, kernel_factory, bw, rng,
                                   options);
}

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const BatchScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::uint64_t master_seed, const exec::Executor& executor,
    const MonteCarloOptions& options) {
  TR_EXPECTS(bw > 0.0);
  return estimate_batch_parallel(generator, kernel_factory, master_seed, bw,
                                 executor, options);
}

}  // namespace tokenring::breakdown
