// Monte Carlo estimation of the average breakdown utilization (paper
// Section 6.1).
//
// Average breakdown utilization = expected utilization of message sets in
// the saturated schedulable class. Estimated by repeatedly (1) drawing a
// random set (periods + payload direction) from a generator, (2) scaling
// payloads to the schedulability boundary, (3) recording the saturated
// utilization, then averaging. Degenerate draws whose breakdown is exactly
// zero (fixed overheads alone exceed capacity) count as samples of 0, so
// low-bandwidth regimes are reported honestly rather than skipped.

#pragma once

#include <cstddef>
#include <vector>

#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/common/stats.hpp"
#include "tokenring/msg/generator.hpp"

namespace tokenring::breakdown {

/// Estimation settings.
struct MonteCarloOptions {
  /// Number of random message sets to saturate.
  std::size_t num_sets = 100;
  /// Keep every per-set breakdown sample (for percentile profiles).
  bool keep_samples = false;
  /// Boundary-search options shared by all samples.
  SaturationOptions saturation;
};

/// Aggregate result.
struct BreakdownEstimate {
  /// Statistics over per-set breakdown utilizations.
  RunningStats utilization;
  /// How many draws were degenerate (breakdown = 0).
  std::size_t degenerate_sets = 0;
  /// How many draws never became unschedulable within the scale bound
  /// (predicate vacuously true; excluded from `utilization`).
  std::size_t unbounded_sets = 0;
  /// Raw per-set samples; populated only with keep_samples.
  std::vector<double> samples;

  double mean() const { return utilization.mean(); }
  double ci95() const { return utilization.ci95_half_width(); }
  /// Empirical quantile (q in [0,1]) of the kept samples; requires
  /// keep_samples and at least one sample.
  double quantile(double q) const;
};

/// Run the estimator: draws sets from `generator` using `rng`, saturates
/// each against `predicate` (see saturation.hpp for the monotonicity
/// requirement), and aggregates.
BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const SchedulablePredicate& predicate, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options = {});

}  // namespace tokenring::breakdown
