// Monte Carlo estimation of the average breakdown utilization (paper
// Section 6.1).
//
// Average breakdown utilization = expected utilization of message sets in
// the saturated schedulable class. Estimated by repeatedly (1) drawing a
// random set (periods + payload direction) from a generator, (2) scaling
// payloads to the schedulability boundary, (3) recording the saturated
// utilization, then averaging. Degenerate draws whose breakdown is exactly
// zero (fixed overheads alone exceed capacity) count as samples of 0, so
// low-bandwidth regimes are reported honestly rather than skipped.
//
// Two entry points:
//  * the seeded overload is the production path: trials are independent
//    (trial i draws from its own SplitMix64-derived stream, see
//    exec/seed_stream.hpp) and run on an `exec::Executor`, in fixed-size
//    shards merged in trial order. The result is bit-identical for any
//    jobs count, including the inline jobs == 1 path.
//  * the `Rng&` overload is the original strictly sequential estimator
//    where all trials consume one shared stream; it is kept for callers
//    that thread their own engine through (and for its tests).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "tokenring/breakdown/saturation.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/common/stats.hpp"
#include "tokenring/exec/executor.hpp"
#include "tokenring/msg/generator.hpp"

namespace tokenring::breakdown {

/// Estimation settings.
struct MonteCarloOptions {
  /// Number of random message sets to saturate.
  std::size_t num_sets = 100;
  /// Keep every per-set breakdown sample (for percentile profiles).
  bool keep_samples = false;
  /// Boundary-search options shared by all samples.
  SaturationOptions saturation;
  /// Trials per work shard for the parallel path (>= 1). Part of the
  /// result's definition, NOT a tuning knob tied to the worker count:
  /// shard boundaries fix the merge tree, so two runs agree bit-for-bit
  /// only if they use the same shard_size. The default balances scheduling
  /// overhead against load balance for typical trial costs.
  std::size_t shard_size = 8;
  /// Trials saturated per lockstep batch by the BatchScaleKernelFactory
  /// overloads (>= 1; ignored by the scalar overloads). Purely a
  /// throughput knob: the batched search replays every scalar probe
  /// sequence lane for lane and dispatches whole shards per batch group,
  /// so estimates are bit-identical for every batch_size (and every jobs
  /// count). The parallel path rounds the effective lane count up to a
  /// whole number of shards.
  std::size_t batch_size = 64;
  /// Optional progress hook for the parallel path, called as
  /// (trials_done_upper_bound, num_sets) whenever a shard completes.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Optional cooperative cancellation for the parallel path; when the
  /// token fires the estimator throws `exec::Cancelled`.
  std::optional<exec::CancellationToken> cancel;
};

/// Aggregate result.
struct BreakdownEstimate {
  /// Statistics over per-set breakdown utilizations.
  RunningStats utilization;
  /// How many draws were degenerate (breakdown = 0).
  std::size_t degenerate_sets = 0;
  /// How many draws never became unschedulable within the scale bound
  /// (predicate vacuously true; excluded from `utilization`).
  std::size_t unbounded_sets = 0;
  /// Raw per-set samples; populated only with keep_samples. Ordering
  /// guarantee: samples appear in trial-index order (NOT sorted by value)
  /// under both the sequential and the parallel estimator, for every jobs
  /// count — shards are merged in trial order. Unbounded draws contribute
  /// no sample, so samples.size() == utilization.count() always holds.
  std::vector<double> samples;

  double mean() const { return utilization.mean(); }
  double ci95() const { return utilization.ci95_half_width(); }
  /// Empirical quantile (q in [0,1]) of the kept samples (sorts a copy, so
  /// callers need not pre-sort). Requires keep_samples and >= 1 sample.
  double quantile(double q) const;

  /// Fold `other` (the trials immediately following this shard's) into
  /// this estimate: merges the running stats, adds the degenerate /
  /// unbounded counts, and appends the kept samples, preserving trial
  /// order. The parallel estimator's reducer.
  void merge(const BreakdownEstimate& other);
};

/// Run the estimator sequentially: draws sets from `generator` using the
/// single shared stream `rng`, saturates each against `predicate` (see
/// saturation.hpp for the monotonicity requirement), and aggregates.
BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const SchedulablePredicate& predicate, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options = {});

/// Run the estimator on `executor` with deterministic per-trial seed
/// streams derived from (master_seed, trial index). Bit-identical across
/// jobs counts; `--jobs 1` (an Executor with jobs == 1) runs inline with
/// no thread-pool involvement.
BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const SchedulablePredicate& predicate, BitsPerSecond bw,
    std::uint64_t master_seed, const exec::Executor& executor,
    const MonteCarloOptions& options = {});

/// Kernel-factory forms: each trial builds one ScaleKernel for its drawn
/// set (hoisting the scale-invariant work once) and bisects in scale space
/// with no per-probe allocation. A factory whose kernels agree with a
/// predicate yields bit-identical estimates to the predicate overloads —
/// the probe sequence depends only on the verdicts. The factory is shared
/// across worker threads and must be const-callable and thread-safe.
BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const ScaleKernelFactory& kernel_factory, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options = {});

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const ScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::uint64_t master_seed, const exec::Executor& executor,
    const MonteCarloOptions& options = {});

/// Batched forms: trials are grouped into lockstep batches of
/// `options.batch_size` lanes, each group saturated with one SoA kernel
/// (find_saturation_batch) instead of one scalar search per trial. The
/// saturation search consumes no randomness, so drawing a whole batch of
/// sets up front preserves the draw sequence; each lane replays the scalar
/// probe trajectory bit for bit; and the parallel path dispatches whole
/// shards per batch group, folding the per-shard partials individually in
/// trial order. Estimates are therefore bit-identical to the scalar
/// overloads for every (jobs, batch_size) combination.
BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const BatchScaleKernelFactory& kernel_factory, BitsPerSecond bw, Rng& rng,
    const MonteCarloOptions& options = {});

BreakdownEstimate estimate_breakdown_utilization(
    const msg::MessageSetGenerator& generator,
    const BatchScaleKernelFactory& kernel_factory, BitsPerSecond bw,
    std::uint64_t master_seed, const exec::Executor& executor,
    const MonteCarloOptions& options = {});

}  // namespace tokenring::breakdown
